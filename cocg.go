// Package cocg is the public facade of the CoCG reproduction: fine-grained
// cloud-game co-location on a heterogeneous platform (Wang et al., IPDPS
// 2024).
//
// CoCG breaks cloud games into 5-second frames and loading-separated stages,
// clusters the frames to derive per-game stage-type catalogs, predicts each
// session's next stage with per-category-trained ML models, and schedules
// complementary games onto shared GPU servers — stealing time from loading
// stages when predicted peaks threaten to collide.
//
// The typical journey:
//
//	sys, err := cocg.Train(cocg.AllGames(), cocg.TrainOptions{Seed: 1})
//	cluster := sys.NewCluster(4, cocg.PolicyCoCG)
//	gen := sys.Generator(7)
//	cluster.Submit(gen.Next(cocg.AllGames()[0]))
//	cluster.Run(cocg.Hour)
//	records := cluster.Records()
//	fmt.Println(cocg.Throughput(records, nil), cocg.Summarize(records))
//
// The facade re-exports the stable surface of the internal packages; the
// full API (profiler internals, predictor details, experiment harnesses)
// lives under internal/ and is documented there.
package cocg

import (
	"io"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/persist"
	"cocg/internal/platform"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Re-exported core types.
type (
	// System is a fully trained CoCG deployment for a set of games.
	System = core.System
	// TrainOptions shapes the offline training pass.
	TrainOptions = core.TrainOptions
	// PolicyKind selects a co-location scheme.
	PolicyKind = core.PolicyKind
	// GameSpec describes one cloud game's stage machine.
	GameSpec = gamesim.GameSpec
	// Session is one running game instance.
	Session = gamesim.Session
	// Cluster is a set of servers with a pending-arrival queue.
	Cluster = platform.Cluster
	// Record is the outcome of one completed session.
	Record = platform.Record
	// QoSSummary aggregates QoS over records.
	QoSSummary = platform.QoSSummary
	// Vector is a point in CPU/GPU/GPU-mem/RAM resource space.
	Vector = resources.Vector
	// Seconds is virtual time.
	Seconds = simclock.Seconds
)

// The evaluated scheduling policies.
const (
	PolicyCoCG     = core.PolicyCoCG
	PolicyVBP      = core.PolicyVBP
	PolicyGAugur   = core.PolicyGAugur
	PolicyReactive = core.PolicyReactive
)

// Time spans.
const (
	Second = simclock.Second
	Minute = simclock.Minute
	Hour   = simclock.Hour
)

// Train runs the complete offline pipeline (profiling corpus, frame
// clustering, stage catalogs, predictor training) for every game.
func Train(specs []*GameSpec, opts TrainOptions) (*System, error) {
	return core.Train(specs, opts)
}

// AllGames returns the paper's five evaluated workloads.
func AllGames() []*GameSpec { return gamesim.AllGames() }

// GameByName resolves one of the five games by name.
func GameByName(name string) (*GameSpec, error) { return gamesim.GameByName(name) }

// NewSession realizes a playable session of a game script.
func NewSession(spec *GameSpec, script int, seed int64) (*Session, error) {
	return gamesim.NewSession(spec, script, seed)
}

// Throughput computes the paper's Eq. 2 over completed records.
func Throughput(records []Record, ref map[string]float64) float64 {
	return platform.Throughput(records, ref)
}

// Summarize aggregates QoS over completed records.
func Summarize(records []Record) QoSSummary { return platform.Summarize(records) }

// SaveSystem persists a trained system (gzip JSON); training happens once.
func SaveSystem(sys *System, w io.Writer) error { return persist.Save(sys, w) }

// LoadSystem restores a system previously written with SaveSystem.
func LoadSystem(r io.Reader) (*System, error) { return persist.Load(r) }

// LoadGameSpec parses a custom game description from JSON, so downstream
// deployments can schedule their own titles; see internal/gamesim's spec
// format.
func LoadGameSpec(r io.Reader) (*GameSpec, error) { return gamesim.LoadSpec(r) }

// SaveGameSpec writes a game description as JSON.
func SaveGameSpec(spec *GameSpec, w io.Writer) error { return gamesim.SaveSpec(spec, w) }
