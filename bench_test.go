package cocg_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment end-to-end in fast mode (so `go test
// -bench=.` completes in minutes) and reports the headline quantity as a
// custom metric; `go run ./cmd/cocg` runs the same experiments at full
// scale.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cocg/internal/cluster"
	"cocg/internal/core"
	"cocg/internal/experiments"
	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/parallel"
	"cocg/internal/platform"
	"cocg/internal/resources"
	"cocg/internal/workload"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

// ctxForBench trains the five-game system once for all benchmarks. It also
// turns on allocation reporting, so every experiment benchmark publishes
// allocs/op and B/op alongside ns/op — the quantities the benchmark
// trajectory in BENCH_PR3.json tracks across PRs.
func ctxForBench(b *testing.B) *experiments.Context {
	b.Helper()
	b.ReportAllocs()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.Options{Seed: 1, Fast: true})
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

func BenchmarkTableI(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.TableIResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 13 {
			b.Fatalf("Table I rows = %d, want 13", len(r.Rows))
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(len(last.Rows)), "script-rows")
	}
}

func BenchmarkFig2StageTrace(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Stages) < 3 {
			b.Fatal("too few stages in the Fig. 2 trace")
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(len(last.Stages)), "stages")
	}
}

func BenchmarkFig5CSGOClustering(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.ClusteringResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(last.K), "clusters-k")
	}
}

func BenchmarkFig6DMCClustering(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.ClusteringResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(last.K), "clusters-k")
	}
}

func BenchmarkFig9Colocation(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(last.SustainedTotal, "p95-combined-util-%")
		b.ReportMetric(100*last.Summary.MeanDegraded, "degraded-%")
	}
}

func BenchmarkFig10Savings(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.AvgSaving, "avg-saving-%")
	}
}

func BenchmarkFig11Throughput(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.Improvement, "cocg-improvement-%")
	}
}

func BenchmarkFig12Overhead(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllCovered {
			b.Fatal("prediction latency exceeded a loading window")
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(len(last.Rows)), "games-covered")
	}
}

func BenchmarkFig13FPS(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.MeanCoCG, "cocg-fps-%")
		b.ReportMetric(100*last.MeanGAugur, "gaugur-fps-%")
	}
}

func BenchmarkFig14ElbowSweep(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Curves) != 5 {
			b.Fatal("expected five sweep curves")
		}
		last = r
	}
	if last != nil {
		var elbow float64
		for _, c := range last.Curves {
			elbow += float64(c.Elbow)
		}
		b.ReportMetric(elbow/float64(len(last.Curves)), "mean-elbow-k")
	}
}

func BenchmarkFig15Accuracy(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		var dtc float64
		var n int
		for _, row := range last.Rows {
			if v, ok := row.Accuracy["DTC"]; ok && row.Samples > 0 {
				dtc += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(100*dtc/float64(n), "mean-dtc-accuracy-%")
		}
	}
}

func BenchmarkAblationCategory(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.CategoryAblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.CategoryAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && len(last.Rows) > 0 {
		var cat float64
		for _, row := range last.Rows {
			cat += row.CategoryAcc
		}
		b.ReportMetric(100*cat/float64(len(last.Rows)), "mean-category-accuracy-%")
	}
}

func BenchmarkAblationRedundancy(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.RedundancyAblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RedundancyAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && len(last.Rows) > 0 {
		b.ReportMetric(100*last.Rows[0].FPSRatio, "adaptive-fps-%")
	}
}

func BenchmarkAblationLoadingSteal(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.StealAblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.LoadingStealAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(last.StolenSec, "stolen-sec")
	}
}

func BenchmarkAblationFrameInterval(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.IntervalAblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.FrameIntervalAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(len(last.Rows)), "intervals")
	}
}

func BenchmarkAblationClustering(b *testing.B) {
	ctx := ctxForBench(b)
	var n int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GraphPartitionAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		n = len(rows)
	}
	b.ReportMetric(float64(n), "games-compared")
}

func BenchmarkScaleOut(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.ScaleOutResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ScaleOut(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[len(last.Rows)-1].PerServer, "per-server-throughput")
	}
}

func BenchmarkOnlineLearning(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.OnlineLearningResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.OnlineLearning(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.WarmAccuracy, "warm-accuracy-%")
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.PlacementAblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.PlacementAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[0].Throughput, "best-fit-throughput")
	}
}

func BenchmarkPairMatrix(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.PairMatrixResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.PairMatrix(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		var co int
		for _, row := range last.Rows {
			if row.CoLocated {
				co++
			}
		}
		b.ReportMetric(float64(co), "colocated-pairs")
	}
}

// --- Parallel-vs-serial benchmarks ---
//
// Each pair below runs the same workload with Workers/Jobs pinned to 1 and
// then unpinned (0 = GOMAXPROCS), so `go test -bench 'Workers|Jobs'` shows
// the speedup the internal/parallel pool buys on the current machine. On a
// single-core box the two legs coincide; the determinism tests guarantee the
// outputs match regardless.

// benchPoints synthesizes a frame cloud large enough that the chunked
// K-means passes dominate.
func benchPoints(n int) []resources.Vector {
	r := rand.New(rand.NewSource(42))
	out := make([]resources.Vector, n)
	centers := []resources.Vector{
		resources.New(12, 8, 6, 25),
		resources.New(45, 55, 38, 52),
		resources.New(85, 88, 74, 79),
	}
	for i := range out {
		c := centers[i%len(centers)]
		var v resources.Vector
		for d := range v {
			v[d] = c[d] + r.NormFloat64()*4
		}
		out[i] = v.Clamp(0, 100)
	}
	return out
}

func benchKMeans(b *testing.B, workers int) {
	pts := benchPoints(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, cluster.Config{K: 6, Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansWorkers1(b *testing.B)   { benchKMeans(b, 1) }
func BenchmarkKMeansWorkersMax(b *testing.B) { benchKMeans(b, 0) }

// benchTrainingSet synthesizes a multiclass dataset with learnable structure
// (the label tracks a noisy linear score over the features).
func benchTrainingSet(b *testing.B, n int) *mlmodels.Dataset {
	b.Helper()
	r := rand.New(rand.NewSource(9))
	samples := make([]mlmodels.Sample, n)
	for i := range samples {
		f := make([]float64, 8)
		score := 0.0
		for d := range f {
			f[d] = r.Float64()
			score += f[d] * float64(d%3)
		}
		samples[i] = mlmodels.Sample{Features: f, Label: int(score+r.Float64()) % 5}
	}
	ds, err := mlmodels.NewDataset(samples)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchForest(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := mlmodels.NewRandomForest(mlmodels.ForestConfig{NumTrees: 40, Seed: 3, Workers: workers})
		if err := f.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestTrainWorkers1(b *testing.B)   { benchForest(b, 1) }
func BenchmarkForestTrainWorkersMax(b *testing.B) { benchForest(b, 0) }

func benchGBDT(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mlmodels.NewGBDT(mlmodels.GBDTConfig{NumRounds: 20, Seed: 3, Workers: workers})
		if err := g.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTTrainWorkers1(b *testing.B)   { benchGBDT(b, 1) }
func BenchmarkGBDTTrainWorkersMax(b *testing.B) { benchGBDT(b, 0) }

// benchHarness renders every figure and table as concurrent jobs over the
// shared fast context — the cmd/cocg fan-out, minus printing.
func benchHarness(b *testing.B, jobs int) {
	ctx := ctxForBench(b)
	runners := []func(*experiments.Context) (fmt.Stringer, error){
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.TableI(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig2(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig5(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig6(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig9(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig10(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig11(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig12(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig13(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig14(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig15(c) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := parallel.NewGroup(jobs)
		for _, run := range runners {
			run := run
			g.Go(func() error {
				_, err := run(ctx)
				return err
			})
		}
		if err := g.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHarnessJobs1(b *testing.B)   { benchHarness(b, 1) }
func BenchmarkHarnessJobsMax(b *testing.B) { benchHarness(b, 0) }

// --- Fleet-scale placement benchmarks ---
//
// The distributor (Algorithm 1) runs on every frame boundary over every
// pending arrival × every server; at Capsule-scale fleets (thousands of
// co-located engines) placement, not inference, is the dominant hot path.
// These benchmarks measure one full placement scan of a warm 1k-server
// fleet hosting the five-game mix, at different -jobs settings.

const (
	fleetServers         = 1024
	fleetHostedPerServer = 2
	fleetWarmTicks       = 31
	fleetArrivals        = 8
)

// fleetState is the shared warm fleet: built once, never mutated by the
// placement-scan benchmarks (scoring a candidate does not place it).
type fleetState struct {
	cluster  *platform.Cluster
	arrivals []platform.Arrival
}

var (
	fleetOnce sync.Once
	fleet     *fleetState
	fleetErr  error
)

// fleetForBench builds a deterministic 1k-server fleet under the CoCG
// policy: every server is pre-loaded with sessions from the five-game mix
// (placed directly, bypassing admission, so the fixture does not depend on
// the scheduler under test), then the whole fleet ticks long enough for
// every session's predictor to accumulate real stage history. The candidate
// arrivals are drawn from a Poisson mixed-game stream, the same arrival
// process the scale-out experiment drives.
func fleetForBench(b *testing.B) *fleetState {
	b.Helper()
	ctx := ctxForBench(b)
	fleetOnce.Do(func() {
		c := ctx.System.NewCluster(fleetServers, core.PolicyCoCG)
		gen := ctx.System.Generator(1234)
		mix := gamesim.AllGames()
		for si, srv := range c.Servers {
			for k := 0; k < fleetHostedPerServer; k++ {
				a := gen.Next(mix[(si+k)%len(mix)])
				sess, err := gamesim.NewPlayerSession(a.Spec, a.Script, a.Habit, a.SessionSeed)
				if err != nil {
					fleetErr = err
					return
				}
				ctl, err := c.Policy.NewController(a.Spec, a.Habit)
				if err != nil {
					fleetErr = err
					return
				}
				srv.Add(a.Spec, sess, ctl)
			}
		}
		c.Run(fleetWarmTicks)
		st := &fleetState{cluster: c}
		// Harvest Poisson arrivals into a never-ticked holding cluster: Feed
		// only enqueues, so Pending is exactly the generated arrival stream.
		hold := platform.NewCluster(0, c.Policy)
		stream := workload.NewMixStream(gen, mix, 0.5, 4321)
		for len(hold.Pending) < fleetArrivals {
			stream.Feed(hold)
		}
		st.arrivals = hold.Pending[:fleetArrivals]
		fleet = st
	})
	if fleetErr != nil {
		b.Fatal(fleetErr)
	}
	return fleet
}

// benchFleetPlacement measures one distributor scan — scoring an arrival
// against every server and picking the argmax — without placing the winner,
// so every iteration sees the same fleet.
func benchFleetPlacement(b *testing.B, jobs int) {
	st := fleetForBench(b)
	c := st.cluster
	c.Jobs = jobs
	b.ReportAllocs()
	b.ResetTimer()
	picked := 0
	for i := 0; i < b.N; i++ {
		a := st.arrivals[i%len(st.arrivals)]
		if c.PickServer(a) != nil {
			picked++
		}
	}
	b.ReportMetric(float64(fleetServers), "servers")
	b.ReportMetric(float64(picked)/float64(b.N), "placeable-frac")
}

func BenchmarkFleetPlacement1kJobs1(b *testing.B) { benchFleetPlacement(b, 1) }
func BenchmarkFleetPlacement1kJobs8(b *testing.B) { benchFleetPlacement(b, 8) }
