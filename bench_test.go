package cocg_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment end-to-end in fast mode (so `go test
// -bench=.` completes in minutes) and reports the headline quantity as a
// custom metric; `go run ./cmd/cocg` runs the same experiments at full
// scale.

import (
	"sync"
	"testing"

	"cocg/internal/experiments"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

// ctxForBench trains the five-game system once for all benchmarks.
func ctxForBench(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.Options{Seed: 1, Fast: true})
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

func BenchmarkTableI(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 13 {
			b.Fatalf("Table I rows = %d, want 13", len(r.Rows))
		}
	}
}

func BenchmarkFig2StageTrace(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Stages) < 3 {
			b.Fatal("too few stages in the Fig. 2 trace")
		}
	}
}

func BenchmarkFig5CSGOClustering(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6DMCClustering(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Colocation(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(last.SustainedTotal, "p95-combined-util-%")
		b.ReportMetric(100*last.Summary.MeanDegraded, "degraded-%")
	}
}

func BenchmarkFig10Savings(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.AvgSaving, "avg-saving-%")
	}
}

func BenchmarkFig11Throughput(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.Improvement, "cocg-improvement-%")
	}
}

func BenchmarkFig12Overhead(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllCovered {
			b.Fatal("prediction latency exceeded a loading window")
		}
	}
}

func BenchmarkFig13FPS(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.MeanCoCG, "cocg-fps-%")
		b.ReportMetric(100*last.MeanGAugur, "gaugur-fps-%")
	}
}

func BenchmarkFig14ElbowSweep(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Curves) != 5 {
			b.Fatal("expected five sweep curves")
		}
	}
}

func BenchmarkFig15Accuracy(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		var dtc float64
		var n int
		for _, row := range last.Rows {
			if v, ok := row.Accuracy["DTC"]; ok && row.Samples > 0 {
				dtc += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(100*dtc/float64(n), "mean-dtc-accuracy-%")
		}
	}
}

func BenchmarkAblationCategory(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CategoryAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRedundancy(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RedundancyAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLoadingSteal(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LoadingStealAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFrameInterval(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FrameIntervalAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClustering(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GraphPartitionAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.ScaleOutResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ScaleOut(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[len(last.Rows)-1].PerServer, "per-server-throughput")
	}
}

func BenchmarkOnlineLearning(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OnlineLearning(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PlacementAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairMatrix(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PairMatrix(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
