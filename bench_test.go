package cocg_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment end-to-end in fast mode (so `go test
// -bench=.` completes in minutes) and reports the headline quantity as a
// custom metric; `go run ./cmd/cocg` runs the same experiments at full
// scale.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cocg/internal/cluster"
	"cocg/internal/experiments"
	"cocg/internal/mlmodels"
	"cocg/internal/parallel"
	"cocg/internal/resources"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

// ctxForBench trains the five-game system once for all benchmarks.
func ctxForBench(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.Options{Seed: 1, Fast: true})
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

func BenchmarkTableI(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 13 {
			b.Fatalf("Table I rows = %d, want 13", len(r.Rows))
		}
	}
}

func BenchmarkFig2StageTrace(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Stages) < 3 {
			b.Fatal("too few stages in the Fig. 2 trace")
		}
	}
}

func BenchmarkFig5CSGOClustering(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6DMCClustering(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Colocation(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(last.SustainedTotal, "p95-combined-util-%")
		b.ReportMetric(100*last.Summary.MeanDegraded, "degraded-%")
	}
}

func BenchmarkFig10Savings(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.AvgSaving, "avg-saving-%")
	}
}

func BenchmarkFig11Throughput(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.Improvement, "cocg-improvement-%")
	}
}

func BenchmarkFig12Overhead(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllCovered {
			b.Fatal("prediction latency exceeded a loading window")
		}
	}
}

func BenchmarkFig13FPS(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(100*last.MeanCoCG, "cocg-fps-%")
		b.ReportMetric(100*last.MeanGAugur, "gaugur-fps-%")
	}
}

func BenchmarkFig14ElbowSweep(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Curves) != 5 {
			b.Fatal("expected five sweep curves")
		}
	}
}

func BenchmarkFig15Accuracy(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		var dtc float64
		var n int
		for _, row := range last.Rows {
			if v, ok := row.Accuracy["DTC"]; ok && row.Samples > 0 {
				dtc += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(100*dtc/float64(n), "mean-dtc-accuracy-%")
		}
	}
}

func BenchmarkAblationCategory(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CategoryAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRedundancy(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RedundancyAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLoadingSteal(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LoadingStealAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFrameInterval(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FrameIntervalAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClustering(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GraphPartitionAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	ctx := ctxForBench(b)
	var last *experiments.ScaleOutResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ScaleOut(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[len(last.Rows)-1].PerServer, "per-server-throughput")
	}
}

func BenchmarkOnlineLearning(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OnlineLearning(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PlacementAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairMatrix(b *testing.B) {
	ctx := ctxForBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PairMatrix(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel-vs-serial benchmarks ---
//
// Each pair below runs the same workload with Workers/Jobs pinned to 1 and
// then unpinned (0 = GOMAXPROCS), so `go test -bench 'Workers|Jobs'` shows
// the speedup the internal/parallel pool buys on the current machine. On a
// single-core box the two legs coincide; the determinism tests guarantee the
// outputs match regardless.

// benchPoints synthesizes a frame cloud large enough that the chunked
// K-means passes dominate.
func benchPoints(n int) []resources.Vector {
	r := rand.New(rand.NewSource(42))
	out := make([]resources.Vector, n)
	centers := []resources.Vector{
		resources.New(12, 8, 6, 25),
		resources.New(45, 55, 38, 52),
		resources.New(85, 88, 74, 79),
	}
	for i := range out {
		c := centers[i%len(centers)]
		var v resources.Vector
		for d := range v {
			v[d] = c[d] + r.NormFloat64()*4
		}
		out[i] = v.Clamp(0, 100)
	}
	return out
}

func benchKMeans(b *testing.B, workers int) {
	pts := benchPoints(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, cluster.Config{K: 6, Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansWorkers1(b *testing.B)   { benchKMeans(b, 1) }
func BenchmarkKMeansWorkersMax(b *testing.B) { benchKMeans(b, 0) }

// benchTrainingSet synthesizes a multiclass dataset with learnable structure
// (the label tracks a noisy linear score over the features).
func benchTrainingSet(b *testing.B, n int) *mlmodels.Dataset {
	b.Helper()
	r := rand.New(rand.NewSource(9))
	samples := make([]mlmodels.Sample, n)
	for i := range samples {
		f := make([]float64, 8)
		score := 0.0
		for d := range f {
			f[d] = r.Float64()
			score += f[d] * float64(d%3)
		}
		samples[i] = mlmodels.Sample{Features: f, Label: int(score+r.Float64()) % 5}
	}
	ds, err := mlmodels.NewDataset(samples)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchForest(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := mlmodels.NewRandomForest(mlmodels.ForestConfig{NumTrees: 40, Seed: 3, Workers: workers})
		if err := f.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestTrainWorkers1(b *testing.B)   { benchForest(b, 1) }
func BenchmarkForestTrainWorkersMax(b *testing.B) { benchForest(b, 0) }

func benchGBDT(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mlmodels.NewGBDT(mlmodels.GBDTConfig{NumRounds: 20, Seed: 3, Workers: workers})
		if err := g.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTTrainWorkers1(b *testing.B)   { benchGBDT(b, 1) }
func BenchmarkGBDTTrainWorkersMax(b *testing.B) { benchGBDT(b, 0) }

// benchHarness renders every figure and table as concurrent jobs over the
// shared fast context — the cmd/cocg fan-out, minus printing.
func benchHarness(b *testing.B, jobs int) {
	ctx := ctxForBench(b)
	runners := []func(*experiments.Context) (fmt.Stringer, error){
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.TableI(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig2(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig5(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig6(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig9(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig10(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig11(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig12(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig13(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig14(c) },
		func(c *experiments.Context) (fmt.Stringer, error) { return experiments.Fig15(c) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := parallel.NewGroup(jobs)
		for _, run := range runners {
			run := run
			g.Go(func() error {
				_, err := run(ctx)
				return err
			})
		}
		if err := g.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHarnessJobs1(b *testing.B)   { benchHarness(b, 1) }
func BenchmarkHarnessJobsMax(b *testing.B) { benchHarness(b, 0) }
