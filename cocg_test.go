package cocg_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"cocg"
)

var (
	facadeOnce sync.Once
	facadeSys  *cocg.System
	facadeErr  error
)

func facadeSystem(t *testing.T) *cocg.System {
	t.Helper()
	facadeOnce.Do(func() {
		games := cocg.AllGames()
		facadeSys, facadeErr = cocg.Train(games[4:5], cocg.TrainOptions{ // Contra
			Players: 4, SessionsPerPlayer: 2, Seed: 9,
		})
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeSys
}

func TestFacadeGames(t *testing.T) {
	games := cocg.AllGames()
	if len(games) != 5 {
		t.Fatalf("AllGames = %d", len(games))
	}
	g, err := cocg.GameByName("DOTA2")
	if err != nil || g.Name != "DOTA2" {
		t.Fatalf("GameByName: %v, %v", g, err)
	}
	if _, err := cocg.GameByName("nope"); err == nil {
		t.Error("unknown game resolved")
	}
}

func TestFacadeJourney(t *testing.T) {
	sys := facadeSystem(t)
	cluster := sys.NewCluster(1, cocg.PolicyCoCG)
	gen := sys.Generator(3)
	spec, _ := cocg.GameByName("Contra")
	cluster.Submit(gen.Next(spec))
	cluster.Run(20 * cocg.Minute)
	records := cluster.Records()
	if len(records) == 0 {
		t.Fatal("no completed sessions through the facade")
	}
	if cocg.Throughput(records, nil) <= 0 {
		t.Error("throughput not positive")
	}
	sum := cocg.Summarize(records)
	if sum.Sessions != len(records) {
		t.Error("summary sessions mismatch")
	}
}

func TestFacadeSession(t *testing.T) {
	spec, _ := cocg.GameByName("Contra")
	sess, err := cocg.NewSession(spec, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := cocg.Vector{100, 100, 100, 100}
	for i := 0; i < 4*3600 && !sess.Done(); i++ {
		sess.Step(full)
	}
	if !sess.Done() {
		t.Fatal("facade session did not finish")
	}
}

func TestTimeConstants(t *testing.T) {
	if cocg.Hour != 60*cocg.Minute || cocg.Minute != 60*cocg.Second {
		t.Error("time constants inconsistent")
	}
}

func TestFacadePersistence(t *testing.T) {
	sys := facadeSystem(t)
	var buf bytes.Buffer
	if err := cocg.SaveSystem(sys, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cocg.LoadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Games()) != len(sys.Games()) {
		t.Errorf("games changed: %v vs %v", loaded.Games(), sys.Games())
	}
}

func TestFacadeGameSpecJSON(t *testing.T) {
	spec, _ := cocg.GameByName("Contra")
	var buf bytes.Buffer
	if err := cocg.SaveGameSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := cocg.LoadGameSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name {
		t.Errorf("name changed: %q", back.Name)
	}
	if _, err := cocg.LoadGameSpec(strings.NewReader("junk")); err == nil {
		t.Error("junk spec loaded")
	}
}
