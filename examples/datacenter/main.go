// Datacenter: a mixed stream of all five games over a multi-server cluster,
// comparing every scheduling policy on the same workload — the scaled-up
// version of the paper's evaluation (Section IV-D argues the approach
// extends to larger servers unchanged).
package main

import (
	"fmt"
	"log"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

func main() {
	const (
		servers = 4
		horizon = simclock.Hour
		rate    = 0.03 // mean arrivals per second
	)
	fmt.Printf("## %d-server datacenter, mixed five-game stream, %s\n\n", servers, horizon)

	sys, err := core.Train(gamesim.AllGames(), core.TrainOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	for _, kind := range core.AllPolicies() {
		c := sys.NewCluster(servers, kind)
		c.StarveLimit = 5 * simclock.Minute
		gen := sys.Generator(31)
		stream := workload.NewMixStream(gen, gamesim.AllGames(), rate, 77)
		for i := simclock.Seconds(0); i < horizon; i++ {
			stream.Feed(c)
			c.Tick()
		}
		recs := c.Records()
		byGame := map[string]int{}
		for _, r := range recs {
			byGame[r.Game]++
		}
		fmt.Printf("%-9s throughput=%8.0f  completions=%v\n", kind, platform.Throughput(recs, nil), byGame)
		fmt.Printf("          %s\n", platform.Summarize(recs))
		// Per-server peak utilization shows how well the policy packs.
		fmt.Print("          peak util per server:")
		for _, s := range c.Servers {
			fmt.Printf(" %5.1f%%", s.PeakUtilization().Dominant())
		}
		fmt.Print("\n\n")
	}
}
