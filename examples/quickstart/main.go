// Quickstart: the minimal CoCG journey. Train the offline pipeline for one
// game (profiling corpus -> frame clusters -> stage catalog -> predictors),
// then drive a live session with predictor-guided allocation and compare the
// reserved resources against the always-peak policy.
package main

import (
	"fmt"
	"log"

	"cocg/internal/gamesim"
	"cocg/internal/predictor"
	"cocg/internal/resources"
)

func main() {
	spec := gamesim.GenshinImpact()
	fmt.Printf("## CoCG quickstart on %s (%s game)\n\n", spec.Name, spec.Category)

	// 1. Offline: record a profiling corpus, cluster frames, learn the
	// stage catalog, and train the three prediction models.
	trained, err := predictor.TrainForGame(spec, predictor.TrainConfig{
		Players: 10, SessionsPerPlayer: 4, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d stage types over %d frame clusters; DTC held-out accuracy %.0f%%\n",
		trained.Profile.NumStageTypes(), trained.Profile.Clusters.K(), 100*trained.OfflineAccuracy)
	for _, s := range trained.Profile.Catalog {
		kind := "exec"
		if s.Loading {
			kind = "load"
		}
		fmt.Printf("  stage %d [%s] sustained peak %s\n", s.ID, kind, s.Peak)
	}

	// 2. Online: a returning player starts a session; every 5-second frame
	// the predictor detects the stage, predicts the next one at each
	// loading boundary, and recommends an allocation.
	habit := trained.Habits()[0]
	sess, err := gamesim.NewPlayerSession(spec, int(uint64(habit)%uint64(len(spec.Scripts))), habit, 777)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := trained.NewSessionPredictorForHabit(habit, predictor.Config{})
	if err != nil {
		log.Fatal(err)
	}

	var allocSum resources.Vector
	ticks := 0
	for !sess.Done() {
		demand := sess.Demand()
		if d, ok := pr.Observe(demand); ok && d.PredictedNext >= 0 {
			fmt.Printf("t=%s loading detected; predicted next stage %d; pre-provisioning %s\n",
				sess.Elapsed(), d.PredictedNext, d.Alloc)
		}
		allocSum = allocSum.Add(pr.Alloc())
		ticks++
		sess.Step(pr.Alloc())
	}

	// 3. The outcome: QoS held, resources saved.
	meanAlloc := allocSum.Scale(1 / float64(ticks))
	peak := trained.Profile.PeakDemand()
	fmt.Printf("\nsession finished in %s: average FPS %.1f (%.0f%% of best), degraded %.1f%% of exec time\n",
		sess.Elapsed(), sess.AvgFPS(), 100*sess.FPSRatio(), 100*sess.DegradedFraction())
	fmt.Printf("mean allocation %s\nvs always-peak  %s\n", meanAlloc, peak)
	fmt.Printf("prediction accuracy this session: %.0f%%\n", 100*pr.Accuracy())
}
