// Customgame: bring your own title. A game the library has never seen is
// described in JSON, profiled and trained exactly like the built-in suite,
// and co-located with Contra on one CoCG-scheduled server.
package main

import (
	"fmt"
	"log"
	"strings"

	"cocg"
)

const racingSpec = `{
  "name": "Apex Racer",
  "category": "console",
  "clusters": [
    {"name": "loading", "demand": [45, 4, 10, 25], "jitter": 2},
    {"name": "menu",    "demand": [15, 18, 12, 22], "jitter": 2},
    {"name": "race",    "demand": [50, 62, 40, 40], "jitter": 4},
    {"name": "replay",  "demand": [28, 34, 30, 30], "jitter": 2.5}
  ],
  "stages": [
    {"name": "loading", "clusters": [0]},
    {"name": "menu",    "clusters": [1], "mean_sec": 60,  "dur_jitter": 0.2},
    {"name": "race",    "clusters": [2], "mean_sec": 240, "dur_jitter": 0.15},
    {"name": "replay",  "clusters": [3], "mean_sec": 45,  "dur_jitter": 0.2}
  ],
  "scripts": [
    {"name": "grand prix", "desc": "menu, two races with a replay between", "body": [1, 2, 3, 2]},
    {"name": "time trial", "desc": "menu then one long race", "body": [1, 2]}
  ],
  "base_fps": 120,
  "load_min_sec": 10,
  "load_max_sec": 18,
  "nominal_len_sec": 900
}`

func main() {
	fmt.Println("## Custom game: profile, train, and co-locate a JSON-described title")
	racer, err := cocg.LoadGameSpec(strings.NewReader(racingSpec))
	if err != nil {
		log.Fatal(err)
	}
	contra, err := cocg.GameByName("Contra")
	if err != nil {
		log.Fatal(err)
	}

	sys, err := cocg.Train([]*cocg.GameSpec{racer, contra}, cocg.TrainOptions{
		Players: 8, SessionsPerPlayer: 3, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, game := range sys.Games() {
		b, _ := sys.Bundle(game)
		fmt.Printf("%-12s %d stage types, DTC accuracy %.0f%%\n",
			game, b.Profile.NumStageTypes(), 100*b.OfflineAccuracy)
	}

	cluster := sys.NewCluster(1, cocg.PolicyCoCG)
	gen := sys.Generator(5)
	for i := 0; i < 3; i++ {
		cluster.Submit(gen.Next(racer))
		cluster.Submit(gen.Next(contra))
	}
	cluster.Run(45 * cocg.Minute)

	records := cluster.Records()
	fmt.Printf("\ncompleted %d sessions in 45 virtual minutes on one server\n", len(records))
	byGame := map[string]int{}
	for _, r := range records {
		byGame[r.Game]++
	}
	fmt.Printf("completions: %v\n", byGame)
	fmt.Printf("%s\n", cocg.Summarize(records))
	fmt.Printf("throughput (Eq. 2): %.0f\n", cocg.Throughput(records, nil))
}
