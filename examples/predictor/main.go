// Predictor: train the paper's three next-stage prediction algorithms (DTC,
// RF, GBDT) for each game with the category-appropriate sample selection and
// compare their accuracies — the data behind Fig. 15 — then demonstrate the
// dynamic-adjustment plans on a live session.
package main

import (
	"fmt"
	"log"

	"cocg/internal/dataset"
	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/predictor"
	"cocg/internal/profiler"
)

func main() {
	fmt.Println("## Next-stage prediction: DTC vs RF vs GBDT")
	for _, spec := range gamesim.AllGames() {
		corpus, err := gamesim.RecordPlayerCorpus(spec, gamesim.CorpusConfig{
			Players: 12, SessionsPerPlayer: 4, Seed: 2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		prof, err := profiler.Build(corpus, profiler.Config{K: len(spec.Clusters), Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		strategy := dataset.StrategyFor(spec.Category)
		ex := &dataset.Extractor{P: prof}
		groups := dataset.Select(strategy, ex, corpus)

		// Train and score per group (per player / cohort / pooled), then
		// aggregate weighted by test size — the paper's per-category
		// training-set construction.
		acc := map[string]float64{}
		total := 0
		for gi, g := range groups {
			if len(g.Transitions) < 8 {
				continue
			}
			ds, err := dataset.ToDataset(g.Transitions, prof.NumStageTypes())
			if err != nil {
				continue
			}
			train, test := ds.Split(0.75, int64(gi))
			if test.Len() == 0 {
				continue
			}
			models, err := predictor.TrainModels(train, int64(gi))
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range models {
				a, err := mlmodels.Evaluate(m, test)
				if err != nil {
					log.Fatal(err)
				}
				acc[m.Name()] += a * float64(test.Len())
			}
			total += test.Len()
		}
		fmt.Printf("%-15s strategy=%-13s", spec.Name, strategy)
		for _, name := range []string{"DTC", "RF", "GBDT"} {
			v := 0.0
			if total > 0 {
				v = acc[name] / float64(total)
			}
			fmt.Printf("  %s=%5.1f%%", name, 100*v)
		}
		fmt.Printf("  (n=%d)\n", total)
	}

	// Live session: watch the rehearsal callback and model replacement work.
	fmt.Println("\n## Dynamic adjustment on a live Genshin Impact session")
	spec := gamesim.GenshinImpact()
	trained, err := predictor.TrainForGame(spec, predictor.TrainConfig{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	habit := trained.Habits()[0]
	sess, err := gamesim.NewPlayerSession(spec, int(uint64(habit)%3), habit, 555)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := trained.NewSessionPredictorForHabit(habit, predictor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for !sess.Done() {
		if d, ok := pr.Observe(sess.Demand()); ok {
			switch {
			case d.Callback:
				fmt.Printf("t=%s rehearsal callback (model %s, P=%.2f)\n",
					sess.Elapsed(), pr.ActiveModel(), pr.Accuracy())
			case d.ModelSwitched:
				fmt.Printf("t=%s replacing model -> %s\n", sess.Elapsed(), pr.ActiveModel())
			case d.PredictedNext >= 0:
				fmt.Printf("t=%s predicted next stage %d, redundancy S=(1-%.2f)·M\n",
					sess.Elapsed(), d.PredictedNext, pr.Accuracy())
			}
		}
		sess.Step(pr.Alloc())
	}
	fmt.Printf("done: FPS %.0f%% of best, prediction accuracy %.0f%%\n",
		100*sess.FPSRatio(), 100*pr.Accuracy())
}
