// Colocation: the Fig. 9 scenario as a narrated timeline. Genshin Impact
// and DOTA2 share one server under the CoCG policy; the program prints the
// complementary utilization pattern, the distributor's admission decisions,
// and the regulator's loading-time stealing.
package main

import (
	"fmt"
	"log"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

func main() {
	fmt.Println("## Genshin Impact + DOTA2 on one server under CoCG")
	sys, err := core.Train(
		[]*gamesim.GameSpec{gamesim.GenshinImpact(), gamesim.DOTA2()},
		core.TrainOptions{Players: 10, SessionsPerPlayer: 4, Seed: 7},
	)
	if err != nil {
		log.Fatal(err)
	}

	cluster := sys.NewCluster(1, core.PolicyCoCG)
	cluster.StarveLimit = 5 * simclock.Minute
	gen := sys.Generator(99)
	stream := &workload.PairStream{Gen: gen, A: gamesim.GenshinImpact(), B: gamesim.DOTA2(), Backlog: 1}

	srv := cluster.Servers[0]
	lastHosted := -1
	const horizon = simclock.Hour
	for i := simclock.Seconds(0); i < horizon; i++ {
		stream.Feed(cluster)
		cluster.Tick()

		// Narrate placement changes.
		if n := srv.NumHosted(); n != lastHosted {
			names := ""
			for _, h := range srv.Hosted {
				names += h.Spec.Name + "  "
			}
			fmt.Printf("t=%-8s hosted=%d  %s\n", cluster.Clock.Now(), n, names)
			lastHosted = n
		}
		// Sample the utilization split once a minute.
		if i%simclock.Minute == 0 && srv.NumHosted() > 0 {
			total := srv.Utilization()
			fmt.Printf("t=%-8s total=%5.1f%%  ", cluster.Clock.Now(), total.Dominant())
			for _, h := range srv.Hosted {
				state := "exec"
				if h.Controller.Loading() {
					state = "load"
				}
				fmt.Printf("[%s %s %4.1f%%] ", h.Spec.Name, state, h.Granted.Dominant())
			}
			fmt.Println()
		}
	}

	recs := cluster.Records()
	fmt.Printf("\ncompleted sessions: %d\n", len(recs))
	var stolen float64
	for _, r := range recs {
		fmt.Printf("  %-15s ran %-8s fps=%5.1f (%.0f%% of best) degraded=%.1f%% loading stretched %.0fs\n",
			r.Game, r.Elapsed, r.AvgFPS, 100*r.FPSRatio, 100*r.Degraded, r.LoadStolen)
		stolen += r.LoadStolen
	}
	fmt.Printf("\n%s\n", platform.Summarize(recs))
	fmt.Printf("peak combined utilization: %.1f%%; loading time stolen in total: %.0f s\n",
		srv.PeakUtilization().Dominant(), stolen)
}
