// Streaming: the full Fig. 1 loop in one process. A CoCG-scheduled streaming
// server comes up on a loopback port, three clients with different last-mile
// networks connect and play concurrently, and each reports the experience it
// measured — frame rate, encoder bitrate, input round trip, and simulated
// delivery stutter.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/netmodel"
	"cocg/internal/streaming"
)

func main() {
	fmt.Println("## CoCG streaming demo: one server, three players, three networks")
	sys, err := core.Train(
		[]*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()},
		core.TrainOptions{Players: 6, SessionsPerPlayer: 3, Seed: 11},
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := streaming.Serve("127.0.0.1:0", streaming.ServerConfig{
		System:    sys,
		Policy:    core.PolicyCoCG,
		Servers:   2,
		TickEvery: 2 * time.Millisecond, // 500x speed
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	fmt.Printf("%s\n\n", srv)

	players := []struct {
		game string
		link *netmodel.Link
		net  string
	}{
		{"Contra", netmodel.FiberLink(1), "fiber"},
		{"Contra", netmodel.CableLink(2), "cable"},
		{"Genshin Impact", netmodel.MobileLink(3), "mobile"},
	}
	var wg sync.WaitGroup
	for i, p := range players {
		wg.Add(1)
		go func(i int, game, netName string, link *netmodel.Link) {
			defer wg.Done()
			stats, err := streaming.Play(srv.Addr(), streaming.ClientConfig{
				Game: game, Script: 0, Link: link, Timeout: 3 * time.Minute,
			})
			if err != nil {
				fmt.Printf("player %d (%s over %s): %v\n", i+1, game, netName, err)
				return
			}
			fmt.Printf("player %d: %s over %s\n", i+1, game, netName)
			fmt.Printf("  %d s of play, mean %.0f FPS (%.0f%% of best), %d s loading\n",
				stats.Final.DurationSec, stats.MeanFPS, 100*stats.Final.FPSRatio, stats.LoadingSec)
			fmt.Printf("  stream %.0f kbps, input RTT %.1f ms, delivery %.1f ms mean / %.1f%% stutter\n",
				stats.MeanBitrate, stats.MeanRTTMS,
				stats.Net.MeanLatencyMS(), 100*stats.Net.StutterRate())
		}(i, p.game, p.net, p.link)
	}
	wg.Wait()
}
