module cocg

go 1.22
