package cocg_test

// A long-run soak: a saturated mixed stream over an 8-server cluster for two
// virtual hours under every policy, asserting the platform's global
// invariants hold throughout. Skipped with -short.

import (
	"testing"

	"cocg"
	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

func TestSoakMixedClusterInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	sys, err := core.Train(gamesim.AllGames(), core.TrainOptions{
		Players: 8, SessionsPerPlayer: 3, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range core.AllPolicies() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c := sys.NewCluster(8, kind)
			c.StarveLimit = 5 * simclock.Minute
			gen := sys.Generator(13)
			stream := workload.NewMixStream(gen, gamesim.AllGames(), 0.08, 17)
			horizon := 2 * simclock.Hour
			for i := simclock.Seconds(0); i < horizon; i++ {
				stream.Feed(c)
				c.Tick()
				if i%97 == 0 {
					for _, srv := range c.Servers {
						u := srv.Utilization()
						for d := range u {
							if u[d] > srv.Capacity[d]+1e-6 {
								t.Fatalf("t=%d server %d over capacity: %v", i, srv.ID, u)
							}
						}
					}
				}
			}
			recs := c.Records()
			if len(recs) < 20 {
				t.Fatalf("only %d sessions completed in two hours", len(recs))
			}
			for _, r := range recs {
				if r.Elapsed <= 0 || r.FPSRatio < 0 || r.FPSRatio > 1.001 {
					t.Fatalf("malformed record: %+v", r)
				}
			}
			sum := platform.Summarize(recs)
			if kind == core.PolicyCoCG && sum.MeanGoodFPS < 0.95 {
				t.Errorf("CoCG good-FPS fraction %.3f under saturation", sum.MeanGoodFPS)
			}
			t.Logf("%s: %d sessions, throughput %.0f, %s",
				kind, len(recs), cocg.Throughput(recs, nil), sum)
		})
	}
}
