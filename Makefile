# Developer entry points. The repo is plain `go build ./...`-able; these
# targets just bundle the checks CI and reviewers expect.

GO ?= go

.PHONY: all build test race fmt lint bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus cocg-lint, the repo-specific determinism &
# correctness analyzers (see docs/STATIC_ANALYSIS.md). It exits non-zero on
# any finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cocg-lint ./...

# race is the concurrency gate: formatting must be clean, the analyzers must
# be silent, and the full suite (including the worker-count-invariance and
# harness determinism tests) must pass under the race detector.
race: fmt lint
	$(GO) test -race ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...
