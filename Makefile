# Developer entry points. The repo is plain `go build ./...`-able; these
# targets just bundle the checks CI and reviewers expect.

GO ?= go

.PHONY: all build test race fmt bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate: formatting must be clean, vet must pass, and
# the full suite (including the worker-count-invariance and harness
# determinism tests) must pass under the race detector.
race: fmt
	$(GO) vet ./...
	$(GO) test -race ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...
