# Developer entry points. The repo is plain `go build ./...`-able; these
# targets just bundle the checks CI and reviewers expect.

GO ?= go

.PHONY: all build test race fmt lint vuln docs-check bench bench-fleet bench-record bench-stream bench-coord bench-sim bench-train

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the full static gate: the docs link/anchor checker, the vuln sweep
# (explicit go vet passes + race soak), then cocg-lint — the repo-specific
# determinism & correctness analyzers (see docs/STATIC_ANALYSIS.md),
# including the //cocg:hot escape gate. It exits non-zero on any finding.
lint: docs-check vuln
	$(GO) run ./cmd/cocg-lint ./...

# vuln is the concurrency/correctness sweep: go vet with every standard pass
# explicitly enabled — listed out so a toolchain that re-scopes its default
# set cannot silently shrink the gate — plus a race-detector soak over the
# two goroutine-heavy serving tiers, run twice to shake out order-dependent
# interleavings.
vuln:
	$(GO) vet -appends -asmdecl -assign -atomic -bools -buildtag -cgocall \
		-composites -copylocks -defers -directive -errorsas -framepointer \
		-httpresponse -ifaceassert -loopclosure -lostcancel -nilfunc -printf \
		-shift -sigchanyzer -slog -stdmethods -stdversion -stringintconv \
		-structtag -testinggoroutine -tests -timeformat -unmarshal \
		-unreachable -unsafeptr -unusedresult ./...
	$(GO) test -race -count=2 ./internal/streaming/... ./internal/coordinator/...

# docs-check fails when any relative markdown link in README.md or docs/
# points at a file that no longer exists — the docs must not drift from the
# tree they describe.
docs-check:
	$(GO) run ./cmd/cocg-docscheck

# race is the concurrency gate: formatting must be clean, the analyzers must
# be silent, and the full suite (including the worker-count-invariance and
# harness determinism tests) must pass under the race detector.
race: fmt lint
	$(GO) test -race ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-fleet runs the fleet-scale placement benchmarks: a full distributor
# scan of a warm 1k-server fleet (Poisson arrivals over the five-game mix)
# at serial and parallel -jobs settings, plus the steady-state admission
# micro-benchmarks that must stay allocation-free. It then records the fleet
# load accounting trajectory (BENCH_PR10.json): the legacy full-scan
# ClusterLoad at 256/1024/4096 servers is recorded first and embedded as the
# baseline, then the incremental accountant's steady-state and churn polls
# over the identical fixtures — the equivalence suite (accountant_test.go)
# proves both sides bit-identical, so the ns/op ratio is a pure same-output
# speedup. Lint-gated like every recorded measurement.
FLEET_BENCH_OUT ?= BENCH_PR10.json
bench-fleet: lint
	$(GO) test -run '^$$' -bench 'FleetPlacement|Evaluate' -benchmem -benchtime 200x . ./internal/scheduler
	$(GO) test -count=1 -run 'FleetLoad|ClusterLoad|CacheSweep' ./internal/scheduler  # equivalence gates must pass before the record
	$(GO) run ./cmd/cocg-bench -bench 'ClusterLoadFullScan' \
		-pkgs ./internal/scheduler -benchtime 50x -out /tmp/cocg-fleet-baseline.json
	$(GO) run ./cmd/cocg-bench -bench 'FleetLoad|ClusterLoad' \
		-pkgs ./internal/scheduler -benchtime 200x \
		-baseline /tmp/cocg-fleet-baseline.json -out $(FLEET_BENCH_OUT)

# bench-record runs the hot-path benchmarks through cmd/cocg-bench and
# writes the machine-readable record BENCH_PR4.json (ns/op, B/op, allocs/op,
# custom metrics, plus commit/seed metadata) — the repo's benchmark
# trajectory, one checked-in record per perf PR. Lint gates it so a record
# is never taken from a tree the analyzers reject. Set BENCH_BASELINE to a
# previous record to embed it and print the deltas.
BENCH_OUT ?= BENCH_PR4.json
BENCH_BASELINE ?=
bench-record: lint
	$(GO) run ./cmd/cocg-bench -out $(BENCH_OUT) $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

# bench-stream runs the serving-path benchmarks (binary vs JSON codec,
# sharded vs global-lock registry, pooled parallel tick walk vs the legacy
# serial/allocating walk at 256+ sessions) through cmd/cocg-bench and records
# BENCH_PR5.json. The legacy-path benchmarks are kept in-tree as the "before"
# and are recorded first, then embedded as the baseline of the full record —
# one self-contained before/after artifact. Lint-gated like every recorded
# measurement.
STREAM_BENCH_OUT ?= BENCH_PR5.json
bench-stream: lint
	$(GO) run ./cmd/cocg-bench -bench 'WireFrameBatchJSON|RegistryGlobalLock|StreamTick256Legacy' \
		-pkgs ./internal/streaming -out /tmp/cocg-stream-baseline.json
	$(GO) run ./cmd/cocg-bench -bench 'WireFrameBatch|Registry|StreamTick' \
		-pkgs ./internal/streaming -baseline /tmp/cocg-stream-baseline.json -out $(STREAM_BENCH_OUT)

# bench-coord runs the fleet-tier benchmarks through cmd/cocg-bench and
# records BENCH_PR6.json: routing decisions/sec (one full score + rank over
# 4- to 1024-region fleets; ns/op is the per-session routing latency the
# coordinator adds before the first dial) and the forecast-backed 256-server
# cluster load summary each probe round costs. Lint-gated like every recorded
# measurement.
COORD_BENCH_OUT ?= BENCH_PR6.json
bench-coord: lint
	$(GO) run ./cmd/cocg-bench -bench 'FleetRoute|ClusterLoad' \
		-pkgs ./internal/... -out $(COORD_BENCH_OUT)

# bench-sim runs the simulation-core benchmarks and records BENCH_PR8.json:
# the legacy per-second cluster tick at 64 and 4096 sessions (the "before",
# recorded first and embedded as the baseline), then the event-driven span
# driver over the identical populations plus the 100k-session demonstration
# run and the zero-alloc steady server tick. The headline number is the
# sess-sec/s custom metric (session-seconds simulated per wall second).
# Lint-gated like every recorded measurement.
SIM_BENCH_OUT ?= BENCH_PR8.json
bench-sim: lint
	$(GO) run ./cmd/cocg-bench -bench 'SimTickLegacy' \
		-pkgs ./internal/platform -out /tmp/cocg-sim-baseline.json
	$(GO) run ./cmd/cocg-bench -bench 'SimTickLegacy|SimEvent|ServerTickSteady' \
		-pkgs ./internal/platform -baseline /tmp/cocg-sim-baseline.json -out $(SIM_BENCH_OUT)

# bench-train runs the model-training benchmarks and records BENCH_PR9.json:
# the legacy per-node-sorting Fit for DTC/RF/GBDT (the "before", recorded
# first and embedded as the baseline), then the pre-sorted column-index
# trainers over the identical 6000-transition corpus. The golden equivalence
# suite (fit_test.go) proves both sides produce byte-identical models, so the
# ns/op ratio is a pure same-output speedup. The legacy benchmarks run few
# fixed iterations because one legacy GBDT fit takes ~10 s. Lint-gated like
# every recorded measurement.
TRAIN_BENCH_OUT ?= BENCH_PR9.json
bench-train: lint
	$(GO) test -count=1 ./internal/mlmodels  # equivalence suite must pass before the record
	$(GO) run ./cmd/cocg-bench -bench '(DTC|RF|GBDT)FitLegacy' \
		-pkgs ./internal/mlmodels -benchtime 3x -out /tmp/cocg-train-baseline.json
	$(GO) run ./cmd/cocg-bench -bench '(DTC|RF|GBDT)Fit$$' \
		-pkgs ./internal/mlmodels -benchtime 10x \
		-baseline /tmp/cocg-train-baseline.json -out $(TRAIN_BENCH_OUT)
