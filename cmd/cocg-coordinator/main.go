// Command cocg-coordinator runs the fleet control plane: it fronts N
// cocg-server clusters (regions/zones), health-checks each over the
// streaming wire protocol, routes every arriving session to the cluster with
// the best predicted-headroom/latency trade-off, fails sessions over when a
// region goes down, and serves fleet-wide aggregated metrics.
//
// Usage:
//
//	cocg-coordinator -clusters "us-east=127.0.0.1:9555@12,eu-west=127.0.0.1:9565@85" \
//	                 [-addr :9500] [-metrics :9501] [-jobs N] [-probe 500ms] [-down-after 2]
//
// Each -clusters entry is "name=addr@latencyMS": the address of a running
// cocg-server plus the simulated user→region round-trip the routing score
// charges for it ("name=" and "@latencyMS" are optional). Clients and the
// load generator connect to -addr exactly as they would to a single
// cocg-server; the Accept they receive carries the chosen region in its
// "cluster" field. The probes pull each cluster's extended load summary
// (mean headroom, idle/draining server counts, and the per-game predicted
// demand breakdown the incremental fleet accountant maintains), and -metrics
// re-exports it per cluster alongside summary staleness and probe-failure
// counters. See docs/FLEET.md for the routing policy, failover semantics,
// metrics reference, and a 4-cluster local runbook.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"cocg/internal/coordinator"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9500", "session listen address")
	metricsAddr := flag.String("metrics", "", "serve fleet /metrics and /status on this address (e.g. :9501)")
	clusters := flag.String("clusters", "", `comma-separated fleet: "name=addr@latencyMS,..."`)
	jobs := flag.Int("jobs", 0, "goroutines for the routing scoring scan (<=1 serial; decisions are identical at any value)")
	probe := flag.Duration("probe", 500*time.Millisecond, "cluster summary-feed refresh period")
	downAfter := flag.Int("down-after", 2, "consecutive probe failures that mark a cluster down")
	latWeight := flag.Float64("latency-weight", 0, "routing score cost of the reference latency at full sensitivity (0 = default 0.5)")
	verbose := flag.Bool("v", false, "log routing state transitions and failovers")
	flag.Parse()

	specs, err := parseClusters(*clusters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocg-coordinator:", err)
		os.Exit(2)
	}

	cfg := coordinator.Config{
		Clusters:   specs,
		Jobs:       *jobs,
		ProbeEvery: *probe,
		DownAfter:  *downAfter,
		Weights:    coordinator.RouteWeights{Latency: *latWeight},
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	co, err := coordinator.Serve(*addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocg-coordinator:", err)
		os.Exit(1)
	}
	fmt.Printf("%s — ctrl-c to stop\n", co)
	for _, cs := range specs {
		fmt.Printf("  cluster %-12s %s (%.0f ms)\n", cs.Name, cs.Addr, cs.LatencyMS)
	}
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("fleet metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, co.MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down...")
	if err := co.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
}

// parseClusters parses the -clusters flag: comma-separated "name=addr@latMS"
// entries where "name=" and "@latMS" are optional.
func parseClusters(s string) ([]coordinator.ClusterSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-clusters is required (e.g. -clusters \"us=127.0.0.1:9555@10,eu=127.0.0.1:9565@80\")")
	}
	var out []coordinator.ClusterSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var cs coordinator.ClusterSpec
		if name, rest, ok := strings.Cut(entry, "="); ok {
			cs.Name = strings.TrimSpace(name)
			entry = rest
		}
		if addr, lat, ok := strings.Cut(entry, "@"); ok {
			ms, err := strconv.ParseFloat(strings.TrimSpace(lat), 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("bad latency in cluster entry %q", entry)
			}
			cs.LatencyMS = ms
			entry = addr
		}
		cs.Addr = strings.TrimSpace(entry)
		if cs.Addr == "" {
			return nil, fmt.Errorf("cluster entry with empty address")
		}
		out = append(out, cs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no clusters in %q", s)
	}
	return out, nil
}
