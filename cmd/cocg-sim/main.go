// Command cocg-sim runs a datacenter-scale co-location simulation: a mixed
// arrival stream of all five games over an N-server cluster under a chosen
// scheduling policy, reporting throughput and QoS.
//
// Usage:
//
//	cocg-sim [-servers N] [-hours H] [-rate R] [-policy cocg|vbp|gaugur|reactive]
//	         [-seed S] [-jobs J] [-sessions N] [-engine legacy|event]
//
// -engine event pregenerates the arrival schedule and runs the event-driven
// cluster driver (bit-identical outputs, far fewer executed ticks when the
// policy certifies bulk windows); -sessions pre-submits N arrivals at t=0 for
// large-population runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/persist"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

func main() {
	servers := flag.Int("servers", 4, "number of game servers")
	hours := flag.Float64("hours", 1, "simulated duration in hours")
	rate := flag.Float64("rate", 0.02, "mean arrivals per simulated second")
	policy := flag.String("policy", "cocg", "scheduling policy: cocg, vbp, gaugur, reactive, all")
	seed := flag.Int64("seed", 1, "random seed")
	jobs := flag.Int("jobs", 0, "placement-scan and tick-fanout worker goroutines (<=1 serial; any value simulates identically)")
	bundle := flag.String("bundle", "", "load a pre-trained system from this cocg-train bundle instead of training")
	sessions := flag.Int("sessions", 0, "arrivals pre-submitted at t=0 (round-robin over the mix), on top of the stream")
	engine := flag.String("engine", "legacy", "cluster driver: legacy (per-second loop) or event (bulk span advancement)")
	flag.Parse()

	if *engine != "legacy" && *engine != "event" {
		fmt.Fprintf(os.Stderr, "cocg-sim: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	kinds := map[string]core.PolicyKind{
		"cocg": core.PolicyCoCG, "vbp": core.PolicyVBP,
		"gaugur": core.PolicyGAugur, "reactive": core.PolicyReactive,
	}
	var selected []core.PolicyKind
	if *policy == "all" {
		selected = core.AllPolicies()
	} else if k, ok := kinds[strings.ToLower(*policy)]; ok {
		selected = []core.PolicyKind{k}
	} else {
		fmt.Fprintf(os.Stderr, "cocg-sim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	start := time.Now()
	var sys *core.System
	var err error
	if *bundle != "" {
		fmt.Printf("loading pre-trained system from %s...\n", *bundle)
		sys, err = persist.LoadFile(*bundle)
	} else {
		fmt.Println("training the five-game system (offline pass)...")
		sys, err = core.Train(gamesim.AllGames(), core.TrainOptions{Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("system ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	horizon := simclock.Seconds(*hours * 3600)
	for _, kind := range selected {
		c := sys.NewCluster(*servers, kind)
		c.StarveLimit = 5 * simclock.Minute
		c.Jobs = *jobs
		gen := sys.Generator(*seed + 7)
		stream := workload.NewMixStream(gen, gamesim.AllGames(), *rate, *seed+11)
		mix := gamesim.AllGames()
		for i := 0; i < *sessions; i++ {
			c.Submit(gen.Next(mix[i%len(mix)]))
		}
		t0 := time.Now()
		if *engine == "event" {
			c.RunEvented(horizon, stream.Schedule(0, horizon))
		} else {
			for i := simclock.Seconds(0); i < horizon; i++ {
				stream.Feed(c)
				c.Tick()
			}
		}
		recs := c.Records()
		type agg struct {
			n             int
			fps, p5, degr float64
		}
		byGame := map[string]*agg{}
		for _, r := range recs {
			a := byGame[r.Game]
			if a == nil {
				a = &agg{}
				byGame[r.Game] = a
			}
			a.n++
			a.fps += r.FPSRatio
			a.p5 += r.P5FPS
			a.degr += r.Degraded
		}
		fmt.Printf("policy=%s servers=%d horizon=%s (ran in %v)\n",
			kind, *servers, horizon, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  throughput (Eq. 2): %.0f   still running: %d   pending: %d\n",
			platform.Throughput(recs, nil), c.RunningSessions(), len(c.Pending))
		fmt.Printf("  QoS: %s\n", platform.Summarize(recs))
		names := make([]string, 0, len(byGame))
		for g := range byGame {
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			a := byGame[g]
			n := float64(a.n)
			fmt.Printf("    %-15s runs=%-3d fps=%5.1f%%  p5fps=%5.1f  degraded=%4.1f%%\n",
				g, a.n, 100*a.fps/n, a.p5/n, 100*a.degr/n)
		}
		fmt.Println()
	}
}
