// Command cocg-server runs a GamingAnywhere-style streaming front end: it
// trains the CoCG system, hosts a scheduled game-server cluster, and accepts
// cocg-client connections over TCP (Fig. 1's cloud end).
//
// Usage:
//
//	cocg-server [-addr :9555] [-servers N] [-policy cocg|vbp|gaugur|reactive] [-speed X] [-jobs N]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/persist"
	"cocg/internal/streaming"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9555", "listen address")
	servers := flag.Int("servers", 2, "backend game servers")
	policy := flag.String("policy", "cocg", "scheduling policy")
	speed := flag.Float64("speed", 100, "simulation speed: virtual seconds per real second")
	seed := flag.Int64("seed", 1, "random seed")
	jobs := flag.Int("jobs", 0, "goroutines for the per-tick delivery walk (<=1 serial; outcomes are identical at any value)")
	bundle := flag.String("bundle", "", "load a pre-trained system from this cocg-train bundle instead of training")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /status on this address (e.g. :9556)")
	flag.Parse()

	kinds := map[string]core.PolicyKind{
		"cocg": core.PolicyCoCG, "vbp": core.PolicyVBP,
		"gaugur": core.PolicyGAugur, "reactive": core.PolicyReactive,
	}
	kind, ok := kinds[strings.ToLower(*policy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "cocg-server: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if *speed <= 0 {
		*speed = 1
	}

	var sys *core.System
	var err error
	if *bundle != "" {
		fmt.Printf("loading pre-trained system from %s...\n", *bundle)
		sys, err = persist.LoadFile(*bundle)
	} else {
		fmt.Println("training the five-game system (offline pass)...")
		sys, err = core.Train(gamesim.AllGames(), core.TrainOptions{Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv, err := streaming.Serve(*addr, streaming.ServerConfig{
		System:      sys,
		Policy:      kind,
		Servers:     *servers,
		TickEvery:   time.Duration(float64(time.Second) / *speed),
		SessionSeed: *seed,
		Jobs:        *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s — %gx speed; ctrl-c to stop\n", srv, *speed)
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, srv.MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down...")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
}
