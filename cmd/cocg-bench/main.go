// Command cocg-bench records a machine-readable benchmark trajectory for the
// repository's hot paths. It runs the selected `go test -bench` benchmarks
// with allocation reporting, parses the standard benchmark output, and writes
// a JSON record (ns/op, B/op, allocs/op, and any custom per-op metrics for
// every benchmark, plus commit/toolchain metadata) so each performance PR can
// check a before/after snapshot into the repo root.
//
// Usage:
//
//	cocg-bench [-bench regex] [-pkgs pattern] [-count N] [-benchtime D]
//	           [-baseline old.json] -out BENCH_PRn.json
//
// The -baseline flag embeds the "benchmarks" section of a previous record
// under "baseline" in the new file, so a single artifact carries the
// before/after pair. See docs/PERFORMANCE.md for the workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark's parsed per-op numbers.
type BenchResult struct {
	Pkg         string             `json:"pkg"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file format: metadata plus a name-keyed benchmark map, with
// an optional embedded baseline from a previous record.
type Record struct {
	Schema     string                 `json:"schema"`
	Recorded   string                 `json:"recorded"`
	Commit     string                 `json:"commit"`
	Dirty      bool                   `json:"dirty"`
	GoVersion  string                 `json:"go"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	BenchSeed  int64                  `json:"bench_seed"`
	Bench      string                 `json:"bench"`
	Baseline   map[string]BenchResult `json:"baseline,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "Predict|KMeans|KNN|FleetPlacement|Evaluate|FleetLoad", "benchmark name regex passed to go test -bench")
	pkgs := flag.String("pkgs", "./...", "package pattern to benchmark")
	count := flag.Int("count", 1, "go test -count")
	benchtime := flag.String("benchtime", "", "go test -benchtime (empty = go default)")
	baseline := flag.String("baseline", "", "previous record to embed under \"baseline\"")
	out := flag.String("out", "BENCH_PR4.json", "output JSON path")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkgs)

	fmt.Fprintf(os.Stderr, "cocg-bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	output, err := cmd.Output()
	_, _ = os.Stdout.Write(output) // echo for the operator; parse errors dominate
	if err != nil {
		fmt.Fprintf(os.Stderr, "cocg-bench: go test: %v\n", err)
		os.Exit(1)
	}

	rec := &Record{
		Schema:     "cocg-bench/v1",
		Recorded:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchSeed:  1, // the fixed seed the bench fixtures train with
		Bench:      *bench,
		Benchmarks: parseBenchOutput(string(output)),
	}
	rec.Commit, rec.Dirty = gitState()
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "cocg-bench: no benchmarks matched %q\n", *bench)
		os.Exit(1)
	}
	if *baseline != "" {
		prev, err := readRecord(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-bench: baseline: %v\n", err)
			os.Exit(1)
		}
		rec.Baseline = prev.Benchmarks
	}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cocg-bench: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cocg-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cocg-bench: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
	printDeltas(rec)
}

// parseBenchOutput extracts per-benchmark numbers from `go test -bench`
// stdout. Benchmarks are keyed "pkg:Name" (GOMAXPROCS suffix stripped) so
// identically named benchmarks in different packages cannot collide. When
// -count > 1 repeats a benchmark, the fastest ns/op run wins (minimum-noise
// estimate); allocation stats are identical across repeats by construction.
func parseBenchOutput(out string) map[string]BenchResult {
	results := map[string]BenchResult{}
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "pkg:" {
			pkg = fields[1]
			continue
		}
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Pkg: pkg, Procs: procs, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		key := shortPkg(pkg) + ":" + name
		if prev, ok := results[key]; !ok || r.NsPerOp < prev.NsPerOp {
			results[key] = r
		}
	}
	return results
}

// splitProcs strips the -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 1
	}
	return name[:i], n
}

// shortPkg trims the module prefix so keys read "internal/mlmodels" rather
// than "cocg/internal/mlmodels", and the bare module package reads "root".
func shortPkg(pkg string) string {
	const module = "cocg"
	if pkg == module {
		return "root"
	}
	return strings.TrimPrefix(pkg, module+"/")
}

// gitState reports the current commit (short hash) and whether the tree is
// dirty; both degrade gracefully outside a git checkout.
func gitState() (string, bool) {
	rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown", false
	}
	status, err := exec.Command("git", "status", "--porcelain").Output()
	if err != nil {
		return strings.TrimSpace(string(rev)), false
	}
	return strings.TrimSpace(string(rev)), len(strings.TrimSpace(string(status))) > 0
}

// readRecord loads a previous benchmark record.
func readRecord(path string) (*Record, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// printDeltas summarizes current-vs-baseline movement for benchmarks present
// in both sections.
func printDeltas(rec *Record) {
	if len(rec.Baseline) == 0 {
		return
	}
	names := make([]string, 0, len(rec.Benchmarks))
	for name := range rec.Benchmarks {
		if _, ok := rec.Baseline[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		cur, base := rec.Benchmarks[name], rec.Baseline[name]
		if base.NsPerOp <= 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-48s ns/op %10.0f -> %10.0f (%+.1f%%)  allocs/op %6.0f -> %6.0f\n",
			name, base.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp-base.NsPerOp)/base.NsPerOp,
			base.AllocsPerOp, cur.AllocsPerOp)
	}
}
