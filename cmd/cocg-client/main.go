// Command cocg-client plays one cloud-game session against a cocg-server
// and reports the player-side experience (Fig. 1's client end).
//
// Usage:
//
//	cocg-client [-addr host:port] [-script N] [-timeout 2m] <game>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cocg/internal/netmodel"
	"cocg/internal/streaming"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9555", "server address")
	script := flag.Int("script", 0, "script index to play")
	timeout := flag.Duration("timeout", 2*time.Minute, "session timeout")
	link := flag.String("link", "", "simulate a last-mile network: fiber, cable, or mobile")
	proto := flag.String("proto", "binary", "max wire protocol to offer: binary or json (legacy)")
	flag.Parse()

	protos := map[string]int{"binary": streaming.ProtoBinary, "json": streaming.ProtoJSON}
	maxProto, ok := protos[strings.ToLower(*proto)]
	if !ok {
		fmt.Fprintf(os.Stderr, "cocg-client: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	var nl *netmodel.Link
	switch strings.ToLower(*link) {
	case "":
	case "fiber":
		nl = netmodel.FiberLink(time.Now().UnixNano())
	case "cable":
		nl = netmodel.CableLink(time.Now().UnixNano())
	case "mobile":
		nl = netmodel.MobileLink(time.Now().UnixNano())
	default:
		fmt.Fprintf(os.Stderr, "cocg-client: unknown link profile %q\n", *link)
		os.Exit(2)
	}

	game := strings.Join(flag.Args(), " ")
	if game == "" {
		fmt.Fprintln(os.Stderr, "usage: cocg-client [flags] <game>")
		os.Exit(2)
	}

	fmt.Printf("connecting to %s to play %s (script %d)...\n", *addr, game, *script)
	stats, err := streaming.Play(*addr, streaming.ClientConfig{
		Game: game, Script: *script, Timeout: *timeout, Link: nl, MaxProto: maxProto,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wire := "json"
	if stats.Proto == streaming.ProtoBinary {
		wire = "binary"
	}
	fmt.Printf("session %d finished: played %d s of virtual time over the %s protocol\n",
		stats.SessionID, stats.Final.DurationSec, wire)
	if stats.SeqGaps > 0 {
		fmt.Printf("  drops:  %d sequence gaps (server coalesced or dropped batches under backpressure)\n", stats.SeqGaps)
	}
	fmt.Printf("  stream: %d frame batches, mean %.1f FPS, %.0f kbps, %d s of loading screens\n",
		stats.Frames, stats.MeanFPS, stats.MeanBitrate, stats.LoadingSec)
	fmt.Printf("  QoS:    %.0f%% of best FPS, degraded %.1f%% of play, input RTT %.1f ms\n",
		100*stats.Final.FPSRatio, 100*stats.Final.Degraded, stats.MeanRTTMS)
	if nl != nil {
		fmt.Printf("  net:    mean delivery %.1f ms (worst %.1f), stutter rate %.1f%%, lost %d\n",
			stats.Net.MeanLatencyMS(), stats.Net.WorstLatencyMS(),
			100*stats.Net.StutterRate(), stats.Net.Lost)
	}
}
