// Command cocg-train runs the one-time offline pass (profiling corpus, frame
// clustering, stage catalogs, predictor training) for the five-game suite
// and writes the trained system to a bundle file that cocg-sim and
// cocg-server can load without retraining — the paper's "profiling and model
// training only need to be performed once" made literal.
//
// Usage:
//
//	cocg-train [-o system.cocg.gz] [-players N] [-sessions N] [-seed S]
//	           [-jobs N] [-cpuprofile cpu.out] [-memprofile mem.out] [game ...]
//
// The trained bundle is a pure function of the corpus parameters and -seed:
// -jobs only bounds the training goroutines (clustering, RF bagging, GBDT
// rounds, tree feature scans) and never changes the result, so profiling runs
// at -jobs 1 measure the same training the production pass performs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/persist"
	"cocg/internal/profiling"
)

// defaultJobs resolves the -jobs default: the COCG_JOBS environment
// variable when it parses as a positive integer, else the CPU count. An
// explicit -jobs flag overrides both.
func defaultJobs() int {
	if s := os.Getenv("COCG_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
		fmt.Fprintf(os.Stderr, "cocg-train: ignoring invalid COCG_JOBS=%q\n", s)
	}
	return runtime.NumCPU()
}

func main() {
	out := flag.String("o", "system.cocg.gz", "output bundle path")
	players := flag.Int("players", 12, "players per game in the profiling corpus")
	sessions := flag.Int("sessions", 4, "sessions per player")
	seed := flag.Int64("seed", 1, "random seed")
	jobs := flag.Int("jobs", defaultJobs(),
		"max concurrent training workers; the trained bundle does not depend on it (flag beats COCG_JOBS env, which beats the CPU-count default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, perr := profiling.Start(*cpuProfile, *memProfile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(2)
	}
	// die stops the profilers (so partial profiles still flush) and exits.
	die := func(code int, v any) {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		fmt.Fprintln(os.Stderr, v)
		os.Exit(code)
	}

	specs := gamesim.AllGames()
	if flag.NArg() > 0 {
		specs = specs[:0]
		for _, name := range flag.Args() {
			g, err := gamesim.GameByName(name)
			if err != nil {
				die(2, err)
			}
			specs = append(specs, g)
		}
	}

	start := time.Now()
	fmt.Printf("training %d games (%d players x %d sessions each, %d workers)...\n",
		len(specs), *players, *sessions, *jobs)
	sys, err := core.Train(specs, core.TrainOptions{
		Players: *players, SessionsPerPlayer: *sessions, Seed: *seed, Workers: *jobs,
	})
	if err != nil {
		die(1, err)
	}
	for _, game := range sys.Games() {
		b, _ := sys.Bundle(game)
		fmt.Printf("  %-15s %d stage types, DTC accuracy %.0f%%, %d habit models\n",
			game, b.Profile.NumStageTypes(), 100*b.OfflineAccuracy, len(b.HabitModels))
	}
	if err := persist.SaveFile(sys, *out); err != nil {
		die(1, err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		die(1, err)
	}
	fmt.Printf("wrote %s (%d KiB) in %v\n", *out, info.Size()/1024, time.Since(start).Round(time.Millisecond))
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
