// Command cocg-train runs the one-time offline pass (profiling corpus, frame
// clustering, stage catalogs, predictor training) for the five-game suite
// and writes the trained system to a bundle file that cocg-sim and
// cocg-server can load without retraining — the paper's "profiling and model
// training only need to be performed once" made literal.
//
// Usage:
//
//	cocg-train [-o system.cocg.gz] [-players N] [-sessions N] [-seed S] [game ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/persist"
)

func main() {
	out := flag.String("o", "system.cocg.gz", "output bundle path")
	players := flag.Int("players", 12, "players per game in the profiling corpus")
	sessions := flag.Int("sessions", 4, "sessions per player")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	specs := gamesim.AllGames()
	if flag.NArg() > 0 {
		specs = specs[:0]
		for _, name := range flag.Args() {
			g, err := gamesim.GameByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			specs = append(specs, g)
		}
	}

	start := time.Now()
	fmt.Printf("training %d games (%d players x %d sessions each)...\n",
		len(specs), *players, *sessions)
	sys, err := core.Train(specs, core.TrainOptions{
		Players: *players, SessionsPerPlayer: *sessions, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, game := range sys.Games() {
		b, _ := sys.Bundle(game)
		fmt.Printf("  %-15s %d stage types, DTC accuracy %.0f%%, %d habit models\n",
			game, b.Profile.NumStageTypes(), 100*b.OfflineAccuracy, len(b.HabitModels))
	}
	if err := persist.SaveFile(sys, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d KiB) in %v\n", *out, info.Size()/1024, time.Since(start).Round(time.Millisecond))
}
