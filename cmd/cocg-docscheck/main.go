// Command cocg-docscheck is the documentation link checker wired into `make
// docs-check` (and through it `make lint`): it walks the repo's markdown —
// README.md plus everything under docs/ by default — and fails when any
// relative link points at a file that does not exist. External links
// (http/https/mailto) and pure in-page anchors are out of scope; the tool
// exists to catch the docs drifting from the tree, not to audit the
// internet.
//
// Usage:
//
//	cocg-docscheck [-root dir] [paths...]
//
// Each path is a markdown file or a directory to walk for *.md files,
// resolved under -root (default "."). Links starting with "/" resolve
// against -root, everything else against the containing file's directory;
// fragments ("#section") are stripped before the existence check. Exits 0
// when every link resolves, 2 with a file:line listing otherwise.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style definitions ("[id]: target") are rare in
// this repo and intentionally out of scope.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	root := flag.String("root", ".", "repository root that rooted (/...) links resolve against")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"README.md", "docs"}
	}

	var files []string
	for _, tgt := range targets {
		path := filepath.Join(*root, tgt)
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-docscheck: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-docscheck: %v\n", err)
			os.Exit(2)
		}
	}

	broken := 0
	checked := 0
	for _, file := range files {
		b, c, err := checkFile(file, *root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-docscheck: %v\n", err)
			os.Exit(2)
		}
		broken += b
		checked += c
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "cocg-docscheck: %d broken link(s) across %d file(s)\n", broken, len(files))
		os.Exit(2)
	}
	fmt.Printf("cocg-docscheck: %d links across %d markdown files all resolve\n", checked, len(files))
}

// checkFile scans one markdown file and reports its broken relative links.
func checkFile(file, root string) (broken, checked int, err error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return 0, 0, err
	}
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue // code blocks show literal syntax, not navigable links
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := strings.TrimSpace(m[1])
			target = strings.TrimSuffix(target, ">")
			target = strings.TrimPrefix(target, "<")
			if target == "" || strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx] // the existence check is per-file, not per-anchor
			}
			var resolved string
			if strings.HasPrefix(target, "/") {
				resolved = filepath.Join(root, target)
			} else {
				resolved = filepath.Join(filepath.Dir(file), target)
			}
			checked++
			if _, statErr := os.Stat(resolved); statErr != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (resolved %s)\n", file, i+1, m[1], resolved)
				broken++
			}
		}
	}
	return broken, checked, nil
}
