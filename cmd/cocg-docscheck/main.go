// Command cocg-docscheck is the documentation link checker wired into `make
// docs-check` (and through it `make lint`): it walks the repo's markdown —
// README.md plus everything under docs/ by default — and fails when any
// relative link points at a file that does not exist, or when a fragment
// (in-page "#section" or cross-file "FILE.md#section") names a heading
// anchor the target does not define. External links (http/https/mailto) are
// out of scope; the tool exists to catch the docs drifting from the tree,
// not to audit the internet.
//
// Usage:
//
//	cocg-docscheck [-root dir] [paths...]
//
// Each path is a markdown file or a directory to walk for *.md files,
// resolved under -root (default "."). Links starting with "/" resolve
// against -root, everything else against the containing file's directory.
// Anchors are computed GitHub-style: the heading lowercased, everything but
// letters, digits, spaces, underscores and dashes stripped, spaces turned
// into dashes, and duplicate headings suffixed -1, -2, ... in order. Exits 0
// when every link and anchor resolves, 2 with a file:line listing otherwise.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style definitions ("[id]: target") are rare in
// this repo and intentionally out of scope.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	root := flag.String("root", ".", "repository root that rooted (/...) links resolve against")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"README.md", "docs"}
	}

	var files []string
	for _, tgt := range targets {
		path := filepath.Join(*root, tgt)
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-docscheck: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-docscheck: %v\n", err)
			os.Exit(2)
		}
	}

	broken := 0
	checked := 0
	for _, file := range files {
		b, c, err := checkFile(file, *root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cocg-docscheck: %v\n", err)
			os.Exit(2)
		}
		broken += b
		checked += c
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "cocg-docscheck: %d broken link(s) across %d file(s)\n", broken, len(files))
		os.Exit(2)
	}
	fmt.Printf("cocg-docscheck: %d links across %d markdown files all resolve\n", checked, len(files))
}

// anchorCache memoizes per-file heading anchors: the same target (this
// file's own headings, or a hub doc linked from everywhere) is scanned once.
var anchorCache = map[string]map[string]bool{}

// anchorsFor computes the GitHub-style anchor set of a markdown file's
// headings, including the -1/-2 suffixes GitHub appends to duplicates.
func anchorsFor(file string) (map[string]bool, error) {
	if a, ok := anchorCache[file]; ok {
		return a, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			continue // "#!/bin/sh"-style text, not a heading
		}
		slug := slugify(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	anchorCache[file] = anchors
	return anchors, nil
}

// slugify lowercases a heading and keeps letters, digits, underscores and
// dashes, mapping spaces to dashes — the GitHub anchor algorithm for the
// ASCII headings this repo uses.
func slugify(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// checkFile scans one markdown file and reports its broken relative links.
func checkFile(file, root string) (broken, checked int, err error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return 0, 0, err
	}
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue // code blocks show literal syntax, not navigable links
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := strings.TrimSpace(m[1])
			target = strings.TrimSuffix(target, ">")
			target = strings.TrimPrefix(target, "<")
			if target == "" || strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			frag := ""
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target, frag = target[:idx], target[idx+1:]
			}
			var resolved string
			switch {
			case target == "": // pure in-page anchor
				resolved = file
			case strings.HasPrefix(target, "/"):
				resolved = filepath.Join(root, target)
			default:
				resolved = filepath.Join(filepath.Dir(file), target)
			}
			checked++
			if target != "" {
				if _, statErr := os.Stat(resolved); statErr != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (resolved %s)\n", file, i+1, m[1], resolved)
					broken++
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				anchors, anchErr := anchorsFor(resolved)
				if anchErr != nil {
					return 0, 0, anchErr
				}
				if !anchors[strings.ToLower(frag)] {
					fmt.Fprintf(os.Stderr, "%s:%d: broken anchor %q (no heading in %s slugs to #%s)\n", file, i+1, m[1], resolved, frag)
					broken++
				}
			}
		}
	}
	return broken, checked, nil
}
