// Command cocg-loadgen drives a fleet of concurrent cocg-client sessions
// against a running cocg-server — or a cocg-coordinator fronting many of
// them — and reports the serving-path throughput the way a load-test harness
// would: admission rate, aggregate frame-batch throughput, the p50/p99
// inter-batch delivery latency seen by clients, and how many batches the
// server shed under backpressure.
//
// Usage:
//
//	cocg-loadgen [-addr host:port] [-n 64] [-c 32] [-game Contra] [-script -1]
//	             [-mix] [-proto binary|json] [-timeout 2m]
//
// A -script of -1 rotates every session through the game's script list, so
// the offered load exercises all trained stage mixes. -mix is the fleet
// mode: sessions rotate through every registered game (ignoring -game), the
// offered load that exercises a coordinator's per-game routing weights. When
// the target is a coordinator, the summary additionally reports the routing
// distribution — how many sessions each cluster (region) served, as stamped
// in the Accept's "cluster" field.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cocg/internal/gamesim"
	"cocg/internal/parallel"
	"cocg/internal/streaming"
)

// sessionResult is one finished (or failed) session's client-side record.
type sessionResult struct {
	stats *streaming.ClientStats
	gaps  []float64 // inter-batch arrival gaps, milliseconds
	err   error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9555", "server address")
	n := flag.Int("n", 64, "total sessions to play")
	c := flag.Int("c", 32, "concurrent sessions in flight")
	game := flag.String("game", "Contra", "game to request")
	mix := flag.Bool("mix", false, "fleet mode: rotate sessions through every registered game (ignores -game)")
	script := flag.Int("script", -1, "script index; -1 rotates through the game's scripts")
	proto := flag.String("proto", "binary", "max wire protocol to offer: binary or json (legacy)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-session timeout")
	flag.Parse()

	protos := map[string]int{"binary": streaming.ProtoBinary, "json": streaming.ProtoJSON}
	maxProto, ok := protos[strings.ToLower(*proto)]
	if !ok {
		fmt.Fprintf(os.Stderr, "cocg-loadgen: unknown protocol %q\n", *proto)
		os.Exit(2)
	}
	games := []*gamesim.GameSpec{}
	if *mix {
		games = gamesim.AllGames()
	} else {
		spec, err := gamesim.GameByName(*game)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cocg-loadgen:", err)
			os.Exit(2)
		}
		games = append(games, spec)
	}
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "cocg-loadgen: -n must be positive")
		os.Exit(2)
	}

	offered := games[0].Name
	if *mix {
		offered = fmt.Sprintf("a %d-game mix", len(games))
	}
	fmt.Printf("cocg-loadgen: %d sessions of %s against %s (%s wire, %d in flight)\n",
		*n, offered, *addr, *proto, *c)

	results := make([]sessionResult, *n)
	var inFlight, peak atomic.Int64
	grp := parallel.NewGroup(*c)
	start := time.Now()
	for i := 0; i < *n; i++ {
		i := i
		grp.Go(func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			defer inFlight.Add(-1)
			r := &results[i]
			spec := games[i%len(games)]
			sc := *script
			if sc < 0 {
				sc = (i / len(games)) % len(spec.Scripts)
			}
			var mu sync.Mutex
			var last time.Time
			r.stats, r.err = streaming.Play(*addr, streaming.ClientConfig{
				Game: spec.Name, Script: sc, Timeout: *timeout, MaxProto: maxProto,
				OnFrames: func(f *streaming.FrameBatch) {
					now := time.Now()
					mu.Lock()
					if !last.IsZero() {
						r.gaps = append(r.gaps, float64(now.Sub(last))/float64(time.Millisecond))
					}
					last = now
					mu.Unlock()
				},
			})
			return nil // failures are reported in the summary, not fatal
		})
	}
	if err := grp.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "cocg-loadgen:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	var completed, rejected int
	var frames, drops int64
	var rttSum float64
	var rttN int
	var lat []float64
	var firstErr error
	byCluster := map[string]int{}
	for _, r := range results {
		if r.err != nil {
			rejected++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		completed++
		frames += int64(r.stats.Frames)
		drops += int64(r.stats.SeqGaps)
		if r.stats.MeanRTTMS > 0 {
			rttSum += r.stats.MeanRTTMS
			rttN++
		}
		if r.stats.Cluster != "" {
			byCluster[r.stats.Cluster]++
		}
		lat = append(lat, r.gaps...)
	}
	sort.Float64s(lat)

	fmt.Printf("finished in %.2f s (peak %d sessions in flight)\n", elapsed.Seconds(), peak.Load())
	fmt.Printf("  sessions: %d completed, %d failed — %.2f sessions/sec\n",
		completed, rejected, float64(completed)/elapsed.Seconds())
	if firstErr != nil {
		fmt.Printf("  (first failure: %v)\n", firstErr)
	}
	fmt.Printf("  frames:   %d batches — %.0f frames/sec aggregate\n",
		frames, float64(frames)/elapsed.Seconds())
	if len(lat) > 0 {
		fmt.Printf("  delivery: p50 %.2f ms, p99 %.2f ms between batches\n",
			percentile(lat, 0.50), percentile(lat, 0.99))
	}
	if rttN > 0 {
		fmt.Printf("  input:    mean RTT %.1f ms across %d sessions\n", rttSum/float64(rttN), rttN)
	}
	fmt.Printf("  drops:    %d sequence gaps (batches coalesced or dropped under backpressure)\n", drops)
	if len(byCluster) > 0 {
		names := make([]string, 0, len(byCluster))
		for name := range byCluster {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, byCluster[name]))
		}
		fmt.Printf("  routing:  %s\n", strings.Join(parts, " "))
	}
	if completed == 0 {
		os.Exit(1)
	}
}

// percentile returns the p-quantile (0..1) of a sorted sample by
// nearest-rank; the sample must be non-empty.
func percentile(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
