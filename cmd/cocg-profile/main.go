// Command cocg-profile runs the offline frame-grained profiling pass
// (Section IV-A) for one game and prints its frame clusters, stage-type
// catalog, and an SSE sweep for cluster-count selection.
//
// Usage:
//
//	cocg-profile [-seed N] [-players N] [-k K] [-sweep] <game>
//
// Game names: DOTA2, CSGO, "Genshin Impact", "Devil May Cry", Contra.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cocg/internal/cluster"
	"cocg/internal/gamesim"
	"cocg/internal/profiler"
	"cocg/internal/profiling"
	"cocg/internal/resources"
	"cocg/internal/simclock"
	"cocg/internal/tracefile"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	players := flag.Int("players", 6, "players per script in the profiling corpus")
	k := flag.Int("k", 0, "number of frame clusters (0 = elbow selection)")
	sweep := flag.Bool("sweep", false, "print the SSE-vs-K sweep (Fig. 14)")
	specPath := flag.String("spec", "", "profile a custom game described by this JSON spec file instead of a built-in game")
	saveTraces := flag.String("save-traces", "", "also save the recorded traces into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, perr := profiling.Start(*cpuProfile, *memProfile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	// die stops the profilers (so partial profiles still flush) and exits.
	die := func(code int, v any) {
		fmt.Fprintln(os.Stderr, v)
		_ = stopProfiles()
		os.Exit(code)
	}

	var spec *gamesim.GameSpec
	var err error
	if *specPath != "" {
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			die(2, ferr)
		}
		spec, err = gamesim.LoadSpec(f)
		_ = f.Close() // read-only file; a LoadSpec error dominates
	} else {
		name := strings.Join(flag.Args(), " ")
		if name == "" {
			die(2, "usage: cocg-profile [flags] <game>  (or -spec file.json)")
		}
		spec, err = gamesim.GameByName(name)
	}
	if err != nil {
		die(2, err)
	}

	fmt.Printf("profiling %s (%s, %d scripts, %d players per script)\n",
		spec.Name, spec.Category, len(spec.Scripts), *players)
	traces, err := gamesim.RecordCorpus(spec, *players, *seed)
	if err != nil {
		die(1, err)
	}
	var frameCount int
	for _, tr := range traces {
		frameCount += len(tr.Frames)
	}
	fmt.Printf("recorded %d traces, %d frames (%s of play)\n",
		len(traces), frameCount, simclock.Seconds(frameCount*int(simclock.FrameLen)))
	if *saveTraces != "" {
		paths, err := tracefile.SaveAll(traces, *saveTraces)
		if err != nil {
			die(1, err)
		}
		fmt.Printf("saved %d trace files under %s\n", len(paths), *saveTraces)
	}

	if *sweep {
		var frames []resources.Vector
		for _, tr := range traces {
			frames = append(frames, tr.FrameVectors()...)
		}
		curve, err := cluster.Sweep(frames, 8, *seed, 0)
		if err != nil {
			die(1, err)
		}
		fmt.Println("\nSSE sweep (Fig. 14):")
		for _, p := range curve {
			fmt.Printf("  K=%d  SSE=%.0f\n", p.K, p.SSE)
		}
		fmt.Printf("  elbow: K=%d\n", cluster.Elbow(curve, 0.06))
	}

	prof, err := profiler.Build(traces, profiler.Config{K: *k, Seed: *seed})
	if err != nil {
		die(1, err)
	}
	fmt.Printf("\nframe clusters (K=%d, loading cluster %d):\n", prof.Clusters.K(), prof.LoadingClusterID)
	for i, c := range prof.Clusters.Centroids {
		mark := ""
		if i == prof.LoadingClusterID {
			mark = "  <- loading"
		}
		fmt.Printf("  cluster %d: %s%s\n", i, c, mark)
	}
	fmt.Printf("\nstage-type catalog (%d types):\n", prof.NumStageTypes())
	for _, s := range prof.Catalog {
		kind := "exec"
		if s.Loading {
			kind = "load"
		}
		fmt.Printf("  stage %d [%s] clusters={%s} seen %d times, mean %.0f s, peak %s\n",
			s.ID, kind, profiler.Key(s.ClusterSet), s.Count,
			s.MeanDurFrames*float64(simclock.FrameLen), s.Peak)
	}
	fmt.Printf("\ngame peak demand M: %s\n", prof.PeakDemand())
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
