// Command cocg regenerates the paper's tables and figures on the simulated
// platform.
//
// Usage:
//
//	cocg [-seed N] [-fast] [-jobs N] [experiment ...]
//
// With no arguments it runs every experiment. Experiment names: table1,
// fig2, fig5, fig6, fig9, fig10, fig11, fig12, fig13, fig14, fig15, pairs,
// scaleout, online, ablation-category, ablation-redundancy, ablation-steal,
// ablation-interval, ablation-placement, ablation-clustering.
//
// Experiments are independent jobs: -jobs N runs up to N of them
// concurrently (and bounds the worker pool inside training and clustering).
// Results stream in the fixed presentation order regardless of completion
// order, and every experiment derives its randomness from -seed alone, so
// the output is identical at -jobs 1 and -jobs 64. The default comes from
// the COCG_JOBS environment variable when set, else the CPU count; the
// explicit flag beats the environment.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"cocg/internal/experiments"
	"cocg/internal/export"
	"cocg/internal/parallel"
	"cocg/internal/profiling"
)

type runner func(*experiments.Context) (fmt.Stringer, error)

// wraps adapts the concrete experiment signatures to a common runner type.
func wrap[T fmt.Stringer](f func(*experiments.Context) (T, error)) runner {
	return func(ctx *experiments.Context) (fmt.Stringer, error) {
		return f(ctx)
	}
}

var registry = map[string]runner{
	"table1":              wrap(experiments.TableI),
	"fig2":                wrap(experiments.Fig2),
	"fig5":                wrap(experiments.Fig5),
	"fig6":                wrap(experiments.Fig6),
	"fig9":                wrap(experiments.Fig9),
	"fig10":               wrap(experiments.Fig10),
	"fig11":               wrap(experiments.Fig11),
	"fig12":               wrap(experiments.Fig12),
	"fig13":               wrap(experiments.Fig13),
	"fig14":               wrap(experiments.Fig14),
	"fig15":               wrap(experiments.Fig15),
	"ablation-category":   wrap(experiments.CategoryAblation),
	"ablation-redundancy": wrap(experiments.RedundancyAblation),
	"ablation-steal":      wrap(experiments.LoadingStealAblation),
	"ablation-interval":   wrap(experiments.FrameIntervalAblation),
	"scaleout":            wrap(experiments.ScaleOut),
	"online":              wrap(experiments.OnlineLearning),
	"ablation-placement":  wrap(experiments.PlacementAblation),
	"pairs":               wrap(experiments.PairMatrix),
	"ablation-clustering": func(ctx *experiments.Context) (fmt.Stringer, error) {
		rows, err := experiments.GraphPartitionAblation(ctx)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		b.WriteString("Clustering method comparison (Section V-D1)\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "  %s\n", r)
		}
		return stringResult(b.String()), nil
	},
}

type stringResult string

func (s stringResult) String() string { return string(s) }

// order is the presentation order for "run everything".
var order = []string{
	"table1", "fig2", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "pairs", "scaleout", "online",
	"ablation-category", "ablation-redundancy", "ablation-steal",
	"ablation-interval", "ablation-placement", "ablation-clustering",
}

// defaultJobs resolves the -jobs default: the COCG_JOBS environment
// variable when it parses as a positive integer, else the CPU count. An
// explicit -jobs flag overrides both.
func defaultJobs() int {
	if s := os.Getenv("COCG_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
		fmt.Fprintf(os.Stderr, "cocg: ignoring invalid COCG_JOBS=%q\n", s)
	}
	return runtime.NumCPU()
}

func main() {
	seed := flag.Int64("seed", 1, "random seed for the whole run")
	fast := flag.Bool("fast", false, "shrink corpora and durations for a quick smoke run")
	list := flag.Bool("list", false, "list experiment names and exit")
	csvDir := flag.String("csv", "", "also dump figure series as CSV files into this directory")
	charts := flag.Bool("charts", true, "render ASCII charts for figure series")
	jobs := flag.Int("jobs", defaultJobs(),
		"max concurrent experiment jobs and training workers; results do not depend on it (flag beats COCG_JOBS env, which beats the CPU-count default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = order
	}
	for _, t := range targets {
		if _, ok := registry[t]; !ok {
			fmt.Fprintf(os.Stderr, "cocg: unknown experiment %q (try -list)\n", t)
			os.Exit(2)
		}
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cocg: %v\n", err)
		os.Exit(1)
	}
	// fail stops the profilers (so partial profiles still flush) and exits.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		_ = stopProfiles()
		os.Exit(1)
	}

	start := time.Now()
	fmt.Printf("CoCG experiment driver (seed=%d fast=%v jobs=%d)\n", *seed, *fast, parallel.Workers(*jobs))
	fmt.Println("training the five-game system (offline pass)...")
	ctx, err := experiments.NewContext(experiments.Options{Seed: *seed, Fast: *fast, Jobs: *jobs})
	if err != nil {
		fail("cocg: %v\n", err)
	}
	fmt.Printf("trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Experiments are independent jobs over the read-only context: run up
	// to -jobs of them concurrently, but print strictly in presentation
	// order so the output is byte-identical at every parallelism level
	// (timing annotations aside).
	type jobResult struct {
		res  fmt.Stringer
		err  error
		took time.Duration
		done chan struct{}
	}
	results := make([]*jobResult, len(targets))
	for i := range results {
		results[i] = &jobResult{done: make(chan struct{})}
	}
	g := parallel.NewGroup(*jobs)
	go func() {
		for i, t := range targets {
			i, t := i, t
			g.Go(func() error {
				t0 := time.Now()
				jr := results[i]
				jr.res, jr.err = registry[t](ctx)
				jr.took = time.Since(t0)
				close(jr.done)
				return jr.err
			})
		}
	}()
	for i, t := range targets {
		jr := results[i]
		<-jr.done
		if jr.err != nil {
			fail("cocg: %s: %v\n", t, jr.err)
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", t, jr.took.Round(time.Millisecond), jr.res)
		emitSeries(jr.res, *charts, *csvDir)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "cocg: %v\n", err)
		os.Exit(1)
	}
}

// emitSeries renders and/or saves the raw series behind plotted figures.
func emitSeries(res fmt.Stringer, charts bool, csvDir string) {
	var series []*export.Series
	switch r := res.(type) {
	case *experiments.Fig2Result:
		series = append(series, r.UtilSeries())
	case *experiments.Fig9Result:
		series = append(series, r.UtilSeries())
	case *experiments.Fig10Result:
		series = append(series, r.AllocSeries())
	case *experiments.Fig14Result:
		series = append(series, r.SSESeries()...)
	default:
		return
	}
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		if charts {
			fmt.Println(export.Chart(s, 72))
		}
		if csvDir != "" {
			path, err := s.SaveCSV(csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cocg: csv: %v\n", err)
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
