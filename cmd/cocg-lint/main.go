// Command cocg-lint runs CoCG's repo-specific determinism and correctness
// analyzers over the module and exits non-zero on any finding.
//
//	cocg-lint [flags] [packages]
//
// Packages are go-list patterns relative to the module root (default ./...).
// Findings print one per line as
//
//	file:line:col [analyzer] message
//
// and can be suppressed at a specific line with
//
//	//cocg:lint-ignore <analyzer> <reason>
//
// See docs/STATIC_ANALYSIS.md for the analyzer catalogue and rationale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cocg/internal/lint"
)

func main() {
	var (
		dir     = flag.String("C", ".", "module root directory to lint")
		run     = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		list    = flag.Bool("list", false, "list available analyzers and exit")
		quiet   = flag.Bool("q", false, "suppress the summary line on stderr")
		relBase = flag.String("rel", "", "print file paths relative to this directory (default: current directory)")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array of {file,line,col,analyzer,message}")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cocg-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs CoCG's determinism & correctness analyzers; exits 1 on any finding.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPackages(flag.Args()...)
	if err != nil {
		fatal(err)
	}

	// One escape-analysis compile feeds hotalloc across every package; on
	// unchanged code cmd/go replays the cached compiler output, so this stays
	// well inside the lint-gate time budget.
	escapes, err := lint.LoadEscapes(loader.ModuleDir, pkgs)
	if err != nil {
		fatal(err)
	}

	base := *relBase
	if base == "" {
		base, _ = os.Getwd()
	}
	findings := lint.RunWith(pkgs, analyzers, lint.Options{Escapes: escapes})
	for i := range findings {
		if base != "" {
			if rel, err := filepath.Rel(base, findings[i].Pos.Filename); err == nil {
				findings[i].Pos.Filename = rel
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "cocg-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "cocg-lint: %d package(s) clean\n", len(pkgs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cocg-lint:", err)
	os.Exit(2)
}
