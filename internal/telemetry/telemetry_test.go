package telemetry

import (
	"testing"
	"testing/quick"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

func TestSamplerEmitsEveryFrameLen(t *testing.T) {
	s := NewSampler(0, 1)
	v := resources.New(10, 20, 30, 40)
	for i := 0; i < int(simclock.FrameLen)-1; i++ {
		if _, ok := s.Observe(v); ok {
			t.Fatalf("frame emitted after %d seconds", i+1)
		}
	}
	frame, ok := s.Observe(v)
	if !ok {
		t.Fatal("no frame after FrameLen observations")
	}
	if frame != v {
		t.Errorf("noiseless frame = %v, want %v", frame, v)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after emit = %d", s.Pending())
	}
}

func TestSamplerAveragesWithinFrame(t *testing.T) {
	s := NewSampler(0, 1)
	for i := 0; i < 4; i++ {
		s.Observe(resources.New(0, 0, 0, 0))
	}
	frame, ok := s.Observe(resources.New(50, 100, 0, 0))
	if !ok {
		t.Fatal("no frame")
	}
	if frame != resources.New(10, 20, 0, 0) {
		t.Errorf("frame = %v", frame)
	}
}

func TestSamplerNoiseBounded(t *testing.T) {
	s := NewSampler(5, 2)
	for i := 0; i < 100; i++ {
		frame, ok := s.Observe(resources.New(50, 50, 50, 50))
		if ok {
			for d := range frame {
				if frame[d] < 0 || frame[d] > 100 {
					t.Fatalf("noisy frame out of range: %v", frame)
				}
			}
		}
	}
}

func TestSamplerNoiseIsApplied(t *testing.T) {
	s := NewSampler(5, 3)
	var frames []resources.Vector
	for i := 0; i < 50; i++ {
		if f, ok := s.Observe(resources.New(50, 50, 50, 50)); ok {
			frames = append(frames, f)
		}
	}
	distinct := map[resources.Vector]bool{}
	for _, f := range frames {
		distinct[f] = true
	}
	if len(distinct) < 2 {
		t.Error("noise produced identical frames")
	}
}

func TestSamplerReset(t *testing.T) {
	s := NewSampler(0, 1)
	s.Observe(resources.New(1, 1, 1, 1))
	s.Observe(resources.New(1, 1, 1, 1))
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Reset()
	if s.Pending() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistoryEviction(t *testing.T) {
	h := NewHistory(3)
	for i := 1; i <= 5; i++ {
		h.Push(resources.Uniform(float64(i)))
	}
	if h.Len() != 3 || h.Total() != 5 {
		t.Fatalf("Len=%d Total=%d", h.Len(), h.Total())
	}
	newest, ok := h.Last(0)
	if !ok || newest != resources.Uniform(5) {
		t.Errorf("Last(0) = %v, %v", newest, ok)
	}
	oldest, ok := h.Last(2)
	if !ok || oldest != resources.Uniform(3) {
		t.Errorf("Last(2) = %v, %v", oldest, ok)
	}
	if _, ok := h.Last(3); ok {
		t.Error("Last(3) should not exist")
	}
	if _, ok := h.Last(-1); ok {
		t.Error("Last(-1) should not exist")
	}
}

func TestHistorySnapshotIsCopy(t *testing.T) {
	h := NewHistory(2)
	h.Push(resources.Uniform(1))
	h.Push(resources.Uniform(2))
	snap := h.Snapshot()
	snap[0] = resources.Uniform(99)
	if got, _ := h.Last(1); got != resources.Uniform(1) {
		t.Error("Snapshot aliases internal storage")
	}
}

func TestHistoryAggregates(t *testing.T) {
	h := NewHistory(10)
	h.Push(resources.New(10, 0, 0, 0))
	h.Push(resources.New(30, 20, 0, 0))
	if h.Mean() != resources.New(20, 10, 0, 0) {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Peak() != resources.New(30, 20, 0, 0) {
		t.Errorf("Peak = %v", h.Peak())
	}
}

func TestHistoryMinCapacity(t *testing.T) {
	h := NewHistory(0)
	h.Push(resources.Uniform(1))
	h.Push(resources.Uniform(2))
	if h.Len() != 1 {
		t.Errorf("capacity-0 history Len = %d, want clamped to 1", h.Len())
	}
}

func TestPropertyHistoryNeverExceedsCap(t *testing.T) {
	f := func(pushes uint8, capRaw uint8) bool {
		c := 1 + int(capRaw%10)
		h := NewHistory(c)
		for i := 0; i < int(pushes); i++ {
			h.Push(resources.Uniform(float64(i)))
		}
		want := int(pushes)
		if want > c {
			want = c
		}
		return h.Len() == want && h.Total() == int(pushes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHistoryLastOrdering(t *testing.T) {
	f := func(pushes uint8) bool {
		h := NewHistory(8)
		n := int(pushes%50) + 1
		for i := 0; i < n; i++ {
			h.Push(resources.Uniform(float64(i)))
		}
		for i := 0; i < h.Len(); i++ {
			v, ok := h.Last(i)
			if !ok || v != resources.Uniform(float64(n-1-i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
