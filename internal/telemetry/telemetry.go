// Package telemetry is the measurement substrate standing in for the paper's
// GPU-Z + cgroup collection pipeline (Section V-A): it aggregates per-second
// utilization observations into the 5-second frames the predictor consumes,
// adding sensor noise, and keeps a bounded history of recent frames.
package telemetry

import (
	"math/rand"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Sampler folds per-second observations into frames of simclock.FrameLen
// seconds. Each observation may be perturbed by Gaussian sensor noise, as
// real utilization counters are.
type Sampler struct {
	noise float64
	rng   *rand.Rand
	buf   []resources.Vector
}

// NewSampler returns a sampler with the given per-second sensor-noise
// standard deviation (in percent points).
func NewSampler(noiseStd float64, seed int64) *Sampler {
	return &Sampler{noise: noiseStd, rng: rand.New(rand.NewSource(seed))}
}

// Observe records one second of utilization. When the observation completes
// a frame, the frame's mean vector is returned with ok = true.
func (s *Sampler) Observe(v resources.Vector) (frame resources.Vector, ok bool) {
	if s.noise > 0 {
		for d := range v {
			v[d] += s.rng.NormFloat64() * s.noise
		}
		v = v.Clamp(0, 100)
	}
	s.buf = append(s.buf, v)
	if len(s.buf) < int(simclock.FrameLen) {
		return resources.Zero, false
	}
	frame = resources.Mean(s.buf)
	s.buf = s.buf[:0]
	return frame, true
}

// Pending returns how many seconds of the current frame have been observed.
func (s *Sampler) Pending() int { return len(s.buf) }

// Reset discards any partial frame.
func (s *Sampler) Reset() { s.buf = s.buf[:0] }

// History is a bounded ring buffer of the most recent frames.
type History struct {
	frames []resources.Vector
	cap    int
	total  int
}

// NewHistory returns a history retaining up to capacity frames; capacity
// must be positive.
func NewHistory(capacity int) *History {
	if capacity < 1 {
		capacity = 1
	}
	return &History{cap: capacity}
}

// Push appends a frame, evicting the oldest when full.
func (h *History) Push(v resources.Vector) {
	h.total++
	if len(h.frames) < h.cap {
		h.frames = append(h.frames, v)
		return
	}
	copy(h.frames, h.frames[1:])
	h.frames[len(h.frames)-1] = v
}

// Len returns how many frames are currently retained.
func (h *History) Len() int { return len(h.frames) }

// Total returns how many frames were ever pushed.
func (h *History) Total() int { return h.total }

// Last returns the i-th most recent frame (0 = newest). The second return is
// false when fewer than i+1 frames are retained.
func (h *History) Last(i int) (resources.Vector, bool) {
	if i < 0 || i >= len(h.frames) {
		return resources.Zero, false
	}
	return h.frames[len(h.frames)-1-i], true
}

// Snapshot returns the retained frames oldest-first; the slice is a copy.
func (h *History) Snapshot() []resources.Vector {
	out := make([]resources.Vector, len(h.frames))
	copy(out, h.frames)
	return out
}

// Mean returns the mean of the retained frames.
func (h *History) Mean() resources.Vector { return resources.Mean(h.frames) }

// Peak returns the component-wise maximum of the retained frames.
func (h *History) Peak() resources.Vector { return resources.PeakOf(h.frames) }
