package profiler

import (
	"fmt"
	"sort"

	"cocg/internal/resources"
)

// EventKind classifies what the online detector concluded from one frame.
type EventKind int

// Detector event kinds.
const (
	// EventSame: the game is still in the stage the detector believed.
	EventSame EventKind = iota
	// EventLoadingEntered: the frame classified into the loading cluster
	// while the detector believed an execution stage — a stage boundary
	// (Observation 2), the trigger for next-stage prediction.
	EventLoadingEntered
	// EventStageEntered: the first execution frame after loading; StageID is
	// the detector's best identification of the new stage.
	EventStageEntered
	// EventRefined: an additional cluster appeared that upgrades the current
	// identification to a more specific multi-cluster stage type.
	EventRefined
	// EventMismatch: the frame matches neither the current stage nor
	// loading — either a prediction/identification error or a transient
	// spike; the predictor's rehearsal callback decides which (Section
	// IV-B2).
	EventMismatch
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSame:
		return "same"
	case EventLoadingEntered:
		return "loading-entered"
	case EventStageEntered:
		return "stage-entered"
	case EventRefined:
		return "refined"
	case EventMismatch:
		return "mismatch"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is the detector's conclusion for one observed frame.
type Event struct {
	Kind    EventKind
	StageID int // current (possibly re-identified) stage after the event
	Cluster int // the frame's cluster
	// Candidate, on a mismatch, is the catalog stage the frame would match
	// (-1 when none does) — the re-match target of the rehearsal callback.
	Candidate int
}

// Detector is the real-time stage-judgment step of the predictor (Fig. 8):
// every 5-second frame it decides whether the game stayed in its stage,
// entered loading, entered a new stage, or diverged from expectation.
type Detector struct {
	p         *Profile
	inLoading bool
	curStage  int
	curSet    map[int]bool
	// execFrames counts frames since the stage was entered. The first frame
	// after loading straddles the phase boundary (its 5 seconds mix loading
	// and execution), so identification is tentative until the second,
	// pure frame confirms or corrects it.
	execFrames int
	// pendingCluster is a cluster seen once outside the current signature;
	// only a second consecutive occurrence upgrades the stage (a single
	// frame is indistinguishable from a spike).
	pendingCluster int
}

// NewDetector returns a detector that believes the game starts in loading
// (sessions always begin with initialization).
func NewDetector(p *Profile) *Detector {
	return &Detector{
		p: p, inLoading: true, curStage: LoadingStageID,
		curSet: map[int]bool{}, pendingCluster: -1,
	}
}

// Current returns the detector's believed stage and whether it is loading.
func (d *Detector) Current() (stageID int, loading bool) {
	return d.curStage, d.inLoading
}

// ForceStage overrides the detector's belief — the rehearsal callback uses
// it to jump to the re-matched stage.
func (d *Detector) ForceStage(id int) {
	d.curStage = id
	d.inLoading = id == LoadingStageID
	d.execFrames = 2 // forced identification is authoritative, not tentative
	d.pendingCluster = -1
	d.curSet = map[int]bool{}
	if s, ok := d.p.Stage(id); ok && !s.Loading {
		for _, c := range s.ClusterSet {
			d.curSet[c] = true
		}
	}
}

// Observe processes one telemetry frame and returns the detector's
// conclusion.
func (d *Detector) Observe(frame resources.Vector) Event {
	cl := d.p.ClassifyFrame(frame)
	if cl == d.p.LoadingClusterID {
		if d.inLoading {
			return Event{Kind: EventSame, StageID: LoadingStageID, Cluster: cl, Candidate: -1}
		}
		d.inLoading = true
		d.curStage = LoadingStageID
		d.curSet = map[int]bool{}
		return Event{Kind: EventLoadingEntered, StageID: LoadingStageID, Cluster: cl, Candidate: -1}
	}

	if d.inLoading {
		// First execution frame after loading: identify the entered stage
		// from the clusters it could belong to. The identification stays
		// tentative for one frame because this frame straddles the boundary.
		d.inLoading = false
		d.curSet = map[int]bool{cl: true}
		d.curStage = d.identify(cl)
		d.execFrames = 1
		return Event{Kind: EventStageEntered, StageID: d.curStage, Cluster: cl, Candidate: -1}
	}

	// Mid-execution frame.
	d.execFrames++
	if d.execFrames == 2 && !d.curSet[cl] {
		// Second frame disagrees with the boundary-polluted first frame:
		// re-identify from this pure frame.
		d.curSet = map[int]bool{cl: true}
		d.curStage = d.identify(cl)
		d.pendingCluster = -1
		return Event{Kind: EventRefined, StageID: d.curStage, Cluster: cl, Candidate: -1}
	}
	if d.curSet[cl] {
		d.pendingCluster = -1
		return Event{Kind: EventSame, StageID: d.curStage, Cluster: cl, Candidate: -1}
	}
	cur, _ := d.p.Stage(d.curStage)
	if inSet(cur.ClusterSet, cl) {
		// A new-but-expected cluster of the current multi-cluster stage.
		d.curSet[cl] = true
		d.pendingCluster = -1
		return Event{Kind: EventSame, StageID: d.curStage, Cluster: cl, Candidate: -1}
	}
	// The cluster does not belong to the believed stage. A single such frame
	// is indistinguishable from a spike, so hold judgment; two consecutive
	// frames either upgrade to a more specific multi-cluster signature or
	// surface a mismatch for the rehearsal callback.
	if d.pendingCluster != cl {
		d.pendingCluster = cl
		return Event{Kind: EventSame, StageID: d.curStage, Cluster: cl, Candidate: -1}
	}
	d.pendingCluster = -1
	union := make([]int, 0, len(d.curSet)+1)
	for c := range d.curSet {
		union = append(union, c)
	}
	union = append(union, cl)
	sort.Ints(union)
	if id, ok := d.p.StageByClusters(union); ok {
		d.curSet[cl] = true
		d.curStage = id
		return Event{Kind: EventRefined, StageID: id, Cluster: cl, Candidate: -1}
	}
	// Genuine mismatch: report the best alternative identification.
	candidate := -1
	if ids := d.p.CandidateStages(cl); len(ids) > 0 {
		candidate = ids[0]
	}
	return Event{Kind: EventMismatch, StageID: d.curStage, Cluster: cl, Candidate: candidate}
}

// identify picks the catalog stage a game most likely entered given its
// first execution cluster: an exact single-cluster signature when one
// exists, otherwise the most frequently observed containing stage.
func (d *Detector) identify(cl int) int {
	if id, ok := d.p.StageByClusters([]int{cl}); ok {
		return id
	}
	if ids := d.p.CandidateStages(cl); len(ids) > 0 {
		return ids[0]
	}
	return -1
}

func inSet(set []int, c int) bool {
	for _, x := range set {
		if x == c {
			return true
		}
	}
	return false
}
