package profiler

import (
	"encoding/json"
	"fmt"

	"cocg/internal/cluster"
	"cocg/internal/resources"
)

// profileDTO is the persistent form of a Profile. Frame assignments are not
// kept: after the offline pass only the centroids and the catalog matter.
type profileDTO struct {
	Game             string             `json:"game"`
	Centroids        []resources.Vector `json:"centroids"`
	LoadingClusterID int                `json:"loading_cluster"`
	Catalog          []StageSig         `json:"catalog"`
	SigIndex         map[string]int     `json:"sig_index"`
	MinShare         float64            `json:"min_share"`
}

// MarshalJSON implements json.Marshaler.
func (p *Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(profileDTO{
		Game:             p.Game,
		Centroids:        p.Clusters.Centroids,
		LoadingClusterID: p.LoadingClusterID,
		Catalog:          p.Catalog,
		SigIndex:         p.sigIndex,
		MinShare:         p.minShare,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(b []byte) error {
	var d profileDTO
	if err := json.Unmarshal(b, &d); err != nil {
		return err
	}
	if len(d.Centroids) == 0 {
		return fmt.Errorf("profiler: profile without centroids")
	}
	if len(d.Catalog) == 0 || !d.Catalog[LoadingStageID].Loading {
		return fmt.Errorf("profiler: profile catalog missing its loading stage")
	}
	if d.LoadingClusterID < 0 || d.LoadingClusterID >= len(d.Centroids) {
		return fmt.Errorf("profiler: loading cluster %d out of range", d.LoadingClusterID)
	}
	for _, s := range d.Catalog {
		for _, c := range s.ClusterSet {
			if c < 0 || c >= len(d.Centroids) {
				return fmt.Errorf("profiler: stage %d references cluster %d", s.ID, c)
			}
		}
	}
	p.Game = d.Game
	p.Clusters = &cluster.Result{Centroids: d.Centroids}
	p.LoadingClusterID = d.LoadingClusterID
	p.Catalog = d.Catalog
	p.sigIndex = d.SigIndex
	if p.sigIndex == nil {
		p.sigIndex = map[string]int{}
	}
	p.minShare = d.MinShare
	if p.minShare <= 0 {
		p.minShare = 0.34
	}
	return nil
}
