package profiler

import (
	"encoding/json"
	"testing"

	"cocg/internal/gamesim"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, spec := range []*gamesim.GameSpec{gamesim.Contra(), gamesim.DevilMayCry()} {
		p := buildFor(t, spec, 2)
		blob, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		var back Profile
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", spec.Name, err)
		}
		if back.Game != p.Game || back.LoadingClusterID != p.LoadingClusterID {
			t.Errorf("%s: identity changed", spec.Name)
		}
		if back.NumStageTypes() != p.NumStageTypes() {
			t.Errorf("%s: catalog size changed", spec.Name)
		}
		// The loaded profile classifies and detects identically.
		tr, err := gamesim.Record(spec, 0, 999)
		if err != nil {
			t.Fatal(err)
		}
		frames := tr.FrameVectors()
		for i, f := range frames {
			if back.ClassifyFrame(f) != p.ClassifyFrame(f) {
				t.Fatalf("%s: frame %d classified differently", spec.Name, i)
			}
		}
		a := p.DetectStages(frames)
		b := back.DetectStages(frames)
		if len(a) != len(b) {
			t.Fatalf("%s: detection segment count changed", spec.Name)
		}
		for i := range a {
			if a[i].StageID != b[i].StageID || a[i].Loading != b[i].Loading {
				t.Fatalf("%s: segment %d changed", spec.Name, i)
			}
		}
	}
}

func TestProfileJSONRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"no centroids":    `{"game":"X","centroids":[],"catalog":[{"ID":0,"Loading":true,"ClusterSet":[0]}]}`,
		"no catalog":      `{"game":"X","centroids":[[1,2,3,4]],"catalog":[]}`,
		"first not load":  `{"game":"X","centroids":[[1,2,3,4]],"catalog":[{"ID":0,"Loading":false,"ClusterSet":[0]}]}`,
		"bad loading id":  `{"game":"X","centroids":[[1,2,3,4]],"loading_cluster":5,"catalog":[{"ID":0,"Loading":true,"ClusterSet":[0]}]}`,
		"bad cluster ref": `{"game":"X","centroids":[[1,2,3,4]],"catalog":[{"ID":0,"Loading":true,"ClusterSet":[9]}]}`,
	}
	for name, doc := range cases {
		var p Profile
		if err := json.Unmarshal([]byte(doc), &p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
