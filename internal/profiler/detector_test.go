package profiler

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
)

func TestDetectorTracksGroundTruthPhases(t *testing.T) {
	spec := gamesim.CSGO()
	p := buildFor(t, spec, 2)
	tr, err := gamesim.Record(spec, 0, 4242)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(p)
	var agree, total int
	var sawLoadEnter, sawStageEnter bool
	for i, f := range tr.Frames {
		ev := d.Observe(f.Demand)
		switch ev.Kind {
		case EventLoadingEntered:
			sawLoadEnter = true
		case EventStageEntered:
			sawStageEnter = true
		}
		// Compare believed phase with ground truth away from boundaries.
		if i > 0 && tr.Frames[i-1].Loading != f.Loading {
			continue
		}
		_, loading := d.Current()
		total++
		if loading == f.Loading {
			agree++
		}
	}
	if !sawLoadEnter || !sawStageEnter {
		t.Error("detector never saw a stage boundary")
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("phase agreement = %.3f, want >= 0.9", frac)
	}
}

func TestDetectorStartsInLoading(t *testing.T) {
	p := buildFor(t, gamesim.Contra(), 2)
	d := NewDetector(p)
	id, loading := d.Current()
	if !loading || id != LoadingStageID {
		t.Errorf("initial state = (%d, %v)", id, loading)
	}
}

func TestDetectorEventSequence(t *testing.T) {
	p := buildFor(t, gamesim.Contra(), 2)
	d := NewDetector(p)
	load := p.Clusters.Centroids[p.LoadingClusterID]
	var exec resources.Vector
	for i, c := range p.Clusters.Centroids {
		if i != p.LoadingClusterID {
			exec = c
			break
		}
	}
	if ev := d.Observe(load); ev.Kind != EventSame {
		t.Errorf("loading frame while loading: %v", ev.Kind)
	}
	ev := d.Observe(exec)
	if ev.Kind != EventStageEntered {
		t.Errorf("first exec frame: %v", ev.Kind)
	}
	if ev.StageID < 0 {
		t.Error("entered stage not identified")
	}
	if ev2 := d.Observe(exec); ev2.Kind != EventSame || ev2.StageID != ev.StageID {
		t.Errorf("repeat exec frame: %v stage %d", ev2.Kind, ev2.StageID)
	}
	if ev3 := d.Observe(load); ev3.Kind != EventLoadingEntered {
		t.Errorf("loading after exec: %v", ev3.Kind)
	}
}

func TestDetectorRefinesMultiClusterStage(t *testing.T) {
	// DMC's l3-elites stage mixes brawl and boss clusters; feeding one then
	// the other must either refine to the multi-cluster signature or flag a
	// mismatch with a candidate — never silently stay wrong.
	spec := gamesim.DevilMayCry()
	p := buildFor(t, spec, 3)

	// Find a catalog stage with >= 2 clusters.
	var multi *StageSig
	for i := range p.Catalog {
		if !p.Catalog[i].Loading && len(p.Catalog[i].ClusterSet) >= 2 {
			multi = &p.Catalog[i]
			break
		}
	}
	if multi == nil {
		t.Skip("no multi-cluster stage discovered in this corpus")
	}
	d := NewDetector(p)
	first := p.Clusters.Centroids[multi.ClusterSet[0]]
	second := p.Clusters.Centroids[multi.ClusterSet[1]]
	d.Observe(first) // leaves loading
	ev := d.Observe(second)
	switch ev.Kind {
	case EventSame, EventRefined:
		// Acceptable: already identified as (or refined into) the
		// multi-cluster stage.
	case EventMismatch:
		if ev.Candidate < 0 {
			t.Error("mismatch with no candidate for a cataloged cluster")
		}
	default:
		t.Errorf("unexpected event %v", ev.Kind)
	}
}

func TestDetectorForceStage(t *testing.T) {
	p := buildFor(t, gamesim.CSGO(), 2)
	// Force into some execution stage.
	var execID int
	for _, s := range p.Catalog {
		if !s.Loading {
			execID = s.ID
			break
		}
	}
	d := NewDetector(p)
	d.ForceStage(execID)
	id, loading := d.Current()
	if id != execID || loading {
		t.Errorf("after ForceStage: (%d, %v)", id, loading)
	}
	d.ForceStage(LoadingStageID)
	if _, loading := d.Current(); !loading {
		t.Error("ForceStage(loading) did not set loading")
	}
}

func TestDetectorMismatchOnForeignCluster(t *testing.T) {
	// Profile Contra, then feed a frame far outside any Contra cluster's
	// neighborhood after pinning the detector to the level stage: the
	// nearest cluster will be the level cluster or loading; craft a vector
	// near the level cluster but force the detector into a fake sig first.
	p := buildFor(t, gamesim.Contra(), 2)
	d := NewDetector(p)
	// Enter the level stage.
	var exec resources.Vector
	var execCl int
	for i, c := range p.Clusters.Centroids {
		if i != p.LoadingClusterID {
			exec, execCl = c, i
			break
		}
	}
	d.Observe(exec)
	// Pretend the detector believes a stage whose set excludes execCl.
	d.curSet = map[int]bool{}
	d.curStage = -1
	ev := d.Observe(exec)
	if ev.Kind == EventSame {
		t.Errorf("foreign cluster accepted as same stage")
	}
	_ = execCl
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EventSame: "same", EventLoadingEntered: "loading-entered",
		EventStageEntered: "stage-entered", EventRefined: "refined",
		EventMismatch: "mismatch",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if EventKind(99).String() != "event(99)" {
		t.Error("unknown kind string")
	}
}

func TestDetectorInvariants(t *testing.T) {
	// Over a long random-feed run the detector must always hold a coherent
	// belief: loading iff stage 0, and any non-negative stage ID within the
	// catalog.
	spec := gamesim.DevilMayCry()
	p := buildFor(t, spec, 2)
	d := NewDetector(p)
	tr, err := gamesim.Record(spec, 2, 31337)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tr.Frames {
		ev := d.Observe(f.Demand)
		id, loading := d.Current()
		if loading != (id == LoadingStageID) {
			t.Fatalf("incoherent belief: id=%d loading=%v", id, loading)
		}
		if id >= p.NumStageTypes() {
			t.Fatalf("stage id %d beyond catalog %d", id, p.NumStageTypes())
		}
		if ev.Kind == EventMismatch && ev.Candidate >= p.NumStageTypes() {
			t.Fatalf("candidate %d beyond catalog", ev.Candidate)
		}
	}
}
