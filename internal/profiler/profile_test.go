package profiler

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
)

// buildFor profiles a game from a small corpus; K fixed to the game's true
// cluster count so tests are fast and deterministic.
func buildFor(t *testing.T, spec *gamesim.GameSpec, players int) *Profile {
	t.Helper()
	traces, err := gamesim.RecordCorpus(spec, players, 500)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(traces, Config{K: len(spec.Clusters), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, Config{}); err != ErrNoTraces {
		t.Errorf("err = %v", err)
	}
}

func TestLoadingClusterIdentified(t *testing.T) {
	for _, spec := range []*gamesim.GameSpec{gamesim.Contra(), gamesim.CSGO()} {
		p := buildFor(t, spec, 2)
		cent := p.Clusters.Centroids[p.LoadingClusterID]
		if cent[resources.GPU] > 15 {
			t.Errorf("%s: loading cluster GPU centroid = %v", spec.Name, cent[resources.GPU])
		}
		if cent[resources.CPU] < cent[resources.GPU] {
			t.Errorf("%s: loading cluster not CPU-dominated: %v", spec.Name, cent)
		}
	}
}

func TestIsLoadingFrameMatchesGroundTruth(t *testing.T) {
	spec := gamesim.DevilMayCry()
	p := buildFor(t, spec, 2)
	tr, err := gamesim.Record(spec, 2, 999)
	if err != nil {
		t.Fatal(err)
	}
	var acc, total int
	for i, f := range tr.Frames {
		// Skip boundary frames, which legitimately mix phases.
		if i > 0 && tr.Frames[i-1].Loading != f.Loading {
			continue
		}
		total++
		if p.IsLoadingFrame(f.Demand) == f.Loading {
			acc++
		}
	}
	if frac := float64(acc) / float64(total); frac < 0.95 {
		t.Errorf("loading detection accuracy = %.3f, want >= 0.95", frac)
	}
}

func TestCatalogSizeWithinPaperBound(t *testing.T) {
	// Section IV-A2: a game with N clusters has at most 2^N stage types,
	// and in practice no more than 2N. The discovered catalog (union over
	// all scripts) must respect that bound and must not collapse below the
	// per-script minimum.
	for _, spec := range gamesim.AllGames() {
		p := buildFor(t, spec, 3)
		got := p.NumStageTypes()
		n := len(spec.Clusters)
		if got > 2*n {
			t.Errorf("%s catalog size = %d exceeds 2N = %d", spec.Name, got, 2*n)
		}
		if got < 2 {
			t.Errorf("%s catalog size = %d, want >= 2", spec.Name, got)
		}
	}
}

func TestCatalogPruneMergesRareSignatures(t *testing.T) {
	// Every surviving execution signature must be backed by at least two
	// occurrences once the corpus is large enough.
	p := buildFor(t, gamesim.DevilMayCry(), 3)
	for _, s := range p.Catalog[1:] {
		if s.Count < 2 {
			t.Errorf("stage %d survived pruning with count %d", s.ID, s.Count)
		}
	}
}

func TestDetectStagesTilesAndAlternates(t *testing.T) {
	spec := gamesim.CSGO()
	p := buildFor(t, spec, 2)
	tr, err := gamesim.Record(spec, 0, 321)
	if err != nil {
		t.Fatal(err)
	}
	det := p.DetectStages(tr.FrameVectors())
	if len(det) == 0 {
		t.Fatal("no stages detected")
	}
	pos := 0
	for i, d := range det {
		if d.Start != pos || d.End <= d.Start {
			t.Fatalf("stage %d does not tile: %+v at pos %d", i, d, pos)
		}
		pos = d.End
		if i > 0 && det[i-1].Loading == d.Loading {
			t.Errorf("stages %d and %d do not alternate loading/exec", i-1, i)
		}
	}
	if pos != len(tr.Frames) {
		t.Errorf("detection covers %d of %d frames", pos, len(tr.Frames))
	}
	if !det[0].Loading {
		t.Error("first stage should be loading")
	}
}

func TestDetectedStagesHaveKnownIDs(t *testing.T) {
	// Stages of a trace drawn from the same distribution as the corpus must
	// overwhelmingly match catalog signatures.
	spec := gamesim.DOTA2()
	p := buildFor(t, spec, 3)
	tr, err := gamesim.Record(spec, 1, 777)
	if err != nil {
		t.Fatal(err)
	}
	known, total := 0, 0
	for _, d := range p.DetectStages(tr.FrameVectors()) {
		if d.Loading {
			continue
		}
		total++
		if d.StageID >= 0 {
			known++
		}
	}
	if total == 0 {
		t.Fatal("no exec stages detected")
	}
	if frac := float64(known) / float64(total); frac < 0.8 {
		t.Errorf("known-signature fraction = %.2f, want >= 0.8", frac)
	}
}

func TestStageAccessors(t *testing.T) {
	p := buildFor(t, gamesim.Contra(), 2)
	if _, ok := p.Stage(-1); ok {
		t.Error("Stage(-1) ok")
	}
	if _, ok := p.Stage(len(p.Catalog)); ok {
		t.Error("Stage(out-of-range) ok")
	}
	s, ok := p.Stage(LoadingStageID)
	if !ok || !s.Loading {
		t.Error("loading stage missing")
	}
	if s.Count == 0 {
		t.Error("loading stage never observed")
	}
	if _, ok := p.StageByClusters([]int{99}); ok {
		t.Error("unknown cluster set matched")
	}
}

func TestPeakDemandDominatesCatalog(t *testing.T) {
	p := buildFor(t, gamesim.GenshinImpact(), 2)
	peak := p.PeakDemand()
	for _, s := range p.Catalog {
		if !s.Peak.Fits(peak) {
			t.Errorf("stage %d peak exceeds profile peak", s.ID)
		}
	}
	// Genshin's battle cluster sustains ~70 % GPU; allow noise.
	if peak[resources.GPU] < 60 || peak[resources.GPU] > 90 {
		t.Errorf("Genshin peak GPU = %v, want near 70", peak[resources.GPU])
	}
}

func TestCandidateStagesOrdering(t *testing.T) {
	p := buildFor(t, gamesim.DevilMayCry(), 3)
	for cl := range p.Clusters.Centroids {
		if cl == p.LoadingClusterID {
			continue
		}
		ids := p.CandidateStages(cl)
		for i := 1; i < len(ids); i++ {
			if p.Catalog[ids[i-1]].Count < p.Catalog[ids[i]].Count {
				t.Fatalf("candidates for cluster %d not sorted by count", cl)
			}
		}
		for _, id := range ids {
			if !inSet(p.Catalog[id].ClusterSet, cl) {
				t.Fatalf("candidate %d does not contain cluster %d", id, cl)
			}
		}
	}
}

func TestKey(t *testing.T) {
	if Key([]int{1, 2, 3}) != "1,2,3" || Key([]int{7}) != "7" || Key(nil) != "" {
		t.Error("Key formatting wrong")
	}
}

func TestElbowKSelection(t *testing.T) {
	// With K unset, the elbow criterion should land near the game's true
	// cluster count.
	spec := gamesim.Contra()
	traces, err := gamesim.RecordCorpus(spec, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(traces, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k := p.Clusters.K()
	if k < 2 || k > 3 {
		t.Errorf("elbow chose K = %d for Contra, want 2 (±1)", k)
	}
}
