// Package profiler implements the frame-gained game profiler of Section
// IV-A: it clusters 5-second frames with K-means, segments traces into
// loading and execution stages using the loading cluster as the separator
// (Observation 2), and derives the game's stage-type catalog — each stage
// type being a combination of frame clusters (Fig. 4).
package profiler

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cocg/internal/cluster"
	"cocg/internal/gamesim"
	"cocg/internal/resources"
)

// LoadingStageID is the catalog ID reserved for the loading stage type.
const LoadingStageID = 0

// ErrNoTraces is returned when a profile is built from no data.
var ErrNoTraces = errors.New("profiler: no traces")

// StageSig is one entry of a game's stage-type catalog.
type StageSig struct {
	ID int
	// ClusterSet is the sorted set of frame clusters composing this stage
	// type; its string form is the catalog key.
	ClusterSet []int
	// Mean and Peak summarize the demand of frames observed in this stage;
	// Peak is what the scheduler reserves when the stage is predicted.
	Mean resources.Vector
	Peak resources.Vector
	// MeanDurFrames is the average observed stage length in frames.
	MeanDurFrames float64
	// Count is how many stage occurrences back this signature.
	Count   int
	Loading bool
}

// Key returns the canonical string form of a cluster set.
func Key(set []int) string {
	var b strings.Builder
	for i, c := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// Detected is one stage occurrence found in a frame sequence.
type Detected struct {
	StageID int
	Start   int // inclusive frame index
	End     int // exclusive frame index
	Loading bool
	Mean    resources.Vector
	// Peak is the sustained (90th percentile per dimension) demand of the
	// occurrence. Using a percentile rather than the raw maximum keeps
	// transient spikes — which the rehearsal callback absorbs — from
	// inflating every future reservation of this stage type.
	Peak resources.Vector
}

// Frames returns the stage length in frames.
func (d Detected) Frames() int { return d.End - d.Start }

// Profile is the offline profiling result for one game: the fitted frame
// clusters plus the stage-type catalog. The paper performs this pass once
// per game (Section IV-D: stage structure is platform-independent).
type Profile struct {
	Game             string
	Clusters         *cluster.Result
	LoadingClusterID int
	Catalog          []StageSig

	sigIndex map[string]int
	minShare float64
}

// Config controls profile construction.
type Config struct {
	// K is the number of frame clusters. When <= 0 it is chosen by the
	// elbow criterion on an SSE sweep (Fig. 14).
	K int
	// MaxK bounds the elbow sweep; defaults to 8.
	MaxK int
	// MinClusterShare filters incidental clusters out of a stage signature:
	// a cluster must cover at least this fraction of the stage's frames to
	// be part of the signature. Defaults to 0.34 — genuine multi-cluster
	// stages split close to evenly between their clusters, while transient
	// bursts cover well under a third of a stage.
	MinClusterShare float64
	Seed            int64
	// Workers bounds the goroutines the clustering passes may use; <= 0
	// means GOMAXPROCS. Profiles do not depend on it.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 8
	}
	if c.MinClusterShare <= 0 {
		c.MinClusterShare = 0.34
	}
	return c
}

// Build constructs a game profile from offline traces.
func Build(traces []*gamesim.Trace, cfg Config) (*Profile, error) {
	if len(traces) == 0 {
		return nil, ErrNoTraces
	}
	c := cfg.withDefaults()
	var frames []resources.Vector
	for _, tr := range traces {
		frames = append(frames, tr.FrameVectors()...)
	}
	if len(frames) == 0 {
		return nil, ErrNoTraces
	}
	k := c.K
	if k <= 0 {
		curve, err := cluster.Sweep(frames, c.MaxK, c.Seed, c.Workers)
		if err != nil {
			return nil, err
		}
		k = cluster.Elbow(curve, 0.06)
	}
	res, err := cluster.KMeans(frames, cluster.Config{K: k, Seed: c.Seed, Workers: c.Workers})
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Game:             traces[0].Game,
		Clusters:         res,
		LoadingClusterID: loadingCluster(res),
		sigIndex:         map[string]int{},
		minShare:         c.MinClusterShare,
	}
	p.Catalog = append(p.Catalog, StageSig{
		ID:         LoadingStageID,
		ClusterSet: []int{p.LoadingClusterID},
		Loading:    true,
	})
	p.sigIndex["loading"] = LoadingStageID

	for _, tr := range traces {
		for _, d := range p.DetectStages(tr.FrameVectors()) {
			p.absorb(d, tr.FrameVectors(), c.MinClusterShare)
		}
	}
	p.prune()
	p.recomputeStats(traces)
	return p, nil
}

// recomputeStats rebuilds each catalog stage's Mean and sustained Peak from
// the frames pooled across every occurrence (after pruning has settled the
// final stage IDs). Pooling makes the sustained peak robust to occasional
// short, spike-dominated occurrences.
func (p *Profile) recomputeStats(traces []*gamesim.Trace) {
	pool := make([][]resources.Vector, len(p.Catalog))
	for _, tr := range traces {
		frames := tr.FrameVectors()
		for _, d := range p.DetectStages(frames) {
			if d.StageID < 0 || d.StageID >= len(pool) {
				continue
			}
			pool[d.StageID] = append(pool[d.StageID], frames[d.Start:d.End]...)
		}
	}
	for id := range p.Catalog {
		if len(pool[id]) == 0 {
			continue
		}
		p.Catalog[id].Mean = resources.Mean(pool[id])
		p.Catalog[id].Peak = sustainedPeak(pool[id])
	}
}

// prune merges rarely observed signatures (boundary and noise artifacts)
// into the established stage with the nearest mean demand. This keeps the
// catalog within the paper's empirical bound of ~2N stage types for N
// clusters (Section IV-A2).
func (p *Profile) prune() {
	totalExec := 0
	for _, s := range p.Catalog[1:] {
		totalExec += s.Count
	}
	if totalExec < 10 {
		return
	}
	const minCount = 2
	kept := []StageSig{p.Catalog[LoadingStageID]}
	var rare []StageSig
	for _, s := range p.Catalog[1:] {
		if s.Count >= minCount {
			kept = append(kept, s)
		} else {
			rare = append(rare, s)
		}
	}
	if len(kept) == 1 {
		// Every exec signature is rare; keep the most frequent one.
		best := p.Catalog[1]
		for _, s := range p.Catalog[2:] {
			if s.Count > best.Count {
				best = s
			}
		}
		kept = append(kept, best)
		var stillRare []StageSig
		for _, s := range rare {
			if s.ID != best.ID {
				stillRare = append(stillRare, s)
			}
		}
		rare = stillRare
	}
	// Reassign contiguous IDs and rebuild the index.
	oldToNew := map[int]int{LoadingStageID: LoadingStageID}
	newIndex := map[string]int{"loading": LoadingStageID}
	for i := range kept {
		oldToNew[kept[i].ID] = i
		kept[i].ID = i
		if !kept[i].Loading {
			newIndex[Key(kept[i].ClusterSet)] = i
		}
	}
	// Rare signatures alias to the nearest kept stage by mean demand, and
	// their statistics fold into it.
	for _, r := range rare {
		best, bestD := 1, r.Mean.Dist2(kept[1].Mean)
		for i := 2; i < len(kept); i++ {
			if d := r.Mean.Dist2(kept[i].Mean); d < bestD {
				best, bestD = i, d
			}
		}
		newIndex[Key(r.ClusterSet)] = best
		tgt := &kept[best]
		n, m := float64(tgt.Count), float64(r.Count)
		tgt.Mean = tgt.Mean.Scale(n / (n + m)).Add(r.Mean.Scale(m / (n + m)))
		tgt.Peak = tgt.Peak.Max(r.Peak)
		tgt.MeanDurFrames = (tgt.MeanDurFrames*n + r.MeanDurFrames*m) / (n + m)
		tgt.Count += r.Count
	}
	p.Catalog = kept
	p.sigIndex = newIndex
}

// sustainedPeak returns the per-dimension 90th percentile over a segment's
// frames.
func sustainedPeak(seg []resources.Vector) resources.Vector {
	var out resources.Vector
	if len(seg) == 0 {
		return out
	}
	vals := make([]float64, len(seg))
	for d := resources.Dim(0); d < resources.NumDims; d++ {
		for i, f := range seg {
			vals[i] = f[d]
		}
		sort.Float64s(vals)
		idx := (len(vals)*9 + 9) / 10 // ceil(0.9*n)
		if idx > 0 {
			idx--
		}
		out[d] = vals[idx]
	}
	return out
}

// loadingCluster identifies which fitted cluster is the loading one: the
// centroid with the lowest GPU utilization (loading screens do not render —
// Observation 3).
func loadingCluster(res *cluster.Result) int {
	best, bestGPU := 0, resources.Vector{}[0]
	bestGPU = res.Centroids[0][resources.GPU]
	for i, c := range res.Centroids[1:] {
		if c[resources.GPU] < bestGPU {
			best, bestGPU = i+1, c[resources.GPU]
		}
	}
	return best
}

// ClassifyFrame returns the fitted cluster ID nearest to the frame vector.
func (p *Profile) ClassifyFrame(v resources.Vector) int { return p.Clusters.Nearest(v) }

// IsLoadingFrame reports whether the frame classifies into the loading
// cluster — the paper's real-time stage separator.
func (p *Profile) IsLoadingFrame(v resources.Vector) bool {
	return p.ClassifyFrame(v) == p.LoadingClusterID
}

// DetectStages segments a frame sequence into alternating loading and
// execution stages, labeling each execution stage with its catalog ID (or -1
// for a signature never absorbed into the catalog).
func (p *Profile) DetectStages(frames []resources.Vector) []Detected {
	var out []Detected
	i := 0
	for i < len(frames) {
		loading := p.IsLoadingFrame(frames[i])
		j := i
		for j < len(frames) && p.IsLoadingFrame(frames[j]) == loading {
			j++
		}
		d := Detected{Start: i, End: j, Loading: loading}
		seg := frames[i:j]
		d.Mean = resources.Mean(seg)
		d.Peak = sustainedPeak(seg)
		if loading {
			d.StageID = LoadingStageID
		} else {
			set := p.signatureOf(seg, p.minShare)
			if id, ok := p.sigIndex[Key(set)]; ok {
				d.StageID = id
			} else {
				d.StageID = -1
			}
		}
		out = append(out, d)
		i = j
	}
	return mergeDips(out, frames, p)
}

// mergeDips removes single-frame "loading" segments between two execution
// segments: every game's real loading takes at least two detection frames
// (loading times are 10 s and up), so a lone loading-classified frame inside
// execution is a sub-frame dip (a menu pause, a black-screen cutscene
// moment) interrupting one ongoing stage. Merging keeps transient dips from
// minting spurious stage transitions in training data.
func mergeDips(segs []Detected, frames []resources.Vector, p *Profile) []Detected {
	changed := true
	for changed {
		changed = false
		for i := 1; i+1 < len(segs); i++ {
			mid := segs[i]
			if !mid.Loading || mid.Frames() > 1 {
				continue
			}
			l, r := segs[i-1], segs[i+1]
			if l.Loading || r.Loading {
				continue
			}
			merged := Detected{Start: l.Start, End: r.End}
			span := frames[merged.Start:merged.End]
			merged.Mean = resources.Mean(span)
			merged.Peak = sustainedPeak(span)
			set := p.signatureOf(span, p.minShare)
			if id, ok := p.sigIndex[Key(set)]; ok {
				merged.StageID = id
			} else {
				merged.StageID = -1
			}
			segs = append(segs[:i-1], append([]Detected{merged}, segs[i+2:]...)...)
			changed = true
			break
		}
	}
	return segs
}

// signatureOf computes the filtered cluster set of an execution segment.
func (p *Profile) signatureOf(frames []resources.Vector, minShare float64) []int {
	counts := map[int]int{}
	for _, f := range frames {
		counts[p.ClassifyFrame(f)]++
	}
	// A cluster joins the signature only with sustained presence; brief
	// appearances are spikes or misclassified boundary frames, which must
	// not mint artifact multi-cluster stage types.
	minCount := int(minShare * float64(len(frames)))
	if minCount < 1 {
		minCount = 1
	}
	var set []int
	for c, n := range counts {
		if c == p.LoadingClusterID {
			continue // stray loading-like frames inside a stage are noise
		}
		if n >= minCount {
			set = append(set, c)
		}
	}
	if len(set) == 0 {
		// Degenerate segment: keep its most frequent cluster.
		best, bestN := -1, 0
		for c, n := range counts {
			if n > bestN {
				best, bestN = c, n
			}
		}
		set = append(set, best)
	}
	sort.Ints(set)
	return set
}

// absorb folds one detected stage occurrence into the catalog, creating a
// new signature when needed and updating running statistics.
func (p *Profile) absorb(d Detected, frames []resources.Vector, minShare float64) {
	if d.Loading {
		s := &p.Catalog[LoadingStageID]
		s.update(d)
		return
	}
	set := p.signatureOf(frames[d.Start:d.End], minShare)
	key := Key(set)
	id, ok := p.sigIndex[key]
	if !ok {
		id = len(p.Catalog)
		p.sigIndex[key] = id
		p.Catalog = append(p.Catalog, StageSig{ID: id, ClusterSet: set})
	}
	p.Catalog[id].update(d)
}

// update folds one occurrence into a signature's running statistics.
func (s *StageSig) update(d Detected) {
	n := float64(s.Count)
	s.Mean = s.Mean.Scale(n / (n + 1)).Add(d.Mean.Scale(1 / (n + 1)))
	s.Peak = s.Peak.Max(d.Peak)
	s.MeanDurFrames = (s.MeanDurFrames*n + float64(d.Frames())) / (n + 1)
	s.Count++
}

// NumStageTypes returns the catalog size including the loading stage — the
// quantity reported in Table I.
func (p *Profile) NumStageTypes() int { return len(p.Catalog) }

// Stage returns the catalog entry with the given ID.
func (p *Profile) Stage(id int) (StageSig, bool) {
	if id < 0 || id >= len(p.Catalog) {
		return StageSig{}, false
	}
	return p.Catalog[id], true
}

// StageByClusters returns the catalog ID for a cluster set, or false when
// the combination was never observed.
func (p *Profile) StageByClusters(set []int) (int, bool) {
	sorted := append([]int(nil), set...)
	sort.Ints(sorted)
	id, ok := p.sigIndex[Key(sorted)]
	return id, ok
}

// CandidateStages returns the catalog IDs of execution stages whose cluster
// set contains the given cluster, most-observed first. The online detector
// uses it to shortlist which stage a game just entered from its first frame.
func (p *Profile) CandidateStages(clusterID int) []int {
	var ids []int
	for _, s := range p.Catalog {
		if s.Loading {
			continue
		}
		for _, c := range s.ClusterSet {
			if c == clusterID {
				ids = append(ids, s.ID)
				break
			}
		}
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return p.Catalog[ids[a]].Count > p.Catalog[ids[b]].Count
	})
	return ids
}

// PeakDemand returns the component-wise maximum demand over the whole
// catalog — the game's peak consumption M of Eq. 1.
func (p *Profile) PeakDemand() resources.Vector {
	var peak resources.Vector
	for _, s := range p.Catalog {
		peak = peak.Max(s.Peak)
	}
	return peak
}
