// Package persist saves and loads trained CoCG systems. The paper stresses
// that "contention feature profiling and model training only need to be
// performed once"; this package makes that literal — a bundle file written
// after the offline pass serves every later deployment without retraining.
//
// The format is gzip-compressed JSON: one document holding, per game, the
// profile (centroids + stage catalog), the pooled and per-habit models, the
// typical demand curve, and the measured accuracies. Profiling corpora are
// not persisted; a loaded system schedules and predicts exactly like the
// original but cannot regenerate corpus-derived experiment figures.
package persist

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/predictor"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

// FormatVersion guards against loading bundles from incompatible builds.
const FormatVersion = 1

// bundleDTO is one game's persistent training bundle.
type bundleDTO struct {
	Game            string                            `json:"game"`
	Profile         json.RawMessage                   `json:"profile"`
	Models          []*mlmodels.SavedModel            `json:"models"`
	HabitModels     map[string][]*mlmodels.SavedModel `json:"habit_models,omitempty"`
	HabitAccuracy   map[string]float64                `json:"habit_accuracy,omitempty"`
	HabitPool       []int64                           `json:"habit_pool,omitempty"`
	OfflineAccuracy float64                           `json:"offline_accuracy"`
	TypicalCurve    []resources.Vector                `json:"typical_curve"`
}

// systemDTO is the whole persisted system.
type systemDTO struct {
	Version int         `json:"version"`
	Bundles []bundleDTO `json:"bundles"`
}

// Save writes a trained system to w.
func Save(sys *core.System, w io.Writer) error {
	doc := systemDTO{Version: FormatVersion}
	for _, game := range sys.Games() {
		b, _ := sys.Bundle(game)
		dto, err := bundleToDTO(b)
		if err != nil {
			return fmt.Errorf("persist: %s: %w", game, err)
		}
		doc.Bundles = append(doc.Bundles, *dto)
	}
	zw := gzip.NewWriter(w)
	if err := json.NewEncoder(zw).Encode(doc); err != nil {
		_ = zw.Close() // encode error dominates
		return err
	}
	return zw.Close()
}

// Load reads a trained system from r. Game specs are resolved from the
// built-in suite by name.
func Load(r io.Reader) (*core.System, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("persist: not a bundle file: %w", err)
	}
	defer func() { _ = zr.Close() }() // read path; decode errors surface first
	var doc systemDTO
	if err := json.NewDecoder(zr).Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("persist: bundle version %d, want %d", doc.Version, FormatVersion)
	}
	if len(doc.Bundles) == 0 {
		return nil, fmt.Errorf("persist: empty bundle")
	}
	sys := &core.System{Bundles: map[string]*predictor.Trained{}}
	for i := range doc.Bundles {
		b, err := bundleFromDTO(&doc.Bundles[i])
		if err != nil {
			return nil, fmt.Errorf("persist: %s: %w", doc.Bundles[i].Game, err)
		}
		sys.Bundles[b.Spec.Name] = b
	}
	return sys, nil
}

// SaveFile writes the system to path.
func SaveFile(sys *core.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(sys, f); err != nil {
		_ = f.Close() // save error dominates
		return err
	}
	return f.Close()
}

// LoadFile reads a system from path.
func LoadFile(path string) (*core.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only file
	return Load(f)
}

func bundleToDTO(b *predictor.Trained) (*bundleDTO, error) {
	profRaw, err := json.Marshal(b.Profile)
	if err != nil {
		return nil, err
	}
	dto := &bundleDTO{
		Game:            b.Spec.Name,
		Profile:         profRaw,
		OfflineAccuracy: b.OfflineAccuracy,
		TypicalCurve:    b.TypicalCurve,
		HabitPool:       b.HabitPool,
	}
	for _, m := range b.Models {
		sm, err := mlmodels.SaveModel(m)
		if err != nil {
			return nil, err
		}
		dto.Models = append(dto.Models, sm)
	}
	if len(b.HabitModels) > 0 {
		dto.HabitModels = map[string][]*mlmodels.SavedModel{}
		dto.HabitAccuracy = map[string]float64{}
		for _, habit := range sortedHabits(b.HabitModels) {
			models := b.HabitModels[habit]
			key := strconv.FormatInt(habit, 10)
			for _, m := range models {
				sm, err := mlmodels.SaveModel(m)
				if err != nil {
					return nil, err
				}
				dto.HabitModels[key] = append(dto.HabitModels[key], sm)
			}
			dto.HabitAccuracy[key] = b.HabitAccuracy[habit]
		}
	}
	return dto, nil
}

func bundleFromDTO(d *bundleDTO) (*predictor.Trained, error) {
	spec, err := gamesim.GameByName(d.Game)
	if err != nil {
		return nil, err
	}
	var prof profiler.Profile
	if err := json.Unmarshal(d.Profile, &prof); err != nil {
		return nil, err
	}
	if len(d.Models) == 0 {
		return nil, fmt.Errorf("bundle has no models")
	}
	b := &predictor.Trained{
		Spec:            spec,
		Profile:         &prof,
		OfflineAccuracy: d.OfflineAccuracy,
		TypicalCurve:    d.TypicalCurve,
		HabitPool:       d.HabitPool,
	}
	for _, sm := range d.Models {
		m, err := mlmodels.LoadModel(sm)
		if err != nil {
			return nil, err
		}
		b.Models = append(b.Models, m)
	}
	if len(d.HabitModels) > 0 {
		b.HabitModels = map[int64][]mlmodels.Classifier{}
		b.HabitAccuracy = map[int64]float64{}
		for _, key := range sortedKeys(d.HabitModels) {
			saved := d.HabitModels[key]
			habit, err := strconv.ParseInt(key, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad habit key %q", key)
			}
			for _, sm := range saved {
				m, err := mlmodels.LoadModel(sm)
				if err != nil {
					return nil, err
				}
				b.HabitModels[habit] = append(b.HabitModels[habit], m)
			}
			b.HabitAccuracy[habit] = d.HabitAccuracy[key]
		}
	}
	return b, nil
}

// sortedHabits returns the map's habit seeds in ascending order so bundles
// serialize identically run to run.
func sortedHabits(m map[int64][]mlmodels.Classifier) []int64 {
	habits := make([]int64, 0, len(m))
	for h := range m {
		habits = append(habits, h)
	}
	sort.Slice(habits, func(i, j int) bool { return habits[i] < habits[j] })
	return habits
}

// sortedKeys returns the map's keys in ascending order so bundles decode in
// a deterministic sequence.
func sortedKeys(m map[string][]*mlmodels.SavedModel) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
