package persist

import (
	"bytes"
	"compress/gzip"
	"path/filepath"
	"sync"
	"testing"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/predictor"
	"cocg/internal/simclock"
)

var (
	sysOnce sync.Once
	sysVal  *core.System
	sysErr  error
)

func trainedSystem(t *testing.T) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = core.Train(
			[]*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()},
			core.TrainOptions{Players: 4, SessionsPerPlayer: 2, Seed: 55},
		)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

func TestRoundTripThroughBuffer(t *testing.T) {
	sys := trainedSystem(t)
	var buf bytes.Buffer
	if err := Save(sys, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Games()) != len(sys.Games()) {
		t.Fatalf("games: %v vs %v", loaded.Games(), sys.Games())
	}
	for _, game := range sys.Games() {
		orig, _ := sys.Bundle(game)
		back, ok := loaded.Bundle(game)
		if !ok {
			t.Fatalf("%s missing after load", game)
		}
		if back.OfflineAccuracy != orig.OfflineAccuracy {
			t.Errorf("%s accuracy changed", game)
		}
		if back.Profile.NumStageTypes() != orig.Profile.NumStageTypes() {
			t.Errorf("%s catalog size changed", game)
		}
		if len(back.TypicalCurve) != len(orig.TypicalCurve) {
			t.Errorf("%s typical curve changed", game)
		}
		if len(back.Pool()) == 0 {
			t.Errorf("%s lost its habit pool", game)
		}
		if len(back.HabitModels) != len(orig.HabitModels) {
			t.Errorf("%s habit models: %d vs %d", game, len(back.HabitModels), len(orig.HabitModels))
		}
	}
}

func TestLoadedSystemSchedulesIdentically(t *testing.T) {
	sys := trainedSystem(t)
	var buf bytes.Buffer
	if err := Save(sys, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Run the same session under predictors from both systems and compare
	// the allocation streams — they must match exactly.
	game := "Genshin Impact"
	origB, _ := sys.Bundle(game)
	loadB, _ := loaded.Bundle(game)
	habit := origB.Pool()[0]
	script := int(uint64(habit) % 3)

	sessA, err := gamesim.NewPlayerSession(origB.Spec, script, habit, 999)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := gamesim.NewPlayerSession(loadB.Spec, script, habit, 999)
	if err != nil {
		t.Fatal(err)
	}
	prA, err := origB.NewSessionPredictorForHabit(habit, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prB, err := loadB.NewSessionPredictorForHabit(habit, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200 && !sessA.Done(); i++ {
		dA, dB := sessA.Demand(), sessB.Demand()
		if dA != dB {
			t.Fatalf("tick %d: session divergence", i)
		}
		prA.Observe(dA)
		prB.Observe(dB)
		if prA.Alloc() != prB.Alloc() {
			t.Fatalf("tick %d: allocation divergence: %v vs %v", i, prA.Alloc(), prB.Alloc())
		}
		sessA.Step(prA.Alloc())
		sessB.Step(prB.Alloc())
	}
}

func TestLoadedSystemRunsCluster(t *testing.T) {
	sys := trainedSystem(t)
	var buf bytes.Buffer
	if err := Save(sys, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := loaded.NewCluster(1, core.PolicyCoCG)
	gen := loaded.Generator(3)
	c.Submit(gen.Next(gamesim.Contra()))
	c.Run(20 * simclock.Minute)
	if len(c.Records()) == 0 {
		t.Fatal("loaded system completed no sessions")
	}
}

func TestFileRoundTrip(t *testing.T) {
	sys := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "system.cocg.gz")
	if err := SaveFile(sys, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Games()) != 2 {
		t.Errorf("games = %v", loaded.Games())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("garbage loaded")
	}
}

func TestLoadRejectsWrongVersionAndEmpty(t *testing.T) {
	for name, doc := range map[string]string{
		"wrong version": `{"version":99,"bundles":[{"game":"Contra"}]}`,
		"empty bundles": `{"version":1,"bundles":[]}`,
		"unknown game":  `{"version":1,"bundles":[{"game":"Tetris"}]}`,
	} {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(doc)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf); err == nil {
			t.Errorf("%s: loaded", name)
		}
	}
}
