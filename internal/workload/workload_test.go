package workload

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/resources"
)

// nopPolicy admits nothing, so arrivals pile up in Pending.
type nopPolicy struct{}

func (nopPolicy) Name() string                                          { return "nop" }
func (nopPolicy) Admit(*platform.Server, *gamesim.GameSpec, int64) bool { return false }
func (nopPolicy) NewController(*gamesim.GameSpec, int64) (platform.Controller, error) {
	return nil, nil
}
func (nopPolicy) Regulate(*platform.Server) {}

func TestGeneratorUsesHabitPool(t *testing.T) {
	spec := gamesim.GenshinImpact()
	pool := []int64{11, 22, 33}
	g := NewGenerator(map[string][]int64{spec.Name: pool}, 1)
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		a := g.Next(spec)
		found := false
		for _, h := range pool {
			if a.Habit == h {
				found = true
			}
		}
		if !found {
			t.Fatalf("habit %d not from pool", a.Habit)
		}
		seen[a.Habit] = true
		// Mobile: the script is the habit's routine.
		if a.Script != int(uint64(a.Habit)%3) {
			t.Fatalf("mobile script %d does not match habit %d", a.Script, a.Habit)
		}
	}
	if len(seen) < 2 {
		t.Error("generator never varied habits")
	}
}

func TestGeneratorFreshHabitsWithoutPool(t *testing.T) {
	g := NewGenerator(nil, 2)
	a := g.Next(gamesim.Contra())
	b := g.Next(gamesim.Contra())
	if a.Habit == b.Habit {
		t.Error("fresh habits identical")
	}
	if a.SessionSeed == b.SessionSeed {
		t.Error("session seeds identical")
	}
	if a.Script < 0 || a.Script >= len(gamesim.Contra().Scripts) {
		t.Errorf("script %d out of range", a.Script)
	}
}

func TestPairStreamKeepsBacklog(t *testing.T) {
	c := platform.NewCluster(1, nopPolicy{})
	gen := NewGenerator(nil, 3)
	s := &PairStream{Gen: gen, A: gamesim.CSGO(), B: gamesim.Contra(), Backlog: 2}
	s.Feed(c)
	if len(c.Pending) != 4 {
		t.Fatalf("pending = %d, want 4", len(c.Pending))
	}
	// Feeding again adds nothing: the backlog is already full.
	s.Feed(c)
	if len(c.Pending) != 4 {
		t.Errorf("pending after refeed = %d", len(c.Pending))
	}
	counts := map[string]int{}
	for _, a := range c.Pending {
		counts[a.Spec.Name]++
	}
	if counts["CSGO"] != 2 || counts["Contra"] != 2 {
		t.Errorf("backlog mix = %v", counts)
	}
}

func TestPairStreamDefaultBacklog(t *testing.T) {
	c := platform.NewCluster(1, nopPolicy{})
	s := &PairStream{Gen: NewGenerator(nil, 4), A: gamesim.Contra(), B: gamesim.Contra()}
	s.Feed(c)
	if s.Backlog != 1 {
		t.Errorf("default backlog = %d", s.Backlog)
	}
}

func TestMixStreamRate(t *testing.T) {
	c := platform.NewCluster(1, nopPolicy{})
	gen := NewGenerator(nil, 5)
	m := NewMixStream(gen, []*gamesim.GameSpec{gamesim.Contra(), gamesim.CSGO()}, 0.5, 6)
	for i := 0; i < 1000; i++ {
		m.Feed(c)
	}
	n := len(c.Pending)
	if n < 350 || n > 650 {
		t.Errorf("0.5/s for 1000s produced %d arrivals", n)
	}
}

func TestMixStreamEmptyMix(t *testing.T) {
	c := platform.NewCluster(1, nopPolicy{})
	m := NewMixStream(NewGenerator(nil, 7), nil, 1, 8)
	m.Feed(c)
	if len(c.Pending) != 0 {
		t.Error("empty mix produced arrivals")
	}
}

func TestArrivalsAreRunnable(t *testing.T) {
	g := NewGenerator(nil, 9)
	for _, spec := range gamesim.AllGames() {
		a := g.Next(spec)
		sess, err := gamesim.NewPlayerSession(a.Spec, a.Script, a.Habit, a.SessionSeed)
		if err != nil {
			t.Fatalf("%s arrival not runnable: %v", spec.Name, err)
		}
		for i := 0; i < 10; i++ {
			sess.Step(resources.FullServer)
		}
	}
}
