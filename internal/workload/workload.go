// Package workload generates the arrival streams of Section V: pair
// saturation runs (Fig. 11's two-game combinations, where the selected games
// continuously request placement for two hours) and mixed datacenter
// streams.
package workload

import (
	"math/rand"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
)

// Generator produces arrivals for a set of games with player-structured
// habits: habits are drawn from a fixed pool (returning players) so trained
// per-habit models apply.
type Generator struct {
	rng      *rand.Rand
	habits   map[string][]int64
	nextSess int64
}

// NewGenerator builds a generator. habitsByGame lists the returning-player
// habit seeds available per game (from the training corpus); games without
// an entry get fresh random habits.
func NewGenerator(habitsByGame map[string][]int64, seed int64) *Generator {
	return &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		habits:   habitsByGame,
		nextSess: seed*7919 + 17,
	}
}

// Next produces one arrival for the given game: a random script (the paper:
// "when a game is assigned, it randomly selects one from the scripts"),
// except for mobile games where the returning player's habit picks their
// daily routine.
func (g *Generator) Next(spec *gamesim.GameSpec) platform.Arrival {
	habit := g.rng.Int63()
	if pool := g.habits[spec.Name]; len(pool) > 0 {
		habit = pool[g.rng.Intn(len(pool))]
	}
	script := g.rng.Intn(len(spec.Scripts))
	if spec.Category == gamesim.Mobile {
		script = int(uint64(habit) % uint64(len(spec.Scripts)))
	}
	g.nextSess++
	return platform.Arrival{
		Spec:        spec,
		Script:      script,
		Habit:       habit,
		SessionSeed: g.nextSess,
	}
}

// PairStream keeps a cluster saturated with two games: whenever fewer than
// backlog arrivals of a game are pending or running, it submits another.
// This reproduces Fig. 11's setting.
type PairStream struct {
	Gen     *Generator
	A, B    *gamesim.GameSpec
	Backlog int
}

// Feed tops the cluster's queue up. Call once per placement interval.
func (p *PairStream) Feed(c *platform.Cluster) {
	if p.Backlog <= 0 {
		p.Backlog = 1
	}
	countPending := map[string]int{}
	for _, a := range c.Pending {
		countPending[a.Spec.Name]++
	}
	for _, spec := range []*gamesim.GameSpec{p.A, p.B} {
		for countPending[spec.Name] < p.Backlog {
			c.Submit(p.Gen.Next(spec))
			countPending[spec.Name]++
		}
	}
}

// MixStream submits arrivals of many games at a fixed mean rate (Poisson
// thinning per second), for datacenter-scale experiments.
type MixStream struct {
	Gen  *Generator
	Mix  []*gamesim.GameSpec
	Rate float64 // expected arrivals per second
	rng  *rand.Rand
}

// NewMixStream builds a mixed arrival stream.
func NewMixStream(gen *Generator, mix []*gamesim.GameSpec, rate float64, seed int64) *MixStream {
	return &MixStream{Gen: gen, Mix: mix, Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Feed submits the second's arrivals: floor(Rate) guaranteed plus one more
// with the fractional probability.
func (m *MixStream) Feed(c *platform.Cluster) {
	if len(m.Mix) == 0 {
		return
	}
	for _, a := range m.second() {
		c.Submit(a)
	}
}

// second draws one second's arrivals, in the exact draw order Feed has
// always used, without stamping Submitted.
func (m *MixStream) second() []platform.Arrival {
	n := int(m.Rate)
	if m.rng.Float64() < m.Rate-float64(n) {
		n++
	}
	out := make([]platform.Arrival, 0, n)
	for i := 0; i < n; i++ {
		spec := m.Mix[m.rng.Intn(len(m.Mix))]
		out = append(out, m.Gen.Next(spec))
	}
	return out
}

// Schedule pregenerates the next horizon seconds of the stream as a
// Submitted-stamped, ascending arrival schedule for the event-driven cluster
// driver. The draws are identical, in the same order, to calling Feed once
// per second starting at time start — the same generator state yields the
// same arrivals either way.
func (m *MixStream) Schedule(start, horizon simclock.Seconds) []platform.Arrival {
	if len(m.Mix) == 0 {
		return nil
	}
	var out []platform.Arrival
	for t := simclock.Seconds(0); t < horizon; t++ {
		for _, a := range m.second() {
			a.Submitted = start + t
			out = append(out, a)
		}
	}
	return out
}
