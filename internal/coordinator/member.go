package coordinator

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cocg/internal/streaming"
)

// ClusterSpec configures one cluster (region/zone) the coordinator fronts.
type ClusterSpec struct {
	// Name labels the cluster in metrics and Accept.Cluster stamps; empty
	// defaults to the address.
	Name string
	// Addr is the cluster's cocg-server session/summary address.
	Addr string
	// LatencyMS is the simulated user→region round-trip time the routing
	// score charges for this cluster.
	LatencyMS float64
}

// member is one cluster's runtime state: the prober-owned summary feed, the
// health verdict routing reads, and per-cluster traffic counters.
type member struct {
	id   int
	name string
	addr string
	lat  float64

	// mu guards the health state and the last summary. The feed connection
	// is owned exclusively by the prober goroutine and is tracked separately
	// (connMu) only so Close can force a blocked Recv down.
	mu       sync.Mutex
	healthy  bool
	failures int
	summary  streaming.ClusterSummary
	probed   bool      // at least one summary ever landed
	lastSum  time.Time // when the last summary landed (staleness on /metrics)

	connMu sync.Mutex
	nc     net.Conn

	// Traffic counters (monotonic since start).
	routed     atomic.Uint64 // sessions for which this cluster was dialed
	admitted   atomic.Uint64 // sessions this cluster accepted
	rejected   atomic.Uint64 // sessions this cluster declined (admission full)
	transport  atomic.Uint64 // session attempts lost to dial/transport errors
	probeFails atomic.Uint64 // summary probes that errored (dial, send, recv)
}

// view snapshots the member into the immutable form routing reads.
func (m *member) view() ClusterView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ClusterView{
		ID:           m.id,
		Healthy:      m.healthy,
		LatencyMS:    m.lat,
		Headroom:     m.summary.Headroom,
		LiveSessions: m.summary.LiveSessions,
	}
}

// noteSummary records a successful probe: the member is healthy and its load
// view is fresh.
func (m *member) noteSummary(sum streaming.ClusterSummary) {
	m.mu.Lock()
	m.healthy = true
	m.failures = 0
	m.summary = sum
	m.probed = true
	m.lastSum = time.Now()
	m.mu.Unlock()
}

// summaryAge reports seconds since the last summary landed, or -1 when no
// probe has ever succeeded — the staleness signal /metrics and /status
// expose per cluster.
func (m *member) summaryAge() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.probed {
		return -1
	}
	return time.Since(m.lastSum).Seconds()
}

// noteFailure records one failed probe or session transport error and
// reports whether this failure crossed the unhealthy threshold.
func (m *member) noteFailure(downAfter int) (wentDown bool) {
	m.mu.Lock()
	m.failures++
	if m.failures >= downAfter && m.healthy {
		m.healthy = false
		wentDown = true
	}
	m.mu.Unlock()
	return wentDown
}

// closeFeed tears the summary feed down (from the prober after an error, or
// from Close to unblock a pending Recv).
func (m *member) closeFeed() {
	m.connMu.Lock()
	if m.nc != nil {
		_ = m.nc.Close() // best-effort teardown
		m.nc = nil
	}
	m.connMu.Unlock()
}

// probeLoop runs the member's health/load feed until the coordinator closes:
// (re)establish the feed, pull a summary every ProbeEvery, and flip the
// health verdict on consecutive failures. One prober per member — the feed
// connection never sees concurrent use.
func (co *Coordinator) probeLoop(m *member) {
	defer co.wg.Done()
	ticker := time.NewTicker(co.cfg.ProbeEvery)
	defer ticker.Stop()
	var feed *streaming.Conn
	for {
		feed = co.probeOnce(m, feed)
		select {
		case <-co.done:
			if feed != nil {
				m.closeFeed()
			}
			return
		case <-ticker.C:
		}
	}
}

// probeOnce pulls one summary over the feed, dialing it first when absent,
// and returns the feed for the next round (nil after an error, so the next
// round redials).
func (co *Coordinator) probeOnce(m *member, feed *streaming.Conn) *streaming.Conn {
	deadline := time.Now().Add(co.cfg.ProbeTimeout)
	if feed == nil {
		nc, err := net.DialTimeout("tcp", m.addr, co.cfg.DialTimeout)
		if err != nil {
			co.probeFailed(m, err)
			return nil
		}
		m.connMu.Lock()
		m.nc = nc
		m.connMu.Unlock()
		feed = streaming.NewConn(nc)
		// First request negotiates the wire protocol, exactly like a session
		// Hello: request and reply travel as JSON, the rest of the feed
		// switches to the negotiated framing (the extended-summary binary
		// layout against a current cluster, which carries the per-game
		// demand breakdown; plain binary or JSON against older ones).
		_ = nc.SetDeadline(deadline)
		if err := feed.Send(&streaming.Envelope{Type: streaming.MsgSummaryReq,
			SummaryReq: &streaming.SummaryReq{Proto: streaming.ProtoBinary3}}); err != nil {
			m.closeFeed()
			co.probeFailed(m, err)
			return nil
		}
		env, err := feed.Recv()
		if err != nil || env.Type != streaming.MsgSummary {
			m.closeFeed()
			co.probeFailed(m, err)
			return nil
		}
		feed.SetProto(streaming.NegotiateProto(streaming.ProtoBinary3, env.Summary.Proto))
		m.noteSummary(*env.Summary)
		return feed
	}
	_ = m.ncDeadline(deadline)
	if err := feed.Send(&streaming.Envelope{Type: streaming.MsgSummaryReq,
		SummaryReq: &streaming.SummaryReq{}}); err != nil {
		m.closeFeed()
		co.probeFailed(m, err)
		return nil
	}
	env, err := feed.Recv()
	if err != nil || env.Type != streaming.MsgSummary {
		m.closeFeed()
		co.probeFailed(m, err)
		return nil
	}
	m.noteSummary(*env.Summary)
	return feed
}

// ncDeadline stamps the probe deadline on the feed's transport, tolerating a
// feed torn down concurrently by Close.
func (m *member) ncDeadline(t time.Time) error {
	m.connMu.Lock()
	defer m.connMu.Unlock()
	if m.nc == nil {
		return net.ErrClosed
	}
	return m.nc.SetDeadline(t)
}

// probeFailed folds one probe failure into the member's health state.
func (co *Coordinator) probeFailed(m *member, err error) {
	m.probeFails.Add(1)
	if m.noteFailure(co.cfg.DownAfter) {
		co.markedDown.Add(1)
		co.logf("coordinator: cluster %s (%s) marked down: %v", m.name, m.addr, err)
	}
}
