// Package coordinator is the fleet tier above a single cluster: an
// overlord-style control plane that fronts N cocg-server clusters
// (regions/zones), routes every arriving session to the cluster with the
// best predicted-headroom/latency trade-off, and fails sessions over when a
// region goes down — the structural unlock for serving traffic no single
// cluster can hold.
//
// The coordinator speaks the internal/streaming protocol on both sides and
// adds no framing of its own. Per session it relays the JSON Hello/Accept
// handshake message-by-message (stamping Accept.Cluster so the client learns
// where it landed), then collapses into a raw byte pipe — the negotiated
// session codec, binary or JSON, passes through untouched, so the
// coordinator adds one hop but zero re-encoding to the hot path.
// Cluster load is pulled over the same wire: a background prober per cluster
// holds a summary feed (MsgSummaryReq/MsgSummary, protocol-negotiated like
// any session) and refreshes a ClusterSummary every ProbeEvery; consecutive
// probe failures mark the cluster down until a probe lands again.
//
// Routing is deterministic by the same rule as every other fan-out in this
// repo: the per-cluster scoring scan decomposes into fixed chunks
// (independent of Config.Jobs) and the preference order is produced by a
// serial strict-comparison sort with lowest-ID tie-break, so a frozen fleet
// snapshot yields bit-identical decisions at every worker count. See
// docs/FLEET.md for the operator view: routing policy, failover semantics,
// and the fleet metrics reference.
package coordinator

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cocg/internal/gamesim"
	"cocg/internal/streaming"
)

// Config shapes a coordinator.
type Config struct {
	// Clusters lists the fleet, in ID order. At least one is required.
	Clusters []ClusterSpec
	// Jobs bounds the goroutines the routing scoring scan fans out over;
	// <=1 scans serially. Decisions are identical at every value.
	Jobs int
	// Weights tunes the routing score; the zero value uses the defaults.
	Weights RouteWeights
	// ProbeEvery is the summary-feed refresh period; <=0 means 500 ms.
	ProbeEvery time.Duration
	// DownAfter is how many consecutive probe failures mark a cluster
	// unhealthy; <=0 means 2. A single successful probe restores it.
	DownAfter int
	// DialTimeout bounds cluster dials (probes and session attempts);
	// <=0 means 2 s.
	DialTimeout time.Duration
	// ProbeTimeout bounds one probe round trip; <=0 means 2 s.
	ProbeTimeout time.Duration
	// Logf, when non-nil, receives diagnostic messages (state transitions,
	// failovers).
	Logf func(format string, args ...any)
}

// Coordinator is a running control plane: one TCP listener for sessions,
// one health prober per cluster, and the routing state in between.
type Coordinator struct {
	cfg     Config
	ln      net.Listener
	members []*member

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// pairsMu guards the set of live proxied sessions so Close can force
	// both legs of every pipe down.
	pairsMu sync.Mutex
	pairs   map[*proxyPair]struct{}

	// Fleet counters (see MetricsHandler).
	decisions  atomic.Uint64 // routing decisions taken
	admissions atomic.Uint64 // sessions accepted somewhere
	rejections atomic.Uint64 // sessions no cluster would take
	failovers  atomic.Uint64 // attempts abandoned mid-admission for the next cluster
	markedDown atomic.Uint64 // health transitions to down
}

// proxyPair is one live proxied session's two legs.
type proxyPair struct {
	client, backend *streaming.Conn
}

// Serve starts a coordinator listening for sessions on addr.
func Serve(addr string, cfg Config) (*Coordinator, error) {
	if len(cfg.Clusters) == 0 {
		return nil, errors.New("coordinator: Config.Clusters is required")
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:   cfg,
		ln:    ln,
		done:  make(chan struct{}),
		pairs: make(map[*proxyPair]struct{}),
	}
	for i, cs := range cfg.Clusters {
		name := cs.Name
		if name == "" {
			name = cs.Addr
		}
		co.members = append(co.members, &member{
			id: i, name: name, addr: cs.Addr, lat: cs.LatencyMS,
		})
	}
	co.wg.Add(1 + len(co.members))
	for _, m := range co.members {
		go co.probeLoop(m)
	}
	go co.acceptLoop()
	return co, nil
}

// Addr returns the session listening address.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close stops the coordinator: the listener, every prober, and both legs of
// every live proxied session are down when it returns, and no goroutine the
// coordinator started survives it.
func (co *Coordinator) Close() error {
	if !co.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(co.done)
	err := co.ln.Close()
	for _, m := range co.members {
		m.closeFeed() // unblock probers waiting in Recv
	}
	co.pairsMu.Lock()
	for p := range co.pairs {
		_ = p.client.Close()
		_ = p.backend.Close()
	}
	co.pairsMu.Unlock()
	co.wg.Wait()
	return err
}

// acceptLoop admits client connections.
func (co *Coordinator) acceptLoop() {
	defer co.wg.Done()
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return // listener closed
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			co.handle(streaming.NewConn(c))
		}()
	}
}

// rank produces the routing preference order for a game against the frozen
// fleet state: every member's view is snapshotted first, then scored — the
// decision is a pure function of that snapshot.
func (co *Coordinator) rank(spec *gamesim.GameSpec) []int {
	views := make([]ClusterView, len(co.members))
	for i, m := range co.members {
		views[i] = m.view()
	}
	return Rank(views, spec, co.cfg.Weights, co.cfg.Jobs)
}

// handle runs one client session end to end: read the Hello, walk the
// routing preference order admitting against each cluster in turn
// (transport failures and rejections fail over to the next), then splice
// the two connections into a raw byte pipe for the session body.
func (co *Coordinator) handle(client *streaming.Conn) {
	env, err := client.Recv()
	if err != nil || env.Type != streaming.MsgHello {
		_ = client.Close()
		return
	}
	// The spec only tunes the latency weight; unknown games route with
	// sensitivity 1 and are rejected by the clusters themselves.
	spec, _ := gamesim.GameByName(env.Hello.Game)

	order := co.rank(spec)
	co.decisions.Add(1)
	reason := "no healthy cluster"
	for attempt, id := range order {
		m := co.members[id]
		if attempt > 0 {
			co.failovers.Add(1)
			co.logf("coordinator: failing %s session over to cluster %s", env.Hello.Game, m.name)
		}
		m.routed.Add(1)
		backend, admitted, why := co.admitOn(m, env)
		if backend == nil {
			reason = why
			continue
		}
		admitted.Accept.Cluster = m.name
		m.admitted.Add(1)
		co.admissions.Add(1)
		if client.Send(admitted) != nil {
			_ = backend.Close()
			_ = client.Close()
			return
		}
		co.pipe(client, backend)
		return
	}
	co.rejections.Add(1)
	_ = client.Send(&streaming.Envelope{Type: streaming.MsgReject,
		Reject: &streaming.Reject{Reason: reason}}) // best-effort: the client may already be gone
	_ = client.Close()
}

// admitOn offers the Hello to one cluster and returns the open backend
// connection plus the Accept on success. Transport errors count against the
// member's health (a refused dial is the fastest down-detector there is);
// an explicit Reject does not — a full cluster is healthy, just busy.
func (co *Coordinator) admitOn(m *member, hello *streaming.Envelope) (*streaming.Conn, *streaming.Envelope, string) {
	nc, err := net.DialTimeout("tcp", m.addr, co.cfg.DialTimeout)
	if err != nil {
		m.transport.Add(1)
		co.probeFailed(m, err)
		return nil, nil, err.Error()
	}
	backend := streaming.NewConn(nc)
	if err := backend.Send(hello); err != nil {
		_ = backend.Close()
		m.transport.Add(1)
		co.probeFailed(m, err)
		return nil, nil, err.Error()
	}
	reply, err := backend.Recv()
	if err != nil {
		_ = backend.Close()
		m.transport.Add(1)
		co.probeFailed(m, err)
		return nil, nil, err.Error()
	}
	switch reply.Type {
	case streaming.MsgAccept:
		return backend, reply, ""
	case streaming.MsgReject:
		_ = backend.Close()
		m.rejected.Add(1)
		return nil, nil, reply.Reject.Reason
	default:
		_ = backend.Close()
		m.transport.Add(1)
		return nil, nil, fmt.Sprintf("unexpected admission reply %q", reply.Type)
	}
}

// pipe splices the two legs of an admitted session into a raw byte relay
// (one goroutine per direction, both tracked for shutdown) and blocks until
// the session ends. Either side closing tears both legs down.
func (co *Coordinator) pipe(client, backend *streaming.Conn) {
	p := &proxyPair{client: client, backend: backend}
	co.pairsMu.Lock()
	co.pairs[p] = struct{}{}
	co.pairsMu.Unlock()

	downstream := make(chan struct{})
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		defer close(downstream)
		_, _ = backend.RelayTo(client) // session body: server → player
		_ = client.Close()
		_ = backend.Close()
	}()
	_, _ = client.RelayTo(backend) // input events: player → server
	_ = backend.Close()
	_ = client.Close()
	<-downstream

	co.pairsMu.Lock()
	delete(co.pairs, p)
	co.pairsMu.Unlock()
}

// Sessions returns the number of sessions currently proxied.
func (co *Coordinator) Sessions() int {
	co.pairsMu.Lock()
	defer co.pairsMu.Unlock()
	return len(co.pairs)
}

// String describes the coordinator.
func (co *Coordinator) String() string {
	return fmt.Sprintf("cocg coordinator on %s fronting %d clusters", co.Addr(), len(co.members))
}

// logf forwards to Logf when set.
func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}
