package coordinator

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/streaming"
)

var (
	sysOnce sync.Once
	sysVal  *core.System
	sysErr  error
)

func testSystem(t testing.TB) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = core.Train(
			[]*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()},
			core.TrainOptions{Players: 4, SessionsPerPlayer: 2, Seed: 77},
		)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

// startCluster brings up one in-process cocg-server cluster for the fleet.
func startCluster(t *testing.T, tick time.Duration) *streaming.Server {
	t.Helper()
	s, err := streaming.Serve("127.0.0.1:0", streaming.ServerConfig{
		System:    testSystem(t),
		Policy:    core.PolicyCoCG,
		Servers:   4,
		TickEvery: tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// startFleet builds a coordinator over the given clusters and waits until
// the probers have seen every one healthy.
func startFleet(t *testing.T, specs []ClusterSpec) *Coordinator {
	t.Helper()
	co, err := Serve("127.0.0.1:0", Config{
		Clusters:   specs,
		ProbeEvery: 10 * time.Millisecond,
		DownAfter:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for _, m := range co.members {
			if v := m.view(); v.Healthy {
				healthy++
			}
		}
		if healthy == len(specs) {
			return co
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d clusters became healthy", healthy, len(specs))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetRoutesToNearestCluster is the happy-path e2e: a session played
// through the coordinator completes end to end, lands on the low-latency
// region of an otherwise idle fleet, and the client learns which cluster
// served it from the Accept stamp.
func TestFleetRoutesToNearestCluster(t *testing.T) {
	near := startCluster(t, time.Millisecond)
	far := startCluster(t, time.Millisecond)
	co := startFleet(t, []ClusterSpec{
		{Name: "far", Addr: far.Addr(), LatencyMS: 120},
		{Name: "near", Addr: near.Addr(), LatencyMS: 5},
	})

	stats, err := streaming.Play(co.Addr(), streaming.ClientConfig{Game: "Contra", Script: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cluster != "near" {
		t.Errorf("idle fleet routed to %q, want the low-latency cluster", stats.Cluster)
	}
	if stats.Frames == 0 || stats.Final.DurationSec == 0 {
		t.Errorf("proxied session streamed nothing: %+v", stats)
	}
	if stats.Proto < streaming.ProtoBinary {
		t.Errorf("proxied session negotiated proto %d, want binary end to end", stats.Proto)
	}
	if got := co.decisions.Load(); got != 1 {
		t.Errorf("routing decisions %d, want 1", got)
	}
	if got := co.admissions.Load(); got != 1 {
		t.Errorf("admissions %d, want 1", got)
	}
	if got := co.members[1].admitted.Load(); got != 1 {
		t.Errorf("near cluster admitted %d sessions, want 1", got)
	}
}

// TestFleetFailsOverWhenClusterDies is the degraded-mode e2e: with the
// preferred region killed mid-run, new sessions fail over to the survivor
// within a single admission (the dead dial is the detector), the fleet
// counters record it, and the prober marks the region down.
func TestFleetFailsOverWhenClusterDies(t *testing.T) {
	doomed := startCluster(t, time.Millisecond)
	survivor := startCluster(t, time.Millisecond)
	co := startFleet(t, []ClusterSpec{
		{Name: "doomed", Addr: doomed.Addr(), LatencyMS: 5},
		{Name: "survivor", Addr: survivor.Addr(), LatencyMS: 120},
	})

	if err := doomed.Close(); err != nil {
		t.Fatal(err)
	}
	// The prober may not have noticed yet: the very next session must still
	// land, failing over from the dead dial to the survivor.
	stats, err := streaming.Play(co.Addr(), streaming.ClientConfig{Game: "Contra", Script: 0})
	if err != nil {
		t.Fatalf("session during failover: %v", err)
	}
	if stats.Cluster != "survivor" {
		t.Errorf("failover routed to %q, want survivor", stats.Cluster)
	}
	if stats.Frames == 0 {
		t.Error("failover session streamed nothing")
	}
	if co.failovers.Load()+co.members[0].transport.Load() == 0 {
		t.Error("no failover or transport failure recorded against the dead cluster")
	}

	// The prober must flip the verdict, after which routing excludes the
	// region entirely.
	deadline := time.Now().Add(10 * time.Second)
	for co.members[0].view().Healthy && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if co.members[0].view().Healthy {
		t.Fatal("dead cluster never marked down")
	}
	if got := co.markedDown.Load(); got == 0 {
		t.Error("marked-down counter never moved")
	}
	stats, err = streaming.Play(co.Addr(), streaming.ClientConfig{Game: "Genshin Impact", Script: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cluster != "survivor" {
		t.Errorf("post-mark-down session routed to %q", stats.Cluster)
	}
}

// TestFleetRejectsWhenAllClustersDown pins the all-dead answer: a clean
// protocol-level rejection, not a hang or a dropped connection.
func TestFleetRejectsWhenAllClustersDown(t *testing.T) {
	only := startCluster(t, time.Millisecond)
	co := startFleet(t, []ClusterSpec{{Name: "only", Addr: only.Addr(), LatencyMS: 5}})
	if err := only.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := streaming.Play(co.Addr(), streaming.ClientConfig{Game: "Contra", Script: 0}); err == nil {
		t.Fatal("session against a dead fleet succeeded")
	}
	if got := co.rejections.Load(); got != 1 {
		t.Errorf("rejections %d, want 1", got)
	}
}

// TestCoordinatorCloseWithLiveSessionsLeaksNothing is the shutdown audit for
// the proxy tier, mirroring the streaming server's: closing a coordinator
// with sessions mid-pipe must tear down the listener, every prober, and both
// relay goroutines of every live session — and leak nothing.
func TestCoordinatorCloseWithLiveSessionsLeaksNothing(t *testing.T) {
	// The clusters never tick: every proxied session is provably still live
	// when Close runs.
	a := startCluster(t, time.Hour)
	b := startCluster(t, time.Hour)
	before := runtime.NumGoroutine()
	co := startFleet(t, []ClusterSpec{
		{Name: "a", Addr: a.Addr(), LatencyMS: 5},
		{Name: "b", Addr: b.Addr(), LatencyMS: 40},
	})

	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Errors are expected: the coordinator goes away mid-session.
			_, _ = streaming.Play(co.Addr(), streaming.ClientConfig{Game: "Genshin Impact", Script: i % 3, Timeout: time.Minute})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for co.Sessions() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if co.Sessions() < n {
		t.Fatalf("only %d of %d sessions appeared", co.Sessions(), n)
	}

	closed := make(chan error, 1)
	go func() { closed <- co.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close() hung with live proxied sessions — goroutine leak")
	}
	wg.Wait()

	// Every coordinator goroutine must be gone; allow slack for runtime/test
	// helpers that come and go.
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestParseRejectsBadConfig covers Serve's validation.
func TestServeRejectsEmptyFleet(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", Config{}); err == nil {
		t.Fatal("Serve accepted an empty fleet")
	}
}
