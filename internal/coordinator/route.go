package coordinator

import (
	"cocg/internal/gamesim"
	"cocg/internal/parallel"
)

// ClusterView is the immutable per-cluster snapshot one routing decision
// reads: identity, simulated user→region latency, and the last load summary
// the health prober pulled. Routing is a pure function of a []ClusterView —
// the coordinator freezes the views under its lock, ranks them, and only
// then touches the network — which is what makes decisions reproducible and
// testable without a live fleet.
type ClusterView struct {
	// ID is the cluster's dense index in configuration order; it is the
	// deterministic tie-break key (lowest wins).
	ID int
	// Healthy is the prober's verdict; unhealthy clusters never appear in a
	// routing order.
	Healthy bool
	// LatencyMS is the simulated user→region round-trip time.
	LatencyMS float64
	// Headroom is the cluster's predicted free capacity fraction in [0,1]
	// from its last ClusterSummary (forecast-backed under CoCG).
	Headroom float64
	// LiveSessions is the cluster's connected-session count at summary time.
	LiveSessions int
}

// RouteWeights tunes the routing score. The zero value selects the defaults
// noted per field.
type RouteWeights struct {
	// Latency is the score cost of RefLatencyMS of round-trip time for a
	// fully latency-sensitive game (sensitivity 1.0); <=0 means 0.5 — i.e.
	// with the default reference, 100 ms of RTT outweighs half a cluster of
	// predicted headroom.
	Latency float64
	// RefLatencyMS is the round-trip time that costs exactly Latency score
	// points; <=0 means 100.
	RefLatencyMS float64
}

func (w RouteWeights) withDefaults() RouteWeights {
	if w.Latency <= 0 {
		w.Latency = 0.5
	}
	if w.RefLatencyMS <= 0 {
		w.RefLatencyMS = 100
	}
	return w
}

// LatencySensitivity returns the weight, in [0.25, 1.5], with which a game's
// routing decision counts region latency ("Games Are Not Equal": a
// twitch-paced shooter pays far more per millisecond than a menu-driven web
// game). It scales with the game's effective frame rate — the faster the
// frame lock, the less slack a round trip has — damped for the Web category
// (low interaction pressure) and boosted for MMORPG/MOBA (competitive play).
// Unknown specs (nil) get 1.
func LatencySensitivity(spec *gamesim.GameSpec) float64 {
	if spec == nil {
		return 1
	}
	s := spec.EffectiveFPS() / 60
	switch spec.Category {
	case gamesim.Web:
		s *= 0.5
	case gamesim.MMORPG:
		s *= 1.25
	}
	if s < 0.25 {
		s = 0.25
	}
	if s > 1.5 {
		s = 1.5
	}
	return s
}

// routeChunk is the scoring-scan granularity: views are scored in fixed
// 8-wide chunks so the decomposition — and therefore every float the scan
// produces — is independent of the worker count (the same rule as the
// placement and delivery walks).
const routeChunk = 8

// Rank scores every healthy cluster view and returns their IDs in preference
// order: primary routing choice first, then each failover candidate. The
// score is
//
//	Headroom − Latency × (LatencyMS / RefLatencyMS) × LatencySensitivity(spec)
//
// — predicted load headroom traded against user→region latency, weighted by
// how much this game cares. The per-view scoring fans out over jobs
// goroutines in fixed chunks; the order is then produced serially by a
// strict comparison sort with lowest-ID tie-break, so the result is
// bit-identical at every jobs value. Unhealthy views are excluded; an empty
// result means no cluster is routable.
func Rank(views []ClusterView, spec *gamesim.GameSpec, w RouteWeights, jobs int) []int {
	order := make([]int, 0, len(views))
	scores := make([]float64, len(views))
	RankInto(views, spec, w, jobs, &order, &scores)
	return order
}

// RankInto is Rank with caller-owned storage: order and scores are reset and
// reused, so a hot routing path allocates nothing in steady state. After the
// call *order holds the preference-ordered cluster IDs.
//
//cocg:hot
func RankInto(views []ClusterView, spec *gamesim.GameSpec, w RouteWeights, jobs int, order *[]int, scores *[]float64) {
	w = w.withDefaults()
	sens := LatencySensitivity(spec)
	n := len(views)
	if cap(*scores) < n {
		*scores = make([]float64, n) //cocg:lint-ignore hotalloc grow path; fires once per fleet-size increase, steady state reuses the buffer
	}
	sl := (*scores)[:n]
	if jobs <= 1 {
		// Inline serial scan: the steady-state routing path stays off the
		// allocator (no closure, no fan-out machinery).
		for i := range views {
			v := &views[i]
			sl[i] = v.Headroom - w.Latency*(v.LatencyMS/w.RefLatencyMS)*sens
		}
	} else {
		parallel.ForChunksOf(jobs, n, routeChunk, func(chunk, lo, hi int) { //cocg:lint-ignore hotalloc fan-out closure; only reached when jobs > 1, the serial hot path above stays allocation-free
			for i := lo; i < hi; i++ {
				v := &views[i]
				sl[i] = v.Headroom - w.Latency*(v.LatencyMS/w.RefLatencyMS)*sens
			}
		})
	}
	out := (*order)[:0]
	for i := range views {
		if views[i].Healthy {
			out = append(out, i)
		}
	}
	// Deterministic preference order: higher score first, lowest ID on exact
	// ties. The comparator is a strict total order (IDs are unique), so any
	// comparison sort yields the identical sequence — an in-place heapsort
	// keeps the hot path allocation-free without going quadratic on large
	// fleets. It never consults anything the parallel scan could reorder —
	// scores live in per-view slots filled by fixed chunks — so the order is
	// bit-identical at every worker count.
	m := len(out)
	if m <= 16 {
		// Typical fleets are a handful of regions: straight insertion beats
		// the heap's constant factor there and produces the same sequence.
		for i := 1; i < m; i++ {
			for j := i; j > 0 && rankBefore(sl, views, out[j], out[j-1]); j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
	} else {
		for i := m/2 - 1; i >= 0; i-- {
			siftWorstDown(out, i, m, sl, views)
		}
		for i := m - 1; i > 0; i-- {
			out[0], out[i] = out[i], out[0]
			siftWorstDown(out, 0, i, sl, views)
		}
	}
	for i := range out {
		out[i] = views[out[i]].ID
	}
	*order = out
}

// rankBefore reports whether view index a precedes view index b in the
// routing preference order: higher score first, lowest ID on exact ties.
func rankBefore(sl []float64, views []ClusterView, a, b int) bool {
	if sl[a] != sl[b] {
		return sl[a] > sl[b]
	}
	return views[a].ID < views[b].ID
}

// siftWorstDown restores the max-heap property (worst-ranked view at the
// root) for the subtree of out[:n] rooted at root, so the heapsort above
// leaves out in preference order, best first.
func siftWorstDown(out []int, root, n int, sl []float64, views []ClusterView) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && rankBefore(sl, views, out[c], out[c+1]) {
			c++ // right child ranks after the left: it is the worse one
		}
		if rankBefore(sl, views, out[c], out[root]) {
			return // root already ranks after both children
		}
		out[root], out[c] = out[c], out[root]
		root = c
	}
}
