package coordinator

import (
	"testing"

	"cocg/internal/gamesim"
)

// fleetViews fabricates the frozen snapshot a routing decision consumes for
// an n-region fleet: the headrooms are what 256-server clusters at staggered
// load report through their summary feeds.
func fleetViews(n int) []ClusterView {
	views := make([]ClusterView, n)
	for i := range views {
		views[i] = ClusterView{
			ID:           i,
			Healthy:      true,
			LatencyMS:    float64(5 + 37*i%140),
			Headroom:     float64((i*13)%97) / 100,
			LiveSessions: 256 * 3 * (i % 4),
		}
	}
	return views
}

// benchFleetRoute measures one full routing decision — score every cluster,
// produce the deterministic preference order — against an n-region fleet.
// ns/op is the per-session routing latency the coordinator adds before the
// first dial; the custom metric is the decision throughput a single
// goroutine sustains.
func benchFleetRoute(b *testing.B, n, jobs int) {
	views := fleetViews(n)
	spec := gamesim.GenshinImpact()
	var order []int
	var scores []float64
	RankInto(views, spec, RouteWeights{}, jobs, &order, &scores) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankInto(views, spec, RouteWeights{}, jobs, &order, &scores)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

func BenchmarkFleetRoute4(b *testing.B)         { benchFleetRoute(b, 4, 1) }
func BenchmarkFleetRoute64(b *testing.B)        { benchFleetRoute(b, 64, 1) }
func BenchmarkFleetRoute64Jobs4(b *testing.B)   { benchFleetRoute(b, 64, 4) }
func BenchmarkFleetRoute1024Jobs4(b *testing.B) { benchFleetRoute(b, 1024, 4) }
