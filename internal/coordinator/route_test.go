package coordinator

import (
	"math/rand"
	"reflect"
	"testing"

	"cocg/internal/gamesim"
)

// randomViews builds a seeded pseudo-random fleet snapshot: mixed health,
// latencies, and headrooms, with a sprinkle of exact score ties.
func randomViews(seed int64, n int) []ClusterView {
	rng := rand.New(rand.NewSource(seed))
	views := make([]ClusterView, n)
	for i := range views {
		views[i] = ClusterView{
			ID:           i,
			Healthy:      rng.Intn(8) != 0,
			LatencyMS:    float64(rng.Intn(40)) * 5, // coarse grid → occasional ties
			Headroom:     float64(rng.Intn(20)) / 20,
			LiveSessions: rng.Intn(500),
		}
	}
	return views
}

// TestRankInvariantAcrossJobs is the routing determinism gate: for frozen
// fleet snapshots of every size around the chunk boundary, the preference
// order is bit-identical whether the scoring scan runs serially or fanned
// out over 8 goroutines.
func TestRankInvariantAcrossJobs(t *testing.T) {
	specs := []*gamesim.GameSpec{nil, gamesim.Contra(), gamesim.GenshinImpact()}
	for _, n := range []int{1, 7, 8, 9, 64, 200} {
		for seed := int64(0); seed < 20; seed++ {
			views := randomViews(seed, n)
			for _, spec := range specs {
				serial := Rank(views, spec, RouteWeights{}, 1)
				par := Rank(views, spec, RouteWeights{}, 8)
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("n=%d seed=%d: order depends on jobs:\n jobs=1: %v\n jobs=8: %v",
						n, seed, serial, par)
				}
			}
		}
	}
}

// TestRankBreaksTiesByLowestID pins the tie-break rule: identical clusters
// rank in ID order, so a fleet of clones routes predictably.
func TestRankBreaksTiesByLowestID(t *testing.T) {
	views := make([]ClusterView, 9)
	for i := range views {
		views[i] = ClusterView{ID: i, Healthy: true, LatencyMS: 25, Headroom: 0.5}
	}
	for _, jobs := range []int{1, 8} {
		order := Rank(views, nil, RouteWeights{}, jobs)
		for i, id := range order {
			if id != i {
				t.Fatalf("jobs=%d: tied clusters ranked %v, want ascending IDs", jobs, order)
			}
		}
	}
}

// TestRankExcludesUnhealthy verifies down clusters never appear in a routing
// order, even when their score would win.
func TestRankExcludesUnhealthy(t *testing.T) {
	views := []ClusterView{
		{ID: 0, Healthy: false, Headroom: 1.0}, // best score, but down
		{ID: 1, Healthy: true, Headroom: 0.2, LatencyMS: 90},
		{ID: 2, Healthy: true, Headroom: 0.9, LatencyMS: 10},
	}
	order := Rank(views, nil, RouteWeights{}, 1)
	want := []int{2, 1}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	views[1].Healthy, views[2].Healthy = false, false
	if order := Rank(views, nil, RouteWeights{}, 1); len(order) != 0 {
		t.Fatalf("all-down fleet still produced an order: %v", order)
	}
}

// TestRankPrefersHeadroomThenLatency sanity-checks the score's two pulls: an
// idle far cluster beats a saturated near one, and at equal load the nearer
// cluster wins.
func TestRankPrefersHeadroomThenLatency(t *testing.T) {
	views := []ClusterView{
		{ID: 0, Healthy: true, Headroom: 0.05, LatencyMS: 5},  // near but saturated
		{ID: 1, Healthy: true, Headroom: 0.95, LatencyMS: 80}, // far but idle
	}
	if order := Rank(views, nil, RouteWeights{}, 1); order[0] != 1 {
		t.Errorf("saturated near cluster beat idle far one: %v", order)
	}
	equal := []ClusterView{
		{ID: 0, Healthy: true, Headroom: 0.5, LatencyMS: 80},
		{ID: 1, Healthy: true, Headroom: 0.5, LatencyMS: 5},
	}
	if order := Rank(equal, nil, RouteWeights{}, 1); order[0] != 1 {
		t.Errorf("at equal load the farther cluster won: %v", order)
	}
}

// TestLatencySensitivity pins the per-game weighting: fast-paced and
// competitive categories pay more per millisecond, web games less, and the
// result stays inside [0.25, 1.5] with unknown games at exactly 1.
func TestLatencySensitivity(t *testing.T) {
	if got := LatencySensitivity(nil); got != 1 {
		t.Errorf("nil spec sensitivity %.3f, want 1", got)
	}
	for _, spec := range gamesim.AllGames() {
		s := LatencySensitivity(spec)
		if s < 0.25 || s > 1.5 {
			t.Errorf("%s: sensitivity %.3f out of [0.25, 1.5]", spec.Name, s)
		}
	}
}

// TestRankIntoSteadyStateAllocationFree keeps the hot routing path off the
// allocator: ranking into reused storage must not allocate once warmed up.
func TestRankIntoSteadyStateAllocationFree(t *testing.T) {
	views := randomViews(7, 64)
	spec := gamesim.Contra()
	var order []int
	var scores []float64
	RankInto(views, spec, RouteWeights{}, 4, &order, &scores) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		RankInto(views, spec, RouteWeights{}, 1, &order, &scores)
	})
	if allocs > 0 {
		t.Errorf("RankInto allocates %.1f times per call in steady state", allocs)
	}
}
