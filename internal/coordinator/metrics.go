package coordinator

import (
	"encoding/json"
	"fmt"
	"net/http"

	"cocg/internal/streaming"
)

// MetricsHandler returns an http.Handler exposing the fleet's operational
// state: Prometheus-style text at /metrics and a JSON snapshot at /status.
// Everything a single cluster exposes stays on that cluster's own endpoint;
// this one carries what only the coordinator knows — routing decisions,
// failovers, per-cluster health, and the aggregated load view. The metric
// catalogue is documented in docs/FLEET.md.
func (co *Coordinator) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", co.serveMetrics)
	mux.HandleFunc("/status", co.serveStatus)
	return mux
}

// fleetSnapshot is one consistent view of the coordinator and every member.
type fleetSnapshot struct {
	Clusters      []clusterSnapshot `json:"clusters"`
	LiveSessions  int               `json:"live_sessions"` // proxied through this coordinator
	Decisions     uint64            `json:"routing_decisions"`
	Admissions    uint64            `json:"admissions"`
	Rejections    uint64            `json:"rejections"`
	Failovers     uint64            `json:"failovers"`
	MarkedDown    uint64            `json:"marked_down"`
	FleetSessions int               `json:"fleet_sessions"` // summed from cluster summaries
}

// clusterSnapshot is one member's health, load, and traffic view.
type clusterSnapshot struct {
	ID        int     `json:"id"`
	Name      string  `json:"name"`
	Addr      string  `json:"addr"`
	Healthy   bool    `json:"healthy"`
	Probed    bool    `json:"probed"`
	LatencyMS float64 `json:"latency_ms"`

	// SummaryAgeSec is how stale the cluster's load view is: seconds since
	// the last summary landed, -1 when no probe has ever succeeded.
	SummaryAgeSec float64 `json:"summary_age_seconds"`

	Summary streaming.ClusterSummary `json:"summary"`

	Routed        uint64 `json:"routed"`
	Admitted      uint64 `json:"admitted"`
	Rejected      uint64 `json:"rejected"`
	Transport     uint64 `json:"transport_failures"`
	ProbeFailures uint64 `json:"probe_failures"`
}

func (co *Coordinator) snapshot() fleetSnapshot {
	out := fleetSnapshot{
		LiveSessions: co.Sessions(),
		Decisions:    co.decisions.Load(),
		Admissions:   co.admissions.Load(),
		Rejections:   co.rejections.Load(),
		Failovers:    co.failovers.Load(),
		MarkedDown:   co.markedDown.Load(),
	}
	for _, m := range co.members {
		m.mu.Lock()
		cs := clusterSnapshot{
			ID: m.id, Name: m.name, Addr: m.addr,
			Healthy: m.healthy, Probed: m.probed, LatencyMS: m.lat,
			Summary: m.summary,
		}
		m.mu.Unlock()
		cs.Summary.Proto = 0 // negotiation detail, not fleet state
		cs.SummaryAgeSec = m.summaryAge()
		cs.Routed = m.routed.Load()
		cs.Admitted = m.admitted.Load()
		cs.Rejected = m.rejected.Load()
		cs.Transport = m.transport.Load()
		cs.ProbeFailures = m.probeFails.Load()
		out.FleetSessions += cs.Summary.LiveSessions
		out.Clusters = append(out.Clusters, cs)
	}
	return out
}

func (co *Coordinator) serveMetrics(w http.ResponseWriter, r *http.Request) {
	snap := co.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP cocg_coord_routing_decisions_total Sessions routed (one decision each).\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_routing_decisions_total counter\ncocg_coord_routing_decisions_total %d\n", snap.Decisions)
	fmt.Fprintf(w, "# HELP cocg_coord_admissions_total Sessions a cluster accepted.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_admissions_total counter\ncocg_coord_admissions_total %d\n", snap.Admissions)
	fmt.Fprintf(w, "# HELP cocg_coord_rejections_total Sessions no cluster would take.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_rejections_total counter\ncocg_coord_rejections_total %d\n", snap.Rejections)
	fmt.Fprintf(w, "# HELP cocg_coord_failovers_total Admission attempts abandoned for the next-best cluster.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_failovers_total counter\ncocg_coord_failovers_total %d\n", snap.Failovers)
	fmt.Fprintf(w, "# HELP cocg_coord_marked_down_total Cluster health transitions to down.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_marked_down_total counter\ncocg_coord_marked_down_total %d\n", snap.MarkedDown)
	fmt.Fprintf(w, "# HELP cocg_coord_live_sessions Sessions currently proxied through this coordinator.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_live_sessions gauge\ncocg_coord_live_sessions %d\n", snap.LiveSessions)
	fmt.Fprintf(w, "# HELP cocg_coord_fleet_sessions Connected sessions across the fleet (from cluster summaries).\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_fleet_sessions gauge\ncocg_coord_fleet_sessions %d\n", snap.FleetSessions)

	fmt.Fprintf(w, "# HELP cocg_coord_cluster_healthy Cluster health as seen by the prober (1 healthy, 0 down).\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_healthy gauge\n")
	for _, c := range snap.Clusters {
		v := 0
		if c.Healthy {
			v = 1
		}
		fmt.Fprintf(w, "cocg_coord_cluster_healthy{cluster=%q} %d\n", c.Name, v)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_headroom Predicted free capacity fraction from the last summary.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_headroom gauge\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_headroom{cluster=%q} %.4f\n", c.Name, c.Summary.Headroom)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_sessions Connected sessions per cluster from the last summary.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_sessions gauge\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_sessions{cluster=%q} %d\n", c.Name, c.Summary.LiveSessions)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_placements_total Placements per cluster from the last summary.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_placements_total counter\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_placements_total{cluster=%q} %d\n", c.Name, c.Summary.Placements)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_routed_total Sessions routed to each cluster (dial attempts).\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_routed_total counter\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_routed_total{cluster=%q} %d\n", c.Name, c.Routed)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_admitted_total Sessions each cluster accepted.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_admitted_total counter\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_admitted_total{cluster=%q} %d\n", c.Name, c.Admitted)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_rejected_total Sessions each cluster declined at admission.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_rejected_total counter\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_rejected_total{cluster=%q} %d\n", c.Name, c.Rejected)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_transport_failures_total Session attempts lost to dial/transport errors per cluster.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_transport_failures_total counter\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_transport_failures_total{cluster=%q} %d\n", c.Name, c.Transport)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_summary_age_seconds Seconds since the last load summary landed (-1: never).\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_summary_age_seconds gauge\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_summary_age_seconds{cluster=%q} %.3f\n", c.Name, c.SummaryAgeSec)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_probe_failures_total Summary probes that errored per cluster.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_probe_failures_total counter\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_probe_failures_total{cluster=%q} %d\n", c.Name, c.ProbeFailures)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_idle_servers Idle (zero-session, non-draining) servers per cluster from the last summary.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_idle_servers gauge\n")
	for _, c := range snap.Clusters {
		fmt.Fprintf(w, "cocg_coord_cluster_idle_servers{cluster=%q} %d\n", c.Name, c.Summary.IdleServers)
	}
	fmt.Fprintf(w, "# HELP cocg_coord_cluster_game_demand Predicted demand per game over the forecast horizon, in servers' worth of capacity.\n")
	fmt.Fprintf(w, "# TYPE cocg_coord_cluster_game_demand gauge\n")
	for _, c := range snap.Clusters {
		for i, g := range c.Summary.Games {
			if i < len(c.Summary.GameDemand) {
				fmt.Fprintf(w, "cocg_coord_cluster_game_demand{cluster=%q,game=%q} %.4f\n", c.Name, g, c.Summary.GameDemand[i])
			}
		}
	}
}

func (co *Coordinator) serveStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(co.snapshot()) //cocg:lint-ignore droppederr client disconnect mid-response is benign and headers are already sent
}
