// Package cluster implements the frame-clustering algorithms of Section IV-A2
// and the K-sweep of Fig. 14: K-means with k-means++ seeding (the method the
// paper adopts) and a graph-partitioning baseline it compares against.
//
// Concurrency: KMeans parallelizes the Lloyd assignment step, the centroid
// update, and the SSE reduction across fixed-size frame chunks
// (Config.Workers), and Sweep runs its per-K clusterings concurrently.
// Decomposition and merge order are independent of the worker count, so a
// run with Workers=1 and Workers=64 produces bit-identical results for the
// same seed. The k-means++ seeding pass and the restart loop stay serial:
// they consume one RNG stream whose draw order defines the result.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cocg/internal/parallel"
	"cocg/internal/resources"
)

// ErrNoPoints is returned when clustering is attempted on an empty point set.
var ErrNoPoints = errors.New("cluster: no points")

// Result is the outcome of one clustering run.
type Result struct {
	// Centroids holds the K cluster centers, sorted by ascending dominant
	// component so cluster 0 is always the "cheapest" (typically the loading
	// cluster) and IDs are stable across runs.
	Centroids []resources.Vector
	// Assign maps each input point index to its cluster ID.
	Assign []int
	// SSE is the sum of squared distances from each point to its centroid,
	// the quantity plotted on the Y axis of Fig. 14.
	SSE float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Sizes returns how many points landed in each cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K())
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// Nearest returns the ID of the centroid closest to p; the profiler uses it
// to label frames that arrive after the offline clustering pass.
func (r *Result) Nearest(p resources.Vector) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range r.Centroids {
		if d := p.Dist2(c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Config controls a K-means run.
type Config struct {
	K        int   // number of clusters, >= 1
	MaxIter  int   // Lloyd iteration cap; defaults to 100
	Seed     int64 // RNG seed for k-means++ seeding
	Restarts int   // independent restarts, best SSE wins; defaults to 4
	// Workers bounds the goroutines used for the assignment/update/SSE
	// steps; <= 0 means GOMAXPROCS. Results do not depend on it.
	Workers int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxIter <= 0 {
		out.MaxIter = 100
	}
	if out.Restarts <= 0 {
		out.Restarts = 4
	}
	return out
}

// kmScratch holds every buffer the restart and Lloyd-iteration loops reuse.
// One scratch is allocated per KMeans call; restarts and iterations then run
// allocation-free, which matters because the profiler re-clusters every
// game's frame cloud and the Fig. 14 sweep runs K-means once per candidate K.
// Buffer reuse never changes results: each consumer fully reinitializes the
// region it reads (assign is reset per restart, per-chunk partials are zeroed
// per iteration, d2 is overwritten by the first seeding pass).
type kmScratch struct {
	assign       []int                // current restart's point -> cluster
	chunkChanged []bool               // per-chunk assignment-change flags
	chunkSums    [][]resources.Vector // per-chunk partial centroid sums
	chunkCounts  [][]int              // per-chunk partial cluster sizes
	mergeSums    []resources.Vector   // chunk-order merge of chunkSums
	mergeCounts  []int                // chunk-order merge of chunkCounts
	d2           []float64            // k-means++ D² weights
	centroids    []resources.Vector   // current restart's working centroids
	ssePartial   []float64            // per-chunk SSE partials
	// bestAssign/bestCentroids snapshot the best restart so far; they are
	// the only buffers that outlive the call, as the returned Result.
	bestAssign    []int
	bestCentroids []resources.Vector
}

func newKMScratch(n, k int) *kmScratch {
	nChunks := parallel.NumChunks(n)
	s := &kmScratch{
		assign:        make([]int, n),
		chunkChanged:  make([]bool, nChunks),
		chunkSums:     make([][]resources.Vector, nChunks),
		chunkCounts:   make([][]int, nChunks),
		mergeSums:     make([]resources.Vector, k),
		mergeCounts:   make([]int, k),
		d2:            make([]float64, n),
		centroids:     make([]resources.Vector, 0, k),
		ssePartial:    make([]float64, nChunks),
		bestAssign:    make([]int, n),
		bestCentroids: make([]resources.Vector, k),
	}
	for c := range s.chunkSums {
		s.chunkSums[c] = make([]resources.Vector, k)
		s.chunkCounts[c] = make([]int, k)
	}
	return s
}

// KMeans clusters points into cfg.K clusters and returns the best result over
// cfg.Restarts independent k-means++ initializations.
func KMeans(points []resources.Vector, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: invalid K %d", cfg.K)
	}
	c := cfg.withDefaults()
	k := c.K
	if k > len(points) {
		k = len(points)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	scratch := newKMScratch(len(points), k)
	best := &Result{}
	have := false
	for r := 0; r < c.Restarts; r++ {
		sse, iterations := lloyd(points, k, c.MaxIter, c.Workers, rng, scratch)
		if !have || sse < best.SSE {
			have = true
			best.SSE = sse
			best.Iterations = iterations
			copy(scratch.bestAssign, scratch.assign)
			copy(scratch.bestCentroids, scratch.centroids)
		}
	}
	best.Assign = scratch.bestAssign
	best.Centroids = scratch.bestCentroids
	sortCentroids(best)
	return best, nil
}

// lloyd runs one k-means++ initialization followed by Lloyd iterations,
// leaving the final assignment and centroids in the scratch. The assignment
// and centroid-update steps fan out over fixed-size point chunks; per-chunk
// partial sums are merged in chunk order, so the floating-point result is
// identical at every worker count.
func lloyd(points []resources.Vector, k, maxIter, workers int, rng *rand.Rand, s *kmScratch) (sse float64, iterations int) {
	centroids := seedPlusPlus(points, k, rng, s)
	assign := s.assign
	for i := range assign {
		assign[i] = -1
	}
	n := len(points)
	nChunks := parallel.NumChunks(n)
	// The chunk bodies are built once per restart, not once per iteration:
	// closures handed to parallel.For escape to the heap, so constructing
	// them inside the Lloyd loop would allocate on every iteration. The
	// bounds come from parallel.ChunkBounds, so the decomposition (and
	// therefore the merge order) is exactly what ForChunks would produce.
	assignBody := func(chunk int) {
		lo, hi := parallel.ChunkBounds(chunk, n)
		changed := false
		for i := lo; i < hi; i++ {
			p := points[i]
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := p.Dist2(cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		s.chunkChanged[chunk] = changed
	}
	updateBody := func(chunk int) {
		lo, hi := parallel.ChunkBounds(chunk, n)
		sums := s.chunkSums[chunk]
		counts := s.chunkCounts[chunk]
		for c := range sums {
			sums[c] = resources.Vector{}
			counts[c] = 0
		}
		for i := lo; i < hi; i++ {
			sums[assign[i]] = sums[assign[i]].Add(points[i])
			counts[assign[i]]++
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1
		parallel.For(workers, nChunks, assignBody)
		changed := false
		for _, c := range s.chunkChanged {
			changed = changed || c
		}
		if !changed {
			break
		}
		// Recompute centroids; an emptied cluster keeps its old center,
		// which is the standard fix and keeps K stable.
		parallel.For(workers, nChunks, updateBody)
		sums := s.mergeSums
		counts := s.mergeCounts
		for c := 0; c < k; c++ {
			sums[c] = resources.Vector{}
			counts[c] = 0
		}
		for chunk := 0; chunk < nChunks; chunk++ {
			for c := 0; c < k; c++ {
				sums[c] = sums[c].Add(s.chunkSums[chunk][c])
				counts[c] += s.chunkCounts[chunk][c]
			}
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c].Scale(1 / float64(counts[c]))
			}
		}
	}
	return sseInto(points, centroids, assign, workers, s.ssePartial), iterations
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting,
// reusing the scratch's centroid and weight buffers. The RNG draw sequence
// is identical to a fresh-buffer run.
func seedPlusPlus(points []resources.Vector, k int, rng *rand.Rand, s *kmScratch) []resources.Vector {
	centroids := s.centroids[:0]
	centroids = append(centroids, points[rng.Intn(len(points))])
	d2 := s.d2
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := p.Dist2(last)
			// The first pass overwrites d2 unconditionally, so stale weights
			// from a previous restart never leak in.
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a center; duplicate one.
			centroids = append(centroids, points[rng.Intn(len(points))])
			continue
		}
		target := rng.Float64() * total
		var acc float64
		chosen := len(points) - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, points[chosen])
	}
	s.centroids = centroids
	return centroids
}

// sseInto reduces the sum of squared distances over fixed-size chunks into
// the provided partials buffer, merging in chunk order so the result is
// worker-count independent.
func sseInto(points, centroids []resources.Vector, assign []int, workers int, partial []float64) float64 {
	parallel.ForChunks(workers, len(points), func(chunk, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += points[i].Dist2(centroids[assign[i]])
		}
		partial[chunk] = s
	})
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// sortCentroids renumbers clusters by ascending dominant resource so IDs are
// deterministic: cluster 0 is the low-consumption (loading-like) cluster.
func sortCentroids(r *Result) {
	k := len(r.Centroids)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := r.Centroids[order[a]], r.Centroids[order[b]]
		if da, db := ca.Dominant(), cb.Dominant(); da != db {
			return da < db
		}
		return ca.L2() < cb.L2()
	})
	remap := make([]int, k)
	newCents := make([]resources.Vector, k)
	for newID, oldID := range order {
		remap[oldID] = newID
		newCents[newID] = r.Centroids[oldID]
	}
	r.Centroids = newCents
	for i, a := range r.Assign {
		r.Assign[i] = remap[a]
	}
}

// SweepPoint is one (K, SSE) sample of Fig. 14.
type SweepPoint struct {
	K   int
	SSE float64
}

// Sweep runs K-means for every K in [1, maxK] and returns the SSE curve of
// Fig. 14. The same seed is reused so curves are reproducible. The per-K
// runs are independent (each seeds its own RNG), so they execute
// concurrently on up to workers goroutines; <= 0 means GOMAXPROCS.
func Sweep(points []resources.Vector, maxK int, seed int64, workers int) ([]SweepPoint, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	out := make([]SweepPoint, maxK)
	errs := make([]error, maxK)
	parallel.For(workers, maxK, func(i int) {
		k := i + 1
		// The sweep itself is the fan-out axis; each inner run stays
		// single-threaded so nesting cannot oversubscribe the machine.
		res, err := KMeans(points, Config{K: k, Seed: seed, Workers: 1})
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = SweepPoint{K: k, SSE: res.SSE}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Elbow picks the inflection point of an SSE curve: the K after which the
// marginal SSE reduction falls below frac (e.g. 0.1 = 10 %) of the total
// drop. This encodes the paper's "obvious inflection points" reading of
// Fig. 14.
func Elbow(curve []SweepPoint, frac float64) int {
	if len(curve) == 0 {
		return 0
	}
	if len(curve) == 1 {
		return curve[0].K
	}
	total := curve[0].SSE - curve[len(curve)-1].SSE
	if total <= 0 {
		return curve[0].K
	}
	for i := 1; i < len(curve); i++ {
		drop := curve[i-1].SSE - curve[i].SSE
		if drop < frac*total {
			return curve[i-1].K
		}
	}
	return curve[len(curve)-1].K
}
