package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cocg/internal/resources"
)

// blob generates n points around center with the given spread.
func blob(r *rand.Rand, center resources.Vector, spread float64, n int) []resources.Vector {
	out := make([]resources.Vector, n)
	for i := range out {
		var v resources.Vector
		for d := range v {
			v[d] = center[d] + r.NormFloat64()*spread
		}
		out[i] = v.Clamp(0, 100)
	}
	return out
}

func threeBlobs(seed int64) []resources.Vector {
	r := rand.New(rand.NewSource(seed))
	var pts []resources.Vector
	pts = append(pts, blob(r, resources.New(10, 5, 5, 20), 1.5, 40)...)
	pts = append(pts, blob(r, resources.New(50, 60, 40, 50), 1.5, 40)...)
	pts = append(pts, blob(r, resources.New(90, 90, 80, 80), 1.5, 40)...)
	return pts
}

func TestKMeansRecoversBlobs(t *testing.T) {
	pts := threeBlobs(1)
	res, err := KMeans(pts, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d", res.K())
	}
	sizes := res.Sizes()
	for c, s := range sizes {
		if s != 40 {
			t.Errorf("cluster %d size = %d, want 40 (sizes %v)", c, s, sizes)
		}
	}
	// Centroids are sorted by dominant component: loading-like cluster first.
	if !(res.Centroids[0].Dominant() < res.Centroids[1].Dominant()) ||
		!(res.Centroids[1].Dominant() < res.Centroids[2].Dominant()) {
		t.Errorf("centroids not sorted: %v", res.Centroids)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	pts := threeBlobs(2)
	a, err := KMeans(pts, Config{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, Config{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.SSE != b.SSE {
		t.Errorf("same seed, different SSE: %v vs %v", a.SSE, b.SSE)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed, different assignment at %d", i)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 2}); err != ErrNoPoints {
		t.Errorf("empty points err = %v", err)
	}
	if _, err := KMeans(threeBlobs(3), Config{K: 0}); err == nil {
		t.Error("K=0 did not error")
	}
}

func TestKMeansKLargerThanPoints(t *testing.T) {
	pts := []resources.Vector{resources.New(1, 1, 1, 1), resources.New(9, 9, 9, 9)}
	res, err := KMeans(pts, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Errorf("K clamped to %d, want 2", res.K())
	}
	if res.SSE != 0 {
		t.Errorf("SSE = %v, want 0 when every point has its own centroid", res.SSE)
	}
}

func TestNearest(t *testing.T) {
	pts := threeBlobs(4)
	res, err := KMeans(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got := res.Nearest(p); got != res.Assign[i] {
			t.Fatalf("Nearest(point %d) = %d, assign = %d", i, got, res.Assign[i])
		}
	}
}

func TestSweepMonotonicSSE(t *testing.T) {
	pts := threeBlobs(5)
	curve, err := Sweep(pts, 8, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 8 {
		t.Fatalf("curve len = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		// With restarts the curve should be (weakly) decreasing; allow tiny
		// numerical slack.
		if curve[i].SSE > curve[i-1].SSE*1.05+1e-9 {
			t.Errorf("SSE increased at K=%d: %v -> %v", curve[i].K, curve[i-1].SSE, curve[i].SSE)
		}
	}
}

func TestElbowFindsTrueK(t *testing.T) {
	pts := threeBlobs(6)
	curve, err := Sweep(pts, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k := Elbow(curve, 0.05); k != 3 {
		t.Errorf("Elbow = %d, want 3", k)
	}
}

func TestElbowEdgeCases(t *testing.T) {
	if Elbow(nil, 0.1) != 0 {
		t.Error("Elbow(nil) != 0")
	}
	if Elbow([]SweepPoint{{K: 1, SSE: 5}}, 0.1) != 1 {
		t.Error("Elbow single point != its K")
	}
	flat := []SweepPoint{{1, 5}, {2, 5}, {3, 5}}
	if Elbow(flat, 0.1) != 1 {
		t.Error("flat curve elbow != first K")
	}
}

func TestGraphPartitionSeparatesBlobs(t *testing.T) {
	pts := threeBlobs(7)
	res, err := GraphPartition(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Errorf("GraphPartition K = %d, want 3", res.K())
	}
}

func TestGraphPartitionEmpty(t *testing.T) {
	if _, err := GraphPartition(nil); err != ErrNoPoints {
		t.Errorf("err = %v", err)
	}
}

func TestGraphPartitionSinglePoint(t *testing.T) {
	res, err := GraphPartition([]resources.Vector{resources.New(1, 2, 3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 || res.SSE != 0 {
		t.Errorf("single point: K=%d SSE=%v", res.K(), res.SSE)
	}
}

func TestPropertyAssignmentsInRange(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw%6)
		pts := threeBlobs(seed)
		res, err := KMeans(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= res.K() {
				return false
			}
		}
		return len(res.Assign) == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertySSENonNegativeAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		pts := threeBlobs(seed)
		res, err := KMeans(pts, Config{K: 3, Seed: seed})
		if err != nil {
			return false
		}
		if res.SSE < 0 {
			return false
		}
		// Recompute SSE from assignments and compare.
		var s float64
		for i, p := range pts {
			s += p.Dist2(res.Centroids[res.Assign[i]])
		}
		return math.Abs(s-res.SSE) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEachPointNearestOwnCentroid(t *testing.T) {
	// After convergence every point must be assigned to its nearest centroid.
	f := func(seed int64) bool {
		pts := threeBlobs(seed)
		res, err := KMeans(pts, Config{K: 4, Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			if res.Nearest(p) != res.Assign[i] {
				// Ties can break either way; accept equal distances.
				if math.Abs(p.Dist2(res.Centroids[res.Nearest(p)])-p.Dist2(res.Centroids[res.Assign[i]])) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestKMeansWorkerCountInvariant(t *testing.T) {
	// The parallel decomposition must not leak into results: any worker
	// count produces bit-identical centroids, assignments, and SSE.
	pts := threeBlobs(8)
	ref, err := KMeans(pts, Config{K: 3, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := KMeans(pts, Config{K: 3, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.SSE != ref.SSE {
			t.Errorf("workers=%d: SSE %v != serial %v", workers, got.SSE, ref.SSE)
		}
		if got.Iterations != ref.Iterations {
			t.Errorf("workers=%d: iterations %d != serial %d", workers, got.Iterations, ref.Iterations)
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment diverged at point %d", workers, i)
			}
		}
		for c := range ref.Centroids {
			if got.Centroids[c] != ref.Centroids[c] {
				t.Fatalf("workers=%d: centroid %d = %v, serial %v", workers, c, got.Centroids[c], ref.Centroids[c])
			}
		}
	}
}

func TestSweepWorkerCountInvariant(t *testing.T) {
	pts := threeBlobs(9)
	ref, err := Sweep(pts, 6, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweep(pts, 6, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Errorf("sweep point %d: %v != %v", i, got[i], ref[i])
		}
	}
}
