package cluster

import (
	"math"
	"sort"

	"cocg/internal/parallel"
	"cocg/internal/resources"
)

// GraphPartition is the clustering baseline the paper compares K-means
// against in Section V-D1: a similarity-graph method that does not require
// the number of clusters up front. Points become vertices, edges connect
// points closer than an automatically chosen threshold, and connected
// components become clusters.
//
// The paper reports that K-means "demonstrated significantly higher accuracy"
// than this method; the ablation benchmark reproduces that comparison.
func GraphPartition(points []resources.Vector) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	n := len(points)
	threshold := autoThreshold(points)

	// Union-find over the epsilon graph.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].Dist(points[j]) <= threshold {
				union(i, j)
			}
		}
	}

	// Collapse components into dense cluster IDs.
	ids := map[int]int{}
	assign := make([]int, n)
	for i := range points {
		root := find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		assign[i] = id
	}
	k := len(ids)
	sums := make([]resources.Vector, k)
	counts := make([]int, k)
	for i, p := range points {
		sums[assign[i]] = sums[assign[i]].Add(p)
		counts[assign[i]]++
	}
	centroids := make([]resources.Vector, k)
	for c := range centroids {
		centroids[c] = sums[c].Scale(1 / float64(counts[c]))
	}
	res := &Result{Centroids: centroids, Assign: assign, Iterations: 1}
	res.SSE = sseInto(points, centroids, assign, 1, make([]float64, parallel.NumChunks(len(points))))
	sortCentroids(res)
	return res, nil
}

// autoThreshold picks the epsilon for the similarity graph as the largest
// jump in the sorted nearest-neighbor distance distribution — the standard
// heuristic for threshold selection when K is unknown.
func autoThreshold(points []resources.Vector) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	nn := make([]float64, n)
	for i := range points {
		best := math.Inf(1)
		for j := range points {
			if i == j {
				continue
			}
			if d := points[i].Dist(points[j]); d < best {
				best = d
			}
		}
		nn[i] = best
	}
	sort.Float64s(nn)
	// Use a multiple of the median nearest-neighbor distance so that points
	// within a dense cluster connect but separated clusters do not.
	med := nn[n/2]
	if med == 0 {
		// Degenerate: many duplicate points; fall back to the mean.
		var s float64
		for _, d := range nn {
			s += d
		}
		med = s / float64(n)
	}
	return 3 * med
}
