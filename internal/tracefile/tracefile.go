// Package tracefile persists game traces as JSON-lines, so profiling data
// can cross process boundaries: record on one machine (or export from a real
// measurement pipeline in the same shape), build profiles and train
// predictors elsewhere. The first line is a header; every following line is
// one 5-second frame.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
)

// header is the first JSON line of a trace file.
type header struct {
	Format  string `json:"format"`
	Game    string `json:"game"`
	Script  int    `json:"script"`
	Player  int64  `json:"player"`
	Cohort  int64  `json:"cohort"`
	Habit   int64  `json:"habit"`
	Session int64  `json:"session"`
}

// frameLine is one frame record.
type frameLine struct {
	Demand  [4]float64 `json:"d"`
	Stage   int        `json:"s"`
	Cluster int        `json:"c"`
	Loading bool       `json:"l,omitempty"`
}

// formatTag identifies the file format.
const formatTag = "cocg-trace-v1"

// Write emits one trace as JSON lines.
func Write(tr *gamesim.Trace, w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{
		Format: formatTag, Game: tr.Game, Script: tr.Script,
		Player: tr.Player, Cohort: tr.Cohort, Habit: tr.Habit, Session: tr.Session,
	}); err != nil {
		return err
	}
	for _, f := range tr.Frames {
		if err := enc.Encode(frameLine{
			Demand: f.Demand, Stage: f.StageType, Cluster: f.Cluster, Loading: f.Loading,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses one trace. Per-second samples are not stored, so the loaded
// trace carries frames and visits only — exactly what the profiler and
// dataset extraction consume.
func Read(r io.Reader) (*gamesim.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("tracefile: empty input")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("tracefile: bad header: %w", err)
	}
	if h.Format != formatTag {
		return nil, fmt.Errorf("tracefile: format %q, want %q", h.Format, formatTag)
	}
	tr := &gamesim.Trace{
		Game: h.Game, Script: h.Script, Player: h.Player,
		Cohort: h.Cohort, Habit: h.Habit, Session: h.Session,
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f frameLine
		if err := json.Unmarshal(line, &f); err != nil {
			return nil, fmt.Errorf("tracefile: frame %d: %w", len(tr.Frames), err)
		}
		tr.Frames = append(tr.Frames, gamesim.FrameSample{
			Frame:     len(tr.Frames),
			Demand:    resources.Vector(f.Demand),
			StageType: f.Stage,
			Cluster:   f.Cluster,
			Loading:   f.Loading,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Frames) == 0 {
		return nil, fmt.Errorf("tracefile: trace has no frames")
	}
	tr.Visits = rebuildVisits(tr.Frames)
	return tr, nil
}

// rebuildVisits re-derives the stage visits from frame labels.
func rebuildVisits(frames []gamesim.FrameSample) []gamesim.StageVisit {
	var visits []gamesim.StageVisit
	for i := 0; i < len(frames); {
		j := i
		for j < len(frames) && frames[j].StageType == frames[i].StageType &&
			frames[j].Loading == frames[i].Loading {
			j++
		}
		visits = append(visits, gamesim.StageVisit{
			Type: frames[i].StageType, StartFrame: i, EndFrame: j, Loading: frames[i].Loading,
		})
		i = j
	}
	return visits
}

// SaveAll writes a corpus, one file per trace, into dir as
// <game>-<index>.trace (game name sanitized).
func SaveAll(traces []*gamesim.Trace, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for i, tr := range traces {
		path := fmt.Sprintf("%s/%s-%04d.trace", dir, safe(tr.Game), i)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := Write(tr, f); err != nil {
			_ = f.Close() // write error dominates
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// LoadAll reads every path into a corpus.
func LoadAll(paths []string) ([]*gamesim.Trace, error) {
	var out []*gamesim.Trace
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		tr, err := Read(f)
		_ = f.Close() // read-only file; a Read error dominates
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, tr)
	}
	return out, nil
}

func safe(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
