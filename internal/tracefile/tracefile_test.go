package tracefile

import (
	"bytes"
	"strings"
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/profiler"
)

func TestRoundTrip(t *testing.T) {
	tr, err := gamesim.Record(gamesim.GenshinImpact(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(tr, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Game != tr.Game || back.Script != tr.Script || back.Habit != tr.Habit {
		t.Error("identity changed")
	}
	if len(back.Frames) != len(tr.Frames) {
		t.Fatalf("frames %d vs %d", len(back.Frames), len(tr.Frames))
	}
	for i := range back.Frames {
		if back.Frames[i].Demand != tr.Frames[i].Demand ||
			back.Frames[i].StageType != tr.Frames[i].StageType ||
			back.Frames[i].Loading != tr.Frames[i].Loading {
			t.Fatalf("frame %d changed", i)
		}
	}
	if len(back.Visits) != len(tr.Visits) {
		t.Errorf("visits %d vs %d", len(back.Visits), len(tr.Visits))
	}
}

func TestLoadedTracesBuildProfiles(t *testing.T) {
	// The full cross-process story: record, save to disk, load elsewhere,
	// profile.
	spec := gamesim.Contra()
	corpus, err := gamesim.RecordCorpus(spec, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := SaveAll(corpus, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(corpus) {
		t.Fatalf("paths = %d", len(paths))
	}
	loaded, err := LoadAll(paths)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.Build(loaded, profiler.Config{K: len(spec.Clusters), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStageTypes() != 2 {
		t.Errorf("catalog from loaded traces = %d types", p.NumStageTypes())
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "not json\n",
		"wrong format": `{"format":"other","game":"X"}` + "\n",
		"no frames":    `{"format":"cocg-trace-v1","game":"X"}` + "\n",
		"bad frame":    `{"format":"cocg-trace-v1","game":"X"}` + "\nnope\n",
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadAllMissingFile(t *testing.T) {
	if _, err := LoadAll([]string{"/nonexistent/file.trace"}); err == nil {
		t.Error("missing file loaded")
	}
}

func TestSafeNames(t *testing.T) {
	if safe("Genshin Impact") != "Genshin_Impact" {
		t.Errorf("safe = %q", safe("Genshin Impact"))
	}
}
