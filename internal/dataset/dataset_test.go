package dataset

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

func corpusAndProfile(t *testing.T, spec *gamesim.GameSpec, players, sessions int) ([]*gamesim.Trace, *profiler.Profile) {
	t.Helper()
	corpus, err := gamesim.RecordPlayerCorpus(spec, gamesim.CorpusConfig{
		Players: players, SessionsPerPlayer: sessions, Seed: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.Build(corpus, profiler.Config{K: len(spec.Clusters), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, p
}

func TestStrategyFor(t *testing.T) {
	cases := map[gamesim.Category]Strategy{
		gamesim.Web: Global, gamesim.Mobile: PerPlayer,
		gamesim.Console: WholeProcess, gamesim.MMORPG: Cohort,
	}
	for cat, want := range cases {
		if got := StrategyFor(cat); got != want {
			t.Errorf("StrategyFor(%v) = %v, want %v", cat, got, want)
		}
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Global, PerPlayer, WholeProcess, Cohort} {
		if s.String() == "strategy(?)" {
			t.Errorf("strategy %d unnamed", s)
		}
	}
}

func TestFeaturesShapeAndPadding(t *testing.T) {
	hist := []StageObs{{ID: 2, Frames: 10, Mean: resources.New(1, 2, 3, 4)}}
	f := Features(hist, 0)
	if len(f) != NumFeatures {
		t.Fatalf("feature length = %d, want %d", len(f), NumFeatures)
	}
	// With a single stage, all history slots are -1 padding.
	for i := 0; i < HistoryLen; i++ {
		if f[i] != -1 {
			t.Errorf("history slot %d = %v, want -1", i, f[i])
		}
	}
	if f[HistoryLen] != 2 || f[HistoryLen+1] != 10 {
		t.Errorf("current stage features wrong: %v", f)
	}
	if f[len(f)-1] != 0 {
		t.Errorf("position feature = %v", f[len(f)-1])
	}
}

func TestFeaturesHistoryOrder(t *testing.T) {
	hist := []StageObs{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}, {ID: 5}}
	f := Features(hist, 4)
	// History slots hold stages 2, 3, 4 (oldest first), current is 5.
	if f[0] != 2 || f[1] != 3 || f[2] != 4 || f[3] != 5 {
		t.Errorf("history features = %v", f[:4])
	}
	if f[len(f)-1] != 4 {
		t.Errorf("position = %v", f[len(f)-1])
	}
}

func TestFromTraceProducesTransitions(t *testing.T) {
	spec := gamesim.GenshinImpact()
	corpus, p := corpusAndProfile(t, spec, 4, 2)
	e := &Extractor{P: p}
	total := 0
	for _, tr := range corpus {
		ts := e.FromTrace(tr)
		total += len(ts)
		for _, tt := range ts {
			if len(tt.Features) != NumFeatures {
				t.Fatalf("feature length %d", len(tt.Features))
			}
			if tt.Label < 0 || tt.Label >= p.NumStageTypes() {
				t.Fatalf("label %d out of catalog range", tt.Label)
			}
			if tt.Player != tr.Player || tt.Cohort != tr.Cohort {
				t.Fatal("provenance not propagated")
			}
		}
	}
	if total == 0 {
		t.Fatal("no transitions extracted")
	}
}

func TestFromChainCrossesSessionBoundaries(t *testing.T) {
	spec := gamesim.DevilMayCry()
	corpus, p := corpusAndProfile(t, spec, 2, 3)
	e := &Extractor{P: p}
	// Transitions per session, summed.
	var perSession int
	byPlayer := map[int64][]*gamesim.Trace{}
	for _, tr := range corpus {
		perSession += len(e.FromTrace(tr))
		byPlayer[tr.Player] = append(byPlayer[tr.Player], tr)
	}
	var chained int
	for _, ts := range byPlayer {
		chained += len(e.FromChain(ts))
	}
	// Chaining adds one cross-boundary transition per session joint.
	if chained <= perSession {
		t.Errorf("chained transitions %d not more than per-session %d", chained, perSession)
	}
	if e.FromChain(nil) != nil {
		t.Error("FromChain(nil) should be nil")
	}
}

func TestSelectGroupCounts(t *testing.T) {
	spec := gamesim.DOTA2() // MMORPG: cohorts of 4
	corpus, p := corpusAndProfile(t, spec, 8, 2)
	e := &Extractor{P: p}

	if g := Select(Global, e, corpus); len(g) != 1 {
		t.Errorf("Global groups = %d", len(g))
	}
	if g := Select(WholeProcess, e, corpus); len(g) != 1 {
		t.Errorf("WholeProcess groups = %d", len(g))
	}
	if g := Select(PerPlayer, e, corpus); len(g) != 8 {
		t.Errorf("PerPlayer groups = %d, want 8", len(g))
	}
	if g := Select(Cohort, e, corpus); len(g) != 2 {
		t.Errorf("Cohort groups = %d, want 2", len(g))
	}
}

func TestSelectDeterministicOrder(t *testing.T) {
	spec := gamesim.GenshinImpact()
	corpus, p := corpusAndProfile(t, spec, 5, 2)
	e := &Extractor{P: p}
	a := Select(PerPlayer, e, corpus)
	b := Select(PerPlayer, e, corpus)
	if len(a) != len(b) {
		t.Fatal("group counts differ")
	}
	for i := range a {
		if len(a[i].Transitions) != len(b[i].Transitions) {
			t.Fatalf("group %d sizes differ", i)
		}
	}
}

func TestToDataset(t *testing.T) {
	spec := gamesim.Contra()
	corpus, p := corpusAndProfile(t, spec, 3, 2)
	e := &Extractor{P: p}
	groups := Select(Global, e, corpus)
	ds, err := ToDataset(groups[0].Transitions, p.NumStageTypes())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures != NumFeatures {
		t.Errorf("NumFeatures = %d", ds.NumFeatures)
	}
	if ds.NumClasses < p.NumStageTypes() {
		t.Errorf("NumClasses = %d < catalog %d", ds.NumClasses, p.NumStageTypes())
	}
	if _, err := ToDataset(nil, 3); err == nil {
		t.Error("empty transitions did not error")
	}
}

func TestEndToEndLearnability(t *testing.T) {
	// A decision tree trained on extracted transitions must beat the
	// majority-class baseline on a predictable (console) game.
	spec := gamesim.DevilMayCry()
	corpus, p := corpusAndProfile(t, spec, 6, 2)
	e := &Extractor{P: p}
	groups := Select(WholeProcess, e, corpus)
	ds, err := ToDataset(groups[0].Transitions, p.NumStageTypes())
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.75, 11)
	m := mlmodels.NewDecisionTree(mlmodels.TreeConfig{Seed: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := mlmodels.Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	// Majority baseline.
	counts := map[int]int{}
	for _, s := range ds.Samples {
		counts[s.Label]++
	}
	maj := 0
	for _, n := range counts {
		if n > maj {
			maj = n
		}
	}
	base := float64(maj) / float64(ds.Len())
	if acc <= base {
		t.Errorf("DTC accuracy %.3f not above majority baseline %.3f", acc, base)
	}
}
