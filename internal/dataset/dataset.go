// Package dataset turns profiled game traces into next-stage prediction
// datasets, implementing the category-aware training-set selection of
// Section IV-B1: web games pool every player's records, mobile games train
// per player, console games chain each player's sessions into whole
// playthroughs, and MMORPG/MOBA games pack players who queue together.
package dataset

import (
	"sort"

	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

// Strategy is a training-set selection policy from Section IV-B1.
type Strategy int

// The four selection strategies, one per Fig. 7 quadrant.
const (
	// Global pools all players' records (web games).
	Global Strategy = iota
	// PerPlayer builds one training set per player (mobile games).
	PerPlayer
	// WholeProcess chains each player's sessions into one long playthrough
	// before extracting transitions (console games).
	WholeProcess
	// Cohort packs the records of players who log in together (MMORPG).
	Cohort
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Global:
		return "global"
	case PerPlayer:
		return "per-player"
	case WholeProcess:
		return "whole-process"
	case Cohort:
		return "cohort"
	default:
		return "strategy(?)"
	}
}

// StrategyFor maps a game category to its paper-prescribed strategy.
func StrategyFor(c gamesim.Category) Strategy {
	switch c {
	case gamesim.Web:
		return Global
	case gamesim.Mobile:
		return PerPlayer
	case gamesim.Console:
		return WholeProcess
	case gamesim.MMORPG:
		return Cohort
	default:
		return Global
	}
}

// StageObs is one observed execution stage: the unit of prediction history.
// The online predictor accumulates these as the detector reports stage
// boundaries, and the offline extractor derives them from traces, so both
// sides build identical feature vectors.
type StageObs struct {
	ID     int // catalog stage ID
	Frames int // observed length in frames
	Mean   resources.Vector
}

// HistoryLen is how many previous stages (beyond the current one) feed the
// feature vector.
const HistoryLen = 3

// NumFeatures is the fixed feature-vector length produced by Features.
const NumFeatures = HistoryLen + 1 + 1 + int(resources.NumDims) + 1

// Features builds the model input for predicting the stage after hist's
// last entry. hist is ordered oldest-first and must be non-empty; pos is the
// index of the current stage within its (possibly multi-session) sequence.
func Features(hist []StageObs, pos int) []float64 {
	return AppendFeatures(make([]float64, 0, NumFeatures), hist, pos)
}

// AppendFeatures is Features into a caller-provided buffer: it appends the
// NumFeatures-long vector to f[:0]'s backing array and returns the result,
// so per-frame predictors and forecast loops can reuse one buffer instead of
// allocating per prediction.
func AppendFeatures(f []float64, hist []StageObs, pos int) []float64 {
	f = f[:0]
	// Previous HistoryLen stage IDs, oldest slot first, -1 padding.
	for i := HistoryLen; i >= 1; i-- {
		idx := len(hist) - 1 - i
		if idx < 0 {
			f = append(f, -1)
		} else {
			f = append(f, float64(hist[idx].ID))
		}
	}
	cur := hist[len(hist)-1]
	f = append(f, float64(cur.ID), float64(cur.Frames))
	for d := resources.Dim(0); d < resources.NumDims; d++ {
		f = append(f, cur.Mean[d])
	}
	f = append(f, float64(pos))
	return f
}

// Transition is one labeled prediction example plus the provenance the
// selection strategies group by.
type Transition struct {
	Features []float64
	Label    int // catalog ID of the next execution stage
	Player   int64
	Cohort   int64
}

// Extractor derives transitions from traces using a game profile.
type Extractor struct {
	P *profiler.Profile
}

// stagesOf returns the detected execution stages of a trace as observations,
// dropping stages the profile could not identify.
func (e *Extractor) stagesOf(tr *gamesim.Trace) []StageObs {
	var out []StageObs
	for _, d := range e.P.DetectStages(tr.FrameVectors()) {
		if d.Loading || d.StageID < 0 {
			continue
		}
		out = append(out, StageObs{ID: d.StageID, Frames: d.Frames(), Mean: d.Mean})
	}
	return out
}

// FromTrace extracts the transitions of one session.
func (e *Extractor) FromTrace(tr *gamesim.Trace) []Transition {
	return e.fromStages(e.stagesOf(tr), tr.Player, tr.Cohort)
}

// FromChain chains several sessions of one player (oldest first) into a
// single playthrough and extracts transitions across session boundaries —
// the console-game sample construction.
func (e *Extractor) FromChain(traces []*gamesim.Trace) []Transition {
	if len(traces) == 0 {
		return nil
	}
	var chain []StageObs
	for _, tr := range traces {
		chain = append(chain, e.stagesOf(tr)...)
	}
	return e.fromStages(chain, traces[0].Player, traces[0].Cohort)
}

func (e *Extractor) fromStages(stages []StageObs, player, cohort int64) []Transition {
	return FromStages(stages, player, cohort)
}

// FromStages converts an observed execution-stage sequence into labeled
// transitions. The online learner uses it on the histories live predictors
// accumulate, so runtime-collected samples are feature-identical to
// offline-extracted ones.
func FromStages(stages []StageObs, player, cohort int64) []Transition {
	var out []Transition
	for i := 0; i+1 < len(stages); i++ {
		lo := i + 1 - (HistoryLen + 1)
		if lo < 0 {
			lo = 0
		}
		out = append(out, Transition{
			Features: Features(stages[lo:i+1], i),
			Label:    stages[i+1].ID,
			Player:   player,
			Cohort:   cohort,
		})
	}
	return out
}

// Group is one independently trained and evaluated sample set.
type Group struct {
	Name        string
	Transitions []Transition
}

// Select applies a strategy to a corpus, returning the groups a model is
// trained on. Global and WholeProcess return one group; PerPlayer returns
// one per player; Cohort one per cohort.
func Select(strategy Strategy, e *Extractor, traces []*gamesim.Trace) []Group {
	switch strategy {
	case PerPlayer:
		return groupBy(traces, e, func(tr *gamesim.Trace) int64 { return tr.Player }, "player")
	case Cohort:
		return groupBy(traces, e, func(tr *gamesim.Trace) int64 { return tr.Cohort }, "cohort")
	case WholeProcess:
		byPlayer := map[int64][]*gamesim.Trace{}
		var players []int64
		for _, tr := range traces {
			if _, ok := byPlayer[tr.Player]; !ok {
				players = append(players, tr.Player)
			}
			byPlayer[tr.Player] = append(byPlayer[tr.Player], tr)
		}
		sort.Slice(players, func(a, b int) bool { return players[a] < players[b] })
		var all []Transition
		for _, p := range players {
			ts := byPlayer[p]
			sort.Slice(ts, func(a, b int) bool { return ts[a].Session < ts[b].Session })
			all = append(all, e.FromChain(ts)...)
		}
		return []Group{{Name: "whole-process", Transitions: all}}
	default: // Global
		var all []Transition
		for _, tr := range traces {
			all = append(all, e.FromTrace(tr)...)
		}
		return []Group{{Name: "global", Transitions: all}}
	}
}

func groupBy(traces []*gamesim.Trace, e *Extractor, key func(*gamesim.Trace) int64, kind string) []Group {
	m := map[int64][]Transition{}
	var keys []int64
	for _, tr := range traces {
		k := key(tr)
		if _, ok := m[k]; !ok {
			keys = append(keys, k)
		}
		m[k] = append(m[k], e.FromTrace(tr)...)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	out := make([]Group, 0, len(keys))
	for _, k := range keys {
		out = append(out, Group{Name: kind, Transitions: m[k]})
	}
	return out
}

// ToDataset converts transitions into an mlmodels dataset with the given
// class count (the profile's catalog size).
func ToDataset(ts []Transition, numClasses int) (*mlmodels.Dataset, error) {
	samples := make([]mlmodels.Sample, len(ts))
	for i, t := range ts {
		samples[i] = mlmodels.Sample{Features: t.Features, Label: t.Label}
	}
	ds, err := mlmodels.NewDataset(samples)
	if err != nil {
		return nil, err
	}
	if numClasses > ds.NumClasses {
		ds.NumClasses = numClasses
	}
	return ds, nil
}
