// Package resources defines the multi-dimensional resource vectors that flow
// through every CoCG component.
//
// The paper characterizes each 5-second game frame by the CPU, GPU, GPU
// memory, and system memory it consumes (Section IV-A). All values are
// expressed as a percentage of one server's capacity in that dimension, so a
// server is simply the vector {100, 100, 100, 100} and co-location feasibility
// is a component-wise comparison.
package resources

import (
	"fmt"
	"math"
)

// Dim indexes one resource dimension of a Vector.
type Dim int

// The four resource dimensions tracked by CoCG, mirroring what the paper
// collects via cgroups (CPU, memory) and GPU-Z (GPU, GPU memory).
const (
	CPU Dim = iota
	GPU
	GPUMem
	Mem
	NumDims // number of dimensions; keep last
)

// dimNames maps dimensions to their display names.
var dimNames = [NumDims]string{"cpu", "gpu", "gpumem", "mem"}

// String returns the lowercase name of the dimension.
func (d Dim) String() string {
	if d < 0 || d >= NumDims {
		return fmt.Sprintf("dim(%d)", int(d))
	}
	return dimNames[d]
}

// Vector is a point in resource space. Units are percent of a reference
// server's capacity per dimension, so values normally live in [0, 100] but
// sums of co-located demands may exceed 100 (that is exactly the overload
// condition the scheduler avoids).
type Vector [NumDims]float64

// New returns a Vector with the given components.
func New(cpu, gpu, gpumem, mem float64) Vector {
	return Vector{cpu, gpu, gpumem, mem}
}

// Uniform returns a Vector with every component set to v.
func Uniform(v float64) Vector {
	var out Vector
	for d := range out {
		out[d] = v
	}
	return out
}

// Zero is the all-zeros vector.
var Zero Vector

// FullServer is the capacity of one reference server: 100 % in every
// dimension.
var FullServer = Uniform(100)

// Add returns v + w component-wise.
func (v Vector) Add(w Vector) Vector {
	for d := range v {
		v[d] += w[d]
	}
	return v
}

// Sub returns v - w component-wise.
func (v Vector) Sub(w Vector) Vector {
	for d := range v {
		v[d] -= w[d]
	}
	return v
}

// Scale returns v with every component multiplied by k.
func (v Vector) Scale(k float64) Vector {
	for d := range v {
		v[d] *= k
	}
	return v
}

// Min returns the component-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	for d := range v {
		v[d] = math.Min(v[d], w[d])
	}
	return v
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	for d := range v {
		v[d] = math.Max(v[d], w[d])
	}
	return v
}

// Clamp limits every component of v to the range [lo, hi].
func (v Vector) Clamp(lo, hi float64) Vector {
	for d := range v {
		v[d] = math.Max(lo, math.Min(hi, v[d]))
	}
	return v
}

// ClampNonNegative zeroes any negative component.
func (v Vector) ClampNonNegative() Vector { return v.Max(Zero) }

// Fits reports whether v fits within capacity cap in every dimension.
func (v Vector) Fits(cap Vector) bool {
	for d := range v {
		if v[d] > cap[d] {
			return false
		}
	}
	return true
}

// FitsWithin reports whether v fits within cap with headroom slack percent
// reserved in every dimension (i.e. v <= cap - slack).
func (v Vector) FitsWithin(cap Vector, slack float64) bool {
	for d := range v {
		if v[d] > cap[d]-slack {
			return false
		}
	}
	return true
}

// MaxComponent returns the largest component of v and its dimension.
func (v Vector) MaxComponent() (Dim, float64) {
	best, bestD := v[0], Dim(0)
	for d := Dim(1); d < NumDims; d++ {
		if v[d] > best {
			best, bestD = v[d], d
		}
	}
	return bestD, best
}

// Dominant is shorthand for the value of the largest component; it is the
// scalar "utilization" the paper plots when it collapses the vector to one
// number.
func (v Vector) Dominant() float64 {
	_, m := v.MaxComponent()
	return m
}

// L2 returns the Euclidean norm of v.
func (v Vector) L2() float64 {
	var s float64
	for d := range v {
		s += v[d] * v[d]
	}
	return math.Sqrt(s)
}

// Dist returns the Euclidean distance between v and w; this is the metric the
// frame clusterer uses.
func (v Vector) Dist(w Vector) float64 { return v.Sub(w).L2() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vector) Dist2(w Vector) float64 {
	var s float64
	for d := range v {
		diff := v[d] - w[d]
		s += diff * diff
	}
	return s
}

// Ratio returns the component-wise ratio v/w, treating 0/0 as 1 and x/0 as
// +Inf for x > 0. It is used to compute how much of a demand was satisfied.
func (v Vector) Ratio(w Vector) Vector {
	var out Vector
	for d := range v {
		switch {
		case w[d] != 0:
			out[d] = v[d] / w[d]
		case v[d] == 0:
			out[d] = 1
		default:
			out[d] = math.Inf(1)
		}
	}
	return out
}

// MinRatio returns the smallest component of v.Ratio(w); when v is a grant
// and w a demand this is the fraction of the demand that was satisfied in the
// tightest dimension, which drives the FPS model.
func (v Vector) MinRatio(w Vector) float64 {
	r := v.Ratio(w)
	m := r[0]
	for d := Dim(1); d < NumDims; d++ {
		if r[d] < m {
			m = r[d]
		}
	}
	return m
}

// IsZero reports whether every component of v is zero.
func (v Vector) IsZero() bool { return v == Zero }

// String formats the vector as "cpu=12.3 gpu=45.6 gpumem=7.8 mem=9.0".
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%.1f gpu=%.1f gpumem=%.1f mem=%.1f",
		v[CPU], v[GPU], v[GPUMem], v[Mem])
}

// Mean returns the arithmetic mean of the vectors in vs, or Zero when vs is
// empty.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		return Zero
	}
	var sum Vector
	for _, v := range vs {
		sum = sum.Add(v)
	}
	return sum.Scale(1 / float64(len(vs)))
}

// Sum returns the component-wise sum of the vectors in vs.
func Sum(vs []Vector) Vector {
	var sum Vector
	for _, v := range vs {
		sum = sum.Add(v)
	}
	return sum
}

// PeakOf returns the component-wise maximum over vs, or Zero when vs is
// empty. The paper calls this the peak consumption M of a game.
func PeakOf(vs []Vector) Vector {
	var peak Vector
	for _, v := range vs {
		peak = peak.Max(v)
	}
	return peak
}
