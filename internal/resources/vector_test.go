package resources

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndComponents(t *testing.T) {
	v := New(1, 2, 3, 4)
	if v[CPU] != 1 || v[GPU] != 2 || v[GPUMem] != 3 || v[Mem] != 4 {
		t.Fatalf("component order wrong: %v", v)
	}
}

func TestDimString(t *testing.T) {
	cases := map[Dim]string{CPU: "cpu", GPU: "gpu", GPUMem: "gpumem", Mem: "mem"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dim(%d).String() = %q, want %q", d, got, want)
		}
	}
	if got := Dim(99).String(); got != "dim(99)" {
		t.Errorf("out-of-range Dim string = %q", got)
	}
}

func TestAddSub(t *testing.T) {
	v := New(10, 20, 30, 40)
	w := New(1, 2, 3, 4)
	if got := v.Add(w); got != New(11, 22, 33, 44) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != New(9, 18, 27, 36) {
		t.Errorf("Sub = %v", got)
	}
}

func TestScale(t *testing.T) {
	v := New(2, 4, 6, 8)
	if got := v.Scale(0.5); got != New(1, 2, 3, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	v := New(1, 9, 3, 7)
	w := New(5, 2, 8, 4)
	if got := v.Min(w); got != New(1, 2, 3, 4) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(w); got != New(5, 9, 8, 7) {
		t.Errorf("Max = %v", got)
	}
}

func TestClamp(t *testing.T) {
	v := New(-5, 50, 150, 100)
	if got := v.Clamp(0, 100); got != New(0, 50, 100, 100) {
		t.Errorf("Clamp = %v", got)
	}
	if got := New(-1, 0, 1, -2).ClampNonNegative(); got != New(0, 0, 1, 0) {
		t.Errorf("ClampNonNegative = %v", got)
	}
}

func TestFits(t *testing.T) {
	cap := Uniform(100)
	if !New(100, 100, 100, 100).Fits(cap) {
		t.Error("boundary vector should fit")
	}
	if New(100.0001, 0, 0, 0).Fits(cap) {
		t.Error("over-capacity vector should not fit")
	}
	if !New(94, 0, 0, 0).FitsWithin(cap, 5) {
		t.Error("94 should fit within 100 with slack 5")
	}
	if New(96, 0, 0, 0).FitsWithin(cap, 5) {
		t.Error("96 should not fit within 100 with slack 5")
	}
}

func TestMaxComponentAndDominant(t *testing.T) {
	v := New(10, 80, 30, 40)
	d, m := v.MaxComponent()
	if d != GPU || m != 80 {
		t.Errorf("MaxComponent = (%v, %v), want (GPU, 80)", d, m)
	}
	if v.Dominant() != 80 {
		t.Errorf("Dominant = %v", v.Dominant())
	}
}

func TestDistances(t *testing.T) {
	v := New(0, 0, 0, 0)
	w := New(3, 4, 0, 0)
	if got := v.Dist(w); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := v.Dist2(w); math.Abs(got-25) > 1e-12 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := w.L2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %v, want 5", got)
	}
}

func TestRatio(t *testing.T) {
	grant := New(50, 30, 0, 10)
	demand := New(100, 30, 0, 20)
	r := grant.Ratio(demand)
	if r[CPU] != 0.5 || r[GPU] != 1 || r[GPUMem] != 1 || r[Mem] != 0.5 {
		t.Errorf("Ratio = %v", r)
	}
	if got := grant.MinRatio(demand); got != 0.5 {
		t.Errorf("MinRatio = %v", got)
	}
	// x/0 with x > 0 is +Inf.
	inf := New(1, 0, 0, 0).Ratio(Zero)
	if !math.IsInf(inf[CPU], 1) {
		t.Errorf("1/0 ratio = %v, want +Inf", inf[CPU])
	}
}

func TestAggregates(t *testing.T) {
	vs := []Vector{New(10, 20, 30, 40), New(30, 10, 50, 20)}
	if got := Mean(vs); got != New(20, 15, 40, 30) {
		t.Errorf("Mean = %v", got)
	}
	if got := Sum(vs); got != New(40, 30, 80, 60) {
		t.Errorf("Sum = %v", got)
	}
	if got := PeakOf(vs); got != New(30, 20, 50, 40) {
		t.Errorf("PeakOf = %v", got)
	}
	if got := Mean(nil); got != Zero {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := PeakOf(nil); got != Zero {
		t.Errorf("PeakOf(nil) = %v", got)
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if New(0, 0, 0.001, 0).IsZero() {
		t.Error("nonzero vector reported zero")
	}
}

func TestString(t *testing.T) {
	got := New(1.25, 2, 3, 4).String()
	want := "cpu=1.2 gpu=2.0 gpumem=3.0 mem=4.0"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// randVec generates vectors with components in [0, 100] for property tests.
func randVec(r *rand.Rand) Vector {
	var v Vector
	for d := range v {
		v[d] = r.Float64() * 100
	}
	return v
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := randVec(r), randVec(r)
		return v.Add(w) == w.Add(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySubInvertsAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := randVec(r), randVec(r)
		got := v.Add(w).Sub(w)
		for d := range got {
			if math.Abs(got[d]-v[d]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistSymmetricNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, w := randVec(r), randVec(r)
		d1, d2 := v.Dist(w), w.Dist(v)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVec(r), randVec(r), randVec(r)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPeakDominatesAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = randVec(r)
		}
		peak := PeakOf(vs)
		for _, v := range vs {
			if !v.Fits(peak) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMeanBetweenMinAndMax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		vs := make([]Vector, n)
		lo, hi := Uniform(math.Inf(1)), Uniform(math.Inf(-1))
		for i := range vs {
			vs[i] = randVec(r)
			lo = lo.Min(vs[i])
			hi = hi.Max(vs[i])
		}
		m := Mean(vs)
		for d := range m {
			if m[d] < lo[d]-1e-9 || m[d] > hi[d]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
