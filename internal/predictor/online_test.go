package predictor

import (
	"testing"

	"cocg/internal/gamesim"
)

func TestOnlineLearnerColdStartGraduates(t *testing.T) {
	tr := trainedFor(t, gamesim.GenshinImpact())
	learner := NewOnlineLearner(tr, 8, 71)

	// A brand-new player not in the training corpus.
	coldHabit := int64(909_090_909)
	if _, ok := tr.HabitModels[coldHabit]; ok {
		t.Fatal("cold habit already has models")
	}
	script := int(uint64(coldHabit) % uint64(len(tr.Spec.Scripts)))

	sessions := 0
	for s := int64(0); s < 10; s++ {
		sess, err := gamesim.NewPlayerSession(tr.Spec, script, coldHabit, 5000+s)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := tr.NewSessionPredictorForHabit(coldHabit, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4*3600 && !sess.Done(); i++ {
			pr.Observe(sess.Demand())
			sess.Step(pr.Alloc())
		}
		sessions++
		if _, err := learner.Observe(coldHabit, pr); err != nil {
			t.Fatal(err)
		}
		if _, ok := tr.HabitModels[coldHabit]; ok {
			break
		}
	}
	if _, ok := tr.HabitModels[coldHabit]; !ok {
		t.Fatalf("cold-start player never graduated after %d sessions (%d transitions)",
			sessions, learner.TransitionCount(coldHabit))
	}
	if acc, ok := tr.HabitAccuracy[coldHabit]; !ok || acc <= 0 || acc > 1 {
		t.Errorf("habit accuracy = %v, %v", acc, ok)
	}
	// The dedicated model is now used by new predictors for this habit.
	pr, err := tr.NewSessionPredictorForHabit(coldHabit, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Accuracy() != tr.HabitAccuracy[coldHabit] {
		t.Errorf("new predictor prior %v != habit accuracy %v", pr.Accuracy(), tr.HabitAccuracy[coldHabit])
	}
}

func TestOnlineLearnerNoRetrainWithoutNewData(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	learner := NewOnlineLearner(tr, 4, 72)
	habit := int64(777)

	// Feed one batch of history manually via a driven session.
	sess, err := gamesim.NewPlayerSession(tr.Spec, 2, habit, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tr.NewSessionPredictorForHabit(habit, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*3600 && !sess.Done(); i++ {
		pr.Observe(sess.Demand())
		sess.Step(pr.Alloc())
	}
	learner.RecordSession(habit, pr.History())
	if learner.TransitionCount(habit) == 0 {
		t.Skip("session produced no transitions")
	}
	first, err := learner.MaybeTrain(habit)
	if err != nil {
		t.Fatal(err)
	}
	// A second call without new data must be a no-op.
	again, err := learner.MaybeTrain(habit)
	if err != nil {
		t.Fatal(err)
	}
	if first && again {
		t.Error("retrained without new transitions")
	}
}

func TestOnlineLearnerBelowThreshold(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	learner := NewOnlineLearner(tr, 50, 73)
	learner.RecordSession(42, nil)
	trained, err := learner.MaybeTrain(42)
	if err != nil || trained {
		t.Errorf("trained=%v err=%v on empty history", trained, err)
	}
}
