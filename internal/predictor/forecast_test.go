package predictor

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
)

// TestForecastDemandIntoMatchesFresh drives a live session and, at every few
// seconds, compares the scratch-reusing forecast against a freshly allocated
// one: buffer reuse must never change a value. It simultaneously checks the
// ForecastRev contract the distributor's cache rests on — while the revision
// is unchanged, the forecast timeline is bit-identical to the previous one.
func TestForecastDemandIntoMatchesFresh(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	sess, err := gamesim.NewSession(tr.Spec, 0, 77)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tr.NewSessionPredictor(Config{})
	if err != nil {
		t.Fatal(err)
	}

	const horizon = 120
	var scratch ForecastScratch
	var buf []resources.Vector
	var prev []resources.Vector
	prevRev := pr.ForecastRev()
	revBumps := 0
	checks := 0
	for i := 0; i < 4*3600 && !sess.Done(); i++ {
		demand := sess.Demand()
		pr.Observe(demand)
		sess.Step(pr.Alloc())

		fresh := pr.ForecastDemand(horizon)
		buf = pr.ForecastDemandInto(horizon, buf, &scratch)
		if len(fresh) != len(buf) {
			t.Fatalf("t=%d: reused forecast length %d != fresh %d", i, len(buf), len(fresh))
		}
		for ti := range fresh {
			if fresh[ti] != buf[ti] {
				t.Fatalf("t=%d frame %d: reused %v != fresh %v", i, ti, buf[ti], fresh[ti])
			}
		}
		rev := pr.ForecastRev()
		if rev == prevRev && prev != nil {
			for ti := range fresh {
				if fresh[ti] != prev[ti] {
					t.Fatalf("t=%d frame %d: forecast changed (%v -> %v) with ForecastRev unchanged at %d",
						i, ti, prev[ti], fresh[ti], rev)
				}
			}
		}
		if rev != prevRev {
			revBumps++
		}
		prevRev = rev
		prev = append(prev[:0], fresh...)
		checks++
	}
	if checks == 0 {
		t.Fatal("session produced no forecasts")
	}
	if revBumps == 0 {
		t.Fatal("ForecastRev never advanced over a whole session")
	}
}
