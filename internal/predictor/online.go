package predictor

import (
	"sync"

	"cocg/internal/dataset"
	"cocg/internal/mlmodels"
)

// OnlineLearner extends the paper's once-and-for-all offline training with
// continual refinement: it accumulates the stage histories that live
// predictors observe and, once a player has contributed enough transitions,
// trains that player a dedicated model set. A brand-new (cold-start) player
// begins on the pooled models and graduates to per-habit models after a few
// sessions — the mechanism behind the paper's remark that mobile-game
// prediction "can be done once and for all" as players keep returning.
type OnlineLearner struct {
	trained *Trained
	// MinTransitions is how many observed transitions a habit needs before
	// a dedicated model is trained.
	MinTransitions int
	// Seed drives retraining determinism.
	Seed int64
	// Workers bounds the goroutines a retraining may use (RF tree bagging,
	// GBDT per-round fan-out, DTC feature scans); <= 0 trains
	// single-threaded. The fitted models are identical at every setting.
	Workers int

	mu      sync.Mutex
	byHabit map[int64][]dataset.Transition
	retrain map[int64]int // transitions count at last retrain
}

// NewOnlineLearner wraps a trained bundle; minTransitions <= 0 means 8.
func NewOnlineLearner(t *Trained, minTransitions int, seed int64) *OnlineLearner {
	if minTransitions <= 0 {
		minTransitions = 8
	}
	return &OnlineLearner{
		trained:        t,
		MinTransitions: minTransitions,
		Seed:           seed,
		byHabit:        map[int64][]dataset.Transition{},
		retrain:        map[int64]int{},
	}
}

// RecordSession folds one completed session's observed stage history into
// the player's sample pool. Call it with Predictor.History() when a session
// ends.
func (l *OnlineLearner) RecordSession(habit int64, hist []dataset.StageObs) {
	trans := dataset.FromStages(hist, habit, 0)
	if len(trans) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byHabit[habit] = append(l.byHabit[habit], trans...)
}

// TransitionCount returns how many transitions a habit has contributed.
func (l *OnlineLearner) TransitionCount(habit int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byHabit[habit])
}

// MaybeTrain trains (or retrains) the habit's dedicated models when enough
// new transitions have accumulated since the last training. It returns
// whether a training ran.
func (l *OnlineLearner) MaybeTrain(habit int64) (bool, error) {
	l.mu.Lock()
	trans := append([]dataset.Transition(nil), l.byHabit[habit]...)
	last := l.retrain[habit]
	l.mu.Unlock()

	if len(trans) < l.MinTransitions || len(trans) == last {
		return false, nil
	}
	ds, err := dataset.ToDataset(trans, l.trained.Profile.NumStageTypes())
	if err != nil {
		return false, err
	}
	workers := l.Workers
	if workers <= 0 {
		workers = 1
	}
	models, err := TrainModelsParallel(ds, l.Seed+habit, workers)
	if err != nil {
		return false, err
	}
	acc := heldOutAccuracy(ds, l.Seed+habit)

	l.mu.Lock()
	if l.trained.HabitModels == nil {
		l.trained.HabitModels = map[int64][]mlmodels.Classifier{}
	}
	if l.trained.HabitAccuracy == nil {
		l.trained.HabitAccuracy = map[int64]float64{}
	}
	l.trained.HabitModels[habit] = models
	l.trained.HabitAccuracy[habit] = acc
	l.retrain[habit] = len(trans)
	l.mu.Unlock()
	return true, nil
}

// Observe is the convenience loop hook: record the finished session and
// retrain if due.
func (l *OnlineLearner) Observe(habit int64, pr *Predictor) (trained bool, err error) {
	l.RecordSession(habit, pr.History())
	return l.MaybeTrain(habit)
}
