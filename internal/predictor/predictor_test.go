package predictor

import (
	"math"
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/profiler"
	"cocg/internal/resources"
	"cocg/internal/simclock"
	"cocg/internal/stats"
)

// trainedFor caches one trained bundle per game for the whole test package.
var trainedCache = map[string]*Trained{}

func trainedFor(t *testing.T, spec *gamesim.GameSpec) *Trained {
	t.Helper()
	if tr, ok := trainedCache[spec.Name]; ok {
		return tr
	}
	tr, err := TrainForGame(spec, TrainConfig{Players: 8, SessionsPerPlayer: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	trainedCache[spec.Name] = tr
	return tr
}

// drive runs a live session through a predictor, granting the predictor's
// recommended allocation each second, and returns the decisions.
func drive(t *testing.T, tr *Trained, scriptIdx int, seed int64, cfg Config) (*gamesim.Session, *Predictor, []Decision) {
	t.Helper()
	sess, err := gamesim.NewSession(tr.Spec, scriptIdx, seed)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tr.NewSessionPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return driveLoop(t, sess, pr)
}

// driveHabit is drive for a returning player: the session uses the habit
// seed and the predictor the habit's dedicated models.
func driveHabit(t *testing.T, tr *Trained, scriptIdx int, habit, sessionSeed int64, cfg Config) (*gamesim.Session, *Predictor, []Decision) {
	t.Helper()
	sess, err := gamesim.NewPlayerSession(tr.Spec, scriptIdx, habit, sessionSeed)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tr.NewSessionPredictorForHabit(habit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return driveLoop(t, sess, pr)
}

func driveLoop(t *testing.T, sess *gamesim.Session, pr *Predictor) (*gamesim.Session, *Predictor, []Decision) {
	t.Helper()
	var decisions []Decision
	for i := 0; i < 4*3600 && !sess.Done(); i++ {
		demand := sess.Demand()
		if d, ok := pr.Observe(demand); ok {
			decisions = append(decisions, d)
		}
		sess.Step(pr.Alloc())
	}
	if !sess.Done() {
		t.Fatal("session did not finish")
	}
	return sess, pr, decisions
}

func TestNewRequiresModels(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	if _, err := New(tr.Profile, nil, Config{}); err != ErrNoModels {
		t.Errorf("err = %v", err)
	}
}

func TestTrainForGameProducesThreeModels(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	if len(tr.Models) != 3 {
		t.Fatalf("models = %d", len(tr.Models))
	}
	names := map[string]bool{}
	for _, m := range tr.Models {
		names[m.Name()] = true
	}
	for _, want := range []string{"DTC", "RF", "GBDT"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}

func TestPredictorMaintainsQoSWhileSaving(t *testing.T) {
	// The core single-game result (Fig. 10): allocating per predicted stage
	// keeps QoS while reserving much less than the game's peak. Uses a
	// returning player, whose dedicated (per-player) model is accurate.
	tr := trainedFor(t, gamesim.GenshinImpact())
	habits := tr.Habits()
	if len(habits) == 0 {
		t.Fatal("no habit models for a mobile game")
	}
	// Use the best-established returning player (highest offline accuracy),
	// matching the paper's setting of a well-profiled game.
	best := habits[0]
	for _, h := range habits[1:] {
		if tr.HabitAccuracy[h] > tr.HabitAccuracy[best] {
			best = h
		}
	}
	sess, pr, decisions := driveHabit(t, tr, 0, best, 4242, Config{})
	if sess.FPSRatio() < 0.9 {
		t.Errorf("FPSRatio = %.3f under predictor-driven allocation", sess.FPSRatio())
	}
	if sess.DegradedFraction() > 0.1 {
		t.Errorf("DegradedFraction = %.3f", sess.DegradedFraction())
	}
	// Mean allocation across frames must be clearly below peak-based
	// allocation.
	peak := tr.Profile.PeakDemand()
	var gpuSum float64
	for _, d := range decisions {
		gpuSum += d.Alloc[resources.GPU]
	}
	meanGPU := gpuSum / float64(len(decisions))
	if meanGPU > peak[resources.GPU]*0.95 {
		t.Errorf("mean GPU alloc %.1f not below peak %.1f", meanGPU, peak[resources.GPU])
	}
	_ = pr
}

func TestPredictorEmitsBoundaryEvents(t *testing.T) {
	tr := trainedFor(t, gamesim.CSGO())
	_, _, decisions := drive(t, tr, 0, 7, Config{})
	var loads, enters, preds int
	for _, d := range decisions {
		switch d.Event.Kind {
		case profiler.EventLoadingEntered:
			loads++
			if d.PredictedNext >= 0 {
				preds++
			}
		case profiler.EventStageEntered:
			enters++
		}
	}
	if loads == 0 || enters == 0 {
		t.Fatalf("loads=%d enters=%d", loads, enters)
	}
	if preds == 0 {
		t.Error("no predictions made at loading boundaries")
	}
}

func TestAccuracyTracked(t *testing.T) {
	tr := trainedFor(t, gamesim.DevilMayCry())
	_, pr, _ := drive(t, tr, 2, 99, Config{})
	if pr.acc.Total == 0 {
		t.Fatal("no predictions scored")
	}
	if a := pr.Accuracy(); a < 0 || a > 1 {
		t.Errorf("accuracy = %v", a)
	}
}

func TestAccuracyPriorBeforeObservations(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	// Direct construction uses the default prior of 0.9.
	pr, err := New(tr.Profile, tr.Models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Accuracy() != 0.9 {
		t.Errorf("default prior accuracy = %v, want 0.9", pr.Accuracy())
	}
	// The Trained bundle injects the game's measured offline accuracy.
	pr2, err := tr.NewSessionPredictor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pr2.Accuracy(); math.Abs(got-tr.OfflineAccuracy) > 1e-9 {
		t.Errorf("bundle prior = %v, want measured %v", got, tr.OfflineAccuracy)
	}
	if tr.OfflineAccuracy < 0.3 || tr.OfflineAccuracy > 0.97 {
		t.Errorf("OfflineAccuracy = %v outside clamp range", tr.OfflineAccuracy)
	}
}

func TestRedundancyEq1(t *testing.T) {
	// S = (1-P) × M, component-wise, where P blends the offline prior with
	// session observations.
	tr := trainedFor(t, gamesim.Contra())
	pr, err := tr.NewSessionPredictor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	M := tr.Profile.PeakDemand()
	P := pr.Accuracy()
	S := pr.redundancy()
	for d := range S {
		want := (1 - P) * M[d]
		if math.Abs(S[d]-want) > 1e-9 {
			t.Errorf("S[%d] = %v, want %v", d, S[d], want)
		}
	}
	// More correct observations shrink the redundancy; more errors grow it.
	before := pr.redundancy()[resources.GPU]
	pr.acc.Observe(true)
	afterGood := pr.redundancy()[resources.GPU]
	if afterGood >= before {
		t.Errorf("redundancy did not shrink after a correct prediction: %v -> %v", before, afterGood)
	}
	pr.acc = stats.Accuracy{}
	pr.acc.Observe(false)
	pr.acc.Observe(false)
	afterBad := pr.redundancy()[resources.GPU]
	if afterBad <= before {
		t.Errorf("redundancy did not grow after errors: %v -> %v", before, afterBad)
	}
	// P stays in [0, 1], so S stays within [0, M].
	if afterBad > M[resources.GPU] {
		t.Errorf("redundancy exceeds peak: %v > %v", afterBad, M[resources.GPU])
	}
}

func TestRedundancyConfigVariants(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	off, err := tr.NewSessionPredictor(Config{DisableRedundancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !off.redundancy().IsZero() {
		t.Error("disabled redundancy not zero")
	}
	fixed, err := tr.NewSessionPredictor(Config{FixedRedundancy: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Profile.PeakDemand().Scale(0.1)
	if fixed.redundancy() != want {
		t.Errorf("fixed redundancy = %v, want %v", fixed.redundancy(), want)
	}
}

func TestInitialAllocIsPeak(t *testing.T) {
	tr := trainedFor(t, gamesim.DOTA2())
	pr, err := tr.NewSessionPredictor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Alloc() != tr.Profile.PeakDemand() {
		t.Errorf("initial alloc = %v", pr.Alloc())
	}
}

func TestRehearsalCallbackFiresOnSpikes(t *testing.T) {
	// Genshin has the highest spike rate; across several sessions the
	// rehearsal callback must fire at least once and the session must still
	// finish with good QoS.
	tr := trainedFor(t, gamesim.GenshinImpact())
	callbacks := 0
	for seed := int64(100); seed < 112; seed++ {
		sess, _, decisions := drive(t, tr, int(seed)%3, seed, Config{})
		for _, d := range decisions {
			if d.Callback {
				callbacks++
			}
		}
		if sess.FPSRatio() < 0.85 {
			t.Errorf("seed %d: FPSRatio %.3f", seed, sess.FPSRatio())
		}
	}
	if callbacks == 0 {
		t.Error("rehearsal callback never fired across 12 spiky sessions")
	}
}

func TestModelSwitchAfterRepeatedErrors(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	pr, err := tr.NewSessionPredictor(Config{SwitchThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := pr.ActiveModel()
	var switched bool
	var d Decision
	for i := 0; i < 2; i++ {
		pr.recordError(&d)
		if d.ModelSwitched {
			switched = true
		}
	}
	if !switched {
		t.Fatal("model did not switch after threshold errors")
	}
	if pr.ActiveModel() == before {
		t.Error("active model unchanged after switch")
	}
}

func TestPredictionLatencyWithinPaperRange(t *testing.T) {
	// Fig. 12: prediction takes 3-13 s, always below the loading times.
	for _, g := range gamesim.AllGames() {
		tr := trainedFor(t, g)
		for _, m := range tr.Models {
			lat := PredictionLatency(m, tr.Profile.NumStageTypes())
			if lat < 3*simclock.Second || lat > 13*simclock.Second {
				t.Errorf("%s/%s latency = %d s", g.Name, m.Name(), lat)
			}
		}
	}
}

func TestPredictNextNeverReturnsLoading(t *testing.T) {
	tr := trainedFor(t, gamesim.GenshinImpact())
	for seed := int64(0); seed < 5; seed++ {
		_, _, decisions := drive(t, tr, 0, 3000+seed, Config{})
		for _, d := range decisions {
			if d.PredictedNext == profiler.LoadingStageID {
				t.Fatal("predicted the loading stage as next")
			}
		}
	}
}

func TestPredictedAllocCoversStagePeak(t *testing.T) {
	tr := trainedFor(t, gamesim.DevilMayCry())
	pr, err := tr.NewSessionPredictor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Profile.Catalog {
		alloc := pr.PredictedAlloc(s.ID)
		capped := s.Peak.Clamp(0, 100)
		if !capped.Fits(alloc.Add(resources.Uniform(1e-9))) {
			t.Errorf("stage %d alloc %v below peak %v", s.ID, alloc, s.Peak)
		}
	}
	// Unknown stage falls back to game peak.
	if pr.PredictedAlloc(-5) != tr.Profile.PeakDemand() {
		t.Error("unknown stage alloc is not the peak fallback")
	}
}

func TestHistoryCopies(t *testing.T) {
	tr := trainedFor(t, gamesim.Contra())
	_, pr, _ := drive(t, tr, 2, 55, Config{})
	h := pr.History()
	if len(h) == 0 {
		t.Fatal("no history accumulated")
	}
	h[0].ID = -99
	if pr.History()[0].ID == -99 {
		t.Error("History aliases internal state")
	}
}

func TestTrainModelsErrorsOnEmpty(t *testing.T) {
	if _, err := TrainModels(&mlmodels.Dataset{}, 1); err == nil {
		t.Error("empty dataset did not error")
	}
}

func TestForecastCurveProperties(t *testing.T) {
	tr := trainedFor(t, gamesim.DOTA2())
	pr, err := tr.NewSessionPredictor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frames := range []int{1, 10, 120} {
		curve := pr.ForecastCurve(frames)
		if len(curve) != frames {
			t.Fatalf("ForecastCurve(%d) length %d", frames, len(curve))
		}
		demand := pr.ForecastDemand(frames)
		if len(demand) != frames {
			t.Fatalf("ForecastDemand(%d) length %d", frames, len(demand))
		}
		for i := range curve {
			for d := range curve[i] {
				if curve[i][d] < 0 || curve[i][d] > 100 {
					t.Fatalf("curve[%d] out of range: %v", i, curve[i])
				}
				if demand[i][d] > curve[i][d]+1e-9 {
					t.Fatalf("demand above padded allocation at %d: %v vs %v", i, demand[i], curve[i])
				}
			}
		}
	}
}

func TestForecastAfterSomeHistory(t *testing.T) {
	tr := trainedFor(t, gamesim.DevilMayCry())
	_, pr, _ := drive(t, tr, 2, 4242, Config{})
	curve := pr.ForecastDemand(60)
	if len(curve) != 60 {
		t.Fatalf("length %d", len(curve))
	}
	// A forecast over a finished session is still well-formed.
	var nonzero bool
	for _, v := range curve {
		if !v.IsZero() {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("forecast entirely zero")
	}
}
