package predictor

import (
	"cocg/internal/dataset"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

// Loading reports the predictor's current belief that its game is in a
// loading stage.
func (pr *Predictor) Loading() bool {
	_, loading := pr.det.Current()
	return loading
}

// CurrentStage returns the predictor's believed current stage ID.
func (pr *Predictor) CurrentStage() int {
	id, _ := pr.det.Current()
	return id
}

// ForecastRev returns the predictor's forecast revision: it bumps exactly
// when a detection frame completes, and every input a forecast reads mutates
// only inside that step. Two calls to ForecastDemand/ForecastCurve between
// identical revisions therefore return identical timelines, which is what
// lets the distributor cache per-server aggregate forecasts (see
// scheduler.CoCG) instead of re-forecasting every hosted session for every
// candidate.
func (pr *Predictor) ForecastRev() uint64 { return pr.rev }

// ForecastScratch owns the reusable buffers one forecasting goroutine needs:
// the working stage history the iterative prediction extends and the feature
// vector handed to the model. A zero value is ready to use; a scratch must
// not be shared between concurrent forecasts.
type ForecastScratch struct {
	hist []dataset.StageObs
	feat []float64
}

// ForecastCurve projects the session's expected allocation over the next
// `frames` detection frames: the remainder of the current stage, then
// model-predicted stages separated by typical loading gaps.
func (pr *Predictor) ForecastCurve(frames int) []resources.Vector {
	var s ForecastScratch
	return pr.forecastInto(frames, true, make([]resources.Vector, 0, frames), &s)
}

// ForecastDemand is ForecastCurve without the allocation headroom: the raw
// sustained-peak demand timeline. This is what Algorithm 1's distributor
// sums to find future peak overlaps — headroom would double-count the
// safety margin.
func (pr *Predictor) ForecastDemand(frames int) []resources.Vector {
	var s ForecastScratch
	return pr.forecastInto(frames, false, make([]resources.Vector, 0, frames), &s)
}

// ForecastDemandInto is ForecastDemand into caller-provided storage: the
// timeline is appended to dst[:0]'s backing array (grown as needed) and
// returned, with all intermediate state drawn from scratch. Steady-state
// calls allocate nothing, which keeps the admission path allocation-free.
func (pr *Predictor) ForecastDemandInto(frames int, dst []resources.Vector, scratch *ForecastScratch) []resources.Vector {
	return pr.forecastInto(frames, false, dst, scratch)
}

// padDemand applies the second-level allocation headroom when forecasting
// allocations rather than raw demand.
func padDemand(v resources.Vector, headroom bool) resources.Vector {
	if !headroom {
		return v
	}
	return v.Scale(allocHeadroomScale).Add(resources.Uniform(allocHeadroomAbs)).Clamp(0, 100)
}

// forecastInto builds the projected timeline. The arithmetic is identical at
// every call site and with every scratch (buffer reuse never changes a
// value), so the cached-aggregate property tests can compare it against
// freshly allocated runs byte for byte.
func (pr *Predictor) forecastInto(frames int, headroom bool, dst []resources.Vector, scratch *ForecastScratch) []resources.Vector {
	curve := dst[:0]
	loadSig, _ := pr.profile.Stage(profiler.LoadingStageID)
	loadFrames := int(loadSig.MeanDurFrames + 0.5)
	if loadFrames < 1 {
		loadFrames = 2
	}
	loadAlloc := padDemand(loadSig.Peak, headroom)

	// Working copy of the stage history for iterative prediction.
	hist := append(scratch.hist[:0], pr.hist...)
	pos := pr.pos

	// Phase 1: the rest of the current stage (or loading).
	if pr.Loading() {
		for i := 0; i < loadFrames && len(curve) < frames; i++ {
			curve = append(curve, loadAlloc)
		}
	} else if pr.haveStage {
		s, ok := pr.profile.Stage(pr.curID)
		remaining := 2
		alloc := pr.peakM
		if ok {
			remaining = int(s.MeanDurFrames+0.5) - pr.curFrames
			if remaining < 1 {
				remaining = 1
			}
			alloc = padDemand(s.Peak, headroom)
		}
		for i := 0; i < remaining && len(curve) < frames; i++ {
			curve = append(curve, alloc)
		}
		hist = append(hist, dataset.StageObs{
			ID:     pr.curID,
			Frames: pr.curFrames,
			Mean:   pr.curSum.Scale(1 / float64(maxInt(1, pr.curFrames))),
		})
		pos++
	}

	// Phase 2: iterate model predictions until the horizon fills.
	for len(curve) < frames {
		next := -1
		if len(hist) > 0 {
			scratch.feat = dataset.AppendFeatures(scratch.feat, hist, pos-1)
			if n, err := pr.models[pr.active].Predict(scratch.feat); err == nil &&
				n > profiler.LoadingStageID && n < pr.profile.NumStageTypes() {
				next = n
			}
		} else if pr.predicted >= 0 {
			next = pr.predicted
		}
		if next < 0 {
			// No usable prediction: fill the rest with the safe peak.
			for len(curve) < frames {
				curve = append(curve, pr.peakM)
			}
			break
		}
		// Loading gap, then the predicted stage.
		for i := 0; i < loadFrames && len(curve) < frames; i++ {
			curve = append(curve, loadAlloc)
		}
		s, ok := pr.profile.Stage(next)
		dur := int(s.MeanDurFrames + 0.5)
		if dur < 1 {
			dur = 2
		}
		alloc := pr.peakM
		if ok {
			alloc = padDemand(s.Peak, headroom)
		}
		for i := 0; i < dur && len(curve) < frames; i++ {
			curve = append(curve, alloc)
		}
		hist = append(hist, dataset.StageObs{ID: next, Frames: dur, Mean: s.Mean})
		pos++
	}
	scratch.hist = hist[:0]
	return curve
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
