package predictor

import (
	"cocg/internal/dataset"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

// Loading reports the predictor's current belief that its game is in a
// loading stage.
func (pr *Predictor) Loading() bool {
	_, loading := pr.det.Current()
	return loading
}

// CurrentStage returns the predictor's believed current stage ID.
func (pr *Predictor) CurrentStage() int {
	id, _ := pr.det.Current()
	return id
}

// ForecastCurve projects the session's expected allocation over the next
// `frames` detection frames: the remainder of the current stage, then
// model-predicted stages separated by typical loading gaps.
func (pr *Predictor) ForecastCurve(frames int) []resources.Vector {
	return pr.forecast(frames, true)
}

// ForecastDemand is ForecastCurve without the allocation headroom: the raw
// sustained-peak demand timeline. This is what Algorithm 1's distributor
// sums to find future peak overlaps — headroom would double-count the
// safety margin.
func (pr *Predictor) ForecastDemand(frames int) []resources.Vector {
	return pr.forecast(frames, false)
}

func (pr *Predictor) forecast(frames int, headroom bool) []resources.Vector {
	pad := func(v resources.Vector) resources.Vector {
		if !headroom {
			return v
		}
		return v.Scale(allocHeadroomScale).Add(resources.Uniform(allocHeadroomAbs)).Clamp(0, 100)
	}
	curve := make([]resources.Vector, 0, frames)
	loadSig, _ := pr.profile.Stage(profiler.LoadingStageID)
	loadFrames := int(loadSig.MeanDurFrames + 0.5)
	if loadFrames < 1 {
		loadFrames = 2
	}
	loadAlloc := pad(loadSig.Peak)

	// Working copy of the stage history for iterative prediction.
	hist := make([]dataset.StageObs, len(pr.hist))
	copy(hist, pr.hist)
	pos := pr.pos

	emitStage := func(id int, remaining int) {
		s, ok := pr.profile.Stage(id)
		alloc := pr.peakM
		if ok {
			alloc = pad(s.Peak)
		}
		for i := 0; i < remaining && len(curve) < frames; i++ {
			curve = append(curve, alloc)
		}
	}

	// Phase 1: the rest of the current stage (or loading).
	if pr.Loading() {
		for i := 0; i < loadFrames && len(curve) < frames; i++ {
			curve = append(curve, loadAlloc)
		}
	} else if pr.haveStage {
		s, ok := pr.profile.Stage(pr.curID)
		remaining := 2
		if ok {
			remaining = int(s.MeanDurFrames+0.5) - pr.curFrames
			if remaining < 1 {
				remaining = 1
			}
		}
		emitStage(pr.curID, remaining)
		hist = append(hist, dataset.StageObs{
			ID:     pr.curID,
			Frames: pr.curFrames,
			Mean:   pr.curSum.Scale(1 / float64(maxInt(1, pr.curFrames))),
		})
		pos++
	}

	// Phase 2: iterate model predictions until the horizon fills.
	for len(curve) < frames {
		next := -1
		if len(hist) > 0 {
			feat := dataset.Features(hist, pos-1)
			if n, err := pr.models[pr.active].Predict(feat); err == nil &&
				n > profiler.LoadingStageID && n < pr.profile.NumStageTypes() {
				next = n
			}
		} else if pr.predicted >= 0 {
			next = pr.predicted
		}
		if next < 0 {
			// No usable prediction: fill the rest with the safe peak.
			for len(curve) < frames {
				curve = append(curve, pr.peakM)
			}
			break
		}
		// Loading gap, then the predicted stage.
		for i := 0; i < loadFrames && len(curve) < frames; i++ {
			curve = append(curve, loadAlloc)
		}
		s, _ := pr.profile.Stage(next)
		dur := int(s.MeanDurFrames + 0.5)
		if dur < 1 {
			dur = 2
		}
		emitStage(next, dur)
		hist = append(hist, dataset.StageObs{ID: next, Frames: dur, Mean: s.Mean})
		pos++
	}
	return curve
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
