package predictor

import (
	"sort"

	"cocg/internal/dataset"
	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/parallel"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

// Trained bundles everything CoCG learns offline about one game: its
// profile (clusters + stage catalog) and the three trained prediction
// models. The paper performs this once per game; afterwards predictions are
// "once and for all" with negligible overhead.
type Trained struct {
	Spec    *gamesim.GameSpec
	Profile *profiler.Profile
	Models  []mlmodels.Classifier
	// OfflineAccuracy is the held-out next-stage accuracy of the pooled DTC
	// model — the game's P prior for Eq. 1.
	OfflineAccuracy float64
	// HabitModels holds models trained on one habit's records only — the
	// per-player training sets of mobile games and the per-cohort packing of
	// MMORPGs (Section IV-B1). Keyed by the habit seed sessions are realized
	// with.
	HabitModels map[int64][]mlmodels.Classifier
	// HabitAccuracy is the held-out accuracy of each habit's DTC model.
	HabitAccuracy map[int64]float64
	// HabitPool lists every habit seed seen in the profiling corpus —
	// the returning-player population, persisted with the bundle so a
	// loaded system can still generate known-player workloads.
	HabitPool []int64
	// TypicalCurve is the expected per-frame demand timeline of a fresh
	// session (mean demand over the corpus). The distributor uses it as the
	// arriving game's projected footprint.
	TypicalCurve []resources.Vector
	// Corpus is the profiling corpus, retained for experiments that need
	// the raw traces.
	Corpus []*gamesim.Trace
}

// Clone returns a copy of the bundle whose habit-model maps are independent
// of the original. The profile, corpus, and model values stay shared — they
// are immutable after training — but an OnlineLearner wrapping the clone can
// add dedicated models without mutating a bundle other goroutines read.
func (t *Trained) Clone() *Trained {
	out := *t
	out.HabitModels = make(map[int64][]mlmodels.Classifier, len(t.HabitModels))
	for h, m := range t.HabitModels {
		out.HabitModels[h] = m
	}
	out.HabitAccuracy = make(map[int64]float64, len(t.HabitAccuracy))
	for h, a := range t.HabitAccuracy {
		out.HabitAccuracy[h] = a
	}
	return &out
}

// Habits returns the habit seeds with dedicated models, sorted; experiments
// use them to spawn sessions of known (returning) players.
func (t *Trained) Habits() []int64 {
	out := make([]int64, 0, len(t.HabitModels))
	for h := range t.HabitModels {
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Pool returns the returning-player population: habits with dedicated
// models when they exist, else every corpus habit.
func (t *Trained) Pool() []int64 {
	if hs := t.Habits(); len(hs) > 0 {
		return hs
	}
	return t.HabitPool
}

// TrainConfig shapes the offline pass.
type TrainConfig struct {
	Players           int // corpus players; <=0 means 12
	SessionsPerPlayer int // <=0 means 3
	Seed              int64
	// ForceGlobal ignores the category-aware selection strategy and pools
	// all samples (the ablation of Section IV-B1's design).
	ForceGlobal bool
	// Workers bounds the goroutines used by the clustering and model
	// training passes; <= 0 means GOMAXPROCS. Results do not depend on it.
	Workers int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Players <= 0 {
		c.Players = 12
	}
	if c.SessionsPerPlayer <= 0 {
		c.SessionsPerPlayer = 3
	}
	return c
}

// TrainForGame runs the full offline pipeline for one game: record a
// player-structured corpus, build the profile, extract transitions with the
// category's selection strategy, and train DTC/RF/GBDT.
func TrainForGame(spec *gamesim.GameSpec, cfg TrainConfig) (*Trained, error) {
	c := cfg.withDefaults()
	corpus, err := gamesim.RecordPlayerCorpus(spec, gamesim.CorpusConfig{
		Players:           c.Players,
		SessionsPerPlayer: c.SessionsPerPlayer,
		Seed:              c.Seed,
	})
	if err != nil {
		return nil, err
	}
	prof, err := profiler.Build(corpus, profiler.Config{K: len(spec.Clusters), Seed: c.Seed, Workers: c.Workers})
	if err != nil {
		return nil, err
	}
	strategy := dataset.StrategyFor(spec.Category)
	if c.ForceGlobal {
		strategy = dataset.Global
	}
	ex := &dataset.Extractor{P: prof}
	groups := dataset.Select(strategy, ex, corpus)
	// Runtime models serve any player, so pool the strategy's groups; the
	// strategy still shapes the samples (e.g. whole-playthrough chaining),
	// and Fig. 15's per-group evaluation lives in the experiments package.
	var all []dataset.Transition
	for _, g := range groups {
		all = append(all, g.Transitions...)
	}
	ds, err := dataset.ToDataset(all, prof.NumStageTypes())
	if err != nil {
		return nil, err
	}
	models, err := TrainModelsParallel(ds, c.Seed, c.Workers)
	if err != nil {
		return nil, err
	}
	t := &Trained{
		Spec: spec, Profile: prof, Models: models, Corpus: corpus,
		OfflineAccuracy: heldOutAccuracy(ds, c.Seed),
		TypicalCurve:    typicalCurve(corpus),
	}
	seen := map[int64]bool{}
	for _, tr := range corpus {
		if !seen[tr.Habit] {
			seen[tr.Habit] = true
			t.HabitPool = append(t.HabitPool, tr.Habit)
		}
	}
	sort.Slice(t.HabitPool, func(a, b int) bool { return t.HabitPool[a] < t.HabitPool[b] })

	// For the high-user-influence quadrants, also train dedicated models per
	// habit (per player for mobile, per cohort for MMORPG): returning
	// players get far more accurate predictions than the pooled model.
	if !c.ForceGlobal && (strategy == dataset.PerPlayer || strategy == dataset.Cohort) {
		byHabit := map[int64][]dataset.Transition{}
		for _, tr := range corpus {
			byHabit[tr.Habit] = append(byHabit[tr.Habit], ex.FromTrace(tr)...)
		}
		// Per-habit trainings are independent (each is seeded by
		// c.Seed+habit), so they fan out; the habit list is materialized
		// first because map iteration cannot be shared across goroutines.
		habits := make([]int64, 0, len(byHabit))
		for habit := range byHabit {
			habits = append(habits, habit)
		}
		sort.Slice(habits, func(a, b int) bool { return habits[a] < habits[b] })
		type habitResult struct {
			models []mlmodels.Classifier
			acc    float64
		}
		results := make([]*habitResult, len(habits))
		errs := make([]error, len(habits))
		parallel.For(c.Workers, len(habits), func(i int) {
			habit := habits[i]
			trans := byHabit[habit]
			if len(trans) < 6 {
				return // too little history for a dedicated model
			}
			hds, err := dataset.ToDataset(trans, prof.NumStageTypes())
			if err != nil {
				return
			}
			hm, err := TrainModels(hds, c.Seed+habit)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = &habitResult{models: hm, acc: heldOutAccuracy(hds, c.Seed+habit)}
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		t.HabitModels = map[int64][]mlmodels.Classifier{}
		t.HabitAccuracy = map[int64]float64{}
		for i, r := range results {
			if r == nil {
				continue
			}
			t.HabitModels[habits[i]] = r.models
			t.HabitAccuracy[habits[i]] = r.acc
		}
	}
	return t, nil
}

// typicalCurve averages the per-frame demand across corpus traces (up to
// the median trace length), yielding the expected footprint of a fresh
// session of this game.
func typicalCurve(corpus []*gamesim.Trace) []resources.Vector {
	if len(corpus) == 0 {
		return nil
	}
	lengths := make([]int, len(corpus))
	for i, tr := range corpus {
		lengths[i] = len(tr.Frames)
	}
	sort.Ints(lengths)
	n := lengths[len(lengths)/2]
	if n == 0 {
		return nil
	}
	curve := make([]resources.Vector, n)
	for f := 0; f < n; f++ {
		var sum resources.Vector
		cnt := 0
		for _, tr := range corpus {
			if f < len(tr.Frames) {
				sum = sum.Add(tr.Frames[f].Demand)
				cnt++
			}
		}
		curve[f] = sum.Scale(1 / float64(cnt))
	}
	return curve
}

// heldOutAccuracy trains a DTC on 75 % of the dataset and returns its
// accuracy on the remaining 25 % — the game's prediction-accuracy prior.
func heldOutAccuracy(ds *mlmodels.Dataset, seed int64) float64 {
	train, test := ds.Split(0.75, seed)
	if test.Len() == 0 {
		return 0.9
	}
	m := mlmodels.NewDecisionTree(mlmodels.TreeConfig{Seed: seed})
	if err := m.Fit(train); err != nil {
		return 0.9
	}
	acc, err := mlmodels.Evaluate(m, test)
	if err != nil {
		return 0.9
	}
	// Smooth toward an optimistic prior so a tiny held-out set cannot
	// declare the model useless (or perfect): Beta-style pseudo-counts
	// worth four observations at 0.85.
	const pseudo, prior = 4.0, 0.85
	n := float64(test.Len())
	return (pseudo*prior + acc*n) / (pseudo + n)
}

// NewSessionPredictor returns a fresh per-session predictor over the pooled
// models, with the game's measured accuracy as the Eq. 1 prior.
func (t *Trained) NewSessionPredictor(cfg Config) (*Predictor, error) {
	if cfg.PriorAccuracy <= 0 {
		cfg.PriorAccuracy = t.OfflineAccuracy
	}
	return New(t.Profile, t.Models, cfg)
}

// NewSessionPredictorForHabit returns a predictor using the habit's
// dedicated models when they exist, falling back to the pooled models for
// first-time players.
func (t *Trained) NewSessionPredictorForHabit(habit int64, cfg Config) (*Predictor, error) {
	if m, ok := t.HabitModels[habit]; ok {
		if cfg.PriorAccuracy <= 0 {
			if a, ok := t.HabitAccuracy[habit]; ok {
				cfg.PriorAccuracy = a
			}
		}
		return New(t.Profile, m, cfg)
	}
	return t.NewSessionPredictor(cfg)
}
