// Package predictor implements the ML-based stage predictor of Section IV-B:
// a real-time loop that every 5-second frame (1) collects telemetry, (2)
// judges whether the game stayed in its stage or hit a boundary, (3) predicts
// the next execution stage at each loading boundary with the active ML
// model, and (4) emits an allocation recommendation.
//
// It also implements the three dynamic-adjustment plans of Section IV-B2:
// the rehearsal callback (re-match on divergence, undo false loading
// detections), redundancy allocation S = (1-P)·M (Eq. 1), and model
// replacement after repeated errors.
package predictor

import (
	"errors"
	"fmt"

	"cocg/internal/dataset"
	"cocg/internal/mlmodels"
	"cocg/internal/profiler"
	"cocg/internal/resources"
	"cocg/internal/simclock"
	"cocg/internal/stats"
	"cocg/internal/telemetry"
)

// ErrNoModels is returned when a predictor is constructed without models.
var ErrNoModels = errors.New("predictor: no models")

// Config tunes the predictor's adjustment plans; zero values give the
// paper's behavior.
type Config struct {
	// DisableRedundancy turns Eq. 1 off (ablation).
	DisableRedundancy bool
	// FixedRedundancy, when > 0, replaces Eq. 1 with a flat percentage of
	// the game's peak (ablation).
	FixedRedundancy float64
	// SwitchThreshold is how many prediction errors accumulate before the
	// "replacing model" plan rotates to the next algorithm; <=0 means 4.
	SwitchThreshold int
	// PriorAccuracy is the offline-measured prediction accuracy used as the
	// Bayesian prior for Eq. 1's P before enough session observations
	// accumulate; <=0 means 0.9. Trained bundles fill it with the game's
	// measured accuracy.
	PriorAccuracy float64
	// SensorNoise is the per-second telemetry noise fed to the sampler.
	SensorNoise float64
	// Seed seeds the telemetry sampler.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SwitchThreshold <= 0 {
		c.SwitchThreshold = 4
	}
	if c.PriorAccuracy <= 0 {
		c.PriorAccuracy = 0.9
	}
	return c
}

// Decision is the predictor's output for one completed frame.
type Decision struct {
	// Event is the detector's conclusion for the frame.
	Event profiler.Event
	// Alloc is the recommended resource allocation for the next interval.
	Alloc resources.Vector
	// PredictedNext is the predicted next execution stage (valid when the
	// Event is a loading entry), else -1.
	PredictedNext int
	// Callback reports that the rehearsal callback fired this frame.
	Callback bool
	// ModelSwitched reports that the replacing-model plan rotated models.
	ModelSwitched bool
}

// Predictor is the per-session real-time predictor.
type Predictor struct {
	profile *profiler.Profile
	models  []mlmodels.Classifier
	active  int
	cfg     Config

	det     *profiler.Detector
	sampler *telemetry.Sampler

	hist      []dataset.StageObs
	pos       int // execution stage index within the session
	curID     int
	curFrames int
	curSum    resources.Vector

	predicted     int // stage predicted at the last loading boundary
	predictedFor  int // prediction made for the currently running stage
	prevStage     int // stage running before the current loading
	loadingFrames int
	// pendingScore holds the prediction for a just-entered stage while its
	// identification is tentative (the boundary frame); the settle step
	// narrows the allocation one frame later. Accuracy itself is scored
	// when the stage completes, against its final identification.
	pendingScore int
	entryFresh   bool

	acc       stats.Accuracy
	errStreak int
	alloc     resources.Vector
	peakM     resources.Vector
	haveStage bool
	// rev counts completed detection frames: every piece of state a demand
	// forecast reads (detector belief, stage history, running stage stats,
	// pending prediction, active model) mutates only inside step, so a
	// forecast is guaranteed unchanged while rev is unchanged. The
	// distributor's per-server forecast cache invalidates on it.
	rev uint64
	// featBuf backs predictNext's feature assembly across frames.
	featBuf []float64
	// recovering is set while the session runs on a re-matched stage after
	// a prediction or detection error; Section IV-B2 adds the redundancy S
	// to allocations made in that state ("the utilization of callback
	// resources cannot simply be set to a regular value"). A fresh
	// prediction cycle at the next loading boundary clears it.
	recovering bool
}

// New builds a predictor from a profile and trained models (tried in order
// by the replacing-model plan).
func New(p *profiler.Profile, models []mlmodels.Classifier, cfg Config) (*Predictor, error) {
	if len(models) == 0 {
		return nil, ErrNoModels
	}
	c := cfg.withDefaults()
	pr := &Predictor{
		profile:      p,
		models:       models,
		cfg:          c,
		det:          profiler.NewDetector(p),
		sampler:      telemetry.NewSampler(c.SensorNoise, c.Seed),
		predicted:    -1,
		predictedFor: -1,
		prevStage:    -1,
		pendingScore: -1,
		curID:        profiler.LoadingStageID,
		peakM:        p.PeakDemand(),
	}
	// Until the first stage is identified the safe allocation is the game's
	// peak — exactly what stage-unaware baselines always reserve.
	pr.alloc = pr.peakM
	return pr, nil
}

// ActiveModel returns the name of the model currently in use.
func (pr *Predictor) ActiveModel() string { return pr.models[pr.active].Name() }

// accPriorWeight is how many pseudo-observations the offline prior counts
// for when blending with the session's running accuracy.
const accPriorWeight = 10

// Accuracy returns the prediction accuracy P of Eq. 1: the offline-measured
// prior blended with the session's own observations, so one unlucky early
// transition does not blow the redundancy up to the full peak.
func (pr *Predictor) Accuracy() float64 {
	return (accPriorWeight*pr.cfg.PriorAccuracy + float64(pr.acc.Correct)) /
		(accPriorWeight + float64(pr.acc.Total))
}

// Alloc returns the current allocation recommendation.
func (pr *Predictor) Alloc() resources.Vector { return pr.alloc }

// redundancy computes the slack vector S of Eq. 1: S = (1-P) × M, where P is
// the running prediction accuracy and M the game's peak consumption.
func (pr *Predictor) redundancy() resources.Vector {
	if pr.cfg.DisableRedundancy {
		return resources.Zero
	}
	if pr.cfg.FixedRedundancy > 0 {
		return pr.peakM.Scale(pr.cfg.FixedRedundancy)
	}
	return pr.peakM.Scale(1 - pr.Accuracy())
}

// Headroom covering per-second demand variance that 5-second frames smooth
// away: the sustained peak is a frame-level statistic, so a multiplicative
// margin plus a small absolute floor (which matters for low-consumption
// games, where jitter is large relative to the level) keeps second-level
// jitter from dropping frames.
const (
	allocHeadroomScale = 1.08
	allocHeadroomAbs   = 2.0 // percent points
)

// stageAlloc is the allocation for a known stage: its observed sustained
// peak with second-level headroom, clamped to server capacity. While the
// predictor is recovering from an error, the Eq. 1 redundancy S is added on
// top.
func (pr *Predictor) stageAlloc(id int) resources.Vector {
	s, ok := pr.profile.Stage(id)
	if !ok {
		return pr.peakM
	}
	base := s.Peak.Scale(allocHeadroomScale).Add(resources.Uniform(allocHeadroomAbs))
	if pr.recovering {
		base = base.Add(pr.redundancy())
	}
	return base.Clamp(0, 100)
}

// Observe feeds one second of telemetry. When the second completes a frame,
// the full detection/prediction step runs and the resulting Decision is
// returned with ok = true.
func (pr *Predictor) Observe(util resources.Vector) (Decision, bool) {
	frame, ok := pr.sampler.Observe(util)
	if !ok {
		return Decision{}, false
	}
	return pr.step(frame), true
}

// step runs the stage-judgment / prediction / adjustment pipeline of Fig. 8
// on one frame.
func (pr *Predictor) step(frame resources.Vector) Decision {
	pr.rev++
	ev := pr.det.Observe(frame)
	d := Decision{Event: ev, PredictedNext: -1}

	switch ev.Kind {
	case profiler.EventSame:
		if ev.StageID == profiler.LoadingStageID {
			pr.loadingFrames++
		} else {
			pr.accumulate(frame)
		}

	case profiler.EventLoadingEntered:
		// A stage boundary. First score the prediction that was made for
		// the stage that just completed, against its final identification.
		if pr.haveStage && pr.predictedFor >= 0 {
			correct := pr.curID == pr.predictedFor
			pr.acc.Observe(correct)
			if correct {
				pr.errStreak = 0
			} else {
				pr.recordError(&d)
			}
		}
		pr.predictedFor = -1
		// Then close the finished stage, predict what comes next, and
		// pre-provision for it (Fig. 8's "resource adjustment": resources
		// are reassigned during loading so the next execution stage starts
		// fully covered). Without a prediction the safe cover is the game's
		// peak. A fresh prediction cycle ends any error recovery.
		pr.finishStage()
		pr.recovering = false
		pr.loadingFrames = 1
		d.PredictedNext = pr.predictNext()
		pr.predicted = d.PredictedNext
		load, _ := pr.profile.Stage(profiler.LoadingStageID)
		base := load.Peak.Scale(allocHeadroomScale).Add(resources.Uniform(allocHeadroomAbs))
		if d.PredictedNext >= 0 {
			base = base.Max(pr.stageAlloc(d.PredictedNext))
		} else {
			base = base.Max(pr.peakM)
		}
		pr.alloc = base.Clamp(0, 100)

	case profiler.EventStageEntered:
		entered := ev.StageID
		if pr.prevStage >= 0 && entered == pr.prevStage && pr.loadingFrames <= 1 {
			// Rehearsal callback, second error type: the "loading" was a
			// transient dip, not a stage switch. Return to the previous
			// stage's allocation and do not score the prediction.
			d.Callback = true
			pr.reopenStage(entered, frame)
		} else {
			// Identification is tentative on the boundary frame; the settle
			// step narrows the allocation one frame later, and accuracy is
			// scored when the stage completes.
			pr.pendingScore = pr.predicted
			pr.predictedFor = pr.predicted
			pr.entryFresh = true
			pr.openStage(entered, frame)
		}
		pr.predicted = -1
		// While the entry identification is tentative, keep covering the
		// predicted stage too; the settle step narrows the allocation.
		pr.alloc = pr.stageAlloc(pr.curID)
		if pr.pendingScore >= 0 {
			pr.alloc = pr.alloc.Max(pr.stageAlloc(pr.pendingScore))
		}

	case profiler.EventRefined:
		pr.curID = ev.StageID
		pr.accumulate(frame)
		pr.alloc = pr.stageAlloc(pr.curID)
		if s, ok := pr.profile.Stage(ev.StageID); ok && !s.Loading {
			pr.haveStage = true
		}

	case profiler.EventMismatch:
		// Rehearsal callback, first error type: real-time data diverged
		// from the believed stage and is not loading — re-match to the
		// best candidate immediately, with redundancy on the re-matched
		// allocation (Eq. 1).
		d.Callback = true
		pr.recovering = true
		pr.recordError(&d)
		if ev.Candidate >= 0 {
			pr.det.ForceStage(ev.Candidate)
			pr.curID = ev.Candidate
			pr.accumulate(frame)
			pr.alloc = pr.stageAlloc(pr.curID)
		} else {
			// No catalog match: hold the stage but provision for what we
			// actually observe plus redundancy.
			pr.accumulate(frame)
			pr.alloc = frame.Add(pr.redundancy()).Max(pr.alloc).Clamp(0, 100)
		}
	}
	// Settle the entry identification once it has survived (or been
	// corrected on) its first follow-up frame.
	if pr.entryFresh && ev.Kind != profiler.EventStageEntered {
		if pr.curID == pr.prevStage && pr.loadingFrames <= 1 && len(pr.hist) > 0 &&
			pr.hist[len(pr.hist)-1].ID == pr.curID {
			// The settled identification reveals a false loading detection
			// (a sub-frame dip): rejoin the interrupted stage — rehearsal
			// callback, second error type.
			d.Callback = true
			last := pr.hist[len(pr.hist)-1]
			pr.hist = pr.hist[:len(pr.hist)-1]
			pr.pos--
			pr.curFrames += last.Frames
			pr.curSum = pr.curSum.Add(last.Mean.Scale(float64(last.Frames)))
			if len(pr.hist) > 0 {
				pr.prevStage = pr.hist[len(pr.hist)-1].ID
			} else {
				pr.prevStage = -1
			}
		}
		// Identification settled: narrow the allocation to the stage the
		// game is actually in. A settled identity that contradicts the
		// prediction is an error — recover with redundancy.
		if pr.pendingScore >= 0 && pr.curID != pr.pendingScore {
			pr.recovering = true
		}
		pr.alloc = pr.stageAlloc(pr.curID)
		pr.pendingScore = -1
		pr.entryFresh = false
	}
	d.Alloc = pr.alloc
	return d
}

// accumulate folds a frame into the running stats of the current stage.
func (pr *Predictor) accumulate(frame resources.Vector) {
	pr.curFrames++
	pr.curSum = pr.curSum.Add(frame)
}

// openStage starts tracking a newly entered stage.
func (pr *Predictor) openStage(id int, frame resources.Vector) {
	pr.curID = id
	pr.curFrames = 0
	pr.curSum = resources.Zero
	pr.haveStage = true
	pr.accumulate(frame)
}

// reopenStage resumes the stage that a false loading detection interrupted.
func (pr *Predictor) reopenStage(id int, frame resources.Vector) {
	if len(pr.hist) > 0 && pr.hist[len(pr.hist)-1].ID == id {
		// Pull the stage back out of history and continue it.
		last := pr.hist[len(pr.hist)-1]
		pr.hist = pr.hist[:len(pr.hist)-1]
		pr.pos--
		pr.curID = last.ID
		pr.curFrames = last.Frames
		pr.curSum = last.Mean.Scale(float64(last.Frames))
		pr.haveStage = true
		pr.accumulate(frame)
		return
	}
	pr.openStage(id, frame)
}

// finishStage closes the current execution stage into the history.
func (pr *Predictor) finishStage() {
	if !pr.haveStage || pr.curFrames == 0 {
		return
	}
	pr.hist = append(pr.hist, dataset.StageObs{
		ID:     pr.curID,
		Frames: pr.curFrames,
		Mean:   pr.curSum.Scale(1 / float64(pr.curFrames)),
	})
	pr.prevStage = pr.curID
	pr.pos++
	pr.haveStage = false
	pr.curFrames = 0
	pr.curSum = resources.Zero
}

// predictNext runs the active model on the session's stage history. It
// returns -1 when there is no history yet.
func (pr *Predictor) predictNext() int {
	if len(pr.hist) == 0 {
		return -1
	}
	pr.featBuf = dataset.AppendFeatures(pr.featBuf, pr.hist, pr.pos-1)
	next, err := pr.models[pr.active].Predict(pr.featBuf)
	if err != nil || next < 0 || next >= pr.profile.NumStageTypes() {
		return -1
	}
	if s, ok := pr.profile.Stage(next); ok && s.Loading {
		return -1 // a model must never predict "loading" as the next stage
	}
	return next
}

// recordError applies the replacing-model plan: after SwitchThreshold
// accumulated errors the next algorithm takes over.
func (pr *Predictor) recordError(d *Decision) {
	pr.errStreak++
	if pr.errStreak >= pr.cfg.SwitchThreshold && len(pr.models) > 1 {
		pr.active = (pr.active + 1) % len(pr.models)
		pr.errStreak = 0
		d.ModelSwitched = true
	}
}

// PredictedAlloc returns what the predictor would reserve for a given stage —
// exposed for the distributor's look-ahead (Algorithm 1).
func (pr *Predictor) PredictedAlloc(stageID int) resources.Vector {
	return pr.stageAlloc(stageID)
}

// History returns a copy of the completed-stage history.
func (pr *Predictor) History() []dataset.StageObs {
	out := make([]dataset.StageObs, len(pr.hist))
	copy(out, pr.hist)
	return out
}

// PredictionLatency models the end-to-end latency of one prediction in the
// paper's deployment (Fig. 12): one telemetry frame to confirm the loading
// stage plus model-complexity-dependent inference and feature assembly. The
// paper measures 3-13 s, always below the 5-30 s loading times.
func PredictionLatency(m mlmodels.Classifier, catalogSize int) simclock.Seconds {
	base := 3 * simclock.Second
	var extra float64
	switch mm := m.(type) {
	case *mlmodels.DecisionTree:
		extra = 0.2 * float64(mm.Depth())
	case *mlmodels.RandomForest:
		extra = 0.08 * float64(mm.NumTrees())
	case *mlmodels.GBDT:
		extra = 0.1 * float64(mm.Rounds())
	default:
		extra = 2
	}
	extra += 0.2 * float64(catalogSize)
	lat := base + simclock.Seconds(extra)
	if lat > 13*simclock.Second {
		lat = 13 * simclock.Second
	}
	return lat
}

// TrainModels trains the paper's three algorithms (DTC, RF, GBDT) on one
// dataset and returns them in that order. It trains single-threaded; use
// TrainModelsParallel when the caller is not already fanned out.
func TrainModels(ds *mlmodels.Dataset, seed int64) ([]mlmodels.Classifier, error) {
	return TrainModelsParallel(ds, seed, 1)
}

// TrainModelsParallel is TrainModels with a worker budget for the RF tree
// bagging and GBDT per-round fan-out; <= 0 means GOMAXPROCS. The trained
// models are identical at every worker count.
func TrainModelsParallel(ds *mlmodels.Dataset, seed int64, workers int) ([]mlmodels.Classifier, error) {
	models := []mlmodels.Classifier{
		mlmodels.NewDecisionTree(mlmodels.TreeConfig{Seed: seed, Workers: workers}),
		mlmodels.NewRandomForest(mlmodels.ForestConfig{NumTrees: 40, Seed: seed, Workers: workers}),
		mlmodels.NewGBDT(mlmodels.GBDTConfig{NumRounds: 40, Seed: seed, Workers: workers}),
	}
	for _, m := range models {
		if err := m.Fit(ds); err != nil {
			return nil, fmt.Errorf("predictor: training %s: %w", m.Name(), err)
		}
	}
	return models, nil
}
