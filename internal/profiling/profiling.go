// Package profiling wires the runtime/pprof CPU and heap profilers behind
// command-line flags, so full-scale binary runs can be profiled without
// editing code. Commands call Start once after flag parsing and the returned
// stop function once after the workload; both paths are optional and an
// empty path disables that profile.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath when it is non-empty. The returned
// stop function ends the CPU profile and, when memPath is non-empty, forces a
// GC and writes an allocation (heap) profile there. Call stop exactly once,
// after the workload finishes; deferring it from main is not enough when the
// program exits through os.Exit, so commands should call it on every path.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// Materialize pending frees so the heap profile reflects live
			// objects, matching `go test -memprofile` behavior.
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("profiling: write heap profile: %w", werr)
			}
			if cerr != nil {
				return fmt.Errorf("profiling: close heap profile: %w", cerr)
			}
		}
		return nil
	}, nil
}
