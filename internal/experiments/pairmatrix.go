package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

// PairMatrixRow is one two-game combination's outcome under CoCG.
type PairMatrixRow struct {
	A, B string
	// CoLocated reports whether the two games ever actually shared the
	// server.
	CoLocated bool
	// CoResidencySec counts seconds with both games running together.
	CoResidencySec int
	Throughput     float64
	Degraded       float64
}

// PairMatrixResult reproduces Section V-B2's survey: all ten pairings of the
// five games, with CoCG deciding which can share a server. The paper notes
// "there are multiple situations where both games consume a lot of resources
// for a long time and cannot run on the same machine" — those rows show no
// co-residency.
type PairMatrixResult struct {
	Rows []PairMatrixRow
}

// PairMatrix runs every unordered pair under CoCG.
func PairMatrix(ctx *Context) (*PairMatrixResult, error) {
	games := gamesim.AllGames()
	// Pairings run the full experiment window: the heaviest pairs (Genshin,
	// DMC) only complete sessions late, and a shorter window can close with
	// zero finished records for them.
	horizon := ctx.horizon()
	ref := ctx.refDurations()
	out := &PairMatrixResult{}
	for i := 0; i < len(games); i++ {
		for j := i + 1; j < len(games); j++ {
			a, b := games[i], games[j]
			c := ctx.System.NewCluster(1, core.PolicyCoCG)
			c.StarveLimit = 5 * simclock.Minute
			gen := ctx.System.Generator(ctx.Opt.Seed + int64(i*10+j))
			stream := &workload.PairStream{Gen: gen, A: a, B: b, Backlog: 1}
			row := PairMatrixRow{A: a.Name, B: b.Name}
			for t := simclock.Seconds(0); t < horizon; t++ {
				stream.Feed(c)
				c.Tick()
				hasA, hasB := false, false
				for _, h := range c.Servers[0].Hosted {
					switch h.Spec.Name {
					case a.Name:
						hasA = true
					case b.Name:
						hasB = true
					}
				}
				if hasA && hasB {
					row.CoResidencySec++
				}
			}
			recs := c.Records()
			row.CoLocated = row.CoResidencySec > 0
			row.Throughput = platform.Throughput(recs, ref)
			for _, r := range recs {
				row.Degraded += r.Degraded
			}
			if len(recs) > 0 {
				row.Degraded /= float64(len(recs))
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// String renders the matrix.
func (r *PairMatrixResult) String() string {
	var b strings.Builder
	b.WriteString("Section V-B2: all ten game pairings under CoCG\n")
	t := &table{header: []string{"pair", "co-located", "co-residency", "throughput", "degraded"}}
	for _, row := range r.Rows {
		co := "no"
		if row.CoLocated {
			co = "yes"
		}
		t.add(fmt.Sprintf("%s + %s", shortName(row.A), shortName(row.B)),
			co, simclock.Seconds(row.CoResidencySec).String(),
			fmt.Sprintf("%.0f", row.Throughput), pct(row.Degraded))
	}
	b.WriteString(t.String())
	return b.String()
}
