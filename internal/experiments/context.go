// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated platform. Each experiment returns
// a structured result whose String method renders the same rows or series
// the paper reports; EXPERIMENTS.md records paper-vs-measured for each.
//
// Concurrency contract: every experiment treats the shared Context (and the
// trained System inside it) as read-only, so independent experiments may run
// concurrently over one Context — cmd/cocg does exactly that behind its
// -jobs flag. Experiments that need mutable training state (OnlineLearning)
// clone the bundle they touch first. Each experiment derives all of its
// randomness from Options.Seed plus experiment-specific offsets, never from
// shared RNGs, so results are identical regardless of which experiments run,
// in what order, or on how many goroutines.
package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/simclock"
)

// Options shapes an experiment run.
type Options struct {
	// Seed makes the whole run reproducible.
	Seed int64
	// Fast shrinks corpus sizes and durations for smoke tests and
	// benchmarks; full runs reproduce the paper's two-hour windows.
	Fast bool
	// Jobs bounds the goroutines used for offline training and within
	// experiments; <= 0 means GOMAXPROCS. Results do not depend on it.
	Jobs int
}

// Context caches the expensive offline training pass across experiments.
type Context struct {
	Opt    Options
	System *core.System
}

// NewContext trains the full five-game system once.
func NewContext(opt Options) (*Context, error) {
	players, sessions := 12, 4
	if opt.Fast {
		players, sessions = 6, 2
	}
	sys, err := core.Train(gamesim.AllGames(), core.TrainOptions{
		Players:           players,
		SessionsPerPlayer: sessions,
		Seed:              opt.Seed + 31,
		Workers:           opt.Jobs,
	})
	if err != nil {
		return nil, err
	}
	return &Context{Opt: opt, System: sys}, nil
}

// workers is the per-experiment goroutine budget.
func (c *Context) workers() int { return c.Opt.Jobs }

// horizon returns the co-location experiment duration: the paper's two
// hours, or twenty minutes in fast mode.
func (c *Context) horizon() simclock.Seconds {
	if c.Opt.Fast {
		return 20 * simclock.Minute
	}
	return 2 * simclock.Hour
}

// refDurations returns each game's unimpeded mean session length (from the
// profiling corpus) — the S_i of Eq. 2.
func (c *Context) refDurations() map[string]float64 {
	out := map[string]float64{}
	for _, game := range c.System.Games() {
		b, _ := c.System.Bundle(game)
		var sum float64
		for _, tr := range b.Corpus {
			sum += float64(len(tr.Seconds))
		}
		if len(b.Corpus) > 0 {
			out[game] = sum / float64(len(b.Corpus))
		}
	}
	return out
}

// table is a tiny fixed-width table renderer shared by the experiments.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
