package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/stats"
	"cocg/internal/workload"
)

// Fig9Result reproduces Fig. 9: Genshin Impact and DOTA2 co-located on one
// server under CoCG.
type Fig9Result struct {
	// MaxGenshin/MaxDOTA2 are each game's highest granted utilization
	// (dominant dimension); the paper reports 78 % and 43 % for its run.
	MaxGenshin float64
	MaxDOTA2   float64
	// MaxTotal is the highest combined utilization; the paper keeps it
	// under 95 %.
	MaxTotal float64
	// Sustained* are 95th-percentile utilizations: transient bursts that
	// the work-conserving platform absorbs are excluded, matching the
	// smoothed curves the paper plots.
	SustainedGenshin float64
	SustainedDOTA2   float64
	SustainedTotal   float64
	// LoadStolenSec sums the loading seconds the regulator stole.
	LoadStolenSec float64
	Summary       platform.QoSSummary
	Throughput    float64
	// Series samples (genshin, dota2, total) dominant utilization per
	// frame for plotting.
	Series [][3]float64
}

// Fig9 runs the two-game co-location and records the utilization timeline.
func Fig9(ctx *Context) (*Fig9Result, error) {
	ga, do := gamesim.GenshinImpact(), gamesim.DOTA2()
	c := ctx.System.NewCluster(1, core.PolicyCoCG)
	c.StarveLimit = 5 * simclock.Minute
	gen := ctx.System.Generator(ctx.Opt.Seed + 5)
	stream := &workload.PairStream{Gen: gen, A: ga, B: do, Backlog: 1}
	out := &Fig9Result{}
	horizon := ctx.horizon()
	for i := simclock.Seconds(0); i < horizon; i++ {
		stream.Feed(c)
		c.Tick()
		if !simclock.IsFrameBoundary(c.Clock.Now()) {
			continue
		}
		var g, d float64
		for _, h := range c.Servers[0].Hosted {
			u := h.Granted.Dominant()
			switch h.Spec.Name {
			case ga.Name:
				if u > 0 {
					g = u
				}
			case do.Name:
				if u > 0 {
					d = u
				}
			}
		}
		total := c.Servers[0].Utilization().Dominant()
		out.Series = append(out.Series, [3]float64{g, d, total})
		if g > out.MaxGenshin {
			out.MaxGenshin = g
		}
		if d > out.MaxDOTA2 {
			out.MaxDOTA2 = d
		}
		if total > out.MaxTotal {
			out.MaxTotal = total
		}
	}
	recs := c.Records()
	out.Summary = platform.Summarize(recs)
	out.Throughput = platform.Throughput(recs, ctx.refDurations())
	for _, r := range recs {
		out.LoadStolenSec += r.LoadStolen
	}
	var gs, ds, ts []float64
	for _, p := range out.Series {
		if p[0] > 0 {
			gs = append(gs, p[0])
		}
		if p[1] > 0 {
			ds = append(ds, p[1])
		}
		if p[2] > 0 {
			ts = append(ts, p[2])
		}
	}
	out.SustainedGenshin = stats.Percentile(gs, 95)
	out.SustainedDOTA2 = stats.Percentile(ds, 95)
	out.SustainedTotal = stats.Percentile(ts, 95)
	return out, nil
}

// String renders the co-location summary.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9: co-location of Genshin Impact and DOTA2 under CoCG\n")
	fmt.Fprintf(&b, "  max Genshin util: %s   max DOTA2 util: %s   max combined: %s\n",
		f1(r.MaxGenshin), f1(r.MaxDOTA2), f1(r.MaxTotal))
	fmt.Fprintf(&b, "  sustained (p95): Genshin %s, DOTA2 %s, combined %s (paper: 78%%, 43%%, <95%%)\n",
		f1(r.SustainedGenshin), f1(r.SustainedDOTA2), f1(r.SustainedTotal))
	fmt.Fprintf(&b, "  loading time stolen by regulator: %.0f s\n", r.LoadStolenSec)
	fmt.Fprintf(&b, "  %s  throughput=%.0f\n", r.Summary, r.Throughput)
	return b.String()
}

// Fig11Cell is one (pair, policy) outcome.
type Fig11Cell struct {
	Policy     string
	Throughput float64
	Completed  map[string]int
	// PerfLossSec is the total degraded execution time across sessions —
	// Fig. 11's "total duration of performance loss".
	PerfLossSec float64
	QoS         platform.QoSSummary
}

// Fig11Pair is one two-game combination's results across policies.
type Fig11Pair struct {
	A, B  string
	Cells []Fig11Cell
}

// Fig11Result reproduces Fig. 11: throughput of three representative game
// pairs under VBP, GAugur, and CoCG over a two-hour window; the paper
// reports CoCG's throughput 23.7 % above the others.
type Fig11Result struct {
	Pairs []Fig11Pair
	// Improvement is CoCG's total throughput over the best baseline total.
	Improvement float64
}

// fig11Pairs are the paper's three representative combinations.
func fig11Pairs() [][2]*gamesim.GameSpec {
	return [][2]*gamesim.GameSpec{
		{gamesim.DOTA2(), gamesim.DevilMayCry()},
		{gamesim.CSGO(), gamesim.GenshinImpact()},
		{gamesim.GenshinImpact(), gamesim.Contra()},
	}
}

// Fig11 runs every pair under every policy.
func Fig11(ctx *Context) (*Fig11Result, error) {
	out := &Fig11Result{}
	policies := []core.PolicyKind{core.PolicyVBP, core.PolicyGAugur, core.PolicyReactive, core.PolicyCoCG}
	totals := map[string]float64{}
	horizon := ctx.horizon()
	for pi, pair := range fig11Pairs() {
		p := Fig11Pair{A: pair[0].Name, B: pair[1].Name}
		for _, kind := range policies {
			c := ctx.System.NewCluster(1, kind)
			c.StarveLimit = 5 * simclock.Minute
			gen := ctx.System.Generator(ctx.Opt.Seed + int64(100+pi))
			stream := &workload.PairStream{Gen: gen, A: pair[0], B: pair[1], Backlog: 1}
			for i := simclock.Seconds(0); i < horizon; i++ {
				stream.Feed(c)
				c.Tick()
			}
			recs := c.Records()
			cell := Fig11Cell{
				Policy:     kind.String(),
				Throughput: platform.Throughput(recs, ctx.refDurations()),
				Completed:  map[string]int{},
				QoS:        platform.Summarize(recs),
			}
			for _, r := range recs {
				cell.Completed[r.Game]++
				cell.PerfLossSec += r.Degraded * float64(r.ExecSeconds)
			}
			totals[kind.String()] += cell.Throughput
			p.Cells = append(p.Cells, cell)
		}
		out.Pairs = append(out.Pairs, p)
	}
	// The paper's Fig. 11 compares against VBP and GAugur; the Reactive
	// ("improved version") column is reported for completeness but is not
	// part of the headline improvement.
	bestBaseline := totals["VBP"]
	if totals["GAugur"] > bestBaseline {
		bestBaseline = totals["GAugur"]
	}
	if bestBaseline > 0 {
		out.Improvement = totals["CoCG"]/bestBaseline - 1
	}
	return out, nil
}

// String renders the throughput matrix.
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 11: throughput of game co-location (Eq. 2) over the run window\n")
	t := &table{header: []string{"Pair", "Policy", "throughput", "completions", "perf-loss (s)", "degraded"}}
	for _, p := range r.Pairs {
		for _, c := range p.Cells {
			games := make([]string, 0, len(c.Completed))
			for g := range c.Completed {
				games = append(games, g)
			}
			sort.Strings(games)
			comp := make([]string, 0, len(games))
			for _, g := range games {
				comp = append(comp, fmt.Sprintf("%s:%d", shortName(g), c.Completed[g]))
			}
			t.add(fmt.Sprintf("%s + %s", shortName(p.A), shortName(p.B)),
				c.Policy, fmt.Sprintf("%.0f", c.Throughput),
				strings.Join(comp, " "), fmt.Sprintf("%.0f", c.PerfLossSec),
				pct(c.QoS.MeanDegraded))
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "CoCG total throughput vs best baseline: %+.1f%% (paper: +23.7%%)\n", 100*r.Improvement)
	return b.String()
}

func shortName(g string) string {
	switch g {
	case "Genshin Impact":
		return "Genshin"
	case "Devil May Cry":
		return "DMC"
	default:
		return g
	}
}

// Fig13Row is one game's QoS under one policy.
type Fig13Row struct {
	Game     string
	Policy   string
	FPSRatio float64 // fraction of the game's best achievable FPS
	GoodFPS  float64 // fraction of exec time at >= 30 FPS
	Sessions int
}

// Fig13Result reproduces Fig. 13: FPS of co-located games under CoCG versus
// GAugur. The paper reports 78 % of best FPS for CoCG and 43 % for GAugur.
type Fig13Result struct {
	Rows []Fig13Row
	// MeanCoCG and MeanGAugur are the cross-game mean FPS ratios.
	MeanCoCG   float64
	MeanGAugur float64
}

// Fig13 co-locates the four big games on a two-server cluster under each
// policy and measures achieved FPS against each game's best.
func Fig13(ctx *Context) (*Fig13Result, error) {
	games := []*gamesim.GameSpec{
		gamesim.DOTA2(), gamesim.CSGO(), gamesim.GenshinImpact(), gamesim.DevilMayCry(),
	}
	out := &Fig13Result{}
	horizon := ctx.horizon()
	for _, kind := range []core.PolicyKind{core.PolicyCoCG, core.PolicyGAugur} {
		c := ctx.System.NewCluster(2, kind)
		c.StarveLimit = 5 * simclock.Minute
		gen := ctx.System.Generator(ctx.Opt.Seed + 13)
		streams := []*workload.PairStream{
			{Gen: gen, A: games[0], B: games[1], Backlog: 1},
			{Gen: gen, A: games[2], B: games[3], Backlog: 1},
		}
		for i := simclock.Seconds(0); i < horizon; i++ {
			for _, s := range streams {
				s.Feed(c)
			}
			c.Tick()
		}
		byGame := map[string][]platform.Record{}
		for _, r := range c.Records() {
			byGame[r.Game] = append(byGame[r.Game], r)
		}
		var sum float64
		var n int
		for _, g := range games {
			recs := byGame[g.Name]
			row := Fig13Row{Game: g.Name, Policy: kind.String(), Sessions: len(recs)}
			for _, r := range recs {
				row.FPSRatio += r.FPSRatio
				row.GoodFPS += r.GoodFPSFrac
			}
			if len(recs) > 0 {
				row.FPSRatio /= float64(len(recs))
				row.GoodFPS /= float64(len(recs))
				sum += row.FPSRatio
				n++
			}
			out.Rows = append(out.Rows, row)
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		if kind == core.PolicyCoCG {
			out.MeanCoCG = mean
		} else {
			out.MeanGAugur = mean
		}
	}
	return out, nil
}

// String renders the FPS comparison.
func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 13: FPS of co-located games (fraction of each game's best)\n")
	t := &table{header: []string{"Game", "Policy", "FPS ratio", ">=30fps time", "sessions"}}
	for _, row := range r.Rows {
		t.add(row.Game, row.Policy, pct(row.FPSRatio), pct(row.GoodFPS), fmt.Sprint(row.Sessions))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean FPS ratio: CoCG %s vs GAugur %s (paper: 78%% vs 43%%)\n",
		pct(r.MeanCoCG), pct(r.MeanGAugur))
	return b.String()
}
