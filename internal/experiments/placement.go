package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

// firstFit hides the CoCG policy's Scorer so the cluster falls back to
// first-fit placement; admission and regulation are unchanged.
type firstFit struct {
	platform.Policy
}

// PlacementRow is one placement strategy's outcome.
type PlacementRow struct {
	Strategy   string
	Throughput float64
	Sessions   int
	Degraded   float64
}

// PlacementAblationResult compares best-fit (score by predicted
// complementarity) against first-fit placement over a multi-server cluster —
// the distributor design choice in Algorithm 1's surrounding text.
type PlacementAblationResult struct {
	Rows []PlacementRow
}

// PlacementAblation runs the same mixed stream under both strategies.
func PlacementAblation(ctx *Context) (*PlacementAblationResult, error) {
	out := &PlacementAblationResult{}
	horizon := ctx.horizon() / 2
	ref := ctx.refDurations()
	for _, strat := range []string{"best-fit", "first-fit"} {
		pol := ctx.System.Policy(core.PolicyCoCG)
		if strat == "first-fit" {
			pol = &firstFit{Policy: pol}
		}
		c := platform.NewCluster(3, pol)
		c.StarveLimit = 5 * simclock.Minute
		gen := ctx.System.Generator(ctx.Opt.Seed + 23)
		stream := workload.NewMixStream(gen, gamesim.AllGames(), 0.025, ctx.Opt.Seed+29)
		for i := simclock.Seconds(0); i < horizon; i++ {
			stream.Feed(c)
			c.Tick()
		}
		recs := c.Records()
		row := PlacementRow{Strategy: strat, Sessions: len(recs)}
		row.Throughput = platform.Throughput(recs, ref)
		for _, r := range recs {
			row.Degraded += r.Degraded
		}
		if len(recs) > 0 {
			row.Degraded /= float64(len(recs))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the comparison.
func (r *PlacementAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: distributor placement — best-fit (complementarity score) vs first-fit\n")
	t := &table{header: []string{"strategy", "throughput", "sessions", "degraded"}}
	for _, row := range r.Rows {
		t.add(row.Strategy, fmt.Sprintf("%.0f", row.Throughput), fmt.Sprint(row.Sessions), pct(row.Degraded))
	}
	b.WriteString(t.String())
	return b.String()
}
