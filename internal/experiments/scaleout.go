package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

// ScaleOutRow is one cluster size's outcome.
type ScaleOutRow struct {
	Servers    int
	Throughput float64
	Sessions   int
	MeanFPS    float64
	MeanP5FPS  float64
	Degraded   float64
	// PerServer is throughput normalized by server count: flat means the
	// approach scales.
	PerServer float64
}

// ScaleOutResult backs Section IV-D's discussion: the stage structure is
// platform-independent, so the same trained system drives ever larger
// clusters with flat per-server efficiency.
type ScaleOutResult struct {
	Rows []ScaleOutRow
}

// ScaleOut runs the mixed five-game stream over growing clusters under CoCG,
// with the arrival rate proportional to capacity.
func ScaleOut(ctx *Context) (*ScaleOutResult, error) {
	sizes := []int{1, 2, 4, 8}
	horizon := ctx.horizon() / 2
	baseRate := 0.008 // arrivals/sec per server: near saturation
	out := &ScaleOutResult{}
	ref := ctx.refDurations()
	for _, n := range sizes {
		c := ctx.System.NewCluster(n, core.PolicyCoCG)
		c.StarveLimit = 5 * simclock.Minute
		// Placement fans out over the experiment's worker budget; every job
		// count places identically (see platform.Cluster.Jobs), so this only
		// changes wall-clock, never a figure.
		c.Jobs = ctx.workers()
		gen := ctx.System.Generator(ctx.Opt.Seed + int64(n))
		stream := workload.NewMixStream(gen, gamesim.AllGames(), baseRate*float64(n), ctx.Opt.Seed+int64(10*n))
		for i := simclock.Seconds(0); i < horizon; i++ {
			stream.Feed(c)
			c.Tick()
		}
		recs := c.Records()
		row := ScaleOutRow{Servers: n, Sessions: len(recs)}
		row.Throughput = platform.Throughput(recs, ref)
		row.PerServer = row.Throughput / float64(n)
		var fps, p5, deg float64
		for _, r := range recs {
			fps += r.FPSRatio
			p5 += r.P5FPS
			deg += r.Degraded
		}
		if len(recs) > 0 {
			k := float64(len(recs))
			row.MeanFPS = fps / k
			row.MeanP5FPS = p5 / k
			row.Degraded = deg / k
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the scale-out table.
func (r *ScaleOutResult) String() string {
	var b strings.Builder
	b.WriteString("Scale-out (Section IV-D): CoCG over growing clusters, load proportional to size\n")
	t := &table{header: []string{"servers", "throughput", "per-server", "sessions", "FPS ratio", "p5 FPS", "degraded"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.Servers), fmt.Sprintf("%.0f", row.Throughput),
			fmt.Sprintf("%.0f", row.PerServer), fmt.Sprint(row.Sessions),
			pct(row.MeanFPS), f1(row.MeanP5FPS), pct(row.Degraded))
	}
	b.WriteString(t.String())
	return b.String()
}
