package experiments

import (
	"fmt"
	"testing"

	"cocg/internal/parallel"
)

// harness lists every experiment the cmd/cocg driver can run, in its
// presentation order, so the determinism test exercises the same job set.
var harness = []struct {
	name string
	run  func(*Context) (fmt.Stringer, error)
}{
	{"table1", func(c *Context) (fmt.Stringer, error) { return TableI(c) }},
	{"fig2", func(c *Context) (fmt.Stringer, error) { return Fig2(c) }},
	{"fig5", func(c *Context) (fmt.Stringer, error) { return Fig5(c) }},
	{"fig6", func(c *Context) (fmt.Stringer, error) { return Fig6(c) }},
	{"fig9", func(c *Context) (fmt.Stringer, error) { return Fig9(c) }},
	{"fig10", func(c *Context) (fmt.Stringer, error) { return Fig10(c) }},
	{"fig11", func(c *Context) (fmt.Stringer, error) { return Fig11(c) }},
	{"fig12", func(c *Context) (fmt.Stringer, error) { return Fig12(c) }},
	{"fig13", func(c *Context) (fmt.Stringer, error) { return Fig13(c) }},
	{"fig14", func(c *Context) (fmt.Stringer, error) { return Fig14(c) }},
	{"fig15", func(c *Context) (fmt.Stringer, error) { return Fig15(c) }},
	{"pairs", func(c *Context) (fmt.Stringer, error) { return PairMatrix(c) }},
	{"scaleout", func(c *Context) (fmt.Stringer, error) { return ScaleOut(c) }},
	{"online", func(c *Context) (fmt.Stringer, error) { return OnlineLearning(c) }},
	{"ablation-category", func(c *Context) (fmt.Stringer, error) { return CategoryAblation(c) }},
	{"ablation-redundancy", func(c *Context) (fmt.Stringer, error) { return RedundancyAblation(c) }},
	{"ablation-steal", func(c *Context) (fmt.Stringer, error) { return LoadingStealAblation(c) }},
	{"ablation-interval", func(c *Context) (fmt.Stringer, error) { return FrameIntervalAblation(c) }},
	{"ablation-placement", func(c *Context) (fmt.Stringer, error) { return PlacementAblation(c) }},
}

// runHarness renders every experiment, either serially or as concurrent
// jobs over the shared context — the same fan-out cmd/cocg performs.
func runHarness(t *testing.T, ctx *Context, jobs int) map[string]string {
	t.Helper()
	out := make([]string, len(harness))
	g := parallel.NewGroup(jobs)
	for i := range harness {
		i := i
		g.Go(func() error {
			res, err := harness[i].run(ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", harness[i].name, err)
			}
			out[i] = res.String()
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	for i, h := range harness {
		m[h.name] = out[i]
	}
	return m
}

// TestHarnessDeterministicAcrossJobCounts is the acceptance gate for the
// parallel pipeline: a fixed seed must render every experiment identically
// whether the system trains and runs with 1 worker or 8, and whether the
// experiments execute one at a time or concurrently over a shared context.
func TestHarnessDeterministicAcrossJobCounts(t *testing.T) {
	const seed = 17
	ctx1, err := NewContext(Options{Seed: seed, Fast: true, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx8, err := NewContext(Options{Seed: seed, Fast: true, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial := runHarness(t, ctx1, 1)
	parallel8 := runHarness(t, ctx8, 8)
	for _, h := range harness {
		if serial[h.name] != parallel8[h.name] {
			t.Errorf("%s renders differently at jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				h.name, serial[h.name], parallel8[h.name])
		}
	}
	// A re-run over the already-used jobs=8 context must also match: no
	// experiment may have mutated shared state.
	again := runHarness(t, ctx8, 8)
	for _, h := range harness {
		if again[h.name] != parallel8[h.name] {
			t.Errorf("%s is not idempotent over a shared context", h.name)
		}
	}
}
