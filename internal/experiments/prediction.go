package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/dataset"
	"cocg/internal/gamesim"
	"cocg/internal/mlmodels"
	"cocg/internal/parallel"
	"cocg/internal/predictor"
)

// Fig15Row is one game's per-algorithm accuracy.
type Fig15Row struct {
	Game     string
	Strategy string
	Accuracy map[string]float64 // by model name
	Samples  int
}

// Fig15Result reproduces Fig. 15: next-stage prediction accuracy of DTC, RF,
// and GBDT per game, trained with the category's sample-selection strategy
// on a 75/25 split.
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15 evaluates all three algorithms per game. Groups (players, cohorts)
// are split and scored independently; accuracies aggregate over groups
// weighted by test size, matching how the paper trains "a training set for
// each individual player".
func Fig15(ctx *Context) (*Fig15Result, error) {
	games := ctx.System.Games()
	rows := make([]Fig15Row, len(games))
	errs := make([]error, len(games))
	// Games evaluate independently, so they fan out; each game's group loop
	// stays serial, keeping its accuracy accumulation order (and therefore
	// the floating-point result) fixed at every worker count.
	parallel.For(ctx.workers(), len(games), func(g int) {
		game := games[g]
		b, _ := ctx.System.Bundle(game)
		strategy := dataset.StrategyFor(b.Spec.Category)
		ex := &dataset.Extractor{P: b.Profile}
		groups := dataset.Select(strategy, ex, b.Corpus)
		row := Fig15Row{
			Game:     game,
			Strategy: strategy.String(),
			Accuracy: map[string]float64{},
		}
		correct := map[string]float64{}
		total := 0
		// One evaluation scratch per game goroutine: every model and group
		// scores through the batch-predict path over the same reused
		// buffers.
		var scratch mlmodels.EvalScratch
		for gi, grp := range groups {
			if len(grp.Transitions) < minGroup(ctx) {
				continue
			}
			ds, err := dataset.ToDataset(grp.Transitions, b.Profile.NumStageTypes())
			if err != nil {
				continue
			}
			train, test := ds.Split(0.75, ctx.Opt.Seed+int64(gi))
			if test.Len() == 0 {
				continue
			}
			models, err := predictor.TrainModels(train, ctx.Opt.Seed+int64(gi))
			if err != nil {
				errs[g] = err
				return
			}
			for _, m := range models {
				acc, err := scratch.Evaluate(m, test)
				if err != nil {
					errs[g] = err
					return
				}
				correct[m.Name()] += acc * float64(test.Len())
			}
			total += test.Len()
		}
		if total > 0 {
			for name, c := range correct {
				row.Accuracy[name] = c / float64(total)
			}
		}
		row.Samples = total
		rows[g] = row
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Fig15Result{Rows: rows}, nil
}

// String renders the accuracy table.
func (r *Fig15Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 15: next-stage prediction accuracy (75/25 split, category-aware samples)\n")
	t := &table{header: []string{"Game", "strategy", "DTC", "RF", "GBDT", "test samples"}}
	for _, row := range r.Rows {
		t.add(row.Game, row.Strategy,
			pct(row.Accuracy["DTC"]), pct(row.Accuracy["RF"]), pct(row.Accuracy["GBDT"]),
			fmt.Sprint(row.Samples))
	}
	b.WriteString(t.String())
	b.WriteString("(paper: DTC above 92% for most games; Genshin Impact harder for DTC/RF, GBDT steadier)\n")
	return b.String()
}

// minGroup is the smallest per-group sample count worth training on: below
// eight transitions the 75/25 split leaves a test set too small to score
// meaningfully, so such groups are skipped in both fast and full mode.
func minGroup(_ *Context) int { return 8 }

// CategoryAblationRow compares category-aware training against pooled-global
// training for one game.
type CategoryAblationRow struct {
	Game        string
	CategoryAcc float64
	GlobalAcc   float64
}

// CategoryAblationResult quantifies the value of Fig. 7's sample-selection
// design: per-category strategies versus a single global pool.
type CategoryAblationResult struct {
	Rows []CategoryAblationRow
}

// CategoryAblation evaluates DTC accuracy under both selection regimes.
func CategoryAblation(ctx *Context) (*CategoryAblationResult, error) {
	out := &CategoryAblationResult{}
	for _, game := range ctx.System.Games() {
		b, _ := ctx.System.Bundle(game)
		ex := &dataset.Extractor{P: b.Profile}
		catAcc, err := strategyAccuracy(ctx, b.Corpus, ex, dataset.StrategyFor(b.Spec.Category), b.Profile.NumStageTypes())
		if err != nil {
			return nil, err
		}
		globAcc, err := strategyAccuracy(ctx, b.Corpus, ex, dataset.Global, b.Profile.NumStageTypes())
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, CategoryAblationRow{Game: game, CategoryAcc: catAcc, GlobalAcc: globAcc})
	}
	return out, nil
}

// strategyAccuracy scores the weighted DTC accuracy under one strategy.
func strategyAccuracy(ctx *Context, corpus []*gamesim.Trace, ex *dataset.Extractor,
	strategy dataset.Strategy, numClasses int) (float64, error) {

	groups := dataset.Select(strategy, ex, corpus)
	var correct float64
	total := 0
	var scratch mlmodels.EvalScratch
	for gi, g := range groups {
		if len(g.Transitions) < minGroup(ctx) {
			continue
		}
		ds, err := dataset.ToDataset(g.Transitions, numClasses)
		if err != nil {
			continue
		}
		train, test := ds.Split(0.75, ctx.Opt.Seed+int64(gi))
		if test.Len() == 0 {
			continue
		}
		m := mlmodels.NewDecisionTree(mlmodels.TreeConfig{Seed: ctx.Opt.Seed})
		if err := m.Fit(train); err != nil {
			return 0, err
		}
		acc, err := scratch.Evaluate(m, test)
		if err != nil {
			return 0, err
		}
		correct += acc * float64(test.Len())
		total += test.Len()
	}
	if total == 0 {
		return 0, nil
	}
	return correct / float64(total), nil
}

// String renders the ablation.
func (r *CategoryAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: category-aware sample selection vs global pooling (DTC accuracy)\n")
	t := &table{header: []string{"Game", "category-aware", "global"}}
	for _, row := range r.Rows {
		t.add(row.Game, pct(row.CategoryAcc), pct(row.GlobalAcc))
	}
	b.WriteString(t.String())
	return b.String()
}
