package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/gamesim"
	"cocg/internal/profiler"
)

// TableIRow is one script row of Table I.
type TableIRow struct {
	Game        string
	Script      string
	Description string
	// SpecTypes is the ground-truth stage-type count of the script;
	// ProfiledTypes is what the frame-grained profiler discovers from that
	// script's traces alone.
	SpecTypes     int
	ProfiledTypes int
}

// TableIResult reproduces Table I: the evaluated workloads and their
// per-script stage-type counts.
type TableIResult struct {
	Rows []TableIRow
}

// TableI profiles every script of every game in isolation and counts the
// discovered stage types, reproducing the "# of stage type" column.
func TableI(ctx *Context) (*TableIResult, error) {
	out := &TableIResult{}
	players := 4
	if ctx.Opt.Fast {
		players = 2
	}
	for _, spec := range gamesim.AllGames() {
		for si, script := range spec.Scripts {
			var traces []*gamesim.Trace
			for p := 0; p < players; p++ {
				tr, err := gamesim.Record(spec, si, ctx.Opt.Seed+int64(1000*si+p))
				if err != nil {
					return nil, err
				}
				traces = append(traces, tr)
			}
			prof, err := profiler.Build(traces, profiler.Config{
				K: len(spec.Clusters), Seed: ctx.Opt.Seed,
			})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, TableIRow{
				Game:          spec.Name,
				Script:        script.Name,
				Description:   script.Desc,
				SpecTypes:     spec.ScriptStageTypeCount(si),
				ProfiledTypes: prof.NumStageTypes(),
			})
		}
	}
	return out, nil
}

// String renders the table.
func (r *TableIResult) String() string {
	t := &table{header: []string{"Game", "Script", "Description", "#types(paper)", "#types(profiled)"}}
	for _, row := range r.Rows {
		t.add(row.Game, row.Script, row.Description,
			fmt.Sprint(row.SpecTypes), fmt.Sprint(row.ProfiledTypes))
	}
	var b strings.Builder
	b.WriteString("Table I: Evaluated workloads and stage types per script\n")
	b.WriteString(t.String())
	return b.String()
}
