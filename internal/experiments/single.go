package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/gamesim"
	"cocg/internal/predictor"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Fig2Stage summarizes one ground-truth stage of a session trace.
type Fig2Stage struct {
	Index    int
	Name     string
	Loading  bool
	Duration simclock.Seconds
	MeanCPU  float64
	MeanGPU  float64
}

// Fig2Result reproduces Fig. 2: the per-stage resource utilization of one
// game session, showing distinct consumption per scene and CPU-heavy,
// GPU-idle loading stages between them.
type Fig2Result struct {
	Game   string
	Stages []Fig2Stage
	// Series is the raw (t, cpu, gpu) trace at 5-second resolution for
	// plotting.
	Series []resources.Vector
}

// Fig2 records one full session of the mobile-game representative at full
// supply and summarizes its stages.
func Fig2(ctx *Context) (*Fig2Result, error) {
	spec := gamesim.GenshinImpact()
	tr, err := gamesim.Record(spec, 0, ctx.Opt.Seed+77)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{Game: spec.Name}
	for _, f := range tr.Frames {
		out.Series = append(out.Series, f.Demand)
	}
	for i, v := range tr.Visits {
		seg := tr.Frames[v.StartFrame:v.EndFrame]
		var mean resources.Vector
		for _, f := range seg {
			mean = mean.Add(f.Demand)
		}
		mean = mean.Scale(1 / float64(len(seg)))
		name := "loading"
		if !v.Loading {
			name = spec.StageTypes[v.Type].Name
		}
		out.Stages = append(out.Stages, Fig2Stage{
			Index:    i + 1,
			Name:     name,
			Loading:  v.Loading,
			Duration: simclock.Seconds((v.EndFrame - v.StartFrame) * int(simclock.FrameLen)),
			MeanCPU:  mean[resources.CPU],
			MeanGPU:  mean[resources.GPU],
		})
	}
	return out, nil
}

// String renders the per-stage summary.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: resource utilization across the stages of %s\n", r.Game)
	t := &table{header: []string{"stage", "kind", "duration", "mean CPU%", "mean GPU%"}}
	for _, s := range r.Stages {
		t.add(fmt.Sprint(s.Index), s.Name, s.Duration.String(), f1(s.MeanCPU), f1(s.MeanGPU))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig10Game is one game's allocation-saving summary.
type Fig10Game struct {
	Game string
	// Sessions measured.
	Sessions int
	// MeanAlloc and PeakAlloc are averaged across dimensions.
	MeanAlloc float64
	PeakAlloc float64
	// Saving = 1 - MeanAlloc/PeakAlloc: resources freed versus always
	// reserving the game's peak.
	Saving float64
	// FPSRatio and Degraded verify QoS was held while saving.
	FPSRatio float64
	Degraded float64
	// Callbacks counts rehearsal-callback activations (the "three brief
	// allocation increases" of Fig. 10's narrative).
	Callbacks int
}

// Fig10Result reproduces Fig. 10 and the Section V-B1 numbers: predictor-
// driven allocation versus the always-peak baseline, per game and averaged.
type Fig10Result struct {
	Games []Fig10Game
	// AvgSaving is the cross-game mean (the paper reports 17.5 %).
	AvgSaving float64
	// GenshinSeries is the (allocated, demanded) GPU series of one Genshin
	// session for plotting the figure itself.
	GenshinSeries [][2]float64
}

// Fig10 drives returning-player sessions of every game under the predictor
// and measures allocation savings at held QoS.
func Fig10(ctx *Context) (*Fig10Result, error) {
	out := &Fig10Result{}
	sessionsPer := 6
	if ctx.Opt.Fast {
		sessionsPer = 2
	}
	pools := ctx.System.HabitPools()
	var savingSum float64
	for _, game := range ctx.System.Games() {
		b, _ := ctx.System.Bundle(game)
		habits := pools[game]
		row := Fig10Game{Game: game}
		var allocSum, peakSum, fpsSum, degSum float64
		var dims float64
		peakAlloc := b.Profile.PeakDemand().Scale(1.08).Add(resources.Uniform(2)).Clamp(0, 100)
		for s := 0; s < sessionsPer; s++ {
			habit := habits[s%len(habits)]
			script := s % len(b.Spec.Scripts)
			if b.Spec.Category == gamesim.Mobile {
				script = int(uint64(habit) % uint64(len(b.Spec.Scripts)))
			}
			sess, err := gamesim.NewPlayerSession(b.Spec, script, habit, ctx.Opt.Seed+int64(9000+s))
			if err != nil {
				return nil, err
			}
			pr, err := b.NewSessionPredictorForHabit(habit, predictor.Config{})
			if err != nil {
				return nil, err
			}
			var series [][2]float64
			var local resources.Vector
			frames := 0
			for i := 0; i < 4*3600 && !sess.Done(); i++ {
				demand := sess.Demand()
				if d, ok := pr.Observe(demand); ok {
					local = local.Add(d.Alloc)
					frames++
					if d.Callback {
						row.Callbacks++
					}
				}
				if game == "Genshin Impact" && s == 0 {
					series = append(series, [2]float64{pr.Alloc()[resources.GPU], demand[resources.GPU]})
				}
				sess.Step(pr.Alloc())
			}
			if game == "Genshin Impact" && s == 0 {
				out.GenshinSeries = series
			}
			mean := local.Scale(1 / float64(frames))
			for d := resources.Dim(0); d < resources.NumDims; d++ {
				allocSum += mean[d]
				peakSum += peakAlloc[d]
				dims++
			}
			fpsSum += sess.FPSRatio()
			degSum += sess.DegradedFraction()
			row.Sessions++
		}
		row.MeanAlloc = allocSum / dims
		row.PeakAlloc = peakSum / dims
		row.Saving = 1 - row.MeanAlloc/row.PeakAlloc
		row.FPSRatio = fpsSum / float64(row.Sessions)
		row.Degraded = degSum / float64(row.Sessions)
		savingSum += row.Saving
		out.Games = append(out.Games, row)
	}
	out.AvgSaving = savingSum / float64(len(out.Games))
	return out, nil
}

// String renders the savings table.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 10 / Section V-B1: predictor-driven allocation vs always-peak\n")
	t := &table{header: []string{"Game", "sessions", "mean alloc", "peak alloc", "saving", "FPS ratio", "degraded", "callbacks"}}
	for _, g := range r.Games {
		t.add(g.Game, fmt.Sprint(g.Sessions), f1(g.MeanAlloc), f1(g.PeakAlloc),
			pct(g.Saving), pct(g.FPSRatio), pct(g.Degraded), fmt.Sprint(g.Callbacks))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average saving across games: %s (paper: 17.5%%)\n", pct(r.AvgSaving))
	return b.String()
}

// Fig12Row is one game's overhead comparison.
type Fig12Row struct {
	Game        string
	LoadMinSec  simclock.Seconds
	LoadMaxSec  simclock.Seconds
	LoadMeanSec float64
	PredictSec  map[string]simclock.Seconds // by model name
}

// Fig12Result reproduces Fig. 12: per-game loading times versus the
// end-to-end prediction latency — prediction always completes within the
// loading window, so scheduling overhead hides entirely.
type Fig12Result struct {
	Rows []Fig12Row
	// AllCovered is true when every model's latency is below every game's
	// minimum loading time.
	AllCovered bool
}

// Fig12 measures loading durations from the profiles and the simulated
// prediction latency per model.
func Fig12(ctx *Context) (*Fig12Result, error) {
	out := &Fig12Result{AllCovered: true}
	for _, game := range ctx.System.Games() {
		b, _ := ctx.System.Bundle(game)
		load, _ := b.Profile.Stage(0)
		row := Fig12Row{
			Game:        game,
			LoadMinSec:  b.Spec.LoadMin,
			LoadMaxSec:  b.Spec.LoadMax,
			LoadMeanSec: load.MeanDurFrames * float64(simclock.FrameLen),
			PredictSec:  map[string]simclock.Seconds{},
		}
		for _, m := range b.Models {
			lat := predictor.PredictionLatency(m, b.Profile.NumStageTypes())
			row.PredictSec[m.Name()] = lat
			if lat > b.Spec.LoadMin {
				out.AllCovered = false
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the overhead table.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12: scheduling overhead — prediction latency vs loading time\n")
	t := &table{header: []string{"Game", "load range (s)", "load mean (s)", "DTC (s)", "RF (s)", "GBDT (s)"}}
	for _, row := range r.Rows {
		t.add(row.Game,
			fmt.Sprintf("%d-%d", row.LoadMinSec, row.LoadMaxSec),
			f1(row.LoadMeanSec),
			fmt.Sprintf("%d", int64(row.PredictSec["DTC"])),
			fmt.Sprintf("%d", int64(row.PredictSec["RF"])),
			fmt.Sprintf("%d", int64(row.PredictSec["GBDT"])))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "prediction always inside the loading window: %v (paper: 3-13 s vs 5-30 s)\n", r.AllCovered)
	return b.String()
}
