package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The experiments are end-to-end runs over the trained system; tests share
// one fast-mode context.
var (
	ctxOnce sync.Once
	ctxVal  *Context
	ctxErr  error
)

func testCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctxVal, ctxErr = NewContext(Options{Seed: 3, Fast: true})
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctxVal
}

func TestTableI(t *testing.T) {
	r, err := TableI(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 13 {
		t.Fatalf("rows = %d, want 13 (Table I scripts)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ProfiledTypes < 2 {
			t.Errorf("%s %s profiled %d types", row.Game, row.Script, row.ProfiledTypes)
		}
		// The profiled count should track the paper's count within ±1.
		diff := row.ProfiledTypes - row.SpecTypes
		if diff < -1 || diff > 1 {
			t.Errorf("%s %s: profiled %d vs paper %d", row.Game, row.Script, row.ProfiledTypes, row.SpecTypes)
		}
	}
	if !strings.Contains(r.String(), "Table I") {
		t.Error("rendering lacks title")
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) < 5 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	// Stages alternate loading and execution; loading is CPU-heavy/GPU-idle.
	for i, s := range r.Stages {
		if i > 0 && s.Loading == r.Stages[i-1].Loading {
			t.Error("stages do not alternate")
		}
		if s.Loading && s.MeanGPU > 25 {
			t.Errorf("loading stage %d mean GPU %.1f", s.Index, s.MeanGPU)
		}
	}
	if len(r.Series) == 0 {
		t.Error("no series data")
	}
}

func TestFig5AndFig6(t *testing.T) {
	ctx := testCtx(t)
	csgo, err := Fig5(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if csgo.K != 4 {
		t.Errorf("CSGO K = %d, want 4", csgo.K)
	}
	dmc, err := Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dmc.K != 6 {
		t.Errorf("DMC K = %d, want 6", dmc.K)
	}
	// At least one multi-cluster stage type must appear for each (Fig. 4's
	// combination stages).
	for _, r := range []*ClusteringResult{csgo, dmc} {
		multi := false
		for _, s := range r.Stages {
			if !s.Loading && len(s.ClusterSet) > 1 {
				multi = true
			}
		}
		if !multi {
			t.Errorf("%s: no multi-cluster stage type discovered", r.Game)
		}
		if r.String() == "" {
			t.Error("empty rendering")
		}
	}
	if _, err := StageTypesOf(ctx, "nope"); err == nil {
		t.Error("unknown game did not error")
	}
}

func TestFig9(t *testing.T) {
	r, err := Fig9(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxGenshin <= r.MaxDOTA2 {
		t.Errorf("Genshin max %.1f should exceed DOTA2 max %.1f (Fig. 9 shape)",
			r.MaxGenshin, r.MaxDOTA2)
	}
	if r.Summary.Sessions == 0 {
		t.Fatal("no sessions completed")
	}
	if r.Summary.MeanDegraded > 0.10 {
		t.Errorf("mean degraded %.3f", r.Summary.MeanDegraded)
	}
	if len(r.Series) == 0 {
		t.Error("no utilization series")
	}
	if !strings.Contains(r.String(), "Genshin") {
		t.Error("rendering wrong")
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Games) != 5 {
		t.Fatalf("games = %d", len(r.Games))
	}
	// The headline: positive average saving at held QoS (paper: 17.5 %).
	if r.AvgSaving < 0.05 || r.AvgSaving > 0.5 {
		t.Errorf("average saving %.3f outside plausible band", r.AvgSaving)
	}
	for _, g := range r.Games {
		if g.FPSRatio < 0.9 {
			t.Errorf("%s FPS ratio %.3f while saving", g.Game, g.FPSRatio)
		}
		if g.Saving < -0.05 {
			t.Errorf("%s negative saving %.3f", g.Game, g.Saving)
		}
	}
	if len(r.GenshinSeries) == 0 {
		t.Error("no Genshin allocation series for the figure")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != 3 {
		t.Fatalf("pairs = %d", len(r.Pairs))
	}
	for _, p := range r.Pairs {
		if len(p.Cells) != 4 {
			t.Fatalf("cells = %d", len(p.Cells))
		}
		var cocg, vbp *Fig11Cell
		for i := range p.Cells {
			switch p.Cells[i].Policy {
			case "CoCG":
				cocg = &p.Cells[i]
			case "VBP":
				vbp = &p.Cells[i]
			}
		}
		if cocg == nil || vbp == nil {
			t.Fatal("missing policies")
		}
		// CoCG must not lose to VBP on any pair (the paper's headline).
		if cocg.Throughput < vbp.Throughput*0.9 {
			t.Errorf("%s+%s: CoCG %.0f well below VBP %.0f", p.A, p.B, cocg.Throughput, vbp.Throughput)
		}
	}
	if r.Improvement <= 0 {
		t.Errorf("CoCG improvement %.3f not positive", r.Improvement)
	}
}

func TestFig12(t *testing.T) {
	r, err := Fig12(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !r.AllCovered {
		t.Error("prediction latency exceeded a loading window")
	}
	for _, row := range r.Rows {
		for name, lat := range row.PredictSec {
			if lat < 3 || lat > 13 {
				t.Errorf("%s %s latency %d outside the paper's 3-13 s", row.Game, name, lat)
			}
		}
	}
}

func TestFig13(t *testing.T) {
	r, err := Fig13(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanCoCG <= r.MeanGAugur {
		t.Errorf("CoCG FPS %.3f not above GAugur %.3f (Fig. 13 shape)", r.MeanCoCG, r.MeanGAugur)
	}
	if len(r.Rows) != 8 {
		t.Errorf("rows = %d, want 4 games x 2 policies", len(r.Rows))
	}
}

func TestFig14(t *testing.T) {
	r, err := Fig14(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 5 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Points) != 8 {
			t.Errorf("%s sweep has %d points", c.Game, len(c.Points))
		}
		// SSE decreases with K (the defining property of Fig. 14).
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].SSE > c.Points[i-1].SSE*1.05 {
				t.Errorf("%s SSE increased at K=%d", c.Game, c.Points[i].K)
			}
		}
		if c.Elbow < 2 || c.Elbow > 8 {
			t.Errorf("%s elbow = %d", c.Game, c.Elbow)
		}
	}
}

func TestFig15(t *testing.T) {
	r, err := Fig15(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		for name, acc := range row.Accuracy {
			if acc < 0 || acc > 1 {
				t.Errorf("%s %s accuracy %v", row.Game, name, acc)
			}
		}
	}
}

func TestCategoryAblation(t *testing.T) {
	r, err := CategoryAblation(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// For the high-user-influence games the category-aware strategy should
	// not lose badly to global pooling (it usually wins by a wide margin;
	// fast-mode sample sizes add noise, and a zero means the per-player
	// groups were too small to score at all in fast mode).
	for _, row := range r.Rows {
		if row.Game == "Genshin Impact" && row.CategoryAcc > 0 &&
			row.CategoryAcc < row.GlobalAcc-0.15 {
			t.Errorf("per-player training (%.2f) lost to global (%.2f) on Genshin",
				row.CategoryAcc, row.GlobalAcc)
		}
	}
}

func TestRedundancyAblation(t *testing.T) {
	r, err := RedundancyAblation(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]RedundancyAblationRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
	}
	// Disabling redundancy must not reserve more than Eq. 1.
	if byName["none"].MeanAlloc > byName["Eq.1 adaptive"].MeanAlloc+1e-9 {
		t.Errorf("no-redundancy alloc %.1f above Eq.1 %.1f",
			byName["none"].MeanAlloc, byName["Eq.1 adaptive"].MeanAlloc)
	}
}

func TestLoadingStealAblation(t *testing.T) {
	r, err := LoadingStealAblation(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.WithSteal.Sessions == 0 || r.WithoutSteal.Sessions == 0 {
		t.Fatal("no sessions in an arm")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFrameIntervalAblation(t *testing.T) {
	r, err := FrameIntervalAblation(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byInterval := map[int]IntervalAblationRow{}
	for _, row := range r.Rows {
		byInterval[row.IntervalSec] = row
	}
	// The paper's 5-second choice catches every loading stage; 30 s misses
	// some (CSGO loads can be 10 s).
	if byInterval[5].LoadingDetectRate < 0.999 {
		t.Errorf("5 s interval catches %.2f of loads", byInterval[5].LoadingDetectRate)
	}
	if byInterval[30].LoadingDetectRate >= byInterval[5].LoadingDetectRate {
		t.Error("30 s interval should miss loading stages that 5 s catches")
	}
	// Finer intervals give more samples per stage.
	if byInterval[1].FramesPerStage <= byInterval[5].FramesPerStage {
		t.Error("1 s interval should sample more finely")
	}
}

func TestCompareClusterers(t *testing.T) {
	ctx := testCtx(t)
	r, err := CompareClusterers(ctx, "Devil May Cry")
	if err != nil {
		t.Fatal(err)
	}
	if r.KMeansF1 < 0.8 {
		t.Errorf("k-means F1 %.3f", r.KMeansF1)
	}
	// Section V-D1: K-means beats graph partitioning on the cataloging task.
	if r.KMeansScore < r.GraphScore {
		t.Errorf("k-means score %.3f below graph partitioning %.3f",
			r.KMeansScore, r.GraphScore)
	}
	if _, err := CompareClusterers(ctx, "nope"); err == nil {
		t.Error("unknown game did not error")
	}
}

func TestTableRenderer(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("x", "y")
	tb.add("longer-cell", "z")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and rule widths differ: %q vs %q", lines[0], lines[1])
	}
}

func TestScaleOut(t *testing.T) {
	r, err := ScaleOut(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Throughput grows with cluster size and per-server efficiency does not
	// collapse (allow generous noise in fast mode).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Throughput <= first.Throughput {
		t.Errorf("throughput did not grow: %v -> %v", first.Throughput, last.Throughput)
	}
	if last.Sessions > 0 && first.Sessions > 0 && last.PerServer < first.PerServer*0.4 {
		t.Errorf("per-server efficiency collapsed: %v -> %v", first.PerServer, last.PerServer)
	}
}

func TestOnlineLearning(t *testing.T) {
	r, err := OnlineLearning(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// The player must graduate to a dedicated model within the run.
	graduated := false
	for _, p := range r.Points {
		if p.Dedicated {
			graduated = true
		}
	}
	if !graduated {
		t.Error("cold-start player never got a dedicated model")
	}
}

func TestPlacementAblation(t *testing.T) {
	r, err := PlacementAblation(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Sessions == 0 {
			t.Errorf("%s completed nothing", row.Strategy)
		}
	}
}

func TestPairMatrix(t *testing.T) {
	r, err := PairMatrix(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 pairings", len(r.Rows))
	}
	anyCo := false
	for _, row := range r.Rows {
		if row.CoLocated {
			anyCo = true
		}
		if row.Throughput <= 0 {
			t.Errorf("%s+%s: zero throughput", row.A, row.B)
		}
	}
	if !anyCo {
		t.Error("no pairing ever co-located")
	}
	// The light pairing must co-locate.
	for _, row := range r.Rows {
		if (row.A == "Genshin Impact" && row.B == "Contra") ||
			(row.A == "Contra" && row.B == "Genshin Impact") {
			if !row.CoLocated {
				t.Error("Genshin+Contra did not co-locate")
			}
		}
	}
}
