package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/cluster"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

// StageTypeRow describes one discovered stage type of a game (Figs. 5b/6b:
// "stage types by clustering").
type StageTypeRow struct {
	ID         int
	ClusterSet []int
	Count      int
	MeanDurSec float64
	MeanDemand resources.Vector
	PeakDemand resources.Vector
	Loading    bool
}

// ClusteringResult reproduces Fig. 5 (CSGO) or Fig. 6 (Devil May Cry): the
// frame clusters of a game and the stage types composed from them.
type ClusteringResult struct {
	Game      string
	K         int
	Centroids []resources.Vector
	Loading   int // loading cluster ID
	Stages    []StageTypeRow
}

// StageTypesOf runs the frame-clustering pass of Section IV-A2 for a single
// game and reports its stage-type catalog.
func StageTypesOf(ctx *Context, game string) (*ClusteringResult, error) {
	b, ok := ctx.System.Bundle(game)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown game %q", game)
	}
	p := b.Profile
	out := &ClusteringResult{
		Game:      game,
		K:         p.Clusters.K(),
		Centroids: p.Clusters.Centroids,
		Loading:   p.LoadingClusterID,
	}
	for _, s := range p.Catalog {
		out.Stages = append(out.Stages, StageTypeRow{
			ID:         s.ID,
			ClusterSet: s.ClusterSet,
			Count:      s.Count,
			MeanDurSec: s.MeanDurFrames * 5,
			MeanDemand: s.Mean,
			PeakDemand: s.Peak,
			Loading:    s.Loading,
		})
	}
	return out, nil
}

// Fig5 reproduces the CSGO stage-type clustering.
func Fig5(ctx *Context) (*ClusteringResult, error) { return StageTypesOf(ctx, "CSGO") }

// Fig6 reproduces the Devil May Cry stage-type clustering.
func Fig6(ctx *Context) (*ClusteringResult, error) { return StageTypesOf(ctx, "Devil May Cry") }

// String renders the clustering result.
func (r *ClusteringResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stage types of %s by clustering (K=%d, loading cluster %d)\n", r.Game, r.K, r.Loading)
	ct := &table{header: []string{"cluster", "centroid"}}
	for i, c := range r.Centroids {
		mark := ""
		if i == r.Loading {
			mark = " (loading)"
		}
		ct.add(fmt.Sprintf("%d%s", i, mark), c.String())
	}
	b.WriteString(ct.String())
	st := &table{header: []string{"stage", "clusters", "occurrences", "mean dur (s)", "mean demand", "sustained peak"}}
	for _, s := range r.Stages {
		name := fmt.Sprint(s.ID)
		if s.Loading {
			name += " (loading)"
		}
		st.add(name, profiler.Key(s.ClusterSet), fmt.Sprint(s.Count), f1(s.MeanDurSec),
			s.MeanDemand.String(), s.PeakDemand.String())
	}
	b.WriteString(st.String())
	return b.String()
}

// Fig14Curve is one game's SSE-vs-K sweep.
type Fig14Curve struct {
	Game   string
	Points []cluster.SweepPoint
	Elbow  int
	// PaperK is the cluster count the paper chose for this game.
	PaperK int
}

// Fig14Result reproduces Fig. 14: clustering SSE for K = 1..MaxK and the
// inflection points that fix each game's cluster count.
type Fig14Result struct {
	Curves []Fig14Curve
}

// Fig14 sweeps K for every game's pooled frame corpus.
func Fig14(ctx *Context) (*Fig14Result, error) {
	paperK := map[string]int{
		"Contra": 2, "CSGO": 4, "Genshin Impact": 4, "DOTA2": 5, "Devil May Cry": 6,
	}
	out := &Fig14Result{}
	for _, game := range ctx.System.Games() {
		b, _ := ctx.System.Bundle(game)
		var frames []resources.Vector
		for _, tr := range b.Corpus {
			frames = append(frames, tr.FrameVectors()...)
		}
		curve, err := cluster.Sweep(frames, 8, ctx.Opt.Seed, ctx.workers())
		if err != nil {
			return nil, err
		}
		out.Curves = append(out.Curves, Fig14Curve{
			Game:   game,
			Points: curve,
			Elbow:  cluster.Elbow(curve, 0.06),
			PaperK: paperK[game],
		})
	}
	return out, nil
}

// String renders the sweep as one row per game.
func (r *Fig14Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 14: K-means SSE vs K (elbow picks the cluster count)\n")
	t := &table{header: []string{"Game", "SSE K=1..8", "elbow", "paper"}}
	for _, c := range r.Curves {
		var sse []string
		for _, p := range c.Points {
			sse = append(sse, fmt.Sprintf("%.0f", p.SSE))
		}
		t.add(c.Game, strings.Join(sse, " "), fmt.Sprint(c.Elbow), fmt.Sprint(c.PaperK))
	}
	b.WriteString(t.String())
	return b.String()
}

// GraphPartitionComparison quantifies Section V-D1's claim that K-means
// beats graph partitioning for frame clustering. Each method is scored
// against the simulator's ground-truth cluster labels with the F1 of purity
// (each found cluster is homogeneous) and completeness (each true cluster
// maps to one found cluster) — purity alone would reward the
// over-segmentation threshold-graph methods tend to produce.
type GraphPartitionComparison struct {
	Game          string
	KMeansF1      float64
	GraphF1       float64
	KMeansPurity  float64
	GraphPurity   float64
	TrueClusters  int
	GraphClusters int
	// KMeansScore/GraphScore weight the F1 by parsimony: a method that
	// needs many times the true cluster count is useless for stage-type
	// cataloging, because the signature space grows as 2^K. This is the
	// "accuracy" on the task the clusters exist for.
	KMeansScore float64
	GraphScore  float64
}

// CompareClusterers runs both clustering methods on a game's corpus and
// scores cluster purity against the simulator's ground-truth labels.
func CompareClusterers(ctx *Context, game string) (*GraphPartitionComparison, error) {
	b, ok := ctx.System.Bundle(game)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown game %q", game)
	}
	var frames []resources.Vector
	var truth []int
	for _, tr := range b.Corpus {
		for _, f := range tr.Frames {
			frames = append(frames, f.Demand)
			truth = append(truth, f.Cluster)
		}
	}
	km, err := cluster.KMeans(frames, cluster.Config{K: len(b.Spec.Clusters), Seed: ctx.Opt.Seed})
	if err != nil {
		return nil, err
	}
	gp, err := cluster.GraphPartition(frames)
	if err != nil {
		return nil, err
	}
	kmP, kmC := purity(km.Assign, truth), purity(truth, km.Assign)
	gpP, gpC := purity(gp.Assign, truth), purity(truth, gp.Assign)
	trueK := len(b.Spec.Clusters)
	out := &GraphPartitionComparison{
		Game:          game,
		KMeansF1:      f1score(kmP, kmC),
		GraphF1:       f1score(gpP, gpC),
		KMeansPurity:  kmP,
		GraphPurity:   gpP,
		TrueClusters:  trueK,
		GraphClusters: gp.K(),
	}
	out.KMeansScore = out.KMeansF1 * parsimony(trueK, km.K())
	out.GraphScore = out.GraphF1 * parsimony(trueK, gp.K())
	return out, nil
}

// parsimony penalizes a cluster count far from the true one.
func parsimony(trueK, foundK int) float64 {
	if foundK <= 0 {
		return 0
	}
	r := float64(trueK) / float64(foundK)
	if r > 1 {
		r = 1 / r
	}
	return r
}

// f1score is the harmonic mean of purity and completeness.
func f1score(p, c float64) float64 {
	if p+c == 0 {
		return 0
	}
	return 2 * p * c / (p + c)
}

// purity maps each predicted cluster to its majority true label and scores
// the fraction of points covered.
func purity(assign, truth []int) float64 {
	votes := map[int]map[int]int{}
	for i, a := range assign {
		if votes[a] == nil {
			votes[a] = map[int]int{}
		}
		votes[a][truth[i]]++
	}
	correct := 0
	for _, v := range votes {
		best := 0
		for _, n := range v {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

// String renders the comparison.
func (r *GraphPartitionComparison) String() string {
	return fmt.Sprintf("%s: k-means score %s (F1 %s, K=%d) vs graph partitioning score %s (F1 %s, K=%d of %d true)",
		r.Game, pct(r.KMeansScore), pct(r.KMeansF1), r.TrueClusters,
		pct(r.GraphScore), pct(r.GraphF1), r.GraphClusters, r.TrueClusters)
}
