package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/gamesim"
	"cocg/internal/predictor"
)

// OnlinePoint is one step of the cold-start learning curve.
type OnlinePoint struct {
	Session   int
	Accuracy  float64 // running prediction accuracy during that session
	Dedicated bool    // whether the player had a dedicated model yet
}

// OnlineLearningResult is the extension experiment: a brand-new player's
// prediction accuracy over consecutive sessions as the online learner
// accumulates their history and trains them a dedicated model. The paper
// trains mobile-game models per player "once and for all"; this shows the
// road there for a player the offline corpus never saw.
type OnlineLearningResult struct {
	Game   string
	Points []OnlinePoint
	// ColdAccuracy / WarmAccuracy are the mean running accuracies before
	// and after the dedicated model appears.
	ColdAccuracy float64
	WarmAccuracy float64
}

// OnlineLearning plays a cold-start Genshin player for several sessions
// under the online learner.
func OnlineLearning(ctx *Context) (*OnlineLearningResult, error) {
	spec := gamesim.GenshinImpact()
	shared, _ := ctx.System.Bundle(spec.Name)
	// The learner adds dedicated models to the bundle as the player
	// graduates; work on a clone so the shared system stays immutable and
	// this experiment can run concurrently with (and independently of) the
	// others.
	b := shared.Clone()
	learner := predictor.NewOnlineLearner(b, 8, ctx.Opt.Seed+81)
	learner.Workers = ctx.Opt.Jobs
	habit := ctx.Opt.Seed + 987_654_321 // unseen player
	script := int(uint64(habit) % uint64(len(spec.Scripts)))
	sessions := 12
	if ctx.Opt.Fast {
		sessions = 6
	}
	out := &OnlineLearningResult{Game: spec.Name}
	var coldSum, warmSum float64
	var coldN, warmN int
	for s := 0; s < sessions; s++ {
		_, dedicated := b.HabitModels[habit]
		sess, err := gamesim.NewPlayerSession(spec, script, habit, ctx.Opt.Seed+int64(6000+s))
		if err != nil {
			return nil, err
		}
		pr, err := b.NewSessionPredictorForHabit(habit, predictor.Config{})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 4*3600 && !sess.Done(); i++ {
			pr.Observe(sess.Demand())
			sess.Step(pr.Alloc())
		}
		acc := pr.Accuracy()
		out.Points = append(out.Points, OnlinePoint{Session: s + 1, Accuracy: acc, Dedicated: dedicated})
		if dedicated {
			warmSum += acc
			warmN++
		} else {
			coldSum += acc
			coldN++
		}
		if _, err := learner.Observe(habit, pr); err != nil {
			return nil, err
		}
	}
	if coldN > 0 {
		out.ColdAccuracy = coldSum / float64(coldN)
	}
	if warmN > 0 {
		out.WarmAccuracy = warmSum / float64(warmN)
	}
	return out, nil
}

// String renders the learning curve.
func (r *OnlineLearningResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: online learning for a cold-start %s player\n", r.Game)
	t := &table{header: []string{"session", "model", "running accuracy"}}
	for _, p := range r.Points {
		model := "pooled"
		if p.Dedicated {
			model = "dedicated"
		}
		t.add(fmt.Sprint(p.Session), model, pct(p.Accuracy))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean accuracy: cold (pooled) %s -> warm (dedicated) %s\n",
		pct(r.ColdAccuracy), pct(r.WarmAccuracy))
	return b.String()
}
