package experiments

import (
	"cocg/internal/export"
	"cocg/internal/resources"
)

// The experiments that back plotted figures expose their raw series in
// export form, for CSV dumps and terminal charts.

// UtilSeries returns Fig. 2's per-frame CPU/GPU utilization trace.
func (r *Fig2Result) UtilSeries() *export.Series {
	s := export.NewSeries("fig2 "+r.Game+" utilization", "frame", "cpu", "gpu")
	for _, v := range r.Series {
		s.MustAdd(v[resources.CPU], v[resources.GPU])
	}
	return s
}

// UtilSeries returns Fig. 9's co-location utilization timeline.
func (r *Fig9Result) UtilSeries() *export.Series {
	s := export.NewSeries("fig9 genshin dota2 colocation", "frame", "genshin", "dota2", "total")
	for _, p := range r.Series {
		s.MustAdd(p[0], p[1], p[2])
	}
	return s
}

// AllocSeries returns Fig. 10's allocated-vs-demanded GPU series for the
// sampled Genshin session.
func (r *Fig10Result) AllocSeries() *export.Series {
	s := export.NewSeries("fig10 genshin allocation", "second", "allocated", "demanded")
	for _, p := range r.GenshinSeries {
		s.MustAdd(p[0], p[1])
	}
	return s
}

// SSESeries returns Fig. 14's per-game SSE curves as one series per game
// (x = K).
func (r *Fig14Result) SSESeries() []*export.Series {
	var out []*export.Series
	for _, c := range r.Curves {
		s := export.NewSeries("fig14 "+c.Game+" sse", "k", "sse")
		for _, p := range c.Points {
			s.MustAdd(p.SSE)
		}
		out = append(out, s)
	}
	return out
}
