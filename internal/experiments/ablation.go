package experiments

import (
	"fmt"
	"strings"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/predictor"
	"cocg/internal/scheduler"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

// RedundancyAblationRow is one redundancy-policy outcome.
type RedundancyAblationRow struct {
	Policy   string
	FPSRatio float64
	Degraded float64
	// MeanAlloc is the mean dominant-dimension allocation: redundancy costs
	// resources, so the interesting trade-off is QoS against footprint.
	MeanAlloc float64
}

// RedundancyAblationResult quantifies the value of Eq. 1's adaptive
// redundancy against no redundancy and a fixed 10 % margin.
type RedundancyAblationResult struct {
	Game string
	Rows []RedundancyAblationRow
}

// RedundancyAblation drives single Genshin sessions (the spikiest game)
// under the three redundancy policies.
func RedundancyAblation(ctx *Context) (*RedundancyAblationResult, error) {
	spec := gamesim.GenshinImpact()
	b, _ := ctx.System.Bundle(spec.Name)
	variants := []struct {
		name string
		cfg  predictor.Config
	}{
		{"Eq.1 adaptive", predictor.Config{}},
		{"none", predictor.Config{DisableRedundancy: true}},
		{"fixed 10%", predictor.Config{FixedRedundancy: 0.1}},
	}
	sessions := 8
	if ctx.Opt.Fast {
		sessions = 3
	}
	out := &RedundancyAblationResult{Game: spec.Name}
	habits := b.Habits()
	for _, v := range variants {
		var fps, deg, alloc float64
		var n float64
		for s := 0; s < sessions; s++ {
			habit := habits[s%len(habits)]
			script := int(uint64(habit) % uint64(len(spec.Scripts)))
			sess, err := gamesim.NewPlayerSession(spec, script, habit, ctx.Opt.Seed+int64(7000+s))
			if err != nil {
				return nil, err
			}
			pr, err := b.NewSessionPredictorForHabit(habit, v.cfg)
			if err != nil {
				return nil, err
			}
			var allocSum float64
			ticks := 0
			for i := 0; i < 4*3600 && !sess.Done(); i++ {
				pr.Observe(sess.Demand())
				allocSum += pr.Alloc().Dominant()
				ticks++
				sess.Step(pr.Alloc())
			}
			fps += sess.FPSRatio()
			deg += sess.DegradedFraction()
			alloc += allocSum / float64(ticks)
			n++
		}
		out.Rows = append(out.Rows, RedundancyAblationRow{
			Policy:    v.name,
			FPSRatio:  fps / n,
			Degraded:  deg / n,
			MeanAlloc: alloc / n,
		})
	}
	return out, nil
}

// String renders the ablation.
func (r *RedundancyAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: redundancy allocation (Eq. 1) on %s\n", r.Game)
	t := &table{header: []string{"policy", "FPS ratio", "degraded", "mean alloc"}}
	for _, row := range r.Rows {
		t.add(row.Policy, pct(row.FPSRatio), pct(row.Degraded), f1(row.MeanAlloc))
	}
	b.WriteString(t.String())
	return b.String()
}

// StealAblationResult compares the regulator with and without loading-time
// stealing on the Fig. 9 pair.
type StealAblationResult struct {
	WithSteal    platform.QoSSummary
	WithoutSteal platform.QoSSummary
	StolenSec    float64
}

// LoadingStealAblation reruns the Genshin+DOTA2 co-location with the
// regulator's loading-extension disabled.
func LoadingStealAblation(ctx *Context) (*StealAblationResult, error) {
	out := &StealAblationResult{}
	horizon := ctx.horizon()
	for _, disable := range []bool{false, true} {
		var bundles []*predictor.Trained
		for _, g := range ctx.System.Games() {
			bb, _ := ctx.System.Bundle(g)
			bundles = append(bundles, bb)
		}
		pol := scheduler.New(bundles, scheduler.Config{DisableLoadingSteal: disable})
		c := platform.NewCluster(1, pol)
		c.StarveLimit = 5 * simclock.Minute
		gen := ctx.System.Generator(ctx.Opt.Seed + 17)
		stream := &workload.PairStream{Gen: gen, A: gamesim.GenshinImpact(), B: gamesim.DOTA2(), Backlog: 1}
		for i := simclock.Seconds(0); i < horizon; i++ {
			stream.Feed(c)
			c.Tick()
		}
		recs := c.Records()
		sum := platform.Summarize(recs)
		if disable {
			out.WithoutSteal = sum
		} else {
			out.WithSteal = sum
			for _, r := range recs {
				out.StolenSec += r.LoadStolen
			}
		}
	}
	return out, nil
}

// String renders the comparison.
func (r *StealAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: loading-time stealing (regulator) on Genshin+DOTA2\n")
	fmt.Fprintf(&b, "  with steal   : %s (stole %.0f s of loading)\n", r.WithSteal, r.StolenSec)
	fmt.Fprintf(&b, "  without steal: %s\n", r.WithoutSteal)
	return b.String()
}

// IntervalAblationRow is one detection-interval outcome.
type IntervalAblationRow struct {
	IntervalSec int
	// LoadingDetectRate is the fraction of true loading stages the
	// interval can catch (a loading stage shorter than the interval is
	// invisible).
	LoadingDetectRate float64
	// FramesPerStage is the mean number of detection samples per execution
	// stage — the resolution the clusterer works with.
	FramesPerStage float64
}

// IntervalAblationResult justifies the paper's 5-second frame choice: a
// shorter interval adds overhead without catching more loading stages, a
// longer one starts missing them.
type IntervalAblationResult struct {
	Game string
	Rows []IntervalAblationRow
}

// FrameIntervalAblation measures loading-stage detectability at several
// detection intervals over raw traces.
func FrameIntervalAblation(ctx *Context) (*IntervalAblationResult, error) {
	spec := gamesim.CSGO() // shortest loading range: the binding case
	out := &IntervalAblationResult{Game: spec.Name}
	traces := 6
	if ctx.Opt.Fast {
		traces = 2
	}
	var all []*gamesim.Trace
	for i := 0; i < traces; i++ {
		tr, err := gamesim.Record(spec, i%len(spec.Scripts), ctx.Opt.Seed+int64(400+i))
		if err != nil {
			return nil, err
		}
		all = append(all, tr)
	}
	for _, interval := range []int{1, 5, 10, 20, 30} {
		var caught, totalLoads int
		var stageFrames, stages float64
		for _, tr := range all {
			for _, v := range tr.Visits {
				startSec := v.StartFrame * int(simclock.FrameLen)
				endSec := v.EndFrame * int(simclock.FrameLen)
				dur := endSec - startSec
				if v.Loading {
					totalLoads++
					// An interval catches a loading stage when at least one
					// whole sampling window fits inside it with a loading
					// majority.
					if dur >= interval {
						caught++
					}
				} else {
					stages++
					stageFrames += float64(dur / interval)
				}
			}
		}
		row := IntervalAblationRow{IntervalSec: interval}
		if totalLoads > 0 {
			row.LoadingDetectRate = float64(caught) / float64(totalLoads)
		}
		if stages > 0 {
			row.FramesPerStage = stageFrames / stages
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the interval ablation.
func (r *IntervalAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: detection interval (the paper picks 5 s) on %s\n", r.Game)
	t := &table{header: []string{"interval (s)", "loading stages caught", "samples per exec stage"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.IntervalSec), pct(row.LoadingDetectRate), f1(row.FramesPerStage))
	}
	b.WriteString(t.String())
	return b.String()
}

// GraphPartitionAblation runs the clustering-method comparison for every
// game (Section V-D1).
func GraphPartitionAblation(ctx *Context) ([]*GraphPartitionComparison, error) {
	var out []*GraphPartitionComparison
	for _, game := range ctx.System.Games() {
		r, err := CompareClusterers(ctx, game)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
