package mlmodels

import (
	"encoding/json"
	"fmt"
)

// Tree serialization: nodes flatten into an index-linked array so the three
// model types round-trip through JSON. A fitted model saved once serves
// every future session — the paper's "contention feature profiling and model
// training only need to be performed once".

// nodeDTO is one flattened tree node; children reference array indices, -1
// meaning none.
type nodeDTO struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Label     int     `json:"c,omitempty"`
	Value     float64 `json:"v,omitempty"`
}

// flatten appends the subtree rooted at n and returns its index.
func flatten(n *treeNode, out *[]nodeDTO) int {
	if n == nil {
		return -1
	}
	idx := len(*out)
	*out = append(*out, nodeDTO{}) // reserve
	dto := nodeDTO{
		Feature:   n.feature,
		Threshold: n.threshold,
		Label:     n.label,
		Value:     n.value,
		Left:      -1,
		Right:     -1,
	}
	dto.Left = flatten(n.left, out)
	dto.Right = flatten(n.right, out)
	(*out)[idx] = dto
	return idx
}

// unflatten rebuilds the subtree at index i.
func unflatten(nodes []nodeDTO, i int) (*treeNode, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= len(nodes) {
		return nil, fmt.Errorf("mlmodels: node index %d out of range", i)
	}
	d := nodes[i]
	n := &treeNode{
		feature:   d.Feature,
		threshold: d.Threshold,
		label:     d.Label,
		value:     d.Value,
	}
	var err error
	if n.left, err = unflatten(nodes, d.Left); err != nil {
		return nil, err
	}
	if n.right, err = unflatten(nodes, d.Right); err != nil {
		return nil, err
	}
	if !n.isLeaf() && (n.left == nil || n.right == nil) {
		return nil, fmt.Errorf("mlmodels: split node %d missing children", i)
	}
	return n, nil
}

// treeDTO serializes one tree.
type treeDTO struct {
	Nodes []nodeDTO `json:"nodes"`
}

func toTreeDTO(root *treeNode) treeDTO {
	var nodes []nodeDTO
	flatten(root, &nodes)
	return treeDTO{Nodes: nodes}
}

func fromTreeDTO(d treeDTO) (*treeNode, error) {
	if len(d.Nodes) == 0 {
		return nil, fmt.Errorf("mlmodels: empty tree")
	}
	return unflatten(d.Nodes, 0)
}

// dtcDTO serializes a DecisionTree.
type dtcDTO struct {
	Tree  treeDTO `json:"tree"`
	NFeat int     `json:"n_feat"`
}

// MarshalJSON implements json.Marshaler.
func (t *DecisionTree) MarshalJSON() ([]byte, error) {
	if !t.fitted {
		return nil, ErrNotFitted
	}
	return json.Marshal(dtcDTO{Tree: toTreeDTO(t.root), NFeat: t.nfeat})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *DecisionTree) UnmarshalJSON(b []byte) error {
	var d dtcDTO
	if err := json.Unmarshal(b, &d); err != nil {
		return err
	}
	root, err := fromTreeDTO(d.Tree)
	if err != nil {
		return err
	}
	t.root = root
	t.flat = compileTree(t.root)
	t.nfeat = d.NFeat
	t.fitted = true
	return nil
}

// rfDTO serializes a RandomForest.
type rfDTO struct {
	Trees  []treeDTO `json:"trees"`
	NFeat  int       `json:"n_feat"`
	NClass int       `json:"n_class"`
}

// MarshalJSON implements json.Marshaler.
func (f *RandomForest) MarshalJSON() ([]byte, error) {
	if !f.fitted {
		return nil, ErrNotFitted
	}
	d := rfDTO{NFeat: f.nfeat, NClass: f.nclass}
	for _, tr := range f.trees {
		d.Trees = append(d.Trees, toTreeDTO(tr))
	}
	return json.Marshal(d)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *RandomForest) UnmarshalJSON(b []byte) error {
	var d rfDTO
	if err := json.Unmarshal(b, &d); err != nil {
		return err
	}
	if len(d.Trees) == 0 {
		return fmt.Errorf("mlmodels: forest without trees")
	}
	f.trees = f.trees[:0]
	for _, td := range d.Trees {
		root, err := fromTreeDTO(td)
		if err != nil {
			return err
		}
		f.trees = append(f.trees, root)
	}
	f.flat, f.roots = compileForest(f.trees)
	f.nfeat = d.NFeat
	f.nclass = d.NClass
	f.fitted = true
	return nil
}

// gbdtDTO serializes a GBDT.
type gbdtDTO struct {
	Rounds       [][]treeDTO `json:"rounds"`
	Prior        []float64   `json:"prior"`
	NFeat        int         `json:"n_feat"`
	NClass       int         `json:"n_class"`
	LearningRate float64     `json:"lr"`
}

// MarshalJSON implements json.Marshaler.
func (g *GBDT) MarshalJSON() ([]byte, error) {
	if !g.fitted {
		return nil, ErrNotFitted
	}
	d := gbdtDTO{
		Prior: g.prior, NFeat: g.nfeat, NClass: g.nclass,
		LearningRate: g.cfg.LearningRate,
	}
	for _, round := range g.trees {
		var r []treeDTO
		for _, tr := range round {
			r = append(r, toTreeDTO(tr))
		}
		d.Rounds = append(d.Rounds, r)
	}
	return json.Marshal(d)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *GBDT) UnmarshalJSON(b []byte) error {
	var d gbdtDTO
	if err := json.Unmarshal(b, &d); err != nil {
		return err
	}
	if len(d.Prior) == 0 {
		return fmt.Errorf("mlmodels: gbdt without priors")
	}
	g.trees = g.trees[:0]
	for _, round := range d.Rounds {
		var r []*treeNode
		for _, td := range round {
			root, err := fromTreeDTO(td)
			if err != nil {
				return err
			}
			r = append(r, root)
		}
		if len(r) != len(d.Prior) {
			return fmt.Errorf("mlmodels: gbdt round width %d != classes %d", len(r), len(d.Prior))
		}
		g.trees = append(g.trees, r)
	}
	g.flat, g.roots = compileRounds(g.trees)
	g.prior = d.Prior
	g.nfeat = d.NFeat
	g.nclass = d.NClass
	g.cfg = GBDTConfig{LearningRate: d.LearningRate}.withDefaults()
	g.cfg.LearningRate = d.LearningRate
	g.fitted = true
	return nil
}

// SavedModel wraps any of the three classifiers with its algorithm tag for
// polymorphic persistence.
type SavedModel struct {
	Kind  string          `json:"kind"`
	Model json.RawMessage `json:"model"`
}

// SaveModel encodes a fitted classifier.
func SaveModel(c Classifier) (*SavedModel, error) {
	raw, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	return &SavedModel{Kind: c.Name(), Model: raw}, nil
}

// LoadModel decodes a classifier by its algorithm tag.
func LoadModel(s *SavedModel) (Classifier, error) {
	var c Classifier
	switch s.Kind {
	case "DTC":
		c = &DecisionTree{}
	case "RF":
		c = &RandomForest{}
	case "GBDT":
		c = &GBDT{}
	default:
		return nil, fmt.Errorf("mlmodels: unknown model kind %q", s.Kind)
	}
	if err := json.Unmarshal(s.Model, c); err != nil {
		return nil, err
	}
	return c, nil
}
