package mlmodels

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// randDataset synthesizes a labeled dataset with learnable structure; shape
// parameters vary per seed so the property tests cover many tree geometries
// (shallow/deep, few/many classes, more classes than scratchClasses is not
// reachable here but large feature counts are).
func randDataset(t *testing.T, r *rand.Rand, n, nfeat, nclass int) *Dataset {
	t.Helper()
	samples := make([]Sample, n)
	for i := range samples {
		f := make([]float64, nfeat)
		score := 0.0
		for d := range f {
			f[d] = r.Float64()
			score += f[d] * float64(d%4)
		}
		samples[i] = Sample{Features: f, Label: (int(score*3) + i%2) % nclass}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	ds.NumClasses = nclass
	return ds
}

// queries draws fresh feature vectors (not from the training set) so the
// equivalence checks also exercise paths no training sample took.
func queries(r *rand.Rand, n, nfeat int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, nfeat)
		for d := range x {
			x[d] = r.Float64()*1.4 - 0.2 // deliberately wider than train range
		}
		out[i] = x
	}
	return out
}

// TestFlatMatchesPointer is the core compilation property: for every model
// the flat-arena walk must return exactly the label the pointer-tree
// reference walk returns, on every query, over many randomized datasets.
func TestFlatMatchesPointer(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(100 + trial)))
			nfeat := 2 + r.Intn(10)
			nclass := 2 + r.Intn(6)
			ds := randDataset(t, r, 150+r.Intn(300), nfeat, nclass)
			qs := queries(r, 200, nfeat)

			dtc := NewDecisionTree(TreeConfig{Seed: int64(trial)})
			rf := NewRandomForest(ForestConfig{NumTrees: 12, Seed: int64(trial)})
			gb := NewGBDT(GBDTConfig{NumRounds: 8, Seed: int64(trial)})
			for _, m := range []Classifier{dtc, rf, gb} {
				if err := m.Fit(ds); err != nil {
					t.Fatal(err)
				}
			}
			refs := map[string]func(x []float64) int{
				"DTC":  dtc.predictPointer,
				"RF":   rf.predictPointer,
				"GBDT": gb.predictPointer,
			}
			for _, m := range []Classifier{dtc, rf, gb} {
				ref := refs[m.Name()]
				for qi, x := range qs {
					got, err := m.Predict(x)
					if err != nil {
						t.Fatal(err)
					}
					if want := ref(x); got != want {
						t.Fatalf("%s query %d: flat predict %d, pointer predict %d", m.Name(), qi, got, want)
					}
				}
			}
		})
	}
}

// TestPredictBatchMatchesPredict checks the batch path returns exactly the
// per-call labels for every model that implements BatchPredictor.
func TestPredictBatchMatchesPredict(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nfeat, nclass := 6, 5
	ds := randDataset(t, r, 400, nfeat, nclass)
	qs := queries(r, 300, nfeat)

	models := []Classifier{
		NewDecisionTree(TreeConfig{Seed: 2}),
		NewRandomForest(ForestConfig{NumTrees: 15, Seed: 2}),
		NewGBDT(GBDTConfig{NumRounds: 10, Seed: 2}),
		NewKNN(5),
		&Majority{},
	}
	for _, m := range models {
		if err := m.Fit(ds); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		bp, ok := m.(BatchPredictor)
		if !ok {
			t.Fatalf("%s does not implement BatchPredictor", m.Name())
		}
		out := make([]int, len(qs))
		if err := bp.PredictBatch(qs, out); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i, x := range qs {
			want, err := m.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if out[i] != want {
				t.Fatalf("%s query %d: batch %d, per-call %d", m.Name(), i, out[i], want)
			}
		}
	}
}

// TestPredictBatchShortOutput checks the batch path rejects an undersized
// output slice instead of writing out of bounds.
func TestPredictBatchShortOutput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ds := randDataset(t, r, 100, 4, 3)
	m := NewDecisionTree(TreeConfig{Seed: 1})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	qs := queries(r, 10, 4)
	err := m.PredictBatch(qs, make([]int, 5))
	if err == nil {
		t.Fatal("PredictBatch accepted a short output slice")
	}
}

// TestSerializeRebuildsFlat checks the JSON round-trip rebuilds the flat
// arenas: a deserialized model must predict identically to the original on
// fresh queries (the deserialized model's Predict runs on its recompiled
// arena, so equality here proves the arena was rebuilt correctly).
func TestSerializeRebuildsFlat(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	nfeat, nclass := 7, 4
	ds := randDataset(t, r, 350, nfeat, nclass)
	qs := queries(r, 250, nfeat)

	models := []Classifier{
		NewDecisionTree(TreeConfig{Seed: 5}),
		NewRandomForest(ForestConfig{NumTrees: 10, Seed: 5}),
		NewGBDT(GBDTConfig{NumRounds: 6, Seed: 5}),
	}
	for _, m := range models {
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		saved, err := SaveModel(m)
		if err != nil {
			t.Fatalf("%s: save: %v", m.Name(), err)
		}
		// Force a real encode/decode cycle.
		blob, err := json.Marshal(saved)
		if err != nil {
			t.Fatal(err)
		}
		var reload SavedModel
		if err := json.Unmarshal(blob, &reload); err != nil {
			t.Fatal(err)
		}
		m2, err := LoadModel(&reload)
		if err != nil {
			t.Fatalf("%s: load: %v", m.Name(), err)
		}
		for i, x := range qs {
			want, err := m.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m2.Predict(x)
			if err != nil {
				t.Fatalf("%s: reloaded predict: %v", m.Name(), err)
			}
			if got != want {
				t.Fatalf("%s query %d: reloaded model predicts %d, original %d", m.Name(), i, got, want)
			}
		}
	}
}

// TestEvalScratchReuse checks a scratch reused across datasets of different
// sizes returns the same accuracies as fresh Evaluate calls.
func TestEvalScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	m := NewRandomForest(ForestConfig{NumTrees: 8, Seed: 4})
	big := randDataset(t, r, 500, 5, 4)
	if err := m.Fit(big); err != nil {
		t.Fatal(err)
	}
	var scratch EvalScratch
	sets := []*Dataset{big, randDataset(t, r, 50, 5, 4), randDataset(t, r, 220, 5, 4)}
	for i, ds := range sets {
		got, err := scratch.Evaluate(m, ds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(m, ds)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("set %d: scratch accuracy %v, fresh accuracy %v", i, got, want)
		}
	}
}
