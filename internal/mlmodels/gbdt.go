package mlmodels

import (
	"math"
	"math/rand"

	"cocg/internal/parallel"
)

// GBDTConfig controls gradient-boosted tree training.
type GBDTConfig struct {
	NumRounds    int     // boosting rounds; <=0 means 60
	LearningRate float64 // shrinkage; <=0 means 0.2
	Tree         TreeConfig
	Seed         int64
	// Workers bounds the goroutines used inside each boosting round (the
	// rounds themselves are inherently sequential): the per-class candidate
	// trees fit concurrently and the residual/score passes fan out over
	// sample chunks. Each class tree derives its RNG from a seed drawn
	// serially before the fan-out, so the model is identical at every
	// worker count. <= 0 means GOMAXPROCS.
	Workers int
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.NumRounds <= 0 {
		c.NumRounds = 60
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.2
	}
	if c.Tree.MaxDepth <= 0 {
		c.Tree.MaxDepth = 4 // boosting uses shallow trees
	}
	c.Tree = c.Tree.withDefaults()
	return c
}

// GBDT is the paper's gradient-boosted decision tree classifier: multiclass
// boosting with a softmax objective. Each round fits one regression tree per
// class to the negative gradient (one-hot minus predicted probability) and
// uses the standard Newton leaf value.
type GBDT struct {
	cfg GBDTConfig
	// trees is the pointer-tree grid (serialization source of truth);
	// prediction walks the shared flat arena instead.
	trees  [][]*treeNode // trees[round][class]
	flat   []flatNode    // every round's trees compiled contiguously
	roots  [][]int32     // roots[round][class] arena offsets
	nfeat  int
	nclass int
	prior  []float64 // initial log-odds per class
	fitted bool
	// fit is the reusable pre-sorted training arena (see fit.go): one
	// column index shared by every round's class trees plus a free list of
	// per-class tree scratches. Lazily created, never serialized.
	fit *fitScratch
}

// NewGBDT returns an unfitted GBDT classifier.
func NewGBDT(cfg GBDTConfig) *GBDT {
	return &GBDT{cfg: cfg.withDefaults()}
}

// Name implements Classifier.
func (g *GBDT) Name() string { return "GBDT" }

// Fit implements Classifier. Training runs on the pre-sorted column index
// (fit.go): the dataset is indexed once for all rounds (residuals change
// every round, feature order never does), class trees draw reusable
// scratches from a free list, and each round's trees grow by linear scans.
// The fitted model is byte-identical to the legacy per-node-sorting builder
// (fitLegacy) at every worker count.
func (g *GBDT) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	n := ds.Len()
	k, scores := g.initBoost(ds)
	rng := rand.New(rand.NewSource(g.cfg.Seed))

	g.trees = make([][]*treeNode, 0, g.cfg.NumRounds)
	kf := float64(k)
	workers := g.cfg.Workers
	// The per-class trees own the worker budget; each scans its features
	// serially.
	treeCfg := g.cfg.Tree
	treeCfg.Workers = 1
	if g.fit == nil {
		g.fit = &fitScratch{}
	}
	scratches := parallel.Workers(workers)
	if scratches > k {
		scratches = k
	}
	g.fit.prepare(ds, workers, scratches, 1, treeCfg.MaxDepth)
	// leaf is the Newton step for the softmax objective:
	// (K-1)/K * sum(r) / sum(|r| * (1-|r|)), folded in stable row order —
	// the same order the legacy builder's rows slices carry.
	leaf := func(rows []int32, tgt []float64) float64 {
		var num, den float64
		for _, r := range rows {
			t := tgt[r]
			num += t
			a := math.Abs(t)
			den += a * (1 - a)
		}
		if den < 1e-12 {
			return 0
		}
		return (kf - 1) / kf * num / den
	}
	// residuals[c][i] is class c's negative gradient for sample i; the row
	// identity that regTarget carried is implicit in the index.
	residuals := make([][]float64, k)
	for c := range residuals {
		residuals[c] = make([]float64, n)
	}
	for round := 0; round < g.cfg.NumRounds; round++ {
		// Residuals for every class under the current model; each sample's
		// row is independent, so the pass fans out over sample chunks.
		parallel.ForChunks(workers, n, func(_, lo, hi int) {
			probs := make([]float64, k)
			for i := lo; i < hi; i++ {
				softmaxInto(scores[i], probs)
				for c := 0; c < k; c++ {
					y := 0.0
					if ds.Samples[i].Label == c {
						y = 1.0
					}
					residuals[c][i] = y - probs[c]
				}
			}
		})
		// One candidate tree per class; the fits are independent given the
		// residuals. Seeds are drawn serially so the fan-out cannot change
		// the model.
		seeds := make([]int64, k)
		for c := range seeds {
			seeds[c] = rng.Int63()
		}
		roundTrees := make([]*treeNode, k)
		parallel.For(workers, k, func(c int) {
			classRNG := rand.New(rand.NewSource(seeds[c]))
			ts := <-g.fit.free
			ts.beginFull()
			copy(ts.tgt[:n], residuals[c])
			roundTrees[c] = ts.growReg(treeCfg, classRNG, 0, n, 0, leaf)
			g.fit.free <- ts
		})
		// Update scores with the shrunken tree outputs.
		parallel.ForChunks(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				for c := 0; c < k; c++ {
					scores[i][c] += g.cfg.LearningRate * predictReg(roundTrees[c], ds.Samples[i].Features)
				}
			}
		})
		g.trees = append(g.trees, roundTrees)
	}
	g.flat, g.roots = compileRounds(g.trees)
	g.nfeat = ds.NumFeatures
	g.nclass = k
	g.fitted = true
	return nil
}

// initBoost computes the Laplace-smoothed log priors and the per-sample
// score matrix both builders start from.
func (g *GBDT) initBoost(ds *Dataset) (k int, scores [][]float64) {
	n := ds.Len()
	k = ds.NumClasses
	if k < 2 {
		k = 2 // degenerate single-class data still needs a valid softmax
	}
	counts := make([]float64, k)
	for _, s := range ds.Samples {
		counts[s.Label]++
	}
	g.prior = make([]float64, k)
	for c := range g.prior {
		p := (counts[c] + 1) / (float64(n) + float64(k)) // Laplace smoothing
		g.prior[c] = math.Log(p)
	}
	// scores[i][c] is the current raw score of sample i for class c.
	scores = make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, k)
		copy(scores[i], g.prior)
	}
	return k, scores
}

// fitLegacy is the pre-sorted trainer's reference implementation: the
// original builder that re-sorts every feature at every node and round,
// retained for the golden equivalence suite and the recorded before/after
// benchmarks.
func (g *GBDT) fitLegacy(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	n := ds.Len()
	k, scores := g.initBoost(ds)
	rng := rand.New(rand.NewSource(g.cfg.Seed))

	g.trees = make([][]*treeNode, 0, g.cfg.NumRounds)
	kf := float64(k)
	workers := g.cfg.Workers
	leaf := func(rows []regTarget) float64 {
		var num, den float64
		for _, r := range rows {
			num += r.target
			a := math.Abs(r.target)
			den += a * (1 - a)
		}
		if den < 1e-12 {
			return 0
		}
		return (kf - 1) / kf * num / den
	}
	residuals := make([][]regTarget, k)
	for c := range residuals {
		residuals[c] = make([]regTarget, n)
	}
	for round := 0; round < g.cfg.NumRounds; round++ {
		parallel.ForChunks(workers, n, func(_, lo, hi int) {
			probs := make([]float64, k)
			for i := lo; i < hi; i++ {
				softmaxInto(scores[i], probs)
				for c := 0; c < k; c++ {
					y := 0.0
					if ds.Samples[i].Label == c {
						y = 1.0
					}
					residuals[c][i] = regTarget{idx: i, target: y - probs[c]}
				}
			}
		})
		seeds := make([]int64, k)
		for c := range seeds {
			seeds[c] = rng.Int63()
		}
		roundTrees := make([]*treeNode, k)
		parallel.For(workers, k, func(c int) {
			classRNG := rand.New(rand.NewSource(seeds[c]))
			roundTrees[c] = buildRegTree(ds, residuals[c], g.cfg.Tree, 0, classRNG, leaf)
		})
		parallel.ForChunks(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				for c := 0; c < k; c++ {
					scores[i][c] += g.cfg.LearningRate * predictReg(roundTrees[c], ds.Samples[i].Features)
				}
			}
		})
		g.trees = append(g.trees, roundTrees)
	}
	g.flat, g.roots = compileRounds(g.trees)
	g.nfeat = ds.NumFeatures
	g.nclass = k
	g.fitted = true
	return nil
}

// Predict implements Classifier. Score accumulators live in a fixed stack
// buffer and the trees are walked in the compiled arena, so a call allocates
// nothing. Accumulation order (round-major, then class) matches the
// pointer-tree implementation exactly, keeping the floating-point scores —
// and therefore the argmax — byte-identical.
func (g *GBDT) Predict(x []float64) (int, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != g.nfeat {
		return 0, ErrBadFeatureLen
	}
	var buf [scratchClasses]float64
	scores := scoreScratch(buf[:], g.nclass)
	return g.score(x, scores), nil
}

// PredictBatch implements BatchPredictor: one score buffer serves the whole
// batch, so steady-state batch prediction does zero allocation.
//
//cocg:hot
func (g *GBDT) PredictBatch(xs [][]float64, out []int) error {
	if err := checkBatch(g.fitted, xs, out); err != nil {
		return err
	}
	var buf [scratchClasses]float64
	scores := scoreScratch(buf[:], g.nclass) //cocg:lint-ignore hotalloc grow path; the inlined make only runs when nclass exceeds the stack scratch
	for i, x := range xs {
		if len(x) != g.nfeat {
			return ErrBadFeatureLen
		}
		out[i] = g.score(x, scores)
	}
	return nil
}

// score accumulates every round's shrunken tree outputs into scores
// (nclass-long scratch, overwritten) and returns the argmax class.
func (g *GBDT) score(x []float64, scores []float64) int {
	copy(scores, g.prior)
	for _, round := range g.roots {
		for c, r := range round {
			scores[c] += g.cfg.LearningRate * flatLeaf(g.flat, r, x).leafValue()
		}
	}
	best, bestS := 0, math.Inf(-1)
	for c, s := range scores {
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// scoreScratch slices an n-class score buffer out of buf, falling back to an
// allocation for class counts beyond the stack scratch.
func scoreScratch(buf []float64, n int) []float64 {
	if n > len(buf) {
		return make([]float64, n)
	}
	return buf[:n]
}

// predictPointer is the pre-compilation pointer walk, kept as the reference
// implementation for the flat-vs-pointer property tests and benchmarks.
func (g *GBDT) predictPointer(x []float64) int {
	scores := make([]float64, g.nclass)
	copy(scores, g.prior)
	for _, round := range g.trees {
		for c, t := range round {
			scores[c] += g.cfg.LearningRate * predictReg(t, x)
		}
	}
	best, bestS := 0, math.Inf(-1)
	for c, s := range scores {
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// Rounds returns how many boosting rounds were trained.
func (g *GBDT) Rounds() int { return len(g.trees) }

// softmaxInto writes softmax(scores) into out (same length), using the
// max-subtraction trick for numerical stability.
func softmaxInto(scores, out []float64) {
	m := scores[0]
	for _, s := range scores[1:] {
		if s > m {
			m = s
		}
	}
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}
