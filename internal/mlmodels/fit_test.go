package mlmodels

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// dupDataset stresses tie handling: features live on a tiny value grid, so
// every column is packed with duplicate values — including ties that
// straddle class boundaries and, downstream, tie runs widened further by
// bootstrap duplication. This is the dataset where an undefined tie order
// would diverge first.
func dupDataset(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		f := make([]float64, 6)
		for d := range f {
			f[d] = float64(r.Intn(4))
		}
		label := int(f[0]+f[1]) % 3
		if r.Intn(5) == 0 {
			label = r.Intn(3)
		}
		samples[i] = Sample{Features: f, Label: label}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		panic(err)
	}
	return ds
}

// goldenDatasets are the fixtures the equivalence suite sweeps: cleanly
// separable, XOR-entangled, and duplicate-heavy.
func goldenDatasets() map[string]*Dataset {
	return map[string]*Dataset{
		"synth": synthDataset(300, 4),
		"xor":   xorDataset(400, 5),
		"dup":   dupDataset(250, 6),
	}
}

// mustMarshal serializes a fitted model through its MarshalJSON — the
// pointer trees are the serialization source of truth, so byte equality
// here means split-for-split, threshold-for-threshold identical models.
func mustMarshal(t *testing.T, m Classifier) []byte {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal %s: %v", m.Name(), err)
	}
	return raw
}

// TestDTCFitMatchesLegacyGolden proves the pre-sorted trainer reproduces
// the legacy builder byte-for-byte across seeds, depths, feature subsets
// (which exercise the shared RNG stream), and worker counts.
func TestDTCFitMatchesLegacyGolden(t *testing.T) {
	cfgs := []TreeConfig{
		{Seed: 1},
		{Seed: 7, MaxDepth: 3},
		{Seed: 11, MaxDepth: 25},
		{Seed: 3, FeatureSubset: 2},
		{Seed: 5, FeatureSubset: 1, MaxDepth: 6},
		{Seed: 1, Workers: 8},
		{Seed: 3, FeatureSubset: 2, Workers: 8},
	}
	for name, ds := range goldenDatasets() {
		for _, cfg := range cfgs {
			ref := NewDecisionTree(cfg)
			if err := ref.fitLegacy(ds); err != nil {
				t.Fatalf("%s %+v: legacy fit: %v", name, cfg, err)
			}
			got := NewDecisionTree(cfg)
			if err := got.Fit(ds); err != nil {
				t.Fatalf("%s %+v: fit: %v", name, cfg, err)
			}
			if !bytes.Equal(mustMarshal(t, got), mustMarshal(t, ref)) {
				t.Errorf("%s %+v: pre-sorted DTC differs from legacy builder", name, cfg)
			}
		}
	}
}

// TestRFFitMatchesLegacyGolden covers the bagged path: bootstrap weights,
// index compaction, and per-tree RNG streams must reproduce the legacy
// forest — trees AND the out-of-bag estimate — at -jobs 1 and 8.
func TestRFFitMatchesLegacyGolden(t *testing.T) {
	cfgs := []ForestConfig{
		{NumTrees: 12, Seed: 2, Workers: 1},
		{NumTrees: 12, Seed: 2, Workers: 8},
		{NumTrees: 8, Seed: 9, Tree: TreeConfig{MaxDepth: 4}, Workers: 8},
		{NumTrees: 8, Seed: 4, Tree: TreeConfig{FeatureSubset: 3}, Workers: 8},
	}
	for name, ds := range goldenDatasets() {
		for _, cfg := range cfgs {
			ref := NewRandomForest(cfg)
			if err := ref.fitLegacy(ds); err != nil {
				t.Fatalf("%s %+v: legacy fit: %v", name, cfg, err)
			}
			got := NewRandomForest(cfg)
			if err := got.Fit(ds); err != nil {
				t.Fatalf("%s %+v: fit: %v", name, cfg, err)
			}
			if !bytes.Equal(mustMarshal(t, got), mustMarshal(t, ref)) {
				t.Errorf("%s workers=%d: pre-sorted RF differs from legacy builder", name, cfg.Workers)
			}
			if got.OOBAccuracy() != ref.OOBAccuracy() {
				t.Errorf("%s workers=%d: OOB %v != legacy %v", name, cfg.Workers, got.OOBAccuracy(), ref.OOBAccuracy())
			}
		}
	}
}

// TestGBDTFitMatchesLegacyGolden covers the regression path, where the tie
// order inside equal-value runs is observable in the float split scores:
// the stable legacy sort and the column index's (value, row id) order must
// fold residuals identically, round after round, at -jobs 1 and 8.
func TestGBDTFitMatchesLegacyGolden(t *testing.T) {
	cfgs := []GBDTConfig{
		{NumRounds: 8, Seed: 2, Workers: 1},
		{NumRounds: 8, Seed: 2, Workers: 8},
		{NumRounds: 5, Seed: 7, Tree: TreeConfig{MaxDepth: 6}, Workers: 8},
		{NumRounds: 5, Seed: 3, Tree: TreeConfig{FeatureSubset: 2}, Workers: 8},
	}
	for name, ds := range goldenDatasets() {
		for _, cfg := range cfgs {
			ref := NewGBDT(cfg)
			if err := ref.fitLegacy(ds); err != nil {
				t.Fatalf("%s %+v: legacy fit: %v", name, cfg, err)
			}
			got := NewGBDT(cfg)
			if err := got.Fit(ds); err != nil {
				t.Fatalf("%s %+v: fit: %v", name, cfg, err)
			}
			if !bytes.Equal(mustMarshal(t, got), mustMarshal(t, ref)) {
				t.Errorf("%s workers=%d: pre-sorted GBDT differs from legacy builder", name, cfg.Workers)
			}
		}
	}
}

// TestFitScratchReuse proves refitting through the same model (the online
// learner's steady state) reuses the arena without contaminating results:
// a model refit on a second dataset matches a fresh model fit on it.
func TestFitScratchReuse(t *testing.T) {
	first := synthDataset(300, 4)
	second := dupDataset(250, 6)

	dtc := NewDecisionTree(TreeConfig{Seed: 3})
	if err := dtc.Fit(first); err != nil {
		t.Fatal(err)
	}
	if err := dtc.Fit(second); err != nil {
		t.Fatal(err)
	}
	fresh := NewDecisionTree(TreeConfig{Seed: 3})
	if err := fresh.Fit(second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, dtc), mustMarshal(t, fresh)) {
		t.Error("DTC refit through a reused arena differs from a fresh fit")
	}

	rf := NewRandomForest(ForestConfig{NumTrees: 8, Seed: 3, Workers: 4})
	if err := rf.Fit(first); err != nil {
		t.Fatal(err)
	}
	if err := rf.Fit(second); err != nil {
		t.Fatal(err)
	}
	freshRF := NewRandomForest(ForestConfig{NumTrees: 8, Seed: 3, Workers: 4})
	if err := freshRF.Fit(second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, rf), mustMarshal(t, freshRF)) {
		t.Error("RF refit through a reused arena differs from a fresh fit")
	}

	gb := NewGBDT(GBDTConfig{NumRounds: 4, Seed: 3, Workers: 4})
	if err := gb.Fit(first); err != nil {
		t.Fatal(err)
	}
	if err := gb.Fit(second); err != nil {
		t.Fatal(err)
	}
	freshGB := NewGBDT(GBDTConfig{NumRounds: 4, Seed: 3, Workers: 4})
	if err := freshGB.Fit(second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, gb), mustMarshal(t, freshGB)) {
		t.Error("GBDT refit through a reused arena differs from a fresh fit")
	}
}

// TestFitSteadyStateAllocationFree gates the split kernel: with a prepared
// arena, one full node cycle — bag reset, class counts, candidate draw
// (including the rng.Shuffle of a proper feature subset), best-split scan
// over every feature, and partition propagation — allocates nothing, for
// both the classification and regression kernels.
func TestFitSteadyStateAllocationFree(t *testing.T) {
	ds := synthDataset(512, 3)
	var s fitScratch
	s.prepare(ds, 1, 1, 1, 12)
	ts := <-s.free
	defer func() { s.free <- ts }()
	rng := rand.New(rand.NewSource(1))

	classCycle := func(subset int) {
		ts.beginFull()
		ts.countNode(0, ts.m)
		feats := ts.candidateFeaturesInto(subset, rng)
		feat, c := ts.bestSplit(feats, 0, ts.m, float64(ts.m), false)
		if !c.ok {
			t.Fatal("no classification split found")
		}
		// Exercise both mark paths: the boundary-reuse fast path and the
		// compare-pass fallback.
		ts.markPrefix(feat, 0, ts.m, c.bi+1)
		ts.markClass(feat, c.thr, 0, ts.m)
		ts.propagate(0, ts.m, true, true, feat)
	}
	if allocs := testing.AllocsPerRun(50, func() { classCycle(0) }); allocs != 0 {
		t.Errorf("classification split cycle allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { classCycle(2) }); allocs != 0 {
		t.Errorf("feature-subset split cycle allocates %v/op, want 0", allocs)
	}

	for r := 0; r < ds.Len(); r++ {
		ts.tgt[r] = float64(ds.Samples[r].Label) + 0.25*float64(r%3)
	}
	regCycle := func() {
		ts.beginFull()
		feats := ts.candidateFeaturesInto(0, rng)
		feat, c := ts.bestSplit(feats, 0, ts.m, float64(ts.m), true)
		if !c.ok {
			t.Fatal("no regression split found")
		}
		ts.markReg(feat, c.thr, 0, ts.m)
		ts.propagate(0, ts.m, true, true, feat)
	}
	if allocs := testing.AllocsPerRun(50, regCycle); allocs != 0 {
		t.Errorf("regression split cycle allocates %v/op, want 0", allocs)
	}
}
