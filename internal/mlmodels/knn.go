package mlmodels

import "math"

// KNN is a k-nearest-neighbors classifier — a floor baseline for the paper's
// three tree ensembles: no structure learned, just memorized transitions.
// Features are z-score normalized at fit time so large-range columns do not
// drown informative small-range ones.
//
// The memorized set is stored as one row-major []float64 (plus a parallel
// label array) rather than per-sample slices, so the distance scan streams
// through contiguous memory, and Predict keeps only the K best candidates via
// bounded insertion instead of sorting the full distance list.
type KNN struct {
	K      int       // neighbors; <=0 means 5
	feats  []float64 // n × nfeat, row-major, z-score normalized
	labels []int32
	mean   []float64
	scale  []float64
	nfeat  int
	nclass int
	fitted bool
}

// NewKNN returns an unfitted kNN classifier.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (k *KNN) Name() string { return "KNN" }

// Fit implements Classifier (memorization plus normalization statistics).
func (k *KNN) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	k.nfeat = ds.NumFeatures
	k.nclass = ds.NumClasses
	k.mean = make([]float64, k.nfeat)
	k.scale = make([]float64, k.nfeat)
	n := float64(ds.Len())
	for _, s := range ds.Samples {
		for f, v := range s.Features {
			k.mean[f] += v
		}
	}
	for f := range k.mean {
		k.mean[f] /= n
	}
	for _, s := range ds.Samples {
		for f, v := range s.Features {
			d := v - k.mean[f]
			k.scale[f] += d * d
		}
	}
	for f := range k.scale {
		k.scale[f] = math.Sqrt(k.scale[f] / n)
		if k.scale[f] == 0 {
			k.scale[f] = 1
		}
	}
	k.feats = make([]float64, ds.Len()*k.nfeat)
	k.labels = make([]int32, ds.Len())
	for i, s := range ds.Samples {
		row := k.feats[i*k.nfeat : (i+1)*k.nfeat]
		for f, v := range s.Features {
			row[f] = (v - k.mean[f]) / k.scale[f]
		}
		k.labels[i] = int32(s.Label)
	}
	k.fitted = true
	return nil
}

// knnNeigh is one candidate neighbor during the bounded selection.
type knnNeigh struct {
	d     float64 // squared distance (monotonic in the Euclidean distance)
	label int32
}

// scratchNeighbors bounds the stack buffer for the K-nearest selection;
// larger K falls back to an allocation.
const scratchNeighbors = 32

// Predict implements Classifier by majority vote over the K nearest training
// samples (Euclidean distance; compared squared, which preserves the order).
// Selection keeps a sorted window of the current K best via bounded
// insertion — O(n·K) worst case instead of an O(n log n) full sort, and in
// practice one comparison per non-candidate row. Distance ties resolve
// toward the earlier training row, deterministically.
func (k *KNN) Predict(x []float64) (int, error) {
	if !k.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != k.nfeat {
		return 0, ErrBadFeatureLen
	}
	var xbuf [scratchClasses]float64
	xn := xbuf[:]
	if k.nfeat > len(xn) {
		xn = make([]float64, k.nfeat)
	}
	xn = xn[:k.nfeat]
	for f, v := range x {
		xn[f] = (v - k.mean[f]) / k.scale[f]
	}
	kk := k.K
	if n := len(k.labels); kk > n {
		kk = n
	}
	var nbuf [scratchNeighbors]knnNeigh
	nb := nbuf[:0]
	if kk > len(nbuf) {
		nb = make([]knnNeigh, 0, kk)
	}
	worst := math.Inf(1)
	for i, lab := range k.labels {
		row := k.feats[i*k.nfeat : (i+1)*k.nfeat]
		var d float64
		for f, v := range row {
			diff := v - xn[f]
			d += diff * diff
		}
		if len(nb) == kk {
			if d >= worst {
				continue
			}
			nb = nb[:kk-1]
		}
		// Insert in ascending distance order; strict comparison keeps
		// equal-distance earlier rows ahead of later ones.
		nb = append(nb, knnNeigh{})
		j := len(nb) - 1
		for j > 0 && nb[j-1].d > d {
			nb[j] = nb[j-1]
			j--
		}
		nb[j] = knnNeigh{d: d, label: lab}
		worst = nb[len(nb)-1].d
	}
	var vbuf [scratchClasses]int
	votes := voteScratch(vbuf[:], k.nclass)
	for _, n := range nb {
		votes[n.label]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best, nil
}

// PredictBatch implements BatchPredictor.
func (k *KNN) PredictBatch(xs [][]float64, out []int) error {
	if err := checkBatch(k.fitted, xs, out); err != nil {
		return err
	}
	for i, x := range xs {
		p, err := k.Predict(x)
		if err != nil {
			return err
		}
		out[i] = p
	}
	return nil
}

// Majority always predicts the most frequent training label — the absolute
// accuracy floor any real model must clear.
type Majority struct {
	label  int
	nfeat  int
	fitted bool
}

// NewMajority returns an unfitted majority-class classifier.
func NewMajority() *Majority { return &Majority{} }

// Name implements Classifier.
func (m *Majority) Name() string { return "Majority" }

// Fit implements Classifier.
func (m *Majority) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	counts := make([]int, ds.NumClasses)
	for _, s := range ds.Samples {
		counts[s.Label]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	m.label = best
	m.nfeat = ds.NumFeatures
	m.fitted = true
	return nil
}

// Predict implements Classifier.
func (m *Majority) Predict(x []float64) (int, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != m.nfeat {
		return 0, ErrBadFeatureLen
	}
	return m.label, nil
}

// PredictBatch implements BatchPredictor.
func (m *Majority) PredictBatch(xs [][]float64, out []int) error {
	if err := checkBatch(m.fitted, xs, out); err != nil {
		return err
	}
	for i, x := range xs {
		if len(x) != m.nfeat {
			return ErrBadFeatureLen
		}
		out[i] = m.label
	}
	return nil
}
