package mlmodels

import (
	"math"
	"sort"
)

// KNN is a k-nearest-neighbors classifier — a floor baseline for the paper's
// three tree ensembles: no structure learned, just memorized transitions.
// Features are z-score normalized at fit time so large-range columns do not
// drown informative small-range ones.
type KNN struct {
	K       int // neighbors; <=0 means 5
	samples []Sample
	mean    []float64
	scale   []float64
	nfeat   int
	nclass  int
	fitted  bool
}

// NewKNN returns an unfitted kNN classifier.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (k *KNN) Name() string { return "KNN" }

// Fit implements Classifier (memorization plus normalization statistics).
func (k *KNN) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	k.nfeat = ds.NumFeatures
	k.nclass = ds.NumClasses
	k.mean = make([]float64, k.nfeat)
	k.scale = make([]float64, k.nfeat)
	n := float64(ds.Len())
	for _, s := range ds.Samples {
		for f, v := range s.Features {
			k.mean[f] += v
		}
	}
	for f := range k.mean {
		k.mean[f] /= n
	}
	for _, s := range ds.Samples {
		for f, v := range s.Features {
			d := v - k.mean[f]
			k.scale[f] += d * d
		}
	}
	for f := range k.scale {
		k.scale[f] = math.Sqrt(k.scale[f] / n)
		if k.scale[f] == 0 {
			k.scale[f] = 1
		}
	}
	k.samples = make([]Sample, ds.Len())
	for i, s := range ds.Samples {
		feat := make([]float64, k.nfeat)
		for f, v := range s.Features {
			feat[f] = (v - k.mean[f]) / k.scale[f]
		}
		k.samples[i] = Sample{Features: feat, Label: s.Label}
	}
	k.fitted = true
	return nil
}

// Predict implements Classifier by majority vote over the K nearest
// training samples (Euclidean distance).
func (k *KNN) Predict(x []float64) (int, error) {
	if !k.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != k.nfeat {
		return 0, ErrBadFeatureLen
	}
	type neigh struct {
		d     float64
		label int
	}
	xn := make([]float64, k.nfeat)
	for f, v := range x {
		xn[f] = (v - k.mean[f]) / k.scale[f]
	}
	ns := make([]neigh, len(k.samples))
	for i, s := range k.samples {
		var d float64
		for f, v := range s.Features {
			diff := v - xn[f]
			d += diff * diff
		}
		ns[i] = neigh{math.Sqrt(d), s.Label}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].d < ns[b].d })
	kk := k.K
	if kk > len(ns) {
		kk = len(ns)
	}
	votes := make([]int, k.nclass)
	for _, n := range ns[:kk] {
		votes[n.label]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best, nil
}

// Majority always predicts the most frequent training label — the absolute
// accuracy floor any real model must clear.
type Majority struct {
	label  int
	nfeat  int
	fitted bool
}

// NewMajority returns an unfitted majority-class classifier.
func NewMajority() *Majority { return &Majority{} }

// Name implements Classifier.
func (m *Majority) Name() string { return "Majority" }

// Fit implements Classifier.
func (m *Majority) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	counts := make([]int, ds.NumClasses)
	for _, s := range ds.Samples {
		counts[s.Label]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	m.label = best
	m.nfeat = ds.NumFeatures
	m.fitted = true
	return nil
}

// Predict implements Classifier.
func (m *Majority) Predict(x []float64) (int, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != m.nfeat {
		return 0, ErrBadFeatureLen
	}
	return m.label, nil
}
