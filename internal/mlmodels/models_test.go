package mlmodels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset generates a learnable 3-class dataset: class determined by
// which of three feature regions the point falls in, plus noise features.
func synthDataset(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		label := r.Intn(3)
		f := make([]float64, 5)
		// Informative features 0 and 1.
		f[0] = float64(label)*10 + r.Float64()*4
		f[1] = float64(2-label)*8 + r.Float64()*3
		// Noise features.
		f[2], f[3], f[4] = r.Float64()*100, r.Float64()*100, r.Float64()*100
		samples[i] = Sample{Features: f, Label: label}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		panic(err)
	}
	return ds
}

// xorDataset is non-linearly separable: label = (x>0.5) XOR (y>0.5).
func xorDataset(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		x, y := r.Float64(), r.Float64()
		label := 0
		if (x > 0.5) != (y > 0.5) {
			label = 1
		}
		samples[i] = Sample{Features: []float64{x, y}, Label: label}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		panic(err)
	}
	return ds
}

func allModels() []Classifier {
	return []Classifier{
		NewDecisionTree(TreeConfig{Seed: 1}),
		NewRandomForest(ForestConfig{NumTrees: 25, Seed: 1}),
		NewGBDT(GBDTConfig{NumRounds: 25, Seed: 1}),
	}
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil); err != ErrEmptyDataset {
		t.Errorf("nil samples err = %v", err)
	}
	_, err := NewDataset([]Sample{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{1}, Label: 1},
	})
	if err == nil {
		t.Error("ragged features did not error")
	}
	_, err = NewDataset([]Sample{{Features: []float64{1}, Label: -1}})
	if err == nil {
		t.Error("negative label did not error")
	}
	ds, err := NewDataset([]Sample{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{3, 4}, Label: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures != 2 || ds.NumClasses != 3 {
		t.Errorf("inferred shape = (%d, %d)", ds.NumFeatures, ds.NumClasses)
	}
}

func TestSplitFractions(t *testing.T) {
	ds := synthDataset(100, 1)
	train, test := ds.Split(0.75, 42)
	if train.Len() != 75 || test.Len() != 25 {
		t.Errorf("split sizes = %d/%d", train.Len(), test.Len())
	}
	if train.NumClasses != ds.NumClasses || test.NumFeatures != ds.NumFeatures {
		t.Error("split lost dataset shape")
	}
	// Degenerate fractions stay within bounds.
	tr, te := ds.Split(0, 1)
	if tr.Len() != 1 || te.Len() != 99 {
		t.Errorf("Split(0) sizes = %d/%d", tr.Len(), te.Len())
	}
	tr, te = ds.Split(2, 1)
	if tr.Len() != 100 || te.Len() != 0 {
		t.Errorf("Split(2) sizes = %d/%d", tr.Len(), te.Len())
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	ds := synthDataset(60, 2)
	train, test := ds.Split(0.5, 7)
	if train.Len()+test.Len() != ds.Len() {
		t.Errorf("split lost samples: %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
}

func TestModelsLearnSeparableData(t *testing.T) {
	ds := synthDataset(400, 3)
	train, test := ds.Split(0.75, 9)
	for _, m := range allModels() {
		if err := m.Fit(train); err != nil {
			t.Fatalf("%s Fit: %v", m.Name(), err)
		}
		acc, err := Evaluate(m, test)
		if err != nil {
			t.Fatalf("%s Evaluate: %v", m.Name(), err)
		}
		if acc < 0.9 {
			t.Errorf("%s accuracy = %.3f on separable data, want >= 0.9", m.Name(), acc)
		}
	}
}

func TestModelsLearnXOR(t *testing.T) {
	ds := xorDataset(600, 4)
	train, test := ds.Split(0.75, 5)
	for _, m := range allModels() {
		if err := m.Fit(train); err != nil {
			t.Fatalf("%s Fit: %v", m.Name(), err)
		}
		acc, err := Evaluate(m, test)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.85 {
			t.Errorf("%s accuracy = %.3f on XOR, want >= 0.85", m.Name(), acc)
		}
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, m := range allModels() {
		if _, err := m.Predict([]float64{1, 2}); err != ErrNotFitted {
			t.Errorf("%s unfitted Predict err = %v", m.Name(), err)
		}
	}
}

func TestFitEmptyDataset(t *testing.T) {
	empty := &Dataset{}
	for _, m := range allModels() {
		if err := m.Fit(empty); err != ErrEmptyDataset {
			t.Errorf("%s Fit(empty) err = %v", m.Name(), err)
		}
		if err := m.Fit(nil); err != ErrEmptyDataset {
			t.Errorf("%s Fit(nil) err = %v", m.Name(), err)
		}
	}
}

func TestPredictWrongFeatureLen(t *testing.T) {
	ds := synthDataset(50, 5)
	for _, m := range allModels() {
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Predict([]float64{1}); err != ErrBadFeatureLen {
			t.Errorf("%s wrong-length Predict err = %v", m.Name(), err)
		}
	}
}

func TestSingleClassDataset(t *testing.T) {
	samples := make([]Sample, 20)
	for i := range samples {
		samples[i] = Sample{Features: []float64{float64(i), 1}, Label: 0}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allModels() {
		if err := m.Fit(ds); err != nil {
			t.Fatalf("%s Fit single-class: %v", m.Name(), err)
		}
		got, err := m.Predict([]float64{5, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("%s predicted %d for single-class data", m.Name(), got)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	ds := synthDataset(200, 6)
	test := synthDataset(50, 7)
	for _, mk := range []func() Classifier{
		func() Classifier { return NewDecisionTree(TreeConfig{Seed: 3}) },
		func() Classifier { return NewRandomForest(ForestConfig{NumTrees: 10, Seed: 3}) },
		func() Classifier { return NewGBDT(GBDTConfig{NumRounds: 10, Seed: 3}) },
	} {
		a, b := mk(), mk()
		if err := a.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(ds); err != nil {
			t.Fatal(err)
		}
		for _, s := range test.Samples {
			pa, _ := a.Predict(s.Features)
			pb, _ := b.Predict(s.Features)
			if pa != pb {
				t.Fatalf("%s not deterministic", a.Name())
			}
		}
	}
}

func TestForestNumTreesAndTreeDepth(t *testing.T) {
	ds := synthDataset(100, 8)
	f := NewRandomForest(ForestConfig{NumTrees: 7, Seed: 1})
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 7 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	dt := NewDecisionTree(TreeConfig{MaxDepth: 3, Seed: 1})
	if err := dt.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if d := dt.Depth(); d > 4 {
		t.Errorf("Depth = %d, want <= MaxDepth+1", d)
	}
	g := NewGBDT(GBDTConfig{NumRounds: 5, Seed: 1})
	if err := g.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if g.Rounds() != 5 {
		t.Errorf("Rounds = %d", g.Rounds())
	}
}

func TestEvaluateEmptyTest(t *testing.T) {
	ds := synthDataset(20, 9)
	m := NewDecisionTree(TreeConfig{Seed: 1})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(m, &Dataset{}); err != ErrEmptyDataset {
		t.Errorf("Evaluate empty err = %v", err)
	}
}

func TestPropertyPredictionsInRange(t *testing.T) {
	f := func(seed int64) bool {
		ds := synthDataset(80, seed)
		for _, m := range allModels() {
			if err := m.Fit(ds); err != nil {
				return false
			}
			for _, s := range ds.Samples[:10] {
				p, err := m.Predict(s.Features)
				if err != nil || p < 0 || p >= ds.NumClasses {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTrainAccuracyHigh(t *testing.T) {
	// A full-depth decision tree must fit the training data near-perfectly
	// when features distinguish the samples.
	f := func(seed int64) bool {
		ds := synthDataset(120, seed)
		m := NewDecisionTree(TreeConfig{MaxDepth: 25, Seed: seed})
		if err := m.Fit(ds); err != nil {
			return false
		}
		acc, err := Evaluate(m, ds)
		return err == nil && acc > 0.98
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	softmaxInto([]float64{1000, 1000, 1000}, out)
	for _, p := range out {
		if p < 0.33 || p > 0.34 {
			t.Errorf("uniform softmax = %v", out)
		}
	}
	softmaxInto([]float64{100, 0, 0}, out)
	if out[0] < 0.999 {
		t.Errorf("dominant softmax = %v", out)
	}
	var sum float64
	for _, p := range out {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("softmax sum = %v", sum)
	}
}

func TestOOBAccuracy(t *testing.T) {
	ds := synthDataset(300, 41)
	f := NewRandomForest(ForestConfig{NumTrees: 30, Seed: 2})
	if f.OOBAccuracy() != -1 {
		t.Error("unfitted OOB != -1")
	}
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	oob := f.OOBAccuracy()
	if oob < 0 || oob > 1 {
		t.Fatalf("OOB = %v", oob)
	}
	// OOB should roughly agree with a held-out evaluation.
	test := synthDataset(100, 42)
	acc, err := Evaluate(f, test)
	if err != nil {
		t.Fatal(err)
	}
	if diff := oob - acc; diff > 0.15 || diff < -0.15 {
		t.Errorf("OOB %.3f far from held-out %.3f", oob, acc)
	}
}

// fitPredictAll fits a fresh model with the given worker count and returns
// its predictions over the dataset.
func fitPredictAll(t *testing.T, mk func() Classifier, ds *Dataset) []int {
	t.Helper()
	m := mk()
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	out := make([]int, ds.Len())
	for i, s := range ds.Samples {
		p, err := m.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestForestWorkerCountInvariant(t *testing.T) {
	// Tree seeds are drawn before the fan-out, so the fitted forest (and
	// its OOB estimate) must be identical at every worker count.
	ds := synthDataset(150, 11)
	var refOOB float64
	var ref []int
	for i, workers := range []int{1, 2, 4, 13} {
		f := NewRandomForest(ForestConfig{NumTrees: 20, Seed: 5, Workers: workers})
		if err := f.Fit(ds); err != nil {
			t.Fatal(err)
		}
		preds := make([]int, ds.Len())
		for j, s := range ds.Samples {
			p, err := f.Predict(s.Features)
			if err != nil {
				t.Fatal(err)
			}
			preds[j] = p
		}
		if i == 0 {
			refOOB, ref = f.OOBAccuracy(), preds
			continue
		}
		if f.OOBAccuracy() != refOOB {
			t.Errorf("workers=%d: OOB %v != serial %v", workers, f.OOBAccuracy(), refOOB)
		}
		for j := range ref {
			if preds[j] != ref[j] {
				t.Fatalf("workers=%d: prediction diverged at sample %d", workers, j)
			}
		}
	}
}

func TestGBDTWorkerCountInvariant(t *testing.T) {
	ds := synthDataset(150, 12)
	ref := fitPredictAll(t, func() Classifier {
		return NewGBDT(GBDTConfig{NumRounds: 15, Seed: 5, Workers: 1})
	}, ds)
	for _, workers := range []int{2, 4, 13} {
		got := fitPredictAll(t, func() Classifier {
			return NewGBDT(GBDTConfig{NumRounds: 15, Seed: 5, Workers: workers})
		}, ds)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("workers=%d: prediction diverged at sample %d", workers, j)
			}
		}
	}
}
