package mlmodels

import (
	"strings"
	"testing"
)

func fitDTC(t *testing.T, ds *Dataset) *DecisionTree {
	t.Helper()
	m := NewDecisionTree(TreeConfig{Seed: 1})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfusionMatrix(t *testing.T) {
	ds := synthDataset(300, 21)
	train, test := ds.Split(0.75, 5)
	m := fitDTC(t, train)
	cm, err := Confusion(m, test)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if diff := cm.Accuracy() - acc; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("confusion accuracy %.4f != Evaluate %.4f", cm.Accuracy(), acc)
	}
	// Total count equals test size.
	var total int
	for _, row := range cm.Counts {
		for _, c := range row {
			total += c
		}
	}
	if total != test.Len() {
		t.Errorf("matrix total %d != %d", total, test.Len())
	}
	for class := 0; class < cm.Classes; class++ {
		if r := cm.Recall(class); r < -1 || r > 1 {
			t.Errorf("recall(%d) = %v", class, r)
		}
	}
	if cm.Recall(-1) != -1 || cm.Recall(99) != -1 {
		t.Error("out-of-range recall not -1")
	}
	if !strings.Contains(cm.String(), "true\\pred") {
		t.Error("matrix rendering wrong")
	}
	if _, err := Confusion(m, &Dataset{}); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestFeatureImportanceFindsInformativeFeatures(t *testing.T) {
	// synthDataset: features 0 and 1 carry the label; 2-4 are noise.
	ds := synthDataset(400, 22)
	train, test := ds.Split(0.75, 6)
	m := fitDTC(t, train)
	imp, err := FeatureImportance(m, test, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != ds.NumFeatures {
		t.Fatalf("importance length %d", len(imp))
	}
	informative := imp[0] + imp[1]
	noise := imp[2] + imp[3] + imp[4]
	if informative <= noise {
		t.Errorf("informative importance %.3f not above noise %.3f (%v)", informative, noise, imp)
	}
	if _, err := FeatureImportance(m, &Dataset{}, 1); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := synthDataset(200, 23)
	res, err := CrossValidate(func() Classifier {
		return NewDecisionTree(TreeConfig{Seed: 2})
	}, ds, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 5 || len(res.Accuracies) != 5 {
		t.Fatalf("folds = %d/%d", res.Folds, len(res.Accuracies))
	}
	if res.Mean() < 0.85 {
		t.Errorf("CV mean %.3f on separable data", res.Mean())
	}
	for _, a := range res.Accuracies {
		if a < 0 || a > 1 {
			t.Errorf("fold accuracy %v", a)
		}
	}
	if _, err := CrossValidate(func() Classifier { return NewDecisionTree(TreeConfig{}) }, ds, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	tiny := &Dataset{Samples: ds.Samples[:3], NumFeatures: ds.NumFeatures, NumClasses: ds.NumClasses}
	if _, err := CrossValidate(func() Classifier { return NewDecisionTree(TreeConfig{}) }, tiny, 5, 1); err == nil {
		t.Error("k > n accepted")
	}
}

func TestCVResultMeanEmpty(t *testing.T) {
	r := &CVResult{}
	if r.Mean() != 0 {
		t.Error("empty CV mean != 0")
	}
}
