// Package mlmodels implements the three classifiers the paper trains for
// next-stage prediction (Section IV-B1): a CART Decision Tree Classifier
// (DTC), a Random Forest (RF), and Gradient Boosted Decision Trees (GBDT).
// All three are written from scratch on the standard library so the
// repository has no external dependencies.
//
// Training parallelizes through internal/parallel: RF fans bagged trees and
// GBDT fans per-class trees and residual chunks across ForestConfig.Workers /
// GBDTConfig.Workers goroutines. Per-tree RNG seeds are drawn serially from
// the master seed before any fan-out and floating-point partials merge in a
// fixed chunk order, so a fitted model is bit-identical at every worker
// count. Fitted models are immutable and safe for concurrent Predict calls;
// Fit itself must not run concurrently on one model value.
package mlmodels

import (
	"errors"
	"fmt"
	"math/rand"
)

// Sample is one labeled training example: a feature vector and a class label
// in [0, NumClasses).
type Sample struct {
	Features []float64
	Label    int
}

// Dataset is a labeled classification dataset.
type Dataset struct {
	Samples     []Sample
	NumFeatures int
	NumClasses  int
}

// Errors returned by dataset validation and model training.
var (
	ErrEmptyDataset   = errors.New("mlmodels: empty dataset")
	ErrNotFitted      = errors.New("mlmodels: model not fitted")
	ErrBadFeatureLen  = errors.New("mlmodels: feature vector length mismatch")
	ErrInvalidization = errors.New("mlmodels: invalid dataset")
)

// NewDataset builds a dataset from samples, inferring NumFeatures and
// NumClasses, and validates shape consistency.
func NewDataset(samples []Sample) (*Dataset, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyDataset
	}
	nf := len(samples[0].Features)
	nc := 0
	for i, s := range samples {
		if len(s.Features) != nf {
			return nil, fmt.Errorf("%w: sample %d has %d features, want %d",
				ErrInvalidization, i, len(s.Features), nf)
		}
		if s.Label < 0 {
			return nil, fmt.Errorf("%w: sample %d has negative label", ErrInvalidization, i)
		}
		if s.Label+1 > nc {
			nc = s.Label + 1
		}
	}
	return &Dataset{Samples: samples, NumFeatures: nf, NumClasses: nc}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Split partitions the dataset into a training set with trainFrac of the
// samples (randomly selected with the given seed) and a test set with the
// remainder — the paper's 75 %/25 % split (Section V-D2).
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	n := len(d.Samples)
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(trainFrac * float64(n))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain > n {
		nTrain = n
	}
	tr := make([]Sample, 0, nTrain)
	te := make([]Sample, 0, n-nTrain)
	for i, j := range idx {
		if i < nTrain {
			tr = append(tr, d.Samples[j])
		} else {
			te = append(te, d.Samples[j])
		}
	}
	train = &Dataset{Samples: tr, NumFeatures: d.NumFeatures, NumClasses: d.NumClasses}
	test = &Dataset{Samples: te, NumFeatures: d.NumFeatures, NumClasses: d.NumClasses}
	return train, test
}

// Classifier is the common interface of DTC, RF, and GBDT. A Classifier must
// be fitted before Predict is called.
type Classifier interface {
	// Fit trains the model on ds.
	Fit(ds *Dataset) error
	// Predict returns the predicted class for one feature vector.
	Predict(features []float64) (int, error)
	// Name returns the paper's abbreviation for the algorithm.
	Name() string
}

// Evaluate returns the fraction of test samples the classifier labels
// correctly. Callers that evaluate in a loop should reuse an EvalScratch.
func Evaluate(c Classifier, test *Dataset) (float64, error) {
	var s EvalScratch
	return s.Evaluate(c, test)
}

// EvalScratch holds the reusable buffers of repeated evaluations (the batch
// view of the samples and the prediction output), so scoring many models or
// many splits in a loop does not re-allocate per call. The zero value is
// ready to use; a scratch must not be shared between goroutines.
type EvalScratch struct {
	xs  [][]float64
	out []int
}

// Evaluate scores the classifier on the test set, using its native batch
// path when it has one. Results are identical to per-sample Predict calls.
func (s *EvalScratch) Evaluate(c Classifier, test *Dataset) (float64, error) {
	if test.Len() == 0 {
		return 0, ErrEmptyDataset
	}
	preds, err := s.Predict(c, test)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, smp := range test.Samples {
		if preds[i] == smp.Label {
			correct++
		}
	}
	return float64(correct) / float64(test.Len()), nil
}

// Predict fills and returns the scratch's prediction buffer with c's label
// for every sample, through PredictBatch when c implements BatchPredictor
// and per-call Predict otherwise. The returned slice is valid until the next
// use of the scratch.
func (s *EvalScratch) Predict(c Classifier, ds *Dataset) ([]int, error) {
	n := ds.Len()
	if cap(s.out) < n {
		s.out = make([]int, n)
	}
	out := s.out[:n]
	if bp, ok := c.(BatchPredictor); ok {
		if cap(s.xs) < n {
			s.xs = make([][]float64, n)
		}
		xs := s.xs[:n]
		for i, smp := range ds.Samples {
			xs[i] = smp.Features
		}
		if err := bp.PredictBatch(xs, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	for i, smp := range ds.Samples {
		p, err := c.Predict(smp.Features)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// majorityLabel returns the most frequent label among idx rows of samples.
func majorityLabel(samples []Sample, idx []int, numClasses int) int {
	counts := make([]int, numClasses)
	for _, i := range idx {
		counts[samples[i].Label]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}
