package mlmodels

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ConfusionMatrix counts (true label, predicted label) pairs.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int // Counts[true][pred]
}

// Confusion evaluates the classifier on the dataset and returns the matrix;
// prediction goes through the batch path when the model has one.
func Confusion(c Classifier, test *Dataset) (*ConfusionMatrix, error) {
	if test.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	n := test.NumClasses
	m := &ConfusionMatrix{Classes: n, Counts: make([][]int, n)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, n)
	}
	var scratch EvalScratch
	preds, err := scratch.Predict(c, test)
	if err != nil {
		return nil, err
	}
	for i, s := range test.Samples {
		got := preds[i]
		if got < 0 || got >= n {
			return nil, fmt.Errorf("mlmodels: prediction %d out of class range", got)
		}
		m.Counts[s.Label][got]++
	}
	return m, nil
}

// Accuracy returns the trace fraction.
func (m *ConfusionMatrix) Accuracy() float64 {
	var diag, total int
	for i, row := range m.Counts {
		for j, c := range row {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Recall returns the per-class recall (diagonal over row sum); classes never
// seen in the test set report -1.
func (m *ConfusionMatrix) Recall(class int) float64 {
	if class < 0 || class >= m.Classes {
		return -1
	}
	var row int
	for _, c := range m.Counts[class] {
		row += c
	}
	if row == 0 {
		return -1
	}
	return float64(m.Counts[class][class]) / float64(row)
}

// String renders the matrix with row = true class.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	b.WriteString("true\\pred")
	for j := 0; j < m.Classes; j++ {
		fmt.Fprintf(&b, "%6d", j)
	}
	b.WriteByte('\n')
	for i, row := range m.Counts {
		fmt.Fprintf(&b, "%9d", i)
		for _, c := range row {
			fmt.Fprintf(&b, "%6d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FeatureImportance scores each feature by permutation importance: how much
// held-out accuracy drops when that feature's column is shuffled. It is
// model-agnostic and works for all three classifiers.
func FeatureImportance(c Classifier, test *Dataset, seed int64) ([]float64, error) {
	if test.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	var scratch EvalScratch
	base, err := scratch.Evaluate(c, test)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, test.NumFeatures)
	for f := 0; f < test.NumFeatures; f++ {
		// Shuffle column f across a copied dataset.
		perm := rng.Perm(test.Len())
		shuffled := make([]Sample, test.Len())
		for i, s := range test.Samples {
			feat := make([]float64, len(s.Features))
			copy(feat, s.Features)
			feat[f] = test.Samples[perm[i]].Features[f]
			shuffled[i] = Sample{Features: feat, Label: s.Label}
		}
		ds := &Dataset{Samples: shuffled, NumFeatures: test.NumFeatures, NumClasses: test.NumClasses}
		acc, err := scratch.Evaluate(c, ds)
		if err != nil {
			return nil, err
		}
		out[f] = base - acc
	}
	return out, nil
}

// CVResult is one cross-validation summary.
type CVResult struct {
	Folds      int
	Accuracies []float64
}

// Mean returns the mean fold accuracy.
func (r *CVResult) Mean() float64 {
	var s float64
	for _, a := range r.Accuracies {
		s += a
	}
	if len(r.Accuracies) == 0 {
		return 0
	}
	return s / float64(len(r.Accuracies))
}

// CrossValidate runs k-fold cross-validation with a fresh model per fold
// (constructed by mk).
func CrossValidate(mk func() Classifier, ds *Dataset, k int, seed int64) (*CVResult, error) {
	if ds.Len() < k || k < 2 {
		return nil, fmt.Errorf("mlmodels: cannot %d-fold split %d samples", k, ds.Len())
	}
	idx := rand.New(rand.NewSource(seed)).Perm(ds.Len())
	res := &CVResult{Folds: k}
	var scratch EvalScratch
	for fold := 0; fold < k; fold++ {
		var train, test []Sample
		for i, j := range idx {
			if i%k == fold {
				test = append(test, ds.Samples[j])
			} else {
				train = append(train, ds.Samples[j])
			}
		}
		trainDS := &Dataset{Samples: train, NumFeatures: ds.NumFeatures, NumClasses: ds.NumClasses}
		testDS := &Dataset{Samples: test, NumFeatures: ds.NumFeatures, NumClasses: ds.NumClasses}
		m := mk()
		if err := m.Fit(trainDS); err != nil {
			return nil, err
		}
		acc, err := scratch.Evaluate(m, testDS)
		if err != nil {
			return nil, err
		}
		res.Accuracies = append(res.Accuracies, acc)
	}
	sort.Float64s(res.Accuracies)
	return res, nil
}
