package mlmodels

import (
	"encoding/json"
	"testing"
)

// roundTrip saves and reloads a classifier through the polymorphic wrapper.
func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	saved, err := SaveModel(c)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(saved)
	if err != nil {
		t.Fatal(err)
	}
	var back SavedModel
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&back)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestRoundTripPreservesPredictions(t *testing.T) {
	ds := synthDataset(300, 11)
	test := synthDataset(80, 12)
	for _, m := range allModels() {
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		loaded := roundTrip(t, m)
		if loaded.Name() != m.Name() {
			t.Errorf("kind changed: %s -> %s", m.Name(), loaded.Name())
		}
		for _, s := range test.Samples {
			want, err := m.Predict(s.Features)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Predict(s.Features)
			if err != nil {
				t.Fatalf("%s loaded Predict: %v", m.Name(), err)
			}
			if got != want {
				t.Fatalf("%s: prediction changed after round trip", m.Name())
			}
		}
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	for _, m := range allModels() {
		if _, err := SaveModel(m); err == nil {
			t.Errorf("%s: saving an unfitted model succeeded", m.Name())
		}
	}
}

func TestLoadUnknownKind(t *testing.T) {
	if _, err := LoadModel(&SavedModel{Kind: "SVM", Model: []byte("{}")}); err == nil {
		t.Error("unknown kind loaded")
	}
}

func TestLoadCorruptPayloads(t *testing.T) {
	cases := map[string]string{
		"DTC":  `{"tree":{"nodes":[]},"n_feat":2}`,
		"RF":   `{"trees":[],"n_feat":2,"n_class":2}`,
		"GBDT": `{"rounds":[],"prior":[],"n_feat":2,"n_class":2,"lr":0.2}`,
	}
	for kind, payload := range cases {
		if _, err := LoadModel(&SavedModel{Kind: kind, Model: []byte(payload)}); err == nil {
			t.Errorf("%s: corrupt payload loaded", kind)
		}
	}
	// Dangling child index.
	bad := `{"tree":{"nodes":[{"f":0,"t":1,"l":5,"r":-1}]},"n_feat":1}`
	if _, err := LoadModel(&SavedModel{Kind: "DTC", Model: []byte(bad)}); err == nil {
		t.Error("dangling node index loaded")
	}
	// Split node with one child missing.
	half := `{"tree":{"nodes":[{"f":0,"t":1,"l":1,"r":-1},{"f":-1,"c":0,"l":-1,"r":-1}]},"n_feat":1}`
	if _, err := LoadModel(&SavedModel{Kind: "DTC", Model: []byte(half)}); err == nil {
		t.Error("half-split node loaded")
	}
}

func TestFlattenUnflattenIdentity(t *testing.T) {
	ds := xorDataset(200, 13)
	m := NewDecisionTree(TreeConfig{Seed: 1})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	dto := toTreeDTO(m.root)
	back, err := fromTreeDTO(dto)
	if err != nil {
		t.Fatal(err)
	}
	if depth(back) != depth(m.root) {
		t.Errorf("depth changed: %d -> %d", depth(m.root), depth(back))
	}
}
