package mlmodels

import "errors"

// Flat inference layout: after fitting, every tree ensemble compiles its
// pointer-linked treeNodes into one contiguous []flatNode arena walked
// iteratively at prediction time. The online loop calls Predict once per
// stage boundary for every co-located session, so prediction is a production
// hot path: a pointer tree costs one likely cache miss per level per tree,
// while the arena packs nodes in preorder (a node's left child is always the
// next element) so a root-to-leaf walk mostly stays inside a few cache lines.
// Compilation changes only the memory layout — the walk performs exactly the
// same comparisons in the same order as the pointer tree, so predictions are
// byte-identical.

// ErrShortOutput is returned by PredictBatch when the out slice cannot hold
// one prediction per input row.
var ErrShortOutput = errors.New("mlmodels: output slice shorter than input batch")

// flatNode is one compiled tree node in the arena. Children are int32
// offsets into the same arena; feature == -1 marks a leaf carrying either a
// classification label or a regression value.
type flatNode struct {
	// param is the split threshold for interior nodes; for leaves it holds
	// the regression payload (GBDT member trees) instead — the two roles
	// never coexist. The pad field keeps the node at 32 bytes: exactly two
	// nodes per cache line, so no node ever straddles a line boundary
	// (a 24-byte packing measured slower for that reason).
	param   float64
	feature int32 // split feature; -1 for leaf
	left    int32 // arena offset; preorder layout makes this idx+1
	right   int32 // arena offset
	label   int32 // classification leaf payload
	_       int64 // pad to 32 bytes (see above)
}

// leafValue reads a leaf's regression payload; callers must only use it on
// nodes flatLeaf returned (feature < 0).
func (n *flatNode) leafValue() float64 { return n.param }

// scratchClasses bounds the per-call stack scratch (RF vote counts, GBDT
// score accumulators). Stage catalogs are small — typically under ten stage
// types — so the fixed buffers cover every real model; larger class counts
// fall back to an allocation.
const scratchClasses = 64

// countNodes sizes an arena so compilation allocates exactly once.
func countNodes(n *treeNode) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// appendFlat compiles the subtree rooted at n into the arena in preorder and
// returns its root offset.
func appendFlat(arena *[]flatNode, n *treeNode) int32 {
	idx := int32(len(*arena))
	param := n.threshold
	if n.feature < 0 {
		param = n.value
	}
	*arena = append(*arena, flatNode{
		feature: int32(n.feature),
		param:   param,
		label:   int32(n.label),
		left:    -1,
		right:   -1,
	})
	if n.feature >= 0 {
		l := appendFlat(arena, n.left)
		r := appendFlat(arena, n.right)
		(*arena)[idx].left = l
		(*arena)[idx].right = r
	}
	return idx
}

// compileTree compiles one tree into its own arena.
func compileTree(root *treeNode) []flatNode {
	arena := make([]flatNode, 0, countNodes(root))
	appendFlat(&arena, root)
	return arena
}

// compileForest compiles a list of trees into one shared arena, returning
// each tree's root offset.
func compileForest(trees []*treeNode) ([]flatNode, []int32) {
	total := 0
	for _, t := range trees {
		total += countNodes(t)
	}
	arena := make([]flatNode, 0, total)
	roots := make([]int32, len(trees))
	for i, t := range trees {
		roots[i] = appendFlat(&arena, t)
	}
	return arena, roots
}

// compileRounds compiles GBDT's trees[round][class] grid into one arena.
func compileRounds(rounds [][]*treeNode) ([]flatNode, [][]int32) {
	total := 0
	for _, round := range rounds {
		for _, t := range round {
			total += countNodes(t)
		}
	}
	arena := make([]flatNode, 0, total)
	roots := make([][]int32, len(rounds))
	for r, round := range rounds {
		roots[r] = make([]int32, len(round))
		for c, t := range round {
			roots[r][c] = appendFlat(&arena, t)
		}
	}
	return arena, roots
}

// flatLeaf walks the tree rooted at offset root and returns the leaf x lands
// in. The comparison (x[f] <= threshold goes left) matches the pointer walk
// exactly.
func flatLeaf(arena []flatNode, root int32, x []float64) *flatNode {
	n := &arena[root]
	for n.feature >= 0 {
		if x[n.feature] <= n.param {
			n = &arena[n.left]
		} else {
			n = &arena[n.right]
		}
	}
	return n
}

// BatchPredictor is implemented by classifiers with a batch prediction path:
// out[i] receives the prediction for xs[i]. Implementations keep all scratch
// on the stack or in caller-provided buffers, so steady-state batch
// prediction does zero allocation. Results are identical to calling Predict
// per row.
type BatchPredictor interface {
	Classifier
	// PredictBatch predicts every row of xs into out, which must be at
	// least len(xs) long.
	PredictBatch(xs [][]float64, out []int) error
}

// checkBatch validates the common PredictBatch preconditions.
func checkBatch(fitted bool, xs [][]float64, out []int) error {
	if !fitted {
		return ErrNotFitted
	}
	if len(out) < len(xs) {
		return ErrShortOutput
	}
	return nil
}
