package mlmodels

import (
	"math"
	"math/rand"
	"sort"
)

// TreeConfig controls CART tree induction for both the standalone DTC and
// the trees inside RF and GBDT.
type TreeConfig struct {
	MaxDepth        int // depth cap; <=0 means 12
	MinSamplesSplit int // minimum rows to attempt a split; <=0 means 2
	// FeatureSubset, when > 0, samples that many candidate features per
	// split (Random Forest style). 0 considers all features.
	FeatureSubset int
	Seed          int64
	// Workers bounds the goroutines used for within-tree candidate-feature
	// scans during Fit (and for building the pre-sorted column index);
	// <= 1 scans serially. The fitted tree is identical at every value —
	// see fit.go's exactness contract. RF and GBDT force their member
	// trees serial because their tree/class fan-out already owns the
	// worker budget.
	Workers int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinSamplesSplit <= 0 {
		c.MinSamplesSplit = 2
	}
	return c
}

// treeNode is one node of a CART tree; leaves have feature == -1.
type treeNode struct {
	feature   int     // split feature, -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	left      *treeNode
	right     *treeNode
	label     int     // classification leaf output
	value     float64 // regression leaf output (GBDT)
}

func (n *treeNode) isLeaf() bool { return n.feature == -1 }

// DecisionTree is the paper's DTC: a CART classifier split on Gini impurity.
type DecisionTree struct {
	cfg TreeConfig
	// root is the pointer tree built during induction; it stays the
	// serialization source of truth, but prediction runs on flat.
	root   *treeNode
	flat   []flatNode // compiled inference layout (see flat.go)
	nfeat  int
	fitted bool
	// fit is the reusable pre-sorted training arena (see fit.go); it is
	// lazily created on first Fit and never serialized.
	fit *fitScratch
}

// NewDecisionTree returns an unfitted decision tree classifier.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	return &DecisionTree{cfg: cfg.withDefaults()}
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DTC" }

// Fit implements Classifier. Training runs on the pre-sorted column index
// (fit.go): each feature is sorted once, nodes grow by linear scans, and
// the scratch arena is reused across refits. The fitted tree is
// byte-identical to the legacy per-node-sorting builder (fitLegacy).
func (t *DecisionTree) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	if t.fit == nil {
		t.fit = &fitScratch{}
	}
	t.fit.prepare(ds, t.cfg.Workers, 1, t.cfg.Workers, t.cfg.MaxDepth)
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	ts := <-t.fit.free
	ts.beginFull()
	t.root = ts.growClass(t.cfg, rng, 0, ts.m, ts.m, 0, nil)
	t.fit.free <- ts
	t.flat = compileTree(t.root)
	t.nfeat = ds.NumFeatures
	t.fitted = true
	return nil
}

// fitLegacy is the pre-sorted trainer's reference implementation: the
// original per-node sorting builder, retained — exactly as predictPointer
// was for inference — for the golden equivalence suite and the recorded
// before/after training benchmarks.
func (t *DecisionTree) fitLegacy(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	t.root = buildClassTree(ds, idx, t.cfg, 0, rng)
	t.flat = compileTree(t.root)
	t.nfeat = ds.NumFeatures
	t.fitted = true
	return nil
}

// Predict implements Classifier with an iterative walk over the compiled
// arena; it allocates nothing.
func (t *DecisionTree) Predict(x []float64) (int, error) {
	if !t.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != t.nfeat {
		return 0, ErrBadFeatureLen
	}
	return int(flatLeaf(t.flat, 0, x).label), nil
}

// PredictBatch implements BatchPredictor.
func (t *DecisionTree) PredictBatch(xs [][]float64, out []int) error {
	if err := checkBatch(t.fitted, xs, out); err != nil {
		return err
	}
	for i, x := range xs {
		if len(x) != t.nfeat {
			return ErrBadFeatureLen
		}
		out[i] = int(flatLeaf(t.flat, 0, x).label)
	}
	return nil
}

// predictPointer is the pre-compilation pointer walk, kept as the reference
// implementation for the flat-vs-pointer property tests and benchmarks.
func (t *DecisionTree) predictPointer(x []float64) int {
	n := t.root
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the depth of the fitted tree (a single leaf has depth 1);
// useful for overhead experiments.
func (t *DecisionTree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// buildClassTree grows a classification tree on the rows in idx.
func buildClassTree(ds *Dataset, idx []int, cfg TreeConfig, d int, rng *rand.Rand) *treeNode {
	if d >= cfg.MaxDepth || len(idx) < cfg.MinSamplesSplit || pureLabels(ds.Samples, idx) {
		return &treeNode{feature: -1, label: majorityLabel(ds.Samples, idx, ds.NumClasses)}
	}
	feat, thr, ok := bestGiniSplit(ds, idx, cfg, rng)
	if !ok {
		return &treeNode{feature: -1, label: majorityLabel(ds.Samples, idx, ds.NumClasses)}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if ds.Samples[i].Features[feat] <= thr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{feature: -1, label: majorityLabel(ds.Samples, idx, ds.NumClasses)}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      buildClassTree(ds, leftIdx, cfg, d+1, rng),
		right:     buildClassTree(ds, rightIdx, cfg, d+1, rng),
	}
}

func pureLabels(samples []Sample, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := samples[idx[0]].Label
	for _, i := range idx[1:] {
		if samples[i].Label != first {
			return false
		}
	}
	return true
}

// giniVals sorts the classification scan's (value, label) pairs by value
// through typed methods instead of sort.Slice's reflection-based swapper.
// The sort may stay unstable: every statistic the scan derives from a run
// of equal values is an integer class count over the run's multiset, so
// any permutation within a tie run yields the same split.
type giniVal struct {
	v     float64
	label int
}

type giniVals []giniVal

func (s giniVals) Len() int           { return len(s) }
func (s giniVals) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s giniVals) Less(i, j int) bool { return s[i].v < s[j].v }

// bestGiniSplit scans candidate features for the split with the lowest
// weighted Gini impurity.
func bestGiniSplit(ds *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) (feat int, thr float64, ok bool) {
	features := candidateFeatures(ds.NumFeatures, cfg.FeatureSubset, rng)
	bestScore := math.Inf(1)
	vals := make(giniVals, 0, len(idx))
	for _, f := range features {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, giniVal{ds.Samples[i].Features[f], ds.Samples[i].Label})
		}
		sort.Sort(vals)

		// Incremental class counts for left/right partitions.
		leftCounts := make([]int, ds.NumClasses)
		rightCounts := make([]int, ds.NumClasses)
		for _, x := range vals {
			rightCounts[x.label]++
		}
		n := float64(len(vals))
		for i := 0; i < len(vals)-1; i++ {
			leftCounts[vals[i].label]++
			rightCounts[vals[i].label]--
			if vals[i].v == vals[i+1].v {
				continue // cannot split between equal values
			}
			nl := float64(i + 1)
			nr := n - nl
			score := nl/n*gini(leftCounts, nl) + nr/n*gini(rightCounts, nr)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (vals[i].v + vals[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func gini(counts []int, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

// candidateFeatures returns the features a split may use: all of them, or a
// random subset of size m (without replacement) for Random Forest trees.
func candidateFeatures(nf, m int, rng *rand.Rand) []int {
	all := make([]int, nf)
	for i := range all {
		all[i] = i
	}
	if m <= 0 || m >= nf {
		return all
	}
	rng.Shuffle(nf, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:m]
}

// --- regression tree (used by GBDT) ---

// regTarget pairs a row index with its regression target.
type regTarget struct {
	idx    int
	target float64
}

// buildRegTree grows a regression tree minimizing squared error over the
// given targets; leafValue computes the leaf output from the targets that
// reach it (GBDT uses a Newton step rather than the plain mean).
func buildRegTree(ds *Dataset, rows []regTarget, cfg TreeConfig, d int,
	rng *rand.Rand, leafValue func([]regTarget) float64) *treeNode {

	if d >= cfg.MaxDepth || len(rows) < cfg.MinSamplesSplit || constantTargets(rows) {
		return &treeNode{feature: -1, value: leafValue(rows)}
	}
	feat, thr, ok := bestMSESplit(ds, rows, cfg, rng)
	if !ok {
		return &treeNode{feature: -1, value: leafValue(rows)}
	}
	var left, right []regTarget
	for _, r := range rows {
		if ds.Samples[r.idx].Features[feat] <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{feature: -1, value: leafValue(rows)}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      buildRegTree(ds, left, cfg, d+1, rng, leafValue),
		right:     buildRegTree(ds, right, cfg, d+1, rng, leafValue),
	}
}

func constantTargets(rows []regTarget) bool {
	if len(rows) == 0 {
		return true
	}
	first := rows[0].target
	for _, r := range rows[1:] {
		if r.target != first {
			return false
		}
	}
	return true
}

// mseVals sorts the regression scan's (value, target) pairs by value. It is
// sorted with sort.Stable, and that stability is load-bearing: the scan
// folds float targets in sorted order, so the order WITHIN a run of equal
// values is observable in the split scores. Stable sorting pins that tie
// order to the node-row insertion order — the same (value, then row
// position) total order the pre-sorted trainer's column index uses — which
// is what makes byte-identical equivalence between the two builders
// provable. The previous unstable sort.Slice left tie runs in whatever
// permutation pdqsort produced.
type mseVals []mseVal

type mseVal struct {
	v, t float64
}

func (s mseVals) Len() int           { return len(s) }
func (s mseVals) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s mseVals) Less(i, j int) bool { return s[i].v < s[j].v }

// bestMSESplit finds the split minimizing the within-partition sum of squared
// deviations, computed incrementally from running sums.
func bestMSESplit(ds *Dataset, rows []regTarget, cfg TreeConfig, rng *rand.Rand) (feat int, thr float64, ok bool) {
	features := candidateFeatures(ds.NumFeatures, cfg.FeatureSubset, rng)
	bestScore := math.Inf(1)
	vals := make(mseVals, 0, len(rows))
	var totalSum, totalSum2 float64
	for _, r := range rows {
		totalSum += r.target
		totalSum2 += r.target * r.target
	}
	n := float64(len(rows))
	for _, f := range features {
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, mseVal{ds.Samples[r.idx].Features[f], r.target})
		}
		sort.Stable(vals)
		var ls, ls2 float64
		for i := 0; i < len(vals)-1; i++ {
			ls += vals[i].t
			ls2 += vals[i].t * vals[i].t
			if vals[i].v == vals[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			rs := totalSum - ls
			rs2 := totalSum2 - ls2
			// SSE of each side = sum(t^2) - (sum t)^2 / n.
			score := (ls2 - ls*ls/nl) + (rs2 - rs*rs/nr)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (vals[i].v + vals[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// predictReg walks a regression tree.
func predictReg(n *treeNode, x []float64) float64 {
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}
