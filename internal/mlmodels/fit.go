package mlmodels

import (
	"math"
	"math/rand"
	"slices"

	"cocg/internal/parallel"
)

// Pre-sorted exact-greedy tree training (XGBoost's exact mode, sklearn's
// presort splitter). The legacy builders in tree.go rebuild and re-sort a
// (value, payload) slice for every candidate feature at every node —
// O(features · n log n) sorting per node and fresh count/index slices
// throughout. This file replaces that with a column index sorted ONCE per
// Fit: per feature, a []int32 row order sorted by (value, row id). Nodes
// then own a contiguous segment [lo, hi) of every feature's order array;
// split scans are single linear passes with incremental Gini/MSE statistics,
// and the chosen split is propagated by a stable in-place partition that
// keeps both children contiguous and value-sorted — no re-sorting ever.
//
// All scratch lives in a reusable fitScratch arena (the PR 3 idiom), so
// steady-state retraining — the online learner's recurring cost — allocates
// only the result tree nodes. The scan kernels are annotated //cocg:hot and
// gated by the hotalloc analyzer plus TestFitSteadyStateAllocationFree.
//
// Exactness contract: the new trainer must produce byte-identical
// serialized models to the legacy builders (fitLegacy) at every Workers
// value. The load-bearing facts, proven by the golden suite in fit_test.go:
//
//   - RNG: candidateFeatures consumes the node RNG identically (one
//     rng.Shuffle iff 0 < FeatureSubset < NumFeatures) and nodes visit in
//     the same DFS preorder (node, left subtree, right subtree), so the
//     stream of draws is the same.
//   - Classification: every split statistic is an integer class count over
//     a value-tie run, so the legacy builder's unstable per-node sort and
//     this file's (value, row id) order yield identical scores, thresholds,
//     and argmins.
//   - Regression: the MSE scan folds float targets in sorted order, so tie
//     order IS observable. Both sides therefore share one defined total
//     order — (value, then row position) — via the stable legacy sort (see
//     mseVals in tree.go) and this file's column index.
//   - Ties across candidates: per-feature minima merge in candidate order
//     under strict <, which is exactly the legacy running argmin — earliest
//     candidate (lowest feature index when all features are candidates)
//     wins, and within a feature the earliest boundary wins.
type colIndex struct {
	n, nfeat, nclass int

	vals   []float64 // column-major feature values: vals[f*n+r]
	order  []int32   // per-feature row ids sorted by (value, row id)
	labels []int32   // class labels by row
}

// build (re)indexes ds: column-major values, labels, and each feature's
// sorted row order. Columns sort independently, so they fan out.
func (ci *colIndex) build(ds *Dataset, workers int) {
	n, nf := ds.Len(), ds.NumFeatures
	ci.n, ci.nfeat, ci.nclass = n, nf, ds.NumClasses
	ci.vals = growF64(ci.vals, n*nf)
	ci.order = growI32(ci.order, n*nf)
	ci.labels = growI32(ci.labels, n)
	for r, s := range ds.Samples {
		ci.labels[r] = int32(s.Label)
		for f, v := range s.Features {
			ci.vals[f*n+r] = v
		}
	}
	parallel.For(workers, nf, func(f int) {
		ord := ci.order[f*n : (f+1)*n]
		for i := range ord {
			ord[i] = int32(i)
		}
		// Sorted by (value, row id) — a strict total order, so every
		// correct sort produces the same unique permutation and the
		// generic pdqsort (inlined comparator, no interface calls) is
		// free to replace a stable one.
		col := ci.vals[f*n : (f+1)*n]
		slices.SortFunc(ord, func(a, b int32) int {
			va, vb := col[a], col[b]
			if va != vb {
				if va < vb {
					return -1
				}
				return 1
			}
			return int(a) - int(b)
		})
	})
}

// splitCand is one candidate feature's best boundary. Beyond the score and
// threshold the classification scan also records where the boundary sits —
// bi (entry index in the feature's segment), wl (left-side weight), and nv
// (the first right-side value) — so the winner's partition can reuse the
// scan's work instead of re-comparing every row (see growClass).
type splitCand struct {
	score float64
	thr   float64
	nv    float64
	bi    int
	wl    int
	ok    bool
}

// treeScratch is the per-goroutine arena one tree grows in. RF hands one to
// each bagged-tree worker via fitScratch's free list; DTC and GBDT class
// trees use one at a time.
type treeScratch struct {
	ci   *colIndex
	jobs int // within-tree feature-scan fan-out; 1 = serial (the RF/GBDT mode)
	m    int // rows in this tree's bag (distinct rows with weight > 0)

	cur   []int32   // nfeat segments of m row ids, value-sorted per feature
	rows  []int32   // the m bag rows in original (stable) row order
	tmp   []int32   // bounce buffer for the stable partition
	goesL []uint8   // by row id: 1 when the row goes left under the split
	w     []int32   // by row id: bootstrap multiplicity in this bag
	wlab  []int32   // by row id: weight<<16 | label — one load in the scan
	tgt   []float64 // by row id: regression target (GBDT residuals)
	feats []int     // candidate-feature buffer (candidateFeaturesInto)

	ncnt, lcnt, rcnt []int // node / left / right class counts (len nclass)
	snapA, snapB     []int // serial-scan boundary snapshots (see bestSplit)

	// cntStk holds each depth's pending child class counts: a split node
	// derives both children's counts from its own (left = the boundary
	// snapshot, right = node minus left), so only the root ever tallies
	// counts from rows. Layout: depth d's left block at d*2*nclass, right
	// block at d*2*nclass+nclass.
	cntStk []int

	// oobFlat is a per-scratch flat-compile buffer: RF's out-of-bag pass
	// walks each freshly grown tree for every held-out sample, and the
	// contiguous arena walks ~2x faster than chasing heap tree nodes.
	oobFlat []flatNode

	// Feature-scan fan-out state. The body closure and the Shuffle swap are
	// built once per scratch — a closure per node would put an allocation on
	// the hottest training path — and read their arguments from the fields
	// below; cands and cntBuf give every chunk a private result slot and
	// count scratch.
	scanBody  func(chunk, lo, hi int)
	swapFeats func(i, j int)
	cands     []splitCand
	cntBuf    []int
	scanFeats []int
	scanLo    int
	scanHi    int
	scanTot   float64
	scanReg   bool

	regSum, regSum2 float64 // current node's target sums (regression)
}

// minParallelScanRows gates the within-tree feature-scan fan-out: below
// this segment width the goroutine handoff costs more than the scan. The
// guard only picks serial vs parallel execution of identical per-feature
// scans, so it can never change the fitted tree.
const minParallelScanRows = 512

// ensure sizes the scratch for ci and binds the per-scratch closures.
// maxDepth bounds the grow recursion (TreeConfig.MaxDepth after defaults)
// and sizes the count stack.
func (ts *treeScratch) ensure(ci *colIndex, jobs, maxDepth int) {
	if jobs < 1 {
		jobs = 1
	}
	ts.ci = ci
	ts.jobs = jobs
	n, nf, nc := ci.n, ci.nfeat, ci.nclass
	// One slot of slack on cur and rows: beginBag's branchless compaction
	// writes every source entry and advances the cursor only for in-bag
	// rows, so trailing out-of-bag entries write (harmlessly) one past the
	// compacted length.
	ts.cur = growI32(ts.cur, n*nf+1)[:n*nf+1]
	ts.rows = growI32(ts.rows, n+1)
	ts.tmp = growI32(ts.tmp, n)
	ts.goesL = growU8(ts.goesL, n)
	ts.w = growI32(ts.w, n)
	ts.wlab = growI32(ts.wlab, n)
	ts.tgt = growF64(ts.tgt, n)
	ts.feats = growInt(ts.feats, nf)
	ts.ncnt = growInt(ts.ncnt, nc)
	ts.lcnt = growInt(ts.lcnt, nc)
	ts.rcnt = growInt(ts.rcnt, nc)
	ts.snapA = growInt(ts.snapA, nc)
	ts.snapB = growInt(ts.snapB, nc)
	if maxDepth < 1 {
		maxDepth = 1
	}
	ts.cntStk = growInt(ts.cntStk, (maxDepth+2)*2*nc)
	ts.cands = growCand(ts.cands, nf)
	if jobs > 1 {
		// Three nclass blocks per candidate: working left/right counts
		// plus the boundary snapshot of the candidate's own best split.
		ts.cntBuf = growInt(ts.cntBuf, nf*3*nc)
	}
	if ts.scanBody == nil {
		ts.scanBody = ts.scanChunk
		ts.swapFeats = func(i, j int) { ts.feats[i], ts.feats[j] = ts.feats[j], ts.feats[i] }
	}
}

// beginFull loads the scratch with every dataset row at weight 1 — the DTC
// and GBDT mode, where trees train on the whole dataset.
func (ts *treeScratch) beginFull() {
	ci := ts.ci
	ts.m = ci.n
	copy(ts.cur[:ci.nfeat*ci.n], ci.order[:ci.nfeat*ci.n])
	for r := 0; r < ci.n; r++ {
		ts.rows[r] = int32(r)
		ts.w[r] = 1
		ts.wlab[r] = 1<<16 | ci.labels[r]
	}
}

// beginBag compacts the shared column index down to the rows the caller
// weighted in ts.w (bootstrap multiplicities; 0 = out of bag). Filtering the
// pre-sorted order arrays preserves their (value, row id) order, so the bag
// never needs re-sorting — the trick that lets RF share one dataset index
// across all bootstrap samples.
func (ts *treeScratch) beginBag() {
	ci := ts.ci
	// inBag doubles as the branchless advance: every source entry writes,
	// in-bag entries advance the cursor.
	inBag := ts.goesL
	wts := ts.w
	m := 0
	for r := 0; r < ci.n; r++ {
		d := 0
		if wts[r] > 0 {
			d = 1
		}
		inBag[r] = uint8(d)
		ts.wlab[r] = wts[r]<<16 | ci.labels[r]
		ts.rows[m] = int32(r)
		m += d
	}
	ts.m = m
	for f := 0; f < ci.nfeat; f++ {
		src := ci.order[f*ci.n : (f+1)*ci.n]
		dst := ts.cur[f*m : (f+1)*m+1] // +1: slack slot for the final write
		k := 0
		for _, r := range src {
			dst[k] = r
			k += int(inBag[r])
		}
	}
}

// growClass mirrors buildClassTree over the pre-sorted segment [lo, hi).
// wTot is the node's total weight — exactly len(idx) in the legacy builder,
// bootstrap duplicates included. Stop checks, RNG consumption, and the
// left-before-right recursion all match the legacy builder, so the RNG
// stream — and with it the tree — is identical.
// cnt is the node's weighted class counts when the parent already knows
// them (nil only at the root, which tallies them from its rows).
func (ts *treeScratch) growClass(cfg TreeConfig, rng *rand.Rand, lo, hi, wTot, d int, cnt []int) *treeNode {
	if cnt == nil {
		ts.countNode(lo, hi)
	} else {
		copy(ts.ncnt, cnt)
	}
	if d >= cfg.MaxDepth || wTot < cfg.MinSamplesSplit || ts.pureNode() {
		return &treeNode{feature: -1, label: ts.majorityNode()}
	}
	feats := ts.candidateFeaturesInto(cfg.FeatureSubset, rng)
	feat, c := ts.bestSplit(feats, lo, hi, float64(wTot), false)
	if !c.ok {
		return &treeNode{feature: -1, label: ts.majorityNode()}
	}
	var nLeft, wLeft int
	if c.thr < c.nv {
		// The usual case: the midpoint threshold separates the boundary's
		// two values, so "value <= thr" selects exactly the segment prefix
		// the scan walked — nLeft, wLeft, and lcnt (the boundary snapshot
		// bestSplit installed) are already known, no compare pass needed.
		// The split cannot be degenerate here: 0 < bi+1 < hi-lo.
		nLeft, wLeft = c.bi+1, c.wl
		ts.markPrefix(feat, lo, hi, nLeft)
	} else {
		// (v+nv)/2 rounded up to nv itself: rows at nv also satisfy
		// <= thr, exactly as in the legacy builder, so fall back to the
		// compare pass — it rebuilds lcnt (the snapshot is stale) and may
		// find the split degenerate. markClass reads ncnt's sibling lcnt
		// and goesL only; ncnt (which majorityNode reads, and the
		// recursive calls overwrite) stays valid through this leaf.
		nLeft, wLeft = ts.markClass(feat, c.thr, lo, hi)
		if nLeft == 0 || nLeft == hi-lo {
			return &treeNode{feature: -1, label: ts.majorityNode()}
		}
	}
	// A child that will stop immediately (depth cap, below MinSamplesSplit,
	// pure — the exact checks it would run on entry) never scans a feature
	// segment, so when BOTH children are terminal only the rows list is
	// partitioned (the leaves' class counts come from it) and the feature
	// segments are left stale. Stale spans are never read again: scans
	// happen strictly before descent and sibling spans are disjoint.
	childDeep := d+1 >= cfg.MaxDepth
	leftTerm := childDeep || wLeft < cfg.MinSamplesSplit || pureCounts(ts.lcnt)
	rightTerm := childDeep || wTot-wLeft < cfg.MinSamplesSplit || ts.rightPure()
	ts.propagate(lo, hi, !leftTerm, !rightTerm, feat)
	// Both children's counts derive from this node's: integer arithmetic,
	// so exactly what countNode would tally from their rows. The right
	// block must survive the whole left subtree, which only writes count
	// blocks at strictly greater depths.
	nc := len(ts.ncnt)
	base := (d + 1) * 2 * nc
	childL := ts.cntStk[base : base+nc]
	childR := ts.cntStk[base+nc : base+2*nc]
	copy(childL, ts.lcnt)
	for c2, n := range ts.ncnt {
		childR[c2] = n - ts.lcnt[c2]
	}
	left := ts.growClass(cfg, rng, lo, lo+nLeft, wLeft, d+1, childL)
	right := ts.growClass(cfg, rng, lo+nLeft, hi, wTot-wLeft, d+1, childR)
	return &treeNode{feature: feat, threshold: c.thr, left: left, right: right}
}

// growReg mirrors buildRegTree over the pre-sorted segment [lo, hi). leaf
// folds the targets of ts.rows[lo:hi] in slice order; in every branch that
// reaches it that order equals the legacy rows order (a degenerate
// partition is the identity permutation), so the float fold matches.
func (ts *treeScratch) growReg(cfg TreeConfig, rng *rand.Rand, lo, hi, d int,
	leaf func(rows []int32, tgt []float64) float64) *treeNode {

	rows := ts.rows[lo:hi]
	if d >= cfg.MaxDepth || hi-lo < cfg.MinSamplesSplit || ts.constTargets(rows) {
		return &treeNode{feature: -1, value: leaf(rows, ts.tgt)}
	}
	feats := ts.candidateFeaturesInto(cfg.FeatureSubset, rng)
	feat, c := ts.bestSplit(feats, lo, hi, float64(hi-lo), true)
	if !c.ok {
		return &treeNode{feature: -1, value: leaf(rows, ts.tgt)}
	}
	nLeft, leftConst, rightConst := ts.markReg(feat, c.thr, lo, hi)
	if nLeft == 0 || nLeft == hi-lo {
		return &treeNode{feature: -1, value: leaf(rows, ts.tgt)}
	}
	// Terminal-child detection, mirroring growClass: GBDT's shallow trees
	// make the deepest split level the widest, and its children are all
	// leaves by depth — skipping their feature partitions drops most of the
	// propagation cost per round.
	childDeep := d+1 >= cfg.MaxDepth
	leftTerm := childDeep || nLeft < cfg.MinSamplesSplit || leftConst
	rightTerm := childDeep || (hi-lo)-nLeft < cfg.MinSamplesSplit || rightConst
	ts.propagate(lo, hi, !leftTerm, !rightTerm, feat)
	left := ts.growReg(cfg, rng, lo, lo+nLeft, d+1, leaf)
	right := ts.growReg(cfg, rng, lo+nLeft, hi, d+1, leaf)
	return &treeNode{feature: feat, threshold: c.thr, left: left, right: right}
}

// countNode tallies weighted class counts for ts.rows[lo:hi] into ncnt.
func (ts *treeScratch) countNode(lo, hi int) {
	cnt := ts.ncnt
	for c := range cnt {
		cnt[c] = 0
	}
	labels := ts.ci.labels
	wts := ts.w
	for _, r := range ts.rows[lo:hi] {
		cnt[labels[r]] += int(wts[r])
	}
}

// pureNode reports whether the counted node holds at most one class.
func (ts *treeScratch) pureNode() bool {
	seen := 0
	for _, c := range ts.ncnt {
		if c > 0 {
			seen++
		}
	}
	return seen <= 1
}

// majorityNode returns the argmax class of the counted node; ties break
// toward the lower class ID, exactly like majorityLabel.
func (ts *treeScratch) majorityNode() int {
	best, bestN := 0, -1
	for c, n := range ts.ncnt {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// constTargets reports whether every row's target equals the first's — the
// regression purity stop, matching constantTargets.
func (ts *treeScratch) constTargets(rows []int32) bool {
	if len(rows) == 0 {
		return true
	}
	first := ts.tgt[rows[0]]
	for _, r := range rows[1:] {
		if ts.tgt[r] != first {
			return false
		}
	}
	return true
}

// candidateFeaturesInto fills the scratch feature buffer exactly like
// candidateFeatures: identity order, then one rng.Shuffle iff the subset is
// proper — the same RNG consumption, so both builders read the same stream.
func (ts *treeScratch) candidateFeaturesInto(m int, rng *rand.Rand) []int {
	nf := ts.ci.nfeat
	all := ts.feats[:nf]
	for i := range all {
		all[i] = i
	}
	if m <= 0 || m >= nf {
		return all
	}
	rng.Shuffle(nf, ts.swapFeats)
	return all[:m]
}

// bestSplit scans the candidate features over [lo, hi) and returns the split
// with the lowest impurity. nTot is the node's total weight as a float (the
// legacy n). Candidates scan independently — serially, or chunk-parallel via
// ForChunksOf when the scratch has jobs and the node is wide enough — and
// their per-feature minima merge in candidate order under strict <, which
// reproduces the legacy running argmin bit for bit: the earliest candidate
// (lowest feature index when all features are candidates) wins score ties.
func (ts *treeScratch) bestSplit(feats []int, lo, hi int, nTot float64, reg bool) (feat int, best splitCand) {
	if reg {
		// Node target sums, folded over rows in stable row order exactly
		// like the legacy totalSum/totalSum2 loop.
		var sum, sum2 float64
		for _, r := range ts.rows[lo:hi] {
			t := ts.tgt[r]
			sum += t
			sum2 += t * t
		}
		ts.regSum, ts.regSum2 = sum, sum2
	}
	if ts.jobs > 1 && len(feats) > 1 && hi-lo >= minParallelScanRows {
		ts.scanFeats, ts.scanLo, ts.scanHi, ts.scanTot, ts.scanReg = feats, lo, hi, nTot, reg
		parallel.ForChunksOf(ts.jobs, len(feats), 1, ts.scanBody)
		bestScore := math.Inf(1)
		win := -1
		for i, c := range ts.cands[:len(feats)] {
			if c.ok && c.score < bestScore {
				bestScore, feat, best, win = c.score, feats[i], c, i
			}
		}
		if win >= 0 && !reg {
			// Install the winner's boundary snapshot as the node's left
			// counts (the serial path does the same via snapA/snapB).
			nc := ts.ci.nclass
			copy(ts.lcnt, ts.cntBuf[win*3*nc+2*nc:win*3*nc+3*nc])
		}
		return feat, best
	}
	bestScore := math.Inf(1)
	// Boundary snapshots double-buffer: each scan writes snapCur at its
	// improvements; when a feature takes the overall lead its snapshot is
	// kept by swapping the buffers, so snapBest always tracks the leader.
	snapCur, snapBest := ts.snapA, ts.snapB
	for _, f := range feats {
		var c splitCand
		if reg {
			c = ts.scanMSE(f, lo, hi)
		} else {
			c = ts.scanGini(f, lo, hi, nTot, ts.lcnt, ts.rcnt, snapCur)
		}
		if c.ok && c.score < bestScore {
			bestScore, feat, best = c.score, f, c
			snapCur, snapBest = snapBest, snapCur
		}
	}
	if best.ok && !reg {
		copy(ts.lcnt, snapBest)
	}
	return feat, best
}

// scanChunk is the hoisted ForChunksOf body for the parallel feature scan:
// chunk size is 1, so chunk indexes both the candidate and its private
// left/right count scratch in cntBuf.
func (ts *treeScratch) scanChunk(chunk, clo, chi int) {
	for i := clo; i < chi; i++ {
		f := ts.scanFeats[i]
		var c splitCand
		if ts.scanReg {
			c = ts.scanMSE(f, ts.scanLo, ts.scanHi)
		} else {
			nc := ts.ci.nclass
			buf := ts.cntBuf[i*3*nc:]
			c = ts.scanGini(f, ts.scanLo, ts.scanHi, ts.scanTot, buf[:nc], buf[nc:2*nc], buf[2*nc:3*nc])
		}
		ts.cands[i] = c
	}
}

// giniNZ is gini (tree.go) with zero-count classes skipped. Skipping class
// c == 0 elides the exact no-op g -= (0/n)*(0/n) == g - 0, so the result is
// bit-identical to the legacy fold while concentrated nodes — most nodes
// below the first few levels — skip most of the float divisions, the
// dominant cost of the boundary evaluation.
//
//cocg:hot
func giniNZ(counts []int, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		if c != 0 {
			p := float64(c) / n
			g -= p * p
		}
	}
	return g
}

// scanGini finds feature f's best boundary in [lo, hi) with one linear pass
// over the pre-sorted segment: weighted class counts move from right to
// left one entry at a time, equal-value boundaries are skipped, and the
// score expression is copied verbatim from bestGiniSplit — entry weights
// stand in for the legacy builder's duplicated bootstrap rows, producing
// the same integer counts and therefore the same floats.
//
//cocg:hot
func (ts *treeScratch) scanGini(f, lo, hi int, nTot float64, lcnt, rcnt, snap []int) (c splitCand) {
	ci := ts.ci
	seg := ts.cur[f*ts.m+lo : f*ts.m+hi]
	col := ci.vals[f*ci.n : (f+1)*ci.n]
	wlab := ts.wlab
	for c := range lcnt {
		lcnt[c] = 0
	}
	// The right side starts as the whole node, whose weighted class counts
	// countNode already tallied into ncnt — no per-feature recount pass.
	copy(rcnt, ts.ncnt)
	if len(seg) == 0 {
		return c
	}
	best := math.Inf(1)
	wl := 0
	// v carries col[seg[i]] across iterations, so each step loads only the
	// successor's value.
	v := col[seg[0]]
	for i := 0; i < len(seg)-1; i++ {
		r := seg[i]
		// One packed load per entry: weight in the high half, label low.
		wlr := wlab[r]
		w := int(wlr >> 16)
		lab := wlr & 0xffff
		lcnt[lab] += w
		rcnt[lab] -= w
		wl += w
		nv := col[seg[i+1]]
		// A boundary exists only between distinct values; wl counts
		// weights, matching the legacy i+1 over duplicated rows.
		if v != nv {
			nlf := float64(wl)
			nrf := nTot - nlf
			s := nlf/nTot*giniNZ(lcnt, nlf) + nrf/nTot*giniNZ(rcnt, nrf)
			if s < best {
				best = s
				c = splitCand{score: s, thr: (v + nv) / 2, nv: nv, bi: i, wl: wl, ok: true}
				copy(snap, lcnt)
			}
		}
		v = nv
	}
	return c
}

// scanMSE finds feature f's best boundary in [lo, hi) with one linear pass:
// left-side target sums accumulate entry by entry in the segment's (value,
// row id) order — the same defined order the stable legacy sort visits — so
// every float operation matches bestMSESplit exactly.
//
//cocg:hot
func (ts *treeScratch) scanMSE(f, lo, hi int) (c splitCand) {
	ci := ts.ci
	seg := ts.cur[f*ts.m+lo : f*ts.m+hi]
	col := ci.vals[f*ci.n : (f+1)*ci.n]
	totalSum, totalSum2 := ts.regSum, ts.regSum2
	tgt := ts.tgt
	n := float64(len(seg))
	if len(seg) == 0 {
		return c
	}
	best := math.Inf(1)
	var ls, ls2 float64
	v := col[seg[0]]
	for i := 0; i < len(seg)-1; i++ {
		r := seg[i]
		t := tgt[r]
		ls += t
		ls2 += t * t
		nv := col[seg[i+1]]
		if v != nv {
			nl := float64(i + 1)
			nr := n - nl
			rs := totalSum - ls
			rs2 := totalSum2 - ls2
			// SSE of each side = sum(t^2) - (sum t)^2 / n.
			s := (ls2 - ls*ls/nl) + (rs2 - rs*rs/nr)
			if s < best {
				best = s
				c = splitCand{score: s, thr: (v + nv) / 2, ok: true}
			}
		}
		v = nv
	}
	return c
}

// markPrefix sets goesL straight from the winning feature's segment: when
// thr < nv, "value <= thr" selects exactly the first nLeft entries of the
// value-sorted segment, so the marks need no compares — two sequential
// passes over row ids.
//
//cocg:hot
func (ts *treeScratch) markPrefix(feat, lo, hi, nLeft int) {
	seg := ts.cur[feat*ts.m+lo : feat*ts.m+hi]
	goesL := ts.goesL
	for _, r := range seg[:nLeft] {
		goesL[r] = 1
	}
	for _, r := range seg[nLeft:] {
		goesL[r] = 0
	}
}

// markClass classifies the node's rows under (feat, thr) without moving
// anything: goesL flags per row, the left side's entry count and weight,
// and its weighted class counts into lcnt — everything the degenerate-leaf
// and terminal-child checks need before any segment is touched.
//
//cocg:hot
func (ts *treeScratch) markClass(feat int, thr float64, lo, hi int) (nLeft, wLeft int) {
	ci := ts.ci
	col := ci.vals[feat*ci.n : (feat+1)*ci.n]
	goesL := ts.goesL
	wts := ts.w
	labels := ci.labels
	lcnt := ts.lcnt
	for c := range lcnt {
		lcnt[c] = 0
	}
	for _, r := range ts.rows[lo:hi] {
		if col[r] <= thr {
			goesL[r] = 1
			w := int(wts[r])
			nLeft++
			wLeft += w
			lcnt[labels[r]] += w
		} else {
			goesL[r] = 0
		}
	}
	return nLeft, wLeft
}

// markReg is markClass for regression: instead of class counts it tracks
// whether each side's targets are constant — the child's own stop check,
// computed a level early so terminal children can skip propagation.
//
//cocg:hot
func (ts *treeScratch) markReg(feat int, thr float64, lo, hi int) (nLeft int, leftConst, rightConst bool) {
	ci := ts.ci
	col := ci.vals[feat*ci.n : (feat+1)*ci.n]
	goesL := ts.goesL
	tgt := ts.tgt
	leftConst, rightConst = true, true
	var lt, rt float64
	haveL, haveR := false, false
	for _, r := range ts.rows[lo:hi] {
		t := tgt[r]
		if col[r] <= thr {
			goesL[r] = 1
			nLeft++
			if !haveL {
				lt, haveL = t, true
			} else if t != lt {
				leftConst = false
			}
		} else {
			goesL[r] = 0
			if !haveR {
				rt, haveR = t, true
			} else if t != rt {
				rightConst = false
			}
		}
	}
	return nLeft, leftConst, rightConst
}

// pureCounts reports whether counts holds at most one nonzero class — the
// same test pureNode will run on the child.
func pureCounts(counts []int) bool {
	seen := 0
	for _, c := range counts {
		if c > 0 {
			seen++
		}
	}
	return seen <= 1
}

// rightPure reports whether the right child (node counts minus the left
// counts markClass just filled) holds at most one class.
func (ts *treeScratch) rightPure() bool {
	seen := 0
	for c, n := range ts.ncnt {
		if n-ts.lcnt[c] > 0 {
			seen++
		}
	}
	return seen <= 1
}

// propagate applies the goesL marks: the rows list always partitions (leaf
// statistics read it), the nfeat feature segments only as far as a child
// will scan them. A terminal child (scanL/scanR false) never reads its
// feature spans, so when only one child survives its side compacts in
// place — half the writes and no bounce buffer — and when neither does the
// segments are left stale entirely. The split feature itself (skip) never
// needs moving: its left rows are exactly a prefix of its value-sorted
// segment, so the stable partition would be the identity there.
//
//cocg:hot
func (ts *treeScratch) propagate(lo, hi int, scanL, scanR bool, skip int) {
	ts.stablePartition(ts.rows[lo:hi])
	if !scanL && !scanR {
		return
	}
	ci := ts.ci
	for f := 0; f < ci.nfeat; f++ {
		if f == skip {
			continue
		}
		seg := ts.cur[f*ts.m+lo : f*ts.m+hi]
		switch {
		case scanL && scanR:
			ts.stablePartition(seg)
		case scanL:
			ts.compactLeft(seg)
		default:
			ts.compactRight(seg)
		}
	}
}

// compactLeft keeps only the left-marked rows, packed stably at the front;
// the right span is left stale (its child is terminal and never reads it).
// Branchless: every entry writes at the cursor, left marks advance it, and
// the cursor never passes the read index.
//
//cocg:hot
func (ts *treeScratch) compactLeft(seg []int32) {
	goesL := ts.goesL
	k := 0
	for _, r := range seg {
		seg[k] = r
		k += int(goesL[r])
	}
}

// compactRight is the mirror: right-marked rows pack stably at the back via
// a descending pass (the write cursor never drops below the read index), and
// the stale left span belongs to a terminal child.
//
//cocg:hot
func (ts *treeScratch) compactRight(seg []int32) {
	goesL := ts.goesL
	k := len(seg) - 1
	for i := len(seg) - 1; i >= 0; i-- {
		r := seg[i]
		seg[k] = r
		k -= 1 - int(goesL[r])
	}
}

// stablePartition reorders seg so rows marked goesL come first, both sides
// keeping their relative order. The loop is branchless: every entry writes
// both the in-place left cursor (safe: it never passes the read index) and
// the bounce buffer, and the flag advances exactly one of them.
//
//cocg:hot
func (ts *treeScratch) stablePartition(seg []int32) {
	goesL := ts.goesL
	tmp := ts.tmp
	k, t := 0, 0
	for _, r := range seg {
		d := int(goesL[r])
		seg[k] = r
		tmp[t] = r
		k += d
		t += 1 - d
	}
	copy(seg[k:], tmp[:t])
}

// fitScratch is the reusable training arena a model keeps across Fit calls:
// the shared column index plus a bounded free list of tree scratches, one
// per concurrent tree worker. The free list is a buffered channel rather
// than a sync.Pool because the scratches must be exactly sized and never
// dropped between Fit calls (and the poolcheck analyzer polices pools whose
// contents are load-bearing).
type fitScratch struct {
	ci        colIndex
	scratches []*treeScratch
	free      chan *treeScratch
}

// prepare rebuilds the column index for ds and stocks the free list with
// par scratches, each configured for treeJobs within-tree scan workers.
func (s *fitScratch) prepare(ds *Dataset, indexWorkers, par, treeJobs, maxDepth int) {
	s.ci.build(ds, indexWorkers)
	if par < 1 {
		par = 1
	}
	for len(s.scratches) < par {
		s.scratches = append(s.scratches, &treeScratch{})
	}
	if s.free == nil || cap(s.free) < par {
		s.free = make(chan *treeScratch, par)
	}
	// Drain whatever a previous Fit left stocked, then issue exactly par
	// freshly sized scratches.
drain:
	for {
		select {
		case <-s.free:
		default:
			break drain
		}
	}
	for _, ts := range s.scratches[:par] {
		ts.ensure(&s.ci, treeJobs, maxDepth)
		s.free <- ts
	}
}

// --- sized-buffer helpers (grow capacity, reslice to exact length) ---

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growCand(s []splitCand, n int) []splitCand {
	if cap(s) < n {
		return make([]splitCand, n)
	}
	return s[:n]
}
