package mlmodels

import (
	"math/rand"
	"testing"
)

// benchFixture is the shared prediction-benchmark setup: one fitted model per
// algorithm over a dataset shaped like the stage-transition features the
// online loop feeds the ensembles (8 features, 5 stage classes).
type benchFixture struct {
	ds  *Dataset
	xs  [][]float64
	dtc *DecisionTree
	rf  *RandomForest
	gb  *GBDT
	knn *KNN
}

// benchDataset builds the benchmark corpus: 2000 stage transitions with 8
// features over 5 stage classes, fixed seed.
func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	r := rand.New(rand.NewSource(9))
	n := 2000
	samples := make([]Sample, n)
	for i := range samples {
		f := make([]float64, 8)
		score := 0.0
		for d := range f {
			f[d] = r.Float64()
			score += f[d] * float64(d%3)
		}
		samples[i] = Sample{Features: f, Label: int(score+r.Float64()) % 5}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// newBenchFixture trains the fixture; seeds are fixed so every run (and every
// recorded trajectory) measures the same models on the same queries.
func newBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	ds := benchDataset(b)
	fx := &benchFixture{
		ds:  ds,
		dtc: NewDecisionTree(TreeConfig{Seed: 1}),
		rf:  NewRandomForest(ForestConfig{NumTrees: 40, Seed: 1}),
		gb:  NewGBDT(GBDTConfig{NumRounds: 40, Seed: 1}),
		knn: NewKNN(5),
	}
	for _, m := range []Classifier{fx.dtc, fx.rf, fx.gb, fx.knn} {
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
	fx.xs = make([][]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		fx.xs[i] = s.Features
	}
	return fx
}

// benchPredict measures steady-state per-call Predict over rotating queries.
func benchPredict(b *testing.B, fx *benchFixture, m Classifier) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(fx.xs[i%len(fx.xs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTCPredict(b *testing.B)  { fx := newBenchFixture(b); benchPredict(b, fx, fx.dtc) }
func BenchmarkRFPredict(b *testing.B)   { fx := newBenchFixture(b); benchPredict(b, fx, fx.rf) }
func BenchmarkGBDTPredict(b *testing.B) { fx := newBenchFixture(b); benchPredict(b, fx, fx.gb) }
func BenchmarkKNNPredict(b *testing.B)  { fx := newBenchFixture(b); benchPredict(b, fx, fx.knn) }

// benchPredictFn measures a raw prediction function (the pointer-walk
// reference paths); comparing against the flat benchmarks above quantifies
// what the contiguous layout buys on the same queries.
func benchPredictFn(b *testing.B, fx *benchFixture, fn func(x []float64) int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(fx.xs[i%len(fx.xs)])
	}
}

func BenchmarkDTCPredictPointer(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictFn(b, fx, fx.dtc.predictPointer)
}

func BenchmarkRFPredictPointer(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictFn(b, fx, fx.rf.predictPointer)
}

func BenchmarkGBDTPredictPointer(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictFn(b, fx, fx.gb.predictPointer)
}

// benchPredictBatch measures PredictBatch over the full query matrix and
// reports the amortized per-row cost as a custom metric.
func benchPredictBatch(b *testing.B, fx *benchFixture, m BatchPredictor) {
	b.Helper()
	b.ReportAllocs()
	out := make([]int, len(fx.xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.PredictBatch(fx.xs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(fx.xs)), "ns/row")
}

func BenchmarkDTCPredictBatch(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictBatch(b, fx, fx.dtc)
}

func BenchmarkRFPredictBatch(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictBatch(b, fx, fx.rf)
}

func BenchmarkGBDTPredictBatch(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictBatch(b, fx, fx.gb)
}

func BenchmarkKNNPredictBatch(b *testing.B) {
	fx := newBenchFixture(b)
	benchPredictBatch(b, fx, fx.knn)
}

// benchFitDataset is the training-benchmark corpus: the same feature/label
// shape as benchDataset but 6000 transitions — the steady-state retraining
// regime, where a habit's sample pool has accumulated a few dozen sessions
// (RecordSession appends forever; MaybeTrain refits the whole pool). The
// prediction benchmarks keep the smaller fixture above.
func benchFitDataset(b *testing.B) *Dataset {
	b.Helper()
	r := rand.New(rand.NewSource(9))
	n := 6000
	samples := make([]Sample, n)
	for i := range samples {
		f := make([]float64, 8)
		score := 0.0
		for d := range f {
			f[d] = r.Float64()
			score += f[d] * float64(d%3)
		}
		samples[i] = Sample{Features: f, Label: int(score+r.Float64()) % 5}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// benchFit measures steady-state training: the same model refits the same
// dataset every iteration, so after the first fit the pre-sorted path runs
// entirely in its reused arena — the online learner's retraining shape. The
// legacy reference builders are benchmarked through the same harness (the
// *FitLegacy variants below) and recorded as the baseline of BENCH_PR9.json
// by `make bench-train`.
func benchFit(b *testing.B, fit func(*Dataset) error, ds *Dataset) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTCFit(b *testing.B) {
	benchFit(b, NewDecisionTree(TreeConfig{Seed: 1}).Fit, benchFitDataset(b))
}

func BenchmarkDTCFitLegacy(b *testing.B) {
	benchFit(b, NewDecisionTree(TreeConfig{Seed: 1}).fitLegacy, benchFitDataset(b))
}

func BenchmarkRFFit(b *testing.B) {
	benchFit(b, NewRandomForest(ForestConfig{NumTrees: 40, Seed: 1}).Fit, benchFitDataset(b))
}

func BenchmarkRFFitLegacy(b *testing.B) {
	benchFit(b, NewRandomForest(ForestConfig{NumTrees: 40, Seed: 1}).fitLegacy, benchFitDataset(b))
}

func BenchmarkGBDTFit(b *testing.B) {
	benchFit(b, NewGBDT(GBDTConfig{NumRounds: 40, Seed: 1}).Fit, benchFitDataset(b))
}

func BenchmarkGBDTFitLegacy(b *testing.B) {
	benchFit(b, NewGBDT(GBDTConfig{NumRounds: 40, Seed: 1}).fitLegacy, benchFitDataset(b))
}
