package mlmodels

import "testing"

func TestKNNLearnsSeparableData(t *testing.T) {
	ds := synthDataset(300, 31)
	train, test := ds.Split(0.75, 3)
	k := NewKNN(5)
	if err := k.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc, err := Evaluate(k, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("kNN accuracy %.3f on separable data", acc)
	}
}

func TestKNNErrorsAndDefaults(t *testing.T) {
	k := NewKNN(0)
	if k.K != 5 {
		t.Errorf("default K = %d", k.K)
	}
	if _, err := k.Predict([]float64{1}); err != ErrNotFitted {
		t.Errorf("unfitted err = %v", err)
	}
	if err := k.Fit(&Dataset{}); err != ErrEmptyDataset {
		t.Errorf("empty fit err = %v", err)
	}
	ds := synthDataset(20, 32)
	if err := k.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Predict([]float64{1}); err != ErrBadFeatureLen {
		t.Errorf("bad length err = %v", err)
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	ds := synthDataset(3, 33)
	k := NewKNN(50)
	if err := k.Fit(ds); err != nil {
		t.Fatal(err)
	}
	got, err := k.Predict(ds.Samples[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got >= ds.NumClasses {
		t.Errorf("prediction %d out of range", got)
	}
}

func TestMajorityBaseline(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1}, Label: 2},
		{Features: []float64{2}, Label: 2},
		{Features: []float64{3}, Label: 0},
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMajority()
	if _, err := m.Predict([]float64{1}); err != ErrNotFitted {
		t.Errorf("unfitted err = %v", err)
	}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 5, 100} {
		got, err := m.Predict([]float64{x})
		if err != nil || got != 2 {
			t.Errorf("Predict(%v) = %d, %v", x, got, err)
		}
	}
	if _, err := m.Predict([]float64{1, 2}); err != ErrBadFeatureLen {
		t.Errorf("bad length err = %v", err)
	}
	if err := m.Fit(nil); err != ErrEmptyDataset {
		t.Errorf("nil fit err = %v", err)
	}
}

func TestTreesBeatFloorBaselines(t *testing.T) {
	// On the XOR task, kNN does fine but Majority is ~50 %; the trees must
	// clear both comfortably.
	ds := xorDataset(600, 34)
	train, test := ds.Split(0.75, 7)
	floor := NewMajority()
	if err := floor.Fit(train); err != nil {
		t.Fatal(err)
	}
	floorAcc, _ := Evaluate(floor, test)
	for _, m := range allModels() {
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		acc, _ := Evaluate(m, test)
		if acc <= floorAcc+0.2 {
			t.Errorf("%s accuracy %.3f does not clear the majority floor %.3f", m.Name(), acc, floorAcc)
		}
	}
}
