package mlmodels

import (
	"math"
	"math/rand"

	"cocg/internal/parallel"
)

// ForestConfig controls Random Forest training.
type ForestConfig struct {
	NumTrees int // number of bagged trees; <=0 means 50
	Tree     TreeConfig
	Seed     int64
	// Workers bounds the goroutines used to train trees; <= 0 means
	// GOMAXPROCS. Each tree derives its own RNG from a seed drawn serially
	// from the master seed before the fan-out, so the fitted forest is
	// identical at every worker count.
	Workers int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	c.Tree = c.Tree.withDefaults()
	return c
}

// RandomForest is the paper's RF predictor: bagged CART trees with random
// feature subsets at every split, majority vote at prediction time.
type RandomForest struct {
	cfg ForestConfig
	// trees holds the pointer trees (serialization source of truth);
	// prediction walks the shared flat arena instead.
	trees  []*treeNode
	flat   []flatNode // all member trees compiled contiguously
	roots  []int32    // arena offset of each member tree's root
	nfeat  int
	nclass int
	fitted bool
	// oob is the out-of-bag accuracy estimated during Fit: each sample is
	// scored only by trees whose bootstrap missed it, giving a held-out
	// quality estimate without sacrificing training data.
	oob float64
}

// OOBAccuracy returns the out-of-bag accuracy estimate from the last Fit,
// or -1 when no sample was ever out of bag (tiny datasets).
func (f *RandomForest) OOBAccuracy() float64 {
	if !f.fitted {
		return -1
	}
	return f.oob
}

// NewRandomForest returns an unfitted random forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	return &RandomForest{cfg: cfg.withDefaults()}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RF" }

// Fit implements Classifier.
func (f *RandomForest) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	treeCfg := f.cfg.Tree
	if treeCfg.FeatureSubset <= 0 {
		// The standard default: sqrt(#features) candidates per split.
		treeCfg.FeatureSubset = int(math.Sqrt(float64(ds.NumFeatures)))
		if treeCfg.FeatureSubset < 1 {
			treeCfg.FeatureSubset = 1
		}
	}
	n := ds.Len()
	// Draw every tree's seed serially from the master RNG before fanning
	// out, so the forest is a pure function of cfg.Seed regardless of how
	// many workers train it.
	seeds := make([]int64, f.cfg.NumTrees)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	f.trees = make([]*treeNode, f.cfg.NumTrees)
	// oobPred[t][i] is tree t's prediction for sample i when the bootstrap
	// missed it, or -1 when sample i was in tree t's bag.
	oobPred := make([][]int32, f.cfg.NumTrees)
	parallel.For(f.cfg.Workers, f.cfg.NumTrees, func(t int) {
		treeRNG := rand.New(rand.NewSource(seeds[t]))
		// Bootstrap sample with replacement.
		inBag := make([]bool, n)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = treeRNG.Intn(n)
			inBag[idx[i]] = true
		}
		tree := buildClassTree(ds, idx, treeCfg, 0, treeRNG)
		f.trees[t] = tree
		pred := make([]int32, n)
		for i, s := range ds.Samples {
			if inBag[i] {
				pred[i] = -1
				continue
			}
			node := tree
			for !node.isLeaf() {
				if s.Features[node.feature] <= node.threshold {
					node = node.left
				} else {
					node = node.right
				}
			}
			pred[i] = int32(node.label)
		}
		oobPred[t] = pred
	})
	// oobVotes[i][c] counts class-c votes for sample i from trees that did
	// not see it; integer accumulation, so merge order is irrelevant.
	oobVotes := make([][]int, n)
	for i := range oobVotes {
		oobVotes[i] = make([]int, ds.NumClasses)
	}
	for _, pred := range oobPred {
		for i, p := range pred {
			if p >= 0 {
				oobVotes[i][p]++
			}
		}
	}
	var correct, scored int
	for i, votes := range oobVotes {
		best, bestN, total := 0, -1, 0
		for c, v := range votes {
			total += v
			if v > bestN {
				best, bestN = c, v
			}
		}
		if total == 0 {
			continue
		}
		scored++
		if best == ds.Samples[i].Label {
			correct++
		}
	}
	if scored > 0 {
		f.oob = float64(correct) / float64(scored)
	} else {
		f.oob = -1
	}
	f.flat, f.roots = compileForest(f.trees)
	f.nfeat = ds.NumFeatures
	f.nclass = ds.NumClasses
	f.fitted = true
	return nil
}

// Predict implements Classifier by majority vote over the trees. Votes
// accumulate in a fixed stack buffer, so a call allocates nothing.
func (f *RandomForest) Predict(x []float64) (int, error) {
	if !f.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != f.nfeat {
		return 0, ErrBadFeatureLen
	}
	var buf [scratchClasses]int
	votes := voteScratch(buf[:], f.nclass)
	return f.vote(x, votes), nil
}

// PredictBatch implements BatchPredictor: one vote buffer serves the whole
// batch, so steady-state batch prediction does zero allocation.
func (f *RandomForest) PredictBatch(xs [][]float64, out []int) error {
	if err := checkBatch(f.fitted, xs, out); err != nil {
		return err
	}
	var buf [scratchClasses]int
	votes := voteScratch(buf[:], f.nclass)
	for i, x := range xs {
		if len(x) != f.nfeat {
			return ErrBadFeatureLen
		}
		for c := range votes {
			votes[c] = 0
		}
		out[i] = f.vote(x, votes)
	}
	return nil
}

// vote casts every member tree's flat-walk vote into votes (zeroed,
// nclass-long) and returns the winning class; ties break toward the lower
// class ID, exactly like the pointer-tree implementation did.
func (f *RandomForest) vote(x []float64, votes []int) int {
	for _, r := range f.roots {
		votes[flatLeaf(f.flat, r, x).label]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best
}

// voteScratch slices a zeroed n-class vote buffer out of buf, falling back
// to an allocation for class counts beyond the stack scratch.
func voteScratch(buf []int, n int) []int {
	if n > len(buf) {
		return make([]int, n)
	}
	votes := buf[:n]
	for i := range votes {
		votes[i] = 0
	}
	return votes
}

// predictPointer is the pre-compilation pointer walk, kept as the reference
// implementation for the flat-vs-pointer property tests and benchmarks.
func (f *RandomForest) predictPointer(x []float64) int {
	votes := make([]int, f.nclass)
	for _, t := range f.trees {
		n := t
		for !n.isLeaf() {
			if x[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		votes[n.label]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best
}

// NumTrees returns how many trees were trained.
func (f *RandomForest) NumTrees() int { return len(f.trees) }
