package mlmodels

import (
	"math"
	"math/rand"

	"cocg/internal/parallel"
)

// ForestConfig controls Random Forest training.
type ForestConfig struct {
	NumTrees int // number of bagged trees; <=0 means 50
	Tree     TreeConfig
	Seed     int64
	// Workers bounds the goroutines used to train trees; <= 0 means
	// GOMAXPROCS. Each tree derives its own RNG from a seed drawn serially
	// from the master seed before the fan-out, so the fitted forest is
	// identical at every worker count.
	Workers int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	c.Tree = c.Tree.withDefaults()
	return c
}

// RandomForest is the paper's RF predictor: bagged CART trees with random
// feature subsets at every split, majority vote at prediction time.
type RandomForest struct {
	cfg ForestConfig
	// trees holds the pointer trees (serialization source of truth);
	// prediction walks the shared flat arena instead.
	trees  []*treeNode
	flat   []flatNode // all member trees compiled contiguously
	roots  []int32    // arena offset of each member tree's root
	nfeat  int
	nclass int
	fitted bool
	// oob is the out-of-bag accuracy estimated during Fit: each sample is
	// scored only by trees whose bootstrap missed it, giving a held-out
	// quality estimate without sacrificing training data.
	oob float64
	// fit is the reusable pre-sorted training arena (see fit.go): one
	// column index shared by every bagged tree plus a free list of
	// per-worker tree scratches. Lazily created, never serialized.
	fit *fitScratch
}

// OOBAccuracy returns the out-of-bag accuracy estimate from the last Fit,
// or -1 when no sample was ever out of bag (tiny datasets).
func (f *RandomForest) OOBAccuracy() float64 {
	if !f.fitted {
		return -1
	}
	return f.oob
}

// NewRandomForest returns an unfitted random forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	return &RandomForest{cfg: cfg.withDefaults()}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RF" }

// Fit implements Classifier. Training runs on the pre-sorted column index
// (fit.go): the dataset is indexed once, each bagged tree compacts the
// shared index down to its bootstrap rows (multiplicities become per-row
// weights), and tree workers draw reusable scratches from a free list. The
// fitted forest — trees and OOB estimate — is byte-identical to the legacy
// per-node-sorting builder (fitLegacy) at every worker count.
func (f *RandomForest) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	treeCfg := f.cfg.Tree
	if treeCfg.FeatureSubset <= 0 {
		// The standard default: sqrt(#features) candidates per split.
		treeCfg.FeatureSubset = int(math.Sqrt(float64(ds.NumFeatures)))
		if treeCfg.FeatureSubset < 1 {
			treeCfg.FeatureSubset = 1
		}
	}
	// The bagged trees own the worker budget; each member tree scans its
	// features serially.
	treeCfg.Workers = 1
	n := ds.Len()
	// Draw every tree's seed serially from the master RNG before fanning
	// out, so the forest is a pure function of cfg.Seed regardless of how
	// many workers train it.
	seeds := make([]int64, f.cfg.NumTrees)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	if f.fit == nil {
		f.fit = &fitScratch{}
	}
	scratches := parallel.Workers(f.cfg.Workers)
	if scratches > f.cfg.NumTrees {
		scratches = f.cfg.NumTrees
	}
	f.fit.prepare(ds, f.cfg.Workers, scratches, 1, treeCfg.MaxDepth)
	f.trees = make([]*treeNode, f.cfg.NumTrees)
	// oobPred[t][i] is tree t's prediction for sample i when the bootstrap
	// missed it, or -1 when sample i was in tree t's bag.
	oobPred := make([][]int32, f.cfg.NumTrees)
	parallel.For(f.cfg.Workers, f.cfg.NumTrees, func(t int) {
		treeRNG := rand.New(rand.NewSource(seeds[t]))
		ts := <-f.fit.free
		// Bootstrap sample with replacement: the same n draws the legacy
		// builder makes, recorded as per-row multiplicities instead of a
		// duplicated index slice. The root's total weight is n.
		w := ts.w[:n]
		for r := range w {
			w[r] = 0
		}
		for i := 0; i < n; i++ {
			w[treeRNG.Intn(n)]++
		}
		ts.beginBag()
		tree := ts.growClass(treeCfg, treeRNG, 0, ts.m, n, 0, nil)
		// OOB predictions read ts.w (the in-bag marks), so they run before
		// the scratch goes back to the free list. The walk runs over a
		// flat compile of the fresh tree (reusing the scratch's arena
		// buffer) — same tree, same predictions, contiguous nodes.
		ts.oobFlat = ts.oobFlat[:0]
		appendFlat(&ts.oobFlat, tree)
		pred := make([]int32, n)
		for i, s := range ds.Samples {
			if ts.w[i] > 0 {
				pred[i] = -1
				continue
			}
			pred[i] = flatLeaf(ts.oobFlat, 0, s.Features).label
		}
		f.fit.free <- ts
		f.trees[t] = tree
		oobPred[t] = pred
	})
	f.finishFit(ds, oobPred)
	return nil
}

// finishFit aggregates the per-tree OOB predictions into the forest's OOB
// accuracy and compiles the flat inference arena — the tail both Fit and
// fitLegacy share.
func (f *RandomForest) finishFit(ds *Dataset, oobPred [][]int32) {
	n := ds.Len()
	// oobVotes[i][c] counts class-c votes for sample i from trees that did
	// not see it; integer accumulation, so merge order is irrelevant.
	oobVotes := make([][]int, n)
	for i := range oobVotes {
		oobVotes[i] = make([]int, ds.NumClasses)
	}
	for _, pred := range oobPred {
		for i, p := range pred {
			if p >= 0 {
				oobVotes[i][p]++
			}
		}
	}
	var correct, scored int
	for i, votes := range oobVotes {
		best, bestN, total := 0, -1, 0
		for c, v := range votes {
			total += v
			if v > bestN {
				best, bestN = c, v
			}
		}
		if total == 0 {
			continue
		}
		scored++
		if best == ds.Samples[i].Label {
			correct++
		}
	}
	if scored > 0 {
		f.oob = float64(correct) / float64(scored)
	} else {
		f.oob = -1
	}
	f.flat, f.roots = compileForest(f.trees)
	f.nfeat = ds.NumFeatures
	f.nclass = ds.NumClasses
	f.fitted = true
}

// fitLegacy is the pre-sorted trainer's reference implementation: the
// original builder that re-sorts every feature at every node, retained for
// the golden equivalence suite and the recorded before/after benchmarks.
func (f *RandomForest) fitLegacy(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrEmptyDataset
	}
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	treeCfg := f.cfg.Tree
	if treeCfg.FeatureSubset <= 0 {
		treeCfg.FeatureSubset = int(math.Sqrt(float64(ds.NumFeatures)))
		if treeCfg.FeatureSubset < 1 {
			treeCfg.FeatureSubset = 1
		}
	}
	n := ds.Len()
	seeds := make([]int64, f.cfg.NumTrees)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	f.trees = make([]*treeNode, f.cfg.NumTrees)
	oobPred := make([][]int32, f.cfg.NumTrees)
	parallel.For(f.cfg.Workers, f.cfg.NumTrees, func(t int) {
		treeRNG := rand.New(rand.NewSource(seeds[t]))
		inBag := make([]bool, n)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = treeRNG.Intn(n)
			inBag[idx[i]] = true
		}
		tree := buildClassTree(ds, idx, treeCfg, 0, treeRNG)
		f.trees[t] = tree
		pred := make([]int32, n)
		for i, s := range ds.Samples {
			if inBag[i] {
				pred[i] = -1
				continue
			}
			node := tree
			for !node.isLeaf() {
				if s.Features[node.feature] <= node.threshold {
					node = node.left
				} else {
					node = node.right
				}
			}
			pred[i] = int32(node.label)
		}
		oobPred[t] = pred
	})
	f.finishFit(ds, oobPred)
	return nil
}

// Predict implements Classifier by majority vote over the trees. Votes
// accumulate in a fixed stack buffer, so a call allocates nothing.
func (f *RandomForest) Predict(x []float64) (int, error) {
	if !f.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != f.nfeat {
		return 0, ErrBadFeatureLen
	}
	var buf [scratchClasses]int
	votes := voteScratch(buf[:], f.nclass)
	return f.vote(x, votes), nil
}

// PredictBatch implements BatchPredictor: one vote buffer serves the whole
// batch, so steady-state batch prediction does zero allocation.
func (f *RandomForest) PredictBatch(xs [][]float64, out []int) error {
	if err := checkBatch(f.fitted, xs, out); err != nil {
		return err
	}
	var buf [scratchClasses]int
	votes := voteScratch(buf[:], f.nclass)
	for i, x := range xs {
		if len(x) != f.nfeat {
			return ErrBadFeatureLen
		}
		for c := range votes {
			votes[c] = 0
		}
		out[i] = f.vote(x, votes)
	}
	return nil
}

// vote casts every member tree's flat-walk vote into votes (zeroed,
// nclass-long) and returns the winning class; ties break toward the lower
// class ID, exactly like the pointer-tree implementation did.
func (f *RandomForest) vote(x []float64, votes []int) int {
	for _, r := range f.roots {
		votes[flatLeaf(f.flat, r, x).label]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best
}

// voteScratch slices a zeroed n-class vote buffer out of buf, falling back
// to an allocation for class counts beyond the stack scratch.
func voteScratch(buf []int, n int) []int {
	if n > len(buf) {
		return make([]int, n)
	}
	votes := buf[:n]
	for i := range votes {
		votes[i] = 0
	}
	return votes
}

// predictPointer is the pre-compilation pointer walk, kept as the reference
// implementation for the flat-vs-pointer property tests and benchmarks.
func (f *RandomForest) predictPointer(x []float64) int {
	votes := make([]int, f.nclass)
	for _, t := range f.trees {
		n := t
		for !n.isLeaf() {
			if x[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		votes[n.label]++
	}
	best, bestN := 0, -1
	for c, v := range votes {
		if v > bestN {
			best, bestN = c, v
		}
	}
	return best
}

// NumTrees returns how many trees were trained.
func (f *RandomForest) NumTrees() int { return len(f.trees) }
