package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		hits := make([]atomic.Int64, n)
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -3, func(int) { ran = true })
	if ran {
		t.Error("body ran for empty index space")
	}
}

func TestForBoundedConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak atomic.Int64
	For(workers, n, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent bodies, limit %d", p, workers)
	}
}

func TestForPanicPropagation(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic did not propagate")
		}
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", v)
		}
		if wp.Value != "boom" {
			t.Errorf("panic value = %v", wp.Value)
		}
		if wp.Stack == "" {
			t.Error("no worker stack captured")
		}
		if wp.Error() == "" {
			t.Error("empty Error rendering")
		}
	}()
	For(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForSerialPanicPropagation(t *testing.T) {
	defer func() {
		if v := recover(); v == nil {
			t.Fatal("serial panic did not propagate")
		}
	}()
	For(1, 3, func(i int) { panic("serial boom") })
}

func TestForChunksFixedBoundaries(t *testing.T) {
	// The chunk decomposition must be identical at every worker count.
	const n = ChunkSize*3 + 17
	type span struct{ lo, hi int }
	decompose := func(workers int) []span {
		out := make([]span, NumChunks(n))
		ForChunks(workers, n, func(c, lo, hi int) { out[c] = span{lo, hi} })
		return out
	}
	ref := decompose(1)
	for _, workers := range []int{2, 5, 32} {
		got := decompose(workers)
		for c := range ref {
			if got[c] != ref[c] {
				t.Fatalf("workers=%d chunk %d = %v, want %v", workers, c, got[c], ref[c])
			}
		}
	}
	// Chunks tile [0, n) exactly.
	covered := 0
	for c, s := range ref {
		if s.lo != c*ChunkSize {
			t.Errorf("chunk %d starts at %d", c, s.lo)
		}
		covered += s.hi - s.lo
	}
	if covered != n {
		t.Errorf("chunks cover %d of %d indices", covered, n)
	}
	if NumChunks(0) != 0 || NumChunks(-1) != 0 {
		t.Error("NumChunks of empty space should be 0")
	}
}

func TestGroupRunsAllTasks(t *testing.T) {
	g := NewGroup(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d of 100 tasks", n.Load())
	}
}

func TestGroupFirstErrorWins(t *testing.T) {
	g := NewGroup(2)
	sentinel := errors.New("sentinel")
	var mu sync.Mutex
	var order []int
	for i := 0; i < 8; i++ {
		g.Go(func() error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			if i%2 == 1 {
				return sentinel
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("Wait = %v, want sentinel", err)
	}
}

func TestGroupBoundedConcurrency(t *testing.T) {
	const workers = 2
	g := NewGroup(workers)
	var cur, peak atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, limit %d", p, workers)
	}
}

func TestGroupPanicPropagation(t *testing.T) {
	g := NewGroup(3)
	for i := 0; i < 10; i++ {
		g.Go(func() error {
			if i == 4 {
				panic("task boom")
			}
			return nil
		})
	}
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok || wp.Value != "task boom" {
			t.Errorf("recovered %v, want WorkerPanic(task boom)", v)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned instead of panicking")
}

func TestForChunksOfFixedBoundaries(t *testing.T) {
	// Caller-chosen granularity: boundaries depend only on (n, size), never
	// on the worker count, and tile [0, n) exactly.
	type span struct{ lo, hi int }
	for _, size := range []int{1, 32, 100} {
		n := size*3 + size/2 + 1
		decompose := func(workers int) []span {
			out := make([]span, NumChunksOf(n, size))
			ForChunksOf(workers, n, size, func(c, lo, hi int) { out[c] = span{lo, hi} })
			return out
		}
		ref := decompose(1)
		for _, workers := range []int{2, 7, 32} {
			got := decompose(workers)
			for c := range ref {
				if got[c] != ref[c] {
					t.Fatalf("size=%d workers=%d chunk %d = %v, want %v", size, workers, c, got[c], ref[c])
				}
			}
		}
		covered := 0
		for c, s := range ref {
			lo, hi := ChunkBoundsOf(c, n, size)
			if s.lo != lo || s.hi != hi || s.lo != c*size {
				t.Errorf("size=%d chunk %d = %v, ChunkBoundsOf says [%d,%d)", size, c, s, lo, hi)
			}
			covered += s.hi - s.lo
		}
		if covered != n {
			t.Errorf("size=%d: chunks cover %d of %d indices", size, covered, n)
		}
	}
}

func TestChunkSizeOfFallback(t *testing.T) {
	// size <= 0 falls back to the fixed ChunkSize decomposition.
	if NumChunksOf(ChunkSize*2+1, 0) != NumChunks(ChunkSize*2+1) {
		t.Error("NumChunksOf(size=0) disagrees with NumChunks")
	}
	lo, hi := ChunkBoundsOf(1, ChunkSize*2+1, -3)
	wantLo, wantHi := ChunkBounds(1, ChunkSize*2+1)
	if lo != wantLo || hi != wantHi {
		t.Errorf("ChunkBoundsOf fallback [%d,%d), want [%d,%d)", lo, hi, wantLo, wantHi)
	}
	if NumChunksOf(0, 8) != 0 || NumChunksOf(-5, 8) != 0 {
		t.Error("NumChunksOf of empty space should be 0")
	}
}

func TestForChunksOfCoversEveryIndexOnce(t *testing.T) {
	const n, size = 205, 32
	var mu sync.Mutex
	seen := make([]int, n)
	ForChunksOf(4, n, size, func(c, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}
