// Package parallel is the repo's shared worker-pool substrate: bounded
// fan-out with deterministic work decomposition, used by the K-means
// clusterer, the RF/GBDT trainers, and the experiment harness.
//
// Two properties hold everywhere:
//
//   - Bounded concurrency: no call ever runs more than the requested number
//     of goroutines, so nested fan-out (experiments → training → trees)
//     cannot oversubscribe the machine.
//   - Determinism: work is decomposed the same way regardless of the worker
//     count. For-loops partition the index space identically at workers=1
//     and workers=64; floating-point reductions must therefore merge
//     per-chunk partials in chunk order (see ForChunks), never in goroutine
//     completion order.
//
// Panics inside workers are captured and re-raised on the calling
// goroutine (wrapped in a *WorkerPanic carrying the original value and the
// worker's stack), so a bug in a worker fails the run loudly instead of
// crashing the process from an anonymous goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n >= 1 is used as-is, and
// anything else (0, negative) resolves to runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPanic wraps a panic that escaped a worker goroutine; For, ForChunks
// and Group re-raise it on the caller's goroutine.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at panic time.
	Stack string
}

// Error renders the panic; WorkerPanic is re-raised via panic, not returned,
// but implementing error keeps recovered values printable.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// For runs body(i) for every i in [0, n), using at most workers goroutines
// (Workers-normalized). Indices are handed out via an atomic counter, so the
// set of executed indices is always exactly [0, n) regardless of the worker
// count; body must therefore be independent per index. A panic in any body
// call is re-raised on the caller once all workers have stopped.
func For(workers, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[WorkerPanic]
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer capture(&panicked)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// ChunkSize is the fixed granularity ForChunks decomposes index spaces at.
// It is a constant — not derived from the worker count — so the chunk
// boundaries seen by body are identical at every parallelism level; callers
// that sum floating-point partials per chunk and merge them in chunk order
// get bit-identical results at workers=1 and workers=N.
const ChunkSize = 256

// NumChunks returns how many ForChunks chunks an index space of size n
// decomposes into; callers size per-chunk partial-result slices with it.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ChunkSize - 1) / ChunkSize
}

// ChunkBounds returns the half-open index range [lo, hi) of chunk c in an
// index space of size n, under the same fixed-ChunkSize decomposition
// ForChunks applies. Hot loops that call For once per iteration use it to
// build their chunk body a single time (closures handed to For escape to the
// heap, so constructing one inside an iteration loop allocates per
// iteration) while still seeing identical chunk boundaries.
func ChunkBounds(c, n int) (lo, hi int) {
	lo = c * ChunkSize
	hi = lo + ChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForChunks splits [0, n) into fixed-size chunks (ChunkSize indices each,
// independent of workers) and runs body(chunk, lo, hi) for each half-open
// [lo, hi) range, using at most workers goroutines. chunk is the chunk
// index in [0, NumChunks(n)); bodies run concurrently, so per-chunk results
// must be written to disjoint slots and merged by the caller in chunk order
// when the reduction is order-sensitive (floating-point sums).
func ForChunks(workers, n int, body func(chunk, lo, hi int)) {
	For(workers, NumChunks(n), func(c int) {
		lo, hi := ChunkBounds(c, n)
		body(c, lo, hi)
	})
}

// NumChunksOf is NumChunks under a caller-chosen chunk size: how many
// size-wide chunks an index space of n decomposes into. size <= 0 falls back
// to ChunkSize.
func NumChunksOf(n, size int) int {
	if size <= 0 {
		size = ChunkSize
	}
	if n <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// ChunkBoundsOf is ChunkBounds under a caller-chosen chunk size. Like the
// fixed-size decomposition, the boundaries depend only on (n, size) — never
// on the worker count — so order-sensitive reductions that merge per-chunk
// partials in chunk order stay bit-identical at every parallelism level.
func ChunkBoundsOf(c, n, size int) (lo, hi int) {
	if size <= 0 {
		size = ChunkSize
	}
	lo = c * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForChunksOf is ForChunks with a caller-chosen chunk granularity, for hot
// loops whose per-index body is expensive enough that ChunkSize (tuned for
// cheap point-wise passes) would leave most workers idle — e.g. the
// placement engine scores whole servers per index, so it scans a 1k-server
// fleet in 32-wide chunks. Per-chunk state (scratch buffers, partial
// argmaxes) may be keyed by the chunk index: each chunk runs on exactly one
// goroutine per call.
func ForChunksOf(workers, n, size int, body func(chunk, lo, hi int)) {
	For(workers, NumChunksOf(n, size), func(c int) {
		lo, hi := ChunkBoundsOf(c, n, size)
		body(c, lo, hi)
	})
}

// Group runs error-returning tasks with bounded concurrency: an errgroup
// shaped for this repo (first error wins, worker panics re-raised on Wait).
type Group struct {
	sem      chan struct{}
	wg       sync.WaitGroup
	errOnce  sync.Once
	err      error
	panicked atomic.Pointer[WorkerPanic]
}

// NewGroup returns a Group that runs at most workers (Workers-normalized)
// tasks concurrently; further Go calls block until a slot frees.
func NewGroup(workers int) *Group {
	return &Group{sem: make(chan struct{}, Workers(workers))}
}

// Go schedules one task, blocking while the group is at its concurrency
// limit. Tasks scheduled after the limit is reached still all run; Go only
// applies backpressure, it never drops work.
func (g *Group) Go(task func() error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		defer capture(&g.panicked)
		if err := task(); err != nil {
			g.errOnce.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every scheduled task finished, then re-raises the first
// worker panic (if any) and returns the first task error (if any).
func (g *Group) Wait() error {
	g.wg.Wait()
	if p := g.panicked.Load(); p != nil {
		panic(p)
	}
	return g.err
}

// capture stores the first escaping panic so the spawner can re-raise it.
func capture(dst *atomic.Pointer[WorkerPanic]) {
	if v := recover(); v != nil {
		buf := make([]byte, 16<<10)
		buf = buf[:runtime.Stack(buf, false)]
		p := &WorkerPanic{Value: v, Stack: string(buf)}
		dst.CompareAndSwap(nil, p)
	}
}
