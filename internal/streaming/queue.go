package streaming

import "sync"

// outQueue is one session's bounded outbound delivery queue: the tick
// pipeline pushes pooled envelopes, the session's writer goroutine pops and
// sends them. The queue never blocks the producer and never grows — when a
// slow client falls a full queue behind, backpressure resolves against the
// stream, not the server:
//
//  1. coalesce: if the newest queued message is a frame batch, the incoming
//     batch replaces it (the old snapshot is stale the moment a fresh one
//     exists); the replaced envelope is recycled and counted;
//  2. drop-oldest: otherwise the oldest frame batch in the queue is evicted
//     to make room; the evicted envelope is recycled and counted.
//
// End messages are never coalesced or dropped. Clients observe the policy
// as gaps in FrameBatch.Seq.
type outQueue struct {
	mu     sync.Mutex
	nempty sync.Cond // signaled when a message or closure arrives

	buf  []*Envelope // ring buffer
	head int         // index of the oldest element
	n    int         // elements in the ring

	closed bool
}

func newOutQueue(capacity int) *outQueue {
	q := &outQueue{buf: make([]*Envelope, capacity)}
	q.nempty.L = &q.mu
	return q
}

// at returns the ring slot index for logical position i (0 = oldest).
func (q *outQueue) at(i int) int { return (q.head + i) % len(q.buf) }

// push enqueues e under the backpressure policy above. It returns any
// envelope displaced by coalescing or eviction (for the caller to recycle)
// and how the push resolved: pushOK, pushCoalesced, or pushDropped. A push
// to a closed queue returns e itself with pushClosed.
func (q *outQueue) push(e *Envelope) (displaced *Envelope, how pushResult) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return e, pushClosed
	}
	if q.n < len(q.buf) {
		q.buf[q.at(q.n)] = e
		q.n++
		q.mu.Unlock()
		q.nempty.Signal()
		return nil, pushOK
	}
	// Full. Coalesce into the newest slot when it holds a frame batch and
	// the incoming message is one too.
	newest := q.at(q.n - 1)
	if e.Type == MsgFrames && q.buf[newest].Type == MsgFrames {
		displaced = q.buf[newest]
		q.buf[newest] = e
		q.mu.Unlock()
		q.nempty.Signal()
		return displaced, pushCoalesced
	}
	// Evict the oldest frame batch. The queue holds at most one non-frames
	// message (the final End, which is also always the newest), so the scan
	// almost always stops at the head.
	for i := 0; i < q.n; i++ {
		slot := q.at(i)
		if q.buf[slot].Type != MsgFrames {
			continue
		}
		displaced = q.buf[slot]
		// Shift the survivors down to keep FIFO order.
		for j := i; j+1 < q.n; j++ {
			q.buf[q.at(j)] = q.buf[q.at(j+1)]
		}
		q.buf[q.at(q.n-1)] = e
		q.mu.Unlock()
		q.nempty.Signal()
		return displaced, pushDropped
	}
	// Nothing evictable (cannot happen with at most one End per session
	// and capacity > 1, but fail safe): reject the incoming message.
	q.mu.Unlock()
	return e, pushDropped
}

// pop blocks until a message is available or the queue is closed and
// drained; ok is false only in the latter case.
func (q *outQueue) pop() (e *Envelope, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.nempty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return nil, false
	}
	e = q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.mu.Unlock()
	return e, true
}

// tryPop is pop without blocking; ok is false when the queue is empty.
func (q *outQueue) tryPop() (e *Envelope, ok bool) {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return nil, false
	}
	e = q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.mu.Unlock()
	return e, true
}

// close marks the queue closed and wakes the consumer. Queued messages stay
// poppable so an End already enqueued is still delivered.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nempty.Broadcast()
}

// pushResult describes how a push resolved.
type pushResult uint8

const (
	pushOK pushResult = iota
	pushCoalesced
	pushDropped
	pushClosed
)
