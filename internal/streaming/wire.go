package streaming

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire protocol versions. Every connection opens speaking ProtoJSON — the
// newline-delimited JSON framing the package shipped with — so any client
// ever written can at least complete the Hello/Accept handshake. The Hello
// carries the highest version the client speaks and the Accept answers with
// the version the server chose; both sides switch codecs only after that
// exchange, so old JSON clients interoperate with new servers (and new
// clients with old servers, whose Accept simply omits the field).
const (
	// ProtoJSON is the newline-delimited JSON framing (version 1).
	ProtoJSON = 1
	// ProtoBinary is the length-prefixed binary framing (version 2).
	ProtoBinary = 2
	// ProtoBinary3 is the same binary framing with the extended
	// ClusterSummary layout (version 3): idle-server count and the per-game
	// predicted-demand breakdown the fleet accountant produces. Every other
	// message tag is byte-identical to version 2.
	ProtoBinary3 = 3

	// maxKnownProto is the newest version this build speaks.
	maxKnownProto = ProtoBinary3
)

// NegotiateProto resolves the version both ends of a handshake speak:
// the minimum of the two advertised maxima, where anything <= 0 (an old
// peer that never sent the field) means ProtoJSON.
func NegotiateProto(clientMax, serverMax int) int {
	if clientMax <= 0 {
		clientMax = ProtoJSON
	}
	if serverMax <= 0 {
		serverMax = ProtoJSON
	}
	p := clientMax
	if serverMax < p {
		p = serverMax
	}
	if p > maxKnownProto {
		p = maxKnownProto
	}
	return p
}

// Binary framing: every message is
//
//	[4-byte little-endian length n][1-byte message tag][payload]
//
// where n counts the tag and payload. Integers are varints (zigzag for
// signed), floats are 8-byte IEEE 754 little-endian, strings and byte
// slices are length-prefixed. The layout per tag is fixed — the protocol
// version negotiated in Hello/Accept is the schema version.

// maxWireFrame bounds a binary frame so a corrupt or hostile length prefix
// cannot make the reader allocate unbounded memory.
const maxWireFrame = 1 << 20

// Binary message tags, one per MsgType.
const (
	tagHello byte = iota + 1
	tagAccept
	tagReject
	tagInput
	tagFrames
	tagEnd
	tagSummaryReq
	tagSummary
)

var errWireTruncated = errors.New("streaming: truncated binary frame")

// AppendTo appends the envelope as one complete binary frame in the newest
// layout this build speaks. Connections use AppendToProto with their
// negotiated version.
func (e *Envelope) AppendTo(buf []byte) ([]byte, error) {
	return e.AppendToProto(buf, maxKnownProto)
}

// AppendToProto appends the envelope as one complete binary frame (length
// prefix included) in the layout of wire version proto, and returns the
// extended slice. It never allocates when buf has sufficient capacity, so
// hot paths can reuse one buffer per connection across every send.
//
//cocg:hot
func (e *Envelope) AppendToProto(buf []byte, proto int) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix, patched below
	var err error
	switch e.Type {
	case MsgHello:
		buf = append(buf, tagHello)
		buf = appendString(buf, e.Hello.Game)
		buf = appendSvarint(buf, int64(e.Hello.Script))
		buf = appendSvarint(buf, e.Hello.Habit)
		buf = appendSvarint(buf, int64(e.Hello.Proto))
	case MsgAccept:
		buf = append(buf, tagAccept)
		buf = appendSvarint(buf, e.Accept.SessionID)
		buf = appendSvarint(buf, int64(e.Accept.Server))
		buf = appendString(buf, e.Accept.Game)
		buf = appendSvarint(buf, int64(e.Accept.Proto))
		buf = appendString(buf, e.Accept.Cluster)
	case MsgReject:
		buf = append(buf, tagReject)
		buf = appendString(buf, e.Reject.Reason)
	case MsgInput:
		in := e.Input
		buf = append(buf, tagInput)
		buf = appendSvarint(buf, in.SessionID)
		buf = appendSvarint(buf, in.Seq)
		buf = appendSvarint(buf, int64(in.Events))
		buf = appendSvarint(buf, in.SentAtMS)
		buf = binary.AppendUvarint(buf, uint64(len(in.Codes)))
		buf = append(buf, in.Codes...)
	case MsgFrames:
		f := e.Frames
		buf = append(buf, tagFrames)
		buf = appendSvarint(buf, f.SessionID)
		buf = appendSvarint(buf, f.Seq)
		buf = appendFloat(buf, f.FPS)
		buf = appendFloat(buf, f.BitrateKbps)
		buf = appendSvarint(buf, int64(f.Stage))
		buf = appendBool(buf, f.Loading)
		buf = appendSvarint(buf, f.EchoSeq)
		buf = appendSvarint(buf, f.EchoSentAtMS)
		buf = binary.AppendUvarint(buf, uint64(len(f.Frames)))
		for _, fr := range f.Frames {
			// One varint per frame: size with the keyframe flag in bit 0.
			v := uint64(fr.SizeBytes) << 1
			if fr.Key {
				v |= 1
			}
			buf = binary.AppendUvarint(buf, v)
		}
	case MsgEnd:
		st := e.End
		buf = append(buf, tagEnd)
		buf = appendSvarint(buf, st.SessionID)
		buf = appendSvarint(buf, st.DurationSec)
		buf = appendFloat(buf, st.AvgFPS)
		buf = appendFloat(buf, st.FPSRatio)
		buf = appendFloat(buf, st.Degraded)
	case MsgSummaryReq:
		buf = append(buf, tagSummaryReq)
		buf = appendSvarint(buf, int64(e.SummaryReq.Proto))
	case MsgSummary:
		sm := e.Summary
		buf = append(buf, tagSummary)
		buf = appendSvarint(buf, int64(sm.Proto))
		buf = appendSvarint(buf, int64(sm.Servers))
		buf = appendSvarint(buf, int64(sm.Draining))
		buf = appendSvarint(buf, int64(sm.LiveSessions))
		buf = appendSvarint(buf, int64(sm.Pending))
		buf = appendSvarint(buf, int64(sm.Placements))
		buf = appendSvarint(buf, int64(sm.Completed))
		buf = appendFloat(buf, sm.Headroom)
		buf = appendFloat(buf, sm.UtilPct)
		if proto >= ProtoBinary3 {
			if len(sm.Games) != len(sm.GameDemand) {
				err = fmt.Errorf("streaming: summary has %d games but %d demand entries", len(sm.Games), len(sm.GameDemand)) //cocg:lint-ignore hotalloc error path; boxing only happens on a malformed summary
				break
			}
			buf = appendSvarint(buf, int64(sm.IdleServers))
			buf = binary.AppendUvarint(buf, uint64(len(sm.Games)))
			for i, g := range sm.Games {
				buf = appendString(buf, g)
				buf = appendFloat(buf, sm.GameDemand[i])
			}
		}
	default:
		err = fmt.Errorf("streaming: cannot encode message type %q", e.Type) //cocg:lint-ignore hotalloc error path; boxing for %q only happens on an unencodable type
	}
	if err != nil {
		return buf[:start], err
	}
	n := len(buf) - start - 4
	if n > maxWireFrame {
		return buf[:start], fmt.Errorf("streaming: frame of %d bytes exceeds wire limit", n) //cocg:lint-ignore hotalloc error path; boxing for %d only happens on an oversized frame
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// DecodeFrom decodes one binary frame body in the newest layout this build
// speaks. Connections use DecodeFromProto with their negotiated version.
func (e *Envelope) DecodeFrom(data []byte) error {
	return e.DecodeFromProto(data, maxKnownProto)
}

// DecodeFromProto decodes one binary frame body (tag + payload, without the
// length prefix) in the layout of wire version proto into e. Payload structs
// already attached to e are reused — including the FrameBatch.Frames and
// InputBatch.Codes backing arrays — so a pooled envelope decodes with zero
// allocations in steady state; payload pointers of other message types are
// cleared. Corrupt input yields an error, never a panic, and never a
// partially valid envelope.
//
//cocg:hot
func (e *Envelope) DecodeFromProto(data []byte, proto int) error {
	if len(data) == 0 {
		return errWireTruncated
	}
	r := wireReader{data: data[1:]}
	switch data[0] {
	case tagHello:
		h := e.Hello
		if h == nil {
			h = &Hello{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		h.Game = r.str()
		h.Script = int(r.svarint())
		h.Habit = r.svarint()
		h.Proto = int(r.svarint())
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgHello)
		e.Hello = h
	case tagAccept:
		a := e.Accept
		if a == nil {
			a = &Accept{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		a.SessionID = r.svarint()
		a.Server = int(r.svarint())
		a.Game = r.str()
		a.Proto = int(r.svarint())
		a.Cluster = r.str()
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgAccept)
		e.Accept = a
	case tagReject:
		rej := e.Reject
		if rej == nil {
			rej = &Reject{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		rej.Reason = r.str()
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgReject)
		e.Reject = rej
	case tagInput:
		in := e.Input
		if in == nil {
			in = &InputBatch{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		in.SessionID = r.svarint()
		in.Seq = r.svarint()
		in.Events = int(r.svarint())
		in.SentAtMS = r.svarint()
		n := int(r.uvarint())
		if n < 0 || n > r.remaining() {
			return r.fail()
		}
		in.Codes = append(in.Codes[:0], r.bytes(n)...)
		if len(in.Codes) == 0 {
			in.Codes = nil
		}
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgInput)
		e.Input = in
	case tagFrames:
		f := e.Frames
		if f == nil {
			f = &FrameBatch{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		f.SessionID = r.svarint()
		f.Seq = r.svarint()
		f.FPS = r.float()
		f.BitrateKbps = r.float()
		f.Stage = int(r.svarint())
		f.Loading = r.bool()
		f.EchoSeq = r.svarint()
		f.EchoSentAtMS = r.svarint()
		n := int(r.uvarint())
		// Each frame record is at least one byte on the wire.
		if n < 0 || n > r.remaining() {
			return r.fail()
		}
		frames := f.Frames[:0]
		for i := 0; i < n; i++ {
			v := r.uvarint()
			if v>>1 > math.MaxUint32 {
				return r.fail()
			}
			frames = append(frames, FrameInfo{SizeBytes: uint32(v >> 1), Key: v&1 != 0})
		}
		if len(frames) == 0 {
			frames = nil
		}
		if !r.done() {
			return r.fail()
		}
		f.Frames = frames
		e.setPayload(MsgFrames)
		e.Frames = f
	case tagEnd:
		st := e.End
		if st == nil {
			st = &SessionStat{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		st.SessionID = r.svarint()
		st.DurationSec = r.svarint()
		st.AvgFPS = r.float()
		st.FPSRatio = r.float()
		st.Degraded = r.float()
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgEnd)
		e.End = st
	case tagSummaryReq:
		sr := e.SummaryReq
		if sr == nil {
			sr = &SummaryReq{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		sr.Proto = int(r.svarint())
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgSummaryReq)
		e.SummaryReq = sr
	case tagSummary:
		sm := e.Summary
		if sm == nil {
			sm = &ClusterSummary{} //cocg:lint-ignore hotalloc first-decode payload; pooled envelopes reuse the attached struct in steady state
		}
		sm.Proto = int(r.svarint())
		sm.Servers = int(r.svarint())
		sm.Draining = int(r.svarint())
		sm.LiveSessions = int(r.svarint())
		sm.Pending = int(r.svarint())
		sm.Placements = int(r.svarint())
		sm.Completed = int(r.svarint())
		sm.Headroom = r.float()
		sm.UtilPct = r.float()
		if proto >= ProtoBinary3 {
			sm.IdleServers = int(r.svarint())
			n := int(r.uvarint())
			if n < 0 || n > r.remaining() {
				return r.fail()
			}
			games := sm.Games[:0]
			demand := sm.GameDemand[:0]
			for i := 0; i < n; i++ {
				games = append(games, r.str())
				demand = append(demand, r.float())
			}
			if len(games) == 0 {
				games, demand = nil, nil
			}
			sm.Games = games
			sm.GameDemand = demand
		} else {
			// Older layouts cannot carry the extended fields; clear any
			// leftovers from a reused payload struct.
			sm.IdleServers = 0
			sm.Games = nil
			sm.GameDemand = nil
		}
		if !r.done() {
			return r.fail()
		}
		e.setPayload(MsgSummary)
		e.Summary = sm
	default:
		return fmt.Errorf("streaming: unknown binary message tag %d", data[0]) //cocg:lint-ignore hotalloc error path; boxing for %d only happens on a corrupt frame
	}
	return nil
}

// setPayload stamps the type and clears every payload pointer that does not
// match it, so a reused envelope never carries two payloads at once.
func (e *Envelope) setPayload(t MsgType) {
	e.Type = t
	if t != MsgHello {
		e.Hello = nil
	}
	if t != MsgAccept {
		e.Accept = nil
	}
	if t != MsgReject {
		e.Reject = nil
	}
	if t != MsgInput {
		e.Input = nil
	}
	if t != MsgFrames {
		e.Frames = nil
	}
	if t != MsgEnd {
		e.End = nil
	}
	if t != MsgSummaryReq {
		e.SummaryReq = nil
	}
	if t != MsgSummary {
		e.Summary = nil
	}
}

// wireReader walks a binary payload with saturating error state: after the
// first malformed read every subsequent read returns zero values and done()
// reports failure, so decoders can parse straight-line and check once.
type wireReader struct {
	data []byte
	off  int
	bad  bool
}

func (r *wireReader) remaining() int { return len(r.data) - r.off }

func (r *wireReader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) svarint() int64 {
	v := r.uvarint()
	// Zigzag decode.
	return int64(v>>1) ^ -int64(v&1)
}

func (r *wireReader) float() float64 {
	if r.bad || r.remaining() < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

func (r *wireReader) bool() bool {
	if r.bad || r.remaining() < 1 {
		r.bad = true
		return false
	}
	b := r.data[r.off]
	r.off++
	return b != 0
}

func (r *wireReader) bytes(n int) []byte {
	if r.bad || n < 0 || r.remaining() < n {
		r.bad = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) str() string {
	n := int(r.uvarint())
	if n < 0 || n > r.remaining() {
		r.bad = true
		return ""
	}
	return string(r.bytes(n))
}

// done reports whether the payload parsed cleanly and was consumed exactly.
func (r *wireReader) done() bool { return !r.bad && r.off == len(r.data) }

func (r *wireReader) fail() error {
	return errWireTruncated
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendSvarint(buf []byte, v int64) []byte {
	// Zigzag encode.
	return binary.AppendUvarint(buf, uint64(v<<1)^uint64(v>>63))
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}
