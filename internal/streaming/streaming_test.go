package streaming

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/netmodel"
	"cocg/internal/resources"
)

var (
	sysOnce sync.Once
	sysVal  *core.System
	sysErr  error
)

func testSystem(t testing.TB) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = core.Train(
			[]*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()},
			core.TrainOptions{Players: 4, SessionsPerPlayer: 2, Seed: 77},
		)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:    testSystem(t),
		Policy:    core.PolicyCoCG,
		Servers:   2,
		TickEvery: time.Millisecond, // 1000x speed
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestClientPlaysFullSession(t *testing.T) {
	s := startServer(t)
	stats, err := Play(s.Addr(), ClientConfig{Game: "Contra", Script: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames == 0 {
		t.Fatal("no frame batches received")
	}
	if stats.MeanFPS < 30 {
		t.Errorf("mean FPS %.1f", stats.MeanFPS)
	}
	if stats.MeanBitrate <= 0 {
		t.Error("no bitrate recorded")
	}
	if stats.LoadingSec == 0 {
		t.Error("client never saw a loading screen")
	}
	if stats.Final.DurationSec == 0 || stats.Final.FPSRatio < 0.9 {
		t.Errorf("final stats: %+v", stats.Final)
	}
	if stats.MeanRTTMS < 0 {
		t.Errorf("RTT %.1f ms", stats.MeanRTTMS)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]*ClientStats, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Play(s.Addr(), ClientConfig{Game: "Contra", Script: i % 3})
		}(i)
	}
	wg.Wait()
	completed := 0
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			completed++
			if results[i].Final.FPSRatio < 0.8 {
				t.Errorf("client %d FPS ratio %.2f", i, results[i].Final.FPSRatio)
			}
		}
	}
	if completed < 2 {
		t.Fatalf("only %d of %d concurrent clients completed", completed, n)
	}
}

func TestClientWithNetworkLink(t *testing.T) {
	s := startServer(t)
	stats, err := Play(s.Addr(), ClientConfig{
		Game: "Contra", Script: 0,
		Link: netmodel.FiberLink(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Net.Sent != stats.Frames {
		t.Errorf("net sent %d != frames %d", stats.Net.Sent, stats.Frames)
	}
	if stats.Net.MeanLatencyMS() <= 0 || stats.Net.MeanLatencyMS() > 10 {
		t.Errorf("fiber latency %.1f ms", stats.Net.MeanLatencyMS())
	}
	if stats.Net.StutterRate() > 0.01 {
		t.Errorf("fiber stutter rate %.3f", stats.Net.StutterRate())
	}
}

func TestRejectUnknownGame(t *testing.T) {
	s := startServer(t)
	_, err := Play(s.Addr(), ClientConfig{Game: "Tetris"})
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v", err)
	}
	if _, err := Play(s.Addr(), ClientConfig{Game: "Contra", Script: 99}); err == nil {
		t.Fatal("bad script accepted")
	}
}

func TestServerCloseIsIdempotent(t *testing.T) {
	s := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestServeRequiresSystem(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", ServerConfig{}); err == nil {
		t.Fatal("Serve without a system did not error")
	}
}

func TestEncoderModel(t *testing.T) {
	e := DefaultEncoder()
	battle := resources.New(55, 80, 50, 50)
	idle := resources.New(20, 20, 20, 20)
	full := e.Encode(60, battle, false)
	low := e.Encode(60, idle, false)
	if full <= low {
		t.Errorf("high-motion bitrate %.0f not above low-motion %.0f", full, low)
	}
	loading := e.Encode(0, battle, true)
	if loading >= low {
		t.Errorf("loading bitrate %.0f not below gameplay %.0f", loading, low)
	}
	slow := e.Encode(30, battle, false)
	if slow >= full {
		t.Errorf("30 FPS bitrate %.0f not below 60 FPS %.0f", slow, full)
	}
	// Caps hold.
	if r := e.Encode(240, resources.Uniform(100), false); r > e.MaxKbps {
		t.Errorf("bitrate %.0f above cap", r)
	}
	if r := e.Encode(1, resources.Uniform(0), false); r < e.MinKbps {
		t.Errorf("bitrate %.0f below floor", r)
	}
}

func TestEnvelopeValidation(t *testing.T) {
	bad := &Envelope{Type: MsgHello} // no payload
	if err := bad.validate(); err == nil {
		t.Error("payload-less envelope validated")
	}
	unknown := &Envelope{Type: "nope"}
	if err := unknown.validate(); err == nil {
		t.Error("unknown type validated")
	}
	good := &Envelope{Type: MsgReject, Reject: &Reject{Reason: "x"}}
	if err := good.validate(); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
}
