package streaming

import (
	"sync"
	"sync/atomic"
)

// shardBits sets the registry fan-out: 1<<shardBits power-of-two shards,
// selected by the low bits of the session ID. Sixteen shards keep the
// per-shard critical sections short enough that accept, input, teardown,
// metrics, and the tick walk stop serializing on one lock, without making
// the per-tick shard sweep itself expensive.
const shardBits = 4

// numShards is the registry fan-out (power of two, so id&(numShards-1)
// selects a shard without division).
const numShards = 1 << shardBits

// registry holds the live sessions, sharded by session ID. Each shard keeps
// a dense slice (the tick walk iterates it without touching map internals)
// plus an id index for O(1) removal; removal swap-deletes, so slots stay
// dense and the walk never skips or double-visits a session.
type registry struct {
	shards [numShards]regShard
	// count mirrors the total membership so Sessions() and admission
	// checks never take a lock.
	count atomic.Int64
	// contention counts shard-lock acquisitions that found the lock held —
	// the cheap TryLock-based proxy surfaced on /metrics.
	contention atomic.Uint64
}

type regShard struct {
	mu   sync.Mutex
	byID map[int64]int // session ID -> index in list
	list []*liveSession
}

func (r *registry) shardFor(id int64) *regShard {
	return &r.shards[id&(numShards-1)]
}

// lock acquires the shard lock, counting contended acquisitions.
func (r *registry) lock(sh *regShard) {
	if sh.mu.TryLock() {
		return
	}
	r.contention.Add(1)
	sh.mu.Lock()
}

// add registers a session.
func (r *registry) add(ls *liveSession) {
	sh := r.shardFor(ls.id)
	r.lock(sh)
	if sh.byID == nil {
		sh.byID = make(map[int64]int)
	}
	sh.byID[ls.id] = len(sh.list)
	sh.list = append(sh.list, ls)
	sh.mu.Unlock()
	r.count.Add(1)
}

// remove deregisters a session; it is a no-op for unknown IDs.
func (r *registry) remove(id int64) {
	sh := r.shardFor(id)
	r.lock(sh)
	i, ok := sh.byID[id]
	if !ok {
		sh.mu.Unlock()
		return
	}
	last := len(sh.list) - 1
	moved := sh.list[last]
	sh.list[i] = moved
	sh.list[last] = nil
	sh.list = sh.list[:last]
	sh.byID[moved.id] = i
	delete(sh.byID, id)
	sh.mu.Unlock()
	r.count.Add(-1)
}

// len returns the current membership without locking.
func (r *registry) len() int { return int(r.count.Load()) }

// snapshotInto appends every live session to dst, shard by shard, and
// returns the extended slice. The tick pipeline calls it once per tick with
// a reused buffer, so a steady-state snapshot allocates nothing. Sessions
// added concurrently may or may not appear — they catch the next tick.
func (r *registry) snapshotInto(dst []*liveSession) []*liveSession {
	for i := range r.shards {
		sh := &r.shards[i]
		r.lock(sh)
		dst = append(dst, sh.list...)
		sh.mu.Unlock()
	}
	return dst
}

// each calls fn for every live session, holding the shard lock only around
// the per-shard iteration. Close uses it to force-disconnect everything.
func (r *registry) each(fn func(*liveSession)) {
	for i := range r.shards {
		sh := &r.shards[i]
		r.lock(sh)
		for _, ls := range sh.list {
			fn(ls)
		}
		sh.mu.Unlock()
	}
}
