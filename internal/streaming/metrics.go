package streaming

import (
	"encoding/json"
	"fmt"
	"net/http"

	"cocg/internal/resources"
)

// MetricsHandler returns an http.Handler exposing the server's operational
// state: Prometheus-style text at /metrics and a JSON snapshot at /status —
// what a cloud-game operator's dashboard scrapes.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/status", s.serveStatus)
	return mux
}

// snapshot collects a consistent view under the server lock.
type snapshot struct {
	LiveSessions int              `json:"live_sessions"`
	Placements   int              `json:"placements"`
	Pending      int              `json:"pending"`
	Completed    int              `json:"completed"`
	Servers      []serverSnapshot `json:"servers"`
}

type serverSnapshot struct {
	ID     int              `json:"id"`
	Hosted int              `json:"hosted"`
	Util   resources.Vector `json:"utilization"`
	Peak   resources.Vector `json:"peak_utilization"`
}

func (s *Server) snapshot() snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := snapshot{
		LiveSessions: len(s.sessions),
		Placements:   s.cluster.Placements,
		Pending:      len(s.cluster.Pending),
	}
	for _, srv := range s.cluster.Servers {
		out.Completed += len(srv.Records)
		out.Servers = append(out.Servers, serverSnapshot{
			ID:     srv.ID,
			Hosted: srv.NumHosted(),
			Util:   srv.Utilization(),
			Peak:   srv.PeakUtilization(),
		})
	}
	return out
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP cocg_live_sessions Currently connected streaming sessions.\n")
	fmt.Fprintf(w, "# TYPE cocg_live_sessions gauge\ncocg_live_sessions %d\n", snap.LiveSessions)
	fmt.Fprintf(w, "# HELP cocg_placements_total Sessions placed since start.\n")
	fmt.Fprintf(w, "# TYPE cocg_placements_total counter\ncocg_placements_total %d\n", snap.Placements)
	fmt.Fprintf(w, "# HELP cocg_pending_arrivals Arrivals waiting for a server.\n")
	fmt.Fprintf(w, "# TYPE cocg_pending_arrivals gauge\ncocg_pending_arrivals %d\n", snap.Pending)
	fmt.Fprintf(w, "# HELP cocg_completed_sessions_total Sessions finished since start.\n")
	fmt.Fprintf(w, "# TYPE cocg_completed_sessions_total counter\ncocg_completed_sessions_total %d\n", snap.Completed)
	fmt.Fprintf(w, "# HELP cocg_server_hosted Games hosted per backend server.\n")
	fmt.Fprintf(w, "# TYPE cocg_server_hosted gauge\n")
	for _, srv := range snap.Servers {
		fmt.Fprintf(w, "cocg_server_hosted{server=\"%d\"} %d\n", srv.ID, srv.Hosted)
	}
	fmt.Fprintf(w, "# HELP cocg_server_utilization Per-dimension utilization percent.\n")
	fmt.Fprintf(w, "# TYPE cocg_server_utilization gauge\n")
	for _, srv := range snap.Servers {
		for d := resources.Dim(0); d < resources.NumDims; d++ {
			fmt.Fprintf(w, "cocg_server_utilization{server=\"%d\",dim=%q} %.2f\n",
				srv.ID, d.String(), srv.Util[d])
		}
	}
}

func (s *Server) serveStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //cocg:lint-ignore droppederr client disconnect mid-response is benign and headers are already sent
}
