package streaming

import (
	"encoding/json"
	"fmt"
	"net/http"

	"cocg/internal/resources"
)

// MetricsHandler returns an http.Handler exposing the server's operational
// state: Prometheus-style text at /metrics and a JSON snapshot at /status —
// what a cloud-game operator's dashboard scrapes.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/status", s.serveStatus)
	return mux
}

// snapshot collects a consistent view of the scheduled cluster under the
// cluster lock, plus the lock-free delivery counters.
type snapshot struct {
	LiveSessions int              `json:"live_sessions"`
	Placements   int              `json:"placements"`
	Pending      int              `json:"pending"`
	Completed    int              `json:"completed"`
	Servers      []serverSnapshot `json:"servers"`

	// Delivery-path counters (monotonic since start).
	FramesSent      uint64 `json:"frames_sent"`
	FramesCoalesced uint64 `json:"frames_coalesced"`
	FramesDropped   uint64 `json:"frames_dropped"`
	ShardContention uint64 `json:"shard_contention"`
	SessionsJSON    uint64 `json:"sessions_json"`
	SessionsBinary  uint64 `json:"sessions_binary"`
	SummariesServed uint64 `json:"summaries_served"`
}

type serverSnapshot struct {
	ID     int              `json:"id"`
	Hosted int              `json:"hosted"`
	Util   resources.Vector `json:"utilization"`
	Peak   resources.Vector `json:"peak_utilization"`
}

func (s *Server) snapshot() snapshot {
	s.clusterMu.Lock()
	out := snapshot{
		LiveSessions: s.reg.len(),
		Placements:   s.cluster.Placements,
		Pending:      len(s.cluster.Pending),
	}
	for _, srv := range s.cluster.Servers {
		out.Completed += len(srv.Records)
		out.Servers = append(out.Servers, serverSnapshot{
			ID:     srv.ID,
			Hosted: srv.NumHosted(),
			Util:   srv.Utilization(),
			Peak:   srv.PeakUtilization(),
		})
	}
	s.clusterMu.Unlock()
	out.FramesSent = s.framesSent.Load()
	out.FramesCoalesced = s.framesCoalesced.Load()
	out.FramesDropped = s.framesDropped.Load()
	out.ShardContention = s.reg.contention.Load()
	out.SessionsJSON = s.protoSessions[ProtoJSON].Load()
	// Both binary layouts (v2 and the extended-summary v3) are one framing
	// to the operator.
	out.SessionsBinary = s.protoSessions[ProtoBinary].Load() + s.protoSessions[ProtoBinary3].Load()
	out.SummariesServed = s.summariesServed.Load()
	return out
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP cocg_live_sessions Currently connected streaming sessions.\n")
	fmt.Fprintf(w, "# TYPE cocg_live_sessions gauge\ncocg_live_sessions %d\n", snap.LiveSessions)
	fmt.Fprintf(w, "# HELP cocg_placements_total Sessions placed since start.\n")
	fmt.Fprintf(w, "# TYPE cocg_placements_total counter\ncocg_placements_total %d\n", snap.Placements)
	fmt.Fprintf(w, "# HELP cocg_pending_arrivals Arrivals waiting for a server.\n")
	fmt.Fprintf(w, "# TYPE cocg_pending_arrivals gauge\ncocg_pending_arrivals %d\n", snap.Pending)
	fmt.Fprintf(w, "# HELP cocg_completed_sessions_total Sessions finished since start.\n")
	fmt.Fprintf(w, "# TYPE cocg_completed_sessions_total counter\ncocg_completed_sessions_total %d\n", snap.Completed)
	fmt.Fprintf(w, "# HELP cocg_stream_frames_sent_total Frame batches delivered to clients.\n")
	fmt.Fprintf(w, "# TYPE cocg_stream_frames_sent_total counter\ncocg_stream_frames_sent_total %d\n", snap.FramesSent)
	fmt.Fprintf(w, "# HELP cocg_stream_frames_coalesced_total Frame batches coalesced under backpressure.\n")
	fmt.Fprintf(w, "# TYPE cocg_stream_frames_coalesced_total counter\ncocg_stream_frames_coalesced_total %d\n", snap.FramesCoalesced)
	fmt.Fprintf(w, "# HELP cocg_stream_frames_dropped_total Frame batches dropped oldest-first under backpressure.\n")
	fmt.Fprintf(w, "# TYPE cocg_stream_frames_dropped_total counter\ncocg_stream_frames_dropped_total %d\n", snap.FramesDropped)
	fmt.Fprintf(w, "# HELP cocg_stream_shard_contention_total Session-registry shard lock acquisitions that found the lock held.\n")
	fmt.Fprintf(w, "# TYPE cocg_stream_shard_contention_total counter\ncocg_stream_shard_contention_total %d\n", snap.ShardContention)
	fmt.Fprintf(w, "# HELP cocg_stream_sessions_total Sessions admitted, by negotiated wire protocol.\n")
	fmt.Fprintf(w, "# TYPE cocg_stream_sessions_total counter\n")
	fmt.Fprintf(w, "cocg_stream_sessions_total{proto=\"json\"} %d\n", snap.SessionsJSON)
	fmt.Fprintf(w, "cocg_stream_sessions_total{proto=\"binary\"} %d\n", snap.SessionsBinary)
	fmt.Fprintf(w, "# HELP cocg_stream_summaries_served_total Cluster load summaries served to coordinators.\n")
	fmt.Fprintf(w, "# TYPE cocg_stream_summaries_served_total counter\ncocg_stream_summaries_served_total %d\n", snap.SummariesServed)
	fmt.Fprintf(w, "# HELP cocg_server_hosted Games hosted per backend server.\n")
	fmt.Fprintf(w, "# TYPE cocg_server_hosted gauge\n")
	for _, srv := range snap.Servers {
		fmt.Fprintf(w, "cocg_server_hosted{server=\"%d\"} %d\n", srv.ID, srv.Hosted)
	}
	fmt.Fprintf(w, "# HELP cocg_server_utilization Per-dimension utilization percent.\n")
	fmt.Fprintf(w, "# TYPE cocg_server_utilization gauge\n")
	for _, srv := range snap.Servers {
		for d := resources.Dim(0); d < resources.NumDims; d++ {
			fmt.Fprintf(w, "cocg_server_utilization{server=\"%d\",dim=%q} %.2f\n",
				srv.ID, d.String(), srv.Util[d])
		}
	}
}

func (s *Server) serveStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //cocg:lint-ignore droppederr client disconnect mid-response is benign and headers are already sent
}
