package streaming

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/parallel"
)

// benchFrameBatch is a realistic per-tick payload: one 60 FPS detection
// frame's worth of encoded video, as the server emits at steady state.
func benchFrameBatch() *Envelope {
	e := DefaultEncoder()
	return &Envelope{Type: MsgFrames, Frames: &FrameBatch{
		SessionID: 117, Seq: 4242, FPS: 60, BitrateKbps: 8000, Stage: 3,
		EchoSeq: 4201, EchoSentAtMS: 99171234,
		Frames: e.AppendFrames(nil, 60, 8000),
	}}
}

// BenchmarkWireFrameBatchEncode is the per-session encode hot path over the
// binary codec: serializing one frame batch into a reused buffer. Must stay
// at 0 allocs/op.
func BenchmarkWireFrameBatchEncode(b *testing.B) {
	env := benchFrameBatch()
	buf, err := env.AppendTo(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = env.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFrameBatchDecode is the client-side mirror: decoding a frame
// batch into a reused envelope. Must stay at 0 allocs/op.
func BenchmarkWireFrameBatchDecode(b *testing.B) {
	blob, err := benchFrameBatch().AppendTo(nil)
	if err != nil {
		b.Fatal(err)
	}
	body := blob[4:]
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	var env Envelope
	if err := env.DecodeFrom(body); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.DecodeFrom(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFrameBatchJSONEncode is the pre-PR5 wire path for the same
// payload: the JSON codec, one marshal per batch. Kept in-tree as the
// recorded baseline for BENCH_PR5.json.
func BenchmarkWireFrameBatchJSONEncode(b *testing.B) {
	env := benchFrameBatch()
	blob, err := json.Marshal(env)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFrameBatchJSONDecode is the pre-PR5 client-side mirror.
func BenchmarkWireFrameBatchJSONDecode(b *testing.B) {
	blob, err := json.Marshal(benchFrameBatch())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var env Envelope
		if err := json.Unmarshal(blob, &env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryShardedChurn hammers the sharded session registry from
// GOMAXPROCS goroutines with the live mix of operations: admissions,
// teardowns, and count reads.
func BenchmarkRegistryShardedChurn(b *testing.B) {
	var r registry
	var nextID atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID.Add(1)
			r.add(&liveSession{id: id})
			_ = r.len()
			r.remove(id)
		}
	})
}

// BenchmarkRegistryGlobalLockChurn is the pre-PR5 registry — one mutex, one
// map — under the identical operation mix. Kept in-tree as the recorded
// baseline for BENCH_PR5.json.
func BenchmarkRegistryGlobalLockChurn(b *testing.B) {
	var mu sync.Mutex
	sessions := make(map[int64]*liveSession)
	var nextID atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID.Add(1)
			mu.Lock()
			sessions[id] = &liveSession{id: id}
			mu.Unlock()
			mu.Lock()
			_ = len(sessions)
			mu.Unlock()
			mu.Lock()
			delete(sessions, id)
			mu.Unlock()
		}
	})
}

// benchSessions registers n wire-less live sessions on a served cluster and
// warms them past the loading screen, returning the server and a frozen
// session snapshot. The simulation is then left untouched so every measured
// op sees the identical steady state.
func benchSessions(b *testing.B, n int) (*Server, []*liveSession) {
	b.Helper()
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:    testSystem(b),
		Policy:    core.PolicyCoCG,
		Servers:   16,
		TickEvery: time.Hour, // the benchmark owns the tick cadence
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	specs := []*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()}
	for i := 0; i < n; i++ {
		spec := specs[i%len(specs)]
		habit := int64(1000 + i%7)
		sess, err := gamesim.NewPlayerSession(spec, i%len(spec.Scripts), habit, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		ctl, err := s.cluster.Policy.NewController(spec, habit)
		if err != nil {
			b.Fatal(err)
		}
		srv := s.cluster.Servers[i%len(s.cluster.Servers)]
		hosted := srv.Add(spec, sess, ctl)
		s.reg.add(&liveSession{id: int64(i + 1), hosted: hosted, proto: ProtoBinary, out: newOutQueue(8)})
	}
	// Warm every session past its loading screen, then drain the queues.
	snap := s.reg.snapshotInto(nil)
	for t := 0; t < 80; t++ {
		s.tickOnce()
	}
	for _, ls := range snap {
		for {
			e, ok := ls.out.tryPop()
			if !ok {
				break
			}
			putFramesEnv(e)
		}
	}
	return s, snap
}

// benchStreamTick measures one steady-state delivery walk over n live
// sessions at the given fan-out: every session gets a frame batch emitted
// through the pooled pipeline, pushed to its bounded queue, drained, and
// encoded to wire bytes — exactly what the per-session writer does, minus
// the socket. The simulation clock is frozen, so every op is identical.
func benchStreamTick(b *testing.B, n, jobs int) {
	s, snap := benchSessions(b, n)
	s.tickBoundary = true
	nchunks := parallel.NumChunksOf(len(snap), tickChunk)
	bufs := make([][]byte, nchunks)
	body := func(chunk, lo, hi int) {
		for i := lo; i < hi; i++ {
			ls := snap[i]
			s.emitSession(ls)
			for {
				e, ok := ls.out.tryPop()
				if !ok {
					break
				}
				var err error
				bufs[chunk], err = e.AppendTo(bufs[chunk][:0])
				putFramesEnv(e)
				if err != nil {
					panic(err)
				}
			}
		}
	}
	// One warm walk sizes the pools and buffers before measuring.
	if jobs <= 1 {
		body(0, 0, len(snap))
	} else {
		parallel.ForChunksOf(jobs, len(snap), tickChunk, body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if jobs <= 1 {
			body(0, 0, len(snap))
		} else {
			parallel.ForChunksOf(jobs, len(snap), tickChunk, body)
		}
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(perOp*1e9/float64(n), "ns/session")
	b.ReportMetric(float64(n)/perOp, "frames/sec")
}

func BenchmarkStreamTick256Jobs1(b *testing.B) { benchStreamTick(b, 256, 1) }
func BenchmarkStreamTick256Jobs8(b *testing.B) { benchStreamTick(b, 256, 8) }
func BenchmarkStreamTick1024Jobs8(b *testing.B) {
	benchStreamTick(b, 1024, 8)
}

// BenchmarkStreamTick256Legacy is the pre-PR5 delivery walk over the same
// 256 sessions: one global lock serializing the whole pass, a freshly
// allocated envelope and frame slice per session, and the JSON codec. Kept
// in-tree as the recorded baseline for BENCH_PR5.json.
func BenchmarkStreamTick256Legacy(b *testing.B) {
	s, snap := benchSessions(b, 256)
	s.tickBoundary = true
	var mu sync.Mutex // the old code held one mutex across the entire walk
	var seq int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		for _, ls := range snap {
			sess := ls.hosted.Session
			loading := sess.Phase() == gamesim.PhaseLoading
			fps := sess.LastFPS()
			seq++
			kbps := s.cfg.Encoder.Encode(fps, ls.hosted.Granted, loading)
			env := &Envelope{Type: MsgFrames, Frames: &FrameBatch{
				SessionID:   ls.id,
				Seq:         seq,
				FPS:         fps,
				BitrateKbps: kbps,
				Stage:       sess.StageType(),
				Loading:     loading,
				Frames:      s.cfg.Encoder.AppendFrames(nil, fps, kbps),
			}}
			if _, err := json.Marshal(env); err != nil {
				b.Fatal(err)
			}
		}
		mu.Unlock()
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(perOp*1e9/256, "ns/session")
	b.ReportMetric(256/perOp, "frames/sec")
}
