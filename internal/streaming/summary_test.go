package streaming

import (
	"net"
	"testing"
	"time"

	"cocg/internal/core"
)

// TestSummaryFeedNegotiatesAndServes drives the coordinator-facing load feed
// by hand: the first MsgSummaryReq travels as JSON and negotiates the wire
// protocol exactly like a session Hello, every further round runs over the
// negotiated binary framing, and each reply carries a sane cluster rollup.
func TestSummaryFeedNegotiatesAndServes(t *testing.T) {
	s := startServer(t)
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(10 * time.Second))
	feed := NewConn(nc)

	if err := feed.Send(&Envelope{Type: MsgSummaryReq,
		SummaryReq: &SummaryReq{Proto: ProtoBinary}}); err != nil {
		t.Fatal(err)
	}
	env, err := feed.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != MsgSummary || env.Summary == nil {
		t.Fatalf("summary request answered with %q", env.Type)
	}
	if env.Summary.Proto != ProtoBinary {
		t.Fatalf("feed negotiated proto %d, want binary", env.Summary.Proto)
	}
	if env.Summary.Servers != 2 {
		t.Errorf("summary reports %d servers, cluster has 2", env.Summary.Servers)
	}
	if env.Summary.Headroom < 0 || env.Summary.Headroom > 1 {
		t.Errorf("headroom %.3f out of [0,1]", env.Summary.Headroom)
	}

	// Second round over the negotiated binary framing.
	feed.SetProto(NegotiateProto(ProtoBinary, env.Summary.Proto))
	if err := feed.Send(&Envelope{Type: MsgSummaryReq, SummaryReq: &SummaryReq{}}); err != nil {
		t.Fatal(err)
	}
	env2, err := feed.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env2.Type != MsgSummary {
		t.Fatalf("binary summary round answered with %q", env2.Type)
	}
	if got := s.snapshot().SummariesServed; got != 2 {
		t.Errorf("summaries-served counter %d, want 2", got)
	}
}

// TestSummaryFeedReflectsLiveSessions ties the feed to reality: a session
// admitted mid-feed shows up in the next summary's LiveSessions/Placements.
func TestSummaryFeedReflectsLiveSessions(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:    testSystem(t),
		Policy:    core.PolicyCoCG,
		Servers:   2,
		TickEvery: time.Hour, // sessions stay live while we look
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	sessionDone := make(chan struct{})
	go func() {
		defer close(sessionDone)
		_, _ = Play(s.Addr(), ClientConfig{Game: "Contra", Script: 0, Timeout: time.Minute})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Sessions() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Sessions() < 1 {
		t.Fatal("session never admitted")
	}

	sum := s.LoadSummary()
	if sum.LiveSessions != 1 {
		t.Errorf("summary reports %d live sessions, want 1", sum.LiveSessions)
	}
	if sum.Placements != 1 {
		t.Errorf("summary reports %d placements, want 1", sum.Placements)
	}
	s.Close() // tears the live session down
	<-sessionDone
}

// TestCloseUnblocksSummaryFeeds pins shutdown for the feed path: a server
// closing with a feed blocked in Recv must disconnect it rather than hang.
func TestCloseUnblocksSummaryFeeds(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:    testSystem(t),
		Policy:    core.PolicyCoCG,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	feed := NewConn(nc)
	if err := feed.Send(&Envelope{Type: MsgSummaryReq,
		SummaryReq: &SummaryReq{Proto: ProtoBinary}}); err != nil {
		t.Fatal(err)
	}
	if _, err := feed.Recv(); err != nil {
		t.Fatal(err)
	}
	// The feed now idles between requests; the server side is blocked in
	// RecvInto waiting for the next one.
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close() hung on an idle summary feed")
	}
	if _, err := feed.Recv(); err == nil {
		t.Error("feed still alive after server close")
	}
}
