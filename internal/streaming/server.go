package streaming

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/parallel"
	"cocg/internal/platform"
	"cocg/internal/simclock"
)

// ServerConfig shapes a streaming front end.
type ServerConfig struct {
	// System is the trained CoCG deployment serving the games.
	System *core.System
	// Policy selects the co-location scheme; defaults to CoCG.
	Policy core.PolicyKind
	// Servers is the number of backend game servers; <=0 means 2.
	Servers int
	// TickEvery is the real duration of one virtual second; <=0 means
	// 10 ms (a 100x-speed simulation — tests and demos don't wait).
	TickEvery time.Duration
	// Encoder models the video encoder; the zero value uses defaults.
	Encoder Encoder
	// SessionSeed seeds arriving sessions.
	SessionSeed int64
	// Jobs bounds the goroutines the per-tick delivery walk fans out over;
	// <=1 walks serially. Simulation outcomes are identical at every value:
	// the cluster itself always ticks serially, and the walk only reads
	// per-session state and writes to per-session queues.
	Jobs int
	// MaxProto caps the wire protocol the server will negotiate
	// (ProtoJSON pins every session to JSON); 0 means the newest version.
	MaxProto int
	// QueueLen is the per-session outbound queue capacity; <=0 means 64.
	// When a client falls this far behind, frame batches are coalesced and
	// then dropped oldest-first (see outQueue) rather than buffered without
	// bound.
	QueueLen int
}

// Server is the cloud end of Fig. 1: it hosts game sessions on a scheduled
// cluster and streams encoded frames to connected clients.
//
// Concurrency model: the cluster (and placement state) is guarded by
// clusterMu — the simulation always advances serially, so outcomes cannot
// depend on delivery parallelism. Live sessions live in a sharded registry
// (16 shards keyed by session ID) so the accept, input, teardown, and
// metrics paths never serialize on one lock. The per-tick delivery walk
// fans out over cfg.Jobs goroutines in fixed chunks, builds frame batches
// in pooled envelopes, and pushes them to per-session bounded queues; one
// writer goroutine per session drains its queue to the wire.
type Server struct {
	cfg     ServerConfig
	cluster *platform.Cluster
	ln      net.Listener

	// clusterMu guards the cluster, placement state, and the tick walk.
	clusterMu sync.Mutex
	nextID    int64
	nextSeed  int64
	closed    bool

	reg registry

	// summaryMu guards the set of open summary-feed connections (coordinator
	// health/load probes) so Close can force them down; they are not sessions
	// and never enter the registry.
	summaryMu    sync.Mutex
	summaryConns map[*Conn]struct{}

	done chan struct{}
	wg   sync.WaitGroup

	// Delivery counters (see MetricsHandler).
	framesSent      atomic.Uint64
	framesCoalesced atomic.Uint64
	framesDropped   atomic.Uint64
	summariesServed atomic.Uint64
	protoSessions   [maxKnownProto + 1]atomic.Uint64

	// Tick-walk reusables: the snapshot buffer and the hoisted chunk body
	// (built once — constructing a closure per tick would allocate).
	tickSnap     []*liveSession
	tickBoundary bool
	tickBody     func(chunk, lo, hi int)

	// fleetLoad is the reusable output buffer for the policy's incremental
	// fleet summary; guarded by clusterMu like the cluster itself.
	fleetLoad platform.FleetLoad
}

// liveSession ties a hosted game to its client connection. Fields written
// by the tick walk (seq, ended) are touched only there — chunks are
// disjoint within a tick and ticks are serialized — so they need no lock;
// the input mirror has its own mutex because the read loop races the walk.
type liveSession struct {
	id     int64
	conn   *Conn
	hosted *platform.Hosted
	proto  int
	seq    int64
	ended  bool

	inMu     sync.Mutex
	inSeq    int64
	inSentAt int64

	out *outQueue
}

// tickChunk is the delivery-walk granularity: sessions are visited in fixed
// 32-wide chunks so the fan-out keeps workers busy at hundreds of sessions
// while chunk boundaries stay independent of the worker count.
const tickChunk = 32

// framesEnvPool recycles frame-batch envelopes (and their FrameBatch and
// per-frame slice backing arrays) between the tick walk and the session
// writers, so steady-state delivery allocates nothing per batch.
var framesEnvPool = sync.Pool{
	New: func() any { return &Envelope{Type: MsgFrames, Frames: &FrameBatch{}} },
}

func getFramesEnv() *Envelope { return framesEnvPool.Get().(*Envelope) }

// putFramesEnv recycles a frame-batch envelope; other message types (the
// one End per session) and nil are ignored.
func putFramesEnv(e *Envelope) {
	if e == nil || e.Type != MsgFrames || e.Frames == nil {
		return
	}
	e.Frames.Frames = e.Frames.Frames[:0]
	framesEnvPool.Put(e)
}

// Serve starts a streaming server listening on addr (e.g. "127.0.0.1:0").
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.System == nil {
		return nil, errors.New("streaming: ServerConfig.System is required")
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	if cfg.Encoder == (Encoder{}) {
		cfg.Encoder = DefaultEncoder()
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.MaxProto <= 0 {
		cfg.MaxProto = maxKnownProto
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		cluster:      cfg.System.NewCluster(cfg.Servers, cfg.Policy),
		ln:           ln,
		nextSeed:     cfg.SessionSeed,
		summaryConns: make(map[*Conn]struct{}),
		done:         make(chan struct{}),
	}
	s.tickBody = func(chunk, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.emitSession(s.tickSnap[i])
		}
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and disconnects all clients. Every goroutine the
// server started — accept loop, tick loop, per-session readers and writers
// — has exited when Close returns.
func (s *Server) Close() error {
	s.clusterMu.Lock()
	if s.closed {
		s.clusterMu.Unlock()
		return nil
	}
	s.closed = true
	s.clusterMu.Unlock()
	close(s.done)
	err := s.ln.Close()
	// Force every live session down: closing the queue unblocks its writer,
	// closing the connection unblocks its reader (and any in-flight Send).
	s.reg.each(func(ls *liveSession) {
		ls.out.close()
		if ls.conn != nil { // benchmarks register wire-less sessions
			_ = ls.conn.Close() // best-effort disconnect during teardown
		}
	})
	// Summary feeds block in Recv between coordinator probes; closing the
	// connection unblocks them so wg.Wait cannot hang on a quiet feed.
	s.summaryMu.Lock()
	for conn := range s.summaryConns {
		_ = conn.Close() // best-effort disconnect during teardown
	}
	s.summaryMu.Unlock()
	s.wg.Wait()
	return err
}

// acceptLoop admits client connections.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(NewConn(c))
		}()
	}
}

// handle runs one client connection: admission and protocol negotiation,
// then the input-reading loop, with a paired writer goroutine draining the
// session's outbound queue.
func (s *Server) handle(conn *Conn) {
	env, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	if env.Type == MsgSummaryReq {
		s.serveSummaryFeed(conn, env.SummaryReq)
		return
	}
	if env.Type != MsgHello {
		_ = conn.Close()
		return
	}
	hello := env.Hello
	spec, err := gamesim.GameByName(hello.Game)
	if err != nil {
		_ = conn.Send(&Envelope{Type: MsgReject, Reject: &Reject{Reason: err.Error()}})
		_ = conn.Close()
		return
	}
	if hello.Script < 0 || hello.Script >= len(spec.Scripts) {
		_ = conn.Send(&Envelope{Type: MsgReject, Reject: &Reject{Reason: "no such script"}})
		_ = conn.Close()
		return
	}
	ls, reason := s.place(conn, spec, hello)
	if ls == nil {
		_ = conn.Send(&Envelope{Type: MsgReject, Reject: &Reject{Reason: reason}})
		_ = conn.Close()
		return
	}
	// The Accept went out (in JSON) inside place; switch both directions to
	// the negotiated framing before any concurrent use of the connection.
	conn.SetProto(ls.proto)
	s.protoSessions[ls.proto].Add(1)

	writerDone := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(writerDone)
		s.writeLoop(ls)
	}()
	s.readLoop(ls)
	// Reader gone: the client disconnected (normally, after End) or the
	// server is tearing down. Unblock and wait out the writer, then retire
	// the session.
	ls.out.close()
	_ = conn.Close()
	<-writerDone
	s.reg.remove(ls.id)
	conn.Release()
}

// readLoop consumes input batches for RTT echoing, decoding into one reused
// envelope so a chatty client costs no allocations.
func (s *Server) readLoop(ls *liveSession) {
	var env Envelope
	for {
		if err := ls.conn.RecvInto(&env); err != nil {
			return
		}
		if env.Type == MsgInput {
			ls.inMu.Lock()
			ls.inSeq = env.Input.Seq
			ls.inSentAt = env.Input.SentAtMS
			ls.inMu.Unlock()
		}
	}
}

// writeLoop drains the session's outbound queue to the wire, recycling
// pooled envelopes after each send. It exits after delivering the End
// message, on a send error, or when the queue is closed and drained.
func (s *Server) writeLoop(ls *liveSession) {
	for {
		e, ok := ls.out.pop()
		if !ok {
			return
		}
		err := ls.conn.Send(e)
		isEnd := e.Type == MsgEnd
		putFramesEnv(e)
		if err != nil || isEnd {
			return
		}
		s.framesSent.Add(1)
	}
}

// place runs the distributor for an arriving client and hosts the session.
func (s *Server) place(conn *Conn, spec *gamesim.GameSpec, hello *Hello) (*liveSession, string) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if s.closed {
		return nil, "server shutting down"
	}
	habit := hello.Habit
	if habit == 0 {
		if pool := s.cfg.System.HabitPools()[spec.Name]; len(pool) > 0 {
			habit = pool[int(s.nextID)%len(pool)]
		} else {
			habit = s.nextSeed + 991
		}
	}
	policy := s.cluster.Policy
	for _, srv := range s.cluster.Servers {
		if !policy.Admit(srv, spec, habit) {
			continue
		}
		s.nextSeed++
		sess, err := gamesim.NewPlayerSession(spec, hello.Script, habit, s.nextSeed)
		if err != nil {
			return nil, err.Error()
		}
		ctl, err := policy.NewController(spec, habit)
		if err != nil {
			return nil, err.Error()
		}
		hosted := srv.Add(spec, sess, ctl)
		s.cluster.Placements++
		s.nextID++
		ls := &liveSession{
			id:     s.nextID,
			conn:   conn,
			hosted: hosted,
			proto:  NegotiateProto(hello.Proto, s.cfg.MaxProto),
			out:    newOutQueue(s.cfg.QueueLen),
		}
		s.reg.add(ls)
		// Best-effort: if the accept never lands, the input loop's Recv
		// fails and tears the session down.
		_ = conn.Send(&Envelope{Type: MsgAccept, Accept: &Accept{
			SessionID: ls.id, Server: srv.ID, Game: spec.Name, Proto: ls.proto,
		}})
		return ls, ""
	}
	return nil, "no server can host this game right now"
}

// tickLoop advances the cluster one virtual second per TickEvery and emits
// frame batches to every live session.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.tickOnce()
		}
	}
}

// tickOnce advances the simulation serially, then fans the delivery walk
// out over cfg.Jobs goroutines: snapshot the registry (reused buffer), walk
// it in fixed chunks, emit one pooled frame batch per live session on frame
// boundaries and an End for every finished session.
//
//cocg:hot
func (s *Server) tickOnce() {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if s.closed {
		return
	}
	s.cluster.Tick()
	s.tickBoundary = simclock.IsFrameBoundary(s.cluster.Clock.Now())
	s.tickSnap = s.reg.snapshotInto(s.tickSnap[:0])
	if s.cfg.Jobs <= 1 {
		// Serial fast path: one flat walk, no fan-out closure, zero
		// steady-state allocations per tick.
		s.tickBody(0, 0, len(s.tickSnap))
		return
	}
	parallel.ForChunksOf(s.cfg.Jobs, len(s.tickSnap), tickChunk, s.tickBody)
}

// emitSession delivers one tick's worth of messages to one session: the End
// with final statistics when the game finished, else (on frame boundaries)
// one pooled frame batch, pushed under the queue's backpressure policy.
//
//cocg:hot
func (s *Server) emitSession(ls *liveSession) {
	if ls.ended {
		return
	}
	sess := ls.hosted.Session
	if sess.Done() {
		ls.ended = true
		displaced, _ := ls.out.push(&Envelope{Type: MsgEnd, End: &SessionStat{ //cocg:lint-ignore hotalloc once per session end, not per tick; the per-tick frame batches are pooled
			SessionID:   ls.id,
			DurationSec: int64(sess.Elapsed()),
			AvgFPS:      sess.AvgFPS(),
			FPSRatio:    sess.FPSRatio(),
			Degraded:    sess.DegradedFraction(),
		}})
		// An End entering a full queue evicts the oldest frame batch; that
		// is a drop the counters must see too.
		if displaced != nil && displaced.Type == MsgFrames {
			s.framesDropped.Add(1)
		}
		putFramesEnv(displaced)
		return
	}
	if !s.tickBoundary {
		return // stream one batch per detection frame
	}
	ls.seq++
	loading := sess.Phase() == gamesim.PhaseLoading
	fps := sess.LastFPS()
	ls.inMu.Lock()
	echoSeq, echoAt := ls.inSeq, ls.inSentAt
	ls.inMu.Unlock()
	e := getFramesEnv()
	f := e.Frames
	f.SessionID = ls.id
	f.Seq = ls.seq
	f.FPS = fps
	f.BitrateKbps = s.cfg.Encoder.Encode(fps, ls.hosted.Granted, loading)
	f.Stage = sess.StageType()
	f.Loading = loading
	f.EchoSeq = echoSeq
	f.EchoSentAtMS = echoAt
	f.Frames = s.cfg.Encoder.AppendFrames(f.Frames[:0], fps, f.BitrateKbps)
	displaced, how := ls.out.push(e)
	switch how {
	case pushCoalesced:
		s.framesCoalesced.Add(1)
	case pushDropped:
		s.framesDropped.Add(1)
	}
	putFramesEnv(displaced)
}

// serveSummaryFeed runs one coordinator load/health feed: the first
// MsgSummaryReq negotiates the protocol (exactly like Hello/Accept, the
// request and its reply travel as JSON and everything after switches to the
// negotiated framing), then each further MsgSummaryReq is answered with a
// fresh ClusterSummary. The feed ends when the peer disconnects or the
// server closes.
func (s *Server) serveSummaryFeed(conn *Conn, req *SummaryReq) {
	s.summaryMu.Lock()
	s.summaryConns[conn] = struct{}{}
	s.summaryMu.Unlock()
	defer func() {
		s.summaryMu.Lock()
		delete(s.summaryConns, conn)
		s.summaryMu.Unlock()
		_ = conn.Close()
		conn.Release()
	}()

	proto := NegotiateProto(req.Proto, s.cfg.MaxProto)
	first := s.LoadSummary()
	first.Proto = proto
	if conn.Send(&Envelope{Type: MsgSummary, Summary: &first}) != nil {
		return
	}
	conn.SetProto(proto)
	s.summariesServed.Add(1)

	var env Envelope
	for {
		if err := conn.RecvInto(&env); err != nil || env.Type != MsgSummaryReq {
			return
		}
		sum := s.LoadSummary()
		if conn.Send(&Envelope{Type: MsgSummary, Summary: &sum}) != nil {
			return
		}
		s.summariesServed.Add(1)
	}
}

// LoadSummary snapshots the cluster's load under the cluster lock: the
// per-cluster rollup the coordinator tier routes sessions on. Headroom comes
// from the policy's forecast caches when it implements
// platform.LoadSummarizer (the CoCG distributor's stamped per-server demand
// timelines); policies that additionally implement platform.FleetSummarizer
// (CoCG's incremental accountant) also fill the extended fields — idle
// server count and the per-game predicted-demand breakdown. For policies
// without forward-looking state it falls back to 1 − mean worst-dimension
// utilization.
func (s *Server) LoadSummary() ClusterSummary {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	sum := ClusterSummary{
		Servers:      len(s.cluster.Servers),
		LiveSessions: s.reg.len(),
		Pending:      len(s.cluster.Pending),
		Placements:   s.cluster.Placements,
	}
	var utilSum float64
	for _, srv := range s.cluster.Servers {
		if srv.Draining {
			sum.Draining++
		}
		sum.Completed += len(srv.Records)
		util := srv.Utilization()
		worst := 0.0
		for d := range util {
			if util[d] > worst {
				worst = util[d]
			}
		}
		utilSum += worst
	}
	if n := len(s.cluster.Servers); n > 0 {
		sum.UtilPct = utilSum / float64(n)
	}
	if fs, ok := s.cluster.Policy.(platform.FleetSummarizer); ok {
		if fs.FleetLoadInto(s.cluster.Servers, &s.fleetLoad) {
			fl := &s.fleetLoad
			sum.Headroom = fl.MeanHeadroom
			sum.IdleServers = fl.Idle
			// Games is the summarizer's immutable sorted list (safe to
			// alias); GameDemand is the reused poll buffer the next
			// LoadSummary overwrites, so the escaping summary gets a copy.
			sum.Games = fl.Games
			sum.GameDemand = append([]float64(nil), fl.GameDemand...)
			return sum
		}
	}
	if ls, ok := s.cluster.Policy.(platform.LoadSummarizer); ok {
		if head, ok := ls.ClusterLoad(s.cluster.Servers); ok {
			sum.Headroom = head
			return sum
		}
	}
	sum.Headroom = 1 - sum.UtilPct/100
	if sum.Headroom < 0 {
		sum.Headroom = 0
	}
	return sum
}

// Sessions returns the number of currently connected sessions.
func (s *Server) Sessions() int { return s.reg.len() }

// String describes the server.
func (s *Server) String() string {
	return fmt.Sprintf("streaming server on %s (%d backends, policy %v)",
		s.Addr(), s.cfg.Servers, s.cfg.Policy)
}
