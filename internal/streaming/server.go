package streaming

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
)

// ServerConfig shapes a streaming front end.
type ServerConfig struct {
	// System is the trained CoCG deployment serving the games.
	System *core.System
	// Policy selects the co-location scheme; defaults to CoCG.
	Policy core.PolicyKind
	// Servers is the number of backend game servers; <=0 means 2.
	Servers int
	// TickEvery is the real duration of one virtual second; <=0 means
	// 10 ms (a 100x-speed simulation — tests and demos don't wait).
	TickEvery time.Duration
	// Encoder models the video encoder; the zero value uses defaults.
	Encoder Encoder
	// SessionSeed seeds arriving sessions.
	SessionSeed int64
}

// Server is the cloud end of Fig. 1: it hosts game sessions on a scheduled
// cluster and streams encoded frames to connected clients.
type Server struct {
	cfg     ServerConfig
	cluster *platform.Cluster
	ln      net.Listener

	mu       sync.Mutex
	sessions map[int64]*liveSession
	nextID   int64
	nextSeed int64
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// liveSession ties a hosted game to its client connection.
type liveSession struct {
	id     int64
	conn   *Conn
	hosted *platform.Hosted
	seq    int64

	inMu     sync.Mutex
	inSeq    int64
	inSentAt int64

	out  chan Envelope // frame batches and the final end message
	ends sync.Once
}

// Serve starts a streaming server listening on addr (e.g. "127.0.0.1:0").
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.System == nil {
		return nil, errors.New("streaming: ServerConfig.System is required")
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	if cfg.Encoder == (Encoder{}) {
		cfg.Encoder = DefaultEncoder()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cluster:  cfg.System.NewCluster(cfg.Servers, cfg.Policy),
		ln:       ln,
		sessions: map[int64]*liveSession{},
		nextSeed: cfg.SessionSeed,
		done:     make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and disconnects all clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for _, ls := range s.sessions {
		_ = ls.conn.Close() // best-effort disconnect during teardown
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// acceptLoop admits client connections.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(NewConn(c))
		}()
	}
}

// handle runs one client connection: admission, then the input-reading loop
// (frame delivery happens from the session's out channel).
func (s *Server) handle(conn *Conn) {
	defer func() { _ = conn.Close() }()
	env, err := conn.Recv()
	if err != nil || env.Type != MsgHello {
		return
	}
	hello := env.Hello
	spec, err := gamesim.GameByName(hello.Game)
	if err != nil {
		_ = conn.Send(&Envelope{Type: MsgReject, Reject: &Reject{Reason: err.Error()}})
		return
	}
	if hello.Script < 0 || hello.Script >= len(spec.Scripts) {
		_ = conn.Send(&Envelope{Type: MsgReject, Reject: &Reject{Reason: "no such script"}})
		return
	}
	ls, reason := s.place(conn, spec, hello)
	if ls == nil {
		_ = conn.Send(&Envelope{Type: MsgReject, Reject: &Reject{Reason: reason}})
		return
	}
	// Writer: deliver frame batches until the session ends.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for e := range ls.out {
			e := e
			if conn.Send(&e) != nil {
				return
			}
			if e.Type == MsgEnd {
				return
			}
		}
	}()
	// Reader: consume input batches for RTT echoing.
	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		if env.Type == MsgInput {
			ls.inMu.Lock()
			ls.inSeq = env.Input.Seq
			ls.inSentAt = env.Input.SentAtMS
			ls.inMu.Unlock()
		}
	}
	<-writerDone
	s.mu.Lock()
	delete(s.sessions, ls.id)
	s.mu.Unlock()
}

// place runs the distributor for an arriving client and hosts the session.
func (s *Server) place(conn *Conn, spec *gamesim.GameSpec, hello *Hello) (*liveSession, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "server shutting down"
	}
	habit := hello.Habit
	if habit == 0 {
		if pool := s.cfg.System.HabitPools()[spec.Name]; len(pool) > 0 {
			habit = pool[int(s.nextID)%len(pool)]
		} else {
			habit = s.nextSeed + 991
		}
	}
	policy := s.cluster.Policy
	for _, srv := range s.cluster.Servers {
		if !policy.Admit(srv, spec, habit) {
			continue
		}
		s.nextSeed++
		sess, err := gamesim.NewPlayerSession(spec, hello.Script, habit, s.nextSeed)
		if err != nil {
			return nil, err.Error()
		}
		ctl, err := policy.NewController(spec, habit)
		if err != nil {
			return nil, err.Error()
		}
		hosted := srv.Add(spec, sess, ctl)
		s.cluster.Placements++
		s.nextID++
		ls := &liveSession{
			id:     s.nextID,
			conn:   conn,
			hosted: hosted,
			out:    make(chan Envelope, 64),
		}
		s.sessions[ls.id] = ls
		// Best-effort: if the accept never lands, the input loop's Recv
		// fails and tears the session down.
		_ = conn.Send(&Envelope{Type: MsgAccept, Accept: &Accept{
			SessionID: ls.id, Server: srv.ID, Game: spec.Name,
		}})
		return ls, ""
	}
	return nil, "no server can host this game right now"
}

// tickLoop advances the cluster one virtual second per TickEvery and emits
// frame batches to every live session.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.tickOnce()
		}
	}
}

func (s *Server) tickOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cluster.Tick()
	for _, ls := range s.sessions {
		sess := ls.hosted.Session
		if sess.Done() {
			ls.ends.Do(func() {
				ls.out <- Envelope{Type: MsgEnd, End: &SessionStat{
					SessionID:   ls.id,
					DurationSec: int64(sess.Elapsed()),
					AvgFPS:      sess.AvgFPS(),
					FPSRatio:    sess.FPSRatio(),
					Degraded:    sess.DegradedFraction(),
				}}
				close(ls.out)
			})
			continue
		}
		if !simclock.IsFrameBoundary(s.cluster.Clock.Now()) {
			continue // stream one batch per detection frame
		}
		ls.seq++
		loading := sess.Phase() == gamesim.PhaseLoading
		fps := sess.LastFPS()
		ls.inMu.Lock()
		echoSeq, echoAt := ls.inSeq, ls.inSentAt
		ls.inMu.Unlock()
		batch := Envelope{Type: MsgFrames, Frames: &FrameBatch{
			SessionID:    ls.id,
			Seq:          ls.seq,
			FPS:          fps,
			BitrateKbps:  s.cfg.Encoder.Encode(fps, ls.hosted.Granted, loading),
			Stage:        sess.StageType(),
			Loading:      loading,
			EchoSeq:      echoSeq,
			EchoSentAtMS: echoAt,
		}}
		select {
		case ls.out <- batch:
		default: // client too slow: drop the batch, like a real stream
		}
	}
}

// Sessions returns the number of currently connected sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// String describes the server.
func (s *Server) String() string {
	return fmt.Sprintf("streaming server on %s (%d backends, policy %v)",
		s.Addr(), s.cfg.Servers, s.cfg.Policy)
}
