package streaming

import (
	"cocg/internal/resources"
)

// Encoder models the server-side video encoder of the GA pipeline: the
// output bitrate scales with the achieved frame rate and with scene motion
// (a busy battle costs more bits than a loading screen), capped by the
// configured ceiling — the knobs a real cloud-gaming encoder exposes.
type Encoder struct {
	// BaseKbps is the bitrate of a 60 FPS medium-motion scene.
	BaseKbps float64
	// MaxKbps caps the output (network budget).
	MaxKbps float64
	// MinKbps is the floor for any non-black frame output.
	MinKbps float64
}

// DefaultEncoder returns settings typical of a 1080p60 cloud-game stream.
func DefaultEncoder() Encoder {
	return Encoder{BaseKbps: 8000, MaxKbps: 20000, MinKbps: 300}
}

// Encode returns the bitrate for one second of video at the given achieved
// FPS and scene demand. Loading screens are near-static and compress to
// almost nothing — the delivery-side reason loading stages are cheap.
func (e Encoder) Encode(fps float64, demand resources.Vector, loading bool) float64 {
	if fps <= 0 {
		return e.MinKbps
	}
	if loading {
		// A static loading screen: intra refreshes only.
		return clamp(e.MinKbps*2, e.MinKbps, e.MaxKbps)
	}
	// Motion scales with GPU load: a 90 % GPU battle scene moves a lot.
	motion := 0.5 + demand[resources.GPU]/100
	rate := e.BaseKbps * (fps / 60) * motion
	return clamp(rate, e.MinKbps, e.MaxKbps)
}

// AppendFrames appends the per-frame records for one encoded second — one
// FrameInfo per delivered frame, sizes summing to the second's bitrate, the
// first frame an intra (key) frame carrying keyframeWeight deltas' worth of
// bits — and returns the extended slice. The tick pipeline calls it with the
// pooled batch's reused backing array, so steady-state encoding allocates
// nothing. The split is pure integer math on (fps, kbps): deterministic for
// a deterministic simulation.
func (e Encoder) AppendFrames(dst []FrameInfo, fps, kbps float64) []FrameInfo {
	n := int(fps + 0.5)
	if n < 1 {
		n = 1
	}
	if n > 240 {
		n = 240
	}
	totalBytes := int64(kbps * 1000 / 8)
	if totalBytes < int64(n) {
		totalBytes = int64(n) // at least one byte per frame
	}
	// One keyframe weighing keyframeWeight delta frames, n-1 deltas.
	delta := totalBytes / int64(n-1+keyframeWeight)
	key := totalBytes - delta*int64(n-1)
	dst = append(dst, FrameInfo{SizeBytes: uint32(key), Key: true})
	for i := 1; i < n; i++ {
		dst = append(dst, FrameInfo{SizeBytes: uint32(delta)})
	}
	return dst
}

// keyframeWeight is how many delta frames one keyframe costs.
const keyframeWeight = 4

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
