package streaming

import (
	"sync"
	"testing"
)

func framesEnvSeq(seq int64) *Envelope {
	return &Envelope{Type: MsgFrames, Frames: &FrameBatch{Seq: seq}}
}

func TestOutQueueFIFO(t *testing.T) {
	q := newOutQueue(4)
	for i := int64(1); i <= 3; i++ {
		if displaced, how := q.push(framesEnvSeq(i)); displaced != nil || how != pushOK {
			t.Fatalf("push %d: displaced=%v how=%d", i, displaced, how)
		}
	}
	for i := int64(1); i <= 3; i++ {
		e, ok := q.tryPop()
		if !ok || e.Frames.Seq != i {
			t.Fatalf("pop %d: %+v ok=%v", i, e, ok)
		}
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestOutQueueCoalescesNewestFrames pins the first backpressure stage: a
// full queue whose newest entry is a frame batch swaps it for the incoming
// one, keeping queue depth and the oldest (least stale) entries intact.
func TestOutQueueCoalescesNewestFrames(t *testing.T) {
	q := newOutQueue(2)
	q.push(framesEnvSeq(1))
	q.push(framesEnvSeq(2))
	displaced, how := q.push(framesEnvSeq(3))
	if how != pushCoalesced || displaced == nil || displaced.Frames.Seq != 2 {
		t.Fatalf("coalesce: displaced=%+v how=%d", displaced, how)
	}
	if e, _ := q.tryPop(); e.Frames.Seq != 1 {
		t.Fatalf("oldest = %d", e.Frames.Seq)
	}
	if e, _ := q.tryPop(); e.Frames.Seq != 3 {
		t.Fatalf("newest = %d", e.Frames.Seq)
	}
}

// TestOutQueueEndEvictsOldestFrame pins the second stage: an End always
// lands, evicting the oldest frame batch, and is never itself displaced.
func TestOutQueueEndEvictsOldestFrame(t *testing.T) {
	q := newOutQueue(2)
	q.push(framesEnvSeq(1))
	q.push(framesEnvSeq(2))
	end := &Envelope{Type: MsgEnd, End: &SessionStat{SessionID: 5}}
	displaced, how := q.push(end)
	if how != pushDropped || displaced == nil || displaced.Frames.Seq != 1 {
		t.Fatalf("end push: displaced=%+v how=%d", displaced, how)
	}
	if e, _ := q.tryPop(); e.Frames.Seq != 2 {
		t.Fatalf("surviving frame = %+v", e)
	}
	if e, _ := q.tryPop(); e.Type != MsgEnd {
		t.Fatalf("end lost: %+v", e)
	}
	// A frame batch arriving after the End coalesces with nothing (newest
	// is the End) and evicts nothing (no frames queued): it is refused.
	q2 := newOutQueue(1)
	q2.push(&Envelope{Type: MsgEnd, End: &SessionStat{}})
	displaced, how = q2.push(framesEnvSeq(9))
	if how != pushDropped || displaced == nil || displaced.Type != MsgFrames {
		t.Fatalf("frame after end: displaced=%+v how=%d", displaced, how)
	}
	if e, _ := q2.tryPop(); e.Type != MsgEnd {
		t.Fatalf("end displaced by late frame: %+v", e)
	}
}

func TestOutQueueCloseUnblocksAndDrains(t *testing.T) {
	q := newOutQueue(4)
	q.push(framesEnvSeq(1))
	q.close()
	if e, ok := q.pop(); !ok || e.Frames.Seq != 1 {
		t.Fatalf("queued message lost at close: %+v ok=%v", e, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("closed empty queue still popping")
	}
	if displaced, how := q.push(framesEnvSeq(2)); how != pushClosed || displaced == nil {
		t.Fatalf("push after close: how=%d", how)
	}
	// A consumer blocked in pop must wake on close.
	q2 := newOutQueue(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := q2.pop(); ok {
			t.Error("blocked pop returned a message from an empty queue")
		}
	}()
	q2.close()
	wg.Wait()
}

func TestRegistryAddRemoveSnapshot(t *testing.T) {
	var r registry
	sessions := make([]*liveSession, 100)
	for i := range sessions {
		sessions[i] = &liveSession{id: int64(i + 1)}
		r.add(sessions[i])
	}
	if r.len() != 100 {
		t.Fatalf("len = %d", r.len())
	}
	snap := r.snapshotInto(nil)
	if len(snap) != 100 {
		t.Fatalf("snapshot has %d sessions", len(snap))
	}
	seen := map[int64]bool{}
	for _, ls := range snap {
		if seen[ls.id] {
			t.Fatalf("session %d visited twice", ls.id)
		}
		seen[ls.id] = true
	}
	// Remove odd IDs (exercises swap-delete in every shard) and re-walk.
	for id := int64(1); id <= 100; id += 2 {
		r.remove(id)
	}
	r.remove(999) // unknown: no-op
	if r.len() != 50 {
		t.Fatalf("len after removal = %d", r.len())
	}
	snap = r.snapshotInto(snap[:0])
	if len(snap) != 50 {
		t.Fatalf("snapshot after removal has %d", len(snap))
	}
	for _, ls := range snap {
		if ls.id%2 != 0 {
			t.Fatalf("removed session %d still walked", ls.id)
		}
	}
}

func TestRegistryConcurrentChurn(t *testing.T) {
	var r registry
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := int64(g*1000 + i)
				r.add(&liveSession{id: id})
				if i%3 == 0 {
					r.remove(id)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]*liveSession, 0, 4096)
		for i := 0; i < 200; i++ {
			buf = r.snapshotInto(buf[:0])
		}
	}()
	wg.Wait()
	<-done
	want := 8 * (500 - 167) // 167 removals per goroutine (i%3==0 over 0..499)
	if r.len() != want {
		t.Fatalf("len = %d, want %d", r.len(), want)
	}
}
