package streaming

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t)
	// Play one quick session so the counters move.
	if _, err := Play(s.Addr(), ClientConfig{Game: "Contra", Script: 0}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.MetricsHandler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"cocg_live_sessions",
		"cocg_placements_total 1",
		"cocg_completed_sessions_total 1",
		"cocg_server_hosted{server=\"0\"}",
		"cocg_server_utilization{server=\"1\",dim=\"gpu\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Placements int `json:"placements"`
		Completed  int `json:"completed"`
		Servers    []struct {
			ID int `json:"id"`
		} `json:"servers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Placements != 1 || snap.Completed != 1 || len(snap.Servers) != 2 {
		t.Errorf("status = %+v", snap)
	}
}

func TestMetricsWhileSessionLive(t *testing.T) {
	s := startServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Play(s.Addr(), ClientConfig{Game: "Genshin Impact", Script: 0, Timeout: time.Minute})
	}()
	// Wait for the session to appear, then scrape.
	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Sessions() == 0 {
		t.Fatal("session never appeared")
	}
	ts := httptest.NewServer(s.MetricsHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "cocg_live_sessions 1") {
		t.Errorf("live session not reported:\n%s", body)
	}
	<-done
}
