// Package streaming is the GamingAnywhere-style delivery substrate of the
// paper's Fig. 1 workflow: the server runs game sessions, encodes their
// rendered frames, and streams them to clients over TCP; clients send input
// events back. The co-location scheduler decides what runs where; this
// package carries the player-facing loop around it.
//
// Two wire framings are spoken over the same connection: newline-delimited
// JSON (small, debuggable, entirely stdlib — every connection starts here)
// and a length-prefixed binary codec negotiated in the Hello/Accept
// handshake (see wire.go), which the high-throughput tick pipeline uses to
// stream frame batches without per-message allocation.
package streaming

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// MsgType discriminates wire messages.
type MsgType string

// Wire message types.
const (
	// MsgHello is the client's opening request: which game to play.
	MsgHello MsgType = "hello"
	// MsgAccept is the server's admission answer.
	MsgAccept MsgType = "accept"
	// MsgReject tells the client no server can host it right now.
	MsgReject MsgType = "reject"
	// MsgInput carries one batch of player input events (client -> server).
	MsgInput MsgType = "input"
	// MsgFrames carries one interval's encoded frame batch (server -> client).
	MsgFrames MsgType = "frames"
	// MsgEnd closes a session with its final statistics.
	MsgEnd MsgType = "end"
	// MsgSummaryReq asks the server for a cluster load summary. It opens (and
	// then paces) a coordinator's health/load feed; a connection whose first
	// message is a MsgSummaryReq never hosts a game session.
	MsgSummaryReq MsgType = "summary_req"
	// MsgSummary answers a MsgSummaryReq with the cluster's load summary.
	MsgSummary MsgType = "summary"
)

// Envelope is the single wire frame; exactly one payload field is set,
// matching Type.
type Envelope struct {
	Type       MsgType         `json:"type"`
	Hello      *Hello          `json:"hello,omitempty"`
	Accept     *Accept         `json:"accept,omitempty"`
	Reject     *Reject         `json:"reject,omitempty"`
	Input      *InputBatch     `json:"input,omitempty"`
	Frames     *FrameBatch     `json:"frames,omitempty"`
	End        *SessionStat    `json:"end,omitempty"`
	SummaryReq *SummaryReq     `json:"summary_req,omitempty"`
	Summary    *ClusterSummary `json:"summary,omitempty"`
}

// Hello opens a session. It is always sent in the JSON framing.
type Hello struct {
	Game   string `json:"game"`
	Script int    `json:"script"`
	// Habit identifies a returning player; 0 lets the server assign one.
	Habit int64 `json:"habit,omitempty"`
	// Proto is the highest wire protocol version the client speaks;
	// 0 (an old client that predates negotiation) means ProtoJSON.
	Proto int `json:"proto,omitempty"`
}

// Accept confirms placement. It is always sent in the JSON framing; both
// sides switch to the negotiated Proto for everything after it.
type Accept struct {
	SessionID int64  `json:"session_id"`
	Server    int    `json:"server"`
	Game      string `json:"game"`
	// Proto is the wire protocol version the server chose for the rest of
	// the session; 0 (an old server) means ProtoJSON.
	Proto int `json:"proto,omitempty"`
	// Cluster names the region/zone that hosts the session. A cocg-server
	// leaves it empty; the coordinator stamps it while relaying the Accept so
	// clients (and the load generator's routing report) can see where they
	// landed.
	Cluster string `json:"cluster,omitempty"`
}

// Reject declines a Hello.
type Reject struct {
	Reason string `json:"reason"`
}

// InputBatch is a second's worth of player inputs.
type InputBatch struct {
	SessionID int64 `json:"session_id"`
	Seq       int64 `json:"seq"`
	Events    int   `json:"events"`
	SentAtMS  int64 `json:"sent_at_ms"`
	// Codes carries one opaque code per event (key/button identifiers).
	// Clients reuse the backing array across batches.
	Codes []byte `json:"codes,omitempty"`
}

// FrameInfo describes one encoded video frame inside a batch.
type FrameInfo struct {
	// SizeBytes is the encoded size of this frame.
	SizeBytes uint32 `json:"size_bytes"`
	// Key marks an intra (key) frame.
	Key bool `json:"key,omitempty"`
}

// FrameBatch is one virtual second of encoded video.
type FrameBatch struct {
	SessionID int64 `json:"session_id"`
	Seq       int64 `json:"seq"`
	// FPS is the frame rate achieved this second.
	FPS float64 `json:"fps"`
	// BitrateKbps is the encoder's output rate this second.
	BitrateKbps float64 `json:"bitrate_kbps"`
	// Stage is the detected stage ID (telemetry for the client HUD).
	Stage int `json:"stage"`
	// Loading reports whether the game is in a loading screen.
	Loading bool `json:"loading"`
	// EchoSeq acknowledges the latest input batch, for RTT estimation.
	EchoSeq int64 `json:"echo_seq"`
	// EchoSentAtMS echoes that input's send timestamp.
	EchoSentAtMS int64 `json:"echo_sent_at_ms"`
	// Frames lists the per-frame encoder output for this second. The tick
	// pipeline reuses the backing array across batches (see Envelope
	// pooling in server.go), so receivers must not retain it.
	Frames []FrameInfo `json:"frames,omitempty"`
}

// SessionStat closes a session.
type SessionStat struct {
	SessionID   int64   `json:"session_id"`
	DurationSec int64   `json:"duration_sec"`
	AvgFPS      float64 `json:"avg_fps"`
	FPSRatio    float64 `json:"fps_ratio"`
	Degraded    float64 `json:"degraded"`
}

// SummaryReq opens or paces a cluster-summary feed (coordinator -> cluster).
// Like Hello, the first SummaryReq of a connection is always sent in the JSON
// framing and negotiates the protocol for the rest of the feed.
type SummaryReq struct {
	// Proto is the highest wire protocol version the requester speaks;
	// 0 means ProtoJSON (see Hello.Proto).
	Proto int `json:"proto,omitempty"`
}

// ClusterSummary is one cluster's load summary (cluster -> coordinator): the
// per-cluster rollup the coordinator tier routes on. Headroom is the
// scheduler's forecast-backed estimate when the policy implements
// platform.LoadSummarizer (CoCG sums its cached per-server demand timelines),
// else the instantaneous utilization fallback.
type ClusterSummary struct {
	// Proto is the wire protocol version the server chose for the feed; set
	// only on the first reply (the negotiation point), 0 afterwards.
	Proto int `json:"proto,omitempty"`
	// Servers is the backend server count; Draining of them are out of
	// placement rotation.
	Servers  int `json:"servers"`
	Draining int `json:"draining,omitempty"`
	// LiveSessions counts connected streaming sessions; Pending counts
	// arrivals waiting for a server; Placements and Completed are monotonic.
	LiveSessions int `json:"live_sessions"`
	Pending      int `json:"pending"`
	Placements   int `json:"placements"`
	Completed    int `json:"completed"`
	// Headroom is the predicted free fraction of fleet capacity over the
	// scheduler's forecast horizon, in [0,1] (1 = idle).
	Headroom float64 `json:"headroom"`
	// UtilPct is the current mean of per-server worst-dimension utilization,
	// in percent — the reactive complement to the forecast-backed Headroom.
	UtilPct float64 `json:"util_pct"`
	// IdleServers counts non-draining servers hosting zero sessions — the
	// pool an autoscaler can drain without migrating anything. Carried on
	// the wire from version ProtoBinary3 (JSON always carries it).
	IdleServers int `json:"idle_servers,omitempty"`
	// Games and GameDemand break predicted demand out per game: GameDemand[i]
	// is the fleet's predicted demand for Games[i] over the forecast horizon,
	// in units of one server's capacity. Populated when the policy implements
	// platform.FleetSummarizer; carried on the wire from ProtoBinary3.
	Games      []string  `json:"games,omitempty"`
	GameDemand []float64 `json:"game_demand,omitempty"`
}

// wirebufPool recycles the per-connection binary codec buffers across
// sessions, so a server admitting thousands of short sessions per second
// does not allocate fresh framing buffers for each.
var wirebufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// Conn wraps a TCP connection with protocol framing. It is safe for one
// concurrent reader and one concurrent writer (the protocol is full-duplex);
// SetProto may only be called at the negotiation point, before the other
// side of the pipe is driven concurrently.
type Conn struct {
	c     net.Conn
	r     *bufio.Reader
	enc   *json.Encoder
	proto int

	rhdr [4]byte
	rbuf []byte // binary frame read buffer, reused across Recv calls
	wbuf []byte // binary frame write buffer, reused across Send calls
}

// NewConn frames an established connection; it starts in ProtoJSON.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), enc: json.NewEncoder(c), proto: ProtoJSON}
}

// Proto returns the framing currently in effect.
func (c *Conn) Proto() int { return c.proto }

// SetProto switches the connection to the negotiated framing. The caller
// must guarantee no Send or Recv is in flight — in the protocol this is the
// instant after the Accept is sent (server) or received (client).
func (c *Conn) SetProto(p int) {
	if p == c.proto {
		return
	}
	c.proto = p
	if p >= ProtoBinary {
		if c.wbuf == nil {
			c.wbuf = wirebufPool.Get().([]byte)[:0] //cocg:lint-ignore poolcheck connection-lifetime borrow; Conn.Release returns both buffers to the pool
		}
		if c.rbuf == nil {
			c.rbuf = wirebufPool.Get().([]byte)[:0] //cocg:lint-ignore poolcheck connection-lifetime borrow; Conn.Release returns both buffers to the pool
		}
	}
}

// Send writes one envelope in the connection's current framing.
func (c *Conn) Send(e *Envelope) error {
	if c.proto < ProtoBinary {
		return c.enc.Encode(e)
	}
	buf, err := e.AppendToProto(c.wbuf[:0], c.proto)
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	_, err = c.c.Write(buf)
	return err
}

// Recv reads the next envelope into fresh storage.
func (c *Conn) Recv() (*Envelope, error) {
	var e Envelope
	if err := c.RecvInto(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

// RecvInto reads the next envelope into e, reusing any payload structs (and
// their slice backing arrays) already attached to it — the allocation-free
// receive path for clients and load generators that process one message at a
// time. Payloads of non-matching types are detached, and e is left untouched
// on error.
func (c *Conn) RecvInto(e *Envelope) error {
	if c.proto < ProtoBinary {
		line, err := c.r.ReadBytes('\n')
		if err != nil {
			return err
		}
		var fresh Envelope
		if err := json.Unmarshal(line, &fresh); err != nil {
			return fmt.Errorf("streaming: bad frame: %w", err)
		}
		if err := fresh.validate(); err != nil {
			return err
		}
		*e = fresh
		return nil
	}
	if _, err := io.ReadFull(c.r, c.rhdr[:]); err != nil {
		return err
	}
	n := int(uint32(c.rhdr[0]) | uint32(c.rhdr[1])<<8 | uint32(c.rhdr[2])<<16 | uint32(c.rhdr[3])<<24)
	if n <= 0 || n > maxWireFrame {
		return fmt.Errorf("streaming: bad binary frame length %d", n)
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	body := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, body); err != nil {
		return err
	}
	return e.DecodeFromProto(body, c.proto)
}

// Close closes the underlying connection. It is safe to call while a reader
// or writer is blocked (the server uses this to force teardown), so it does
// not recycle codec buffers — Release does, from the owning goroutine.
func (c *Conn) Close() error { return c.c.Close() }

// RelayTo copies raw bytes from this connection to dst until EOF or error,
// starting with anything this side's reader has already buffered. After a
// handshake is relayed message-by-message, two RelayTo calls (one per
// direction) turn a proxy into a framing-agnostic byte pipe — the negotiated
// session codec, JSON or binary, passes through untouched. It returns the
// bytes copied and the first error (io.EOF is reported as nil, as io.Copy
// does).
func (c *Conn) RelayTo(dst *Conn) (int64, error) {
	return io.Copy(dst.c, c.r)
}

// Release returns the connection's codec buffers to the shared pool. Only
// the goroutine that owns both directions may call it, after the last Send
// and Recv have returned; the Conn must not be used afterwards.
func (c *Conn) Release() {
	if c.wbuf != nil {
		wirebufPool.Put(c.wbuf[:0])
		c.wbuf = nil
	}
	if c.rbuf != nil {
		wirebufPool.Put(c.rbuf[:0])
		c.rbuf = nil
	}
}

// validate checks that the payload matches the declared type.
func (e *Envelope) validate() error {
	var ok bool
	switch e.Type {
	case MsgHello:
		ok = e.Hello != nil
	case MsgAccept:
		ok = e.Accept != nil
	case MsgReject:
		ok = e.Reject != nil
	case MsgInput:
		ok = e.Input != nil
	case MsgFrames:
		ok = e.Frames != nil
	case MsgEnd:
		ok = e.End != nil
	case MsgSummaryReq:
		ok = e.SummaryReq != nil
	case MsgSummary:
		ok = e.Summary != nil
	default:
		return fmt.Errorf("streaming: unknown message type %q", e.Type)
	}
	if !ok {
		return fmt.Errorf("streaming: message type %q without payload", e.Type)
	}
	return nil
}
