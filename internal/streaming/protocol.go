// Package streaming is the GamingAnywhere-style delivery substrate of the
// paper's Fig. 1 workflow: the server runs game sessions, encodes their
// rendered frames, and streams them to clients over TCP; clients send input
// events back. The co-location scheduler decides what runs where; this
// package carries the player-facing loop around it.
//
// The wire protocol is newline-delimited JSON — small, debuggable, and
// entirely stdlib.
package streaming

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// MsgType discriminates wire messages.
type MsgType string

// Wire message types.
const (
	// MsgHello is the client's opening request: which game to play.
	MsgHello MsgType = "hello"
	// MsgAccept is the server's admission answer.
	MsgAccept MsgType = "accept"
	// MsgReject tells the client no server can host it right now.
	MsgReject MsgType = "reject"
	// MsgInput carries one batch of player input events (client -> server).
	MsgInput MsgType = "input"
	// MsgFrames carries one interval's encoded frame batch (server -> client).
	MsgFrames MsgType = "frames"
	// MsgEnd closes a session with its final statistics.
	MsgEnd MsgType = "end"
)

// Envelope is the single wire frame; exactly one payload field is set,
// matching Type.
type Envelope struct {
	Type   MsgType      `json:"type"`
	Hello  *Hello       `json:"hello,omitempty"`
	Accept *Accept      `json:"accept,omitempty"`
	Reject *Reject      `json:"reject,omitempty"`
	Input  *InputBatch  `json:"input,omitempty"`
	Frames *FrameBatch  `json:"frames,omitempty"`
	End    *SessionStat `json:"end,omitempty"`
}

// Hello opens a session.
type Hello struct {
	Game   string `json:"game"`
	Script int    `json:"script"`
	// Habit identifies a returning player; 0 lets the server assign one.
	Habit int64 `json:"habit,omitempty"`
}

// Accept confirms placement.
type Accept struct {
	SessionID int64  `json:"session_id"`
	Server    int    `json:"server"`
	Game      string `json:"game"`
}

// Reject declines a Hello.
type Reject struct {
	Reason string `json:"reason"`
}

// InputBatch is a second's worth of player inputs.
type InputBatch struct {
	SessionID int64 `json:"session_id"`
	Seq       int64 `json:"seq"`
	Events    int   `json:"events"`
	SentAtMS  int64 `json:"sent_at_ms"`
}

// FrameBatch is one virtual second of encoded video.
type FrameBatch struct {
	SessionID int64 `json:"session_id"`
	Seq       int64 `json:"seq"`
	// FPS is the frame rate achieved this second.
	FPS float64 `json:"fps"`
	// BitrateKbps is the encoder's output rate this second.
	BitrateKbps float64 `json:"bitrate_kbps"`
	// Stage is the detected stage ID (telemetry for the client HUD).
	Stage int `json:"stage"`
	// Loading reports whether the game is in a loading screen.
	Loading bool `json:"loading"`
	// EchoSeq acknowledges the latest input batch, for RTT estimation.
	EchoSeq int64 `json:"echo_seq"`
	// EchoSentAtMS echoes that input's send timestamp.
	EchoSentAtMS int64 `json:"echo_sent_at_ms"`
}

// SessionStat closes a session.
type SessionStat struct {
	SessionID   int64   `json:"session_id"`
	DurationSec int64   `json:"duration_sec"`
	AvgFPS      float64 `json:"avg_fps"`
	FPSRatio    float64 `json:"fps_ratio"`
	Degraded    float64 `json:"degraded"`
}

// Conn wraps a TCP connection with JSON-lines framing. It is safe for one
// concurrent reader and one concurrent writer (the protocol is full-duplex).
type Conn struct {
	c   net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

// NewConn frames an established connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), enc: json.NewEncoder(c)}
}

// Send writes one envelope.
func (c *Conn) Send(e *Envelope) error { return c.enc.Encode(e) }

// Recv reads the next envelope.
func (c *Conn) Recv() (*Envelope, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var e Envelope
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, fmt.Errorf("streaming: bad frame: %w", err)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// validate checks that the payload matches the declared type.
func (e *Envelope) validate() error {
	var ok bool
	switch e.Type {
	case MsgHello:
		ok = e.Hello != nil
	case MsgAccept:
		ok = e.Accept != nil
	case MsgReject:
		ok = e.Reject != nil
	case MsgInput:
		ok = e.Input != nil
	case MsgFrames:
		ok = e.Frames != nil
	case MsgEnd:
		ok = e.End != nil
	default:
		return fmt.Errorf("streaming: unknown message type %q", e.Type)
	}
	if !ok {
		return fmt.Errorf("streaming: message type %q without payload", e.Type)
	}
	return nil
}
