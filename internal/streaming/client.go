package streaming

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cocg/internal/netmodel"
)

// ErrRejected is returned when the server declines the session.
var ErrRejected = errors.New("streaming: session rejected")

// ClientStats summarizes what a client experienced.
type ClientStats struct {
	Game        string
	SessionID   int64
	Cluster     string  // region/zone that hosted the session (set when played through a coordinator)
	Proto       int     // negotiated wire protocol version
	Frames      int     // frame batches received
	SeqGaps     int     // batches the server dropped or coalesced under backpressure
	LoadingSec  int     // seconds spent on loading screens
	MeanFPS     float64 // mean of received per-second frame rates
	MeanBitrate float64 // kbps
	MeanRTTMS   float64 // input-to-echo round trip
	// Net summarizes the simulated last-mile delivery when a Link was
	// configured.
	Net   netmodel.Stats
	Final SessionStat
}

// ClientConfig shapes a playing client.
type ClientConfig struct {
	Game   string
	Script int
	Habit  int64
	// InputEvery sends one input batch per this many received frame
	// batches; <=0 means 2.
	InputEvery int
	// Timeout bounds the whole session; <=0 means 2 minutes.
	Timeout time.Duration
	// Link, when set, simulates the player's last-mile network: every
	// frame batch is "transmitted" through it and delivery stats are
	// reported in ClientStats.Net (the operator-managed connection of
	// Fig. 1).
	Link *netmodel.Link
	// MaxProto caps the wire protocol the client offers in its Hello;
	// 0 means the newest version, ProtoJSON emulates a legacy client.
	MaxProto int
	// OnFrames, when set, observes every received frame batch before it is
	// folded into the statistics — the load generator's timing hook. The
	// batch is only valid for the duration of the call (its storage is
	// reused for the next receive).
	OnFrames func(f *FrameBatch)
}

// Play connects to a streaming server, plays one full session, and returns
// the client-side statistics — the measurement point of the player
// experience in Fig. 1. The handshake always runs over JSON; the session
// body uses whatever protocol version the server negotiated, received into
// one reused envelope so the per-batch client cost is allocation-free.
func Play(addr string, cfg ClientConfig) (*ClientStats, error) {
	if cfg.InputEvery <= 0 {
		cfg.InputEvery = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.MaxProto <= 0 {
		cfg.MaxProto = maxKnownProto
	}
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(cfg.Timeout)); err != nil {
		_ = nc.Close()
		return nil, err
	}
	conn := NewConn(nc)
	defer func() { _ = conn.Close() }() // teardown; session errors surface first

	if err := conn.Send(&Envelope{Type: MsgHello, Hello: &Hello{
		Game: cfg.Game, Script: cfg.Script, Habit: cfg.Habit, Proto: cfg.MaxProto,
	}}); err != nil {
		return nil, err
	}
	env, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	switch env.Type {
	case MsgAccept:
	case MsgReject:
		return nil, fmt.Errorf("%w: %s", ErrRejected, env.Reject.Reason)
	default:
		return nil, fmt.Errorf("streaming: unexpected reply %q", env.Type)
	}
	proto := NegotiateProto(cfg.MaxProto, env.Accept.Proto)
	conn.SetProto(proto)

	stats := &ClientStats{Game: cfg.Game, SessionID: env.Accept.SessionID, Cluster: env.Accept.Cluster, Proto: proto}
	var fpsSum, brSum, rttSum float64
	var rttN int
	var inputSeq, lastSeq int64
	var recv Envelope                               // reused across every receive
	input := InputBatch{Codes: make([]byte, 0, 32)} // reused input batch
	inputEnv := Envelope{Type: MsgInput, Input: &input}
	for {
		if err := conn.RecvInto(&recv); err != nil {
			return nil, err
		}
		switch recv.Type {
		case MsgFrames:
			f := recv.Frames
			if cfg.OnFrames != nil {
				cfg.OnFrames(f)
			}
			stats.Frames++
			if lastSeq > 0 && f.Seq > lastSeq+1 {
				stats.SeqGaps += int(f.Seq - lastSeq - 1)
			}
			lastSeq = f.Seq
			fpsSum += f.FPS
			brSum += f.BitrateKbps
			if cfg.Link != nil {
				stats.Net.Observe(cfg.Link.Send(f.BitrateKbps))
			}
			if f.Loading {
				stats.LoadingSec += 5
			}
			if f.EchoSeq == inputSeq && f.EchoSentAtMS > 0 {
				rttSum += float64(time.Now().UnixMilli() - f.EchoSentAtMS)
				rttN++
			}
			if stats.Frames%cfg.InputEvery == 0 {
				inputSeq++
				input.SessionID = stats.SessionID
				input.Seq = inputSeq
				input.Events = 30
				input.SentAtMS = time.Now().UnixMilli()
				input.Codes = appendInputCodes(input.Codes[:0], inputSeq, input.Events)
				if err := conn.Send(&inputEnv); err != nil {
					return nil, err
				}
			}
		case MsgEnd:
			stats.Final = *recv.End
			if stats.Frames > 0 {
				stats.MeanFPS = fpsSum / float64(stats.Frames)
				stats.MeanBitrate = brSum / float64(stats.Frames)
			}
			if rttN > 0 {
				stats.MeanRTTMS = rttSum / float64(rttN)
			}
			conn.Release()
			return stats, nil
		default:
			return nil, fmt.Errorf("streaming: unexpected mid-session message %q", recv.Type)
		}
	}
}

// appendInputCodes synthesizes the event codes for one input batch into the
// reused backing array: a deterministic walk of the key space standing in
// for real controller traffic.
func appendInputCodes(dst []byte, seq int64, events int) []byte {
	for i := 0; i < events; i++ {
		dst = append(dst, byte((seq+int64(i)*7)&0x7f))
	}
	return dst
}
