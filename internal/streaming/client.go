package streaming

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cocg/internal/netmodel"
)

// ErrRejected is returned when the server declines the session.
var ErrRejected = errors.New("streaming: session rejected")

// ClientStats summarizes what a client experienced.
type ClientStats struct {
	Game        string
	SessionID   int64
	Frames      int     // frame batches received
	LoadingSec  int     // seconds spent on loading screens
	MeanFPS     float64 // mean of received per-second frame rates
	MeanBitrate float64 // kbps
	MeanRTTMS   float64 // input-to-echo round trip
	// Net summarizes the simulated last-mile delivery when a Link was
	// configured.
	Net   netmodel.Stats
	Final SessionStat
}

// ClientConfig shapes a playing client.
type ClientConfig struct {
	Game   string
	Script int
	Habit  int64
	// InputEvery sends one input batch per this many received frame
	// batches; <=0 means 2.
	InputEvery int
	// Timeout bounds the whole session; <=0 means 2 minutes.
	Timeout time.Duration
	// Link, when set, simulates the player's last-mile network: every
	// frame batch is "transmitted" through it and delivery stats are
	// reported in ClientStats.Net (the operator-managed connection of
	// Fig. 1).
	Link *netmodel.Link
}

// Play connects to a streaming server, plays one full session, and returns
// the client-side statistics — the measurement point of the player
// experience in Fig. 1.
func Play(addr string, cfg ClientConfig) (*ClientStats, error) {
	if cfg.InputEvery <= 0 {
		cfg.InputEvery = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(cfg.Timeout)); err != nil {
		_ = nc.Close()
		return nil, err
	}
	conn := NewConn(nc)
	defer func() { _ = conn.Close() }() // teardown; session errors surface first

	if err := conn.Send(&Envelope{Type: MsgHello, Hello: &Hello{
		Game: cfg.Game, Script: cfg.Script, Habit: cfg.Habit,
	}}); err != nil {
		return nil, err
	}
	env, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	switch env.Type {
	case MsgAccept:
	case MsgReject:
		return nil, fmt.Errorf("%w: %s", ErrRejected, env.Reject.Reason)
	default:
		return nil, fmt.Errorf("streaming: unexpected reply %q", env.Type)
	}

	stats := &ClientStats{Game: cfg.Game, SessionID: env.Accept.SessionID}
	var fpsSum, brSum, rttSum float64
	var rttN int
	var inputSeq int64
	for {
		env, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		switch env.Type {
		case MsgFrames:
			f := env.Frames
			stats.Frames++
			fpsSum += f.FPS
			brSum += f.BitrateKbps
			if cfg.Link != nil {
				stats.Net.Observe(cfg.Link.Send(f.BitrateKbps))
			}
			if f.Loading {
				stats.LoadingSec += 5
			}
			if f.EchoSeq == inputSeq && f.EchoSentAtMS > 0 {
				rttSum += float64(time.Now().UnixMilli() - f.EchoSentAtMS)
				rttN++
			}
			if stats.Frames%cfg.InputEvery == 0 {
				inputSeq++
				if err := conn.Send(&Envelope{Type: MsgInput, Input: &InputBatch{
					SessionID: stats.SessionID,
					Seq:       inputSeq,
					Events:    30,
					SentAtMS:  time.Now().UnixMilli(),
				}}); err != nil {
					return nil, err
				}
			}
		case MsgEnd:
			stats.Final = *env.End
			if stats.Frames > 0 {
				stats.MeanFPS = fpsSum / float64(stats.Frames)
				stats.MeanBitrate = brSum / float64(stats.Frames)
			}
			if rttN > 0 {
				stats.MeanRTTMS = rttSum / float64(rttN)
			}
			return stats, nil
		default:
			return nil, fmt.Errorf("streaming: unexpected mid-session message %q", env.Type)
		}
	}
}
