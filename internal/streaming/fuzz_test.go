package streaming

import (
	"bytes"
	"encoding/json"
	"math"
	"net"
	"reflect"
	"testing"
	"time"
)

// FuzzRecv throws arbitrary bytes at the wire decoder: it must either return
// a validated envelope or an error, never panic or accept a payload-less
// message.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(`{"type":"hello","hello":{"game":"Contra","script":0}}` + "\n"))
	f.Add([]byte(`{"type":"frames","frames":{"session_id":1,"seq":2,"fps":60}}` + "\n"))
	f.Add([]byte(`{"type":"hello"}` + "\n"))
	f.Add([]byte(`{"type":"zzz"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if !bytes.HasSuffix(data, []byte("\n")) {
			data = append(data, '\n')
		}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			a.Write(data)
			a.Close()
		}()
		b.SetReadDeadline(time.Now().Add(time.Second))
		conn := NewConn(b)
		env, err := conn.Recv()
		if err != nil {
			return
		}
		if verr := env.validate(); verr != nil {
			t.Fatalf("Recv returned an invalid envelope: %v", verr)
		}
	})
}

// FuzzEnvelopeRoundTrip checks that any valid envelope survives a
// marshal/unmarshal cycle.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add("Contra", 0, int64(42))
	f.Add("Genshin Impact", 2, int64(-1))
	f.Fuzz(func(t *testing.T, game string, script int, habit int64) {
		in := &Envelope{Type: MsgHello, Hello: &Hello{Game: game, Script: script, Habit: habit}}
		blob, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out Envelope
		if err := json.Unmarshal(blob, &out); err != nil {
			t.Fatal(err)
		}
		if err := out.validate(); err != nil {
			t.Fatal(err)
		}
		if out.Hello.Game != game || out.Hello.Script != script || out.Hello.Habit != habit {
			t.Fatal("round trip changed the hello")
		}
	})
}

// FuzzBinaryRoundTrip checks the binary codec's round-trip property over
// fuzzer-driven envelopes: decode(encode(e)) must reproduce e exactly.
// Floats are derived from the fuzzed integers (finite, non-NaN) so that
// reflect.DeepEqual is a sound equality.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), "Contra", uint(3), false)
	f.Add(int64(-9), int64(1<<40), "", uint(0), true)
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), "Genshin Impact", uint(200), true)
	f.Fuzz(func(t *testing.T, a, b int64, s string, nframes uint, key bool) {
		fb := &FrameBatch{
			SessionID:    a,
			Seq:          b,
			FPS:          float64(a%240) / 4,
			BitrateKbps:  float64(b % 100_000),
			Stage:        int(a % 7),
			Loading:      key,
			EchoSeq:      b / 3,
			EchoSentAtMS: a / 5,
		}
		for i := uint(0); i < nframes%512; i++ {
			fb.Frames = append(fb.Frames, FrameInfo{SizeBytes: uint32(a) + uint32(i), Key: key && i == 0})
		}
		envs := []*Envelope{
			{Type: MsgHello, Hello: &Hello{Game: s, Script: int(a % 100), Habit: b, Proto: int(nframes % 3)}},
			{Type: MsgAccept, Accept: &Accept{SessionID: a, Server: int(b % 1000), Game: s, Proto: int(a % 3)}},
			{Type: MsgReject, Reject: &Reject{Reason: s}},
			{Type: MsgInput, Input: &InputBatch{SessionID: a, Seq: b, Events: int(a % 64), SentAtMS: b, Codes: []byte(s)}},
			{Type: MsgFrames, Frames: fb},
			{Type: MsgEnd, End: &SessionStat{SessionID: a, DurationSec: b, AvgFPS: float64(a % 240), FPSRatio: float64(b%100) / 100, Degraded: float64(a%100) / 100}},
		}
		for _, in := range envs {
			blob, err := in.AppendTo(nil)
			if err != nil {
				t.Fatalf("%s: %v", in.Type, err)
			}
			var out Envelope
			if err := out.DecodeFrom(blob[4:]); err != nil {
				t.Fatalf("%s: decode: %v", in.Type, err)
			}
			// []byte(s) for an empty string and an empty Codes slice compare
			// unequal under DeepEqual (nil vs empty); normalize.
			if in.Input != nil && len(in.Input.Codes) == 0 {
				in.Input.Codes, out.Input.Codes = nil, nil
			}
			if in.Frames != nil && len(in.Frames.Frames) == 0 {
				in.Frames.Frames, out.Frames.Frames = nil, nil
			}
			if !reflect.DeepEqual(in, &out) {
				t.Fatalf("%s: round trip changed the message:\n in: %+v\nout: %+v", in.Type, in, &out)
			}
		}
	})
}

// FuzzBinaryDecode throws arbitrary bytes at the binary decoder: it must
// either produce an envelope that validates or return an error — never
// panic, over-allocate, or hand back a half-decoded message.
func FuzzBinaryDecode(f *testing.F) {
	for _, e := range wireEnvelopes() {
		if blob, err := e.AppendTo(nil); err == nil {
			f.Add(blob[4:])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE, 1, 2, 3})
	f.Add([]byte{tagFrames, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		var e Envelope
		if err := e.DecodeFrom(data); err != nil {
			return
		}
		if verr := e.validate(); verr != nil {
			t.Fatalf("DecodeFrom accepted an invalid envelope: %v", verr)
		}
		// What decoded must re-encode and decode to the same thing.
		blob, err := e.AppendTo(nil)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		var back Envelope
		if err := back.DecodeFrom(blob[4:]); err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
	})
}
