package streaming

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// FuzzRecv throws arbitrary bytes at the wire decoder: it must either return
// a validated envelope or an error, never panic or accept a payload-less
// message.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(`{"type":"hello","hello":{"game":"Contra","script":0}}` + "\n"))
	f.Add([]byte(`{"type":"frames","frames":{"session_id":1,"seq":2,"fps":60}}` + "\n"))
	f.Add([]byte(`{"type":"hello"}` + "\n"))
	f.Add([]byte(`{"type":"zzz"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if !bytes.HasSuffix(data, []byte("\n")) {
			data = append(data, '\n')
		}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			a.Write(data)
			a.Close()
		}()
		b.SetReadDeadline(time.Now().Add(time.Second))
		conn := NewConn(b)
		env, err := conn.Recv()
		if err != nil {
			return
		}
		if verr := env.validate(); verr != nil {
			t.Fatalf("Recv returned an invalid envelope: %v", verr)
		}
	})
}

// FuzzEnvelopeRoundTrip checks that any valid envelope survives a
// marshal/unmarshal cycle.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add("Contra", 0, int64(42))
	f.Add("Genshin Impact", 2, int64(-1))
	f.Fuzz(func(t *testing.T, game string, script int, habit int64) {
		in := &Envelope{Type: MsgHello, Hello: &Hello{Game: game, Script: script, Habit: habit}}
		blob, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out Envelope
		if err := json.Unmarshal(blob, &out); err != nil {
			t.Fatal(err)
		}
		if err := out.validate(); err != nil {
			t.Fatal(err)
		}
		if out.Hello.Game != game || out.Hello.Script != script || out.Hello.Habit != habit {
			t.Fatal("round trip changed the hello")
		}
	})
}
