package streaming

import (
	"fmt"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"cocg/internal/core"
	"cocg/internal/gamesim"
)

// TestSessionSpeaksBinaryByDefault pins the happy-path negotiation: a
// current client against a current server streams the whole session over
// the binary codec and still measures a healthy experience.
func TestSessionSpeaksBinaryByDefault(t *testing.T) {
	s := startServer(t)
	stats, err := Play(s.Addr(), ClientConfig{Game: "Contra", Script: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Proto != ProtoBinary3 {
		t.Fatalf("negotiated proto %d, want newest binary", stats.Proto)
	}
	if stats.Frames == 0 || stats.Final.DurationSec == 0 {
		t.Fatalf("binary session streamed nothing: %+v", stats)
	}
	if got := s.snapshot(); got.SessionsBinary != 1 || got.SessionsJSON != 0 {
		t.Errorf("proto counters: %+v", got)
	}
}

// TestLegacyJSONClientAgainstNewServer is the cross-version test via the
// public client: a client capped at ProtoJSON (the old wire protocol)
// completes a full session against a binary-capable server.
func TestLegacyJSONClientAgainstNewServer(t *testing.T) {
	s := startServer(t)
	stats, err := Play(s.Addr(), ClientConfig{Game: "Contra", Script: 0, MaxProto: ProtoJSON})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Proto != ProtoJSON {
		t.Fatalf("negotiated proto %d, want JSON", stats.Proto)
	}
	if stats.Frames == 0 || stats.Final.FPSRatio < 0.8 {
		t.Fatalf("JSON session degraded: %+v", stats)
	}
	if got := s.snapshot(); got.SessionsJSON != 1 {
		t.Errorf("proto counters: %+v", got)
	}
}

// TestServerPinnedToJSON covers the other negotiation direction: a server
// capped at ProtoJSON forces a binary-capable client down to JSON.
func TestServerPinnedToJSON(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:    testSystem(t),
		Policy:    core.PolicyCoCG,
		TickEvery: time.Millisecond,
		MaxProto:  ProtoJSON,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	stats, err := Play(s.Addr(), ClientConfig{Game: "Contra", Script: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Proto != ProtoJSON {
		t.Fatalf("negotiated proto %d, want JSON", stats.Proto)
	}
}

// TestCloseWithLiveSessionsLeaksNothing is the shutdown audit: closing a
// server mid-session must tear down every accept, reader, writer, and tick
// goroutine and return — the pre-PR5 server deadlocked here, because a
// session writer blocked forever on its delivery channel.
func TestCloseWithLiveSessionsLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:  testSystem(t),
		Policy:  core.PolicyCoCG,
		Servers: 4,
		// The simulation never ticks: every session is provably still live —
		// mid-stream, unfinished — when Close runs.
		TickEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Errors are expected: the server goes away mid-session.
			_, _ = Play(s.Addr(), ClientConfig{Game: "Genshin Impact", Script: i % 3, Timeout: time.Minute})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Sessions() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Sessions() < n {
		t.Fatalf("only %d of %d sessions appeared", s.Sessions(), n)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close() hung with live sessions — goroutine leak")
	}
	wg.Wait()

	// Every server goroutine must be gone; allow slack for runtime/test
	// helpers that come and go.
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}

// sessionOutcomesAtJobs runs a fixed scripted client set against a server
// whose tick loop is driven manually (TickEvery is effectively infinite),
// and returns each client's final session statistics in connect order.
func sessionOutcomesAtJobs(t *testing.T, jobs int) []SessionStat {
	t.Helper()
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:      testSystem(t),
		Policy:      core.PolicyCoCG,
		Servers:     6,         // room for the whole script to be co-hosted at once
		TickEvery:   time.Hour, // the test owns the tick cadence
		SessionSeed: 7,
		Jobs:        jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	script := []struct {
		game   string
		script int
	}{
		{"Contra", 0},
		{"Genshin Impact", 0},
		{"Contra", 1},
		{"Genshin Impact", 2},
		{"Contra", 2},
	}
	finals := make([]SessionStat, len(script))
	errs := make([]error, len(script))
	var wg sync.WaitGroup
	for i, sc := range script {
		wg.Add(1)
		go func(i int, game string, idx int) {
			defer wg.Done()
			stats, err := Play(s.Addr(), ClientConfig{Game: game, Script: idx, Timeout: 2 * time.Minute})
			if err != nil {
				errs[i] = err
				return
			}
			finals[i] = stats.Final
		}(i, sc.game, sc.script)
		// Sequential admission makes placement order — and therefore the
		// whole simulation — a pure function of the script and seed.
		deadline := time.Now().Add(10 * time.Second)
		for s.Sessions() < i+1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if s.Sessions() < i+1 {
			t.Fatalf("session %d never admitted", i)
		}
	}

	// Drive the simulation to completion by hand.
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	for tick := 0; ; tick++ {
		select {
		case <-clientsDone:
		default:
			s.tickOnce()
			if tick%256 == 255 {
				time.Sleep(time.Millisecond) // let deliveries flush
			}
			if tick > 500_000 {
				t.Fatal("sessions never completed")
			}
			continue
		}
		break
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	return finals
}

// TestSessionOutcomesInvariantAcrossJobs is the acceptance gate for the
// parallel tick pipeline: for a fixed seed and scripted client set, every
// session's final statistics are identical whether the delivery walk runs
// serially or fanned out over 8 goroutines.
func TestSessionOutcomesInvariantAcrossJobs(t *testing.T) {
	serial := sessionOutcomesAtJobs(t, 1)
	parallel8 := sessionOutcomesAtJobs(t, 8)
	if !reflect.DeepEqual(serial, parallel8) {
		t.Fatalf("session outcomes depend on Jobs:\n jobs=1: %+v\n jobs=8: %+v", serial, parallel8)
	}
	for i, st := range serial {
		if st.DurationSec == 0 {
			t.Errorf("session %d reported no play time: %+v", i, st)
		}
	}
}

// TestBackpressureCountsAndSeqGaps pins the overload story end to end. A
// real TCP socket would hide it — the kernel buffers the whole (small)
// simulated stream — so the session rides an unbuffered net.Pipe: the writer
// blocks the moment the peer stops reading, the tiny outbound queue fills,
// and the tick walk must resolve the overload through the coalesce/drop
// policy (visible in the counters) while the client sees sequence gaps and a
// clean End, never unbounded buffering.
func TestBackpressureCountsAndSeqGaps(t *testing.T) {
	s, err := Serve("127.0.0.1:0", ServerConfig{
		System:    testSystem(t),
		Policy:    core.PolicyCoCG,
		TickEvery: time.Hour, // the test owns the tick cadence
		QueueLen:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn, peer := NewConn(a), NewConn(b)
	spec, err := gamesim.GameByName("Genshin Impact") // ~200 frame boundaries
	if err != nil {
		t.Fatal(err)
	}

	// Admit the session by hand (place sends the Accept synchronously, so the
	// peer must already be reading) and wire up its writer like handle does.
	acceptRead := make(chan error, 1)
	go func() {
		env, err := peer.Recv()
		if err == nil && env.Type != MsgAccept {
			err = fmt.Errorf("expected accept, got %q", env.Type)
		}
		acceptRead <- err
	}()
	ls, reason := s.place(conn, spec, &Hello{Game: spec.Name, Proto: ProtoBinary})
	if ls == nil {
		t.Fatalf("place rejected: %s", reason)
	}
	if err := <-acceptRead; err != nil {
		t.Fatal(err)
	}
	conn.SetProto(ls.proto)
	peer.SetProto(ls.proto)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(ls)
	}()

	// The peer drains lazily while the server produces frame batches about
	// twenty times faster than the client consumes them.
	var gaps, frames int
	var lastSeq int64
	sawEnd := make(chan struct{})
	go func() {
		defer close(sawEnd)
		var env Envelope
		for {
			if err := peer.RecvInto(&env); err != nil {
				return
			}
			if env.Type == MsgEnd {
				return
			}
			if env.Type == MsgFrames {
				frames++
				if lastSeq != 0 && env.Frames.Seq != lastSeq+1 {
					gaps++
				}
				lastSeq = env.Frames.Seq
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	for i := 0; i < 500_000 && !ls.hosted.Session.Done(); i++ {
		s.tickOnce()
		if i%5 == 4 {
			// One frame boundary per 5 ticks: pace production to roughly a
			// batch per millisecond — still an order of magnitude faster
			// than the peer consumes — so the writer goroutine interleaves
			// with the walk instead of the whole session elapsing between
			// two peer reads.
			time.Sleep(time.Millisecond)
		}
	}
	if !ls.hosted.Session.Done() {
		t.Fatal("session never finished")
	}
	s.tickOnce() // deliver the End
	select {
	case <-sawEnd:
	case <-time.After(10 * time.Second):
		t.Fatal("client never received End")
	}
	<-writerDone

	snap := s.snapshot()
	if snap.FramesCoalesced+snap.FramesDropped == 0 {
		t.Error("overloaded session triggered no backpressure")
	}
	if gaps == 0 {
		t.Errorf("client saw no sequence gaps despite backpressure (%d frames)", frames)
	}
	if frames == 0 {
		t.Error("client received no frames at all")
	}
}
