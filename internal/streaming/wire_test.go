package streaming

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"net"
	"reflect"
	"testing"
	"time"
)

// wireEnvelopes is one of every message type with every field exercised.
func wireEnvelopes() []*Envelope {
	return []*Envelope{
		{Type: MsgHello, Hello: &Hello{Game: "Contra", Script: 2, Habit: -77, Proto: ProtoBinary}},
		{Type: MsgAccept, Accept: &Accept{SessionID: 9, Server: 1, Game: "Genshin Impact", Proto: ProtoBinary, Cluster: "us-east"}},
		{Type: MsgReject, Reject: &Reject{Reason: "no server can host this game right now"}},
		{Type: MsgInput, Input: &InputBatch{SessionID: 9, Seq: 41, Events: 3, SentAtMS: 171234, Codes: []byte{7, 14, 21}}},
		{Type: MsgFrames, Frames: &FrameBatch{
			SessionID: 9, Seq: 5, FPS: 59.5, BitrateKbps: 8123.25, Stage: 3,
			Loading: true, EchoSeq: 40, EchoSentAtMS: 171200,
			Frames: []FrameInfo{{SizeBytes: 40000, Key: true}, {SizeBytes: 10000}, {SizeBytes: 9999}},
		}},
		{Type: MsgEnd, End: &SessionStat{SessionID: 9, DurationSec: 900, AvgFPS: 58.2, FPSRatio: 0.97, Degraded: 0.01}},
		{Type: MsgSummaryReq, SummaryReq: &SummaryReq{Proto: ProtoBinary}},
		{Type: MsgSummary, Summary: &ClusterSummary{
			Proto: ProtoBinary, Servers: 16, Draining: 2, LiveSessions: 41,
			Pending: 3, Placements: 977, Completed: 936, Headroom: 0.375, UtilPct: 61.5,
			IdleServers: 4, Games: []string{"Contra", "Genshin Impact"},
			GameDemand: []float64{0.5, 3.25},
		}},
	}
}

func TestBinaryRoundTripAllTypes(t *testing.T) {
	for _, in := range wireEnvelopes() {
		blob, err := in.AppendTo(nil)
		if err != nil {
			t.Fatalf("%s: %v", in.Type, err)
		}
		n := binary.LittleEndian.Uint32(blob)
		if int(n) != len(blob)-4 {
			t.Fatalf("%s: length prefix %d, body %d", in.Type, n, len(blob)-4)
		}
		var out Envelope
		if err := out.DecodeFrom(blob[4:]); err != nil {
			t.Fatalf("%s: decode: %v", in.Type, err)
		}
		if err := out.validate(); err != nil {
			t.Fatalf("%s: %v", in.Type, err)
		}
		if !reflect.DeepEqual(in, &out) {
			t.Errorf("%s round trip changed the message:\n in: %+v\nout: %+v", in.Type, in, &out)
		}
	}
}

func TestBinaryDecodeReusesStorage(t *testing.T) {
	src := &Envelope{Type: MsgFrames, Frames: &FrameBatch{
		SessionID: 3, Seq: 1, FPS: 60,
		Frames: []FrameInfo{{SizeBytes: 100, Key: true}, {SizeBytes: 50}},
	}}
	blob, err := src.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	reuse := &Envelope{Type: MsgFrames, Frames: &FrameBatch{Frames: make([]FrameInfo, 0, 8)}}
	keepBatch, keepArr := reuse.Frames, reuse.Frames.Frames[:1]
	if err := reuse.DecodeFrom(blob[4:]); err != nil {
		t.Fatal(err)
	}
	if reuse.Frames != keepBatch {
		t.Error("decode allocated a fresh FrameBatch instead of reusing")
	}
	if &reuse.Frames.Frames[0] != &keepArr[0] {
		t.Error("decode allocated a fresh Frames backing array instead of reusing")
	}
	// A reused envelope switching types must drop the stale payload.
	end := &Envelope{Type: MsgEnd, End: &SessionStat{SessionID: 3, DurationSec: 5}}
	blob2, err := end.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reuse.DecodeFrom(blob2[4:]); err != nil {
		t.Fatal(err)
	}
	if reuse.Type != MsgEnd || reuse.Frames != nil || reuse.End == nil {
		t.Errorf("type switch left payloads inconsistent: %+v", reuse)
	}
}

func TestBinaryDecodeRejectsCorruptInput(t *testing.T) {
	good, err := wireEnvelopes()[4].AppendTo(nil) // frames
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:]
	cases := map[string][]byte{
		"empty":           {},
		"unknown tag":     {0xEE, 1, 2, 3},
		"truncated":       body[:len(body)-3],
		"trailing bytes":  append(append([]byte{}, body...), 0, 0),
		"huge count":      {tagFrames, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80},
		"string overrun":  {tagHello, 0xFF, 0x01, 'x'},
		"frames no float": {tagFrames, 2, 2, 1, 2},
	}
	for name, data := range cases {
		var e Envelope
		if err := e.DecodeFrom(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestBinaryAppendToUnknownType(t *testing.T) {
	e := &Envelope{Type: "nope"}
	if _, err := e.AppendTo(nil); err == nil {
		t.Fatal("AppendTo encoded an unknown message type")
	}
}

func TestNegotiateProto(t *testing.T) {
	cases := []struct{ client, server, want int }{
		{0, 0, ProtoJSON},           // two legacy ends
		{0, ProtoBinary, ProtoJSON}, // legacy client, new server
		{ProtoBinary, 0, ProtoJSON}, // new client, legacy server
		{ProtoBinary, ProtoBinary, ProtoBinary},
		{ProtoJSON, ProtoBinary, ProtoJSON}, // client pinned to JSON
		{ProtoBinary, ProtoJSON, ProtoJSON}, // server pinned to JSON
		{99, 99, ProtoBinary3},              // future versions cap at known
		{ProtoBinary3, ProtoBinary3, ProtoBinary3},
		{ProtoBinary, ProtoBinary3, ProtoBinary}, // v2 peer holds the pair at v2
		{-3, ProtoBinary, ProtoJSON},             // nonsense advertises as legacy
	}
	for _, c := range cases {
		if got := NegotiateProto(c.client, c.server); got != c.want {
			t.Errorf("NegotiateProto(%d, %d) = %d, want %d", c.client, c.server, got, c.want)
		}
	}
}

// TestSummaryCrossVersion pins the v2/v3 summary layouts against each other:
// a v2 frame carries no extended fields (and decoding one must clear any
// stale extended fields in a reused payload), a v3 frame round-trips them,
// and a summary whose Games and GameDemand disagree in length refuses to
// encode rather than writing a frame its peer cannot parse.
func TestSummaryCrossVersion(t *testing.T) {
	full := &Envelope{Type: MsgSummary, Summary: &ClusterSummary{
		Servers: 8, LiveSessions: 20, Headroom: 0.5, UtilPct: 40,
		IdleServers: 3, Games: []string{"Contra"}, GameDemand: []float64{1.25},
	}}

	v2, err := full.AppendToProto(nil, ProtoBinary)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := full.AppendToProto(nil, ProtoBinary3)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) >= len(v3) {
		t.Fatalf("v3 frame (%d bytes) should extend the v2 frame (%d bytes)", len(v3), len(v2))
	}

	// v3 round trip keeps the extended fields.
	var out Envelope
	if err := out.DecodeFromProto(v3[4:], ProtoBinary3); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, &out) {
		t.Errorf("v3 round trip changed the summary:\n in: %+v\nout: %+v", full.Summary, out.Summary)
	}

	// Decoding the v2 frame into the same (reused) envelope must clear the
	// extended fields a previous v3 decode left behind.
	if err := out.DecodeFromProto(v2[4:], ProtoBinary); err != nil {
		t.Fatal(err)
	}
	sm := out.Summary
	if sm.IdleServers != 0 || sm.Games != nil || sm.GameDemand != nil {
		t.Errorf("v2 decode left extended fields set: %+v", sm)
	}
	if sm.Servers != 8 || sm.Headroom != 0.5 {
		t.Errorf("v2 decode lost base fields: %+v", sm)
	}

	// A v3 decoder must reject the shorter v2 body (truncated extension).
	if err := out.DecodeFromProto(v2[4:], ProtoBinary3); err == nil {
		t.Error("v3 decode accepted a v2-layout summary frame")
	}
	// And a v2 decoder must reject the longer v3 body (trailing bytes).
	if err := out.DecodeFromProto(v3[4:], ProtoBinary); err == nil {
		t.Error("v2 decode accepted a v3-layout summary frame")
	}

	bad := &Envelope{Type: MsgSummary, Summary: &ClusterSummary{
		Games: []string{"Contra"}, GameDemand: []float64{1, 2},
	}}
	if _, err := bad.AppendToProto(nil, ProtoBinary3); err == nil {
		t.Error("encoded a summary with mismatched Games/GameDemand lengths")
	}
}

// TestConnBinaryConversation drives both framings over a live pipe through
// the Conn layer, switching protocols mid-stream exactly as a session does.
func TestConnBinaryConversation(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	deadline := time.Now().Add(5 * time.Second)
	_ = a.SetDeadline(deadline)
	_ = b.SetDeadline(deadline)

	done := make(chan error, 1)
	go func() {
		// Peer: JSON hello in, JSON accept out, then binary both ways.
		env, err := cb.Recv()
		if err == nil {
			err = cb.Send(&Envelope{Type: MsgAccept, Accept: &Accept{
				SessionID: 1, Game: env.Hello.Game, Proto: ProtoBinary,
			}})
		}
		if err == nil {
			cb.SetProto(ProtoBinary)
			_, err = cb.Recv() // binary input batch
		}
		if err == nil {
			err = cb.Send(wireEnvelopes()[4]) // binary frames
		}
		done <- err
	}()

	if err := ca.Send(&Envelope{Type: MsgHello, Hello: &Hello{Game: "Contra", Proto: ProtoBinary}}); err != nil {
		t.Fatal(err)
	}
	acc, err := ca.Recv()
	if err != nil || acc.Type != MsgAccept {
		t.Fatalf("accept: %v %v", acc, err)
	}
	ca.SetProto(NegotiateProto(ProtoBinary, acc.Accept.Proto))
	if ca.Proto() != ProtoBinary {
		t.Fatalf("negotiated %d", ca.Proto())
	}
	if err := ca.Send(wireEnvelopes()[3]); err != nil {
		t.Fatal(err)
	}
	frames, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frames, wireEnvelopes()[4]) {
		t.Errorf("binary frames changed in flight: %+v", frames)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestConnRejectsOversizedBinaryFrame ensures a hostile length prefix is an
// error, not an allocation.
func TestConnRejectsOversizedBinaryFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	_ = b.SetDeadline(time.Now().Add(2 * time.Second))
	conn := NewConn(b)
	conn.SetProto(ProtoBinary)
	go func() {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], maxWireFrame+1)
		_, _ = a.Write(hdr[:])
	}()
	if err := conn.RecvInto(&Envelope{}); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestJSONWireCompatibility pins the JSON framing: a hand-rolled legacy
// client (raw json over the socket, no Proto field anywhere) must complete
// a whole session against the current server — the cross-version guarantee.
func TestJSONWireCompatibility(t *testing.T) {
	s := startServer(t)
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(time.Minute))
	enc := json.NewEncoder(nc)
	dec := json.NewDecoder(bufio.NewReader(nc))

	// A pre-negotiation client: its Hello has no proto field at all.
	if err := enc.Encode(map[string]any{
		"type": "hello", "hello": map[string]any{"game": "Contra", "script": 0},
	}); err != nil {
		t.Fatal(err)
	}
	var accept Envelope
	if err := dec.Decode(&accept); err != nil {
		t.Fatal(err)
	}
	if accept.Type != MsgAccept {
		t.Fatalf("legacy hello answered with %q", accept.Type)
	}
	if accept.Accept.Proto != ProtoJSON {
		t.Fatalf("server negotiated proto %d with a legacy client", accept.Accept.Proto)
	}
	frames := 0
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("after %d frames: %v", frames, err)
		}
		switch env.Type {
		case MsgFrames:
			frames++
		case MsgEnd:
			if frames == 0 {
				t.Fatal("session ended with no frames")
			}
			return
		default:
			t.Fatalf("unexpected %q", env.Type)
		}
	}
}
