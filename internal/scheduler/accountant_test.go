package scheduler

import (
	"math"
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/resources"
)

// cloneFleetLoad deep-copies a summary so checkpoints survive the reused
// output buffer being overwritten by the next poll.
func cloneFleetLoad(fl platform.FleetLoad) platform.FleetLoad {
	out := fl
	out.Games = append([]string(nil), fl.Games...)
	out.GameDemand = append([]float64(nil), fl.GameDemand...)
	return out
}

// requireBitIdentical fails unless two summaries agree exactly — float
// fields compared by bits, not tolerance. This is the accountant's core
// guarantee: the fixed-topology tree makes the incremental path reproduce a
// full recompute to the last bit, no matter which servers changed.
func requireBitIdentical(t *testing.T, label string, got, want platform.FleetLoad) {
	t.Helper()
	if got.Servers != want.Servers || got.Active != want.Active ||
		got.Idle != want.Idle || got.Draining != want.Draining {
		t.Fatalf("%s: counts diverged:\n got %+v\nwant %+v", label, got, want)
	}
	if math.Float64bits(got.MeanHeadroom) != math.Float64bits(want.MeanHeadroom) {
		t.Fatalf("%s: mean headroom bits diverged: %x (%.17g) vs %x (%.17g)",
			label, math.Float64bits(got.MeanHeadroom), got.MeanHeadroom,
			math.Float64bits(want.MeanHeadroom), want.MeanHeadroom)
	}
	if len(got.Games) != len(want.Games) || len(got.GameDemand) != len(want.GameDemand) {
		t.Fatalf("%s: game breakdown shape diverged:\n got %+v\nwant %+v", label, got, want)
	}
	for i := range got.Games {
		if got.Games[i] != want.Games[i] {
			t.Fatalf("%s: game order diverged: %v vs %v", label, got.Games, want.Games)
		}
		if math.Float64bits(got.GameDemand[i]) != math.Float64bits(want.GameDemand[i]) {
			t.Fatalf("%s: demand[%s] bits diverged: %.17g vs %.17g",
				label, got.Games[i], got.GameDemand[i], want.GameDemand[i])
		}
	}
}

// fleetChurnScenario drives one cluster through admission, forecast
// progression, drain flips, session endings, and membership churn (grow,
// shrink, replace), polling the incremental accountant at every checkpoint.
// Each poll is verified bit-identical to a from-scratch recompute by an
// independent policy instance (so the incremental chain under test is never
// reset), and the per-checkpoint summaries are returned for cross-jobs
// comparison.
func fleetChurnScenario(t *testing.T, jobs int) []platform.FleetLoad {
	t.Helper()
	specs := []*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()}
	p := policyFor(t, specs...)
	ref := policyFor(t, specs...)
	c := platform.NewCluster(6, p)
	c.Jobs = jobs

	var out, full platform.FleetLoad
	var snaps []platform.FleetLoad
	checkpoint := func(label string) {
		t.Helper()
		if !p.FleetLoadInto(c.Servers, &out) {
			t.Fatalf("%s: FleetLoadInto returned false", label)
		}
		if !ref.FleetLoadFull(c.Servers, &full) {
			t.Fatalf("%s: FleetLoadFull returned false", label)
		}
		requireBitIdentical(t, label, out, full)
		// The legacy linear scan accumulates headroom in a different order
		// than the pairwise tree, so it agrees to rounding, not bits.
		head, ok := ref.ClusterLoadFullScan(c.Servers)
		if !ok {
			t.Fatalf("%s: ClusterLoadFullScan returned false", label)
		}
		if math.Abs(head-out.MeanHeadroom) > 1e-9 {
			t.Fatalf("%s: tree mean %.17g vs linear full scan %.17g", label, out.MeanHeadroom, head)
		}
		snaps = append(snaps, cloneFleetLoad(out))
	}
	tick := func(n int) {
		for i := 0; i < n; i++ {
			c.Tick()
		}
	}

	checkpoint("empty")
	if out.Active != 6 || out.Idle != 6 || out.Draining != 0 {
		t.Fatalf("empty cluster counts: %+v", out)
	}

	for i := 0; i < 8; i++ {
		c.Submit(platform.Arrival{Spec: specs[i%2], Script: 0, Habit: int64(100 + i), SessionSeed: int64(100 + i)})
	}
	tick(5)
	checkpoint("admitted")
	tick(30)
	checkpoint("forecasts advanced")

	c.Drain(2)
	checkpoint("one draining")
	if out.Draining != 1 || out.Active != len(c.Servers)-1 {
		t.Fatalf("drain counts: %+v", out)
	}
	c.Drain(3)
	c.Undrain(2)
	tick(7)
	checkpoint("drain moved")

	tick(400)
	checkpoint("sessions ended")

	c.Servers = append(c.Servers, platform.NewServer(100, resources.FullServer, c.Clock))
	checkpoint("grew")
	tick(10)
	checkpoint("ticked after growth")

	c.Servers = c.Servers[:5]
	checkpoint("shrank")

	c.Servers[0] = platform.NewServer(101, resources.FullServer, c.Clock)
	checkpoint("replaced")
	tick(10)
	checkpoint("ticked after replace")

	return snaps
}

// TestFleetLoadMatchesFullRecompute is the equivalence gate: under
// admission, forecast progression, drain flips, session endings, and
// membership churn, the incremental summary must stay bit-identical to a
// full recompute — and identical across -jobs settings, since the accountant
// runs on the serial entry points only.
func TestFleetLoadMatchesFullRecompute(t *testing.T) {
	serial := fleetChurnScenario(t, 1)
	parallel := fleetChurnScenario(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("checkpoint counts diverged: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		requireBitIdentical(t, "jobs 1 vs 8", parallel[i], serial[i])
	}
}

// TestClusterLoadDelegatesToAccountant pins that the coordinator-facing
// scalar is exactly the accountant's mean headroom.
func TestClusterLoadDelegatesToAccountant(t *testing.T) {
	spec := gamesim.Contra()
	p := policyFor(t, spec)
	c := platform.NewCluster(4, p)
	for i := 0; i < 4; i++ {
		c.Submit(platform.Arrival{Spec: spec, Script: 0, Habit: int64(10 + i), SessionSeed: int64(10 + i)})
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	head, ok := p.ClusterLoad(c.Servers)
	if !ok {
		t.Fatal("ClusterLoad returned false")
	}
	var fl platform.FleetLoad
	if !p.FleetLoadInto(c.Servers, &fl) {
		t.Fatal("FleetLoadInto returned false")
	}
	if math.Float64bits(head) != math.Float64bits(fl.MeanHeadroom) {
		t.Fatalf("ClusterLoad %.17g != accountant mean %.17g", head, fl.MeanHeadroom)
	}
}

// TestFleetLoadSteadyStateAllocationFree is the poll-path allocation gate:
// once warm, a summary over an unchanged fleet performs zero heap
// allocations — the revision probes, the tree reads, and the reused output
// buffer all live in pre-grown storage.
func TestFleetLoadSteadyStateAllocationFree(t *testing.T) {
	spec := gamesim.GenshinImpact()
	p := policyFor(t, spec)
	c := platform.NewCluster(64, p)
	for i := 0; i < len(c.Servers); i += 4 {
		for k := 0; k < 2; k++ {
			c.Submit(platform.Arrival{Spec: spec, Script: 0, Habit: int64(i*10 + k), SessionSeed: int64(i*10 + k)})
		}
	}
	for i := 0; i < 30; i++ {
		c.Tick()
	}
	var out platform.FleetLoad
	p.FleetLoadInto(c.Servers, &out) // warm caches, memos, tree, output buffer
	p.FleetLoadInto(c.Servers, &out)

	if allocs := testing.AllocsPerRun(100, func() {
		p.FleetLoadInto(c.Servers, &out)
	}); allocs != 0 {
		t.Errorf("steady-state FleetLoadInto allocates %.1f objects per poll, want 0", allocs)
	}
	p.ClusterLoad(c.Servers)
	if allocs := testing.AllocsPerRun(100, func() {
		p.ClusterLoad(c.Servers)
	}); allocs != 0 {
		t.Errorf("steady-state ClusterLoad allocates %.1f objects per poll, want 0", allocs)
	}
}

// TestCacheSweepEvictsRemovedServers covers the satellite fix for the
// pointer-keyed cache map: replacing fleet members must not pin their old
// caches forever. The sweep is amortized, so the map may briefly exceed the
// live set, but it must stay bounded under sustained churn and keep the live
// servers' caches.
func TestCacheSweepEvictsRemovedServers(t *testing.T) {
	spec := gamesim.Contra()
	p := policyFor(t, spec)
	c := platform.NewCluster(2, p)
	bound := 2*len(c.Servers) + cacheSweepSlack + 1
	for i := 0; i < 300; i++ {
		c.Servers[0] = platform.NewServer(1000+i, resources.FullServer, c.Clock)
		if _, ok := p.ClusterLoad(c.Servers); !ok {
			t.Fatal("ClusterLoad returned false")
		}
		if len(p.caches) > bound {
			t.Fatalf("after %d replacements the cache map holds %d entries (bound %d): sweep not working", i+1, len(p.caches), bound)
		}
	}
	for _, srv := range c.Servers {
		if p.caches[srv] == nil {
			t.Errorf("sweep evicted the cache of a live server %d", srv.ID)
		}
	}
}

// TestFleetLoadGameDemandAttribution sanity-checks the per-game breakdown:
// an idle fleet predicts zero demand, hosting sessions of one game raises
// that game's demand and no other's, and draining servers keep contributing
// demand (their sessions still consume) while leaving the active pool.
func TestFleetLoadGameDemandAttribution(t *testing.T) {
	contra, genshin := gamesim.Contra(), gamesim.GenshinImpact()
	p := policyFor(t, contra, genshin)
	c := platform.NewCluster(4, p)

	var fl platform.FleetLoad
	p.FleetLoadInto(c.Servers, &fl)
	if len(fl.Games) != 2 || fl.Games[0] != "Contra" || fl.Games[1] != "Genshin Impact" {
		t.Fatalf("games list %v, want sorted trained names", fl.Games)
	}
	for i, d := range fl.GameDemand {
		if d != 0 {
			t.Fatalf("idle fleet predicts demand %v for %s", d, fl.Games[i])
		}
	}

	gi := -1
	for i, g := range fl.Games {
		if g == genshin.Name {
			gi = i
		}
	}
	for i := 0; i < 3; i++ {
		c.Submit(platform.Arrival{Spec: genshin, Script: 0, Habit: int64(50 + i), SessionSeed: int64(50 + i)})
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	p.FleetLoadInto(c.Servers, &fl)
	if fl.GameDemand[gi] <= 0 {
		t.Errorf("hosted Genshin sessions predict demand %v, want > 0", fl.GameDemand[gi])
	}
	if fl.GameDemand[1-gi] != 0 {
		t.Errorf("unhosted game shows demand %v", fl.GameDemand[1-gi])
	}

	before := fl.GameDemand[gi]
	for _, srv := range c.Servers {
		srv.Draining = true
	}
	p.FleetLoadInto(c.Servers, &fl)
	if fl.Active != 0 || fl.Draining != len(c.Servers) || fl.MeanHeadroom != 0 {
		t.Errorf("all-draining summary: %+v", fl)
	}
	if math.Abs(fl.GameDemand[gi]-before) > 1e-12 {
		t.Errorf("draining dropped demand from %v to %v; sessions still consume", before, fl.GameDemand[gi])
	}
}
