package scheduler

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/predictor"
	"cocg/internal/resources"
	"cocg/internal/workload"
)

var bundleCache = map[string]*predictor.Trained{}

func bundleFor(t testing.TB, spec *gamesim.GameSpec) *predictor.Trained {
	t.Helper()
	if b, ok := bundleCache[spec.Name]; ok {
		return b
	}
	b, err := predictor.TrainForGame(spec, predictor.TrainConfig{Players: 8, SessionsPerPlayer: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	bundleCache[spec.Name] = b
	return b
}

func policyFor(t testing.TB, specs ...*gamesim.GameSpec) *CoCG {
	t.Helper()
	var bundles []*predictor.Trained
	for _, s := range specs {
		bundles = append(bundles, bundleFor(t, s))
	}
	return New(bundles, Config{})
}

func TestPolicyName(t *testing.T) {
	p := policyFor(t, gamesim.Contra())
	if p.Name() != "CoCG" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestAdmitUnknownGame(t *testing.T) {
	p := policyFor(t, gamesim.Contra())
	c := platform.NewCluster(1, p)
	if p.Admit(c.Servers[0], gamesim.CSGO(), 1) {
		t.Error("admitted a game with no trained bundle")
	}
	if _, err := p.NewController(gamesim.CSGO(), 1); err == nil {
		t.Error("controller for unknown game did not error")
	}
}

func TestAdmitEmptyServer(t *testing.T) {
	p := policyFor(t, gamesim.Contra(), gamesim.DevilMayCry())
	c := platform.NewCluster(1, p)
	for _, g := range []*gamesim.GameSpec{gamesim.Contra(), gamesim.DevilMayCry()} {
		if !p.Admit(c.Servers[0], g, 1) {
			t.Errorf("empty server rejected %s", g.Name)
		}
	}
}

func TestAdmitRejectsOverload(t *testing.T) {
	// Two Devil May Cry boss-heavy sessions cannot share a server with a
	// third: peak stages approach 90 % GPU alone.
	spec := gamesim.DevilMayCry()
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	placed := 0
	for i := int64(0); i < 4; i++ {
		if !p.Admit(srv, spec, i) {
			break
		}
		sess, err := gamesim.NewSession(spec, 2, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := p.NewController(spec, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		srv.Add(spec, sess, ctl)
		// Let controllers tick a few frames so requests are realistic.
		for j := 0; j < 30; j++ {
			c.Tick()
		}
		placed++
	}
	if placed >= 4 {
		t.Errorf("distributor admitted %d heavy games on one server", placed)
	}
	if placed == 0 {
		t.Error("distributor admitted nothing")
	}
}

func TestCoLocationKeepsQoS(t *testing.T) {
	// The headline behavior (Fig. 9): Genshin Impact + DOTA2 on one server,
	// utilization stays below the cap and sessions keep good FPS.
	ga, do := gamesim.GenshinImpact(), gamesim.DOTA2()
	p := policyFor(t, ga, do)
	c := platform.NewCluster(1, p)
	gen := workload.NewGenerator(map[string][]int64{
		ga.Name: bundleFor(t, ga).Habits(),
		do.Name: bundleFor(t, do).Habits(),
	}, 7)
	stream := &workload.PairStream{Gen: gen, A: ga, B: do, Backlog: 1}
	for i := 0; i < 3600; i++ {
		stream.Feed(c)
		c.Tick()
	}
	recs := c.Records()
	if len(recs) < 3 {
		t.Fatalf("only %d sessions completed in an hour", len(recs))
	}
	sum := platform.Summarize(recs)
	if sum.MeanFPSRatio < 0.9 {
		t.Errorf("mean FPS ratio %.3f", sum.MeanFPSRatio)
	}
	if sum.MeanDegraded > 0.05 {
		t.Errorf("mean degraded %.3f exceeds the 5%% operator tolerance", sum.MeanDegraded)
	}
	// At least once the two games must actually have been co-located.
	if c.Servers[0].PeakUtilization().Dominant() < 60 {
		t.Errorf("peak utilization %.1f suggests no co-location happened",
			c.Servers[0].PeakUtilization().Dominant())
	}
}

func TestRegulatorStealsFromLoading(t *testing.T) {
	spec := gamesim.DevilMayCry()
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]

	// Hand-craft a contended situation: one exec-heavy controller and one
	// loading controller, with requests summing over the limit.
	mk := func(loading bool, req resources.Vector) *platform.Hosted {
		sess, err := gamesim.NewSession(spec, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Add(spec, sess, &stubController{loading: loading})
		h.Request = req
		return h
	}
	exec := mk(false, resources.Uniform(70))
	load := mk(true, resources.Uniform(50))
	srv.SyncTotals() // requests were set directly, not by a tick

	p.Regulate(srv)
	if exec.Request != resources.Uniform(70) {
		t.Errorf("regulator touched the executing game: %v", exec.Request)
	}
	if load.Request[resources.CPU] >= 50 {
		t.Errorf("regulator did not throttle the loading game: %v", load.Request)
	}
	// The loading floor must hold.
	if load.Request[resources.CPU] < 50*0.35-1e-9 {
		t.Errorf("regulator cut below the floor: %v", load.Request)
	}
}

func TestRegulatorNoopUnderLimit(t *testing.T) {
	spec := gamesim.Contra()
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	sess, _ := gamesim.NewSession(spec, 0, 1)
	h := srv.Add(spec, sess, &stubController{loading: true})
	h.Request = resources.Uniform(20)
	srv.SyncTotals()
	p.Regulate(srv)
	if h.Request != resources.Uniform(20) {
		t.Errorf("regulator acted below the limit: %v", h.Request)
	}
}

func TestRegulatorDisabledByConfig(t *testing.T) {
	spec := gamesim.Contra()
	b := bundleFor(t, spec)
	p := New([]*predictor.Trained{b}, Config{DisableLoadingSteal: true})
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	sess, _ := gamesim.NewSession(spec, 0, 1)
	h := srv.Add(spec, sess, &stubController{loading: true})
	h.Request = resources.Uniform(90)
	sess2, _ := gamesim.NewSession(spec, 0, 2)
	h2 := srv.Add(spec, sess2, &stubController{loading: false})
	h2.Request = resources.Uniform(90)
	p.Regulate(srv)
	if h.Request != resources.Uniform(90) {
		t.Error("disabled regulator still acted")
	}
}

func TestPredictionLatencyFor(t *testing.T) {
	p := policyFor(t, gamesim.CSGO())
	lat, ok := p.PredictionLatencyFor("CSGO")
	if !ok || lat < 3 || lat > 13 {
		t.Errorf("latency = %d, ok=%v", lat, ok)
	}
	if _, ok := p.PredictionLatencyFor("nope"); ok {
		t.Error("latency for unknown game")
	}
}

// stubController reports a fixed loading state; requests are set directly on
// the Hosted.
type stubController struct{ loading bool }

func (s *stubController) Name() string                           { return "stub" }
func (s *stubController) Tick(resources.Vector) resources.Vector { return resources.Zero }
func (s *stubController) Loading() bool                          { return s.loading }

func TestPeakDepthGuard(t *testing.T) {
	// Two frame-locked heavy games (Genshin + DMC) must refuse to share a
	// server — their combined worst case breaks the 30 FPS floor — while
	// DOTA2 + DMC (one uncapped, moderate peak) is admissible.
	ga, dmc, do := gamesim.GenshinImpact(), gamesim.DevilMayCry(), gamesim.DOTA2()
	p := policyFor(t, ga, dmc, do)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]

	sess, err := gamesim.NewSession(dmc, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := p.NewController(dmc, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(dmc, sess, ctl)
	for i := 0; i < 30; i++ {
		c.Tick()
	}

	if p.Admit(srv, ga, 2) {
		t.Error("Genshin admitted next to Devil May Cry (peak sum breaks the FPS floor)")
	}
	if !p.Admit(srv, do, 3) {
		t.Error("DOTA2 refused next to Devil May Cry (the paper's featured pair)")
	}
}

func TestScorePrefersAdmissibleServers(t *testing.T) {
	spec := gamesim.Contra()
	p := policyFor(t, spec)
	c := platform.NewCluster(2, p)
	// Score must be ok on an empty server and carry a consolidation bias.
	s0, ok0 := p.Score(c.Servers[0], spec, 1)
	if !ok0 {
		t.Fatal("empty server not scorable")
	}
	sess, _ := gamesim.NewSession(spec, 0, 5)
	ctl, _ := p.NewController(spec, 5)
	c.Servers[1].Add(spec, sess, ctl)
	for i := 0; i < 30; i++ {
		c.Tick()
	}
	s1, ok1 := p.Score(c.Servers[1], spec, 2)
	if !ok1 {
		t.Fatal("busy-but-light server not scorable")
	}
	if s1 <= s0-0.01 {
		t.Errorf("busy server score %.4f not close to empty %.4f despite consolidation bias", s1, s0)
	}
}

// TestCachedEvaluateMatchesFreshRecompute runs a live CoCG cluster — admits,
// departures, and a predictor stage transition every frame — and repeatedly
// compares the long-lived policy's cached evaluation against a fresh policy
// instance with empty caches over the very same servers and controllers. The
// verdicts, scores, and cached aggregate timelines must agree bit for bit,
// which is the cache-invalidation contract: stamps catch every mutation a
// forecast can depend on.
func TestCachedEvaluateMatchesFreshRecompute(t *testing.T) {
	do, co := gamesim.DOTA2(), gamesim.Contra()
	bundles := []*predictor.Trained{bundleFor(t, do), bundleFor(t, co)}
	p := New(bundles, Config{})
	c := platform.NewCluster(3, p)
	c.Jobs = 3
	specs := []*gamesim.GameSpec{do, co}

	next := 0
	for tick := 0; tick < 2400; tick++ {
		if tick%40 == 0 {
			spec := specs[next%len(specs)]
			c.Submit(platform.Arrival{
				Spec:        spec,
				Script:      next % len(spec.Scripts),
				Habit:       int64(next),
				SessionSeed: int64(500 + next),
			})
			next++
		}
		c.Tick()
		if tick%100 != 99 {
			continue
		}
		ref := New(bundles, Config{})
		for _, srv := range c.Servers {
			for i, spec := range specs {
				gs, gok := p.Score(srv, spec, int64(i))
				ws, wok := ref.Score(srv, spec, int64(i))
				if gok != wok || gs != ws {
					t.Fatalf("tick %d server %d %s: cached (%v, %v) != fresh (%v, %v)",
						tick, srv.ID, spec.Name, gs, gok, ws, wok)
				}
			}
			cp, rp := p.caches[srv], ref.caches[srv]
			if cp == nil || rp == nil || !cp.valid || !rp.valid {
				t.Fatalf("tick %d server %d: missing or invalid cache after scoring", tick, srv.ID)
			}
			if len(cp.total) != len(rp.total) {
				t.Fatalf("tick %d server %d: timeline length %d != %d", tick, srv.ID, len(cp.total), len(rp.total))
			}
			for ti := range cp.total {
				if cp.total[ti] != rp.total[ti] {
					t.Fatalf("tick %d server %d frame %d: cached timeline %v != fresh %v",
						tick, srv.ID, ti, cp.total[ti], rp.total[ti])
				}
			}
		}
	}
	if c.Placements == 0 {
		t.Error("stream placed nothing; the comparison proved nothing")
	}
	if len(c.Records()) == 0 {
		t.Error("no session departed; the membership-revision stamp went unexercised")
	}
}

// evalFixture builds a warm one-server CoCG cluster hosting two games, so
// evaluate's steady state — valid stamps, no refill — can be measured.
func evalFixture(tb testing.TB) (*CoCG, *platform.Server, *gamesim.GameSpec) {
	ga, do := gamesim.GenshinImpact(), gamesim.DOTA2()
	p := policyFor(tb, ga, do)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	for i, spec := range []*gamesim.GameSpec{ga, do} {
		sess, err := gamesim.NewSession(spec, 0, int64(9+i))
		if err != nil {
			tb.Fatal(err)
		}
		ctl, err := p.NewController(spec, int64(i+1))
		if err != nil {
			tb.Fatal(err)
		}
		srv.Add(spec, sess, ctl)
	}
	for i := 0; i < 31; i++ {
		c.Tick()
	}
	return p, srv, do
}

func TestEvaluateSteadyStateAllocationFree(t *testing.T) {
	p, srv, spec := evalFixture(t)
	p.Score(srv, spec, 1) // fill the cache and memo
	if n := testing.AllocsPerRun(200, func() { p.Score(srv, spec, 1) }); n != 0 {
		t.Errorf("memoized steady-state Score allocates %.1f/op, want 0", n)
	}
	cc := p.caches[srv]
	if cc == nil || !cc.cacheable {
		t.Fatal("fixture server unexpectedly uncacheable")
	}
	if n := testing.AllocsPerRun(200, func() {
		clear(cc.memo)
		p.Score(srv, spec, 1)
	}); n != 0 {
		t.Errorf("warm unmemoized Score allocates %.1f/op, want 0", n)
	}
}

func BenchmarkEvaluateSteadyState(b *testing.B) {
	p, srv, spec := evalFixture(b)
	p.Score(srv, spec, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Score(srv, spec, 1)
	}
}

func BenchmarkEvaluateWarmUnmemoized(b *testing.B) {
	p, srv, spec := evalFixture(b)
	p.Score(srv, spec, 1)
	cc := p.caches[srv]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(cc.memo)
		p.Score(srv, spec, 1)
	}
}
