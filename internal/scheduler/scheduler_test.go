package scheduler

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/predictor"
	"cocg/internal/resources"
	"cocg/internal/workload"
)

var bundleCache = map[string]*predictor.Trained{}

func bundleFor(t *testing.T, spec *gamesim.GameSpec) *predictor.Trained {
	t.Helper()
	if b, ok := bundleCache[spec.Name]; ok {
		return b
	}
	b, err := predictor.TrainForGame(spec, predictor.TrainConfig{Players: 8, SessionsPerPlayer: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	bundleCache[spec.Name] = b
	return b
}

func policyFor(t *testing.T, specs ...*gamesim.GameSpec) *CoCG {
	t.Helper()
	var bundles []*predictor.Trained
	for _, s := range specs {
		bundles = append(bundles, bundleFor(t, s))
	}
	return New(bundles, Config{})
}

func TestPolicyName(t *testing.T) {
	p := policyFor(t, gamesim.Contra())
	if p.Name() != "CoCG" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestAdmitUnknownGame(t *testing.T) {
	p := policyFor(t, gamesim.Contra())
	c := platform.NewCluster(1, p)
	if p.Admit(c.Servers[0], gamesim.CSGO(), 1) {
		t.Error("admitted a game with no trained bundle")
	}
	if _, err := p.NewController(gamesim.CSGO(), 1); err == nil {
		t.Error("controller for unknown game did not error")
	}
}

func TestAdmitEmptyServer(t *testing.T) {
	p := policyFor(t, gamesim.Contra(), gamesim.DevilMayCry())
	c := platform.NewCluster(1, p)
	for _, g := range []*gamesim.GameSpec{gamesim.Contra(), gamesim.DevilMayCry()} {
		if !p.Admit(c.Servers[0], g, 1) {
			t.Errorf("empty server rejected %s", g.Name)
		}
	}
}

func TestAdmitRejectsOverload(t *testing.T) {
	// Two Devil May Cry boss-heavy sessions cannot share a server with a
	// third: peak stages approach 90 % GPU alone.
	spec := gamesim.DevilMayCry()
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	placed := 0
	for i := int64(0); i < 4; i++ {
		if !p.Admit(srv, spec, i) {
			break
		}
		sess, err := gamesim.NewSession(spec, 2, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := p.NewController(spec, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		srv.Add(spec, sess, ctl)
		// Let controllers tick a few frames so requests are realistic.
		for j := 0; j < 30; j++ {
			c.Tick()
		}
		placed++
	}
	if placed >= 4 {
		t.Errorf("distributor admitted %d heavy games on one server", placed)
	}
	if placed == 0 {
		t.Error("distributor admitted nothing")
	}
}

func TestCoLocationKeepsQoS(t *testing.T) {
	// The headline behavior (Fig. 9): Genshin Impact + DOTA2 on one server,
	// utilization stays below the cap and sessions keep good FPS.
	ga, do := gamesim.GenshinImpact(), gamesim.DOTA2()
	p := policyFor(t, ga, do)
	c := platform.NewCluster(1, p)
	gen := workload.NewGenerator(map[string][]int64{
		ga.Name: bundleFor(t, ga).Habits(),
		do.Name: bundleFor(t, do).Habits(),
	}, 7)
	stream := &workload.PairStream{Gen: gen, A: ga, B: do, Backlog: 1}
	for i := 0; i < 3600; i++ {
		stream.Feed(c)
		c.Tick()
	}
	recs := c.Records()
	if len(recs) < 3 {
		t.Fatalf("only %d sessions completed in an hour", len(recs))
	}
	sum := platform.Summarize(recs)
	if sum.MeanFPSRatio < 0.9 {
		t.Errorf("mean FPS ratio %.3f", sum.MeanFPSRatio)
	}
	if sum.MeanDegraded > 0.05 {
		t.Errorf("mean degraded %.3f exceeds the 5%% operator tolerance", sum.MeanDegraded)
	}
	// At least once the two games must actually have been co-located.
	if c.Servers[0].PeakUtilization().Dominant() < 60 {
		t.Errorf("peak utilization %.1f suggests no co-location happened",
			c.Servers[0].PeakUtilization().Dominant())
	}
}

func TestRegulatorStealsFromLoading(t *testing.T) {
	spec := gamesim.DevilMayCry()
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]

	// Hand-craft a contended situation: one exec-heavy controller and one
	// loading controller, with requests summing over the limit.
	mk := func(loading bool, req resources.Vector) *platform.Hosted {
		sess, err := gamesim.NewSession(spec, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Add(spec, sess, &stubController{loading: loading})
		h.Request = req
		return h
	}
	exec := mk(false, resources.Uniform(70))
	load := mk(true, resources.Uniform(50))

	p.Regulate(srv)
	if exec.Request != resources.Uniform(70) {
		t.Errorf("regulator touched the executing game: %v", exec.Request)
	}
	if load.Request[resources.CPU] >= 50 {
		t.Errorf("regulator did not throttle the loading game: %v", load.Request)
	}
	// The loading floor must hold.
	if load.Request[resources.CPU] < 50*0.35-1e-9 {
		t.Errorf("regulator cut below the floor: %v", load.Request)
	}
}

func TestRegulatorNoopUnderLimit(t *testing.T) {
	spec := gamesim.Contra()
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	sess, _ := gamesim.NewSession(spec, 0, 1)
	h := srv.Add(spec, sess, &stubController{loading: true})
	h.Request = resources.Uniform(20)
	p.Regulate(srv)
	if h.Request != resources.Uniform(20) {
		t.Errorf("regulator acted below the limit: %v", h.Request)
	}
}

func TestRegulatorDisabledByConfig(t *testing.T) {
	spec := gamesim.Contra()
	b := bundleFor(t, spec)
	p := New([]*predictor.Trained{b}, Config{DisableLoadingSteal: true})
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]
	sess, _ := gamesim.NewSession(spec, 0, 1)
	h := srv.Add(spec, sess, &stubController{loading: true})
	h.Request = resources.Uniform(90)
	sess2, _ := gamesim.NewSession(spec, 0, 2)
	h2 := srv.Add(spec, sess2, &stubController{loading: false})
	h2.Request = resources.Uniform(90)
	p.Regulate(srv)
	if h.Request != resources.Uniform(90) {
		t.Error("disabled regulator still acted")
	}
}

func TestPredictionLatencyFor(t *testing.T) {
	p := policyFor(t, gamesim.CSGO())
	lat, ok := p.PredictionLatencyFor("CSGO")
	if !ok || lat < 3 || lat > 13 {
		t.Errorf("latency = %d, ok=%v", lat, ok)
	}
	if _, ok := p.PredictionLatencyFor("nope"); ok {
		t.Error("latency for unknown game")
	}
}

// stubController reports a fixed loading state; requests are set directly on
// the Hosted.
type stubController struct{ loading bool }

func (s *stubController) Name() string                           { return "stub" }
func (s *stubController) Tick(resources.Vector) resources.Vector { return resources.Zero }
func (s *stubController) Loading() bool                          { return s.loading }

func TestPeakDepthGuard(t *testing.T) {
	// Two frame-locked heavy games (Genshin + DMC) must refuse to share a
	// server — their combined worst case breaks the 30 FPS floor — while
	// DOTA2 + DMC (one uncapped, moderate peak) is admissible.
	ga, dmc, do := gamesim.GenshinImpact(), gamesim.DevilMayCry(), gamesim.DOTA2()
	p := policyFor(t, ga, dmc, do)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]

	sess, err := gamesim.NewSession(dmc, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := p.NewController(dmc, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(dmc, sess, ctl)
	for i := 0; i < 30; i++ {
		c.Tick()
	}

	if p.Admit(srv, ga, 2) {
		t.Error("Genshin admitted next to Devil May Cry (peak sum breaks the FPS floor)")
	}
	if !p.Admit(srv, do, 3) {
		t.Error("DOTA2 refused next to Devil May Cry (the paper's featured pair)")
	}
}

func TestScorePrefersAdmissibleServers(t *testing.T) {
	spec := gamesim.Contra()
	p := policyFor(t, spec)
	c := platform.NewCluster(2, p)
	// Score must be ok on an empty server and carry a consolidation bias.
	s0, ok0 := p.Score(c.Servers[0], spec, 1)
	if !ok0 {
		t.Fatal("empty server not scorable")
	}
	sess, _ := gamesim.NewSession(spec, 0, 5)
	ctl, _ := p.NewController(spec, 5)
	c.Servers[1].Add(spec, sess, ctl)
	for i := 0; i < 30; i++ {
		c.Tick()
	}
	s1, ok1 := p.Score(c.Servers[1], spec, 2)
	if !ok1 {
		t.Fatal("busy-but-light server not scorable")
	}
	if s1 <= s0-0.01 {
		t.Errorf("busy server score %.4f not close to empty %.4f despite consolidation bias", s1, s0)
	}
}
