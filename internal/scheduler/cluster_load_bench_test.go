package scheduler

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
)

// BenchmarkClusterLoad measures the per-cluster load summary the coordinator
// tier polls: a full forecast-backed headroom rollup over a 256-server
// cluster hosting live sessions. Steady state rides the PR 4 per-server
// caches — one revision check per server, recompute only where placements
// moved — so this is the cost a summary feed adds to a cluster every probe
// period.
func BenchmarkClusterLoad(b *testing.B) {
	spec := gamesim.GenshinImpact()
	p := policyFor(b, spec)
	c := platform.NewCluster(256, p)
	// Populate every 4th server with two live sessions and let their
	// controllers tick so the demand forecasts are realistic.
	for i := 0; i < len(c.Servers); i += 4 {
		for k := int64(0); k < 2; k++ {
			id := int64(i)*10 + k
			sess, err := gamesim.NewSession(spec, 2, id)
			if err != nil {
				b.Fatal(err)
			}
			ctl, err := p.NewController(spec, id)
			if err != nil {
				b.Fatal(err)
			}
			c.Servers[i].Add(spec, sess, ctl)
		}
	}
	for j := 0; j < 30; j++ {
		c.Tick()
	}
	if _, ok := p.ClusterLoad(c.Servers); !ok {
		b.Fatal("CoCG did not implement ClusterLoad")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClusterLoad(c.Servers)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "summaries/s")
}
