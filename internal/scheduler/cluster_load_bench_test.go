package scheduler

import (
	"fmt"
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
)

// buildLoadedCluster populates every 4th server of an n-server cluster with
// two live sessions and lets their controllers tick so the demand forecasts
// are realistic — the shared fixture for every cluster-summary benchmark.
func buildLoadedCluster(b *testing.B, n int) (*CoCG, *platform.Cluster) {
	b.Helper()
	spec := gamesim.GenshinImpact()
	p := policyFor(b, spec)
	c := platform.NewCluster(n, p)
	for i := 0; i < len(c.Servers); i += 4 {
		for k := int64(0); k < 2; k++ {
			id := int64(i)*10 + k
			sess, err := gamesim.NewSession(spec, 2, id)
			if err != nil {
				b.Fatal(err)
			}
			ctl, err := p.NewController(spec, id)
			if err != nil {
				b.Fatal(err)
			}
			c.Servers[i].Add(spec, sess, ctl)
		}
	}
	for j := 0; j < 30; j++ {
		c.Tick()
	}
	return p, c
}

// BenchmarkClusterLoad measures the per-cluster load summary the coordinator
// tier polls at the original 256-server scale: since PR 10 it rides the
// incremental fleet accountant, so steady state costs one revision probe per
// server plus tree reads — compare BenchmarkClusterLoadFullScan for the
// legacy rescan it replaced.
func BenchmarkClusterLoad(b *testing.B) {
	p, c := buildLoadedCluster(b, 256)
	if _, ok := p.ClusterLoad(c.Servers); !ok {
		b.Fatal("CoCG did not implement ClusterLoad")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClusterLoad(c.Servers)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "summaries/s")
}

// BenchmarkClusterLoadFullScan is the pre-accountant baseline: the full
// horizon×dims headroom rescan over every server, at 256/1024/4096 servers.
// Recorded first by `make bench-fleet` and embedded as the baseline of
// BENCH_PR10.json.
func BenchmarkClusterLoadFullScan(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			p, c := buildLoadedCluster(b, n)
			p.ClusterLoadFullScan(c.Servers) // warm the forecast caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ClusterLoadFullScan(c.Servers)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "summaries/s")
		})
	}
}

// BenchmarkFleetLoadSteady is the accountant's steady-state poll at
// 256/1024/4096 servers: nothing changed since the last summary, so the cost
// is the per-server revision probes alone — the continuous-poll rate ROADMAP
// item 2's autoscaler budget assumes. Must stay at 0 allocs/op (the
// equivalence and allocation gates in accountant_test.go enforce the
// semantics; this records the speed).
func BenchmarkFleetLoadSteady(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			p, c := buildLoadedCluster(b, n)
			var out platform.FleetLoad
			p.FleetLoadInto(c.Servers, &out) // warm caches, memos, tree
			p.FleetLoadInto(c.Servers, &out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.FleetLoadInto(c.Servers, &out)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "summaries/s")
		})
	}
}

// BenchmarkFleetLoadChurn polls after one simulated second advances the
// cluster (forecast revisions move on detection-frame boundaries, dirtying
// the loaded quarter of the fleet), so the measured cost is the O(dirty)
// leaf recomputes plus their log-depth refolds — the accountant's worst
// realistic round. The tick itself runs outside the timer.
func BenchmarkFleetLoadChurn(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			p, c := buildLoadedCluster(b, n)
			var out platform.FleetLoad
			p.FleetLoadInto(c.Servers, &out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c.Tick()
				b.StartTimer()
				p.FleetLoadInto(c.Servers, &out)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "summaries/s")
		})
	}
}
