package scheduler

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
)

// TestClusterLoadEmptyClusterIsIdle pins the summary the coordinator tier
// reads: a cluster with no sessions forecasts (close to) full headroom.
func TestClusterLoadEmptyClusterIsIdle(t *testing.T) {
	p := policyFor(t, gamesim.Contra())
	c := platform.NewCluster(4, p)
	head, ok := p.ClusterLoad(c.Servers)
	if !ok {
		t.Fatal("CoCG did not implement ClusterLoad")
	}
	if head < 0.9 || head > 1 {
		t.Errorf("empty cluster headroom %.3f, want ~1", head)
	}
}

// TestClusterLoadDropsUnderLoad verifies the headroom summary is
// forecast-backed: hosting sessions must push it down, monotonically with
// the number of sessions, while staying inside [0, 1].
func TestClusterLoadDropsUnderLoad(t *testing.T) {
	spec := gamesim.DevilMayCry() // boss stages near 90 % GPU alone
	p := policyFor(t, spec)
	c := platform.NewCluster(1, p)
	srv := c.Servers[0]

	prev, _ := p.ClusterLoad(c.Servers)
	for i := int64(0); i < 2; i++ {
		sess, err := gamesim.NewSession(spec, 2, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := p.NewController(spec, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		srv.Add(spec, sess, ctl)
		for j := 0; j < 30; j++ {
			c.Tick() // let controllers tick so demand forecasts are realistic
		}
		head, ok := p.ClusterLoad(c.Servers)
		if !ok {
			t.Fatal("CoCG did not implement ClusterLoad")
		}
		if head < 0 || head > 1 {
			t.Fatalf("headroom %.3f out of [0,1]", head)
		}
		if head >= prev {
			t.Errorf("headroom did not drop after session %d: %.3f -> %.3f", i, prev, head)
		}
		prev = head
	}
}

// TestClusterLoadAllDraining pins the degenerate case: a cluster whose every
// server is draining has no admittable capacity, i.e. zero headroom.
func TestClusterLoadAllDraining(t *testing.T) {
	p := policyFor(t, gamesim.Contra())
	c := platform.NewCluster(2, p)
	for _, srv := range c.Servers {
		srv.Draining = true
	}
	head, ok := p.ClusterLoad(c.Servers)
	if !ok || head != 0 {
		t.Errorf("all-draining cluster: headroom %.3f ok=%v, want 0 true", head, ok)
	}
}
