// Fleet load accountant: the incremental backing store for ClusterLoad and
// FleetLoadInto. The distributor's per-server forecast caches (scheduler.go)
// already stamp every quantity a fleet summary needs under the
// (Server.Rev, ForecastRev, horizon) revision scheme from PR 4; this file
// adds a per-server load memo on top of those stamps and keeps the cluster
// aggregate in a fixed-topology pairwise summation tree, so a steady-state
// poll costs one revision probe per server — O(dirty·log n) fold work —
// instead of the full O(n·horizon·dims) timeline rescan.
//
// The tree is a complete binary tree over power-of-two leaf slots stored in
// flat arrays (node i's children are 2i and 2i+1, leaf slot s lives at index
// leaves+s, the root is node 1). Every aggregate — headroom sum, per-game
// demand, active/idle/draining counts — folds bottom-up in the same fixed
// order no matter which leaves changed, so an incremental refold is
// bit-identical to rebuilding the whole tree from scratch: an unchanged leaf
// keeps its exact bits, equal children fold to equal parents, and induction
// carries that to the root. FleetLoadFull is the from-scratch rebuild the
// equivalence tests compare against.
package scheduler

import (
	"cocg/internal/platform"
	"cocg/internal/resources"
)

// acctSlot stamps what one leaf of the summation tree was computed from. A
// slot is dirty — its leaf must be recomputed — when the server occupying it
// changed identity, membership revision, draining state, or any hosted
// forecast revision, or when the horizon moved. The revs slice is the slot's
// own copy of the fill-time forecast revisions: it must not alias the
// serverCache's stamps, because the admission path refreshes those without
// updating the leaf.
type acctSlot struct {
	srv      *platform.Server
	rev      uint64
	horizon  int
	draining bool
	// volatile marks servers whose demand mutates outside any revision
	// counter (foreign controllers, untrained specs — the same condition
	// that makes a serverCache uncacheable); their leaves recompute every
	// poll.
	volatile bool
	revs     []uint64
}

// fleetAccountant is the fixed-topology summation tree plus its leaf stamps.
// All node arrays are 2·leaves long (index 0 unused); demand is node-major
// with games floats per node.
type fleetAccountant struct {
	leaves int
	games  int
	// used is the number of leaf slots the previous poll occupied; a
	// shrinking server list zeroes the abandoned tail.
	used int

	head   []float64
	demand []float64
	active []int32
	idle   []int32
	drain  []int32
	slots  []acctSlot
}

// ensure sizes the tree for n servers and g games. Growth reallocates and
// zeroes everything — every slot comes back dirty (nil srv) — and the leaf
// count never shrinks, so a fleet that oscillates around a power of two does
// not thrash.
func (a *fleetAccountant) ensure(n, g int) {
	if a.leaves >= 2 && n <= a.leaves && g == a.games && len(a.slots) == a.leaves {
		return
	}
	leaves := 2
	for leaves < n {
		leaves <<= 1
	}
	if leaves < a.leaves {
		leaves = a.leaves
	}
	a.leaves = leaves
	a.games = g
	a.used = 0
	a.head = make([]float64, 2*leaves)
	a.demand = make([]float64, 2*leaves*g)
	a.active = make([]int32, 2*leaves)
	a.idle = make([]int32, 2*leaves)
	a.drain = make([]int32, 2*leaves)
	a.slots = make([]acctSlot, leaves)
}

// setLeaf writes one server's contribution into its leaf slot.
//
//cocg:hot
func (a *fleetAccountant) setLeaf(slot int, head float64, demand []float64, active, idle, drain int32) {
	i := a.leaves + slot
	a.head[i] = head
	a.active[i] = active
	a.idle[i] = idle
	a.drain[i] = drain
	g := a.games
	copy(a.demand[i*g:(i+1)*g], demand)
}

// clearLeaf zeroes a leaf a departed server used to occupy.
func (a *fleetAccountant) clearLeaf(slot int) {
	i := a.leaves + slot
	a.head[i] = 0
	a.active[i] = 0
	a.idle[i] = 0
	a.drain[i] = 0
	g := a.games
	b := a.demand[i*g : (i+1)*g]
	for j := range b {
		b[j] = 0
	}
	a.slots[slot] = acctSlot{revs: a.slots[slot].revs[:0]}
}

// foldPath refolds every ancestor of a leaf, bottom-up. Dirty leaves are
// processed in increasing slot order, so by the time the last dirty leaf
// under any node folds, both children hold their final values — the node's
// final fold is then the exact left+right addition a full rebuild performs,
// which is what makes incremental and from-scratch summaries bit-identical.
//
//cocg:hot
func (a *fleetAccountant) foldPath(slot int) {
	g := a.games
	for n := (a.leaves + slot) >> 1; n >= 1; n >>= 1 {
		l, r := 2*n, 2*n+1
		a.head[n] = a.head[l] + a.head[r]
		a.active[n] = a.active[l] + a.active[r]
		a.idle[n] = a.idle[l] + a.idle[r]
		a.drain[n] = a.drain[l] + a.drain[r]
		lb := a.demand[l*g : (l+1)*g]
		rb := a.demand[r*g : (r+1)*g]
		nb := a.demand[n*g : (n+1)*g]
		for j := range nb {
			nb[j] = lb[j] + rb[j]
		}
	}
}

// slotDirty reports whether the leaf stamped by sl no longer reflects srv at
// horizon h. When sl.rev equals the server's current membership revision the
// hosted set is unchanged since the stamp, so the per-session revision walk
// below probes exactly the sessions the stamp covered.
//
//cocg:hot
func (c *CoCG) slotDirty(sl *acctSlot, srv *platform.Server, h int) bool {
	if sl.srv != srv || sl.volatile || sl.horizon != h ||
		sl.draining != srv.Draining || sl.rev != srv.Rev() {
		return true
	}
	if len(sl.revs) != len(srv.Hosted) {
		return true
	}
	for i, hosted := range srv.Hosted {
		ctl, ok := hosted.Controller.(*Controller)
		if !ok || ctl.pr.ForecastRev() != sl.revs[i] {
			return true
		}
	}
	return false
}

// stampSlot records what the leaf was just computed from.
func (c *CoCG) stampSlot(sl *acctSlot, srv *platform.Server, cc *serverCache, h int) {
	sl.srv = srv
	sl.rev = srv.Rev()
	sl.horizon = h
	sl.draining = srv.Draining
	sl.volatile = !cc.cacheable
	sl.revs = sl.revs[:0]
	for _, hosted := range srv.Hosted {
		if ctl, ok := hosted.Controller.(*Controller); ok {
			sl.revs = append(sl.revs, ctl.pr.ForecastRev())
		} else {
			sl.revs = append(sl.revs, 0)
		}
	}
}

// worstFrac is the worst per-dimension fraction of capacity a demand vector
// occupies (dimensions with zero capacity are skipped, matching the headroom
// guard in ClusterLoadFullScan).
func worstFrac(v, capacity resources.Vector) float64 {
	worst := 0.0
	for d := range v {
		if capd := capacity[d]; capd > 0 {
			if f := v[d] / capd; f > worst {
				worst = f
			}
		}
	}
	return worst
}

// serverLoadMemo fills the cache's fleet-accounting memo — the server's
// predicted headroom and per-game demand contributions — under the cache's
// current stamps. refresh clears loadValid on every rebuild, so the memo is
// recomputed lazily on the first summary after a change and the admission
// path never pays for it. The headroom scan is the exact operation sequence
// of ClusterLoadFullScan, so per-server headroom bits match the legacy path.
func (c *CoCG) serverLoadMemo(cc *serverCache, srv *platform.Server, h int) {
	if cc.loadValid {
		return
	}
	peak := 0.0
	for t := range cc.total {
		for d := range cc.total[t] {
			if capd := srv.Capacity[d]; capd > 0 {
				if f := cc.total[t][d] / capd; f > peak {
					peak = f
				}
			}
		}
	}
	head := 1 - peak
	if head < 0 {
		head = 0
	}
	cc.headroom = head

	g := len(c.games)
	if cap(cc.gameDemand) < g {
		cc.gameDemand = make([]float64, g)
	}
	cc.gameDemand = cc.gameDemand[:g]
	for i := range cc.gameDemand {
		cc.gameDemand[i] = 0
	}
	for _, hosted := range srv.Hosted {
		gi, known := c.gameIdx[hosted.Spec.Name]
		if !known {
			continue
		}
		var sum float64
		if ctl, native := hosted.Controller.(*Controller); native {
			es := &c.scratch
			es.curve = ctl.pr.ForecastDemandInto(h, es.curve, &es.fc)
			n := h
			if len(es.curve) < n {
				n = len(es.curve)
			}
			for t := 0; t < n; t++ {
				sum += worstFrac(es.curve[t], srv.Capacity)
			}
		} else {
			// Foreign controller: the conservative flat timeline refresh
			// uses — the session holds its current request for the whole
			// horizon.
			sum = worstFrac(hosted.Request, srv.Capacity) * float64(h)
		}
		cc.gameDemand[gi] += sum / float64(h)
	}
	cc.loadValid = true
}

// FleetLoadInto implements platform.FleetSummarizer: the extended per-game
// cluster summary, computed incrementally. Dirty slots (revision mismatch,
// drain flip, membership change, horizon move) refresh their cache, refill
// the load memo, rewrite their leaf and refold its root path; clean slots
// cost only the revision probes in slotDirty. Out's GameDemand storage is
// reused across polls and Games aliases the policy's immutable sorted list,
// so a steady-state poll performs zero heap allocations. Like Admit, Score
// and ClusterLoad this is a serial entry point.
func (c *CoCG) FleetLoadInto(servers []*platform.Server, out *platform.FleetLoad) bool {
	c.sweepCaches(servers)
	h := c.cfg.HorizonFrames
	g := len(c.games)
	a := &c.acct
	a.ensure(len(servers), g)

	for i, srv := range servers {
		sl := &a.slots[i]
		if !c.slotDirty(sl, srv, h) {
			continue
		}
		cc := c.caches[srv]
		if cc == nil {
			cc = &serverCache{}
			c.caches[srv] = cc
		}
		c.refresh(cc, srv, h, &c.scratch)
		c.serverLoadMemo(cc, srv, h)
		c.stampSlot(sl, srv, cc, h)
		if srv.Draining {
			a.setLeaf(i, 0, cc.gameDemand, 0, 0, 1)
		} else {
			idle := int32(0)
			if srv.NumHosted() == 0 {
				idle = 1
			}
			a.setLeaf(i, cc.headroom, cc.gameDemand, 1, idle, 0)
		}
		a.foldPath(i)
	}
	for i := len(servers); i < a.used; i++ {
		a.clearLeaf(i)
		a.foldPath(i)
	}
	a.used = len(servers)

	out.Servers = len(servers)
	out.Active = int(a.active[1])
	out.Idle = int(a.idle[1])
	out.Draining = int(a.drain[1])
	if out.Active > 0 {
		out.MeanHeadroom = a.head[1] / float64(out.Active)
	} else {
		out.MeanHeadroom = 0 // every server draining: no admittable capacity
	}
	out.Games = c.games
	out.GameDemand = append(out.GameDemand[:0], a.demand[g:2*g]...)
	return true
}

// FleetLoadFull is the from-scratch reference: it invalidates every load
// memo and rebuilds the summation tree whole, then summarizes. Because the
// tree's topology and fold order are fixed, the result is bit-identical to
// the incremental path — the equivalence tests enforce exactly that.
func (c *CoCG) FleetLoadFull(servers []*platform.Server, out *platform.FleetLoad) bool {
	for _, srv := range servers {
		if cc := c.caches[srv]; cc != nil {
			cc.loadValid = false
		}
	}
	c.acct = fleetAccountant{}
	return c.FleetLoadInto(servers, out)
}

// cacheSweepSlack is how far past twice the live fleet size the cache map may
// grow before sweepCaches evicts entries for departed servers; the slack
// keeps small fleets from sweeping on every membership wiggle.
const cacheSweepSlack = 32

// sweepCaches evicts cache entries whose server is no longer in the fleet.
// The map keys on server identity, so without eviction a removed or replaced
// server pins its cache (and its forecast timeline storage) forever — a real
// leak once autoscaling makes membership churn routine. The sweep is
// amortized: it runs only when the map has outgrown the live fleet by more
// than half, stamps the live entries with a fresh epoch, and deletes the
// rest.
func (c *CoCG) sweepCaches(servers []*platform.Server) {
	if len(c.caches) <= 2*len(servers)+cacheSweepSlack {
		return
	}
	c.cacheEpoch++
	for _, srv := range servers {
		if cc := c.caches[srv]; cc != nil {
			cc.seen = c.cacheEpoch
		}
	}
	for srv, cc := range c.caches {
		if cc.seen != c.cacheEpoch {
			delete(c.caches, srv)
		}
	}
}
