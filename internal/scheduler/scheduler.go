// Package scheduler implements CoCG's complementary resource scheduler
// (Section IV-C): the distributor (Algorithm 1) that admits a game onto a
// busy server only when the predicted per-game timelines never overlap past
// capacity, and the regulator that resolves residual spikes by extending
// loading stages and exploiting the short/long game distinction.
//
// A Policy reads the shared Trained bundle (profiles and models, immutable
// after training) but keeps per-cluster mutable state, so each concurrently
// simulated cluster needs its own Policy instance — core.System.NewCluster
// constructs one per call for exactly this reason. The policy draws no
// randomness of its own: given the same arrival stream and seeds, every
// admission and regulation decision replays identically, which is what lets
// the experiment harness fan out whole simulations across goroutines without
// changing any figure.
package scheduler

import (
	"fmt"
	"sort"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/predictor"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Config tunes the CoCG policy.
type Config struct {
	// SafetyMargin keeps the admitted worst-case total this many percent
	// points below capacity; Fig. 9 keeps combined utilization under 95 %,
	// so the default is 5.
	SafetyMargin float64
	// HorizonFrames is how far ahead (in 5-second frames) the distributor
	// sums predicted timelines; <=0 means 120 frames (10 minutes).
	HorizonFrames int
	// LoadingFloor is the fraction of a loading game's request the
	// regulator never cuts below, so loading always progresses; <=0 means
	// 0.35.
	LoadingFloor float64
	// MinMeanSat is the minimum predicted mean demand-satisfaction over the
	// admission window. Section IV-D's operators accept bounded degradation
	// from brief peak interleaving (which the regulator then spreads over
	// loading stages), but not sustained oversubscription. <=0 means 0.92.
	MinMeanSat float64
	// FPSSafety scales the hard per-game FPS floor: every co-located game
	// must be predicted to keep FPSSafety × 30 FPS even at the worst
	// predicted overlap (the paper's minimum playable frame rate,
	// Section V-C2). <=0 means 1.15.
	FPSSafety float64
	// DisableLoadingSteal turns the regulator's loading-time extension off
	// (ablation).
	DisableLoadingSteal bool
	// Predictor configures the per-session predictors.
	Predictor predictor.Config
}

func (c Config) withDefaults() Config {
	if c.SafetyMargin <= 0 {
		c.SafetyMargin = 5
	}
	if c.HorizonFrames <= 0 {
		c.HorizonFrames = 120
	}
	if c.LoadingFloor <= 0 {
		c.LoadingFloor = 0.35
	}
	if c.MinMeanSat <= 0 {
		c.MinMeanSat = 0.95
	}
	if c.FPSSafety <= 0 {
		c.FPSSafety = 1.15
	}
	return c
}

// CoCG is the paper's scheduling policy over a set of offline-trained games.
//
// Concurrency: Admit and Score are serial entry points (they may insert into
// the forecast-cache map). The cluster's parallel placement scan instead
// calls PreparePlacement once, serially, then ScoreScratch concurrently —
// after preparation every cache struct exists, the scan only reads the map,
// and each server's cache is touched by exactly one scoring goroutine.
type CoCG struct {
	trained map[string]*predictor.Trained
	cfg     Config

	// caches holds one aggregate-forecast cache per server this policy has
	// evaluated. A Policy is per-cluster (see the package comment), so the
	// map can key on server identity. Entries for servers that have left the
	// fleet are evicted by sweepCaches, keyed on the epoch stamp below.
	caches map[*platform.Server]*serverCache
	// cacheEpoch is bumped by each sweep; live caches are stamped with it so
	// stale entries (whose stamp lags) can be deleted.
	cacheEpoch uint64
	// scratch serves the serial entry points (Admit, Score).
	scratch EvalScratch

	// games lists the trained game names in sorted order; gameIdx inverts it.
	// The fleet accountant's per-game demand columns use these indices, and
	// FleetLoad.Games aliases the slice (immutable after New).
	games   []string
	gameIdx map[string]int
	// acct is the incremental fleet accountant (see accountant.go); fleet is
	// the reusable output ClusterLoad delegates through.
	acct  fleetAccountant
	fleet platform.FleetLoad
}

// New builds the policy from the offline training bundles of every game the
// platform may host.
func New(bundles []*predictor.Trained, cfg Config) *CoCG {
	m := make(map[string]*predictor.Trained, len(bundles))
	games := make([]string, 0, len(bundles))
	for _, b := range bundles {
		if _, dup := m[b.Spec.Name]; !dup {
			games = append(games, b.Spec.Name)
		}
		m[b.Spec.Name] = b
	}
	sort.Strings(games)
	idx := make(map[string]int, len(games))
	for i, g := range games {
		idx[g] = i
	}
	return &CoCG{
		trained: m,
		cfg:     cfg.withDefaults(),
		caches:  map[*platform.Server]*serverCache{},
		games:   games,
		gameIdx: idx,
	}
}

// EvalScratch owns the reusable buffers one admission-evaluating goroutine
// needs: the forecast scratch and the per-hosted curve buffer a cache refill
// reads each hosted game's timeline into. A zero value is ready to use; a
// scratch must not be shared between concurrent evaluations.
type EvalScratch struct {
	fc    predictor.ForecastScratch
	curve []resources.Vector
}

// serverCache is the distributor's per-server aggregate forecast: the hosted
// games' summed demand timeline plus the peak/floor aggregates Algorithm 1's
// guards read, so evaluating a candidate only adds the candidate's own curve
// instead of re-forecasting every hosted session per candidate per server.
//
// Validity is stamped, never pushed: the cache holds the server membership
// revision and each hosted predictor's forecast revision at fill time, and
// is rebuilt whenever any stamp (or the horizon) disagrees — admissions and
// departures bump Server.Rev, completed detection frames bump ForecastRev,
// and nothing else can change a forecast.
type serverCache struct {
	valid bool
	// cacheable is false when any hosted session has a foreign controller or
	// an untrained spec: those paths read hosted.Request, which mutates every
	// tick outside any revision counter, so the cache is rebuilt per
	// evaluation (exactly the old recompute, with reused storage).
	cacheable  bool
	rev        uint64
	horizon    int
	hostedRevs []uint64

	// hostedFloor is the max FPS-floor over hosted games (order-independent,
	// so caching it is exact).
	hostedFloor float64
	// hostedPeaks holds each hosted game's worst-case demand in hosted
	// order; the exact peak-depth guard re-sums them per candidate to keep
	// the original summation order.
	hostedPeaks []resources.Vector
	// sumPeaks is the order-insensitive total of hostedPeaks backing the
	// O(1) pre-filter; it may differ from the exact ordered sum by float
	// rounding, which the pre-filter's slack absorbs.
	sumPeaks resources.Vector
	// total is the hosted games' summed demand timeline, horizon frames
	// long, accumulated in hosted order (float addition order matters).
	total []resources.Vector

	// memo caches evaluate's verdict per candidate game under the current
	// stamps: Algorithm 1 is a pure function of the stamped server state and
	// the candidate's immutable training bundle, so within one set of stamps
	// repeated pending arrivals of the same game cost O(1) after the first.
	memo map[string]evalMemo

	// seen stamps the cache with the epoch of the last sweep that found its
	// server in the fleet; sweepCaches evicts entries whose stamp lags.
	seen uint64

	// Fleet-accounting memo (see accountant.go): the server's headroom and
	// per-game demand contributions under the stamps above. loadValid is
	// cleared on every rebuild — the admission path never pays for it; the
	// accountant computes it lazily on first summary after a change.
	loadValid  bool
	headroom   float64
	gameDemand []float64
}

// evalMemo is one memoized evaluate verdict.
type evalMemo struct {
	ok      bool
	meanSat float64
}

// peakSlack bounds the summation-order rounding between sumPeaks and the
// exact ordered peak sum: the pre-filter only skips a server when it exceeds
// the scaled capacity by more than this, so every skip is one the exact
// guard below would also reject.
const peakSlack = 1e-6

// PreparePlacement implements platform.PlacementPreparer: it creates the
// cache structs for every server serially, so the concurrent scoring scan
// never writes the map.
func (c *CoCG) PreparePlacement(servers []*platform.Server) {
	c.sweepCaches(servers)
	for _, srv := range servers {
		if _, ok := c.caches[srv]; !ok {
			c.caches[srv] = &serverCache{}
		}
	}
}

// refresh brings srv's cache up to date, rebuilding the aggregates when any
// revision stamp (or the horizon) disagrees. The rebuild walks srv.Hosted
// once in order, so every cached float is produced by the exact operation
// sequence the uncached evaluate used.
func (c *CoCG) refresh(cc *serverCache, srv *platform.Server, h int, es *EvalScratch) {
	if cc.valid && cc.cacheable && cc.rev == srv.Rev() && cc.horizon == h && c.stampsMatch(cc, srv) {
		return
	}
	cc.rev = srv.Rev()
	cc.horizon = h
	cc.cacheable = true
	cc.loadValid = false
	clear(cc.memo)
	cc.hostedRevs = cc.hostedRevs[:0]
	cc.hostedPeaks = cc.hostedPeaks[:0]
	cc.hostedFloor = 0
	cc.sumPeaks = resources.Zero
	if cap(cc.total) < h {
		cc.total = make([]resources.Vector, h)
	}
	cc.total = cc.total[:h]
	for t := range cc.total {
		cc.total[t] = resources.Zero
	}
	for _, hosted := range srv.Hosted {
		if f := c.cfg.FPSSafety * 30 / hosted.Spec.EffectiveFPS(); f > cc.hostedFloor {
			cc.hostedFloor = f
		}
		hb, trainedOK := c.trained[hosted.Spec.Name]
		ctl, native := hosted.Controller.(*Controller)
		if !trainedOK || !native {
			cc.cacheable = false
		}
		var peak resources.Vector
		if trainedOK {
			peak = hb.Profile.PeakDemand()
		} else {
			peak = hosted.Request
		}
		cc.hostedPeaks = append(cc.hostedPeaks, peak)
		cc.sumPeaks = cc.sumPeaks.Add(peak)
		if native {
			es.curve = ctl.pr.ForecastDemandInto(h, es.curve, &es.fc)
			for t := 0; t < h && t < len(es.curve); t++ {
				cc.total[t] = cc.total[t].Add(es.curve[t])
			}
			cc.hostedRevs = append(cc.hostedRevs, ctl.pr.ForecastRev())
		} else {
			// Foreign controller: assume its game holds its current request
			// forever (the conservative flat timeline).
			for t := 0; t < h; t++ {
				cc.total[t] = cc.total[t].Add(hosted.Request)
			}
			cc.hostedRevs = append(cc.hostedRevs, 0)
		}
	}
	cc.valid = true
}

// stampsMatch reports whether every hosted predictor's forecast revision
// still equals its fill-time stamp.
func (c *CoCG) stampsMatch(cc *serverCache, srv *platform.Server) bool {
	if len(cc.hostedRevs) != len(srv.Hosted) {
		return false
	}
	for i, hosted := range srv.Hosted {
		ctl, ok := hosted.Controller.(*Controller)
		if !ok || ctl.pr.ForecastRev() != cc.hostedRevs[i] {
			return false
		}
	}
	return true
}

// Name implements platform.Policy.
func (c *CoCG) Name() string { return "CoCG" }

// Controller is the per-session agent: a thin adapter from the platform's
// per-second ticks to the predictor's frame loop.
type Controller struct {
	pr *predictor.Predictor
}

// Name implements platform.Controller.
func (ctl *Controller) Name() string { return "CoCG" }

// Tick implements platform.Controller.
func (ctl *Controller) Tick(util resources.Vector) resources.Vector {
	ctl.pr.Observe(util)
	return ctl.pr.Alloc()
}

// Loading implements platform.Controller.
func (ctl *Controller) Loading() bool { return ctl.pr.Loading() }

// Predictor exposes the wrapped predictor (experiments inspect it).
func (ctl *Controller) Predictor() *predictor.Predictor { return ctl.pr }

// NewController implements platform.Policy.
func (c *CoCG) NewController(spec *gamesim.GameSpec, habit int64) (platform.Controller, error) {
	b, ok := c.trained[spec.Name]
	if !ok {
		return nil, fmt.Errorf("scheduler: no trained bundle for %s", spec.Name)
	}
	pr, err := b.NewSessionPredictorForHabit(habit, c.cfg.Predictor)
	if err != nil {
		return nil, err
	}
	return &Controller{pr: pr}, nil
}

// Admit implements platform.Policy: Algorithm 1. It sums each hosted game's
// predicted demand timeline with the arriving game's typical footprint and
// admits when (a) even the worst predicted overlap leaves every game above
// its minimum playable frame rate, and (b) the mean predicted satisfaction
// over the candidate's lifetime stays high — Section IV-D's operators accept
// brief peak interleaving (which the regulator staggers by stretching
// loading stages) but not sustained oversubscription. Because a short
// game's whole footprint can fit inside a long game's low-consumption
// window, the "distinguish game length" strategy of Section IV-C2 falls out
// of the same test.
//
//cocg:hot
func (c *CoCG) Admit(srv *platform.Server, spec *gamesim.GameSpec, habit int64) bool {
	ok, _ := c.evaluate(srv, spec, &c.scratch)
	return ok
}

// Score implements the optional placement scorer: among servers that can
// admit the game, the cluster prefers the one whose predicted timelines are
// most complementary to the arrival (highest predicted mean satisfaction).
func (c *CoCG) Score(srv *platform.Server, spec *gamesim.GameSpec, habit int64) (float64, bool) {
	return c.scoreWith(srv, spec, &c.scratch)
}

// NewScratch implements platform.ScratchScorer.
func (c *CoCG) NewScratch() any { return &EvalScratch{} }

// ScoreScratch implements platform.ScratchScorer: Score with all temporary
// storage drawn from the scoring goroutine's own scratch.
func (c *CoCG) ScoreScratch(srv *platform.Server, spec *gamesim.GameSpec, habit int64, scratch any) (float64, bool) {
	return c.scoreWith(srv, spec, scratch.(*EvalScratch))
}

func (c *CoCG) scoreWith(srv *platform.Server, spec *gamesim.GameSpec, es *EvalScratch) (float64, bool) {
	ok, meanSat := c.evaluate(srv, spec, es)
	if !ok {
		return 0, false
	}
	// Prefer busier servers at equal satisfaction (consolidation), so new
	// servers stay free for games that genuinely need headroom.
	return meanSat + 0.001*float64(srv.NumHosted()), true
}

// evaluate runs the Algorithm 1 feasibility test and returns the predicted
// mean satisfaction over the candidate's lifetime. It reads the server's
// cached aggregate forecast (refreshed on revision mismatch), so the
// steady-state cost per candidate is the horizon loop alone — and zero heap
// allocations. Every float it produces is computed by the same operation
// sequence as the original per-call recompute, so admission decisions are
// bit-identical to the uncached implementation.
func (c *CoCG) evaluate(srv *platform.Server, spec *gamesim.GameSpec, es *EvalScratch) (bool, float64) {
	b, ok := c.trained[spec.Name]
	if !ok {
		return false, 0
	}
	h := c.cfg.HorizonFrames

	cc := c.caches[srv]
	if cc == nil {
		// Serial entry (Admit/Score outside a prepared placement scan): safe
		// to create the cache here. The parallel scan never reaches this —
		// PreparePlacement pre-created every entry.
		cc = &serverCache{}
		c.caches[srv] = cc
	}
	c.refresh(cc, srv, h, es)

	if m, hit := cc.memo[spec.Name]; hit {
		return m.ok, m.meanSat
	}
	admitted, meanSat := c.verdict(cc, srv, b, spec)
	if cc.memo == nil {
		cc.memo = make(map[string]evalMemo, 8)
	}
	cc.memo[spec.Name] = evalMemo{ok: admitted, meanSat: meanSat}
	return admitted, meanSat
}

// verdict is the uncached Algorithm 1 feasibility test against a refreshed
// server cache.
func (c *CoCG) verdict(cc *serverCache, srv *platform.Server, b *predictor.Trained, spec *gamesim.GameSpec) (bool, float64) {
	h := cc.horizon

	// The hard satisfaction floor: the most demanding frame lock among the
	// games that would share the server. A 60 FPS-locked game needs half
	// its demand satisfied to stay above 30 FPS; an uncapped 200 FPS game
	// tolerates far deeper throttling.
	satFloor := c.cfg.FPSSafety * 30 / spec.EffectiveFPS()
	if cc.hostedFloor > satFloor {
		satFloor = cc.hostedFloor
	}
	if satFloor > 1 {
		return false, 0
	}

	// Peak-depth guard: prediction staggers peaks, but it cannot guarantee
	// they never meet (Section IV-D). If every co-located game peaked at
	// once, satisfaction would be capacity / Σpeaks; that worst case must
	// stay above the FPS floor, or a drift in long sessions turns into
	// sustained violations the regulator cannot fix (execution stages have
	// no time to steal). This is what leaves some heavy pairs "unable to
	// run on the same machine" (Section V-B2).
	//
	// Pre-filter first: the cached order-insensitive peak total makes the
	// guard O(1) per dimension, skipping provably-infeasible servers before
	// any per-hosted work. The slack keeps the skip sound under summation
	// rounding; anything that passes still faces the exact ordered guard.
	candPeak := b.Profile.PeakDemand()
	scaledCap := srv.Capacity.Scale(2 - satFloor)
	for d := range candPeak {
		if candPeak[d]+cc.sumPeaks[d] > scaledCap[d]+peakSlack {
			return false, 0
		}
	}
	peakSum := candPeak
	for _, peak := range cc.hostedPeaks {
		peakSum = peakSum.Add(peak)
	}
	if !peakSum.Fits(scaledCap) {
		return false, 0
	}

	// The arriving game's expected footprint, from its profiling corpus,
	// overlaid on the cached hosted-demand timeline.
	cand := b.TypicalCurve
	limit := srv.Capacity.Sub(resources.Uniform(c.cfg.SafetyMargin))
	// The judgment window is the candidate's expected lifetime (capped by
	// the horizon): overlaps after it has finished are irrelevant.
	window := h
	if len(cand) > 0 && len(cand) < window {
		window = len(cand)
	}
	var satSum float64
	for t := 0; t < window; t++ {
		sum := cc.total[t]
		if t < len(cand) {
			sum = sum.Add(cand[t])
		} else {
			sum = sum.Add(b.Profile.PeakDemand())
		}
		// Predicted satisfaction under proportional scaling at this moment.
		sat := 1.0
		for d := range sum {
			if sum[d] > limit[d] && sum[d] > 0 {
				if s := limit[d] / sum[d]; s < sat {
					sat = s
				}
			}
		}
		if sat < satFloor {
			return false, 0
		}
		satSum += sat
	}
	meanSat := satSum / float64(window)
	return meanSat >= c.cfg.MinMeanSat, meanSat
}

// ClusterLoad implements platform.LoadSummarizer: the per-cluster summary
// the coordinator tier routes on. A server's headroom is 1 minus its worst
// predicted per-dimension utilization fraction over the horizon (clamped at
// 0); the cluster's headroom is the mean over non-draining servers. Since
// PR 10 it delegates to the incremental fleet accountant (accountant.go), so
// a steady-state poll costs one revision probe per server instead of a
// horizon×dims rescan. Like Admit and Score this is a serial entry point:
// it may refresh caches through the policy's own scratch.
func (c *CoCG) ClusterLoad(servers []*platform.Server) (float64, bool) {
	c.FleetLoadInto(servers, &c.fleet)
	return c.fleet.MeanHeadroom, true
}

// ClusterLoadFullScan is the pre-accountant ClusterLoad, kept verbatim as
// the benchmark baseline and the reference the equivalence tests compare the
// incremental path against (linear accumulation order, so means agree with
// the tree's pairwise order to rounding, not bitwise — the bitwise gate is
// FleetLoadFull, which rebuilds the same tree from scratch).
func (c *CoCG) ClusterLoadFullScan(servers []*platform.Server) (float64, bool) {
	h := c.cfg.HorizonFrames
	var sum float64
	n := 0
	for _, srv := range servers {
		if srv.Draining {
			continue
		}
		cc := c.caches[srv]
		if cc == nil {
			cc = &serverCache{}
			c.caches[srv] = cc
		}
		c.refresh(cc, srv, h, &c.scratch)
		peak := 0.0
		for t := range cc.total {
			for d := range cc.total[t] {
				if capd := srv.Capacity[d]; capd > 0 {
					if f := cc.total[t][d] / capd; f > peak {
						peak = f
					}
				}
			}
		}
		head := 1 - peak
		if head < 0 {
			head = 0
		}
		sum += head
		n++
	}
	if n == 0 {
		return 0, true // every server draining: no admittable capacity
	}
	return sum / float64(n), true
}

// Regulate implements platform.Policy: when the hosted games' combined
// requests head past capacity, the regulator first throttles games that are
// loading — users tolerate a longer loading screen far better than dropped
// frames at a peak (Observation 4) — and only the platform's proportional
// scaling touches executing games if that is not enough.
func (c *CoCG) Regulate(srv *platform.Server) {
	if c.cfg.DisableLoadingSteal {
		return
	}
	limit := srv.Capacity.Sub(resources.Uniform(c.cfg.SafetyMargin))
	total := srv.RequestTotal()
	over := total.Sub(limit).ClampNonNegative()
	if over.IsZero() {
		return
	}
	for _, hosted := range srv.Hosted {
		if over.IsZero() {
			break
		}
		if !hosted.Controller.Loading() {
			continue
		}
		floor := hosted.Request.Scale(c.cfg.LoadingFloor)
		reducible := hosted.Request.Sub(floor).ClampNonNegative()
		cut := reducible.Min(over)
		hosted.Request = hosted.Request.Sub(cut)
		over = over.Sub(cut).ClampNonNegative()
	}
}

// ConcurrentTickSafe implements platform.ConcurrentTicker: within a tick,
// Regulate and the per-session controllers touch only the server they are
// handed (requests, hosted predictor state) — never the forecast caches,
// which are read and refreshed only from the serial placement entry points
// (Admit, Score, ClusterLoad, PreparePlacement). Distinct servers may
// therefore tick on distinct goroutines.
//
// CoCG deliberately does not implement NoopRegulator — loading-steal
// regulation must see every second — and its controllers adapt to measured
// utilization, so the event-driven driver always ticks CoCG servers
// per-second; only the parallel fan-out applies.
func (c *CoCG) ConcurrentTickSafe() bool { return true }

// PredictionLatencyFor reports the simulated prediction latency for a game's
// active models (Fig. 12).
func (c *CoCG) PredictionLatencyFor(game string) (simclock.Seconds, bool) {
	b, ok := c.trained[game]
	if !ok {
		return 0, false
	}
	var worst simclock.Seconds
	for _, m := range b.Models {
		if l := predictor.PredictionLatency(m, b.Profile.NumStageTypes()); l > worst {
			worst = l
		}
	}
	return worst, true
}
