// Package scheduler implements CoCG's complementary resource scheduler
// (Section IV-C): the distributor (Algorithm 1) that admits a game onto a
// busy server only when the predicted per-game timelines never overlap past
// capacity, and the regulator that resolves residual spikes by extending
// loading stages and exploiting the short/long game distinction.
//
// A Policy reads the shared Trained bundle (profiles and models, immutable
// after training) but keeps per-cluster mutable state, so each concurrently
// simulated cluster needs its own Policy instance — core.System.NewCluster
// constructs one per call for exactly this reason. The policy draws no
// randomness of its own: given the same arrival stream and seeds, every
// admission and regulation decision replays identically, which is what lets
// the experiment harness fan out whole simulations across goroutines without
// changing any figure.
package scheduler

import (
	"fmt"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/predictor"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Config tunes the CoCG policy.
type Config struct {
	// SafetyMargin keeps the admitted worst-case total this many percent
	// points below capacity; Fig. 9 keeps combined utilization under 95 %,
	// so the default is 5.
	SafetyMargin float64
	// HorizonFrames is how far ahead (in 5-second frames) the distributor
	// sums predicted timelines; <=0 means 120 frames (10 minutes).
	HorizonFrames int
	// LoadingFloor is the fraction of a loading game's request the
	// regulator never cuts below, so loading always progresses; <=0 means
	// 0.35.
	LoadingFloor float64
	// MinMeanSat is the minimum predicted mean demand-satisfaction over the
	// admission window. Section IV-D's operators accept bounded degradation
	// from brief peak interleaving (which the regulator then spreads over
	// loading stages), but not sustained oversubscription. <=0 means 0.92.
	MinMeanSat float64
	// FPSSafety scales the hard per-game FPS floor: every co-located game
	// must be predicted to keep FPSSafety × 30 FPS even at the worst
	// predicted overlap (the paper's minimum playable frame rate,
	// Section V-C2). <=0 means 1.15.
	FPSSafety float64
	// DisableLoadingSteal turns the regulator's loading-time extension off
	// (ablation).
	DisableLoadingSteal bool
	// Predictor configures the per-session predictors.
	Predictor predictor.Config
}

func (c Config) withDefaults() Config {
	if c.SafetyMargin <= 0 {
		c.SafetyMargin = 5
	}
	if c.HorizonFrames <= 0 {
		c.HorizonFrames = 120
	}
	if c.LoadingFloor <= 0 {
		c.LoadingFloor = 0.35
	}
	if c.MinMeanSat <= 0 {
		c.MinMeanSat = 0.95
	}
	if c.FPSSafety <= 0 {
		c.FPSSafety = 1.15
	}
	return c
}

// CoCG is the paper's scheduling policy over a set of offline-trained games.
type CoCG struct {
	trained map[string]*predictor.Trained
	cfg     Config
}

// New builds the policy from the offline training bundles of every game the
// platform may host.
func New(bundles []*predictor.Trained, cfg Config) *CoCG {
	m := make(map[string]*predictor.Trained, len(bundles))
	for _, b := range bundles {
		m[b.Spec.Name] = b
	}
	return &CoCG{trained: m, cfg: cfg.withDefaults()}
}

// Name implements platform.Policy.
func (c *CoCG) Name() string { return "CoCG" }

// Controller is the per-session agent: a thin adapter from the platform's
// per-second ticks to the predictor's frame loop.
type Controller struct {
	pr *predictor.Predictor
}

// Name implements platform.Controller.
func (ctl *Controller) Name() string { return "CoCG" }

// Tick implements platform.Controller.
func (ctl *Controller) Tick(util resources.Vector) resources.Vector {
	ctl.pr.Observe(util)
	return ctl.pr.Alloc()
}

// Loading implements platform.Controller.
func (ctl *Controller) Loading() bool { return ctl.pr.Loading() }

// Predictor exposes the wrapped predictor (experiments inspect it).
func (ctl *Controller) Predictor() *predictor.Predictor { return ctl.pr }

// NewController implements platform.Policy.
func (c *CoCG) NewController(spec *gamesim.GameSpec, habit int64) (platform.Controller, error) {
	b, ok := c.trained[spec.Name]
	if !ok {
		return nil, fmt.Errorf("scheduler: no trained bundle for %s", spec.Name)
	}
	pr, err := b.NewSessionPredictorForHabit(habit, c.cfg.Predictor)
	if err != nil {
		return nil, err
	}
	return &Controller{pr: pr}, nil
}

// Admit implements platform.Policy: Algorithm 1. It sums each hosted game's
// predicted demand timeline with the arriving game's typical footprint and
// admits when (a) even the worst predicted overlap leaves every game above
// its minimum playable frame rate, and (b) the mean predicted satisfaction
// over the candidate's lifetime stays high — Section IV-D's operators accept
// brief peak interleaving (which the regulator staggers by stretching
// loading stages) but not sustained oversubscription. Because a short
// game's whole footprint can fit inside a long game's low-consumption
// window, the "distinguish game length" strategy of Section IV-C2 falls out
// of the same test.
func (c *CoCG) Admit(srv *platform.Server, spec *gamesim.GameSpec, habit int64) bool {
	ok, _ := c.evaluate(srv, spec)
	return ok
}

// Score implements the optional placement scorer: among servers that can
// admit the game, the cluster prefers the one whose predicted timelines are
// most complementary to the arrival (highest predicted mean satisfaction).
func (c *CoCG) Score(srv *platform.Server, spec *gamesim.GameSpec, habit int64) (float64, bool) {
	ok, meanSat := c.evaluate(srv, spec)
	if !ok {
		return 0, false
	}
	// Prefer busier servers at equal satisfaction (consolidation), so new
	// servers stay free for games that genuinely need headroom.
	return meanSat + 0.001*float64(srv.NumHosted()), true
}

// evaluate runs the Algorithm 1 feasibility test and returns the predicted
// mean satisfaction over the candidate's lifetime.
func (c *CoCG) evaluate(srv *platform.Server, spec *gamesim.GameSpec) (bool, float64) {
	b, ok := c.trained[spec.Name]
	if !ok {
		return false, 0
	}
	h := c.cfg.HorizonFrames

	// The hard satisfaction floor: the most demanding frame lock among the
	// games that would share the server. A 60 FPS-locked game needs half
	// its demand satisfied to stay above 30 FPS; an uncapped 200 FPS game
	// tolerates far deeper throttling.
	satFloor := c.cfg.FPSSafety * 30 / spec.EffectiveFPS()
	for _, hosted := range srv.Hosted {
		if f := c.cfg.FPSSafety * 30 / hosted.Spec.EffectiveFPS(); f > satFloor {
			satFloor = f
		}
	}
	if satFloor > 1 {
		return false, 0
	}

	// Peak-depth guard: prediction staggers peaks, but it cannot guarantee
	// they never meet (Section IV-D). If every co-located game peaked at
	// once, satisfaction would be capacity / Σpeaks; that worst case must
	// stay above the FPS floor, or a drift in long sessions turns into
	// sustained violations the regulator cannot fix (execution stages have
	// no time to steal). This is what leaves some heavy pairs "unable to
	// run on the same machine" (Section V-B2).
	peakSum := b.Profile.PeakDemand()
	for _, hosted := range srv.Hosted {
		if hb, ok := c.trained[hosted.Spec.Name]; ok {
			peakSum = peakSum.Add(hb.Profile.PeakDemand())
		} else {
			peakSum = peakSum.Add(hosted.Request)
		}
	}
	if !peakSum.Fits(srv.Capacity.Scale(2 - satFloor)) {
		return false, 0
	}

	// Hosted games' predicted demand timelines.
	total := make([]resources.Vector, h)
	for _, hosted := range srv.Hosted {
		ctl, ok := hosted.Controller.(*Controller)
		if !ok {
			// Foreign controller: assume its game holds its current request
			// forever (the conservative flat timeline).
			for t := 0; t < h; t++ {
				total[t] = total[t].Add(hosted.Request)
			}
			continue
		}
		curve := ctl.pr.ForecastDemand(h)
		for t := 0; t < h && t < len(curve); t++ {
			total[t] = total[t].Add(curve[t])
		}
	}
	// The arriving game's expected footprint, from its profiling corpus.
	cand := b.TypicalCurve
	limit := srv.Capacity.Sub(resources.Uniform(c.cfg.SafetyMargin))
	// The judgment window is the candidate's expected lifetime (capped by
	// the horizon): overlaps after it has finished are irrelevant.
	window := h
	if len(cand) > 0 && len(cand) < window {
		window = len(cand)
	}
	var satSum float64
	for t := 0; t < window; t++ {
		sum := total[t]
		if t < len(cand) {
			sum = sum.Add(cand[t])
		} else {
			sum = sum.Add(b.Profile.PeakDemand())
		}
		// Predicted satisfaction under proportional scaling at this moment.
		sat := 1.0
		for d := range sum {
			if sum[d] > limit[d] && sum[d] > 0 {
				if s := limit[d] / sum[d]; s < sat {
					sat = s
				}
			}
		}
		if sat < satFloor {
			return false, 0
		}
		satSum += sat
	}
	meanSat := satSum / float64(window)
	return meanSat >= c.cfg.MinMeanSat, meanSat
}

// Regulate implements platform.Policy: when the hosted games' combined
// requests head past capacity, the regulator first throttles games that are
// loading — users tolerate a longer loading screen far better than dropped
// frames at a peak (Observation 4) — and only the platform's proportional
// scaling touches executing games if that is not enough.
func (c *CoCG) Regulate(srv *platform.Server) {
	if c.cfg.DisableLoadingSteal {
		return
	}
	limit := srv.Capacity.Sub(resources.Uniform(c.cfg.SafetyMargin))
	total := srv.RequestTotal()
	over := total.Sub(limit).ClampNonNegative()
	if over.IsZero() {
		return
	}
	for _, hosted := range srv.Hosted {
		if over.IsZero() {
			break
		}
		if !hosted.Controller.Loading() {
			continue
		}
		floor := hosted.Request.Scale(c.cfg.LoadingFloor)
		reducible := hosted.Request.Sub(floor).ClampNonNegative()
		cut := reducible.Min(over)
		hosted.Request = hosted.Request.Sub(cut)
		over = over.Sub(cut).ClampNonNegative()
	}
}

// PredictionLatencyFor reports the simulated prediction latency for a game's
// active models (Fig. 12).
func (c *CoCG) PredictionLatencyFor(game string) (simclock.Seconds, bool) {
	b, ok := c.trained[game]
	if !ok {
		return 0, false
	}
	var worst simclock.Seconds
	for _, m := range b.Models {
		if l := predictor.PredictionLatency(m, b.Profile.NumStageTypes()); l > worst {
			worst = l
		}
	}
	return worst, true
}
