package platform

import (
	"fmt"

	"cocg/internal/parallel"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Event-driven cluster advancement.
//
// The legacy loop pays O(sessions) every virtual second even when nothing
// happens. This driver advances between *stop points* — the simulation end,
// the next placement frame while arrivals are queued, and each scheduled
// arrival's submission second — and lets every server cross the span in
// bulk. A server whose policy provably cannot intervene (NoopRegulator, all
// controllers steady, requests covering every session's demand envelope
// within capacity) advances each session with Session.StepBulk and runs one
// real per-second tick at the window's last second; that closing tick
// performs the full grant/regulate/sweep bookkeeping, which is what makes
// the whole construction bitwise-identical to ticking every second (see
// docs/PERFORMANCE.md for the certificate).

// tickChunk is the granularity of the parallel per-server fan-out. Like the
// placement scan, fixed chunks keep the work decomposition — and therefore
// every per-server result — independent of the worker count.
const tickChunk = 32

// TickSpan advances every server by span seconds and moves the cluster
// clock. Placement is not attempted inside the span: callers must choose
// spans that stop at every frame boundary where pending arrivals could
// place (RunEvented does).
func (c *Cluster) TickSpan(span simclock.Seconds) {
	if span <= 0 {
		return
	}
	base := c.Clock.Now()
	jobs := c.Jobs
	ct, okCT := c.Policy.(ConcurrentTicker)
	if jobs > 1 && okCT && ct.ConcurrentTickSafe() && len(c.Servers) > 1 {
		parallel.ForChunksOf(jobs, len(c.Servers), tickChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Servers[i].advanceSpan(c.Policy, base, span)
			}
		})
	} else {
		for _, srv := range c.Servers {
			srv.advanceSpan(c.Policy, base, span)
		}
	}
	c.Clock.Advance(span)
}

// RunEvented advances the cluster for d seconds, feeding it the pregenerated
// arrival schedule (ascending Submitted, e.g. from workload.MixStream's
// Schedule). It reproduces the legacy Feed+Tick loop's outputs exactly —
// Records, Placements, RejectedTicks, starvation blocking — while skipping
// every second on which provably nothing can happen: placement is only
// attempted on frame boundaries while arrivals are pending, which is the
// only time the legacy loop's tryPlace does anything either.
func (c *Cluster) RunEvented(d simclock.Seconds, schedule []Arrival) {
	end := c.Clock.Now() + d
	idx := 0
	for now := c.Clock.Now(); now < end; now = c.Clock.Now() {
		for idx < len(schedule) && schedule[idx].Submitted <= now {
			if schedule[idx].Submitted < now {
				panic(fmt.Sprintf("platform: arrival scheduled at %d reached at %d (schedule not ascending?)",
					schedule[idx].Submitted, now))
			}
			c.Pending = append(c.Pending, schedule[idx])
			idx++
		}
		if simclock.IsFrameBoundary(now) {
			c.tryPlace()
		}
		// Next stop point: simulation end, the next placement boundary while
		// anything is pending, or the next scheduled arrival.
		stop := end
		if len(c.Pending) > 0 {
			if b := nextFrameBoundary(now); b < stop {
				stop = b
			}
		}
		if idx < len(schedule) && schedule[idx].Submitted < stop {
			stop = schedule[idx].Submitted
		}
		c.TickSpan(stop - now)
	}
}

// nextFrameBoundary returns the first frame boundary strictly after t.
func nextFrameBoundary(t simclock.Seconds) simclock.Seconds {
	return simclock.FrameStart(t) + simclock.FrameLen
}

// advanceSpan advances one server span seconds past base. Every second the
// server cannot certify runs as a normal per-second tick; certified windows
// advance all sessions StepBulk-fast through the window's first w-1 seconds
// and close with one real tick, so grants, regulation, records and revision
// bookkeeping happen exactly where the legacy loop would have produced
// observable effects.
func (s *Server) advanceSpan(p Policy, base, span simclock.Seconds) {
	for off := simclock.Seconds(0); off < span; {
		if len(s.Hosted) == 0 {
			// An empty server's tick is a no-op; skip the rest of the span.
			return
		}
		var w simclock.Seconds
		if rem := span - off; rem >= 2 {
			// Certification only pays for itself when a window of at least
			// two seconds could result; a single-second remainder ticks
			// directly.
			w = simclock.Seconds(s.bulkWindow(p, int(rem)))
		}
		if w >= 2 {
			steady := s.scratch.steady[:len(s.Hosted)]
			for i, h := range s.Hosted {
				h.Session.StepBulk(steady[i], int(w)-1)
			}
			s.tickAt(p, base+off+w-1)
			off += w
		} else {
			s.tickAt(p, base+off)
			off++
		}
	}
}

// bulkWindow returns the widest window (capped at maxSpan) the server can
// certify for bulk advancement, or 0 when it must tick per-second. The
// certificate, checked per window against the *current* session states:
//
//  1. the policy's Regulate is a pure no-op (NoopRegulator);
//  2. every hosted controller is steady (SteadyRequester), so skipped Tick
//     calls are unobservable and requests cannot change inside the window;
//  3. each steady request covers its session's demand envelope, and the
//     envelope sum fits capacity — then needs equal demands, the
//     proportional scale is exactly 1, deficits are exactly zero, and every
//     grant is bitwise the demand, i.e. satisfaction is exactly 1.0;
//  4. the window never outruns a session's event horizon, so stage, segment
//     and loading transitions land on the window's closing per-second tick.
//
// On success the hosted controllers' steady requests are left in
// scratch.steady for the caller.
func (s *Server) bulkWindow(p Policy, maxSpan int) int {
	nr, ok := p.(NoopRegulator)
	if !ok || !nr.RegulateIsNoop() {
		return 0
	}
	if cap(s.scratch.steady) < len(s.Hosted) {
		s.scratch.grow(len(s.Hosted))
	}
	steady := s.scratch.steady[:len(s.Hosted)]
	w := maxSpan
	var envTotal resources.Vector
	for i, h := range s.Hosted {
		sr, ok := h.Controller.(SteadyRequester)
		if !ok {
			return 0
		}
		req, ok := sr.SteadyRequest()
		if !ok {
			return 0
		}
		req = req.ClampNonNegative()
		wc := h.Session.DemandEnvelope()
		for d := range wc {
			if req[d] < wc[d] {
				return 0
			}
		}
		envTotal = envTotal.Add(wc)
		steady[i] = req
		if hz := h.Session.BulkHorizon(); hz < w {
			w = hz
		}
	}
	// Envelope sum within capacity: float sums are monotone, so the real
	// per-second demand totals cannot exceed it either.
	for d := range envTotal {
		if envTotal[d] > s.Capacity[d] {
			return 0
		}
	}
	return w
}
