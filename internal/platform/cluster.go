package platform

import (
	"cocg/internal/gamesim"
	"cocg/internal/parallel"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Arrival is one game request waiting to be placed.
type Arrival struct {
	Spec        *gamesim.GameSpec
	Script      int
	Habit       int64
	SessionSeed int64
	// Submitted is stamped by the cluster when the arrival is enqueued.
	Submitted simclock.Seconds
}

// Cluster runs a set of servers under one policy with a FIFO queue of
// pending arrivals: the paper's setting where "the selected game will
// continuously run requests until the distributor passes the request".
type Cluster struct {
	Servers []*Server
	Policy  Policy
	Clock   *simclock.Clock
	Pending []Arrival

	// Placements counts successful admissions, RejectedTicks the admission
	// attempts that found no server.
	Placements    int
	RejectedTicks int

	// StarveLimit, when positive, makes an arrival that has waited this
	// long block younger arrivals until it lands (anti-starvation). Zero
	// reproduces the paper's setting: every pending request keeps retrying
	// independently and the distributor places whatever fits.
	StarveLimit simclock.Seconds

	// Jobs bounds the goroutines pickServer fans the per-server scoring scan
	// over, and — when the policy is a ConcurrentTicker — the per-server
	// tick fan-out as well. Values <= 1 run serially; every value yields
	// bit-identical results, because both scans decompose into fixed chunks
	// over independent per-server state and every reduction walks server
	// order serially.
	Jobs int

	// FailedPlacements counts arrivals that won a server but could not be
	// materialized (malformed script index, controller construction error).
	// Such arrivals leave the queue — retrying one would fail identically
	// every round — but are counted and logged rather than silently dropped.
	FailedPlacements int

	// Logf, when non-nil, receives diagnostic messages (dropped arrivals).
	Logf func(format string, args ...any)

	// pickServer's reusable scratch: per-server score slots plus per-chunk
	// policy scratches, grown once and reused across placement rounds.
	pickScores    []float64
	pickOK        []bool
	pickScratches []any
}

// NewCluster builds a cluster of n full-capacity servers under the policy.
func NewCluster(n int, policy Policy) *Cluster {
	c := &Cluster{Policy: policy, Clock: &simclock.Clock{}}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, NewServer(i, resources.FullServer, c.Clock))
	}
	return c
}

// Submit enqueues an arrival.
func (c *Cluster) Submit(a Arrival) {
	a.Submitted = c.Clock.Now()
	c.Pending = append(c.Pending, a)
}

// Scorer is an optional Policy refinement: when implemented, the cluster
// places each arrival on the admitting server with the highest score instead
// of the first that fits — CoCG scores by predicted complementarity.
type Scorer interface {
	Score(srv *Server, spec *gamesim.GameSpec, habit int64) (score float64, ok bool)
}

// ScratchScorer is an optional Scorer refinement for policies whose scoring
// needs working buffers: the cluster hands each scoring goroutine its own
// scratch (created by NewScratch, reused across rounds), so a fleet scan
// allocates nothing in steady state. ScoreScratch must return exactly what
// Score would — scratch is storage, never state.
type ScratchScorer interface {
	Scorer
	// NewScratch returns a fresh scratch for one scoring goroutine.
	NewScratch() any
	// ScoreScratch is Score drawing all temporary storage from scratch.
	ScoreScratch(srv *Server, spec *gamesim.GameSpec, habit int64, scratch any) (score float64, ok bool)
}

// PlacementPreparer is an optional Policy refinement: PreparePlacement runs
// serially before each (possibly parallel) scoring scan, giving the policy a
// safe point to set up shared per-server state — the CoCG distributor creates
// its forecast-cache map entries here so the concurrent scan only ever
// touches disjoint, pre-existing structs.
type PlacementPreparer interface {
	PreparePlacement(servers []*Server)
}

// LoadSummarizer is an optional Policy refinement for the multi-cluster
// coordinator tier: ClusterLoad reports the fraction of the fleet's capacity
// (0 = saturated, 1 = idle) the policy predicts will remain free over its
// forecast horizon. Policies without forward-looking models return ok=false
// and the caller falls back to instantaneous utilization. Like Admit and
// Score, ClusterLoad is a serial entry point — callers must not invoke it
// concurrently with other policy methods on the same instance.
type LoadSummarizer interface {
	ClusterLoad(servers []*Server) (headroom float64, ok bool)
}

// FleetLoad is the extended per-cluster summary the coordinator tier and the
// (upcoming) autoscaler consume: one scalar headroom cannot say *which* game
// the demand belongs to or how many machines could drain, so the summarizer
// also breaks predicted demand out per game and counts idle and draining
// servers. Slice fields follow a split ownership: Games is owned by the
// summarizer (a stable, sorted, immutable list — callers must not mutate it),
// while GameDemand is caller storage the summarizer overwrites in place, so a
// steady-state poll allocates nothing.
type FleetLoad struct {
	// Servers is the total server count the summary covers.
	Servers int
	// Active counts non-draining servers (the placement rotation);
	// MeanHeadroom averages over exactly these.
	Active int
	// Idle counts active servers hosting zero sessions — the pool a
	// scale-down pass can drain without migrating anything.
	Idle int
	// Draining counts servers out of rotation finishing their sessions.
	Draining int
	// MeanHeadroom is the mean predicted free-capacity fraction over active
	// servers, in [0,1] (1 = idle); 0 when no server is active.
	MeanHeadroom float64
	// Games lists the policy's known game names in sorted order; GameDemand
	// is parallel to it: the fleet's predicted demand for that game over the
	// forecast horizon, in units of one server's capacity (a value of 2.0
	// means "two servers' worth of this game").
	Games      []string
	GameDemand []float64
}

// FleetSummarizer is an optional LoadSummarizer refinement: FleetLoadInto
// fills the extended per-game summary into caller storage. Implementations
// are expected to be incremental — a poll over an unchanged fleet should cost
// per-server revision probes, not a full demand-timeline rescan — so callers
// may poll continuously. Like ClusterLoad it is a serial entry point.
type FleetSummarizer interface {
	FleetLoadInto(servers []*Server, out *FleetLoad) bool
}

// placementChunk is the fleet-scan granularity: servers are scored in
// fixed 32-wide chunks so a parallel scan keeps every worker busy on a
// 1k-server fleet while the chunk boundaries (and hence per-chunk scratch
// assignment) stay independent of the worker count.
const placementChunk = 32

// pickServer chooses the server for an arrival: best score under a Scorer
// policy, else first fit. Under a Scorer the per-server scan fans out over
// Jobs goroutines into per-server score slots; the argmax reduction then
// walks the slots serially in server order with a strict >, so the result —
// including tie-breaks toward the lowest server ID — is bit-identical to the
// serial scan at every worker count.
func (c *Cluster) pickServer(a Arrival) *Server {
	sc, isScorer := c.Policy.(Scorer)
	if !isScorer {
		for _, srv := range c.Servers {
			if srv.Draining {
				continue
			}
			if c.Policy.Admit(srv, a.Spec, a.Habit) {
				return srv
			}
		}
		return nil
	}

	if pp, ok := c.Policy.(PlacementPreparer); ok {
		pp.PreparePlacement(c.Servers)
	}

	n := len(c.Servers)
	if cap(c.pickScores) < n {
		c.pickScores = make([]float64, n)
		c.pickOK = make([]bool, n)
	}
	scores, oks := c.pickScores[:n], c.pickOK[:n]

	ss, hasScratch := c.Policy.(ScratchScorer)
	if chunks := parallel.NumChunksOf(n, placementChunk); hasScratch && len(c.pickScratches) < chunks {
		grown := make([]any, chunks)
		copy(grown, c.pickScratches)
		c.pickScratches = grown
	}

	jobs := c.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	parallel.ForChunksOf(jobs, n, placementChunk, func(chunk, lo, hi int) {
		// Each chunk runs on exactly one goroutine and distinct chunks use
		// distinct slots, so the lazy scratch fill is race-free.
		var scratch any
		if hasScratch {
			scratch = c.pickScratches[chunk]
			if scratch == nil {
				scratch = ss.NewScratch()
				c.pickScratches[chunk] = scratch
			}
		}
		for i := lo; i < hi; i++ {
			oks[i] = false
			srv := c.Servers[i]
			if srv.Draining {
				continue
			}
			var s float64
			var ok bool
			if hasScratch {
				s, ok = ss.ScoreScratch(srv, a.Spec, a.Habit, scratch)
			} else {
				s, ok = sc.Score(srv, a.Spec, a.Habit)
			}
			if ok {
				scores[i], oks[i] = s, true
			}
		}
	})

	var best *Server
	bestScore := 0.0
	for i, srv := range c.Servers {
		if oks[i] && (best == nil || scores[i] > bestScore) {
			best, bestScore = srv, scores[i]
		}
	}
	return best
}

// PickServer returns the server the policy would place the arrival on right
// now, without placing it — nil when no server admits it. It is the dry-run
// entry point the fleet benchmarks and placement property tests drive.
func (c *Cluster) PickServer(a Arrival) *Server {
	return c.pickServer(a)
}

// Drain marks a server as draining; returns false for an unknown ID.
func (c *Cluster) Drain(serverID int) bool {
	for _, srv := range c.Servers {
		if srv.ID == serverID {
			srv.Draining = true
			return true
		}
	}
	return false
}

// Undrain returns a drained server to rotation.
func (c *Cluster) Undrain(serverID int) bool {
	for _, srv := range c.Servers {
		if srv.ID == serverID {
			srv.Draining = false
			return true
		}
	}
	return false
}

// tryPlace attempts to place pending arrivals FIFO; each arrival is offered
// to every server once per attempt round. With StarveLimit set, an arrival
// that has waited past it blocks younger arrivals until it lands, so a heavy
// game is never starved by a stream of small ones.
func (c *Cluster) tryPlace() {
	remaining := c.Pending[:0]
	blocked := false
	for _, a := range c.Pending {
		if blocked {
			remaining = append(remaining, a)
			continue
		}
		placed := false
		if srv := c.pickServer(a); srv != nil {
			placed = true // even malformed arrivals leave the queue
			sess, err := gamesim.NewPlayerSession(a.Spec, a.Script, a.Habit, a.SessionSeed)
			if err != nil {
				c.FailedPlacements++
				c.logf("platform: dropping arrival %s (script %d): %v", a.Spec.Name, a.Script, err)
			} else if ctl, cerr := c.Policy.NewController(a.Spec, a.Habit); cerr != nil {
				c.FailedPlacements++
				c.logf("platform: dropping arrival %s: no controller: %v", a.Spec.Name, cerr)
			} else {
				srv.Add(a.Spec, sess, ctl)
				c.Placements++
			}
		}
		if !placed {
			c.RejectedTicks++
			remaining = append(remaining, a)
			if c.StarveLimit > 0 && c.Clock.Now()-a.Submitted > c.StarveLimit {
				blocked = true
			}
		}
	}
	c.Pending = remaining
}

// Tick advances the whole cluster by one virtual second; placement attempts
// run on frame boundaries (the paper's 5-second decision cadence). Server
// ticks fan out over Jobs goroutines when the policy is a ConcurrentTicker —
// servers are independent within a tick — and the fan-out is bit-identical
// to the serial scan at every worker count.
func (c *Cluster) Tick() {
	if simclock.IsFrameBoundary(c.Clock.Now()) {
		c.tryPlace()
	}
	c.TickSpan(1)
}

// Run advances the cluster for the given duration.
func (c *Cluster) Run(d simclock.Seconds) {
	for i := simclock.Seconds(0); i < d; i++ {
		c.Tick()
	}
}

// logf forwards to Logf when set.
func (c *Cluster) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Records returns all completed-session records across servers, sized in one
// counting pass so the result is built with exactly one allocation.
func (c *Cluster) Records() []Record {
	n := 0
	for _, srv := range c.Servers {
		n += len(srv.Records)
	}
	out := make([]Record, 0, n)
	for _, srv := range c.Servers {
		out = append(out, srv.Records...)
	}
	return out
}

// SetSink installs a completed-session record sink on every server. The sink
// must be safe for concurrent calls when Jobs > 1 and the policy ticks
// concurrently.
func (c *Cluster) SetSink(sink RecordSink) {
	for _, srv := range c.Servers {
		srv.Sink = sink
	}
}

// RunningSessions counts sessions currently hosted anywhere.
func (c *Cluster) RunningSessions() int {
	n := 0
	for _, srv := range c.Servers {
		n += srv.NumHosted()
	}
	return n
}
