package platform

import (
	"cocg/internal/gamesim"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Arrival is one game request waiting to be placed.
type Arrival struct {
	Spec        *gamesim.GameSpec
	Script      int
	Habit       int64
	SessionSeed int64
	// Submitted is stamped by the cluster when the arrival is enqueued.
	Submitted simclock.Seconds
}

// Cluster runs a set of servers under one policy with a FIFO queue of
// pending arrivals: the paper's setting where "the selected game will
// continuously run requests until the distributor passes the request".
type Cluster struct {
	Servers []*Server
	Policy  Policy
	Clock   *simclock.Clock
	Pending []Arrival

	// Placements counts successful admissions, RejectedTicks the admission
	// attempts that found no server.
	Placements    int
	RejectedTicks int

	// StarveLimit, when positive, makes an arrival that has waited this
	// long block younger arrivals until it lands (anti-starvation). Zero
	// reproduces the paper's setting: every pending request keeps retrying
	// independently and the distributor places whatever fits.
	StarveLimit simclock.Seconds
}

// NewCluster builds a cluster of n full-capacity servers under the policy.
func NewCluster(n int, policy Policy) *Cluster {
	c := &Cluster{Policy: policy, Clock: &simclock.Clock{}}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, NewServer(i, resources.FullServer, c.Clock))
	}
	return c
}

// Submit enqueues an arrival.
func (c *Cluster) Submit(a Arrival) {
	a.Submitted = c.Clock.Now()
	c.Pending = append(c.Pending, a)
}

// Scorer is an optional Policy refinement: when implemented, the cluster
// places each arrival on the admitting server with the highest score instead
// of the first that fits — CoCG scores by predicted complementarity.
type Scorer interface {
	Score(srv *Server, spec *gamesim.GameSpec, habit int64) (score float64, ok bool)
}

// pickServer chooses the server for an arrival: best score under a Scorer
// policy, else first fit.
func (c *Cluster) pickServer(a Arrival) *Server {
	if sc, ok := c.Policy.(Scorer); ok {
		var best *Server
		bestScore := 0.0
		for _, srv := range c.Servers {
			if srv.Draining {
				continue
			}
			if s, ok := sc.Score(srv, a.Spec, a.Habit); ok && (best == nil || s > bestScore) {
				best, bestScore = srv, s
			}
		}
		return best
	}
	for _, srv := range c.Servers {
		if srv.Draining {
			continue
		}
		if c.Policy.Admit(srv, a.Spec, a.Habit) {
			return srv
		}
	}
	return nil
}

// Drain marks a server as draining; returns false for an unknown ID.
func (c *Cluster) Drain(serverID int) bool {
	for _, srv := range c.Servers {
		if srv.ID == serverID {
			srv.Draining = true
			return true
		}
	}
	return false
}

// Undrain returns a drained server to rotation.
func (c *Cluster) Undrain(serverID int) bool {
	for _, srv := range c.Servers {
		if srv.ID == serverID {
			srv.Draining = false
			return true
		}
	}
	return false
}

// tryPlace attempts to place pending arrivals FIFO; each arrival is offered
// to every server once per attempt round. With StarveLimit set, an arrival
// that has waited past it blocks younger arrivals until it lands, so a heavy
// game is never starved by a stream of small ones.
func (c *Cluster) tryPlace() {
	remaining := c.Pending[:0]
	blocked := false
	for _, a := range c.Pending {
		if blocked {
			remaining = append(remaining, a)
			continue
		}
		placed := false
		if srv := c.pickServer(a); srv != nil {
			placed = true // even malformed arrivals leave the queue
			sess, err := gamesim.NewPlayerSession(a.Spec, a.Script, a.Habit, a.SessionSeed)
			if err == nil {
				ctl, cerr := c.Policy.NewController(a.Spec, a.Habit)
				if cerr == nil {
					srv.Add(a.Spec, sess, ctl)
					c.Placements++
				}
			}
		}
		if !placed {
			c.RejectedTicks++
			remaining = append(remaining, a)
			if c.StarveLimit > 0 && c.Clock.Now()-a.Submitted > c.StarveLimit {
				blocked = true
			}
		}
	}
	c.Pending = remaining
}

// Tick advances the whole cluster by one virtual second; placement attempts
// run on frame boundaries (the paper's 5-second decision cadence).
func (c *Cluster) Tick() {
	if simclock.IsFrameBoundary(c.Clock.Now()) {
		c.tryPlace()
	}
	for _, srv := range c.Servers {
		srv.Tick(c.Policy)
	}
	c.Clock.Tick()
}

// Run advances the cluster for the given duration.
func (c *Cluster) Run(d simclock.Seconds) {
	for i := simclock.Seconds(0); i < d; i++ {
		c.Tick()
	}
}

// Records returns all completed-session records across servers.
func (c *Cluster) Records() []Record {
	var out []Record
	for _, srv := range c.Servers {
		out = append(out, srv.Records...)
	}
	return out
}

// RunningSessions counts sessions currently hosted anywhere.
func (c *Cluster) RunningSessions() int {
	n := 0
	for _, srv := range c.Servers {
		n += srv.NumHosted()
	}
	return n
}
