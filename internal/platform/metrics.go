package platform

import (
	"sort"
	"sync"
)

// Streaming record aggregators: RecordSink implementations that keep O(1)
// state per completed session, so million-session runs never retain a
// Records slice. Both are safe under the parallel tick fan-out.
//
// ThroughputAgg matches the slice-based Throughput bit-for-bit at any worker
// count: its per-game sums add integer second counts, which float64 addition
// represents exactly (below 2^53), so accumulation order cannot matter.
// QoSAgg's float means are order-sensitive, so it buckets partial sums per
// server and merges them in ascending server order — deterministic at every
// -jobs value, and equal to Summarize up to float association.

// ThroughputAgg accumulates Eq. 2 incrementally.
type ThroughputAgg struct {
	mu    sync.Mutex
	count map[string]int
	dur   map[string]float64
}

// ConsumeRecord implements RecordSink.
func (a *ThroughputAgg) ConsumeRecord(_ int, r Record) {
	a.mu.Lock()
	if a.count == nil {
		a.count = map[string]int{}
		a.dur = map[string]float64{}
	}
	a.count[r.Game]++
	a.dur[r.Game] += float64(r.Elapsed)
	a.mu.Unlock()
}

// Sessions returns how many records were consumed.
func (a *ThroughputAgg) Sessions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.count {
		n += c
	}
	return n
}

// Value computes Eq. 2 over everything consumed so far, identically to
// Throughput over the same records.
func (a *ThroughputAgg) Value(ref map[string]float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	games := make([]string, 0, len(a.count))
	for g := range a.count {
		games = append(games, g)
	}
	sort.Strings(games)
	var t float64
	for _, g := range games {
		n := a.count[g]
		s := a.dur[g] / float64(n)
		if refDur, ok := ref[g]; ok && refDur > 0 {
			s = refDur
		}
		t += float64(n) * s
	}
	return t
}

// qosPartial is one server's record-order QoS accumulation.
type qosPartial struct {
	sessions int
	fpsRatio float64
	goodFPS  float64
	degraded float64
	violated int
}

// QoSAgg accumulates QoSSummary incrementally. Per-server partial sums keep
// the result independent of the order servers tick in, so any -jobs value
// produces the same summary.
type QoSAgg struct {
	mu      sync.Mutex
	byServe map[int]*qosPartial
}

// ConsumeRecord implements RecordSink.
func (a *QoSAgg) ConsumeRecord(serverID int, r Record) {
	a.mu.Lock()
	if a.byServe == nil {
		a.byServe = map[int]*qosPartial{}
	}
	p := a.byServe[serverID]
	if p == nil {
		p = &qosPartial{}
		a.byServe[serverID] = p
	}
	p.sessions++
	p.fpsRatio += r.FPSRatio
	p.goodFPS += r.GoodFPSFrac
	p.degraded += r.Degraded
	if r.Degraded > 0.05 {
		p.violated++
	}
	a.mu.Unlock()
}

// Result merges the per-server partials in ascending server order and
// returns the summary.
func (a *QoSAgg) Result() QoSSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]int, 0, len(a.byServe))
	for id := range a.byServe {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out QoSSummary
	viol := 0
	for _, id := range ids {
		p := a.byServe[id]
		out.Sessions += p.sessions
		out.MeanFPSRatio += p.fpsRatio
		out.MeanGoodFPS += p.goodFPS
		out.MeanDegraded += p.degraded
		viol += p.violated
	}
	if out.Sessions == 0 {
		return out
	}
	n := float64(out.Sessions)
	out.MeanFPSRatio /= n
	out.MeanGoodFPS /= n
	out.MeanDegraded /= n
	out.ViolatedFrac = float64(viol) / n
	return out
}

// TeeSink fans each record out to several sinks.
type TeeSink []RecordSink

// ConsumeRecord implements RecordSink.
func (t TeeSink) ConsumeRecord(serverID int, r Record) {
	for _, s := range t {
		s.ConsumeRecord(serverID, r)
	}
}
