package platform_test

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/simclock"
)

// Simulation-core benchmarks: the legacy per-second cluster tick versus the
// event-driven span driver over identical populations, plus the steady-state
// allocation proof for Server.Tick. The populations are Contra sessions under
// the steady test policy — the envelope-certifiable workload where the bulk
// fast path should carry almost every second — rebuilt per iteration with the
// timer stopped so no iteration ever ticks an emptied cluster (sessions that
// complete mid-measurement would silently deflate the per-tick work).

// buildSteadyCluster populates nServers servers with perServer Contra
// sessions each, under flat steady controllers whose requests cover the
// spec's worst-case demand.
func buildSteadyCluster(nServers, perServer int) *platform.Cluster {
	c := platform.NewCluster(nServers, &steadyTestPolicy{})
	spec := gamesim.Contra()
	req := spec.WorstCaseDemand()
	seed := int64(1)
	for _, srv := range c.Servers {
		for j := 0; j < perServer; j++ {
			sess, err := gamesim.NewSession(spec, j%len(spec.Scripts), seed)
			if err != nil {
				panic(err)
			}
			srv.Add(spec, sess, &flatSteadyCtl{req: req})
			seed++
		}
	}
	return c
}

// TestServerTickZeroAllocs is the acceptance gate for the scratch-backed tick
// loop: once warm, Server.Tick must not allocate at all.
func TestServerTickZeroAllocs(t *testing.T) {
	c := buildSteadyCluster(1, 2)
	srv, pol := c.Servers[0], c.Policy
	for i := 0; i < 10; i++ {
		srv.Tick(pol)
	}
	if avg := testing.AllocsPerRun(200, func() { srv.Tick(pol) }); avg != 0 {
		t.Fatalf("Server.Tick allocates %v allocs/op in steady state; want 0", avg)
	}
}

// benchSpan measures advancing the whole population by span virtual seconds,
// reporting session-seconds simulated per wall second — the sessions/sec
// capacity number BENCH_PR8.json tracks.
func benchSpan(b *testing.B, nServers, perServer int, span simclock.Seconds, evented bool) {
	b.ReportAllocs()
	sessions := nServers * perServer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := buildSteadyCluster(nServers, perServer)
		b.StartTimer()
		if evented {
			c.TickSpan(span)
		} else {
			for t := simclock.Seconds(0); t < span; t++ {
				c.Tick()
			}
		}
	}
	b.ReportMetric(float64(b.N)*float64(sessions)*float64(span)/b.Elapsed().Seconds(), "sess-sec/s")
}

// The "before": the legacy loop ticking every server every virtual second.
func BenchmarkSimTickLegacy64(b *testing.B)   { benchSpan(b, 32, 2, 120, false) }
func BenchmarkSimTickLegacy4096(b *testing.B) { benchSpan(b, 2048, 2, 120, false) }

// The "after": the event-driven driver over the identical population.
func BenchmarkSimEvent64(b *testing.B)   { benchSpan(b, 32, 2, 120, true) }
func BenchmarkSimEvent4096(b *testing.B) { benchSpan(b, 2048, 2, 120, true) }

// BenchmarkSimEvent100k demonstrates the event core at 100k+ concurrent
// sessions (33,334 servers x 3 Contra), the waypoint toward million-session
// runs.
func BenchmarkSimEvent100k(b *testing.B) { benchSpan(b, 33334, 3, 120, true) }

// BenchmarkServerTickSteady is the per-tick micro view of the scratch-backed
// server loop (two hosted sessions, no completions inside the run).
func BenchmarkServerTickSteady(b *testing.B) {
	b.ReportAllocs()
	c := buildSteadyCluster(1, 2)
	srv, pol := c.Servers[0], c.Policy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if srv.NumHosted() < 2 {
			b.StopTimer()
			c = buildSteadyCluster(1, 2)
			srv = c.Servers[0]
			b.StartTimer()
		}
		srv.Tick(pol)
	}
}
