package platform

import (
	"errors"
	"fmt"
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// passthroughController requests a constant cap.
type passthroughController struct {
	req     resources.Vector
	loading bool
}

func (p *passthroughController) Name() string { return "test" }
func (p *passthroughController) Tick(resources.Vector) resources.Vector {
	return p.req
}
func (p *passthroughController) Loading() bool { return p.loading }

// admitAllPolicy admits everything with full-capacity requests.
type admitAllPolicy struct{ req resources.Vector }

func (a *admitAllPolicy) Name() string { return "admit-all" }
func (a *admitAllPolicy) Admit(*Server, *gamesim.GameSpec, int64) bool {
	return true
}
func (a *admitAllPolicy) NewController(*gamesim.GameSpec, int64) (Controller, error) {
	return &passthroughController{req: a.req}, nil
}
func (a *admitAllPolicy) Regulate(*Server) {}

func newTestServer(t *testing.T) (*Server, *simclock.Clock) {
	t.Helper()
	clk := &simclock.Clock{}
	return NewServer(0, resources.FullServer, clk), clk
}

func addSession(t *testing.T, s *Server, spec *gamesim.GameSpec, seed int64, req resources.Vector) *Hosted {
	t.Helper()
	sess, err := gamesim.NewSession(spec, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s.Add(spec, sess, &passthroughController{req: req})
}

func TestServerRunsSessionToCompletion(t *testing.T) {
	srv, clk := newTestServer(t)
	pol := &admitAllPolicy{req: resources.FullServer}
	addSession(t, srv, gamesim.Contra(), 1, resources.FullServer)
	for i := 0; i < 4*3600 && srv.NumHosted() > 0; i++ {
		srv.Tick(pol)
		clk.Tick()
	}
	if srv.NumHosted() != 0 {
		t.Fatal("session did not complete")
	}
	if len(srv.Records) != 1 {
		t.Fatalf("records = %d", len(srv.Records))
	}
	r := srv.Records[0]
	if r.Game != "Contra" || r.Elapsed == 0 || r.FPSRatio < 0.99 {
		t.Errorf("record = %+v", r)
	}
	// The completion record is stamped within the final tick, so Finished
	// may trail Arrived+Elapsed by the not-yet-advanced second.
	if diff := r.Arrived + r.Elapsed - r.Finished; diff < 0 || diff > 1 {
		t.Errorf("time accounting wrong: %+v", r)
	}
}

func TestWorkConservingRedistribution(t *testing.T) {
	// A game capped below its demand still gets full supply while the
	// server has spare capacity.
	srv, clk := newTestServer(t)
	pol := &admitAllPolicy{}
	h := addSession(t, srv, gamesim.CSGO(), 3, resources.Uniform(10)) // cap far below demand
	for i := 0; i < 600 && srv.NumHosted() > 0; i++ {
		srv.Tick(pol)
		clk.Tick()
	}
	if h.Session.Done() {
		t.Skip("session finished unexpectedly fast")
	}
	if h.Session.DegradedFraction() > 0.02 {
		t.Errorf("degraded %.3f despite an idle server", h.Session.DegradedFraction())
	}
}

func TestContentionScalesGrants(t *testing.T) {
	// Several demanding games beyond capacity must be scaled down: total
	// grants never exceed capacity.
	srv, clk := newTestServer(t)
	pol := &admitAllPolicy{}
	for i := int64(0); i < 4; i++ {
		addSession(t, srv, gamesim.DevilMayCry(), 10+i, resources.FullServer)
	}
	for i := 0; i < 1200; i++ {
		srv.Tick(pol)
		clk.Tick()
		u := srv.Utilization()
		for d := range u {
			if u[d] > srv.Capacity[d]+1e-6 {
				t.Fatalf("tick %d: utilization %v exceeds capacity", i, u)
			}
		}
	}
	// With 4 DMC sessions the GPU must saturate at some point.
	if srv.PeakUtilization()[resources.GPU] < 95 {
		t.Errorf("peak GPU %v; expected saturation", srv.PeakUtilization()[resources.GPU])
	}
}

func TestThroughputEq2(t *testing.T) {
	records := []Record{
		{Game: "A", Elapsed: 100},
		{Game: "A", Elapsed: 300},
		{Game: "B", Elapsed: 50},
	}
	// A: 2 runs, mean 200 -> 400. B: 1 run, mean 50 -> 50.
	if got := Throughput(records, nil); got != 450 {
		t.Errorf("Throughput = %v, want 450", got)
	}
	if Throughput(nil, nil) != 0 {
		t.Error("Throughput(nil) != 0")
	}
	// Reference durations override observed (lag-stretched) means.
	ref := map[string]float64{"A": 100}
	if got := Throughput(records, ref); got != 250 {
		t.Errorf("Throughput with ref = %v, want 250", got)
	}
}

func TestSummarize(t *testing.T) {
	records := []Record{
		{FPSRatio: 1, GoodFPSFrac: 1, Degraded: 0.01},
		{FPSRatio: 0.5, GoodFPSFrac: 0.5, Degraded: 0.2},
	}
	s := Summarize(records)
	if s.Sessions != 2 || s.MeanFPSRatio != 0.75 || s.ViolatedFrac != 0.5 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil).Sessions != 0 {
		t.Error("empty summary wrong")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestClusterPlacesAndRuns(t *testing.T) {
	pol := &admitAllPolicy{req: resources.FullServer}
	c := NewCluster(2, pol)
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 0, Habit: 5, SessionSeed: 6})
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 1, Habit: 7, SessionSeed: 8})
	c.Run(simclock.Seconds(1200))
	if c.Placements != 2 {
		t.Errorf("placements = %d", c.Placements)
	}
	if got := len(c.Records()); got != 2 {
		t.Errorf("records = %d (running %d, pending %d)", got, c.RunningSessions(), len(c.Pending))
	}
}

// rejectPolicy refuses all admissions.
type rejectPolicy struct{ admitAllPolicy }

func (r *rejectPolicy) Admit(*Server, *gamesim.GameSpec, int64) bool { return false }

func TestClusterKeepsPendingWhenRejected(t *testing.T) {
	c := NewCluster(1, &rejectPolicy{})
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 0, Habit: 1, SessionSeed: 2})
	c.Run(30)
	if len(c.Pending) != 1 {
		t.Errorf("pending = %d, want 1", len(c.Pending))
	}
	if c.Placements != 0 {
		t.Errorf("placements = %d", c.Placements)
	}
	if c.RejectedTicks == 0 {
		t.Error("no rejected attempts recorded")
	}
}

func TestServerUtilizationAccessors(t *testing.T) {
	srv, _ := newTestServer(t)
	if srv.NumHosted() != 0 || !srv.Utilization().IsZero() {
		t.Error("fresh server not empty")
	}
	addSession(t, srv, gamesim.Contra(), 1, resources.Uniform(30))
	if srv.RequestTotal().IsZero() {
		// Requests appear after the first tick.
		srv.Tick(&admitAllPolicy{})
	}
	if srv.RequestTotal().IsZero() {
		t.Error("request total still zero after a tick")
	}
}

func TestDrainStopsPlacement(t *testing.T) {
	pol := &admitAllPolicy{req: resources.FullServer}
	c := NewCluster(1, pol)
	if !c.Drain(0) {
		t.Fatal("Drain(0) failed")
	}
	if c.Drain(99) || c.Undrain(99) {
		t.Error("unknown server drained")
	}
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 0, Habit: 1, SessionSeed: 2})
	c.Run(60)
	if c.Placements != 0 || len(c.Pending) != 1 {
		t.Errorf("placed %d on a draining server (pending %d)", c.Placements, len(c.Pending))
	}
	// Undrain and the arrival lands.
	c.Undrain(0)
	c.Run(10)
	if c.Placements != 1 {
		t.Errorf("placements after undrain = %d", c.Placements)
	}
}

// brokenControllerPolicy admits everything but cannot build controllers.
type brokenControllerPolicy struct{ admitAllPolicy }

func (b *brokenControllerPolicy) NewController(*gamesim.GameSpec, int64) (Controller, error) {
	return nil, errors.New("controller factory broken")
}

func TestFailedPlacementIsCountedAndLogged(t *testing.T) {
	var logged []string
	c := NewCluster(1, &brokenControllerPolicy{})
	c.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 0, Habit: 1, SessionSeed: 2})
	c.Run(10)
	if c.FailedPlacements != 1 {
		t.Errorf("FailedPlacements = %d, want 1", c.FailedPlacements)
	}
	if c.Placements != 0 {
		t.Errorf("Placements = %d, want 0", c.Placements)
	}
	// The malformed arrival leaves the queue: retrying it would fail
	// identically forever.
	if len(c.Pending) != 0 {
		t.Errorf("pending = %d, want 0", len(c.Pending))
	}
	if len(logged) != 1 {
		t.Fatalf("logged %d messages, want 1: %q", len(logged), logged)
	}
}

func TestFailedPlacementBadScript(t *testing.T) {
	c := NewCluster(1, &admitAllPolicy{req: resources.FullServer})
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 9999, Habit: 1, SessionSeed: 2})
	c.Run(10)
	if c.FailedPlacements != 1 || c.Placements != 0 || len(c.Pending) != 0 {
		t.Errorf("failed=%d placed=%d pending=%d, want 1/0/0 (nil Logf must not panic)",
			c.FailedPlacements, c.Placements, len(c.Pending))
	}
}

// occupancyScorer scores by server occupancy modulo 3, producing many exact
// ties so the parallel scan's lowest-ID tie-break is load-bearing.
type occupancyScorer struct {
	admitAllPolicy
	cap int
}

func (s *occupancyScorer) Score(srv *Server, spec *gamesim.GameSpec, habit int64) (float64, bool) {
	if srv.NumHosted() >= s.cap {
		return 0, false
	}
	return float64(srv.NumHosted() % 3), true
}

// occupancyScratchScorer is occupancyScorer through the scratch-scoring
// interface, covering the per-chunk scratch plumbing.
type occupancyScratchScorer struct{ occupancyScorer }

type occupancyScratch struct{ evals int }

func (s *occupancyScratchScorer) NewScratch() any { return &occupancyScratch{} }

func (s *occupancyScratchScorer) ScoreScratch(srv *Server, spec *gamesim.GameSpec, habit int64, scratch any) (float64, bool) {
	scratch.(*occupancyScratch).evals++
	return s.Score(srv, spec, habit)
}

// occupancyTrace runs a fixed arrival stream over a 70-server cluster (three
// placement chunks) and returns the per-tick hosted counts of every server.
func occupancyTrace(t *testing.T, pol Policy, jobs int) []int {
	t.Helper()
	c := NewCluster(70, pol)
	c.Jobs = jobs
	var trace []int
	for tick := 0; tick < 120; tick++ {
		if tick%2 == 0 {
			c.Submit(Arrival{
				Spec:        gamesim.Contra(),
				Script:      tick % 3,
				Habit:       int64(tick),
				SessionSeed: int64(1000 + tick),
			})
		}
		c.Tick()
		for _, srv := range c.Servers {
			trace = append(trace, srv.NumHosted())
		}
	}
	if c.Placements == 0 {
		t.Fatal("stream placed nothing; the trace proves nothing")
	}
	return trace
}

func TestParallelPlacementMatchesSerial(t *testing.T) {
	for _, mk := range []struct {
		name string
		pol  func() Policy
	}{
		{"scorer", func() Policy { return &occupancyScorer{cap: 4} }},
		{"scratch-scorer", func() Policy { return &occupancyScratchScorer{occupancyScorer{cap: 4}} }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			want := occupancyTrace(t, mk.pol(), 1)
			for _, jobs := range []int{2, 7, 16} {
				got := occupancyTrace(t, mk.pol(), jobs)
				if len(got) != len(want) {
					t.Fatalf("jobs=%d: trace length %d != %d", jobs, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("jobs=%d: trace diverges at %d: got %d, want %d", jobs, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestPickServerDoesNotPlace(t *testing.T) {
	c := NewCluster(2, &occupancyScorer{cap: 4})
	a := Arrival{Spec: gamesim.Contra(), Script: 0, Habit: 1, SessionSeed: 2}
	srv := c.PickServer(a)
	if srv == nil {
		t.Fatal("PickServer found no server on an empty cluster")
	}
	if srv.ID != 0 {
		t.Errorf("tie on empty servers picked ID %d, want lowest ID 0", srv.ID)
	}
	if c.RunningSessions() != 0 || c.Placements != 0 {
		t.Error("PickServer mutated the cluster")
	}
}

func benchClusterWithRecords(b *testing.B) *Cluster {
	b.Helper()
	c := NewCluster(64, &admitAllPolicy{})
	for _, srv := range c.Servers {
		for i := 0; i < 16; i++ {
			srv.Records = append(srv.Records, Record{Game: "G"})
		}
		for i := 0; i < 2; i++ {
			sess, err := gamesim.NewSession(gamesim.Contra(), 0, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			srv.Add(gamesim.Contra(), sess, &passthroughController{})
		}
	}
	return c
}

func BenchmarkClusterRecords(b *testing.B) {
	c := benchClusterWithRecords(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Records()) != 64*16 {
			b.Fatal("wrong record count")
		}
	}
}

func BenchmarkRunningSessions(b *testing.B) {
	c := benchClusterWithRecords(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.RunningSessions() != 64*2 {
			b.Fatal("wrong session count")
		}
	}
}

func TestDrainingServerFinishesSessions(t *testing.T) {
	pol := &admitAllPolicy{req: resources.FullServer}
	c := NewCluster(1, pol)
	c.Submit(Arrival{Spec: gamesim.Contra(), Script: 0, Habit: 3, SessionSeed: 4})
	c.Run(10)
	if c.Servers[0].NumHosted() != 1 {
		t.Fatal("session not placed")
	}
	c.Drain(0)
	c.Run(20 * simclock.Minute)
	if len(c.Servers[0].Records) != 1 {
		t.Error("draining server did not finish its session")
	}
}
