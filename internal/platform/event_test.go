package platform_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync/atomic"
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/resources"
	"cocg/internal/simclock"
	"cocg/internal/workload"
)

// The golden equivalence suite: the event-driven cluster driver must
// reproduce the legacy per-second Feed+Tick loop byte-for-byte — records,
// placement counters, queue state — at every -jobs setting, both when the
// bulk fast path engages (steady policy) and when every second falls back to
// a real tick (adaptive policy).

// flatSteadyCtl is a constant-request controller: eligible for bulk
// advancement via SteadyRequest.
type flatSteadyCtl struct{ req resources.Vector }

func (f *flatSteadyCtl) Name() string                            { return "flat-steady" }
func (f *flatSteadyCtl) Tick(resources.Vector) resources.Vector  { return f.req }
func (f *flatSteadyCtl) Loading() bool                           { return false }
func (f *flatSteadyCtl) SteadyRequest() (resources.Vector, bool) { return f.req, true }

// adaptiveCtl tracks measured utilization, so it is deliberately NOT a
// SteadyRequester: skipping its Tick calls would be observable.
type adaptiveCtl struct{ req resources.Vector }

func (a *adaptiveCtl) Name() string  { return "adaptive" }
func (a *adaptiveCtl) Loading() bool { return false }
func (a *adaptiveCtl) Tick(util resources.Vector) resources.Vector {
	a.req = util.Scale(1.25).Add(resources.Uniform(6)).Clamp(0, 100)
	return a.req
}

// countedPolicy exposes how many per-second server ticks actually executed —
// Regulate runs exactly once per executed tick, so the counter proves the
// bulk path engaged (or did not).
type countedPolicy interface {
	platform.Policy
	ticks() int64
}

// steadyTestPolicy admits by worst-case demand sums and hands every session a
// flat request covering its spec's WorstCaseDemand, so every hosted set it
// builds certifies for bulk advancement in every phase.
type steadyTestPolicy struct{ regulates atomic.Int64 }

func (p *steadyTestPolicy) Name() string { return "steady-test" }
func (p *steadyTestPolicy) Admit(srv *platform.Server, spec *gamesim.GameSpec, _ int64) bool {
	tot := spec.WorstCaseDemand()
	for _, h := range srv.Hosted {
		tot = tot.Add(h.Spec.WorstCaseDemand())
	}
	for d := range tot {
		if tot[d] > srv.Capacity[d] {
			return false
		}
	}
	return true
}
func (p *steadyTestPolicy) NewController(spec *gamesim.GameSpec, _ int64) (platform.Controller, error) {
	return &flatSteadyCtl{req: spec.WorstCaseDemand()}, nil
}
func (p *steadyTestPolicy) Regulate(*platform.Server) { p.regulates.Add(1) }
func (p *steadyTestPolicy) RegulateIsNoop() bool      { return true }
func (p *steadyTestPolicy) ConcurrentTickSafe() bool  { return true }
func (p *steadyTestPolicy) ticks() int64              { return p.regulates.Load() }

// adaptiveTestPolicy pairs adapting controllers with a non-noop-marked
// Regulate, so the event driver must run every single second.
type adaptiveTestPolicy struct{ regulates atomic.Int64 }

func (p *adaptiveTestPolicy) Name() string { return "adaptive-test" }
func (p *adaptiveTestPolicy) Admit(srv *platform.Server, _ *gamesim.GameSpec, _ int64) bool {
	return len(srv.Hosted) < 3
}
func (p *adaptiveTestPolicy) NewController(*gamesim.GameSpec, int64) (platform.Controller, error) {
	return &adaptiveCtl{req: resources.FullServer}, nil
}
func (p *adaptiveTestPolicy) Regulate(*platform.Server) { p.regulates.Add(1) }
func (p *adaptiveTestPolicy) ConcurrentTickSafe() bool  { return true }
func (p *adaptiveTestPolicy) ticks() int64              { return p.regulates.Load() }

const (
	goldenServers = 16
	goldenHorizon = simclock.Seconds(3000)
	goldenRate    = 0.02
)

// goldenRun drives one cluster over the shared seed workload, either through
// the legacy per-second loop or the event-driven driver.
func goldenRun(pol countedPolicy, evented bool, jobs int) *platform.Cluster {
	c := platform.NewCluster(goldenServers, pol)
	c.Jobs = jobs
	c.StarveLimit = 2 * simclock.Minute
	gen := workload.NewGenerator(nil, 11)
	stream := workload.NewMixStream(gen, gamesim.AllGames(), goldenRate, 23)
	if evented {
		c.RunEvented(goldenHorizon, stream.Schedule(0, goldenHorizon))
	} else {
		for i := simclock.Seconds(0); i < goldenHorizon; i++ {
			stream.Feed(c)
			c.Tick()
		}
	}
	return c
}

// encodeRecords serializes records to bytes with exact float64 bit patterns,
// so equality below means byte-for-byte identical outputs.
func encodeRecords(recs []platform.Record) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		buf.WriteString(r.Game)
		buf.WriteByte(0)
		for _, f := range []float64{
			float64(r.Arrived), float64(r.Finished), float64(r.Elapsed),
			float64(r.ExecSeconds), r.AvgFPS, r.FPSRatio, r.GoodFPSFrac,
			r.Degraded, r.LoadStolen, r.P5FPS,
		} {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// TestEventedMatchesLegacyGolden is the tentpole equivalence gate: the
// event-driven driver and the parallel tick fan-out must reproduce the legacy
// serial loop's outputs byte-for-byte at -jobs 1 and 8.
func TestEventedMatchesLegacyGolden(t *testing.T) {
	cases := []struct {
		name string
		mk   func() countedPolicy
		bulk bool // the steady case must demonstrably skip seconds
	}{
		{"steady-bulk", func() countedPolicy { return &steadyTestPolicy{} }, true},
		{"adaptive-fallback", func() countedPolicy { return &adaptiveTestPolicy{} }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			basePol := tc.mk()
			base := goldenRun(basePol, false, 1)
			baseRecs := base.Records()
			if len(baseRecs) == 0 {
				t.Fatal("seed workload completed no sessions; golden comparison would be vacuous")
			}
			baseBytes := encodeRecords(baseRecs)

			variants := []struct {
				name    string
				evented bool
				jobs    int
			}{
				{"legacy-jobs8", false, 8},
				{"event-jobs1", true, 1},
				{"event-jobs8", true, 8},
			}
			for _, v := range variants {
				pol := tc.mk()
				got := goldenRun(pol, v.evented, v.jobs)
				if !bytes.Equal(encodeRecords(got.Records()), baseBytes) {
					t.Errorf("%s: records diverge from legacy-jobs1 (%d vs %d records)",
						v.name, len(got.Records()), len(baseRecs))
				}
				if got.Placements != base.Placements || got.RejectedTicks != base.RejectedTicks ||
					got.FailedPlacements != base.FailedPlacements {
					t.Errorf("%s: counters diverge: placements %d/%d rejected %d/%d failed %d/%d",
						v.name, got.Placements, base.Placements,
						got.RejectedTicks, base.RejectedTicks,
						got.FailedPlacements, base.FailedPlacements)
				}
				if len(got.Pending) != len(base.Pending) || got.RunningSessions() != base.RunningSessions() {
					t.Errorf("%s: queue state diverges: pending %d/%d running %d/%d",
						v.name, len(got.Pending), len(base.Pending),
						got.RunningSessions(), base.RunningSessions())
				}
				if got.Clock.Now() != base.Clock.Now() {
					t.Errorf("%s: clock diverges: %d vs %d", v.name, got.Clock.Now(), base.Clock.Now())
				}
				if v.evented && tc.bulk && pol.ticks() >= basePol.ticks()*8/10 {
					t.Errorf("%s: bulk path never engaged: %d executed ticks vs %d legacy",
						v.name, pol.ticks(), basePol.ticks())
				}
				if v.evented && !tc.bulk && pol.ticks() != basePol.ticks() {
					t.Errorf("%s: fallback should tick every second: %d vs %d",
						v.name, pol.ticks(), basePol.ticks())
				}
			}
		})
	}
}

// TestRunningTotalsMatchRecompute checks the incrementally maintained
// RequestTotal and Utilization stay bit-identical to the fold-in-hosted-order
// recompute across admissions, regulated ticks, and completion sweeps.
func TestRunningTotalsMatchRecompute(t *testing.T) {
	pol := &adaptiveTestPolicy{}
	c := platform.NewCluster(8, pol)
	gen := workload.NewGenerator(nil, 5)
	stream := workload.NewMixStream(gen, gamesim.AllGames(), 0.05, 9)
	departures := 0
	for i := 0; i < 2500; i++ {
		stream.Feed(c)
		c.Tick()
		if i%37 != 0 {
			continue
		}
		for _, srv := range c.Servers {
			var req, util resources.Vector
			for _, h := range srv.Hosted {
				req = req.Add(h.Request)
				util = util.Add(h.Granted)
			}
			if srv.RequestTotal() != req {
				t.Fatalf("t=%d server %d: RequestTotal %v != fold %v", i, srv.ID, srv.RequestTotal(), req)
			}
			if srv.Utilization() != util {
				t.Fatalf("t=%d server %d: Utilization %v != fold %v", i, srv.ID, srv.Utilization(), util)
			}
			departures += len(srv.Records)
		}
	}
	if departures == 0 {
		t.Fatal("no session ever completed; the post-sweep recompute was never exercised")
	}
}

// TestStreamingSinksMatchSliceAggregation runs the identical workload once
// retaining records and once streaming them into the incremental aggregators:
// throughput must match bit-for-bit, the QoS summary up to float association,
// and a sink-equipped server must retain nothing.
func TestStreamingSinksMatchSliceAggregation(t *testing.T) {
	run := func(sink platform.RecordSink) *platform.Cluster {
		c := platform.NewCluster(goldenServers, &steadyTestPolicy{})
		c.Jobs = 8
		c.StarveLimit = 2 * simclock.Minute
		if sink != nil {
			c.SetSink(sink)
		}
		gen := workload.NewGenerator(nil, 11)
		stream := workload.NewMixStream(gen, gamesim.AllGames(), goldenRate, 23)
		c.RunEvented(goldenHorizon, stream.Schedule(0, goldenHorizon))
		return c
	}

	recs := run(nil).Records()
	if len(recs) == 0 {
		t.Fatal("workload completed no sessions")
	}

	thr := &platform.ThroughputAgg{}
	qos := &platform.QoSAgg{}
	streamed := run(platform.TeeSink{thr, qos})
	if got := streamed.Records(); len(got) != 0 {
		t.Fatalf("sink-equipped cluster retained %d records", len(got))
	}

	if thr.Sessions() != len(recs) {
		t.Fatalf("ThroughputAgg consumed %d sessions, slice run produced %d", thr.Sessions(), len(recs))
	}
	// One game pinned to a reference duration exercises the ref branch.
	ref := map[string]float64{"Contra": 600}
	for _, r := range []map[string]float64{nil, ref} {
		if got, want := thr.Value(r), platform.Throughput(recs, r); got != want {
			t.Errorf("ThroughputAgg.Value(%v) = %v, Throughput = %v (must be bitwise equal)", r, got, want)
		}
	}

	want := platform.Summarize(recs)
	got := qos.Result()
	if got.Sessions != want.Sessions || got.ViolatedFrac != want.ViolatedFrac {
		t.Errorf("QoSAgg sessions/violations %d/%v, Summarize %d/%v",
			got.Sessions, got.ViolatedFrac, want.Sessions, want.ViolatedFrac)
	}
	const tol = 1e-12
	if math.Abs(got.MeanFPSRatio-want.MeanFPSRatio) > tol ||
		math.Abs(got.MeanGoodFPS-want.MeanGoodFPS) > tol ||
		math.Abs(got.MeanDegraded-want.MeanDegraded) > tol {
		t.Errorf("QoSAgg means diverge beyond association tolerance:\nagg:   %+v\nslice: %+v", got, want)
	}
}
