// Package platform is the cloud-game hosting substrate standing in for the
// paper's GamingAnywhere servers: it runs sessions on capacity-limited
// servers, routes per-second measurements to a per-game controller (the
// scheduling policy's agent), applies the policy's server-level regulation,
// and grants resources — letting execution stages drop frames and loading
// stages stretch exactly as the real system would.
package platform

import (
	"fmt"
	"sort"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Controller is one game's per-session resource agent. Every virtual second
// it observes the game's measured utilization (its demand capped by what was
// granted) and returns the allocation cap it requests for the next second.
type Controller interface {
	// Name identifies the policy that produced the controller.
	Name() string
	// Tick observes one second of utilization and returns the requested cap.
	Tick(util resources.Vector) resources.Vector
	// Loading reports the controller's belief that the game is loading —
	// the regulator steals time only from loading games.
	Loading() bool
}

// HardCapper is an optional Controller refinement: a controller whose
// requests are hard partitions (GAugur's fixed limits, VBP's reservations)
// rather than soft caps. Hard-capped games do not receive work-conserving
// spare capacity beyond their request.
type HardCapper interface {
	HardCapped() bool
}

// ForecastRevisioner is an optional Controller refinement: a controller
// whose predicted demand timeline is a pure function of internal state
// stamped by a revision counter. While ForecastRev is unchanged the
// controller's forecast is guaranteed unchanged, so a policy may cache
// aggregates derived from it (the CoCG distributor caches each server's
// summed hosted-demand timeline this way). Controllers that cannot make
// this guarantee simply don't implement the interface and are re-read every
// evaluation.
type ForecastRevisioner interface {
	ForecastRev() uint64
}

// SteadyRequester is an optional Controller refinement: a controller whose
// Tick is a constant function — it returns the same request vector every
// second regardless of the observed utilization, and keeps no per-call state,
// so skipping Tick calls is unobservable. SteadyRequest returns that vector
// (ok=false when the controller is only conditionally steady). The bulk
// advancement path uses it to prove a server's grants for a whole window
// without ticking controllers second-by-second; a controller that ever
// adapts to util must not implement it.
type SteadyRequester interface {
	SteadyRequest() (req resources.Vector, ok bool)
}

// Policy is a complete co-location scheduling scheme: admission (the
// distributor), per-game control, and server-level regulation.
type Policy interface {
	// Name identifies the scheme in result tables.
	Name() string
	// Admit reports whether the game may be placed on the server now.
	Admit(srv *Server, spec *gamesim.GameSpec, habit int64) bool
	// NewController returns the per-session agent for an admitted game.
	NewController(spec *gamesim.GameSpec, habit int64) (Controller, error)
	// Regulate may lower hosted games' requests when the server is about to
	// oversubscribe (e.g. extend loading stages). It runs once per second
	// after all controllers ticked.
	Regulate(srv *Server)
}

// NoopRegulator is an optional Policy refinement: a marker that Regulate
// never observes or mutates anything (a pure no-op), so per-second Regulate
// calls may be skipped entirely. Event-driven bulk advancement requires it —
// a policy that regulates must see every second.
type NoopRegulator interface {
	RegulateIsNoop() bool
}

// ConcurrentTicker is an optional Policy refinement: a marker that the
// policy's per-second methods (Regulate, plus any Controller state it
// shares) touch only the server they are handed, never policy-global state,
// so distinct servers may tick on distinct goroutines. Serial entry points
// (Admit, Score, ClusterLoad) keep their existing single-caller contract.
type ConcurrentTicker interface {
	ConcurrentTickSafe() bool
}

// Hosted is one game session running on a server.
type Hosted struct {
	ID         int
	Spec       *gamesim.GameSpec
	Session    *gamesim.Session
	Controller Controller
	// Request is the controller's current allocation cap.
	Request resources.Vector
	// Granted is what the server actually gave last second.
	Granted resources.Vector
	// Arrived is when the session was placed.
	Arrived simclock.Seconds

	lastGrant resources.Vector
}

// Record is the outcome of one completed session.
type Record struct {
	Game        string
	Arrived     simclock.Seconds
	Finished    simclock.Seconds
	Elapsed     simclock.Seconds
	ExecSeconds simclock.Seconds
	AvgFPS      float64
	FPSRatio    float64
	GoodFPSFrac float64
	Degraded    float64
	LoadStolen  float64
	// P5FPS is the 5th-percentile per-second frame rate: the stutter floor
	// the player actually felt.
	P5FPS float64
}

// RecordSink consumes completed-session records as they happen. A server
// with a sink streams records into it instead of retaining them in
// Server.Records, keeping million-session runs at O(1) memory per
// completion. Implementations must be safe for concurrent calls when the
// cluster ticks servers in parallel.
type RecordSink interface {
	ConsumeRecord(serverID int, r Record)
}

// Server is one capacity-limited game server.
type Server struct {
	ID       int
	Capacity resources.Vector
	Hosted   []*Hosted
	Records  []Record
	// Sink, when non-nil, receives each completed session's record instead
	// of Server.Records retaining it.
	Sink RecordSink
	// Draining marks a server being taken out of rotation: running sessions
	// finish normally (cloud games cannot migrate — Section I), but the
	// cluster places nothing new on it.
	Draining bool

	clock  *simclock.Clock
	nextID int
	// scratch holds the per-tick working vectors, grown once to the hosted
	// count and reused so a steady-state tick allocates nothing.
	scratch tickScratch
	// reqTotal and utilTotal are running copies of what RequestTotal and
	// Utilization used to recompute O(hosted) on every scheduler probe. They
	// are maintained to be bit-identical with the fold-in-hosted-order
	// recompute: accumulated in the same order during the tick and re-derived
	// from scratch whenever a sweep changes membership (an admission appends
	// zero vectors, which cannot change either fold).
	reqTotal  resources.Vector
	utilTotal resources.Vector
	// peakUtil tracks the highest total grant observed, for reporting. Under
	// bulk advancement it is sampled only on the per-second ticks that
	// actually run (see docs/PERFORMANCE.md).
	peakUtil resources.Vector
	// rev counts membership changes (admissions and departures). Together
	// with the hosted controllers' ForecastRevs it stamps everything a
	// cached per-server aggregate forecast depends on.
	rev uint64
}

// Rev returns the server's membership revision: it bumps whenever a session
// is added or swept out, never otherwise. Policies key per-server forecast
// caches on it.
func (s *Server) Rev() uint64 { return s.rev }

// NewServer returns a server with the given capacity, sharing the cluster
// clock.
func NewServer(id int, capacity resources.Vector, clock *simclock.Clock) *Server {
	return &Server{ID: id, Capacity: capacity, clock: clock}
}

// Add places a session on the server under the given controller.
func (s *Server) Add(spec *gamesim.GameSpec, sess *gamesim.Session, ctl Controller) *Hosted {
	h := &Hosted{
		ID:         s.nextID,
		Spec:       spec,
		Session:    sess,
		Controller: ctl,
		Arrived:    s.clock.Now(),
		lastGrant:  resources.FullServer,
	}
	s.nextID++
	s.rev++
	s.Hosted = append(s.Hosted, h)
	return h
}

// NumHosted returns how many sessions are currently running.
func (s *Server) NumHosted() int { return len(s.Hosted) }

// Utilization returns the sum of last grants — the server's current load.
// The total is maintained incrementally but is bit-identical to summing
// h.Granted over Hosted in order.
func (s *Server) Utilization() resources.Vector { return s.utilTotal }

// PeakUtilization returns the highest total grant seen so far.
func (s *Server) PeakUtilization() resources.Vector { return s.peakUtil }

// RequestTotal returns the sum of current controller requests. The total is
// maintained incrementally but is bit-identical to summing h.Request over
// Hosted in order.
func (s *Server) RequestTotal() resources.Vector { return s.reqTotal }

// SyncTotals re-derives the running request/utilization totals from the
// hosted list. The tick loop maintains them itself; callers that mutate
// Hosted state directly (test harnesses crafting a scenario) must call this
// before probing RequestTotal or Utilization.
func (s *Server) SyncTotals() { s.recomputeTotals() }

// recomputeTotals re-derives both running totals with the canonical
// fold-in-hosted-order sums. Called after membership shrinks: a departed
// session's contribution cannot be subtracted bitwise, so the fold restarts.
func (s *Server) recomputeTotals() {
	var req, util resources.Vector
	for _, h := range s.Hosted {
		req = req.Add(h.Request)
		util = util.Add(h.Granted)
	}
	s.reqTotal, s.utilTotal = req, util
}

// tickScratch holds Server.Tick's per-hosted working vectors, grown once and
// reused so steady-state ticks allocate nothing.
type tickScratch struct {
	demands  []resources.Vector
	needs    []resources.Vector
	grants   []resources.Vector
	deficits []resources.Vector
	// steady caches each hosted controller's steady request during bulk
	// window certification (event.go).
	steady []resources.Vector
}

// grow resizes every scratch slice to at least n entries. It runs only when
// the hosted count exceeds every previous tick's (a cold membership event,
// never steady state); noinline keeps its allocations from being attributed
// into the //cocg:hot callers by inlining.
//
//go:noinline
func (t *tickScratch) grow(n int) {
	t.demands = make([]resources.Vector, n)
	t.needs = make([]resources.Vector, n)
	t.grants = make([]resources.Vector, n)
	t.deficits = make([]resources.Vector, n)
	t.steady = make([]resources.Vector, n)
}

// Tick advances the server by one virtual second under the given policy:
// controllers observe and request, the policy regulates, and the server
// grants min(demand, request) — scaled down proportionally per dimension in
// the (policy-failure) case where even the needs exceed capacity.
func (s *Server) Tick(p Policy) {
	s.tickAt(p, s.clock.Now())
}

// tickAt is Tick with an explicit timestamp: the event-driven driver runs
// servers ahead of the shared cluster clock, so completion records must be
// stamped with the virtual second being simulated rather than the clock.
//
//cocg:hot
func (s *Server) tickAt(p Policy, now simclock.Seconds) {
	n := len(s.Hosted)
	if n == 0 {
		return
	}
	if cap(s.scratch.demands) < n {
		s.scratch.grow(n)
	}
	demands := s.scratch.demands[:n]
	var reqTotal, utilPrev resources.Vector
	for i, h := range s.Hosted {
		d := h.Session.Demand()
		demands[i] = d
		// Measured utilization is demand capped by the previous grant: a
		// throttled game cannot consume more than it was given.
		util := d.Min(h.lastGrant)
		h.Request = h.Controller.Tick(util).ClampNonNegative()
		reqTotal = reqTotal.Add(h.Request)
		utilPrev = utilPrev.Add(h.Granted)
	}
	// Publish the running totals the regulator may probe: requests are this
	// second's, grants are still last second's — exactly what the fold-based
	// recompute would return at this point.
	s.reqTotal, s.utilTotal = reqTotal, utilPrev
	p.Regulate(s)

	// Effective needs under the (possibly regulated) requests; the request
	// total is re-derived because Regulate may have lowered requests.
	needs := s.scratch.needs[:n]
	var total resources.Vector
	reqTotal = resources.Zero
	for i, h := range s.Hosted {
		needs[i] = demands[i].Min(h.Request)
		total = total.Add(needs[i])
		reqTotal = reqTotal.Add(h.Request)
	}
	s.reqTotal = reqTotal
	// Per-dimension scale factor when needs exceed capacity.
	var scale resources.Vector
	for d := range scale {
		if total[d] > s.Capacity[d] && total[d] > 0 {
			scale[d] = s.Capacity[d] / total[d]
		} else {
			scale[d] = 1
		}
	}
	grants := s.scratch.grants[:n]
	var granted resources.Vector
	for i := range s.Hosted {
		g := needs[i]
		for d := range g {
			g[d] *= scale[d]
		}
		grants[i] = g
		granted = granted.Add(g)
	}

	// Work-conserving redistribution: capacity left over after every cap is
	// honored flows to games whose demand exceeds their cap (a cgroup soft
	// limit / GPU time-slice behaves the same way). Caps therefore bind
	// only when the server is actually contended — except for hard-capped
	// controllers (fixed partitions), which never receive spare capacity.
	leftover := s.Capacity.Sub(granted).ClampNonNegative()
	var deficitTotal resources.Vector
	deficits := s.scratch.deficits[:n]
	for i, h := range s.Hosted {
		deficits[i] = resources.Zero
		if hc, ok := h.Controller.(HardCapper); ok && hc.HardCapped() {
			continue
		}
		deficits[i] = demands[i].Sub(grants[i]).ClampNonNegative()
		deficitTotal = deficitTotal.Add(deficits[i])
	}
	var share resources.Vector
	for d := range share {
		if deficitTotal[d] > 0 {
			share[d] = leftover[d] / deficitTotal[d]
			if share[d] > 1 {
				share[d] = 1
			}
		}
	}
	granted = resources.Zero
	for i, h := range s.Hosted {
		extra := deficits[i]
		for d := range extra {
			extra[d] *= share[d]
		}
		g := grants[i].Add(extra)
		h.Granted = g
		h.lastGrant = h.Request.Max(g) // the game could use up to this
		granted = granted.Add(g)
		h.Session.Step(g)
	}
	s.peakUtil = s.peakUtil.Max(granted)
	s.utilTotal = granted

	// Sweep completed sessions into records.
	remaining := s.Hosted[:0]
	for _, h := range s.Hosted {
		if h.Session.Done() {
			s.emitRecord(h, now)
		} else {
			remaining = append(remaining, h)
		}
	}
	if len(remaining) != len(s.Hosted) {
		s.rev++
		s.Hosted = remaining
		// A departed grant cannot be subtracted bitwise; restart the folds.
		s.recomputeTotals()
		return
	}
	s.Hosted = remaining
}

// emitRecord routes one completed session's record to the sink, or retains
// it in Records when the server has no sink. Separate from tickAt so the
// append's grow path stays out of the hot range.
func (s *Server) emitRecord(h *Hosted, now simclock.Seconds) {
	r := Record{
		Game:        h.Spec.Name,
		Arrived:     h.Arrived,
		Finished:    now,
		Elapsed:     h.Session.Elapsed(),
		ExecSeconds: h.Session.ExecSeconds(),
		AvgFPS:      h.Session.AvgFPS(),
		FPSRatio:    h.Session.FPSRatio(),
		GoodFPSFrac: h.Session.GoodFPSFraction(),
		Degraded:    h.Session.DegradedFraction(),
		LoadStolen:  h.Session.LoadExtended(),
		P5FPS:       h.Session.FPSPercentile(5),
	}
	if s.Sink != nil {
		s.Sink.ConsumeRecord(s.ID, r)
		return
	}
	s.Records = append(s.Records, r)
}

// Throughput computes Eq. 2 over completed records: T = Σ N_i · S_i, with
// N_i the number of completed runs of game i and S_i the game's duration.
// When ref provides a game's reference duration (its unimpeded session
// length), that is used as S_i — a lag-stretched run must not count for
// more; otherwise the mean observed duration stands in.
func Throughput(records []Record, ref map[string]float64) float64 {
	count := map[string]int{}
	dur := map[string]float64{}
	for _, r := range records {
		count[r.Game]++
		dur[r.Game] += float64(r.Elapsed)
	}
	// Accumulate in sorted game order so the floating-point sum never
	// depends on map iteration order.
	games := make([]string, 0, len(count))
	for g := range count {
		games = append(games, g)
	}
	sort.Strings(games)
	var t float64
	for _, g := range games {
		n := count[g]
		s := dur[g] / float64(n)
		if refDur, ok := ref[g]; ok && refDur > 0 {
			s = refDur
		}
		t += float64(n) * s
	}
	return t
}

// QoSSummary aggregates QoS over records.
type QoSSummary struct {
	Sessions     int
	MeanFPSRatio float64
	MeanGoodFPS  float64
	MeanDegraded float64
	// ViolatedFrac is the fraction of sessions degraded for more than 5 %
	// of their execution time — the operator tolerance of Section IV-D.
	ViolatedFrac float64
}

// Summarize computes the QoS summary of a record set.
func Summarize(records []Record) QoSSummary {
	var out QoSSummary
	out.Sessions = len(records)
	if out.Sessions == 0 {
		return out
	}
	viol := 0
	for _, r := range records {
		out.MeanFPSRatio += r.FPSRatio
		out.MeanGoodFPS += r.GoodFPSFrac
		out.MeanDegraded += r.Degraded
		if r.Degraded > 0.05 {
			viol++
		}
	}
	n := float64(out.Sessions)
	out.MeanFPSRatio /= n
	out.MeanGoodFPS /= n
	out.MeanDegraded /= n
	out.ViolatedFrac = float64(viol) / n
	return out
}

// String renders the summary on one line.
func (q QoSSummary) String() string {
	return fmt.Sprintf("sessions=%d fps=%.1f%% good=%.1f%% degraded=%.1f%% violated=%.1f%%",
		q.Sessions, 100*q.MeanFPSRatio, 100*q.MeanGoodFPS, 100*q.MeanDegraded, 100*q.ViolatedFrac)
}
