// Package platform is the cloud-game hosting substrate standing in for the
// paper's GamingAnywhere servers: it runs sessions on capacity-limited
// servers, routes per-second measurements to a per-game controller (the
// scheduling policy's agent), applies the policy's server-level regulation,
// and grants resources — letting execution stages drop frames and loading
// stages stretch exactly as the real system would.
package platform

import (
	"fmt"
	"sort"

	"cocg/internal/gamesim"
	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Controller is one game's per-session resource agent. Every virtual second
// it observes the game's measured utilization (its demand capped by what was
// granted) and returns the allocation cap it requests for the next second.
type Controller interface {
	// Name identifies the policy that produced the controller.
	Name() string
	// Tick observes one second of utilization and returns the requested cap.
	Tick(util resources.Vector) resources.Vector
	// Loading reports the controller's belief that the game is loading —
	// the regulator steals time only from loading games.
	Loading() bool
}

// HardCapper is an optional Controller refinement: a controller whose
// requests are hard partitions (GAugur's fixed limits, VBP's reservations)
// rather than soft caps. Hard-capped games do not receive work-conserving
// spare capacity beyond their request.
type HardCapper interface {
	HardCapped() bool
}

// ForecastRevisioner is an optional Controller refinement: a controller
// whose predicted demand timeline is a pure function of internal state
// stamped by a revision counter. While ForecastRev is unchanged the
// controller's forecast is guaranteed unchanged, so a policy may cache
// aggregates derived from it (the CoCG distributor caches each server's
// summed hosted-demand timeline this way). Controllers that cannot make
// this guarantee simply don't implement the interface and are re-read every
// evaluation.
type ForecastRevisioner interface {
	ForecastRev() uint64
}

// Policy is a complete co-location scheduling scheme: admission (the
// distributor), per-game control, and server-level regulation.
type Policy interface {
	// Name identifies the scheme in result tables.
	Name() string
	// Admit reports whether the game may be placed on the server now.
	Admit(srv *Server, spec *gamesim.GameSpec, habit int64) bool
	// NewController returns the per-session agent for an admitted game.
	NewController(spec *gamesim.GameSpec, habit int64) (Controller, error)
	// Regulate may lower hosted games' requests when the server is about to
	// oversubscribe (e.g. extend loading stages). It runs once per second
	// after all controllers ticked.
	Regulate(srv *Server)
}

// Hosted is one game session running on a server.
type Hosted struct {
	ID         int
	Spec       *gamesim.GameSpec
	Session    *gamesim.Session
	Controller Controller
	// Request is the controller's current allocation cap.
	Request resources.Vector
	// Granted is what the server actually gave last second.
	Granted resources.Vector
	// Arrived is when the session was placed.
	Arrived simclock.Seconds

	lastGrant resources.Vector
}

// Record is the outcome of one completed session.
type Record struct {
	Game        string
	Arrived     simclock.Seconds
	Finished    simclock.Seconds
	Elapsed     simclock.Seconds
	ExecSeconds simclock.Seconds
	AvgFPS      float64
	FPSRatio    float64
	GoodFPSFrac float64
	Degraded    float64
	LoadStolen  float64
	// P5FPS is the 5th-percentile per-second frame rate: the stutter floor
	// the player actually felt.
	P5FPS float64
}

// Server is one capacity-limited game server.
type Server struct {
	ID       int
	Capacity resources.Vector
	Hosted   []*Hosted
	Records  []Record
	// Draining marks a server being taken out of rotation: running sessions
	// finish normally (cloud games cannot migrate — Section I), but the
	// cluster places nothing new on it.
	Draining bool

	clock  *simclock.Clock
	nextID int
	// peakUtil tracks the highest total grant observed, for reporting.
	peakUtil resources.Vector
	// rev counts membership changes (admissions and departures). Together
	// with the hosted controllers' ForecastRevs it stamps everything a
	// cached per-server aggregate forecast depends on.
	rev uint64
}

// Rev returns the server's membership revision: it bumps whenever a session
// is added or swept out, never otherwise. Policies key per-server forecast
// caches on it.
func (s *Server) Rev() uint64 { return s.rev }

// NewServer returns a server with the given capacity, sharing the cluster
// clock.
func NewServer(id int, capacity resources.Vector, clock *simclock.Clock) *Server {
	return &Server{ID: id, Capacity: capacity, clock: clock}
}

// Add places a session on the server under the given controller.
func (s *Server) Add(spec *gamesim.GameSpec, sess *gamesim.Session, ctl Controller) *Hosted {
	h := &Hosted{
		ID:         s.nextID,
		Spec:       spec,
		Session:    sess,
		Controller: ctl,
		Arrived:    s.clock.Now(),
		lastGrant:  resources.FullServer,
	}
	s.nextID++
	s.rev++
	s.Hosted = append(s.Hosted, h)
	return h
}

// NumHosted returns how many sessions are currently running.
func (s *Server) NumHosted() int { return len(s.Hosted) }

// Utilization returns the sum of last grants — the server's current load.
func (s *Server) Utilization() resources.Vector {
	var u resources.Vector
	for _, h := range s.Hosted {
		u = u.Add(h.Granted)
	}
	return u
}

// PeakUtilization returns the highest total grant seen so far.
func (s *Server) PeakUtilization() resources.Vector { return s.peakUtil }

// RequestTotal returns the sum of current controller requests.
func (s *Server) RequestTotal() resources.Vector {
	var u resources.Vector
	for _, h := range s.Hosted {
		u = u.Add(h.Request)
	}
	return u
}

// Tick advances the server by one virtual second under the given policy:
// controllers observe and request, the policy regulates, and the server
// grants min(demand, request) — scaled down proportionally per dimension in
// the (policy-failure) case where even the needs exceed capacity.
func (s *Server) Tick(p Policy) {
	if len(s.Hosted) == 0 {
		return
	}
	demands := make([]resources.Vector, len(s.Hosted))
	for i, h := range s.Hosted {
		d := h.Session.Demand()
		demands[i] = d
		// Measured utilization is demand capped by the previous grant: a
		// throttled game cannot consume more than it was given.
		util := d.Min(h.lastGrant)
		h.Request = h.Controller.Tick(util).ClampNonNegative()
	}
	p.Regulate(s)

	// Effective needs under the (possibly regulated) requests.
	needs := make([]resources.Vector, len(s.Hosted))
	var total resources.Vector
	for i, h := range s.Hosted {
		needs[i] = demands[i].Min(h.Request)
		total = total.Add(needs[i])
	}
	// Per-dimension scale factor when needs exceed capacity.
	var scale resources.Vector
	for d := range scale {
		if total[d] > s.Capacity[d] && total[d] > 0 {
			scale[d] = s.Capacity[d] / total[d]
		} else {
			scale[d] = 1
		}
	}
	grants := make([]resources.Vector, len(s.Hosted))
	var granted resources.Vector
	for i := range s.Hosted {
		g := needs[i]
		for d := range g {
			g[d] *= scale[d]
		}
		grants[i] = g
		granted = granted.Add(g)
	}

	// Work-conserving redistribution: capacity left over after every cap is
	// honored flows to games whose demand exceeds their cap (a cgroup soft
	// limit / GPU time-slice behaves the same way). Caps therefore bind
	// only when the server is actually contended — except for hard-capped
	// controllers (fixed partitions), which never receive spare capacity.
	leftover := s.Capacity.Sub(granted).ClampNonNegative()
	var deficitTotal resources.Vector
	deficits := make([]resources.Vector, len(s.Hosted))
	for i, h := range s.Hosted {
		if hc, ok := h.Controller.(HardCapper); ok && hc.HardCapped() {
			continue
		}
		deficits[i] = demands[i].Sub(grants[i]).ClampNonNegative()
		deficitTotal = deficitTotal.Add(deficits[i])
	}
	var share resources.Vector
	for d := range share {
		if deficitTotal[d] > 0 {
			share[d] = leftover[d] / deficitTotal[d]
			if share[d] > 1 {
				share[d] = 1
			}
		}
	}
	granted = resources.Zero
	for i, h := range s.Hosted {
		extra := deficits[i]
		for d := range extra {
			extra[d] *= share[d]
		}
		g := grants[i].Add(extra)
		h.Granted = g
		h.lastGrant = h.Request.Max(g) // the game could use up to this
		granted = granted.Add(g)
		h.Session.Step(g)
	}
	s.peakUtil = s.peakUtil.Max(granted)

	// Sweep completed sessions into records.
	remaining := s.Hosted[:0]
	for _, h := range s.Hosted {
		if h.Session.Done() {
			s.Records = append(s.Records, Record{
				Game:        h.Spec.Name,
				Arrived:     h.Arrived,
				Finished:    s.clock.Now(),
				Elapsed:     h.Session.Elapsed(),
				ExecSeconds: h.Session.ExecSeconds(),
				AvgFPS:      h.Session.AvgFPS(),
				FPSRatio:    h.Session.FPSRatio(),
				GoodFPSFrac: h.Session.GoodFPSFraction(),
				Degraded:    h.Session.DegradedFraction(),
				LoadStolen:  h.Session.LoadExtended(),
				P5FPS:       h.Session.FPSPercentile(5),
			})
		} else {
			remaining = append(remaining, h)
		}
	}
	if len(remaining) != len(s.Hosted) {
		s.rev++
	}
	s.Hosted = remaining
}

// Throughput computes Eq. 2 over completed records: T = Σ N_i · S_i, with
// N_i the number of completed runs of game i and S_i the game's duration.
// When ref provides a game's reference duration (its unimpeded session
// length), that is used as S_i — a lag-stretched run must not count for
// more; otherwise the mean observed duration stands in.
func Throughput(records []Record, ref map[string]float64) float64 {
	count := map[string]int{}
	dur := map[string]float64{}
	for _, r := range records {
		count[r.Game]++
		dur[r.Game] += float64(r.Elapsed)
	}
	// Accumulate in sorted game order so the floating-point sum never
	// depends on map iteration order.
	games := make([]string, 0, len(count))
	for g := range count {
		games = append(games, g)
	}
	sort.Strings(games)
	var t float64
	for _, g := range games {
		n := count[g]
		s := dur[g] / float64(n)
		if refDur, ok := ref[g]; ok && refDur > 0 {
			s = refDur
		}
		t += float64(n) * s
	}
	return t
}

// QoSSummary aggregates QoS over records.
type QoSSummary struct {
	Sessions     int
	MeanFPSRatio float64
	MeanGoodFPS  float64
	MeanDegraded float64
	// ViolatedFrac is the fraction of sessions degraded for more than 5 %
	// of their execution time — the operator tolerance of Section IV-D.
	ViolatedFrac float64
}

// Summarize computes the QoS summary of a record set.
func Summarize(records []Record) QoSSummary {
	var out QoSSummary
	out.Sessions = len(records)
	if out.Sessions == 0 {
		return out
	}
	viol := 0
	for _, r := range records {
		out.MeanFPSRatio += r.FPSRatio
		out.MeanGoodFPS += r.GoodFPSFrac
		out.MeanDegraded += r.Degraded
		if r.Degraded > 0.05 {
			viol++
		}
	}
	n := float64(out.Sessions)
	out.MeanFPSRatio /= n
	out.MeanGoodFPS /= n
	out.MeanDegraded /= n
	out.ViolatedFrac = float64(viol) / n
	return out
}

// String renders the summary on one line.
func (q QoSSummary) String() string {
	return fmt.Sprintf("sessions=%d fps=%.1f%% good=%.1f%% degraded=%.1f%% violated=%.1f%%",
		q.Sessions, 100*q.MeanFPSRatio, 100*q.MeanGoodFPS, 100*q.MeanDegraded, 100*q.ViolatedFrac)
}
