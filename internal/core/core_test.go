package core

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
)

func smallSystem(t *testing.T) *System {
	t.Helper()
	s, err := Train([]*gamesim.GameSpec{gamesim.Contra(), gamesim.GenshinImpact()},
		TrainOptions{Players: 4, SessionsPerPlayer: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("empty game list did not error")
	}
}

func TestSystemAccessors(t *testing.T) {
	s := smallSystem(t)
	games := s.Games()
	if len(games) != 2 || games[0] != "Contra" || games[1] != "Genshin Impact" {
		t.Errorf("Games = %v", games)
	}
	if _, ok := s.Bundle("Contra"); !ok {
		t.Error("Bundle(Contra) missing")
	}
	if _, ok := s.Bundle("nope"); ok {
		t.Error("Bundle(nope) present")
	}
	if len(s.Profiles()) != 2 {
		t.Error("Profiles wrong length")
	}
}

func TestPolicyKinds(t *testing.T) {
	s := smallSystem(t)
	wantNames := map[PolicyKind]string{
		PolicyCoCG: "CoCG", PolicyVBP: "VBP", PolicyGAugur: "GAugur", PolicyReactive: "Reactive",
	}
	for kind, want := range wantNames {
		if kind.String() != want {
			t.Errorf("kind string = %q, want %q", kind.String(), want)
		}
		p := s.Policy(kind)
		if p.Name() != want {
			t.Errorf("policy name = %q, want %q", p.Name(), want)
		}
	}
	if len(AllPolicies()) != 4 {
		t.Error("AllPolicies wrong length")
	}
	if PolicyKind(9).String() != "policy(9)" {
		t.Error("unknown policy string")
	}
}

func TestHabitPoolsCoverAllGames(t *testing.T) {
	s := smallSystem(t)
	pools := s.HabitPools()
	for _, g := range s.Games() {
		if len(pools[g]) == 0 {
			t.Errorf("no habit pool for %s", g)
		}
	}
}

func TestEndToEndClusterRun(t *testing.T) {
	s := smallSystem(t)
	for _, kind := range AllPolicies() {
		c := s.NewCluster(1, kind)
		gen := s.Generator(5)
		c.Submit(gen.Next(gamesim.Contra()))
		c.Run(1200)
		if len(c.Records()) == 0 && c.RunningSessions() == 0 {
			t.Errorf("%v: session vanished", kind)
		}
		if kind == PolicyCoCG && len(c.Records()) == 1 {
			if c.Records()[0].FPSRatio < 0.95 {
				t.Errorf("CoCG solo Contra FPS %.3f", c.Records()[0].FPSRatio)
			}
		}
	}
}

func TestClusterSummaries(t *testing.T) {
	s := smallSystem(t)
	c := s.NewCluster(1, PolicyCoCG)
	gen := s.Generator(5)
	c.Submit(gen.Next(gamesim.Contra()))
	c.Run(1500)
	recs := c.Records()
	if len(recs) == 0 {
		t.Fatal("no completed sessions")
	}
	if platform.Throughput(recs, nil) <= 0 {
		t.Error("throughput not positive")
	}
}
