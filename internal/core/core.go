// Package core is the CoCG system facade: it runs the one-time offline
// pipeline for a set of games (profiling corpus → frame clustering → stage
// catalog → predictor training) and wires the resulting bundles into
// schedulable clusters under any of the evaluated policies.
package core

import (
	"fmt"
	"sort"
	"sync"

	"cocg/internal/baselines"
	"cocg/internal/gamesim"
	"cocg/internal/parallel"
	"cocg/internal/platform"
	"cocg/internal/predictor"
	"cocg/internal/profiler"
	"cocg/internal/scheduler"
	"cocg/internal/workload"
)

// PolicyKind selects a co-location scheme.
type PolicyKind int

// The evaluated schemes: the paper's system and its three comparison points.
const (
	PolicyCoCG PolicyKind = iota
	PolicyVBP
	PolicyGAugur
	PolicyReactive
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyCoCG:
		return "CoCG"
	case PolicyVBP:
		return "VBP"
	case PolicyGAugur:
		return "GAugur"
	case PolicyReactive:
		return "Reactive"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// AllPolicies lists every scheme in evaluation order.
func AllPolicies() []PolicyKind {
	return []PolicyKind{PolicyVBP, PolicyGAugur, PolicyReactive, PolicyCoCG}
}

// TrainOptions shapes the offline pass.
type TrainOptions struct {
	// Players and SessionsPerPlayer size the profiling corpus per game;
	// zero values give the predictor package defaults.
	Players           int
	SessionsPerPlayer int
	Seed              int64
	// ForceGlobal disables the category-aware training-set selection
	// (ablation).
	ForceGlobal bool
	// SchedulerConfig tunes the CoCG policy built from this system.
	SchedulerConfig scheduler.Config
	// Workers bounds the total goroutines the offline pass may use across
	// per-game training, clustering, and model fitting; <= 0 means
	// GOMAXPROCS. The trained system does not depend on it.
	Workers int
}

// System is a fully trained CoCG deployment for a set of games.
type System struct {
	Bundles map[string]*predictor.Trained
	opts    TrainOptions
}

// Train runs the complete offline pipeline for every game. Games are
// independent, so they train in parallel under a bounded worker group;
// results are deterministic because each game's corpus and models derive
// only from the shared seed, never from the worker count.
func Train(specs []*gamesim.GameSpec, opts TrainOptions) (*System, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no games to train")
	}
	s := &System{Bundles: map[string]*predictor.Trained{}, opts: opts}
	// The per-game fan-out and the within-game fan-out (clustering, RF
	// trees, habit models) share one budget: each game's inner pass gets
	// the whole budget only when games cannot saturate it themselves.
	workers := parallel.Workers(opts.Workers)
	inner := (workers + len(specs) - 1) / len(specs)
	var mu sync.Mutex
	g := parallel.NewGroup(workers)
	for _, spec := range specs {
		spec := spec
		g.Go(func() error {
			b, err := predictor.TrainForGame(spec, predictor.TrainConfig{
				Players:           opts.Players,
				SessionsPerPlayer: opts.SessionsPerPlayer,
				Seed:              opts.Seed,
				ForceGlobal:       opts.ForceGlobal,
				Workers:           inner,
			})
			if err != nil {
				return fmt.Errorf("core: training %s: %w", spec.Name, err)
			}
			mu.Lock()
			s.Bundles[spec.Name] = b
			mu.Unlock()
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return s, nil
}

// Games lists the trained game names, sorted.
func (s *System) Games() []string {
	out := make([]string, 0, len(s.Bundles))
	for g := range s.Bundles {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Bundle returns a game's training bundle.
func (s *System) Bundle(game string) (*predictor.Trained, bool) {
	b, ok := s.Bundles[game]
	return b, ok
}

// Profiles returns the game profiles in sorted-name order.
func (s *System) Profiles() []*profiler.Profile {
	var out []*profiler.Profile
	for _, g := range s.Games() {
		out = append(out, s.Bundles[g].Profile)
	}
	return out
}

// bundles returns the training bundles in sorted-name order.
func (s *System) bundles() []*predictor.Trained {
	var out []*predictor.Trained
	for _, g := range s.Games() {
		out = append(out, s.Bundles[g])
	}
	return out
}

// Policy instantiates one of the evaluated schemes over this system's
// offline artifacts.
func (s *System) Policy(kind PolicyKind) platform.Policy {
	switch kind {
	case PolicyVBP:
		return baselines.NewVBP(s.Profiles())
	case PolicyGAugur:
		return baselines.NewGAugur(s.Profiles())
	case PolicyReactive:
		return baselines.NewReactive(s.Profiles())
	default:
		return scheduler.New(s.bundles(), s.opts.SchedulerConfig)
	}
}

// NewCluster builds an n-server cluster under the given scheme.
func (s *System) NewCluster(n int, kind PolicyKind) *platform.Cluster {
	return platform.NewCluster(n, s.Policy(kind))
}

// HabitPools returns the returning-player habit seeds per game, for workload
// generation.
func (s *System) HabitPools() map[string][]int64 {
	out := map[string][]int64{}
	for g, b := range s.Bundles {
		out[g] = b.Pool()
	}
	return out
}

// Generator builds a workload generator over the system's player pools.
func (s *System) Generator(seed int64) *workload.Generator {
	return workload.NewGenerator(s.HabitPools(), seed)
}
