// Package baselines implements the schemes CoCG is evaluated against in
// Section V: Vector Bin Packing (VBP), GAugur-style pairwise profiling with
// fixed limits, and the paper's own "improved version" — a stage-aware but
// prediction-free reactive allocator.
package baselines

import (
	"fmt"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/profiler"
	"cocg/internal/resources"
	"cocg/internal/simclock"
	"cocg/internal/telemetry"
)

// profiles maps game names to their offline profiles; every baseline had
// access to the same profiling pass in the paper's evaluation.
type profiles map[string]*profiler.Profile

func toProfiles(ps []*profiler.Profile) profiles {
	m := make(profiles, len(ps))
	for _, p := range ps {
		m[p.Game] = p
	}
	return m
}

// flatController requests a constant vector forever — the agent of every
// scheme that ignores stages. When hard, the request is a fixed partition
// (GAugur's limits) that never receives work-conserving spillover; when
// soft, it is an admission-time reservation only (VBP).
type flatController struct {
	name string
	req  resources.Vector
	hard bool
}

func (f *flatController) Name() string                           { return f.name }
func (f *flatController) Tick(resources.Vector) resources.Vector { return f.req }
func (f *flatController) Loading() bool                          { return false }
func (f *flatController) HardCapped() bool                       { return f.hard }

// SteadyRequest implements platform.SteadyRequester: the request never moves
// and Tick keeps no state, so skipped ticks are unobservable.
func (f *flatController) SteadyRequest() (resources.Vector, bool) { return f.req, true }

// --- VBP ---

// VBP is Vector Bin Packing (Section V-B2): each game is assumed to run
// normally at 90 % of its maximum consumption, and a game is assigned to a
// server only when the remaining capacity exceeds that flat peak.
type VBP struct {
	profiles profiles
	// Factor is the fraction of peak reserved; the paper uses 0.9.
	Factor float64
}

// NewVBP builds the VBP policy over the games' offline profiles.
func NewVBP(ps []*profiler.Profile) *VBP {
	return &VBP{profiles: toProfiles(ps), Factor: 0.9}
}

// Name implements platform.Policy.
func (v *VBP) Name() string { return "VBP" }

func (v *VBP) reservation(game string) (resources.Vector, bool) {
	p, ok := v.profiles[game]
	if !ok {
		return resources.Zero, false
	}
	return p.PeakDemand().Scale(v.Factor), true
}

// Admit implements platform.Policy: a game joins a server only when the
// remaining capacity covers its 90 %-of-peak reservation. VBP reservations
// are admission-time vectors, not runtime caps.
func (v *VBP) Admit(srv *platform.Server, spec *gamesim.GameSpec, habit int64) bool {
	res, ok := v.reservation(spec.Name)
	if !ok {
		return false
	}
	var reserved resources.Vector
	for _, h := range srv.Hosted {
		r, ok := v.reservation(h.Spec.Name)
		if !ok {
			r = h.Request
		}
		reserved = reserved.Add(r)
	}
	return reserved.Add(res).Fits(srv.Capacity)
}

// NewController implements platform.Policy: at runtime a VBP game may use up
// to its full profiled peak (the reservation constrains packing, not
// execution).
func (v *VBP) NewController(spec *gamesim.GameSpec, habit int64) (platform.Controller, error) {
	p, ok := v.profiles[spec.Name]
	if !ok {
		return nil, fmt.Errorf("baselines: no profile for %s", spec.Name)
	}
	return &flatController{name: "VBP", req: p.PeakDemand().Scale(1.1).Clamp(0, 100)}, nil
}

// Regulate implements platform.Policy; VBP has no runtime regulation.
func (v *VBP) Regulate(*platform.Server) {}

// RegulateIsNoop implements platform.NoopRegulator.
func (v *VBP) RegulateIsNoop() bool { return true }

// ConcurrentTickSafe implements platform.ConcurrentTicker: VBP's runtime
// behavior is entirely per-server flat controllers.
func (v *VBP) ConcurrentTickSafe() bool { return true }

// --- GAugur ---

// GAugur reproduces the baseline of Li et al. (HPDC'19) as the paper uses
// it: offline profiling predicts whether two games can be co-located, and
// once placed, each game gets a fixed resource limit for its whole lifetime.
// The fixed limits are sized from mean consumption, which is why its FPS
// suffers at stage peaks (Fig. 13).
type GAugur struct {
	profiles profiles
	// MarginFactor scales the mean consumption into the fixed limit; 1.05
	// reproduces the reported behavior (covers typical stages, not peaks).
	MarginFactor float64
	// MaxGames is the pairwise co-location bound of the original system.
	MaxGames int
	// PeakTolerance is the statistical-multiplexing optimism of GAugur's
	// interference model: a pair co-locates when the sum of peaks stays
	// within PeakTolerance × capacity. Heavier pairs are predicted to
	// interfere unacceptably and are refused (they run individually).
	PeakTolerance float64
}

// NewGAugur builds the GAugur policy over the games' offline profiles.
func NewGAugur(ps []*profiler.Profile) *GAugur {
	return &GAugur{profiles: toProfiles(ps), MarginFactor: 1.05, MaxGames: 2, PeakTolerance: 1.15}
}

// Name implements platform.Policy.
func (g *GAugur) Name() string { return "GAugur" }

// limit is the fixed per-session allocation GAugur's performance model
// assigns: scaled mean consumption over the whole game.
func (g *GAugur) limit(game string) (resources.Vector, bool) {
	p, ok := g.profiles[game]
	if !ok {
		return resources.Zero, false
	}
	var weighted resources.Vector
	var frames float64
	for _, s := range p.Catalog {
		w := s.MeanDurFrames * float64(s.Count)
		weighted = weighted.Add(s.Mean.Scale(w))
		frames += w
	}
	if frames == 0 {
		return p.PeakDemand(), true
	}
	return weighted.Scale(g.MarginFactor/frames).Clamp(0, 100), true
}

// Admit implements platform.Policy: at most MaxGames per server, the fixed
// limits must fit together, and the interference model must predict the
// pair acceptable — the sum of profiled peaks within PeakTolerance ×
// capacity. Without stage awareness the model cannot tell when peaks would
// coincide, so it refuses heavy pairs outright (the paper: for DOTA2 +
// Devil May Cry "other solutions can only be executed individually").
func (g *GAugur) Admit(srv *platform.Server, spec *gamesim.GameSpec, habit int64) bool {
	if srv.NumHosted() >= g.MaxGames {
		return false
	}
	lim, ok := g.limit(spec.Name)
	if !ok {
		return false
	}
	p := g.profiles[spec.Name]
	peaks := p.PeakDemand()
	var limits resources.Vector
	for _, h := range srv.Hosted {
		hp, ok := g.profiles[h.Spec.Name]
		if !ok {
			return false
		}
		peaks = peaks.Add(hp.PeakDemand())
		limits = limits.Add(h.Request)
	}
	if !peaks.Fits(srv.Capacity.Scale(g.PeakTolerance)) {
		return false
	}
	return limits.Add(lim).Fits(srv.Capacity)
}

// NewController implements platform.Policy.
func (g *GAugur) NewController(spec *gamesim.GameSpec, habit int64) (platform.Controller, error) {
	lim, ok := g.limit(spec.Name)
	if !ok {
		return nil, fmt.Errorf("baselines: no profile for %s", spec.Name)
	}
	return &flatController{name: "GAugur", req: lim, hard: true}, nil
}

// Regulate implements platform.Policy; GAugur's limits are fixed by design.
func (g *GAugur) Regulate(*platform.Server) {}

// RegulateIsNoop implements platform.NoopRegulator.
func (g *GAugur) RegulateIsNoop() bool { return true }

// ConcurrentTickSafe implements platform.ConcurrentTicker: fixed per-session
// limits share nothing across servers at runtime.
func (g *GAugur) ConcurrentTickSafe() bool { return true }

// --- Reactive (the paper's "improved version") ---

// Reactive perceives that games move through stages but does not predict:
// every frame it re-provisions to the just-measured consumption plus a
// margin. It trails every stage transition by one detection interval, which
// is exactly the gap prediction closes.
type Reactive struct {
	profiles profiles
	// MarginScale/MarginAbs pad the measured frame into the next request.
	MarginScale float64
	MarginAbs   float64
}

// NewReactive builds the reactive policy over the games' offline profiles.
func NewReactive(ps []*profiler.Profile) *Reactive {
	return &Reactive{profiles: toProfiles(ps), MarginScale: 1.2, MarginAbs: 3}
}

// Name implements platform.Policy.
func (r *Reactive) Name() string { return "Reactive" }

// Admit implements platform.Policy: current requests plus the newcomer's
// mean consumption must fit (it cannot see the future, so it bets on means).
func (r *Reactive) Admit(srv *platform.Server, spec *gamesim.GameSpec, habit int64) bool {
	p, ok := r.profiles[spec.Name]
	if !ok {
		return false
	}
	var mean resources.Vector
	var n float64
	for _, s := range p.Catalog {
		w := s.MeanDurFrames * float64(s.Count)
		mean = mean.Add(s.Mean.Scale(w))
		n += w
	}
	if n > 0 {
		mean = mean.Scale(1 / n)
	}
	return srv.RequestTotal().Add(mean.Scale(r.MarginScale)).Fits(srv.Capacity)
}

// reactiveController re-provisions to each completed frame's measurement.
type reactiveController struct {
	p       *profiler.Profile
	sampler *telemetry.Sampler
	req     resources.Vector
	loading bool
	scale   float64
	abs     float64
}

func (c *reactiveController) Name() string { return "Reactive" }

func (c *reactiveController) Tick(util resources.Vector) resources.Vector {
	if frame, ok := c.sampler.Observe(util); ok {
		c.loading = c.p.IsLoadingFrame(frame)
		c.req = frame.Scale(c.scale).Add(resources.Uniform(c.abs)).Clamp(0, 100)
	}
	return c.req
}

func (c *reactiveController) Loading() bool { return c.loading }

// NewController implements platform.Policy.
func (r *Reactive) NewController(spec *gamesim.GameSpec, habit int64) (platform.Controller, error) {
	p, ok := r.profiles[spec.Name]
	if !ok {
		return nil, fmt.Errorf("baselines: no profile for %s", spec.Name)
	}
	return &reactiveController{
		p:       p,
		sampler: telemetry.NewSampler(0, habit),
		req:     p.PeakDemand(), // safe until the first frame lands
		scale:   r.MarginScale,
		abs:     r.MarginAbs,
	}, nil
}

// Regulate implements platform.Policy; the reactive scheme adjusts per game
// only.
func (r *Reactive) Regulate(*platform.Server) {}

// RegulateIsNoop implements platform.NoopRegulator. Note reactiveController
// is deliberately NOT a SteadyRequester — it adapts to measured frames — so
// Reactive servers still tick per-second; only the Regulate skip applies.
func (r *Reactive) RegulateIsNoop() bool { return true }

// ConcurrentTickSafe implements platform.ConcurrentTicker: each controller's
// sampler state is per-session.
func (r *Reactive) ConcurrentTickSafe() bool { return true }

// MaxPeak is a helper: the flat always-peak allocation a stage-unaware
// operator reserves for a game (the "modest way" baseline of Section V-A,
// used as the reference line in Fig. 10).
func MaxPeak(p *profiler.Profile) resources.Vector { return p.PeakDemand() }

// LoadingLatencyRange reports the observed loading durations for a game, in
// seconds (Fig. 12's loading bars).
func LoadingLatencyRange(p *profiler.Profile) (mean simclock.Seconds, ok bool) {
	s, found := p.Stage(profiler.LoadingStageID)
	if !found || s.Count == 0 {
		return 0, false
	}
	return simclock.Seconds(s.MeanDurFrames * float64(simclock.FrameLen)), true
}
