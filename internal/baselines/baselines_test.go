package baselines

import (
	"testing"

	"cocg/internal/gamesim"
	"cocg/internal/platform"
	"cocg/internal/profiler"
	"cocg/internal/resources"
)

var profileCache = map[string]*profiler.Profile{}

func profileFor(t *testing.T, spec *gamesim.GameSpec) *profiler.Profile {
	t.Helper()
	if p, ok := profileCache[spec.Name]; ok {
		return p
	}
	traces, err := gamesim.RecordCorpus(spec, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.Build(traces, profiler.Config{K: len(spec.Clusters), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	profileCache[spec.Name] = p
	return p
}

func allProfiles(t *testing.T) []*profiler.Profile {
	t.Helper()
	var out []*profiler.Profile
	for _, g := range gamesim.AllGames() {
		out = append(out, profileFor(t, g))
	}
	return out
}

func TestPolicyNames(t *testing.T) {
	ps := allProfiles(t)
	if NewVBP(ps).Name() != "VBP" || NewGAugur(ps).Name() != "GAugur" || NewReactive(ps).Name() != "Reactive" {
		t.Error("policy names wrong")
	}
}

func TestVBPAdmission(t *testing.T) {
	ps := allProfiles(t)
	v := NewVBP(ps)
	c := platform.NewCluster(1, v)
	srv := c.Servers[0]
	// Contra is tiny: many fit.
	contra := gamesim.Contra()
	n := 0
	for i := int64(0); i < 20 && v.Admit(srv, contra, i); i++ {
		sess, _ := gamesim.NewSession(contra, 0, i)
		ctl, err := v.NewController(contra, i)
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Add(contra, sess, ctl)
		h.Request = ctl.Tick(resources.Zero)
		n++
	}
	if n < 3 {
		t.Errorf("VBP packed only %d Contra instances", n)
	}
	// Devil May Cry reserves ~90 % of its peak: two cannot share.
	dmc := gamesim.DevilMayCry()
	c2 := platform.NewCluster(1, v)
	srv2 := c2.Servers[0]
	if !v.Admit(srv2, dmc, 1) {
		t.Fatal("VBP rejected DMC on an empty server")
	}
	sess, _ := gamesim.NewSession(dmc, 0, 1)
	ctl, _ := v.NewController(dmc, 1)
	h := srv2.Add(dmc, sess, ctl)
	h.Request = ctl.Tick(resources.Zero)
	if v.Admit(srv2, dmc, 2) {
		t.Error("VBP admitted two DMC instances on one server")
	}
}

func TestVBPControllerFlat(t *testing.T) {
	v := NewVBP(allProfiles(t))
	ctl, err := v.NewController(gamesim.CSGO(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := ctl.Tick(resources.Uniform(10))
	r2 := ctl.Tick(resources.Uniform(90))
	if r1 != r2 {
		t.Error("VBP request not flat")
	}
	if ctl.Loading() {
		t.Error("VBP claims loading awareness")
	}
	// VBP's 90 %-of-peak vector constrains admission only; at runtime the
	// game may use up to (a padded) full peak.
	peak := profileFor(t, gamesim.CSGO()).PeakDemand()
	if !peak.Fits(r1.Add(resources.Uniform(1e-9))) {
		t.Errorf("VBP runtime request %v does not cover peak %v", r1, peak)
	}
	// And it is not a hard partition.
	if hc, ok := interface{}(ctl).(platform.HardCapper); ok && hc.HardCapped() {
		t.Error("VBP controller should not be hard-capped")
	}
}

func TestUnknownGameErrors(t *testing.T) {
	empty := []*profiler.Profile{}
	if _, err := NewVBP(empty).NewController(gamesim.CSGO(), 1); err == nil {
		t.Error("VBP controller for unknown game")
	}
	if _, err := NewGAugur(empty).NewController(gamesim.CSGO(), 1); err == nil {
		t.Error("GAugur controller for unknown game")
	}
	if _, err := NewReactive(empty).NewController(gamesim.CSGO(), 1); err == nil {
		t.Error("Reactive controller for unknown game")
	}
	c := platform.NewCluster(1, NewVBP(empty))
	if NewVBP(empty).Admit(c.Servers[0], gamesim.CSGO(), 1) {
		t.Error("VBP admitted unknown game")
	}
}

func TestGAugurPairBound(t *testing.T) {
	ps := allProfiles(t)
	g := NewGAugur(ps)
	c := platform.NewCluster(1, g)
	srv := c.Servers[0]
	contra := gamesim.Contra()
	for i := int64(0); i < 2; i++ {
		if !g.Admit(srv, contra, i) {
			t.Fatalf("GAugur rejected Contra #%d", i+1)
		}
		sess, _ := gamesim.NewSession(contra, 0, i)
		ctl, _ := g.NewController(contra, i)
		h := srv.Add(contra, sess, ctl)
		h.Request = ctl.Tick(resources.Zero)
	}
	// Third game refused regardless of size: pairwise model.
	if g.Admit(srv, contra, 9) {
		t.Error("GAugur admitted a third game")
	}
}

func TestGAugurLimitBelowPeak(t *testing.T) {
	// GAugur's fixed limit is mean-based: for a stage-heavy game it sits
	// well below the peak — the cause of its Fig. 13 FPS loss.
	g := NewGAugur(allProfiles(t))
	ctl, err := g.NewController(gamesim.DevilMayCry(), 1)
	if err != nil {
		t.Fatal(err)
	}
	limit := ctl.Tick(resources.Zero)
	peak := profileFor(t, gamesim.DevilMayCry()).PeakDemand()
	if limit[resources.GPU] >= peak[resources.GPU] {
		t.Errorf("GAugur limit %v not below peak %v", limit, peak)
	}
}

func TestReactiveFollowsConsumption(t *testing.T) {
	r := NewReactive(allProfiles(t))
	ctl, err := r.NewController(gamesim.CSGO(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Before the first frame completes, the request is the safe peak.
	first := ctl.Tick(resources.Uniform(20))
	if first != profileFor(t, gamesim.CSGO()).PeakDemand() {
		t.Errorf("initial reactive request = %v", first)
	}
	// Feed a steady low load; after one frame the request tracks it.
	var req resources.Vector
	for i := 0; i < 5; i++ {
		req = ctl.Tick(resources.New(30, 30, 20, 20))
	}
	if req[resources.GPU] > 30*1.2+3+1e-9 {
		t.Errorf("reactive request %v did not follow measured load", req)
	}
	if req[resources.GPU] < 30 {
		t.Errorf("reactive request %v below measured load", req)
	}
}

func TestReactiveDetectsLoading(t *testing.T) {
	spec := gamesim.DevilMayCry()
	r := NewReactive(allProfiles(t))
	ctl, err := r.NewController(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := profileFor(t, spec)
	loadDemand := p.Clusters.Centroids[p.LoadingClusterID]
	for i := 0; i < 6; i++ {
		ctl.Tick(loadDemand)
	}
	if !ctl.Loading() {
		t.Error("reactive controller did not detect loading")
	}
	var exec resources.Vector
	for i, cent := range p.Clusters.Centroids {
		if i != p.LoadingClusterID && cent[resources.GPU] > 40 {
			exec = cent
			break
		}
	}
	for i := 0; i < 6; i++ {
		ctl.Tick(exec)
	}
	if ctl.Loading() {
		t.Error("reactive controller stuck in loading")
	}
}

func TestReactiveRunsSessionWithLag(t *testing.T) {
	// The reactive scheme completes a solo session fine (idle server:
	// work-conserving redistribution hides the one-frame lag).
	spec := gamesim.GenshinImpact()
	r := NewReactive(allProfiles(t))
	c := platform.NewCluster(1, r)
	c.Submit(platform.Arrival{Spec: spec, Script: 0, Habit: 3, SessionSeed: 4})
	c.Run(3600)
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].FPSRatio < 0.95 {
		t.Errorf("solo reactive FPS ratio %.3f", recs[0].FPSRatio)
	}
}

func TestMaxPeakAndLoadingRange(t *testing.T) {
	p := profileFor(t, gamesim.DOTA2())
	if MaxPeak(p) != p.PeakDemand() {
		t.Error("MaxPeak mismatch")
	}
	mean, ok := LoadingLatencyRange(p)
	if !ok || mean < 5 || mean > 35 {
		t.Errorf("loading mean = %d ok=%v", mean, ok)
	}
}
