package netmodel

import (
	"testing"
	"testing/quick"
)

func TestFiberDeliversFast(t *testing.T) {
	l := FiberLink(1)
	var s Stats
	for i := 0; i < 500; i++ {
		s.Observe(l.Send(8000))
	}
	if s.Lost != 0 {
		t.Errorf("fiber lost %d", s.Lost)
	}
	if s.MeanLatencyMS() > 5 {
		t.Errorf("fiber mean latency %.1f ms", s.MeanLatencyMS())
	}
	if s.StutterRate() > 0 {
		t.Errorf("fiber stutter rate %.3f", s.StutterRate())
	}
}

func TestOverloadedLinkQueues(t *testing.T) {
	// Pushing 20 Mbps through a 15 Mbps mobile link builds a backlog and
	// latency grows without bound.
	l := MobileLink(2)
	var s Stats
	for i := 0; i < 60; i++ {
		s.Observe(l.Send(20_000))
	}
	if l.Backlog() == 0 {
		t.Error("no backlog despite sustained overload")
	}
	if s.StutterRate() < 0.3 {
		t.Errorf("stutter rate %.2f under sustained overload", s.StutterRate())
	}
	if s.WorstLatencyMS() < 100 {
		t.Errorf("worst latency %.1f ms", s.WorstLatencyMS())
	}
}

func TestBacklogDrains(t *testing.T) {
	l := CableLink(3)
	for i := 0; i < 10; i++ {
		l.Send(60_000) // overload
	}
	if l.Backlog() == 0 {
		t.Fatal("expected backlog")
	}
	for i := 0; i < 200; i++ {
		l.Send(1000) // light traffic drains the queue
	}
	if l.Backlog() != 0 {
		t.Errorf("backlog %f did not drain", l.Backlog())
	}
}

func TestLossAccounting(t *testing.T) {
	l := NewLink(Link{BaseLatencyMS: 5, BandwidthKbps: 50_000, LossRate: 0.5}, 4)
	var s Stats
	for i := 0; i < 1000; i++ {
		s.Observe(l.Send(5000))
	}
	if s.Lost < 350 || s.Lost > 650 {
		t.Errorf("lost %d of 1000 at 50%% loss", s.Lost)
	}
	if s.StutterRate() < 0.3 {
		t.Errorf("stutter rate %.2f should include losses", s.StutterRate())
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.MeanLatencyMS() != 0 || s.StutterRate() != 0 || s.WorstLatencyMS() != 0 {
		t.Error("empty stats not zero")
	}
}

func TestPropertyLatencyAtLeastBase(t *testing.T) {
	f := func(seed int64, kbpsRaw uint16) bool {
		l := NewLink(Link{BaseLatencyMS: 10, JitterMS: 3, BandwidthKbps: 20_000}, seed)
		d := l.Send(float64(kbpsRaw))
		return !d.Delivered || d.LatencyMS >= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBacklogNonNegative(t *testing.T) {
	f := func(seed int64, sends []uint16) bool {
		l := CableLink(seed)
		for _, k := range sends {
			l.Send(float64(k))
			if l.Backlog() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
