// Package netmodel simulates the network connection of Fig. 1 — the piece
// between the cloud server and the player that the operator manages. Cloud
// gaming is brutally latency-sensitive (the paper cites a <3 ms network
// budget for visual display), so the delivery model matters: a frame batch
// that exceeds the link's bandwidth-delay budget arrives late and counts
// as a stutter even when the server rendered it on time.
package netmodel

import (
	"math"
	"math/rand"
)

// Link models one client's access path.
type Link struct {
	// BaseLatencyMS is the one-way propagation delay.
	BaseLatencyMS float64
	// JitterMS is the standard deviation of per-delivery latency noise.
	JitterMS float64
	// BandwidthKbps caps the video stream; queuing delay grows as the
	// encoder output approaches it.
	BandwidthKbps float64
	// LossRate is the probability a delivery is dropped entirely.
	LossRate float64

	rng *rand.Rand
	// backlogKb is queued-but-unsent data from previous seconds.
	backlogKb float64
}

// FiberLink models a metropolitan fiber connection: the paper's <3 ms
// network budget is achievable here.
func FiberLink(seed int64) *Link {
	return NewLink(Link{BaseLatencyMS: 2, JitterMS: 0.5, BandwidthKbps: 100_000}, seed)
}

// CableLink models a typical cable/DOCSIS access path.
func CableLink(seed int64) *Link {
	return NewLink(Link{BaseLatencyMS: 8, JitterMS: 2, BandwidthKbps: 40_000, LossRate: 0.001}, seed)
}

// MobileLink models a good 4G/5G connection: workable bandwidth but jittery.
func MobileLink(seed int64) *Link {
	return NewLink(Link{BaseLatencyMS: 25, JitterMS: 8, BandwidthKbps: 15_000, LossRate: 0.005}, seed)
}

// NewLink returns a link with the given parameters and its own RNG.
func NewLink(params Link, seed int64) *Link {
	params.rng = rand.New(rand.NewSource(seed))
	return &params
}

// Delivery is the outcome of sending one second of video.
type Delivery struct {
	// Delivered is false when the batch was lost.
	Delivered bool
	// LatencyMS is the total delivery latency: propagation + jitter +
	// queuing behind the link's backlog.
	LatencyMS float64
	// Stutter marks a delivery late enough (>100 ms) to be visible.
	Stutter bool
}

// Send models transmitting kbps worth of one second's video over the link.
func (l *Link) Send(kbps float64) Delivery {
	if l.LossRate > 0 && l.rng.Float64() < l.LossRate {
		return Delivery{}
	}
	// The link drains BandwidthKbps per second; what does not fit queues.
	l.backlogKb += kbps
	drained := l.BandwidthKbps
	if l.backlogKb <= drained {
		l.backlogKb = 0
	} else {
		l.backlogKb -= drained
	}
	// Queuing delay: time to flush the remaining backlog at line rate.
	queueMS := 0.0
	if l.BandwidthKbps > 0 {
		queueMS = l.backlogKb / l.BandwidthKbps * 1000
	}
	lat := l.BaseLatencyMS + math.Abs(l.rng.NormFloat64())*l.JitterMS + queueMS
	return Delivery{
		Delivered: true,
		LatencyMS: lat,
		Stutter:   lat > 100,
	}
}

// Backlog returns the queued kilobits awaiting transmission.
func (l *Link) Backlog() float64 { return l.backlogKb }

// Stats accumulates delivery outcomes.
type Stats struct {
	Sent, Lost, Stutters int
	latencySum           float64
	worst                float64
}

// Observe folds one delivery in.
func (s *Stats) Observe(d Delivery) {
	s.Sent++
	if !d.Delivered {
		s.Lost++
		return
	}
	s.latencySum += d.LatencyMS
	if d.LatencyMS > s.worst {
		s.worst = d.LatencyMS
	}
	if d.Stutter {
		s.Stutters++
	}
}

// MeanLatencyMS returns the mean delivered latency.
func (s *Stats) MeanLatencyMS() float64 {
	n := s.Sent - s.Lost
	if n == 0 {
		return 0
	}
	return s.latencySum / float64(n)
}

// WorstLatencyMS returns the worst delivered latency.
func (s *Stats) WorstLatencyMS() float64 { return s.worst }

// StutterRate returns the fraction of sent batches that stuttered or were
// lost.
func (s *Stats) StutterRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Stutters+s.Lost) / float64(s.Sent)
}
