package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces an inline suppression comment:
//
//	//cocg:lint-ignore <analyzer> <reason>
//
// The reason is mandatory prose for the reviewer; the driver only checks that
// it is non-empty so suppressions are never silent.
const ignorePrefix = "//cocg:lint-ignore"

// UnusedIgnoreAnalyzer is the analyzer name attached to findings about
// //cocg:lint-ignore comments that suppressed nothing.
const UnusedIgnoreAnalyzer = "unusedignore"

type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// applyIgnores filters findings through the package's //cocg:lint-ignore
// comments. A directive cancels findings of its named analyzer on the
// directive's own line; if that line has none, it applies to the next line
// (the comment-above-the-statement form). Directives that cancel nothing
// become findings themselves so stale ignores are cleaned up, and malformed
// directives (missing analyzer or reason) are reported too.
func applyIgnores(pkg *Package, findings []Finding) []Finding {
	var directives []*ignoreDirective
	var malformed []Finding
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos:      pos,
						Analyzer: UnusedIgnoreAnalyzer,
						Message:  "malformed //cocg:lint-ignore: need `//cocg:lint-ignore <analyzer> <reason>`",
					})
					continue
				}
				directives = append(directives, &ignoreDirective{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	if len(directives) == 0 {
		return append(findings, malformed...)
	}

	suppressed := make(map[int]bool, len(findings))
	for _, d := range directives {
		// Same-line form first; fall back to the line below.
		for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
			for i, f := range findings {
				if suppressed[i] || f.Analyzer != d.analyzer {
					continue
				}
				if f.Pos.Filename == d.pos.Filename && f.Pos.Line == line {
					suppressed[i] = true
					d.used = true
				}
			}
			if d.used {
				break
			}
		}
	}

	var out []Finding
	for i, f := range findings {
		if !suppressed[i] {
			out = append(out, f)
		}
	}
	for _, d := range directives {
		if !d.used {
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: UnusedIgnoreAnalyzer,
				Message:  "unused //cocg:lint-ignore " + d.analyzer + ": no matching finding on this or the next line",
			})
		}
	}
	return append(out, malformed...)
}
