package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` loops over maps whose bodies perform an
// order-sensitive action: appending to a slice, accumulating into a float, or
// writing to an output sink. Go randomises map iteration order, so each of
// these silently produces run-to-run-different results — exactly the bug
// class the determinism harness caught twice at runtime (Fig. 11 rendering
// and platform.Throughput). The sanctioned idiom is collecting the keys,
// sorting, and ranging over the sorted slice; collecting the bare range key
// into a slice (`keys = append(keys, k)`) is therefore exempt.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "order-sensitive work (append/float-accumulate/output) inside map iteration",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
}

// checkMapRangeBody walks one map-range body looking for order-sensitive
// statements. Nested blocks and loops are included; a nested map range is
// reported when visited by the outer ast.Inspect, so it is not re-entered
// here.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	keyObj := rangeKeyObject(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, stmt, keyObj)
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				checkMapRangeSink(pass, call)
			}
		}
		return true
	})
}

// rangeKeyObject returns the types.Object of the loop's key variable, or nil.
func rangeKeyObject(pass *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj // for k := range m
	}
	return pass.Info.Uses[id] // for k = range m
}

// checkMapRangeAssign flags slice appends and float accumulation.
func checkMapRangeAssign(pass *Pass, stmt *ast.AssignStmt, keyObj types.Object) {
	// Float accumulation: sum += v (and -=, *=, /=) reorders float ops
	// run-to-run. Integer accumulation is associative and commutative, so
	// it is not flagged.
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range stmt.Lhs {
			if t := pass.Info.TypeOf(lhs); t != nil && isFloat(t) {
				pass.Reportf(stmt.Pos(), "float accumulation inside map iteration is order-nondeterministic; iterate sorted keys")
				return
			}
		}
	}
	// Slice append: append(s, x) inside a map range builds a
	// randomly-ordered slice — unless x is exactly the range key, which is
	// the first half of the sorted-keys idiom.
	for _, rhs := range stmt.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") {
			continue
		}
		if len(call.Args) == 2 && !call.Ellipsis.IsValid() && keyObj != nil {
			if id, ok := call.Args[1].(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
				continue // keys = append(keys, k): sorted-keys idiom
			}
		}
		pass.Reportf(call.Pos(), "append inside map iteration yields nondeterministic order; collect and sort keys first")
	}
}

// mapSinkMethods are io.Writer-shaped methods whose call order is observable
// in the output.
var mapSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// fmtPrinters are the fmt functions that emit output.
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// checkMapRangeSink flags writes to output sinks (fmt printers and
// Write-family methods) issued per map entry.
func checkMapRangeSink(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if obj := selectedFunc(pass, sel); obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "fmt" && fmtPrinters[obj.Name()] {
		pass.Reportf(call.Pos(), "fmt.%s inside map iteration writes in nondeterministic order; iterate sorted keys", obj.Name())
		return
	}
	if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal && mapSinkMethods[sel.Sel.Name] {
		pass.Reportf(call.Pos(), "%s call inside map iteration writes in nondeterministic order; iterate sorted keys", sel.Sel.Name)
	}
}

// selectedFunc resolves a selector to the *types.Func it names, or nil.
func selectedFunc(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isBuiltin reports whether fun is a use of the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}
