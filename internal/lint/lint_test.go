package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader builds one Loader per test binary; its export-data closure
// (the module's own dependencies) covers everything the testdata imports.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(moduleRoot(t))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// loadTestdata type-checks testdata/src/<dir> under the given import path.
func loadTestdata(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	pkg, err := sharedLoader(t).CheckDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", dir, err)
	}
	return pkg
}

// want expectations are inline comments of the form
//
//	// want `regexp` `regexp` ...
//
// where each regexp must match one finding rendered as "[analyzer] message"
// on the comment's line.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantToken = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				_, spec, found := strings.Cut(c.Text, "want ")
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantToken.FindAllString(spec, -1)
				if len(toks) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				for _, tok := range toks {
					re, err := regexp.Compile(tok[1 : len(tok)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkGolden runs the analyzers over the package and compares findings
// against the // want comments: every finding needs a matching want on its
// line, and every want must be consumed.
func checkGolden(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	checkGoldenWith(t, pkg, analyzers, Options{})
}

func checkGoldenWith(t *testing.T, pkg *Package, analyzers []*Analyzer, opts Options) {
	t.Helper()
	wants := collectWants(t, pkg)
	findings := RunWith([]*Package{pkg}, analyzers, opts)
	for _, f := range findings {
		rendered := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(rendered) {
				w.matched, ok = true, true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "maporder", "cocg/internal/maporderlike"), []*Analyzer{MapOrder})
}

func TestGlobalRandGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "globalrand", "cocg/internal/randlike"), []*Analyzer{GlobalRand})
}

func TestWallTimeGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "walltime", "cocg/internal/schedlike"), []*Analyzer{WallTime})
}

// TestWallTimeExemptions loads wall-clock-reading code under every path class
// that is allowed to read real time and expects silence.
func TestWallTimeExemptions(t *testing.T) {
	for _, path := range []string{"cocg/internal/streaming", "cocg/internal/telemetry", "cocg/cmd/tool", "cocg"} {
		pkg := loadTestdata(t, "walltime_exempt", path)
		if fs := Run([]*Package{pkg}, []*Analyzer{WallTime}); len(fs) != 0 {
			t.Errorf("path %s: unexpected findings: %v", path, fs)
		}
	}
}

func TestRawGoGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "rawgo", "cocg/internal/rawgolike"), []*Analyzer{RawGo})
}

// TestRawGoExemptions mirrors TestWallTimeExemptions for goroutine fan-out.
func TestRawGoExemptions(t *testing.T) {
	for _, path := range []string{"cocg/internal/parallel", "cocg/internal/streaming", "cocg/cmd/tool"} {
		pkg := loadTestdata(t, "rawgo_exempt", path)
		if fs := Run([]*Package{pkg}, []*Analyzer{RawGo}); len(fs) != 0 {
			t.Errorf("path %s: unexpected findings: %v", path, fs)
		}
	}
}

func TestDroppedErrGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "droppederr", "cocg/internal/errlike"), []*Analyzer{DroppedErr})
}

// TestIgnoreDirectives checks the suppression contract: an inline ignore
// suppresses exactly the finding on its line, the standalone form suppresses
// the line below, and a directive that suppresses nothing is itself reported.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadTestdata(t, "ignore", "cocg/internal/ignorelike")
	checkGolden(t, pkg, []*Analyzer{GlobalRand})

	// The golden pass already pins the surviving findings; additionally pin
	// the exact count so a blanket suppression bug cannot sneak through.
	findings := Run([]*Package{pkg}, []*Analyzer{GlobalRand})
	var globalrand, unused int
	for _, f := range findings {
		switch f.Analyzer {
		case GlobalRand.Name:
			globalrand++
		case UnusedIgnoreAnalyzer:
			unused++
		default:
			t.Errorf("unexpected analyzer %q in %s", f.Analyzer, f)
		}
	}
	if globalrand != 1 || unused != 1 {
		t.Errorf("got %d globalrand + %d unusedignore findings, want exactly 1 + 1:\n%v", globalrand, unused, findings)
	}
}

func TestLockOrderGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "lockorder", "cocg/internal/locklike"), []*Analyzer{LockOrder})
}

// TestLockOrderEdgeCases covers the held-set subtleties one golden package
// each: deferred unlocks, TryLock guard forms, and lock methods bound as
// values.
func TestLockOrderEdgeCases(t *testing.T) {
	for _, dir := range []string{"lockorder_defer", "lockorder_trylock", "lockorder_methodvalue"} {
		checkGolden(t, loadTestdata(t, dir, "cocg/internal/"+dir), []*Analyzer{LockOrder})
	}
}

func TestGoLeakGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "goleak", "cocg/internal/goleaklike"), []*Analyzer{GoLeak})
}

// TestGoLeakInternalOnly loads the same leaky code outside internal/ and
// expects silence: front-ends own their goroutine hygiene.
func TestGoLeakInternalOnly(t *testing.T) {
	pkg := loadTestdata(t, "goleak", "cocg/cmd/tool")
	if fs := Run([]*Package{pkg}, []*Analyzer{GoLeak}); len(fs) != 0 {
		t.Errorf("unexpected findings outside internal/: %v", fs)
	}
}

func TestPoolCheckGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "poolcheck", "cocg/internal/poollike"), []*Analyzer{PoolCheck})
}

func TestPoolCheckDeferGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "poolcheck_defer", "cocg/internal/pooldeferlike"), []*Analyzer{PoolCheck})
}

func TestAtomicMixGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "atomicmix", "cocg/internal/atomiclike"), []*Analyzer{AtomicMix})
}

// TestHotAllocGolden fabricates compiler escape output from the ESCAPE
// markers in the golden file — the same file:line:col text `go build
// -gcflags=-m` emits — and checks that diagnostics land only inside
// //cocg:hot bodies.
func TestHotAllocGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "src", "hotalloc", "hot.go")
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for i, line := range strings.Split(string(raw), "\n") {
		_, rest, found := strings.Cut(line, "// ESCAPE:")
		if !found {
			continue
		}
		msg := rest
		if j := strings.Index(msg, " -- want"); j >= 0 {
			msg = msg[:j]
		}
		fmt.Fprintf(&out, "%s:%d:2: %s\n", goldenPath, i+1, strings.TrimSpace(msg))
	}
	if out.Len() == 0 {
		t.Fatal("no ESCAPE markers in golden file")
	}
	data := &EscapeData{}
	ParseEscapes(data, "", out.String())

	pkg := loadTestdata(t, "hotalloc", "cocg/internal/hotlike")
	checkGoldenWith(t, pkg, []*Analyzer{HotAlloc}, Options{Escapes: data})

	// Without escape data the analyzer is inert, not wrong.
	if fs := Run([]*Package{pkg}, []*Analyzer{HotAlloc}); len(fs) != 0 {
		t.Errorf("hotalloc without escape data produced findings: %v", fs)
	}
}

// TestHotAllocNegative is the gate's end-to-end proof: a scratch module with
// an artificial escape inside a //cocg:hot function, compiled with the real
// LoadEscapes pipeline, must fail the analyzer.
func TestHotAllocNegative(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module hotneg\n\ngo 1.22\n")
	writeFile("hot.go", `package hotneg

var sink *[64]byte

// Escapes claims to be allocation-free but leaks its stack frame.
//
//cocg:hot
func Escapes() *[64]byte {
	var b [64]byte
	return &b
}
`)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPackages("./...")
	if err != nil {
		t.Fatal(err)
	}
	escapes, err := LoadEscapes(loader.ModuleDir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunWith(pkgs, []*Analyzer{HotAlloc}, Options{Escapes: escapes})
	if len(findings) == 0 {
		t.Fatal("artificial escape in a //cocg:hot function produced no hotalloc finding")
	}
	for _, f := range findings {
		if f.Analyzer != HotAlloc.Name || !strings.Contains(f.Message, "Escapes") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestFindingJSONSchema pins the machine-readable shape `cocg-lint -json`
// emits for CI annotation: exactly file/line/col/analyzer/message.
func TestFindingJSONSchema(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "internal/x/x.go", Line: 3, Column: 7},
		Analyzer: "maporder",
		Message:  "append inside map iteration",
	}
	b, err := json.Marshal([]Finding{f})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d elements, want 1", len(decoded))
	}
	got := decoded[0]
	want := map[string]any{
		"file":     "internal/x/x.go",
		"line":     float64(3),
		"col":      float64(7),
		"analyzer": "maporder",
		"message":  "append inside map iteration",
	}
	if len(got) != len(want) {
		t.Errorf("schema has keys %v, want exactly file/line/col/analyzer/message", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("field %q = %v, want %v", k, got[k], v)
		}
	}
}

// TestByName covers the analyzer registry used by the -run flag.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("maporder, droppederr")
	if err != nil || len(two) != 2 || two[0] != MapOrder || two[1] != DroppedErr {
		t.Fatalf("ByName list = %v, err %v", two, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(\"nope\") should fail")
	}
}

// TestRepoIsClean runs the full analyzer set over the whole module — the
// same gate `make lint` enforces — so `go test` alone catches regressions.
func TestRepoIsClean(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadPackages("./...")
	if err != nil {
		t.Fatal(err)
	}
	escapes, err := LoadEscapes(l.ModuleDir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range RunWith(pkgs, All(), Options{Escapes: escapes}) {
		t.Errorf("finding in repo: %s", f)
	}
}

// TestLoadPackages sanity-checks the go-list-based loader itself.
func TestLoadPackages(t *testing.T) {
	l := sharedLoader(t)
	if l.ModulePath != "cocg" {
		t.Fatalf("module path = %q, want cocg", l.ModulePath)
	}
	pkgs, err := l.LoadPackages("./internal/simclock")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "cocg/internal/simclock" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Fatal("package loaded without files or type info")
	}
	var _ *ast.File = pkgs[0].Files[0]
}
