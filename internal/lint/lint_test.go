package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader builds one Loader per test binary; its export-data closure
// (the module's own dependencies) covers everything the testdata imports.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(moduleRoot(t))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// loadTestdata type-checks testdata/src/<dir> under the given import path.
func loadTestdata(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	pkg, err := sharedLoader(t).CheckDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", dir, err)
	}
	return pkg
}

// want expectations are inline comments of the form
//
//	// want `regexp` `regexp` ...
//
// where each regexp must match one finding rendered as "[analyzer] message"
// on the comment's line.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantToken = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				_, spec, found := strings.Cut(c.Text, "want ")
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantToken.FindAllString(spec, -1)
				if len(toks) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				for _, tok := range toks {
					re, err := regexp.Compile(tok[1 : len(tok)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkGolden runs the analyzers over the package and compares findings
// against the // want comments: every finding needs a matching want on its
// line, and every want must be consumed.
func checkGolden(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	wants := collectWants(t, pkg)
	findings := Run([]*Package{pkg}, analyzers)
	for _, f := range findings {
		rendered := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(rendered) {
				w.matched, ok = true, true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "maporder", "cocg/internal/maporderlike"), []*Analyzer{MapOrder})
}

func TestGlobalRandGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "globalrand", "cocg/internal/randlike"), []*Analyzer{GlobalRand})
}

func TestWallTimeGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "walltime", "cocg/internal/schedlike"), []*Analyzer{WallTime})
}

// TestWallTimeExemptions loads wall-clock-reading code under every path class
// that is allowed to read real time and expects silence.
func TestWallTimeExemptions(t *testing.T) {
	for _, path := range []string{"cocg/internal/streaming", "cocg/internal/telemetry", "cocg/cmd/tool", "cocg"} {
		pkg := loadTestdata(t, "walltime_exempt", path)
		if fs := Run([]*Package{pkg}, []*Analyzer{WallTime}); len(fs) != 0 {
			t.Errorf("path %s: unexpected findings: %v", path, fs)
		}
	}
}

func TestRawGoGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "rawgo", "cocg/internal/rawgolike"), []*Analyzer{RawGo})
}

// TestRawGoExemptions mirrors TestWallTimeExemptions for goroutine fan-out.
func TestRawGoExemptions(t *testing.T) {
	for _, path := range []string{"cocg/internal/parallel", "cocg/internal/streaming", "cocg/cmd/tool"} {
		pkg := loadTestdata(t, "rawgo_exempt", path)
		if fs := Run([]*Package{pkg}, []*Analyzer{RawGo}); len(fs) != 0 {
			t.Errorf("path %s: unexpected findings: %v", path, fs)
		}
	}
}

func TestDroppedErrGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "droppederr", "cocg/internal/errlike"), []*Analyzer{DroppedErr})
}

// TestIgnoreDirectives checks the suppression contract: an inline ignore
// suppresses exactly the finding on its line, the standalone form suppresses
// the line below, and a directive that suppresses nothing is itself reported.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadTestdata(t, "ignore", "cocg/internal/ignorelike")
	checkGolden(t, pkg, []*Analyzer{GlobalRand})

	// The golden pass already pins the surviving findings; additionally pin
	// the exact count so a blanket suppression bug cannot sneak through.
	findings := Run([]*Package{pkg}, []*Analyzer{GlobalRand})
	var globalrand, unused int
	for _, f := range findings {
		switch f.Analyzer {
		case GlobalRand.Name:
			globalrand++
		case UnusedIgnoreAnalyzer:
			unused++
		default:
			t.Errorf("unexpected analyzer %q in %s", f.Analyzer, f)
		}
	}
	if globalrand != 1 || unused != 1 {
		t.Errorf("got %d globalrand + %d unusedignore findings, want exactly 1 + 1:\n%v", globalrand, unused, findings)
	}
}

// TestByName covers the analyzer registry used by the -run flag.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("maporder, droppederr")
	if err != nil || len(two) != 2 || two[0] != MapOrder || two[1] != DroppedErr {
		t.Fatalf("ByName list = %v, err %v", two, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(\"nope\") should fail")
	}
}

// TestRepoIsClean runs the full analyzer set over the whole module — the
// same gate `make lint` enforces — so `go test` alone catches regressions.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := sharedLoader(t).LoadPackages("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("finding in repo: %s", f)
	}
}

// TestLoadPackages sanity-checks the go-list-based loader itself.
func TestLoadPackages(t *testing.T) {
	l := sharedLoader(t)
	if l.ModulePath != "cocg" {
		t.Fatalf("module path = %q, want cocg", l.ModulePath)
	}
	pkgs, err := l.LoadPackages("./internal/simclock")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "cocg/internal/simclock" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Fatal("package loaded without files or type info")
	}
	var _ *ast.File = pkgs[0].Files[0]
}
