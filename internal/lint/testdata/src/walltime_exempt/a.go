package walltimeexempt

import "time"

// Loaded by the tests under exempt import paths (internal/streaming, cmd/...)
// where no walltime finding may fire.
func now() time.Time { return time.Now() }
