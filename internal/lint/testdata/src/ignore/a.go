package ignore

import "math/rand"

func use() int {
	a := rand.Intn(3) //cocg:lint-ignore globalrand fixed fanout, order provably irrelevant here
	b := rand.Intn(4) // want `\[globalrand\] rand\.Intn uses the shared global`
	//cocg:lint-ignore globalrand the directive-above-the-statement form
	c := rand.Intn(5)
	//cocg:lint-ignore maporder stale suppression that matches nothing // want `\[unusedignore\] unused //cocg:lint-ignore maporder`
	return a + b + c
}
