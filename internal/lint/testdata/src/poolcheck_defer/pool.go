// Package pooldeferlike pins the deferred-Put semantics: a Put in a defer
// runs after every use in the body, so no use-after-Put applies, and a reset
// anywhere in the function satisfies the reset rule.
package pooldeferlike

import "sync"

type frame struct {
	data []byte
}

var fpool = sync.Pool{New: func() any { return &frame{} }}

// Deferred Put with a reset later in the body: clean.
func deferredPut() int {
	f := fpool.Get().(*frame)
	defer fpool.Put(f)
	f.data = f.data[:0]
	return cap(f.data)
}

// Deferred Put with no reset anywhere still leaks stale references.
func deferredPutNoReset() int {
	f := fpool.Get().(*frame)
	defer fpool.Put(f) // want `\[poolcheck\] sync\.Pool Put of f without resetting its reference fields`
	return cap(f.data)
}
