package droppederr

import (
	"bytes"
	"errors"
	"fmt"
)

type closer struct{}

func (closer) Close() error { return nil }

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

func bad(c closer) {
	fail()          // want `\[droppederr\] error returned by fail is discarded`
	pair()          // want `\[droppederr\] error returned by pair is discarded`
	defer c.Close() // want `\[droppederr\] error returned by c\.Close is discarded`
	go fail()       // want `\[droppederr\] error returned by fail is discarded`
}

func good(c closer) {
	_ = fail() // ok: explicit discard
	if err := fail(); err != nil {
		fmt.Println(err)
	}
	var buf bytes.Buffer
	buf.WriteString("x") // ok: bytes.Buffer writes never fail
	fmt.Println("done")  // ok: fmt print family is exempt
	_, _ = pair()        // ok: explicit discard of the tuple
	_ = c
}
