package rawgoexempt

// Loaded by the tests under exempt import paths (internal/parallel, cmd/...)
// where no rawgo finding may fire.
func spawn() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
