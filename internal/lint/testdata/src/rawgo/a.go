package rawgo

func bad() {
	done := make(chan struct{})
	go func() { close(done) }() // want `\[rawgo\] raw go statement in internal/rawgolike`
	<-done
}

func good() {
	f := func() {}
	f() // ok: plain call
}
