// Package poollike exercises the sync.Pool analyzer: Put without reset,
// use after Put, and Get results escaping the owning function — including
// through the repo's getter/putter wrapper idiom.
package poollike

import "sync"

type payload struct {
	buf []byte
	n   int
}

var pool = sync.Pool{New: func() any { return &payload{} }}

// Reset before Put: clean.
func resetThenPut() {
	p := pool.Get().(*payload)
	use(p.buf)
	p.buf = p.buf[:0]
	pool.Put(p)
}

// Put with no field reset keeps stale references reachable.
func putNoReset() {
	p := pool.Get().(*payload)
	use(p.buf)
	pool.Put(p) // want `\[poolcheck\] sync\.Pool Put of p without resetting its reference fields`
}

// Reading the object after Put races the next Get.
func useAfterPut() int {
	p := pool.Get().(*payload)
	p.buf = p.buf[:0]
	pool.Put(p)
	return p.n // want `\[poolcheck\] pooled object p is used after Put`
}

// Rebinding the variable to a fresh value makes it valid again: clean.
func rebindAfterPut() int {
	p := pool.Get().(*payload)
	p.buf = p.buf[:0]
	pool.Put(p)
	p = &payload{}
	return p.n
}

// Returning a pooled object hands it to a caller with no pool handle.
func escapeReturn() *payload {
	p := pool.Get().(*payload)
	p.n++
	return p // want `\[poolcheck\] pooled object p is returned`
}

type holder struct{ p *payload }

// Storing a Get result into a field outlives the owning scope.
func (h *holder) escapeStore() {
	h.p = pool.Get().(*payload) // want `\[poolcheck\] sync\.Pool Get result is stored outside this function's locals`
}

// getPayload is a recognised getter: its single-return-of-Get body is the
// sanctioned borrow point, and calls to it count as Get sites in callers.
func getPayload() *payload {
	return pool.Get().(*payload)
}

// putPayload is a recognised putter: it resets and Puts its parameter, and
// calls to it retire the argument in callers.
func putPayload(p *payload) {
	p.buf = p.buf[:0]
	pool.Put(p)
}

// Wrapper round-trip: clean.
func wrapperFlow() {
	p := getPayload()
	p.n++
	putPayload(p)
}

// Use after a putter call is use after Put.
func wrapperUseAfterPut() {
	p := getPayload()
	putPayload(p)
	p.n = 0 // want `\[poolcheck\] pooled object p is used after Put`
}

func use([]byte) {}
