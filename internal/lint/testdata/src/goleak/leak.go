// Package goleaklike exercises the goroutine-join analyzer: every spawned
// goroutine must carry a join token (WaitGroup.Done, completion-channel
// close/send, or shutdown-channel receive) in its resolved body.
package goleaklike

import (
	"context"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// Joined by WaitGroup: clean.
func (w *worker) spawnWG() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		work()
	}()
}

// Joined by closing a completion channel from the enclosing scope: clean.
func spawnDoneChan() chan struct{} {
	ch := make(chan struct{})
	go func() {
		work()
		close(ch)
	}()
	return ch
}

// Joined by sending on an outer channel: clean.
func spawnSend(results chan int) {
	go func() {
		results <- 1
	}()
}

// Joined by receiving from the shutdown channel: clean.
func (w *worker) spawnShutdown() {
	go func() {
		<-w.done
	}()
}

// Joined by observing a context: clean.
func spawnCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Same-package method bodies are resolved and checked: clean.
func (w *worker) spawnMethod() {
	go w.loop()
}

func (w *worker) loop() {
	for range w.done {
	}
}

// No join evidence at all.
func spawnLeak() {
	go func() { // want `\[goleak\] goroutine is never joined`
		work()
	}()
}

// A channel created inside the goroutine joins nothing.
func spawnInnerChan() {
	go func() { // want `\[goleak\] goroutine is never joined`
		ch := make(chan struct{})
		<-ch
	}()
}

// A resolved same-package callee with no token.
func spawnNamedLeak() {
	go work() // want `\[goleak\] goroutine is never joined`
}

func work() {}

// A callee that cannot be resolved to a body in this package.
func spawnExternal(f func()) {
	go f() // want `\[goleak\] cannot verify that this goroutine is joined`
}
