package walltime

import "time"

func bad() time.Time {
	t := time.Now()   // want `\[walltime\] time\.Now in internal/schedlike`
	_ = time.Since(t) // want `\[walltime\] time\.Since in internal/schedlike`
	return t
}

func good() time.Duration {
	return 5 * time.Second // ok: durations are not wall-clock reads
}
