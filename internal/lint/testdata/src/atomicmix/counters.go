// Package atomiclike exercises the mixed atomic/plain access analyzer: once
// any access to a field or variable goes through sync/atomic, every plain
// read or write of it is reported.
package atomiclike

import "sync/atomic"

type counters struct {
	hits  int64
	drops int64
}

// hits is only ever touched atomically: clean.
func (c *counters) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) loadHits() int64 {
	return atomic.LoadInt64(&c.hits)
}

// drops is written atomically but read plainly.
func (c *counters) drop() {
	atomic.AddInt64(&c.drops, 1)
}

func (c *counters) reportDrops() int64 {
	return c.drops // want `\[atomicmix\] drops is accessed atomically`
}

// Package-level variables mix the same way.
var total int64

func bumpTotal() {
	atomic.AddInt64(&total, 1)
}

func readTotal() int64 {
	return total // want `\[atomicmix\] total is accessed atomically`
}

// Plain writes are as bad as plain reads.
func resetTotal() {
	total = 0 // want `\[atomicmix\] total is accessed atomically`
}
