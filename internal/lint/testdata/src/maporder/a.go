package maporder

import (
	"fmt"
	"os"
	"sort"
)

type sink struct{}

func (sink) Write(p []byte) (int, error) { return len(p), nil }

func flagged(m map[string]float64, w sink) {
	var rows []string
	var sum float64
	for k, v := range m {
		rows = append(rows, k+"!")              // want `\[maporder\] append inside map iteration`
		sum += v                                // want `\[maporder\] float accumulation inside map iteration`
		fmt.Fprintf(os.Stdout, "%s=%v\n", k, v) // want `\[maporder\] fmt\.Fprintf inside map iteration`
		w.Write([]byte(k))                      // want `\[maporder\] Write call inside map iteration`
	}
	_ = rows
	_ = sum
}

func sortedIdiom(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: collecting bare keys for sorting
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k] // ok: slice range, deterministic order
	}
	return total
}

func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer accumulation is order-independent
	}
	return n
}
