// Package lockmvlike pins the method-value semantics: a lock method bound to
// a variable (l := mu.Lock) acquires when invoked, not when bound.
package lockmvlike

import "sync"

var mvA, mvB sync.Mutex

func bound() {
	l := mvA.Lock
	u := mvA.Unlock
	l()
	mvB.Lock() // want `\[lockorder\] lock order cycle: mvB is acquired while mvA is held`
	mvB.Unlock()
	u()
}

func reverse() {
	mvB.Lock()
	mvA.Lock() // want `\[lockorder\] lock order cycle: mvA is acquired while mvB is held`
	mvA.Unlock()
	mvB.Unlock()
}

// Binding alone acquires nothing: taking the other lock afterwards records
// no edge.
func boundUnused() {
	l := mvA.Lock
	_ = l
	mvB.Lock()
	mvB.Unlock()
}
