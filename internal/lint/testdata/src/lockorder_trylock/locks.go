// Package locktrylike pins the TryLock semantics: the class is held only in
// the branch the TryLock result guards — directly in the if condition, via a
// bool variable, or negated (held in the else branch).
package locktrylike

import "sync"

var big, small sync.Mutex

func guarded() {
	if big.TryLock() {
		small.Lock() // want `\[lockorder\] lock order cycle: small is acquired while big is held`
		small.Unlock()
		big.Unlock()
	}
	// Outside the guarded branch nothing is held: no edge.
	small.Lock()
	small.Unlock()
}

func viaVarNegated() {
	ok := small.TryLock()
	if !ok {
		// Acquisition failed: nothing held here.
		big.Lock()
		big.Unlock()
	} else {
		big.Lock() // want `\[lockorder\] lock order cycle: big is acquired while small is held`
		big.Unlock()
		small.Unlock()
	}
}
