// Package lockdeferlike pins the deferred-unlock semantics: defer mu.Unlock()
// keeps the lock held to function end, so later acquisitions still record
// edges; an eager unlock releases immediately.
package lockdeferlike

import "sync"

var front, back sync.Mutex

func deferHeld() {
	front.Lock()
	defer front.Unlock()
	back.Lock() // want `\[lockorder\] lock order cycle: back is acquired while front is held`
	back.Unlock()
}

func deferReverse() {
	back.Lock()
	defer back.Unlock()
	front.Lock() // want `\[lockorder\] lock order cycle: front is acquired while back is held`
	front.Unlock()
}

// Eager unlock: nothing is held when the second lock is taken, so the
// opposite textual order records no edge and no finding.
func eager() {
	front.Lock()
	front.Unlock()
	back.Lock()
	back.Unlock()
}
