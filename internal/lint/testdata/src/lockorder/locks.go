// Package lockorderlike exercises the lock-acquisition-graph analyzer: two
// locks nested in opposite orders anywhere in the package form a cycle and
// both edges are reported; consistent nesting is silent.
package lockorderlike

import "sync"

var muA, muB, muC sync.Mutex

func abFirst() {
	muA.Lock()
	muB.Lock() // want `\[lockorder\] lock order cycle: muB is acquired while muA is held`
	muB.Unlock()
	muA.Unlock()
}

func baSecond() {
	muB.Lock()
	muA.Lock() // want `\[lockorder\] lock order cycle: muA is acquired while muB is held`
	muA.Unlock()
	muB.Unlock()
}

// Consistent order everywhere: muA strictly before muC. No finding.
func acOne() {
	muA.Lock()
	muC.Lock()
	muC.Unlock()
	muA.Unlock()
}

func acTwo() {
	muA.Lock()
	muC.Lock()
	muC.Unlock()
	muA.Unlock()
}

// Field mutexes are classes shared across instances, and acquisitions made
// by a same-package callee charge the caller's held set transitively.
type shard struct{ mu sync.Mutex }

type table struct{ mu sync.Mutex }

func (s *shard) withTable(t *table) {
	s.mu.Lock()
	t.grab() // want `\[lockorder\] lock order cycle: table\.mu is acquired while shard\.mu is held`
	s.mu.Unlock()
}

func (t *table) grab() {
	t.mu.Lock()
	t.mu.Unlock()
}

func (t *table) withShard(s *shard) {
	t.mu.Lock()
	s.mu.Lock() // want `\[lockorder\] lock order cycle: shard\.mu is acquired while table\.mu is held`
	s.mu.Unlock()
	t.mu.Unlock()
}
