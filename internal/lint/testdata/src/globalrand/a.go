package globalrand

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                                   // want `\[globalrand\] rand\.Intn uses the shared global`
	_ = rand.Float64()                                  // want `\[globalrand\] rand\.Float64 uses the shared global`
	rand.Shuffle(3, func(i, j int) {})                  // want `\[globalrand\] rand\.Shuffle uses the shared global`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `\[globalrand\] rand\.NewSource seeded from time\.Now`
}

func good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded generator
	return r.Float64()                  // ok: method on *rand.Rand
}
