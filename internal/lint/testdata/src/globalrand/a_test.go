package globalrand

import "math/rand"

func testHelper() int { return rand.Intn(3) } // ok: test files are exempt
