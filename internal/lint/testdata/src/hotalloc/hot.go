// Package hotlike exercises the escape-diagnostic gate: the lint test reads
// the ESCAPE markers below and fabricates the corresponding compiler
// diagnostics, mirroring what `go build -gcflags=-m` emits on the real tree.
package hotlike

var sink *int

// Annotated hot function: the escape on the marked line is reported.
//
//cocg:hot
func hotEscape() {
	x := 42 // ESCAPE:moved to heap: x -- want `\[hotalloc\] heap escape in //cocg:hot function hotEscape: moved to heap: x`
	sink = &x
}

// Unannotated function: the same escape shape is not the analyzer's business.
func coldEscape() {
	y := 7 // ESCAPE:moved to heap: y
	sink = &y
}

// Annotated and allocation-free: no diagnostics land in this body.
//
//cocg:hot
func hotClean(a, b int) int {
	return a + b
}
