package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// HotAlloc gates the zero-allocation invariants proven in BENCH_PR3–PR6.
// A function annotated
//
//	//cocg:hot
//
// declares "this body allocates nothing on the serving path"; the analyzer
// replays the compiler's escape analysis (`go build -gcflags=-m`) and fails
// the gate on any "escapes to heap" / "moved to heap" diagnostic inside an
// annotated body. A refactor that quietly boxes a value or lets a closure
// capture by reference now breaks `make lint` instead of a benchmark someone
// has to remember to run.
//
// Escape data comes from the driver (see LoadEscapes): one `go build` over
// just the packages that carry annotations, replayed from the build cache on
// unchanged code. When no escape data was supplied (golden tests construct
// their own; see lint_test.go) the analyzer is inert.
//
// Deliberate cold-path allocations inside a hot body — a grow path, an
// error construction — are suppressed line-by-line with
// //cocg:lint-ignore hotalloc and a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "heap escapes inside functions annotated //cocg:hot (compiler -m output)",
	Run:  runHotAlloc,
}

// HotDirective is the comment that marks a function as allocation-free.
const HotDirective = "//cocg:hot"

// An EscapeDiag is one compiler escape-analysis diagnostic.
type EscapeDiag struct {
	Line, Col int
	Msg       string
}

// EscapeData holds escape diagnostics grouped by absolute source filename.
type EscapeData struct {
	byFile map[string][]EscapeDiag
}

// Add records one diagnostic for file (absolute path).
func (e *EscapeData) Add(file string, d EscapeDiag) {
	if e.byFile == nil {
		e.byFile = make(map[string][]EscapeDiag)
	}
	e.byFile[file] = append(e.byFile[file], d)
}

// ForFile returns the diagnostics recorded for an absolute filename.
func (e *EscapeData) ForFile(file string) []EscapeDiag {
	if e == nil {
		return nil
	}
	return e.byFile[file]
}

func runHotAlloc(pass *Pass) {
	if pass.Escapes == nil {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		tf := pass.Fset.File(file.Pos())
		if tf == nil {
			continue
		}
		diags := pass.Escapes.ForFile(tf.Name())
		if len(diags) == 0 {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotFunc(fd) {
				continue
			}
			lo := pass.Fset.Position(fd.Pos()).Line
			hi := pass.Fset.Position(fd.End()).Line
			for _, d := range diags {
				if d.Line < lo || d.Line > hi {
					continue
				}
				pass.Reportf(posForLineCol(tf, d.Line, d.Col),
					"heap escape in //cocg:hot function %s: %s; hot-path functions must not allocate (see docs/STATIC_ANALYSIS.md#hotalloc--escapes-in-cocghot-functions)",
					fd.Name.Name, d.Msg)
			}
		}
	}
}

// isHotFunc reports whether fd carries the //cocg:hot directive in its doc
// comment group.
func isHotFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotDirective || strings.HasPrefix(text, HotDirective+" ") {
			return true
		}
	}
	return false
}

// posForLineCol maps a compiler file:line:col back into the fileset so the
// finding lands where the escape is (and so same-line lint-ignore comments
// apply).
func posForLineCol(tf *token.File, line, col int) token.Pos {
	if line < 1 || line > tf.LineCount() {
		return tf.Pos(0)
	}
	p := tf.LineStart(line)
	return p + token.Pos(col-1)
}

// HotPackages returns the import paths of the packages that contain at least
// one //cocg:hot directive — the only ones worth recompiling for escape data.
func HotPackages(pkgs []*Package) []string {
	var out []string
	for _, pkg := range pkgs {
		found := false
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					t := strings.TrimSpace(c.Text)
					if t == HotDirective || strings.HasPrefix(t, HotDirective+" ") {
						found = true
					}
				}
			}
			if found {
				break
			}
		}
		if found {
			out = append(out, pkg.Path)
		}
	}
	return out
}

// LoadEscapes compiles the annotated packages with -gcflags=-m and collects
// the escape diagnostics. One build serves every analyzer pass; on unchanged
// code cmd/go replays the compiler output from the build cache, so repeated
// lint runs stay fast. Giving -gcflags no package pattern scopes it to the
// packages named on the command line, which is exactly the hot set.
func LoadEscapes(moduleDir string, pkgs []*Package) (*EscapeData, error) {
	hot := HotPackages(pkgs)
	data := &EscapeData{}
	if len(hot) == 0 {
		return data, nil
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, hot...)...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m %s: %v\n%s", strings.Join(hot, " "), err, stderr.String())
	}
	ParseEscapes(data, moduleDir, stderr.String())
	return data, nil
}

// ParseEscapes scans `go build -gcflags=-m` stderr for heap-escape
// diagnostics (`file:line:col: msg`) and records them against absolute
// filenames. Inlining and other -m chatter is dropped.
func ParseEscapes(data *EscapeData, moduleDir, output string) {
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, row, col, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		data.Add(file, EscapeDiag{Line: row, Col: col, Msg: msg})
	}
}

// splitDiag parses `file:line:col: message`.
func splitDiag(s string) (file string, line, col int, msg string, ok bool) {
	// Walk colon-separated fields from the left so Windows-free POSIX paths
	// with no embedded colons split unambiguously.
	i := strings.Index(s, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = s[:i+3]
	rest := s[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	line, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, 0, "", false
	}
	col, err = strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, 0, "", false
	}
	return file, line, col, strings.TrimSpace(parts[2]), true
}
