// Package lint is CoCG's repo-specific static-analysis driver.
//
// The determinism harness introduced with the parallel worker pool made
// bit-identical results at every worker count a hard invariant, and it caught
// two latent map-iteration-order bugs only at runtime. This package moves that
// class of bug to lint time: it loads every package in the module with the
// standard library's go/parser + go/types (no external dependencies, fully
// offline) and runs a pluggable set of analyzers encoding the codebase's
// determinism and correctness invariants.
//
// Findings print as
//
//	file:line:col [analyzer] message
//
// and a finding can be suppressed at a specific line with an inline comment:
//
//	//cocg:lint-ignore <analyzer> <reason>
//
// The comment suppresses matching findings on its own line, or — when it
// stands alone — on the line directly below it. An ignore comment that
// suppresses nothing is itself reported (analyzer name "unusedignore") so
// stale suppressions cannot accumulate. See docs/STATIC_ANALYSIS.md.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //cocg:lint-ignore comments.
	Name string
	// Doc is a one-line description shown by `cocg-lint -list`.
	Doc string
	// Run inspects the package held by pass and reports findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full analyzer set in a deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		GlobalRand,
		WallTime,
		DroppedErr,
		RawGo,
		LockOrder,
		GoLeak,
		PoolCheck,
		AtomicMix,
		HotAlloc,
	}
}

// ByName resolves a comma-separated analyzer list; an empty spec means All.
func ByName(spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical `file:line:col [analyzer] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// MarshalJSON renders the finding as the flat CI-annotation schema
// {file, line, col, analyzer, message} consumed by `cocg-lint -json`.
func (f Finding) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message})
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// PkgPath is the package's import path ("cocg/internal/scheduler").
	PkgPath string
	// Module is the module path ("cocg"); path-sensitive analyzers use it
	// to recognise internal/ packages.
	Module string

	// Escapes is the compiler escape-analysis output consumed by hotalloc;
	// nil when the driver did not supply any (hotalloc is then inert).
	Escapes *EscapeData

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InternalPath reports whether the package lives under <module>/internal/
// and, if so, its path relative to the module root ("internal/scheduler").
func (p *Pass) InternalPath() (string, bool) {
	rel, ok := strings.CutPrefix(p.PkgPath, p.Module+"/")
	if !ok || !strings.HasPrefix(rel, "internal/") {
		return "", false
	}
	return rel, true
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Analyzers whose invariants only bind production code (globalrand, walltime,
// droppederr, rawgo) skip those files.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Options carries driver-level inputs shared by every pass.
type Options struct {
	// Escapes feeds hotalloc; build it once with LoadEscapes so one compile
	// serves the whole analyzer set.
	Escapes *EscapeData
}

// Run executes every analyzer over every package, applies //cocg:lint-ignore
// suppressions, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunWith(pkgs, analyzers, Options{})
}

// RunWith is Run with explicit driver options.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts Options) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		var pkgFindings []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				Module:   pkg.Module,
				Escapes:  opts.Escapes,
				findings: &pkgFindings,
			}
			a.Run(pass)
		}
		all = append(all, applyIgnores(pkg, pkgFindings)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}
