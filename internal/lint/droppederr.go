package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// DroppedErr flags statements that call a function returning an error and
// silently discard it: plain call statements, `go f()`, and `defer f()`.
// An explicit `_ = f()` is deliberate and not flagged. Two sinks are exempt
// because they are documented to never fail: the fmt print family (whose
// errors, when they matter, surface at the sink's Flush/Close — which this
// analyzer does check) and methods on bytes.Buffer / strings.Builder.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "call statements that discard a returned error",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil || !returnsError(pass, call) || droppedErrExempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or assign it explicitly", callName(pass, call))
			return true
		})
	}
}

// returnsError reports whether the call yields an error among its results.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// droppedErrExempt reports whether the called function is on the
// never-actually-fails allowlist.
func droppedErrExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := selectedFunc(pass, sel)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if named := namedRecv(s.Recv()); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "bytes.Buffer", "strings.Builder":
					return true
				}
			}
		}
	}
	return false
}

// namedRecv unwraps a receiver type to its named type, or nil.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// callName renders the call's function expression for the diagnostic.
func callName(pass *Pass, call *ast.CallExpr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, call.Fun); err != nil {
		return "call"
	}
	return buf.String()
}
