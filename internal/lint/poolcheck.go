package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolCheck polices the three sync.Pool misuse patterns that turn the
// allocation-free serving path into a correctness hazard:
//
//   - Put without reset: recycling a pointer-to-struct whose reference
//     fields were not cleared or truncated keeps dead objects reachable and
//     leaks state between sessions (the next Get sees a stale payload).
//   - Use after Put: the envelope belongs to the pool the moment Put
//     returns; a later read races whoever Get's it next.
//   - Get escaping: a pooled object returned from the function or stored in
//     a field/global outlives the scope that is responsible for Putting it
//     back. (Deliberate borrow-until-Release patterns suppress this with an
//     explicit //cocg:lint-ignore and a reason.)
//
// The analyzer understands the repo's accessor idiom: a function whose body
// just returns pool.Get (getFramesEnv) is a getter — calls to it are Get
// sites in the caller — and a function that Puts one of its parameters
// (putFramesEnv) is a putter, so putFramesEnv(e) counts as Put(e).
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "sync.Pool misuse: Put without reset, use after Put, Get results escaping",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) {
	pc := &poolChecker{pass: pass, getters: map[*types.Func]bool{}, putters: map[*types.Func]int{}}
	pc.collectWrappers()
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pc.checkFunc(fd)
		}
	}
}

type poolChecker struct {
	pass    *Pass
	getters map[*types.Func]bool // body is `return pool.Get()...`
	putters map[*types.Func]int  // param index the body Puts
}

// poolMethodCall decodes call as a sync.Pool Get/Put.
func poolMethodCall(pass *Pass, call *ast.CallExpr) (method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn := selectedFunc(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	if n := namedRecv(sig.Recv().Type()); n == nil || n.Obj().Name() != "Pool" {
		return "", false
	}
	return fn.Name(), true
}

// unwrapGet strips type assertions, slicing, parens and index expressions
// and reports whether the core expression is a pool Get (directly or via a
// getter function).
func (pc *poolChecker) unwrapGet(e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			if m, ok := poolMethodCall(pc.pass, x); ok && m == "Get" {
				return x, true
			}
			if fn := calledPkgFunc(pc.pass, x); fn != nil && pc.getters[fn] {
				return x, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// calledPkgFunc resolves a call to a function of this package, or nil.
func calledPkgFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// collectWrappers finds getter and putter wrappers so the analysis sees
// through the repo's accessor idiom.
func (pc *poolChecker) collectWrappers() {
	for _, file := range pc.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pc.pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			// Getter: a single-statement body returning pool.Get.
			if len(fd.Body.List) == 1 {
				if ret, ok := fd.Body.List[0].(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
					if _, isGet := pc.unwrapGet(ret.Results[0]); isGet {
						pc.getters[fn] = true
						continue
					}
				}
			}
			// Putter: the body Puts one of its parameters.
			params := map[types.Object]int{}
			if fd.Type.Params != nil {
				i := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if obj := pc.pass.Info.Defs[name]; obj != nil {
							params[obj] = i
						}
						i++
					}
				}
			}
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if m, isPool := poolMethodCall(pc.pass, call); !isPool || m != "Put" || len(call.Args) != 1 {
					return true
				}
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if idx, isParam := params[pc.pass.Info.Uses[id]]; isParam {
						pc.putters[fn] = idx
						return false
					}
				}
				return true
			})
		}
	}
}

// poolEvent is one ordered fact about a pooled object inside a function.
type poolEvent struct {
	pos  token.Pos
	kind int // 0 read, 1 write, 2 put
	obj  types.Object
	end  token.Pos // for puts: end of the Put call
}

// checkFunc runs the three checks over one function body.
func (pc *poolChecker) checkFunc(fd *ast.FuncDecl) {
	fn, _ := pc.pass.Info.Defs[fd.Name].(*types.Func)
	isGetter := fn != nil && pc.getters[fn]

	pooled := map[types.Object]bool{} // locals holding Get results
	writes := map[*ast.Ident]bool{}   // idents in assignment-LHS position
	var events []poolEvent

	// First sweep: classify assignments, find Get sites and escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
				if i >= len(st.Rhs) {
					continue
				}
				getCall, isGet := pc.unwrapGet(st.Rhs[i])
				if !isGet {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					obj := pc.pass.Info.Defs[id]
					if obj == nil {
						obj = pc.pass.Info.Uses[id]
					}
					if obj != nil && localTo(fd, obj) {
						pooled[obj] = true
						continue
					}
				}
				pc.pass.Reportf(getCall.Pos(), "sync.Pool Get result is stored outside this function's locals; pooled objects must stay with the scope that Puts them back")
			}
		case *ast.ReturnStmt:
			if isGetter {
				return true
			}
			for _, r := range st.Results {
				if _, isGet := pc.unwrapGet(r); isGet {
					pc.pass.Reportf(r.Pos(), "sync.Pool Get result is returned; the caller has no handle on the pool to Put it back")
					continue
				}
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if obj := pc.pass.Info.Uses[id]; obj != nil && pooled[obj] {
						pc.pass.Reportf(r.Pos(), "pooled object %s is returned; the caller has no handle on the pool to Put it back", id.Name)
					}
				}
			}
		}
		return true
	})

	// Second sweep: ordered read/write/put events for use-after-Put.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			obj, deferred := pc.putArg(fd, x)
			if obj == nil {
				return true
			}
			pc.checkReset(fd, x, obj, deferred)
			if !deferred {
				events = append(events, poolEvent{pos: x.Pos(), kind: 2, obj: obj, end: x.End()})
			}
			return true
		case *ast.Ident:
			obj := pc.pass.Info.Uses[x]
			if obj == nil {
				return true
			}
			kind := 0
			if writes[x] {
				kind = 1
			}
			events = append(events, poolEvent{pos: x.Pos(), kind: kind, obj: obj})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	active := map[types.Object]token.Pos{} // obj -> end of the Put that retired it
	for _, ev := range events {
		switch ev.kind {
		case 2:
			active[ev.obj] = ev.end
		case 1:
			delete(active, ev.obj) // rebound: a fresh value, valid again
		case 0:
			if end, retired := active[ev.obj]; retired && ev.pos > end {
				pc.pass.Reportf(ev.pos, "pooled object %s is used after Put; it belongs to the pool (and any concurrent Get) the moment Put returns", ev.obj.Name())
				delete(active, ev.obj) // one report per Put
			}
		}
	}
}

// putArg decodes call as a Put of a plain identifier — directly or through a
// putter wrapper — and reports whether the call sits under a defer (deferred
// Puts run last, so use-after-Put does not apply).
func (pc *poolChecker) putArg(fd *ast.FuncDecl, call *ast.CallExpr) (types.Object, bool) {
	argIdx := -1
	if m, isPool := poolMethodCall(pc.pass, call); isPool && m == "Put" {
		argIdx = 0
	} else if fn := calledPkgFunc(pc.pass, call); fn != nil {
		if idx, isPutter := pc.putters[fn]; isPutter {
			argIdx = idx
		} else {
			return nil, false
		}
	} else {
		return nil, false
	}
	if argIdx >= len(call.Args) {
		return nil, false
	}
	id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pc.pass.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	return obj, pc.underDefer(fd, call)
}

// underDefer reports whether call is the deferred call of a DeferStmt.
func (pc *poolChecker) underDefer(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			found = true
		}
		return !found
	})
	return found
}

// checkReset enforces the reset-before-Put rule for pointer-to-struct
// elements with reference fields: some assignment to a field of the object
// must precede the Put (anywhere in the function for deferred Puts, which
// run last).
func (pc *poolChecker) checkReset(fd *ast.FuncDecl, call *ast.CallExpr, obj types.Object, deferred bool) {
	// Only direct sync.Pool Puts are checked here; a putter wrapper is
	// checked once at its own Put site.
	if m, isPool := poolMethodCall(pc.pass, call); !isPool || m != "Put" {
		return
	}
	if !needsReset(obj.Type()) {
		return
	}
	reset := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reset {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if !deferred && as.Pos() > call.Pos() {
			return true
		}
		for _, lhs := range as.Lhs {
			if selectorRoot(pc.pass, lhs) == obj {
				reset = true
				return false
			}
		}
		return true
	})
	if !reset {
		pc.pass.Reportf(call.Pos(), "sync.Pool Put of %s without resetting its reference fields; stale pointers leak state (and memory) into the next Get", obj.Name())
	}
}

// needsReset reports whether t is a pointer to a struct with at least one
// reference-typed field (pointer, slice, map, chan, func, or interface).
func needsReset(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := p.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
			return true
		}
	}
	return false
}

// selectorRoot returns the object at the root of a selector chain
// (x in x.f.g[i].h), or nil when the expression is not field-shaped.
func selectorRoot(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			// A bare identifier is not a field write; require at least one
			// selector hop by checking we descended.
			return pass.Info.Uses[x]
		default:
			return nil
		}
	}
}

// localTo reports whether obj is declared inside fd's body.
func localTo(fd *ast.FuncDecl, obj types.Object) bool {
	return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}
