package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path   string // import path
	Dir    string
	Module string // owning module path

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module using only the
// standard library. Import resolution goes through compiler export data
// discovered with `go list -deps -export`, so no network access and no
// third-party loader (golang.org/x/tools) is needed; the go toolchain baked
// into the environment does the heavy lifting of building export data.
type Loader struct {
	ModuleDir  string
	ModulePath string

	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list` in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewLoader prepares a loader for the module rooted at dir. It builds (or
// reuses from the build cache) export data for the module's full dependency
// closure plus any extra package patterns, so later LoadPackages / CheckDir
// calls can resolve every import offline.
func NewLoader(dir string, extra ...string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = abs
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -m in %s: %v", abs, err)
	}
	module := strings.TrimSpace(string(out))

	deps, err := goList(abs, append([]string{"-deps", "-export", "-json", "./..."}, extra...)...)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleDir:  abs,
		ModulePath: module,
		Fset:       token.NewFileSet(),
		exports:    make(map[string]string, len(deps)),
	}
	for _, p := range deps {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// LoadPackages parses and type-checks the module packages matched by the
// given `go list` patterns (default ./...). Only production files are
// loaded: the analyzers' invariants bind non-test code, and test-only
// nondeterminism is already policed by the race/determinism gates.
func (l *Loader) LoadPackages(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(l.ModuleDir, append([]string{"-json", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckDir type-checks every .go file in dir as a single package under the
// given synthetic import path. The lint tests use it to load testdata
// packages that are invisible to the go tool, with import paths chosen to
// exercise the analyzers' path sensitivity.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses the named files and type-checks them as one package.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:   importPath,
		Dir:    dir,
		Module: l.ModulePath,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}
