package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicMix flags mixed atomic/plain access to the same memory. A field that
// is incremented with atomic.AddUint64 in one place and read with a plain
// load in another has no happens-before edge between the two: the plain read
// can tear, see a stale value forever, or be miscompiled. The streaming and
// coordinator metrics counters are exactly this shape — every access must go
// through sync/atomic (or the field must become an atomic.Int64-style type
// whose plain value is unreachable).
//
// Identity is the types.Object of the field (or package-level variable)
// whose address is passed to a sync/atomic function anywhere in the package;
// every other read or write of that object is then reported.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "struct fields accessed both atomically (sync/atomic) and plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// First sweep: find every &x.f (or &v) handed to a sync/atomic function.
	atomicSites := map[types.Object][]token.Pos{}
	atomicArg := map[ast.Node]bool{} // the operand node inside &operand
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			target := ast.Unparen(u.X)
			if obj := addressedObj(pass, target); obj != nil {
				atomicSites[obj] = append(atomicSites[obj], u.Pos())
				atomicArg[target] = true
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return
	}
	// Second sweep: every other touch of those objects is a plain access.
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if atomicArg[n] {
				return false // the sanctioned atomic access itself
			}
			var obj types.Object
			switch x := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.Info.Selections[x]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				obj = sel.Obj()
			case *ast.Ident:
				v, ok := pass.Info.Uses[x].(*types.Var)
				if !ok || v.IsField() {
					return true // fields report via their SelectorExpr
				}
				obj = v
			default:
				return true
			}
			if sites, ok := atomicSites[obj]; ok {
				first := pass.Fset.Position(sites[0])
				pass.Reportf(n.Pos(),
					"%s is accessed atomically (e.g. %s:%d) but plainly here; mixed access has no happens-before edge — use sync/atomic everywhere or an atomic.Int64-style type",
					obj.Name(), filepath.Base(first.Filename), first.Line)
				return false
			}
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a package-level sync/atomic
// function (AddInt64, LoadUint64, StoreInt32, SwapPointer, CompareAndSwap...).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := selectedFunc(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil // methods on atomic.Int64 etc. have no plain twin
}

// addressedObj resolves the operand of an & expression to the field or
// variable object being addressed: x.f yields the field, a bare identifier
// yields the variable.
func addressedObj(pass *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok {
			return v
		}
	}
	return nil
}
